/**
 * @file
 * Building a custom workload model with the public API: a synthetic
 * "in-memory database" that alternates between a scan phase (high ILP,
 * streaming) and a probe phase (pointer chasing), then exploring how
 * each gating scheme responds.
 *
 * This is the template for adding your own workloads: fill a Profile,
 * wrap it in exp::Jobs (one per gating scheme), hand the batch to the
 * experiment engine, read the RunResults.
 *
 * Usage:
 *   custom_workload [--insts=150000] [--warmup=60000] [--pointer_mb=32]
 */

#include <iostream>
#include <vector>

#include "common/options.hh"
#include "common/table.hh"
#include "exp/engine.hh"
#include "gating/registry.hh"
#include "sim/presets.hh"

using namespace dcg;

int
main(int argc, char **argv)
{
    Options opts(argc, argv, {"insts", "warmup", "pointer_mb"});
    const auto insts = static_cast<std::uint64_t>(
        opts.getInt("insts", 150'000));
    const auto warmup = static_cast<std::uint64_t>(
        opts.getInt("warmup", 60'000));
    const auto pointer_mb = static_cast<Addr>(
        opts.getInt("pointer_mb", 32));

    // --- 1. Describe the workload.
    Profile db;
    db.name = "memdb";
    db.isFp = false;
    //        IAlu  IMul IDiv FAlu FMul FDiv  Ld    St    Br
    db.mix = {0.42, 0.01, 0.0, 0.0, 0.0, 0.0, 0.30, 0.09, 0.18};

    // Scan phase: ready operands, long dependence distances.
    db.deps = {0.52, 0.55, 0.10, 48};

    // Probe phase (the generator's low-ILP phase): chains of dependent
    // loads into a pointer region sized from the command line.
    db.phases.lowIlpFraction = 0.45;
    db.phases.meanPhaseLen = 5000;
    db.phases.lowReadyScale = 0.25;
    db.phases.lowGeoScale = 3.0;
    db.phases.lowMissScale = 4.0;

    db.branches = {0.40, 0.30, 0.18, 0.12};
    db.memory.fracStack = 0.45;
    db.memory.fracStride = 0.48;
    db.memory.fracRandom = 0.07;
    db.memory.randomRegionBytes = pointer_mb * 1024 * 1024;
    db.codeFootprintBytes = 48 * 1024;

    std::cout << "== custom workload 'memdb' (pointer region "
              << pointer_mb << " MB) ==\n\n";

    // --- 2. Declare one job per registered gating scheme and run the
    //        batch on the engine (parallel when DCG_JOBS > 1). The
    //        registry catalog means a newly-added scheme shows up here
    //        with no code change ("base" sorts first, so results[0]
    //        stays the denominator).
    std::vector<exp::Job> jobs;
    for (const std::string &s : gating::schemeNames())
        jobs.push_back(exp::makeJob(db, table1Config(s), insts, warmup));

    exp::Engine engine;
    const auto results = engine.run(jobs);
    const RunResult &base = results[0];

    TextTable t({"scheme", "IPC", "power (W)", "saving (%)",
                 "E/inst (pJ)"});
    for (const RunResult &r : results) {
        t.addRow({r.scheme, TextTable::num(r.ipc, 2),
                  TextTable::num(r.avgPowerW, 1),
                  TextTable::pct(1.0 - r.avgPowerW / base.avgPowerW),
                  TextTable::num(r.energyPerInstPJ(), 0)});
    }
    t.print(std::cout);

    std::cout << "\nDCG keeps the scan phase's IPC untouched while "
                 "gating through the\nprobe phase's stalls; PLB has to "
                 "predict the phase switches and pays\nfor every "
                 "misprediction twice (lost power or lost time).\n";
    return 0;
}
