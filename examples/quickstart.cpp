/**
 * @file
 * Quickstart: simulate one SPEC2000 workload model on the Table-1
 * machine with and without Deterministic Clock Gating and print the
 * headline numbers.
 *
 * Runs go through the experiment engine (exp::Engine), which is the
 * recommended entry point: it executes independent simulations in
 * parallel and caches results by configuration.
 *
 * Usage:
 *   quickstart [--bench=mcf] [--insts=400000] [--warmup=60000]
 */

#include <iostream>

#include "common/options.hh"
#include "common/table.hh"
#include "exp/engine.hh"
#include "sim/presets.hh"

using namespace dcg;

int
main(int argc, char **argv)
{
    Options opts(argc, argv, {"bench", "insts", "warmup"});
    const std::string bench = opts.getString("bench", "gzip");
    const auto insts = static_cast<std::uint64_t>(
        opts.getInt("insts", 400'000));
    const auto warmup = static_cast<std::uint64_t>(
        opts.getInt("warmup", 60'000));

    const Profile profile = profileByName(bench);

    std::cout << "== DCG quickstart: " << bench << " ("
              << (profile.isFp ? "SPECfp" : "SPECint") << " model), "
              << insts << " instructions ==\n\n";

    // Declare the two runs and let the engine execute them (in
    // parallel when more than one worker is available).
    exp::Engine engine;
    const auto results = engine.run({
        exp::makeJob(profile, table1Config("base"), insts,
                     warmup),
        exp::makeJob(profile, table1Config("dcg"), insts,
                     warmup),
    });
    const RunResult &base = results[0];
    const RunResult &dcgRun = results[1];

    TextTable t({"metric", "baseline", "DCG"});
    t.addRow({"IPC", TextTable::num(base.ipc, 3),
              TextTable::num(dcgRun.ipc, 3)});
    t.addRow({"avg power (W)", TextTable::num(base.avgPowerW, 2),
              TextTable::num(dcgRun.avgPowerW, 2)});
    t.addRow({"energy/inst (pJ)",
              TextTable::num(base.energyPerInstPJ(), 1),
              TextTable::num(dcgRun.energyPerInstPJ(), 1)});
    t.addRow({"branch accuracy",
              TextTable::pct(base.branchAccuracy) + "%",
              TextTable::pct(dcgRun.branchAccuracy) + "%"});
    t.addRow({"L1D miss rate", TextTable::pct(base.l1dMissRate) + "%",
              TextTable::pct(dcgRun.l1dMissRate) + "%"});
    t.print(std::cout);

    const double saving =
        1.0 - dcgRun.avgPowerW / base.avgPowerW;
    std::cout << "\nDCG total power saving: "
              << TextTable::pct(saving) << "%  (performance loss: "
              << TextTable::pct(1.0 - dcgRun.ipc / base.ipc) << "%)\n";
    std::cout << "Paper (Sec 5.1): ~19.9% average saving, ~0% loss.\n";
    return 0;
}
