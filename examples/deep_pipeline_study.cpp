/**
 * @file
 * Pipeline-depth study (the Section 5.6 scenario): sweep the pipeline
 * from the 8-stage baseline towards the 20-stage machine and watch
 * DCG's savings grow as more gateable latch groups appear, while the
 * mispredict penalty erodes IPC.
 *
 * The depth sweep is declared as one batch of exp::Jobs; the engine
 * runs the (depth x {base, dcg}) grid in parallel.
 *
 * Usage:
 *   deep_pipeline_study [--bench=gcc] [--insts=150000] [--warmup=60000]
 */

#include <iostream>
#include <vector>

#include "common/options.hh"
#include "common/table.hh"
#include "exp/engine.hh"
#include "sim/presets.hh"

using namespace dcg;

namespace {

DepthConfig
depthForStages(unsigned stages)
{
    // Interpolate between the paper's 8-stage and 20-stage machines by
    // deepening phases in the order real designs did: fetch/decode
    // first, then mem/wb, then rename/issue/read.
    DepthConfig d;  // 8 stages
    struct Step { unsigned DepthConfig::*phase; };
    const Step steps[] = {
        {&DepthConfig::fetch}, {&DepthConfig::decode},
        {&DepthConfig::mem},   {&DepthConfig::wb},
        {&DepthConfig::fetch}, {&DepthConfig::decode},
        {&DepthConfig::rename}, {&DepthConfig::issue},
        {&DepthConfig::read},  {&DepthConfig::mem},
        {&DepthConfig::wb},    {&DepthConfig::fetch},
    };
    unsigned have = d.totalStages();
    for (const Step &s : steps) {
        if (have >= stages)
            break;
        ++(d.*(s.phase));
        ++have;
    }
    return d;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opts(argc, argv, {"bench", "insts", "warmup"});
    const std::string bench = opts.getString("bench", "gcc");
    const auto insts = static_cast<std::uint64_t>(
        opts.getInt("insts", 150'000));
    const auto warmup = static_cast<std::uint64_t>(
        opts.getInt("warmup", 60'000));
    const Profile profile = profileByName(bench);

    std::cout << "== DCG vs pipeline depth on " << bench << " ==\n\n";

    const std::vector<unsigned> depths{8, 11, 14, 17, 20};

    std::vector<exp::Job> jobs;
    for (unsigned stages : depths) {
        SimConfig base = table1Config("base");
        base.core.depth = depthForStages(stages);
        SimConfig dcg = base;
        dcg.scheme = "dcg";
        jobs.push_back(exp::makeJob(profile, base, insts, warmup));
        jobs.push_back(exp::makeJob(profile, dcg, insts, warmup));
    }

    exp::Engine engine;
    const auto results = engine.run(jobs);

    TextTable t({"stages", "gateable latch groups", "base IPC",
                 "DCG saving (%)"});
    std::size_t i = 0;
    for (unsigned stages : depths) {
        const DepthConfig depth = depthForStages(stages);
        unsigned gateable = 0;
        for (unsigned p = 0; p < kNumLatchPhases; ++p) {
            const auto phase = static_cast<LatchPhase>(p);
            if (latchPhaseGateable(phase))
                gateable += depth.groupsFor(phase);
        }

        const RunResult &b = results[i++];
        const RunResult &d = results[i++];
        t.addRow({std::to_string(stages), std::to_string(gateable),
                  TextTable::num(b.ipc, 2),
                  TextTable::pct(1.0 - d.avgPowerW / b.avgPowerW)});
    }
    t.print(std::cout);

    std::cout << "\nAs Section 5.6 argues: every stage added outside "
                 "fetch/decode/issue\nadds a gateable latch group, so "
                 "deeper pipelines save *more* under DCG\n(paper: 19.9% "
                 "at 8 stages -> 24.5% at 20 stages on average).\n";
    return 0;
}
