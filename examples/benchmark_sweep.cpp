/**
 * @file
 * Sweep every modelled SPEC2000 benchmark across the gating schemes and
 * print per-benchmark microarchitectural characteristics, the baseline
 * power breakdown and the savings of each scheme — the bird's-eye view
 * of everything the paper's evaluation section measures.
 *
 * The whole (benchmark x scheme) grid is one declarative request to
 * the experiment engine, which fans the 64 simulations out across
 * --jobs workers; results are optionally exported as JSON/CSV.
 *
 * Usage:
 *   benchmark_sweep [--insts=N] [--warmup=N] [--breakdown] [--jobs=N]
 *                   [--json=path] [--csv=path]
 */

#include <iostream>

#include "common/options.hh"
#include "common/table.hh"
#include "exp/grid.hh"
#include "exp/metrics.hh"
#include "sim/report.hh"

using namespace dcg;

int
main(int argc, char **argv)
{
    Options opts(argc, argv, {"insts", "warmup", "breakdown", "jobs",
                              "json", "csv"});
    const bool breakdown = opts.getBool("breakdown", false);

    exp::GridRequest req;
    req.schemes = {"dcg", "plb-orig", "plb-ext"};
    req.instructions = static_cast<std::uint64_t>(
        opts.getInt("insts", static_cast<std::int64_t>(
                                 defaultBenchInstructions())));
    req.warmup = static_cast<std::uint64_t>(
        opts.getInt("warmup", static_cast<std::int64_t>(
                                  defaultBenchWarmup())));

    exp::Engine engine(static_cast<unsigned>(opts.getInt("jobs", 0)));
    const auto grid = exp::runGrid(engine, req);

    TextTable chars({"bench", "set", "IPC", "bpred%", "L1D-miss%",
                     "intU%", "fpU%", "latch%", "dport%", "rbus%"});
    TextTable savings({"bench", "baseW", "DCG%", "PLBorig%", "PLBext%",
                       "dIPC-PLB%"});

    std::vector<RunResult> flat;
    for (const exp::SchemeResults &r : grid) {
        const RunResult &base = r.base();
        flat.insert(flat.end(),
                    {r.base(), r.dcg(), r.plbOrig(), r.plbExt()});

        chars.addRow({r.profile.name, r.profile.isFp ? "fp" : "int",
                      TextTable::num(base.ipc, 2),
                      TextTable::pct(base.branchAccuracy),
                      TextTable::pct(base.l1dMissRate),
                      TextTable::pct(base.intUnitUtil),
                      TextTable::pct(base.fpUnitUtil),
                      TextTable::pct(base.latchUtil),
                      TextTable::pct(base.dcachePortUtil),
                      TextTable::pct(base.resultBusUtil)});

        savings.addRow({r.profile.name,
                        TextTable::num(base.avgPowerW, 1),
                        TextTable::pct(exp::powerSaving(base, r.dcg())),
                        TextTable::pct(
                            exp::powerSaving(base, r.plbOrig())),
                        TextTable::pct(
                            exp::powerSaving(base, r.plbExt())),
                        TextTable::pct(1.0 -
                                       r.plbExt().ipc / base.ipc)});

        if (breakdown) {
            std::cout << "-- " << r.profile.name
                      << " baseline component breakdown (%):\n";
            for (unsigned c = 0; c < kNumPowerComponents; ++c) {
                const double frac =
                    base.componentPJ[c] / base.totalEnergyPJ;
                if (frac > 0.001) {
                    std::cout << "   "
                              << powerComponentName(
                                     static_cast<PowerComponent>(c))
                              << ": " << TextTable::pct(frac) << "\n";
                }
            }
        }
    }

    std::cout << "\n== Workload characteristics (baseline machine) ==\n";
    chars.print(std::cout);
    std::cout << "\n== Total power savings vs baseline ==\n";
    savings.print(std::cout);
    std::cout << "\nPaper reference: DCG ~20.9% int / ~18.8% fp;"
              << " PLB-orig ~6.3/4.9; PLB-ext ~11.0/8.7;"
              << " PLB perf loss ~2.9%.\n"
              << "[engine] " << engine.workers() << " worker(s), "
              << engine.cacheMisses() << " simulation(s)\n";

    if (opts.has("json"))
        writeResultsJsonFile(flat, opts.getString("json", ""));
    if (opts.has("csv"))
        writeResultsCsvFile(flat, opts.getString("csv", ""));
    return 0;
}
