/**
 * @file
 * Sweep every modelled SPEC2000 benchmark across the gating schemes and
 * print per-benchmark microarchitectural characteristics, the baseline
 * power breakdown and the savings of each scheme — the bird's-eye view
 * of everything the paper's evaluation section measures.
 *
 * Usage:
 *   benchmark_sweep [--insts=N] [--warmup=N] [--breakdown]
 */

#include <iostream>

#include "common/options.hh"
#include "common/table.hh"
#include "sim/presets.hh"

using namespace dcg;

int
main(int argc, char **argv)
{
    Options opts(argc, argv, {"insts", "warmup", "breakdown"});
    const auto insts = static_cast<std::uint64_t>(
        opts.getInt("insts", static_cast<std::int64_t>(
                                 defaultBenchInstructions())));
    const auto warmup = static_cast<std::uint64_t>(
        opts.getInt("warmup", static_cast<std::int64_t>(
                                  defaultBenchWarmup())));
    const bool breakdown = opts.getBool("breakdown", false);

    TextTable chars({"bench", "set", "IPC", "bpred%", "L1D-miss%",
                     "intU%", "fpU%", "latch%", "dport%", "rbus%"});
    TextTable savings({"bench", "baseW", "DCG%", "PLBorig%", "PLBext%",
                       "dIPC-PLB%"});

    for (const Profile &p : allSpecProfiles()) {
        const RunResult base = runBenchmark(
            p, table1Config(GatingScheme::None), insts, warmup);
        const RunResult dcgR = runBenchmark(
            p, table1Config(GatingScheme::Dcg), insts, warmup);
        const RunResult orig = runBenchmark(
            p, table1Config(GatingScheme::PlbOrig), insts, warmup);
        const RunResult ext = runBenchmark(
            p, table1Config(GatingScheme::PlbExt), insts, warmup);

        chars.addRow({p.name, p.isFp ? "fp" : "int",
                      TextTable::num(base.ipc, 2),
                      TextTable::pct(base.branchAccuracy),
                      TextTable::pct(base.l1dMissRate),
                      TextTable::pct(base.intUnitUtil),
                      TextTable::pct(base.fpUnitUtil),
                      TextTable::pct(base.latchUtil),
                      TextTable::pct(base.dcachePortUtil),
                      TextTable::pct(base.resultBusUtil)});

        auto save = [&](const RunResult &r) {
            return TextTable::pct(1.0 - r.avgPowerW / base.avgPowerW);
        };
        savings.addRow({p.name, TextTable::num(base.avgPowerW, 1),
                        save(dcgR), save(orig), save(ext),
                        TextTable::pct(1.0 - ext.ipc / base.ipc)});

        if (breakdown) {
            std::cout << "-- " << p.name
                      << " baseline component breakdown (%):\n";
            for (unsigned c = 0; c < kNumPowerComponents; ++c) {
                const double frac =
                    base.componentPJ[c] / base.totalEnergyPJ;
                if (frac > 0.001) {
                    std::cout << "   "
                              << powerComponentName(
                                     static_cast<PowerComponent>(c))
                              << ": " << TextTable::pct(frac) << "\n";
                }
            }
        }
    }

    std::cout << "\n== Workload characteristics (baseline machine) ==\n";
    chars.print(std::cout);
    std::cout << "\n== Total power savings vs baseline ==\n";
    savings.print(std::cout);
    std::cout << "\nPaper reference: DCG ~20.9% int / ~18.8% fp;"
              << " PLB-orig ~6.3/4.9; PLB-ext ~11.0/8.7;"
              << " PLB perf loss ~2.9%.\n";
    return 0;
}
