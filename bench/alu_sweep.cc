/**
 * @file
 * Section 4.4: optimal number of integer ALUs. The paper reduces the
 * pool from 8 and observes worst-case relative performance of 98.8 %
 * with 6 units and 92.7 % with 4; it therefore runs all experiments
 * with 6 integer ALUs.
 */

#include <algorithm>
#include <iostream>
#include <vector>

#include "bench/harness.hh"
#include "common/table.hh"

using namespace dcg;
using namespace dcg::bench;

int
main()
{
    printHeader("Section 4.4 — optimal number of integer ALUs",
                "relative performance vs an 8-ALU machine");

    const unsigned counts[] = {8, 6, 4};

    std::vector<exp::Job> jobs;
    for (const Profile &p : allSpecProfiles()) {
        for (unsigned n : counts) {
            SimConfig cfg = table1Config();
            cfg.core.fuCount[0] = n;
            jobs.push_back(exp::makeJob(p, cfg));
        }
    }
    const auto results = runJobs(jobs);

    TextTable t({"bench", "suite", "IPC@8", "rel@6 (%)", "rel@4 (%)"});
    double worst6 = 1.0, worst4 = 1.0;
    std::size_t i = 0;
    for (const Profile &p : allSpecProfiles()) {
        double ipc[3];
        for (double &x : ipc)
            x = results[i++].ipc;
        const double rel6 = ipc[1] / ipc[0];
        const double rel4 = ipc[2] / ipc[0];
        worst6 = std::min(worst6, rel6);
        worst4 = std::min(worst4, rel4);
        t.addRow({p.name, p.isFp ? "fp" : "int",
                  TextTable::num(ipc[0], 2), TextTable::pct(rel6),
                  TextTable::pct(rel4)});
    }
    t.print(std::cout);

    std::cout << "\nWorst case: 6 ALUs " << TextTable::pct(worst6)
              << "% (paper 98.8%), 4 ALUs " << TextTable::pct(worst4)
              << "% (paper 92.7%).\n"
              << "Conclusion (as in the paper): 6 integer ALUs are the "
              << "power/performance sweet spot for the 8-wide machine.\n";
    printEngineSummary();
    return 0;
}
