/**
 * @file
 * Table 1: the baseline processor configuration, as instantiated by
 * this reproduction (plus the derived power-model sizing).
 */

#include <iostream>

#include "bench/harness.hh"
#include "power/model.hh"

using namespace dcg;
using namespace dcg::bench;

int
main()
{
    printHeader("Table 1 — baseline processor configuration",
                "paper Sec 4.1 / Table 1");
    const SimConfig cfg = table1Config();
    printConfig(cfg, std::cout);

    StatRegistry stats;
    PowerModel pm(cfg.core, cfg.tech, stats);
    std::cout << "Power model sizing:\n"
              << "  " << pm.bitsPerLatchSlot()
              << " bits per pipeline-latch slot ("
              << cfg.core.issueWidth << " slots x "
              << cfg.core.depth.totalStages() << " latch groups)\n"
              << "  " << pm.dcgControlBits()
              << " DCG control bits (extended latches; "
              << "charged as overhead whenever DCG is active)\n";
    return 0;
}
