/**
 * @file
 * Figure 10: total power savings of DCG, PLB-orig and PLB-ext as a
 * percentage of the baseline (no clock gating) processor power.
 *
 * Paper: DCG averages 20.9 % (int) / 18.8 % (fp); PLB-orig 6.3 / 4.9;
 * PLB-ext 11.0 / 8.7. mcf and lucas are DCG's best cases.
 */

#include <iostream>

#include "bench/harness.hh"
#include "common/table.hh"

using namespace dcg;
using namespace dcg::bench;

int
main()
{
    printHeader("Figure 10 — total power savings (%)",
                "DCG vs PLB-orig vs PLB-ext, % of baseline power");

    GridRequest req;
    req.schemes = {"dcg", "plb-orig", "plb-ext"};
    const auto grid = runGrid(req);

    TextTable t({"bench", "suite", "DCG", "PLB-orig", "PLB-ext"});
    for (const auto &r : grid) {
        t.addRow({r.profile.name, r.profile.isFp ? "fp" : "int",
                  TextTable::pct(powerSaving(r.base(), r.dcg())),
                  TextTable::pct(powerSaving(r.base(), r.plbOrig())),
                  TextTable::pct(powerSaving(r.base(), r.plbExt()))});
    }
    t.print(std::cout);

    const auto dcg_m = meansBySuite(grid, [](const SchemeResults &r) {
        return powerSaving(r.base(), r.dcg());
    });
    const auto orig_m = meansBySuite(grid, [](const SchemeResults &r) {
        return powerSaving(r.base(), r.plbOrig());
    });
    const auto ext_m = meansBySuite(grid, [](const SchemeResults &r) {
        return powerSaving(r.base(), r.plbExt());
    });

    std::cout << "\nAverages (measured vs paper):\n"
              << "  DCG      int " << TextTable::pct(dcg_m.intMean)
              << "% (paper 20.9)   fp " << TextTable::pct(dcg_m.fpMean)
              << "% (paper 18.8)\n"
              << "  PLB-orig int " << TextTable::pct(orig_m.intMean)
              << "% (paper 6.3)    fp " << TextTable::pct(orig_m.fpMean)
              << "% (paper 4.9)\n"
              << "  PLB-ext  int " << TextTable::pct(ext_m.intMean)
              << "% (paper 11.0)   fp " << TextTable::pct(ext_m.fpMean)
              << "% (paper 8.7)\n";
    printEngineSummary();
    return 0;
}
