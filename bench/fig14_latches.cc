/**
 * @file
 * Figure 14: pipeline-latch power savings, including DCG's control
 * overhead (extended latches, ~1 % of latch power).
 * Paper: DCG 41.6 % average; PLB-ext 17.6 %; mcf and lucas stand out.
 */

#include "bench/harness.hh"

using namespace dcg;
using namespace dcg::bench;

int
main()
{
    runComponentFigure(
        "Figure 14 — pipeline latch power savings (%)",
        "one-hot gated slots of the rename/read/exec/mem/wb latches;\n"
        "DCG's extended-latch overhead is charged against it",
        [](const RunResult &r) { return r.latchPJ; },
        "(paper avg ~41.6%, incl. 1% overhead)",
        "(paper avg ~17.6%)");
    return 0;
}
