/**
 * @file
 * Figure 13: power savings in the FP execution units.
 * Paper: DCG ~77.2 % for fp codes and close to 100 % for most int
 * codes (their FPUs are simply never used); PLB-ext ~23.0 % for fp
 * codes because its coarse cluster granularity cannot disable FPUs
 * while the integer side is busy.
 */

#include "bench/harness.hh"

using namespace dcg;
using namespace dcg::bench;

int
main()
{
    runComponentFigure(
        "Figure 13 — floating-point unit power savings (%)",
        "idle FPU clock power recovered; int codes approach 100%",
        [](const RunResult &r) { return r.fpUnitsPJ; },
        "(paper: fp avg ~77.2%, int codes ~100%)",
        "(paper: fp avg ~23.0%)");
    return 0;
}
