/**
 * @file
 * Ablation of the store clock-gate setup (paper Sec 3.3): if no
 * advance knowledge of a store's cache access exists (case 2), the
 * store is delayed by one cycle to let the port's clock-gate control
 * settle. The paper argues this costs "virtually no performance";
 * this binary quantifies it.
 */

#include <algorithm>
#include <iostream>
#include <vector>

#include "bench/harness.hh"
#include "common/table.hh"

using namespace dcg;
using namespace dcg::bench;

int
main()
{
    printHeader("Ablation — store +1 cycle clock-gate setup (Sec 3.3)",
                "performance cost of delaying store D-cache access");

    SimConfig case1 = table1Config("dcg");
    SimConfig case2 = case1;
    case2.core.delayStoresOneCycle = true;

    std::vector<exp::Job> jobs;
    for (const Profile &p : allSpecProfiles()) {
        jobs.push_back(exp::makeJob(p, case1));
        jobs.push_back(exp::makeJob(p, case2));
    }
    const auto results = runJobs(jobs);

    TextTable t({"bench", "IPC case1", "IPC case2", "loss (%)"});
    double worst = 0.0;
    std::size_t i = 0;
    for (const Profile &p : allSpecProfiles()) {
        const RunResult &a = results[i++];
        const RunResult &b = results[i++];
        const double loss = 1.0 - b.ipc / a.ipc;
        worst = std::max(worst, loss);
        t.addRow({p.name, TextTable::num(a.ipc, 3),
                  TextTable::num(b.ipc, 3), TextTable::pct(loss, 2)});
    }
    t.print(std::cout);
    std::cout << "\nWorst-case loss " << TextTable::pct(worst, 2)
              << "% — stores do not produce pipeline values, so the "
                 "delay is\nabsorbed by the store buffer (paper: "
                 "\"virtually no performance loss\").\n";
    printEngineSummary();
    return 0;
}
