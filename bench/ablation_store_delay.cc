/**
 * @file
 * Ablation of the store clock-gate setup (paper Sec 3.3): if no
 * advance knowledge of a store's cache access exists (case 2), the
 * store is delayed by one cycle to let the port's clock-gate control
 * settle. The paper argues this costs "virtually no performance";
 * this binary quantifies it.
 */

#include <iostream>

#include "bench/harness.hh"
#include "common/table.hh"

using namespace dcg;
using namespace dcg::bench;

int
main()
{
    printHeader("Ablation — store +1 cycle clock-gate setup (Sec 3.3)",
                "performance cost of delaying store D-cache access");

    const std::uint64_t insts = defaultBenchInstructions();
    const std::uint64_t warm = defaultBenchWarmup();

    TextTable t({"bench", "IPC case1", "IPC case2", "loss (%)"});
    double worst = 0.0;
    for (const Profile &p : allSpecProfiles()) {
        SimConfig c1 = table1Config(GatingScheme::Dcg);
        SimConfig c2 = c1;
        c2.core.delayStoresOneCycle = true;
        const RunResult a = runBenchmark(p, c1, insts, warm);
        const RunResult b = runBenchmark(p, c2, insts, warm);
        const double loss = 1.0 - b.ipc / a.ipc;
        worst = std::max(worst, loss);
        t.addRow({p.name, TextTable::num(a.ipc, 3),
                  TextTable::num(b.ipc, 3), TextTable::pct(loss, 2)});
    }
    t.print(std::cout);
    std::cout << "\nWorst-case loss " << TextTable::pct(worst, 2)
              << "% — stores do not produce pipeline values, so the "
                 "delay is\nabsorbed by the store buffer (paper: "
                 "\"virtually no performance loss\").\n";
    return 0;
}
