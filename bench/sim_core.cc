/**
 * @file
 * sim_core — single-thread throughput driver for the simulator core.
 *
 * Two figures, each the p50 over --reps repeated runs:
 *
 *   ticks_per_sec      bare core: Core::tick over a synthetic trace,
 *                      no gating controller and no power model;
 *   instr_per_sec      the full stack (Simulator with DCG + power
 *                      accounting + idle skip-ahead), measured in
 *                      committed instructions per wall second.
 *
 * The measured point is appended to a BENCH_sim.json trajectory
 * (--json), and --baseline/--max-regression turn the run into a CI
 * gate: instr/s below baseline x (1 - max-regression) fails the run,
 * mirroring serve_load and BENCH_serve.json.
 *
 *   sim_core --insts=600000 --warmup=60000 --reps=5 --label=ci-sim \
 *            --json=BENCH_sim.json \
 *            --baseline=BENCH_sim.json --max-regression=0.2
 */

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "branch/predictor.hh"
#include "cache/hierarchy.hh"
#include "common/log.hh"
#include "common/options.hh"
#include "pipeline/core.hh"
#include "serve/json.hh"
#include "sim/presets.hh"
#include "sim/simulator.hh"
#include "trace/spec2000.hh"

using namespace dcg;
using serve::JsonValue;

namespace {

using Clock = std::chrono::steady_clock;

double
elapsedSec(Clock::time_point begin)
{
    return std::chrono::duration<double>(Clock::now() - begin).count();
}

/** Bare core: ticks per second until @p insts instructions commit. */
double
bareTicksPerSec(std::uint64_t insts, std::uint64_t seed)
{
    StatRegistry stats;
    TraceGenerator gen(profileByName("gzip"), seed);
    MemoryHierarchy mem(HierarchyConfig{}, stats);
    BranchPredictor bp(BranchPredictorConfig{}, stats);
    Core core(CoreConfig{}, gen, mem, bp, stats);
    const auto begin = Clock::now();
    while (core.committedInsts() < insts)
        core.tick();
    return static_cast<double>(core.cycle()) / elapsedSec(begin);
}

/** Full stack: committed instructions per second, DCG + power. */
double
fullInstrPerSec(std::uint64_t insts, std::uint64_t warmup,
                std::uint64_t seed)
{
    SimConfig cfg = table1Config("dcg");
    cfg.seed = seed;
    Simulator sim(profileByName("gzip"), cfg);
    const auto begin = Clock::now();
    sim.run(insts, warmup);
    return static_cast<double>(sim.result().instructions) /
           elapsedSec(begin);
}

double
percentile(std::vector<double> sorted, double p)
{
    if (sorted.empty())
        return 0.0;
    std::sort(sorted.begin(), sorted.end());
    const double rank = p * static_cast<double>(sorted.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

/** Append this run's entry to the --json trajectory file. */
void
persistEntry(const std::string &path, const JsonValue &entry)
{
    JsonValue doc;
    bool fresh = true;
    std::ifstream probe(path);
    if (probe.good()) {
        std::string err;
        if (JsonValue::parse(readFile(path), doc, err) &&
            doc.has("entries"))
            fresh = false;
        else
            warn("sim_core: ", path,
                 " is not a trajectory file; rewriting it");
    }
    if (fresh) {
        doc = JsonValue::object();
        doc.set("schema", JsonValue::integer(std::uint64_t{1}));
        doc.set("bench", JsonValue::string("sim_core"));
        doc.set("entries", JsonValue::array());
    }
    JsonValue entries = doc.get("entries");
    entries.push(entry);
    doc.set("entries", entries);
    std::ofstream out(path, std::ios::trunc);
    out << doc.dump() << "\n";
    if (!out)
        fatal("sim_core: cannot write ", path);
}

/** The baseline instr/s: the LAST trajectory entry with our label. */
bool
baselineInstrPerSec(const std::string &path, const std::string &label,
                    double &out)
{
    JsonValue doc;
    std::string err;
    if (!JsonValue::parse(readFile(path), doc, err))
        fatal("sim_core: cannot parse baseline ", path, ": ", err);
    bool found = false;
    for (const JsonValue &e : doc.get("entries").items()) {
        if (e.get("label").asString() != label)
            continue;
        out = e.get("instr_per_sec").asNumber(0.0);
        found = true;
    }
    return found;
}

} // namespace

int
main(int argc, char **argv)
{
    const Options opts(argc, argv,
                       {"insts", "warmup", "reps", "json", "baseline",
                        "max-regression", "label"});
    // Long enough that per-run fixed costs (construction, cache and
    // predictor warm-up) stop moving the figure: at 150k insts the
    // measurement is dominated by them; by 600k it is stable.
    const std::uint64_t insts =
        static_cast<std::uint64_t>(opts.getInt("insts", 600'000));
    const std::uint64_t warmup =
        static_cast<std::uint64_t>(opts.getInt("warmup", 60'000));
    const unsigned reps =
        static_cast<unsigned>(opts.getInt("reps", 5));
    const std::string jsonPath = opts.getString("json", "");
    const std::string baseline = opts.getString("baseline", "");
    const double maxRegression = opts.getDouble("max-regression", 0.2);
    const std::string label = opts.getString("label", "local");
    if (insts == 0 || reps == 0)
        fatal("sim_core: insts/reps must be positive");

    std::vector<double> bare, full;
    for (unsigned r = 0; r < reps; ++r) {
        // A fresh seed per rep keeps any one trace's quirks from
        // defining the figure; the median absorbs scheduler noise.
        bare.push_back(bareTicksPerSec(insts, 1 + r));
        full.push_back(fullInstrPerSec(insts, warmup, 1 + r));
    }
    const double ticksPerSec = percentile(bare, 0.50);
    const double instrPerSec = percentile(full, 0.50);

    std::cout << "sim_core: insts=" << insts << " warmup=" << warmup
              << " reps=" << reps << "\n"
              << "sim_core: bare core " << ticksPerSec
              << " ticks/s (p50)\n"
              << "sim_core: full DCG+power stack " << instrPerSec
              << " committed-instr/s (p50)\n";

    if (!baseline.empty()) {
        double base = 0.0;
        if (!baselineInstrPerSec(baseline, label, base)) {
            warn("sim_core: no baseline entry labelled '", label,
                 "' in ", baseline, "; skipping the gate");
        } else {
            const double gate = base * (1.0 - maxRegression);
            std::cout << "sim_core: baseline=" << base
                      << " instr/s gate=" << gate << " instr/s\n";
            if (instrPerSec < gate)
                fatal("sim_core: ", std::to_string(instrPerSec),
                      " instr/s regressed more than ",
                      std::to_string(maxRegression * 100),
                      "% below baseline ", std::to_string(base));
        }
    }

    if (!jsonPath.empty()) {
        JsonValue entry = JsonValue::object();
        entry.set("label", JsonValue::string(label));
        entry.set("insts", JsonValue::integer(insts));
        entry.set("warmup", JsonValue::integer(warmup));
        entry.set("reps", JsonValue::integer(std::uint64_t{reps}));
        entry.set("ticks_per_sec", JsonValue::number(ticksPerSec));
        entry.set("instr_per_sec", JsonValue::number(instrPerSec));
        persistEntry(jsonPath, entry);
        std::cout << "sim_core: appended '" << label << "' to "
                  << jsonPath << "\n";
    }
    return 0;
}
