/**
 * @file
 * Regenerates the evaluation grids behind Figures 10-17 in a single
 * process. Every figure used to be a standalone binary that re-simulated
 * its own copy of the shared baseline; routed through the session engine
 * the baseline (and every other repeated (benchmark, config) pair) is
 * simulated exactly once, so this driver doubles as a measurement of how
 * much work the result cache removes when producing the full figure set.
 */

#include <chrono>
#include <cstdio>

#include "bench/harness.hh"

using namespace dcg;
using namespace dcg::bench;

int
main()
{
    printHeader("Figures 10-17 (combined)",
                "one engine session shares baseline runs across figures");

    struct FigureGrid {
        const char *name;
        GridRequest req;
    };

    // The same declarative grids the standalone figure binaries request.
    GridRequest all_schemes;
    all_schemes.schemes = {"dcg", "plb-orig", "plb-ext"};

    GridRequest dcg_vs_ext;
    dcg_vs_ext.schemes = {"dcg", "plb-ext"};

    GridRequest deep;
    deep.deepPipeline = true;

    const FigureGrid figures[] = {
        {"fig10 total power", all_schemes},
        {"fig11 power-delay", all_schemes},
        {"fig12 int units", dcg_vs_ext},
        {"fig13 fp units", dcg_vs_ext},
        {"fig14 latches", dcg_vs_ext},
        {"fig15 dcache", dcg_vs_ext},
        {"fig16 result bus", dcg_vs_ext},
        {"fig17 deep pipeline", deep},
    };

    auto &engine = exp::sessionEngine();
    std::uint64_t jobs_total = 0;
    const auto t0 = std::chrono::steady_clock::now();
    for (const FigureGrid &fig : figures) {
        const auto before = engine.cacheMisses();
        const auto results = runGrid(fig.req);
        jobs_total += exp::gridJobs(fig.req).size();
        const auto simulated = engine.cacheMisses() - before;
        std::printf("%-22s %2zu benchmarks, %3zu jobs, %3llu simulated\n",
                    fig.name, results.size(),
                    exp::gridJobs(fig.req).size(),
                    static_cast<unsigned long long>(simulated));
    }
    const auto elapsed = std::chrono::duration<double>(
        std::chrono::steady_clock::now() - t0);

    std::printf("\ntotal: %llu jobs requested, %llu simulated "
                "(%llu served from cache) in %.1f s\n",
                static_cast<unsigned long long>(jobs_total),
                static_cast<unsigned long long>(engine.cacheMisses()),
                static_cast<unsigned long long>(engine.cacheHits()),
                elapsed.count());
    printEngineSummary();
    return 0;
}
