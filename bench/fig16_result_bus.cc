/**
 * @file
 * Figure 16: result-bus driver power savings (bus used ~40 % of
 * cycles). Paper: DCG 59.6 % average; PLB-ext 32.2 %.
 */

#include "bench/harness.hh"

using namespace dcg;
using namespace dcg::bench;

int
main()
{
    runComponentFigure(
        "Figure 16 — result bus driver power savings (%)",
        "drivers gated in cycles with no scheduled writeback",
        [](const RunResult &r) { return r.resultBusPJ; },
        "(paper avg ~59.6%)", "(paper avg ~32.2%)");
    return 0;
}
