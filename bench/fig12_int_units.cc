/**
 * @file
 * Figure 12: power savings in the integer execution units.
 * Paper: DCG ~72.0 % average (utilisation ~35 % for int codes, so
 * near-all idle-cycle power is recovered); PLB-ext ~29.6 %.
 */

#include "bench/harness.hh"

using namespace dcg;
using namespace dcg::bench;

int
main()
{
    runComponentFigure(
        "Figure 12 — integer execution unit power savings (%)",
        "clock/precharge of idle int ALU + mul/div units recovered",
        [](const RunResult &r) { return r.intUnitsPJ; },
        "(paper avg ~72.0%)", "(paper avg ~29.6%)");
    return 0;
}
