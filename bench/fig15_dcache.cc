/**
 * @file
 * Figure 15: D-cache power savings from gating the per-port wordline
 * decoders (decoders are ~40 % of D-cache power; ports are used ~40 %
 * of cycles). Paper: DCG 22.6 % of total D-cache power; PLB-ext 8.1 %.
 */

#include "bench/harness.hh"

using namespace dcg;
using namespace dcg::bench;

int
main()
{
    runComponentFigure(
        "Figure 15 — D-cache power savings (%)",
        "idle-port wordline decoders gated; % of total D-cache power",
        [](const RunResult &r) { return r.dcachePJ; },
        "(paper avg ~22.6%)", "(paper avg ~8.1%)");
    return 0;
}
