/**
 * @file
 * Figure 11: power-delay savings. Because DCG loses no performance its
 * power-delay saving equals its power saving; PLB's bars shrink by its
 * slowdown (paper: PLB-orig 3.5/2.0 %, PLB-ext 8.3/5.9 %; PLB loses
 * ~2.9 % performance).
 */

#include <iostream>

#include "bench/harness.hh"
#include "common/table.hh"

using namespace dcg;
using namespace dcg::bench;

int
main()
{
    printHeader("Figure 11 — power-delay savings (%)",
                "power x delay per instruction vs baseline");

    GridRequest req;
    req.schemes = {"dcg", "plb-orig", "plb-ext"};
    const auto grid = runGrid(req);

    TextTable t({"bench", "suite", "DCG", "PLB-orig", "PLB-ext",
                 "PLB-ext dIPC"});
    for (const auto &r : grid) {
        t.addRow({r.profile.name, r.profile.isFp ? "fp" : "int",
                  TextTable::pct(powerDelaySaving(r.base(), r.dcg())),
                  TextTable::pct(powerDelaySaving(r.base(), r.plbOrig())),
                  TextTable::pct(powerDelaySaving(r.base(), r.plbExt())),
                  TextTable::pct(1.0 - r.plbExt().ipc / r.base().ipc)});
    }
    t.print(std::cout);

    const auto dcg_pd = meansBySuite(grid, [](const SchemeResults &r) {
        return powerDelaySaving(r.base(), r.dcg());
    });
    const auto dcg_p = meansBySuite(grid, [](const SchemeResults &r) {
        return powerSaving(r.base(), r.dcg());
    });
    const auto orig_pd = meansBySuite(grid, [](const SchemeResults &r) {
        return powerDelaySaving(r.base(), r.plbOrig());
    });
    const auto ext_pd = meansBySuite(grid, [](const SchemeResults &r) {
        return powerDelaySaving(r.base(), r.plbExt());
    });
    const auto loss = meansBySuite(grid, [](const SchemeResults &r) {
        return 1.0 - r.plbOrig().ipc / r.base().ipc;
    });

    std::cout << "\nAverages (measured vs paper):\n"
              << "  DCG      int " << TextTable::pct(dcg_pd.intMean)
              << "%  fp " << TextTable::pct(dcg_pd.fpMean)
              << "%  (== its power saving "
              << TextTable::pct(dcg_p.intMean) << "/"
              << TextTable::pct(dcg_p.fpMean)
              << " since DCG loses no performance)\n"
              << "  PLB-orig int " << TextTable::pct(orig_pd.intMean)
              << "% (paper 3.5)   fp " << TextTable::pct(orig_pd.fpMean)
              << "% (paper 2.0)\n"
              << "  PLB-ext  int " << TextTable::pct(ext_pd.intMean)
              << "% (paper 8.3)   fp " << TextTable::pct(ext_pd.fpMean)
              << "% (paper 5.9)\n"
              << "  PLB-orig perf loss int "
              << TextTable::pct(loss.intMean) << "%  fp "
              << TextTable::pct(loss.fpMean) << "% (paper ~2.9%)\n";
    printEngineSummary();
    return 0;
}
