/**
 * @file
 * Figure 17: DCG on a deeper pipeline. The 20-stage machine adds
 * gateable latch groups to every phase except fetch/decode/issue, so
 * DCG's savings grow (paper: 24.5 % vs the 8-stage machine's 19.9 %).
 */

#include <iostream>

#include "bench/harness.hh"
#include "common/table.hh"

using namespace dcg;
using namespace dcg::bench;

int
main()
{
    printHeader("Figure 17 — DCG savings: 8-stage vs 20-stage pipeline",
                "total power savings (%) per benchmark");

    GridRequest shallow;
    const auto grid8 = runGrid(shallow);
    GridRequest deep;
    deep.deepPipeline = true;
    const auto grid20 = runGrid(deep);

    TextTable t({"bench", "suite", "8-stage", "20-stage"});
    double sum8 = 0.0, sum20 = 0.0;
    for (std::size_t i = 0; i < grid8.size(); ++i) {
        const double s8 = powerSaving(grid8[i].base(), grid8[i].dcg());
        const double s20 = powerSaving(grid20[i].base(), grid20[i].dcg());
        sum8 += s8;
        sum20 += s20;
        t.addRow({grid8[i].profile.name,
                  grid8[i].profile.isFp ? "fp" : "int",
                  TextTable::pct(s8), TextTable::pct(s20)});
    }
    t.print(std::cout);

    std::cout << "\nAverages: 8-stage "
              << TextTable::pct(sum8 / grid8.size())
              << "% (paper 19.9)   20-stage "
              << TextTable::pct(sum20 / grid20.size())
              << "% (paper 24.5)\n";
    printEngineSummary();
    return 0;
}
