/**
 * @file
 * Sections 5.2-5.5 (prose numbers): component utilisations on the
 * baseline machine, which determine every gating opportunity.
 * Paper: int units ~35 % (int codes) / ~25 % (fp codes); FPUs ~23 %
 * (fp) / ~0 (int); latches ~60 %; D-cache ports ~40 %; result bus
 * ~40 %.
 */

#include <iostream>

#include "bench/harness.hh"
#include "common/table.hh"

using namespace dcg;
using namespace dcg::bench;

int
main()
{
    printHeader("Sections 5.2-5.5 — baseline component utilisations (%)",
                "fraction of capacity busy per cycle; 1-util is DCG's "
                "opportunity");

    GridRequest req;
    req.schemes.clear();  // utilisation is a property of the baseline
    const auto grid = runGrid(req);

    TextTable t({"bench", "suite", "IPC", "intU", "fpU", "latch",
                 "d$port", "rbus"});
    for (const auto &r : grid) {
        t.addRow({r.profile.name, r.profile.isFp ? "fp" : "int",
                  TextTable::num(r.base().ipc, 2),
                  TextTable::pct(r.base().intUnitUtil),
                  TextTable::pct(r.base().fpUnitUtil),
                  TextTable::pct(r.base().latchUtil),
                  TextTable::pct(r.base().dcachePortUtil),
                  TextTable::pct(r.base().resultBusUtil)});
    }
    t.print(std::cout);

    auto mean = [&](auto pick) {
        return meansBySuite(grid, [&](const SchemeResults &r) {
            return pick(r.base());
        });
    };
    const auto iu = mean([](const RunResult &r) { return r.intUnitUtil; });
    const auto fu = mean([](const RunResult &r) { return r.fpUnitUtil; });
    const auto lu = mean([](const RunResult &r) { return r.latchUtil; });
    const auto du = mean([](const RunResult &r) {
        return r.dcachePortUtil;
    });
    const auto bu = mean([](const RunResult &r) {
        return r.resultBusUtil;
    });

    std::cout << "\nAverages (measured int/fp vs paper):\n"
              << "  int units   " << TextTable::pct(iu.intMean) << "/"
              << TextTable::pct(iu.fpMean) << "  (paper ~35/~25)\n"
              << "  FP units    " << TextTable::pct(fu.intMean) << "/"
              << TextTable::pct(fu.fpMean) << "  (paper ~0/~23)\n"
              << "  latches     " << TextTable::pct(lu.intMean) << "/"
              << TextTable::pct(lu.fpMean) << "  (paper ~60 overall)\n"
              << "  D$ ports    " << TextTable::pct(du.intMean) << "/"
              << TextTable::pct(du.fpMean) << "  (paper ~40)\n"
              << "  result bus  " << TextTable::pct(bu.intMean) << "/"
              << TextTable::pct(bu.fpMean) << "  (paper ~40)\n";
    printEngineSummary();
    return 0;
}
