/**
 * @file
 * Deviation study: the headline experiments (like any trace-driven
 * reproduction) do not execute wrong-path instructions; DESIGN.md Sec 6
 * flags this. This binary turns on wrong-path *fetch* modelling —
 * speculative fetch energy plus I-cache pollution while a mispredict
 * is unresolved — and measures how much it moves the baseline power
 * and DCG's relative savings.
 */

#include <iostream>

#include "bench/harness.hh"
#include "common/table.hh"

using namespace dcg;
using namespace dcg::bench;

int
main()
{
    printHeader("Deviation study — wrong-path fetch power",
                "baseline power and DCG savings with/without wrong-path"
                " fetch");

    const std::uint64_t insts = defaultBenchInstructions();
    const std::uint64_t warm = defaultBenchWarmup();

    TextTable t({"bench", "baseW", "baseW+wp", "DCG% ", "DCG%+wp",
                 "dIPC (%)"});
    for (const char *name : {"gzip", "gcc", "twolf", "parser", "art"}) {
        const Profile p = profileByName(name);

        SimConfig b0 = table1Config(GatingScheme::None);
        SimConfig d0 = table1Config(GatingScheme::Dcg);
        SimConfig b1 = b0, d1 = d0;
        b1.core.modelWrongPathFetch = true;
        d1.core.modelWrongPathFetch = true;

        const RunResult rb0 = runBenchmark(p, b0, insts, warm);
        const RunResult rd0 = runBenchmark(p, d0, insts, warm);
        const RunResult rb1 = runBenchmark(p, b1, insts, warm);
        const RunResult rd1 = runBenchmark(p, d1, insts, warm);

        t.addRow({name, TextTable::num(rb0.avgPowerW, 1),
                  TextTable::num(rb1.avgPowerW, 1),
                  TextTable::pct(powerSaving(rb0, rd0)),
                  TextTable::pct(powerSaving(rb1, rd1)),
                  TextTable::pct(1.0 - rb1.ipc / rb0.ipc, 2)});
    }
    t.print(std::cout);
    std::cout << "\nWrong-path fetch raises ungated front-end power a "
                 "little, nudging DCG's\n*relative* savings down by "
                 "well under a point — the deviation noted in\n"
                 "DESIGN.md Sec 6 is immaterial to the conclusions.\n";
    return 0;
}
