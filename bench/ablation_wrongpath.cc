/**
 * @file
 * Deviation study: the headline experiments (like any trace-driven
 * reproduction) do not execute wrong-path instructions; DESIGN.md Sec 6
 * flags this. This binary turns on wrong-path *fetch* modelling —
 * speculative fetch energy plus I-cache pollution while a mispredict
 * is unresolved — and measures how much it moves the baseline power
 * and DCG's relative savings.
 */

#include <iostream>
#include <vector>

#include "bench/harness.hh"
#include "common/table.hh"

using namespace dcg;
using namespace dcg::bench;

int
main()
{
    printHeader("Deviation study — wrong-path fetch power",
                "baseline power and DCG savings with/without wrong-path"
                " fetch");

    SimConfig b0 = table1Config("base");
    SimConfig d0 = table1Config("dcg");
    SimConfig b1 = b0, d1 = d0;
    b1.core.modelWrongPathFetch = true;
    d1.core.modelWrongPathFetch = true;

    const char *benches[] = {"gzip", "gcc", "twolf", "parser", "art"};

    std::vector<exp::Job> jobs;
    for (const char *name : benches) {
        const Profile p = profileByName(name);
        for (const SimConfig &cfg : {b0, d0, b1, d1})
            jobs.push_back(exp::makeJob(p, cfg));
    }
    const auto results = runJobs(jobs);

    TextTable t({"bench", "baseW", "baseW+wp", "DCG% ", "DCG%+wp",
                 "dIPC (%)"});
    std::size_t i = 0;
    for (const char *name : benches) {
        const RunResult &rb0 = results[i++];
        const RunResult &rd0 = results[i++];
        const RunResult &rb1 = results[i++];
        const RunResult &rd1 = results[i++];

        t.addRow({name, TextTable::num(rb0.avgPowerW, 1),
                  TextTable::num(rb1.avgPowerW, 1),
                  TextTable::pct(powerSaving(rb0, rd0)),
                  TextTable::pct(powerSaving(rb1, rd1)),
                  TextTable::pct(1.0 - rb1.ipc / rb0.ipc, 2)});
    }
    t.print(std::cout);
    std::cout << "\nWrong-path fetch raises ungated front-end power a "
                 "little, nudging DCG's\n*relative* savings down by "
                 "well under a point — the deviation noted in\n"
                 "DESIGN.md Sec 6 is immaterial to the conclusions.\n";
    printEngineSummary();
    return 0;
}
