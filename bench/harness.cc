#include "bench/harness.hh"

#include <iostream>

#include "common/table.hh"

namespace dcg::bench {

std::vector<SchemeResults>
runGrid(const GridRequest &req)
{
    const std::uint64_t insts = defaultBenchInstructions();
    const std::uint64_t warm = defaultBenchWarmup();

    auto config = [&](GatingScheme s) {
        return req.deepPipeline ? deepPipelineConfig(s) : table1Config(s);
    };

    std::vector<SchemeResults> grid;
    for (const Profile &p : allSpecProfiles()) {
        SchemeResults r;
        r.profile = p;
        r.base = runBenchmark(p, config(GatingScheme::None), insts, warm);
        if (req.wantDcg)
            r.dcg = runBenchmark(p, config(GatingScheme::Dcg), insts,
                                 warm);
        if (req.wantPlbOrig)
            r.plbOrig = runBenchmark(p, config(GatingScheme::PlbOrig),
                                     insts, warm);
        if (req.wantPlbExt)
            r.plbExt = runBenchmark(p, config(GatingScheme::PlbExt),
                                    insts, warm);
        grid.push_back(std::move(r));
    }
    return grid;
}

double
powerSaving(const RunResult &base, const RunResult &gated)
{
    return 1.0 - gated.avgPowerW / base.avgPowerW;
}

double
powerDelaySaving(const RunResult &base, const RunResult &gated)
{
    // Power x delay per instruction: P * (cycles/inst) — both a power
    // increase and a slowdown reduce the saving (Figure 11).
    const double base_pd = base.avgPowerW / base.ipc;
    const double gated_pd = gated.avgPowerW / gated.ipc;
    return 1.0 - gated_pd / base_pd;
}

double
componentSaving(const RunResult &base, const RunResult &gated,
                const std::function<double(const RunResult &)> &pick)
{
    // Component energies are compared per cycle so that PLB's longer
    // runtime does not masquerade as savings.
    const double base_rate = pick(base) / static_cast<double>(base.cycles);
    const double gated_rate =
        pick(gated) / static_cast<double>(gated.cycles);
    return 1.0 - gated_rate / base_rate;
}

IntFpMeans
meansBySuite(const std::vector<SchemeResults> &grid,
             const std::function<double(const SchemeResults &)> &value)
{
    double int_sum = 0.0, fp_sum = 0.0;
    unsigned int_n = 0, fp_n = 0;
    for (const auto &r : grid) {
        if (r.profile.isFp) {
            fp_sum += value(r);
            ++fp_n;
        } else {
            int_sum += value(r);
            ++int_n;
        }
    }
    return {int_n ? int_sum / int_n : 0.0, fp_n ? fp_sum / fp_n : 0.0};
}

void
printHeader(const std::string &figure, const std::string &claim)
{
    std::cout << "==================================================\n"
              << figure << "\n" << claim << "\n"
              << "(runs: " << defaultBenchInstructions()
              << " instructions after " << defaultBenchWarmup()
              << " warm-up; override with DCG_BENCH_INSTS /"
              << " DCG_BENCH_WARMUP)\n"
              << "==================================================\n";
}

void
runComponentFigure(const std::string &figure, const std::string &claim,
                   const std::function<double(const RunResult &)> &pick,
                   const std::string &paper_dcg,
                   const std::string &paper_ext)
{
    printHeader(figure, claim);

    GridRequest req;
    req.wantPlbExt = true;
    const auto grid = runGrid(req);

    TextTable t({"bench", "suite", "DCG", "PLB-ext"});
    for (const auto &r : grid) {
        t.addRow({r.profile.name, r.profile.isFp ? "fp" : "int",
                  TextTable::pct(componentSaving(r.base, r.dcg, pick)),
                  TextTable::pct(componentSaving(r.base, r.plbExt,
                                                 pick))});
    }
    t.print(std::cout);

    const auto dcg_m = meansBySuite(grid, [&](const SchemeResults &r) {
        return componentSaving(r.base, r.dcg, pick);
    });
    const auto ext_m = meansBySuite(grid, [&](const SchemeResults &r) {
        return componentSaving(r.base, r.plbExt, pick);
    });
    std::cout << "\nAverages:\n"
              << "  DCG     int " << TextTable::pct(dcg_m.intMean)
              << "%  fp " << TextTable::pct(dcg_m.fpMean) << "%   "
              << paper_dcg << "\n"
              << "  PLB-ext int " << TextTable::pct(ext_m.intMean)
              << "%  fp " << TextTable::pct(ext_m.fpMean) << "%   "
              << paper_ext << "\n";
}

} // namespace dcg::bench
