#include "bench/harness.hh"

#include <iostream>

#include "common/table.hh"

namespace dcg::bench {

std::vector<SchemeResults>
runGrid(const GridRequest &req)
{
    return exp::runGrid(exp::sessionEngine(), req);
}

std::vector<RunResult>
runJobs(const std::vector<exp::Job> &jobs)
{
    return exp::sessionEngine().run(jobs);
}

void
printHeader(const std::string &figure, const std::string &claim)
{
    std::cout << "==================================================\n"
              << figure << "\n" << claim << "\n"
              << "(runs: " << defaultBenchInstructions()
              << " instructions after " << defaultBenchWarmup()
              << " warm-up; override with DCG_BENCH_INSTS /"
              << " DCG_BENCH_WARMUP; workers: "
              << exp::sessionEngine().workers()
              << ", override with DCG_JOBS)\n"
              << "==================================================\n";
}

void
printEngineSummary()
{
    const exp::Engine &e = exp::sessionEngine();
    std::cout << "\n[engine] " << e.workers() << " worker(s), "
              << e.cacheMisses() << " simulation(s), "
              << e.cacheHits() << " cache hit(s)\n";
}

void
runComponentFigure(const std::string &figure, const std::string &claim,
                   const std::function<double(const RunResult &)> &pick,
                   const std::string &paper_dcg,
                   const std::string &paper_ext)
{
    printHeader(figure, claim);

    GridRequest req;
    req.schemes = {"dcg", "plb-ext"};
    const auto grid = runGrid(req);

    TextTable t({"bench", "suite", "DCG", "PLB-ext"});
    for (const auto &r : grid) {
        t.addRow({r.profile.name, r.profile.isFp ? "fp" : "int",
                  TextTable::pct(componentSaving(r.base(), r.dcg(), pick)),
                  TextTable::pct(componentSaving(r.base(), r.plbExt(),
                                                 pick))});
    }
    t.print(std::cout);

    const auto dcg_m = meansBySuite(grid, [&](const SchemeResults &r) {
        return componentSaving(r.base(), r.dcg(), pick);
    });
    const auto ext_m = meansBySuite(grid, [&](const SchemeResults &r) {
        return componentSaving(r.base(), r.plbExt(), pick);
    });
    std::cout << "\nAverages:\n"
              << "  DCG     int " << TextTable::pct(dcg_m.intMean)
              << "%  fp " << TextTable::pct(dcg_m.fpMean) << "%   "
              << paper_dcg << "\n"
              << "  PLB-ext int " << TextTable::pct(ext_m.intMean)
              << "%  fp " << TextTable::pct(ext_m.fpMean) << "%   "
              << paper_ext << "\n";
    printEngineSummary();
}

} // namespace dcg::bench
