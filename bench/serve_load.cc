/**
 * @file
 * serve_load — throughput/latency driver for the multiplexed serving
 * layer (connections x in-flight x nodes).
 *
 * Topology: --nodes in-process dcgserved shards on a shared ring with
 * --workers simulation workers each. --connections independent load
 * generators each hold --inflight protocol-v4 submit+wait frames
 * pipelined on ONE persistent PeerLink to an entry node (entry nodes
 * round-robin over the ring), so with nodes > 1 a steady fraction of
 * the jobs is forwarded shard-to-shard over the server-side
 * multiplexed peer links — the path this driver exists to measure.
 *
 * Every run is also a correctness check: the assembled grid must be
 * byte-identical to a local Engine run of the same jobs, and with
 * nodes > 1 the cluster must demonstrably pipeline — the peak number
 * of concurrently in-flight forwarded jobs on some node has to reach
 * 4x that node's worker count (workers only simulate; the event loop
 * owns every wire exchange).
 *
 * The measured point is appended to a BENCH_serve.json trajectory
 * (--json), and --baseline/--max-regression turn the run into a CI
 * gate: jobs/s below baseline x (1 - max-regression) fails the run.
 *
 *   serve_load --nodes=2 --workers=2 --connections=4 --inflight=32 \
 *              --jobs=128 --insts=2000 --label=ci-2node \
 *              --json=BENCH_serve.json \
 *              --baseline=BENCH_serve.json --max-regression=0.2
 */

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <fstream>
#include <functional>
#include <iostream>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/log.hh"
#include "common/options.hh"
#include "exp/engine.hh"
#include "serve/client.hh"
#include "serve/peerlink.hh"
#include "serve/protocol.hh"
#include "serve/server.hh"
#include "sim/report.hh"

using namespace dcg;
using namespace dcg::serve;

namespace {

using Clock = std::chrono::steady_clock;

/** The job list: distinct seeds = distinct keys spread over the ring,
 *  so every job is a real simulation, never a cache hit. */
std::vector<JobSpec>
makeSpecs(std::size_t jobs, std::uint64_t insts)
{
    std::vector<JobSpec> specs;
    const char *benches[] = {"gzip", "mcf", "twolf", "art"};
    for (std::size_t i = 0; i < jobs; ++i) {
        JobSpec s;
        s.bench = benches[i % 4];
        s.scheme = i % 2 == 0 ? "dcg" : "base";
        s.insts = insts;
        s.warmup = insts / 4;
        s.seed = 1 + i;
        specs.push_back(s);
    }
    return specs;
}

std::string
asJson(const std::vector<RunResult> &results)
{
    std::ostringstream os;
    writeResultsJson(results, os);
    return os.str();
}

/** An in-process ring of dcgserved shards, torn down on destruction. */
class BenchCluster
{
  public:
    BenchCluster(std::size_t n, unsigned workers)
    {
        for (std::size_t i = 0; i < n; ++i) {
            ServerConfig cfg;
            cfg.host = "127.0.0.1";
            cfg.port = 0;
            cfg.workers = workers;
            // Backpressure would distort the measurement: size the
            // queue for the whole offered load instead.
            cfg.queueCapacity = 4096;
            servers.push_back(std::make_unique<Server>(cfg));
            eps.push_back(
                Endpoint{"127.0.0.1", servers.back()->port()});
        }
        for (std::size_t i = 0; i < n; ++i) {
            servers[i]->configureCluster(eps, eps[i].str());
            threads.emplace_back(
                [&srv = *servers[i]] { srv.run(); });
        }
    }

    ~BenchCluster()
    {
        for (std::size_t i = 0; i < servers.size(); ++i) {
            servers[i]->requestStop();
            if (threads[i].joinable())
                threads[i].join();
        }
    }

    const std::vector<Endpoint> &endpoints() const { return eps; }

    JsonValue nodeStats(std::size_t i)
    {
        Connection conn;
        std::string err;
        if (!conn.open(eps[i], err))
            fatal("serve_load: stats connect: ", err);
        JsonValue req = JsonValue::object();
        req.set("op", JsonValue::string("stats"));
        JsonValue resp;
        if (!conn.roundTrip(req, resp, err))
            fatal("serve_load: stats: ", err);
        return resp.get("stats");
    }

  private:
    std::vector<std::unique_ptr<Server>> servers;
    std::vector<std::thread> threads;
    std::vector<Endpoint> eps;
};

/** Everything the completion handlers share. */
struct Board
{
    std::mutex m;
    std::condition_variable cv;
    std::size_t live = 0;
    bool failed = false;
    std::string failMsg;
    std::vector<JsonValue> results;  ///< by global job index
    std::vector<double> latencyMs;   ///< by global job index
    std::vector<Clock::time_point> sentAt;
};

struct LoadConn
{
    std::unique_ptr<LinkLoop> loop;
    std::vector<std::size_t> slice;  ///< global job indices
    std::size_t next = 0;            ///< guarded by Board::m
    std::shared_ptr<std::function<void(std::size_t)>> launch;
};

double
percentile(std::vector<double> sorted, double p)
{
    if (sorted.empty())
        return 0.0;
    std::sort(sorted.begin(), sorted.end());
    const double rank = p * static_cast<double>(sorted.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

/** Append this run's entry to the --json trajectory file. */
void
persistEntry(const std::string &path, const JsonValue &entry)
{
    JsonValue doc;
    bool fresh = true;
    std::ifstream probe(path);
    if (probe.good()) {
        std::string err;
        if (JsonValue::parse(readFile(path), doc, err) &&
            doc.has("entries"))
            fresh = false;
        else
            warn("serve_load: ", path,
                 " is not a trajectory file; rewriting it");
    }
    if (fresh) {
        doc = JsonValue::object();
        doc.set("schema", JsonValue::integer(std::uint64_t{1}));
        doc.set("bench", JsonValue::string("serve_load"));
        doc.set("entries", JsonValue::array());
    }
    JsonValue entries = doc.get("entries");
    entries.push(entry);
    doc.set("entries", entries);
    std::ofstream out(path, std::ios::trunc);
    out << doc.dump() << "\n";
    if (!out)
        fatal("serve_load: cannot write ", path);
}

/** The baseline jobs/s: the LAST trajectory entry with our label. */
bool
baselineJobsPerSec(const std::string &path, const std::string &label,
                   double &out)
{
    JsonValue doc;
    std::string err;
    if (!JsonValue::parse(readFile(path), doc, err))
        fatal("serve_load: cannot parse baseline ", path, ": ", err);
    bool found = false;
    for (const JsonValue &e : doc.get("entries").items()) {
        if (e.get("label").asString() != label)
            continue;
        out = e.get("jobs_per_sec").asNumber(0.0);
        found = true;
    }
    return found;
}

} // namespace

int
main(int argc, char **argv)
{
    const Options opts(argc, argv,
                       {"nodes", "workers", "connections", "inflight",
                        "jobs", "insts", "json", "baseline",
                        "max-regression", "label"});
    const std::size_t nodes =
        static_cast<std::size_t>(opts.getInt("nodes", 2));
    const unsigned workers =
        static_cast<unsigned>(opts.getInt("workers", 2));
    const std::size_t connections =
        static_cast<std::size_t>(opts.getInt("connections", 4));
    const std::size_t inflight =
        static_cast<std::size_t>(opts.getInt("inflight", 32));
    const std::size_t jobs =
        static_cast<std::size_t>(opts.getInt("jobs", 128));
    const std::uint64_t insts =
        static_cast<std::uint64_t>(opts.getInt("insts", 2000));
    const std::string jsonPath = opts.getString("json", "");
    const std::string baseline = opts.getString("baseline", "");
    const double maxRegression =
        opts.getDouble("max-regression", 0.2);
    const std::string label = opts.getString("label", "local");
    if (nodes == 0 || connections == 0 || inflight == 0 || jobs == 0)
        fatal("serve_load: nodes/connections/inflight/jobs must be "
              "positive");

    const std::vector<JobSpec> specs = makeSpecs(jobs, insts);

    // The ground truth this cluster must reproduce byte-for-byte.
    std::string expected;
    {
        exp::Engine local(workers);
        std::vector<exp::Job> lj;
        for (const JobSpec &s : specs)
            lj.push_back(s.toJob());
        expected = asJson(local.run(lj));
    }

    BenchCluster cluster(nodes, workers);

    // One LinkLoop per connection; jobs dealt round-robin so every
    // connection works a representative slice of the key space.
    std::vector<LoadConn> conns(connections);
    for (std::size_t c = 0; c < connections; ++c) {
        const Endpoint entry =
            cluster.endpoints()[c % cluster.endpoints().size()];
        conns[c].loop = std::make_unique<LinkLoop>(
            std::vector<Endpoint>{entry}, /*peerTimeoutMs=*/0);
        conns[c].loop->start();
    }
    for (std::size_t i = 0; i < jobs; ++i)
        conns[i % connections].slice.push_back(i);

    Board bd;
    bd.results.resize(jobs);
    bd.latencyMs.resize(jobs, 0.0);
    bd.sentAt.resize(jobs);
    bd.live = jobs;

    for (std::size_t c = 0; c < connections; ++c) {
        LoadConn &conn = conns[c];
        PeerPool &pool = conn.loop->pool();
        conn.launch =
            std::make_shared<std::function<void(std::size_t)>>();
        auto launch = conn.launch;
        *launch = [&bd, &conn, &pool, launch,
                   &specs](std::size_t idx) {
            JsonValue req = JsonValue::object();
            req.set("op", JsonValue::string("submit"));
            req.set("job", specs[idx].toJson());
            req.set("wait", JsonValue::boolean(true));
            {
                std::lock_guard<std::mutex> g(bd.m);
                if (bd.sentAt[idx] == Clock::time_point{})
                    bd.sentAt[idx] = Clock::now();
            }
            pool.post(0, std::move(req), [&bd, &conn, &pool, launch,
                                          idx](PeerReply rr) {
                bool relaunchBusy = false;
                bool hasNext = false;
                std::size_t next = 0;
                {
                    std::lock_guard<std::mutex> g(bd.m);
                    if (!rr.transportOk) {
                        bd.failed = true;
                        bd.failMsg = "transport: " + rr.error;
                    } else if (rr.resp.get("ok").asBool(false)) {
                        bd.results[idx] = rr.resp.get("result");
                        bd.latencyMs[idx] =
                            std::chrono::duration<double,
                                                  std::milli>(
                                Clock::now() - bd.sentAt[idx])
                                .count();
                    } else if (rr.resp.get("error").asString() ==
                               "busy") {
                        relaunchBusy = true;
                    } else {
                        bd.failed = true;
                        bd.failMsg =
                            rr.resp.get("error").asString() + ": " +
                            rr.resp.get("detail").asString();
                    }
                    if (!relaunchBusy) {
                        --bd.live;
                        if (!bd.failed &&
                            conn.next < conn.slice.size()) {
                            hasNext = true;
                            next = conn.slice[conn.next++];
                        }
                        bd.cv.notify_all();
                    }
                }
                if (relaunchBusy) {
                    const unsigned delay = static_cast<unsigned>(
                        rr.resp.get("retry_after_ms").asU64(250));
                    pool.schedule(delay,
                                  [launch, idx] { (*launch)(idx); });
                } else if (hasNext) {
                    (*launch)(next);
                }
            });
        };
    }

    const auto begin = Clock::now();
    for (LoadConn &conn : conns) {
        const std::size_t first =
            std::min(inflight, conn.slice.size());
        {
            // The launcher locks bd.m itself: set the refill cursor
            // first, then launch without the lock held.
            std::lock_guard<std::mutex> g(bd.m);
            conn.next = first;
        }
        for (std::size_t s = 0; s < first; ++s)
            (*conn.launch)(conn.slice[s]);
    }
    {
        std::unique_lock<std::mutex> lk(bd.m);
        bd.cv.wait(lk, [&] { return bd.live == 0 || bd.failed; });
        // On failure, outstanding completions still hold references:
        // wait for every launched request to settle before teardown.
        bd.cv.wait(lk, [&] { return bd.live == 0; });
    }
    const double elapsedSec =
        std::chrono::duration<double>(Clock::now() - begin).count();
    for (LoadConn &conn : conns)
        *conn.launch = nullptr;  // break the self-reference cycle
    for (LoadConn &conn : conns)
        conn.loop->stop();

    if (bd.failed)
        fatal("serve_load: ", bd.failMsg);

    // Byte-identity: the pipelined, forwarded, rid-matched grid must
    // equal the local run token for token.
    std::vector<RunResult> got;
    for (std::size_t i = 0; i < jobs; ++i) {
        std::vector<RunResult> one;
        std::string err;
        if (!resultsFromJson(bd.results[i], one, err) ||
            one.size() != 1)
            fatal("serve_load: malformed result for job ",
                  std::to_string(i), ": ", err);
        got.push_back(one[0]);
    }
    if (asJson(got) != expected)
        fatal("serve_load: remote grid is not byte-identical to the "
              "local run");

    const double jobsPerSec =
        static_cast<double>(jobs) / elapsedSec;
    const double p50 = percentile(bd.latencyMs, 0.50);
    const double p99 = percentile(bd.latencyMs, 0.99);

    std::uint64_t forwards = 0;
    std::uint64_t peakInflightForwards = 0;
    std::uint64_t simulations = 0;
    for (std::size_t i = 0; i < nodes; ++i) {
        const JsonValue s = cluster.nodeStats(i);
        forwards += s.get("jobs_forwarded").asU64(0);
        peakInflightForwards =
            std::max(peakInflightForwards,
                     s.get("forwards_inflight_peak").asU64(0));
        simulations += s.get("simulations").asU64(0);
    }

    std::cout << "serve_load: nodes=" << nodes
              << " workers=" << workers
              << " connections=" << connections
              << " inflight=" << inflight << " jobs=" << jobs
              << " insts=" << insts << "\n"
              << "serve_load: " << jobsPerSec << " jobs/s  p50="
              << p50 << "ms  p99=" << p99 << "ms  elapsed="
              << elapsedSec << "s\n"
              << "serve_load: forwards=" << forwards
              << " forwards_inflight_peak=" << peakInflightForwards
              << " simulations=" << simulations << "\n";

    // The pipelining criterion: workers only simulate, so a node must
    // be able to hold far more forwarded jobs in flight than it has
    // workers — 4x is the floor the trajectory is held to.
    if (nodes > 1) {
        const std::uint64_t floor = 4 * workers;
        if (peakInflightForwards < floor)
            fatal("serve_load: forwards_inflight_peak ",
                  std::to_string(peakInflightForwards),
                  " never reached 4x workers (",
                  std::to_string(floor),
                  "): the cluster is not pipelining");
        std::cout << "serve_load: pipelining criterion ok ("
                  << peakInflightForwards << " >= " << floor
                  << ")\n";
    }

    if (!baseline.empty()) {
        double base = 0.0;
        if (!baselineJobsPerSec(baseline, label, base)) {
            warn("serve_load: no baseline entry labelled '", label,
                 "' in ", baseline, "; skipping the gate");
        } else {
            const double gate = base * (1.0 - maxRegression);
            std::cout << "serve_load: baseline=" << base
                      << " jobs/s gate=" << gate << " jobs/s\n";
            if (jobsPerSec < gate)
                fatal("serve_load: ", std::to_string(jobsPerSec),
                      " jobs/s regressed more than ",
                      std::to_string(maxRegression * 100),
                      "% below baseline ", std::to_string(base));
        }
    }

    if (!jsonPath.empty()) {
        JsonValue entry = JsonValue::object();
        entry.set("label", JsonValue::string(label));
        entry.set("nodes", JsonValue::integer(std::uint64_t{nodes}));
        entry.set("workers",
                  JsonValue::integer(std::uint64_t{workers}));
        entry.set("connections",
                  JsonValue::integer(std::uint64_t{connections}));
        entry.set("inflight",
                  JsonValue::integer(std::uint64_t{inflight}));
        entry.set("jobs", JsonValue::integer(std::uint64_t{jobs}));
        entry.set("insts", JsonValue::integer(insts));
        entry.set("jobs_per_sec", JsonValue::number(jobsPerSec));
        entry.set("p50_ms", JsonValue::number(p50));
        entry.set("p99_ms", JsonValue::number(p99));
        entry.set("forwards", JsonValue::integer(forwards));
        entry.set("forwards_inflight_peak",
                  JsonValue::integer(peakInflightForwards));
        persistEntry(jsonPath, entry);
        std::cout << "serve_load: appended '" << label << "' to "
                  << jsonPath << "\n";
    }
    return 0;
}
