/**
 * @file
 * Power-model validation: compare the calibrated Technology constants
 * (used by all experiments; tuned to the published Wattch breakdown)
 * against the CACTI-lite values derived from the Table-1 geometry.
 * Agreement within small factors shows the calibrated constants are
 * physically grounded rather than fitted noise.
 */

#include <cmath>
#include <iostream>

#include "bench/harness.hh"
#include "common/table.hh"
#include "power/derived.hh"

using namespace dcg;
using namespace dcg::bench;

int
main()
{
    printHeader("Validation — calibrated vs geometry-derived C_eff (pF)",
                "CACTI-lite derivation of the Wattch-style constants");

    const SimConfig cfg = table1Config();
    const Technology cal;  // calibrated defaults
    const Technology der = derivedTechnology(cfg.core, cfg.mem);

    struct Row { const char *name; double c, d; };
    const Row rows[] = {
        {"dcache decoder/port", cal.dcacheDecoderCap,
         der.dcacheDecoderCap},
        {"dcache array/access", cal.dcacheArrayAccessCap,
         der.dcacheArrayAccessCap},
        {"icache/access", cal.icacheAccessCap, der.icacheAccessCap},
        {"L2/access", cal.l2AccessCap, der.l2AccessCap},
        {"regfile read", cal.regReadCap, der.regReadCap},
        {"regfile write", cal.regWriteCap, der.regWriteCap},
        {"IQ precharge/cycle", cal.iqClockCap, der.iqClockCap},
        {"IQ wakeup/broadcast", cal.iqWakeupCap, der.iqWakeupCap},
        {"LSQ search/op", cal.lsqOpCap, der.lsqOpCap},
        {"ROB/op", cal.robOpCap, der.robOpCap},
        {"rename/op", cal.renameOpCap, der.renameOpCap},
        {"bpred/access", cal.bpredAccessCap, der.bpredAccessCap},
    };

    double cal_sum = 0.0, der_sum = 0.0;
    for (const Row &r : rows) {
        cal_sum += r.c;
        der_sum += r.d;
    }

    TextTable t({"structure", "calibrated", "derived", "ratio",
                 "cal share", "der share"});
    for (const Row &r : rows) {
        t.addRow({r.name, TextTable::num(r.c, 1), TextTable::num(r.d, 1),
                  TextTable::num(r.d / r.c, 2),
                  TextTable::pct(r.c / cal_sum) + "%",
                  TextTable::pct(r.d / der_sum) + "%"});
    }
    t.print(std::cout);

    std::cout <<
        "\nExpected picture: raw SRAM capacitances sit below the\n"
        "calibrated *effective* values, because the effective set folds\n"
        "in local clock buffering, drivers and control (Wattch does the\n"
        "same via its driver/activity factors); scheduler-class CAM\n"
        "structures show the largest gap since their power is dominated\n"
        "by that clocked control, not the cells. The 'share' columns\n"
        "compare the distributions. The calibrated set is the default\n"
        "for experiments; pass derivedTechnology() via SimConfig::tech\n"
        "to run with the analytical set instead.\n";
    return 0;
}
