/**
 * @file
 * Ablation of the sequential-priority FU allocation policy (paper
 * Sec 3.1). The policy exists to keep gate control from toggling —
 * toggling burns control power and causes di/dt noise. We compare the
 * paper's policy against round-robin allocation: total power is nearly
 * identical (same busy counts), but the gate-control transition count
 * collapses under sequential priority.
 */

#include <iostream>

#include "bench/harness.hh"
#include "common/table.hh"

using namespace dcg;
using namespace dcg::bench;

int
main()
{
    printHeader("Ablation — sequential priority vs round-robin (Sec 3.1)",
                "gate-control transitions per kilo-cycle, int ALU pool");

    const std::uint64_t insts = defaultBenchInstructions();
    const std::uint64_t warm = defaultBenchWarmup();

    TextTable t({"bench", "seq tog/kcyc", "rr tog/kcyc", "ratio",
                 "seq save%", "rr save%"});
    for (const Profile &p : allSpecProfiles()) {
        double toggles[2], saving[2];
        for (int mode = 0; mode < 2; ++mode) {
            SimConfig cfg = table1Config(GatingScheme::Dcg);
            cfg.core.sequentialPriority = mode == 0;
            Simulator sim(p, cfg);
            sim.run(insts, warm);
            const RunResult r = sim.result();
            const double cycles = static_cast<double>(r.cycles);
            toggles[mode] =
                sim.stats().lookup("dcg.toggles.IntAlu") / cycles * 1000;

            SimConfig base_cfg = table1Config(GatingScheme::None);
            base_cfg.core.sequentialPriority = mode == 0;
            const RunResult base = runBenchmark(p, base_cfg, insts, warm);
            saving[mode] = powerSaving(base, r);
        }
        t.addRow({p.name, TextTable::num(toggles[0], 1),
                  TextTable::num(toggles[1], 1),
                  TextTable::num(toggles[1] / toggles[0], 2),
                  TextTable::pct(saving[0]), TextTable::pct(saving[1])});
    }
    t.print(std::cout);
    std::cout << "\nSequential priority parks low-priority units in the "
                 "gated state,\ncutting control toggling (ratio > 1) at "
                 "unchanged power savings —\nexactly the paper's "
                 "rationale.\n";
    return 0;
}
