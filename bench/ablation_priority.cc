/**
 * @file
 * Ablation of the sequential-priority FU allocation policy (paper
 * Sec 3.1). The policy exists to keep gate control from toggling —
 * toggling burns control power and causes di/dt noise. We compare the
 * paper's policy against round-robin allocation: total power is nearly
 * identical (same busy counts), but the gate-control transition count
 * collapses under sequential priority.
 */

#include <iostream>
#include <vector>

#include "bench/harness.hh"
#include "common/table.hh"

using namespace dcg;
using namespace dcg::bench;

int
main()
{
    printHeader("Ablation — sequential priority vs round-robin (Sec 3.1)",
                "gate-control transitions per kilo-cycle, int ALU pool");

    // Per benchmark: {sequential, round-robin} x {dcg, base}; the DCG
    // jobs capture the int-ALU gate toggle counter from the registry.
    std::vector<exp::Job> jobs;
    for (const Profile &p : allSpecProfiles()) {
        for (int mode = 0; mode < 2; ++mode) {
            SimConfig dcg_cfg = table1Config("dcg");
            dcg_cfg.core.sequentialPriority = mode == 0;
            exp::Job dcg_job = exp::makeJob(p, dcg_cfg);
            dcg_job.captureStats = {"dcg.toggles.IntAlu"};
            jobs.push_back(std::move(dcg_job));

            SimConfig base_cfg = table1Config("base");
            base_cfg.core.sequentialPriority = mode == 0;
            jobs.push_back(exp::makeJob(p, base_cfg));
        }
    }
    const auto results = runJobs(jobs);

    TextTable t({"bench", "seq tog/kcyc", "rr tog/kcyc", "ratio",
                 "seq save%", "rr save%"});
    std::size_t i = 0;
    for (const Profile &p : allSpecProfiles()) {
        double toggles[2], saving[2];
        for (int mode = 0; mode < 2; ++mode) {
            const RunResult &r = results[i++];
            const RunResult &base = results[i++];
            toggles[mode] = r.extraStats.at("dcg.toggles.IntAlu") /
                            static_cast<double>(r.cycles) * 1000;
            saving[mode] = powerSaving(base, r);
        }
        t.addRow({p.name, TextTable::num(toggles[0], 1),
                  TextTable::num(toggles[1], 1),
                  TextTable::num(toggles[1] / toggles[0], 2),
                  TextTable::pct(saving[0]), TextTable::pct(saving[1])});
    }
    t.print(std::cout);
    std::cout << "\nSequential priority parks low-priority units in the "
                 "gated state,\ncutting control toggling (ratio > 1) at "
                 "unchanged power savings —\nexactly the paper's "
                 "rationale.\n";
    printEngineSummary();
    return 0;
}
