/**
 * @file
 * Predictor-sensitivity study: DCG's gating opportunity is partly
 * *created* by front-end stalls, so a weaker predictor raises DCG's
 * percentage savings while costing absolute performance — power
 * saving percentages must always be read next to IPC. Sweeps the
 * direction predictor (bimodal / Table-1 two-level / hybrid) on the
 * branchy integer codes.
 */

#include <iostream>
#include <vector>

#include "bench/harness.hh"
#include "common/table.hh"

using namespace dcg;
using namespace dcg::bench;

int
main()
{
    printHeader("Study — DCG savings vs branch predictor quality",
                "bimodal / 2-level (Table 1) / hybrid front ends");

    struct Kind { DirectionKind kind; const char *name; };
    const Kind kinds[] = {
        {DirectionKind::Bimodal, "bimodal"},
        {DirectionKind::TwoLevel, "2-level"},
        {DirectionKind::Hybrid, "hybrid"},
    };
    const char *benches[] = {"gcc", "twolf", "parser", "gzip"};

    // Declarative grid: (bench x predictor x {base, dcg}); the engine
    // schedules the jobs across DCG_JOBS workers.
    std::vector<exp::Job> jobs;
    for (const char *name : benches) {
        const Profile p = profileByName(name);
        for (const Kind &k : kinds) {
            SimConfig base = table1Config("base");
            base.bpred.kind = k.kind;
            SimConfig dcg = base;
            dcg.scheme = "dcg";
            jobs.push_back(exp::makeJob(p, base));
            jobs.push_back(exp::makeJob(p, dcg));
        }
    }
    const auto results = runJobs(jobs);

    TextTable t({"bench", "predictor", "bpred acc (%)", "IPC",
                 "DCG save (%)"});
    std::size_t i = 0;
    for (const char *name : benches) {
        for (const Kind &k : kinds) {
            const RunResult &b = results[i++];
            const RunResult &d = results[i++];
            t.addRow({name, k.name, TextTable::pct(b.branchAccuracy),
                      TextTable::num(b.ipc, 2),
                      TextTable::pct(powerSaving(b, d))});
        }
    }
    t.print(std::cout);
    std::cout << "\nBetter prediction -> higher IPC -> busier blocks -> "
                 "smaller DCG\npercentages (but more work done per "
                 "joule). DCG's zero performance\nloss holds under "
                 "every front end.\n";
    printEngineSummary();
    return 0;
}
