/**
 * @file
 * google-benchmark microbenchmarks of the simulator's hot paths: trace
 * generation, branch prediction, cache access, core ticks and the full
 * simulation step with DCG accounting. Useful for keeping the
 * experiment binaries fast as the model grows.
 */

#include <benchmark/benchmark.h>

#include "branch/predictor.hh"
#include "cache/hierarchy.hh"
#include "common/rng.hh"
#include "gating/dcg.hh"
#include "pipeline/core.hh"
#include "power/model.hh"
#include "sim/presets.hh"
#include "trace/generator.hh"
#include "trace/spec2000.hh"

using namespace dcg;

static void
BM_TraceGenerator(benchmark::State &state)
{
    TraceGenerator gen(profileByName("gzip"), 1);
    for (auto _ : state)
        benchmark::DoNotOptimize(gen.next());
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceGenerator);

static void
BM_BranchPredictor(benchmark::State &state)
{
    StatRegistry stats;
    BranchPredictor bp(BranchPredictorConfig{}, stats);
    Rng rng(7);
    Addr pc = 0x400000;
    for (auto _ : state) {
        const auto pred = bp.predict(pc);
        bp.resolve(pc, pred, rng.bernoulli(0.9), pc + 64);
        pc = 0x400000 + (rng.next() & 0xffff & ~3ull);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BranchPredictor);

static void
BM_CacheHit(benchmark::State &state)
{
    StatRegistry stats;
    MemoryHierarchy mem(HierarchyConfig{}, stats);
    mem.dcache().access(0x1000, false, 0);
    Cycle now = 100;
    for (auto _ : state) {
        benchmark::DoNotOptimize(mem.dcache().access(0x1000, false,
                                                     now));
        now += 2;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheHit);

static void
BM_CacheMissStream(benchmark::State &state)
{
    StatRegistry stats;
    MemoryHierarchy mem(HierarchyConfig{}, stats);
    Rng rng(3);
    Cycle now = 100;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            mem.dcache().access(rng.nextBounded(64 * 1024 * 1024) & ~7ull,
                                false, now));
        now += 5;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheMissStream);

static void
BM_CoreTick(benchmark::State &state)
{
    StatRegistry stats;
    TraceGenerator gen(profileByName("gzip"), 1);
    MemoryHierarchy mem(HierarchyConfig{}, stats);
    BranchPredictor bp(BranchPredictorConfig{}, stats);
    Core core(CoreConfig{}, gen, mem, bp, stats);
    for (auto _ : state)
        core.tick();
    state.SetItemsProcessed(
        static_cast<std::int64_t>(core.committedInsts()));
    state.SetLabel("items = committed instructions");
}
BENCHMARK(BM_CoreTick);

static void
BM_PowerTick(benchmark::State &state)
{
    StatRegistry stats;
    PowerModel pm(CoreConfig{}, Technology{}, stats);
    CycleActivity act;
    act.issued = 4;
    act.fuBusyMask[0] = 0xf;
    act.dcacheAccesses = 1;
    act.regReads = 6;
    for (auto _ : state)
        pm.tick(act, GateState{});
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PowerTick);

static void
BM_FullDcgStep(benchmark::State &state)
{
    StatRegistry stats;
    TraceGenerator gen(profileByName("twolf"), 1);
    MemoryHierarchy mem(HierarchyConfig{}, stats);
    BranchPredictor bp(BranchPredictorConfig{}, stats);
    Core core(CoreConfig{}, gen, mem, bp, stats);
    DcgController dcg(CoreConfig{}, DcgConfig{}, stats);
    PowerModel pm(CoreConfig{}, Technology{}, stats);
    for (auto _ : state) {
        core.tick();
        pm.tick(core.activity(), dcg.gates(core.activity()));
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(core.committedInsts()));
    state.SetLabel("items = committed instructions");
}
BENCHMARK(BM_FullDcgStep);

BENCHMARK_MAIN();
