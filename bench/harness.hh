/**
 * @file
 * Shared helpers for the per-figure experiment binaries.
 *
 * Each binary regenerates one table/figure of the paper's evaluation
 * section: it runs the relevant (benchmark x scheme) grid and prints
 * the same rows the paper plots, plus the paper's reported values for
 * comparison. Run length is controlled by DCG_BENCH_INSTS /
 * DCG_BENCH_WARMUP.
 */

#ifndef DCG_BENCH_HARNESS_HH
#define DCG_BENCH_HARNESS_HH

#include <functional>
#include <string>
#include <vector>

#include "sim/presets.hh"
#include "sim/simulator.hh"

namespace dcg::bench {

/** One benchmark's runs across the schemes a figure needs. */
struct SchemeResults
{
    Profile profile;
    RunResult base;
    RunResult dcg;
    RunResult plbOrig;  ///< valid only if requested
    RunResult plbExt;   ///< valid only if requested
};

/** Which schemes a figure needs beyond the baseline. */
struct GridRequest
{
    bool wantDcg = true;
    bool wantPlbOrig = false;
    bool wantPlbExt = false;
    bool deepPipeline = false;
};

/** Run the full SPEC grid for a figure. */
std::vector<SchemeResults> runGrid(const GridRequest &req);

/** Fractional total-power saving of @p gated vs @p base. */
double powerSaving(const RunResult &base, const RunResult &gated);

/**
 * Fractional power-delay (energy x time per instruction) saving:
 * both power loss and slowdown hurt, as in Figure 11.
 */
double powerDelaySaving(const RunResult &base, const RunResult &gated);

/** Fractional saving of a component energy selected by @p pick. */
double componentSaving(const RunResult &base, const RunResult &gated,
                       const std::function<double(const RunResult &)> &pick);

/** Mean over int / fp subsets of per-benchmark values. */
struct IntFpMeans
{
    double intMean;
    double fpMean;
};
IntFpMeans meansBySuite(const std::vector<SchemeResults> &grid,
                        const std::function<double(const SchemeResults &)>
                            &value);

/** Print the standard figure header. */
void printHeader(const std::string &figure, const std::string &claim);

/**
 * Shared driver for the per-component figures (12-16): prints DCG and
 * PLB-ext savings for the component energy selected by @p pick, plus
 * per-suite means with the paper's reported numbers.
 */
void runComponentFigure(
    const std::string &figure, const std::string &claim,
    const std::function<double(const RunResult &)> &pick,
    const std::string &paper_dcg, const std::string &paper_ext);

} // namespace dcg::bench

#endif // DCG_BENCH_HARNESS_HH
