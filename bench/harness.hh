/**
 * @file
 * Shared helpers for the per-figure experiment binaries — now a thin
 * presentation layer over the exp:: experiment engine.
 *
 * Each binary regenerates one table/figure of the paper's evaluation
 * section: it states the (benchmark x scheme) grid it needs as an
 * exp::GridRequest, the session engine executes the jobs (in parallel
 * when DCG_JOBS > 1) with a shared result cache, and the binary prints
 * the same rows the paper plots plus the paper's reported values.
 * Run length is controlled by DCG_BENCH_INSTS / DCG_BENCH_WARMUP.
 */

#ifndef DCG_BENCH_HARNESS_HH
#define DCG_BENCH_HARNESS_HH

#include <string>
#include <vector>

#include "exp/engine.hh"
#include "exp/grid.hh"
#include "exp/metrics.hh"

namespace dcg::bench {

// The grid/metric vocabulary lives in the engine layer now; the
// figure binaries keep using it under their accustomed names.
using exp::GridRequest;
using exp::IntFpMeans;
using exp::SchemeResults;
using exp::componentSaving;
using exp::meansBySuite;
using exp::powerDelaySaving;
using exp::powerSaving;

/** Run the full SPEC grid for a figure on the session engine. */
std::vector<SchemeResults> runGrid(const GridRequest &req);

/** Run an explicit job list on the session engine. */
std::vector<RunResult> runJobs(const std::vector<exp::Job> &jobs);

/** Print the standard figure header. */
void printHeader(const std::string &figure, const std::string &claim);

/** Print the session engine's worker / cache summary line. */
void printEngineSummary();

/**
 * Shared driver for the per-component figures (12-16): prints DCG and
 * PLB-ext savings for the component energy selected by @p pick, plus
 * per-suite means with the paper's reported numbers.
 */
void runComponentFigure(
    const std::string &figure, const std::string &claim,
    const std::function<double(const RunResult &)> &pick,
    const std::string &paper_dcg, const std::string &paper_ext);

} // namespace dcg::bench

#endif // DCG_BENCH_HARNESS_HH
