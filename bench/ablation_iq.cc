/**
 * @file
 * Extension study: DCG combined with the deterministic issue-queue
 * gating of [6] (Folegnani & Gonzalez), which the paper cites in
 * Sec 2.2.2 as the reason DCG itself leaves the issue queue alone.
 * Gating empty window entries is deterministic too, so the combination
 * keeps DCG's zero-performance-loss property while recovering part of
 * the scheduler's precharge power.
 */

#include <iostream>
#include <vector>

#include "bench/harness.hh"
#include "common/table.hh"

using namespace dcg;
using namespace dcg::bench;

int
main()
{
    printHeader("Extension — DCG + issue-queue gating per [6] (Sec 2.2.2)",
                "total power saving; IQ gating adds on top of DCG");

    // Per benchmark: baseline, plain DCG, DCG + issue-queue gating.
    SimConfig combo_cfg = table1Config("dcg");
    combo_cfg.dcg.gateIssueQueue = true;

    std::vector<exp::Job> jobs;
    for (const Profile &p : allSpecProfiles()) {
        jobs.push_back(exp::makeJob(p, table1Config("base")));
        jobs.push_back(exp::makeJob(p, table1Config("dcg")));
        jobs.push_back(exp::makeJob(p, combo_cfg));
    }
    const auto results = runJobs(jobs);

    TextTable t({"bench", "DCG (%)", "DCG+[6] (%)", "delta", "dIPC (%)"});
    double sum_a = 0.0, sum_b = 0.0;
    std::size_t i = 0;
    for (const Profile &p : allSpecProfiles()) {
        const RunResult &base = results[i++];
        const RunResult &plain = results[i++];
        const RunResult &combo = results[i++];

        const double sa = powerSaving(base, plain);
        const double sb = powerSaving(base, combo);
        sum_a += sa;
        sum_b += sb;
        t.addRow({p.name, TextTable::pct(sa), TextTable::pct(sb),
                  TextTable::pct(sb - sa),
                  TextTable::pct(1.0 - combo.ipc / base.ipc, 2)});
    }
    t.print(std::cout);
    std::cout << "\nAverages: DCG "
              << TextTable::pct(sum_a / 16) << "%  ->  DCG+[6] "
              << TextTable::pct(sum_b / 16)
              << "%, still with zero performance loss.\n";
    printEngineSummary();
    return 0;
}
