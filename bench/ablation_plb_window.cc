/**
 * @file
 * Ablation of PLB's sampling window (paper Sec 4.3 uses 256 cycles,
 * following [1]). Short windows react faster but thrash between
 * modes; long windows miss short low-ILP phases.
 */

#include <iostream>
#include <vector>

#include "bench/harness.hh"
#include "common/table.hh"

using namespace dcg;
using namespace dcg::bench;

int
main()
{
    printHeader("Ablation — PLB sampling window size (Sec 4.3)",
                "PLB-ext power saving / performance loss per window");

    const unsigned windows[] = {64, 128, 256, 512, 1024};
    const char *benches[] = {"gcc", "twolf", "equake", "apsi"};

    // Per benchmark: one baseline plus a PLB-ext run per window size.
    // The mode-transition count lives in the statistics registry, so
    // the jobs ask the engine to capture it alongside the RunResult.
    std::vector<exp::Job> jobs;
    for (const char *name : benches) {
        const Profile p = profileByName(name);
        jobs.push_back(exp::makeJob(p, table1Config("base")));
        for (unsigned w : windows) {
            SimConfig cfg = table1Config("plb-ext");
            cfg.plb.windowCycles = w;
            exp::Job job = exp::makeJob(p, cfg);
            job.captureStats = {"plb.mode_transitions"};
            jobs.push_back(std::move(job));
        }
    }
    const auto results = runJobs(jobs);

    TextTable t({"bench", "window", "save (%)", "dIPC (%)",
                 "transitions/Mcyc"});
    std::size_t i = 0;
    for (const char *name : benches) {
        const RunResult &base = results[i++];
        for (unsigned w : windows) {
            const RunResult &r = results[i++];
            const double trans =
                r.extraStats.at("plb.mode_transitions") /
                static_cast<double>(r.cycles) * 1e6;
            t.addRow({name, std::to_string(w),
                      TextTable::pct(powerSaving(base, r)),
                      TextTable::pct(1.0 - r.ipc / base.ipc),
                      TextTable::num(trans, 1)});
        }
    }
    t.print(std::cout);
    std::cout << "\nThe paper's 256-cycle window sits on the knee: "
                 "shorter windows thrash\n(more transitions), longer "
                 "ones blur the ILP phases PLB exploits.\n";
    printEngineSummary();
    return 0;
}
