/**
 * @file
 * Ablation of PLB's sampling window (paper Sec 4.3 uses 256 cycles,
 * following [1]). Short windows react faster but thrash between
 * modes; long windows miss short low-ILP phases.
 */

#include <iostream>

#include "bench/harness.hh"
#include "common/table.hh"

using namespace dcg;
using namespace dcg::bench;

int
main()
{
    printHeader("Ablation — PLB sampling window size (Sec 4.3)",
                "PLB-ext power saving / performance loss per window");

    const std::uint64_t insts = defaultBenchInstructions();
    const std::uint64_t warm = defaultBenchWarmup();
    const unsigned windows[] = {64, 128, 256, 512, 1024};
    const char *benches[] = {"gcc", "twolf", "equake", "apsi"};

    TextTable t({"bench", "window", "save (%)", "dIPC (%)",
                 "transitions/Mcyc"});
    for (const char *name : benches) {
        const Profile p = profileByName(name);
        const RunResult base = runBenchmark(
            p, table1Config(GatingScheme::None), insts, warm);
        for (unsigned w : windows) {
            SimConfig cfg = table1Config(GatingScheme::PlbExt);
            cfg.plb.windowCycles = w;
            Simulator sim(p, cfg);
            sim.run(insts, warm);
            const RunResult r = sim.result();
            const double trans =
                sim.stats().lookup("plb.mode_transitions") /
                static_cast<double>(r.cycles) * 1e6;
            t.addRow({name, std::to_string(w),
                      TextTable::pct(powerSaving(base, r)),
                      TextTable::pct(1.0 - r.ipc / base.ipc),
                      TextTable::num(trans, 1)});
        }
    }
    t.print(std::cout);
    std::cout << "\nThe paper's 256-cycle window sits on the knee: "
                 "shorter windows thrash\n(more transitions), longer "
                 "ones blur the ILP phases PLB exploits.\n";
    return 0;
}
