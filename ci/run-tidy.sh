#!/usr/bin/env bash
# Run clang-tidy over the project's own sources using the compilation
# database exported by CMake (CMAKE_EXPORT_COMPILE_COMMANDS=ON).
#
#   ci/run-tidy.sh [BUILD_DIR]           (default: build)
#
# Scope: src/ tools/ bench/ examples/. tests/ is excluded on purpose —
# gtest macro expansions trip bugprone-* checks that say nothing about
# our code.
#
# Exit codes:
#   0  clean (or clang-tidy not installed: prints a notice and skips,
#      so `--target tidy` stays usable on machines without clang)
#   1  unsuppressed diagnostics
#   2  usage / missing compile_commands.json
#
# Suppression policy: a diagnostic is ignored iff it matches a
# non-comment line of ci/tidy-suppressions.txt (fixed-string match
# against the "file:line:col: warning: ... [check-name]" line). Keep
# that file empty; every entry needs a justification comment.

set -u

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${1:-$ROOT/build}"
SUPP="$ROOT/ci/tidy-suppressions.txt"

TIDY="${CLANG_TIDY:-clang-tidy}"
if ! command -v "$TIDY" >/dev/null 2>&1; then
    echo "run-tidy: $TIDY not found; skipping (install clang-tidy to run locally)"
    exit 0
fi

if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
    echo "run-tidy: $BUILD_DIR/compile_commands.json missing;" \
         "configure with cmake first" >&2
    exit 2
fi

cd "$ROOT"
FILES=$(find src tools bench examples \
             \( -name '*.cc' -o -name '*.cpp' \) | sort)
if [ -z "$FILES" ]; then
    echo "run-tidy: no sources found" >&2
    exit 2
fi

LOG=$(mktemp)
trap 'rm -f "$LOG"' EXIT

# shellcheck disable=SC2086
"$TIDY" -p "$BUILD_DIR" --quiet $FILES >"$LOG" 2>/dev/null
# clang-tidy's own exit code conflates config and diagnostic failures;
# grade on the diagnostics we can attribute instead.

grep -E ': (warning|error): ' "$LOG" | sort -u > "$LOG.diags" || true

UNSUPPRESSED=0
while IFS= read -r diag; do
    [ -z "$diag" ] && continue
    if [ -s "$SUPP" ] && grep -v '^[[:space:]]*#' "$SUPP" | \
            grep -qF -- "$(echo "$diag" | cut -d: -f1-2)"; then
        echo "suppressed: $diag"
        continue
    fi
    echo "$diag"
    UNSUPPRESSED=$((UNSUPPRESSED + 1))
done < "$LOG.diags"
rm -f "$LOG.diags"

if [ "$UNSUPPRESSED" -gt 0 ]; then
    echo "run-tidy: $UNSUPPRESSED unsuppressed diagnostic(s)" >&2
    exit 1
fi
echo "run-tidy: clean"
exit 0
