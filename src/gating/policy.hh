/**
 * @file
 * Clock-gating policy interface.
 *
 * A policy may (a) constrain the core before a cycle executes (PLB's
 * low-power issue modes) and (b) decide, for the cycle just executed,
 * which clock loads were gated (consumed by the power model).
 */

#ifndef DCG_GATING_POLICY_HH
#define DCG_GATING_POLICY_HH

#include "pipeline/activity.hh"
#include "pipeline/core.hh"
#include "power/gate_state.hh"

namespace dcg {

class GatingPolicy
{
  public:
    virtual ~GatingPolicy() = default;

    /** Called before core.tick(); may adjust core constraints. */
    virtual void beginCycle(Core &core) { (void)core; }

    /**
     * Gate decisions for the cycle whose activity is @p act (the cycle
     * the core just simulated).
     */
    virtual GateState gates(const CycleActivity &act) = 0;

    virtual const char *name() const = 0;
};

/** The baseline machine: nothing is ever clock-gated (paper Sec 5.1). */
class NoGating : public GatingPolicy
{
  public:
    GateState
    gates(const CycleActivity &act) override
    {
        (void)act;
        return GateState{};
    }

    const char *name() const override { return "base"; }
};

} // namespace dcg

#endif // DCG_GATING_POLICY_HH
