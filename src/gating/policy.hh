/**
 * @file
 * Clock-gating policy interface.
 *
 * A policy may (a) constrain the core before a cycle executes (PLB's
 * low-power issue modes) and (b) decide, for the cycle just executed,
 * which clock loads were gated (consumed by the power model).
 */

#ifndef DCG_GATING_POLICY_HH
#define DCG_GATING_POLICY_HH

#include <cstdint>

#include "pipeline/activity.hh"
#include "pipeline/core.hh"
#include "power/gate_state.hh"

namespace dcg {

class GatingPolicy
{
  public:
    virtual ~GatingPolicy() = default;

    /** Called before core.tick(); may adjust core constraints. */
    virtual void beginCycle(Core &core) { (void)core; }

    /**
     * Gate decisions for the cycle whose activity is @p act (the cycle
     * the core just simulated).
     */
    virtual GateState gates(const CycleActivity &act) = 0;

    /**
     * Account @p cycles consecutive provably idle cycles that the core
     * is about to skip (Core::idleSkipAvailable). The default replays
     * the per-cycle protocol — beginCycle + gates on an all-zero
     * activity record — once per skipped cycle, which is always
     * correct; stateless schemes override with an O(1) bulk charge.
     * Every implementation must leave the controller's statistics and
     * the energy charged to @p sink identical to simulating the idle
     * window cycle by cycle.
     */
    virtual void
    skipIdle(Core &core, std::uint64_t cycles, IdleSink &sink)
    {
        const CycleActivity idle{};
        for (std::uint64_t i = 0; i < cycles; ++i) {
            beginCycle(core);
            sink.chargeIdle(gates(idle), 1);
        }
    }

    virtual const char *name() const = 0;
};

/** The baseline machine: nothing is ever clock-gated (paper Sec 5.1). */
class NoGating : public GatingPolicy
{
  public:
    GateState
    gates(const CycleActivity &act) override
    {
        (void)act;
        return GateState{};
    }

    void
    skipIdle(Core &core, std::uint64_t cycles, IdleSink &sink) override
    {
        (void)core;
        sink.chargeIdle(GateState{}, cycles);
    }

    const char *name() const override { return "base"; }
};

} // namespace dcg

#endif // DCG_GATING_POLICY_HH
