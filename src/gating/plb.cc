#include "gating/plb.hh"

#include <algorithm>

#include "common/log.hh"
#include "gating/registry.hh"
#include "sim/simulator.hh"

namespace dcg {

namespace gating {
namespace {

const std::vector<SchemeKnob> plbKnobs = {
    {"window-cycles", "sampling-window length", "256"},
    {"ipc-threshold-low", "window IPC below this requests 4-wide",
     "1.5"},
    {"ipc-threshold-mid", "window IPC below this requests 6-wide",
     "2.8"},
    {"fp-ipc-guard", "FP IPC above this keeps the machine >= 6-wide",
     "0.8"},
    {"down-confirm-windows", "windows that must agree before narrowing",
     "2"},
};

const bool registeredOrig = registerScheme(
    {"plb-orig",
     "pipeline balancing (Bahar & Manne [1]): low-power issue modes"
     " gating disabled FUs and an issue-queue slice",
     plbKnobs},
    [](const SimConfig &cfg, StatRegistry &stats) {
        PlbConfig pc = cfg.plb;
        pc.extended = false;
        return std::make_unique<PlbController>(cfg.core, pc, stats);
    });

const bool registeredExt = registerScheme(
    {"plb-ext",
     "extended pipeline balancing (paper Sec 4.3): plb-orig plus"
     " latch, D-cache port and result-bus gating",
     plbKnobs},
    [](const SimConfig &cfg, StatRegistry &stats) {
        PlbConfig pc = cfg.plb;
        pc.extended = true;
        return std::make_unique<PlbController>(cfg.core, pc, stats);
    });

} // namespace

void
anchorPlbSchemeRegistration()
{
    (void)registeredOrig;
    (void)registeredExt;
}

} // namespace gating

PlbController::PlbController(const CoreConfig &core_cfg,
                             const PlbConfig &cfg_, StatRegistry &stats)
    : coreCfg(core_cfg),
      cfg(cfg_),
      windows8(stats.counter("plb.windows_8wide",
                             "windows spent in 8-wide mode")),
      windows6(stats.counter("plb.windows_6wide",
                             "windows spent in 6-wide mode")),
      windows4(stats.counter("plb.windows_4wide",
                             "windows spent in 4-wide mode")),
      transitions(stats.counter("plb.mode_transitions",
                                "issue-mode changes"))
{
    DCG_ASSERT(cfg.windowCycles >= 16, "PLB window too short");
}

unsigned
PlbController::desiredMode(double ipc, double fp_ipc) const
{
    unsigned want = 8;
    if (ipc < cfg.ipcThresholdMid)
        want = 6;
    if (ipc < cfg.ipcThresholdLow)
        want = 4;
    // Secondary trigger: heavy FP traffic needs the wide FP cluster
    // slice, so never drop to 4-wide under it.
    if (want == 4 && fp_ipc > cfg.fpIpcGuard)
        want = 6;
    return want;
}

void
PlbController::beginCycle(Core &core)
{
    if (windowCycles < cfg.windowCycles)
        return;

    // Window boundary: predict the next window's ILP from this one.
    const double ipc = static_cast<double>(windowIssued) /
                       static_cast<double>(windowCycles);
    const double fp_ipc = static_cast<double>(windowFpIssued) /
                          static_cast<double>(windowCycles);
    windowIssued = 0;
    windowFpIssued = 0;
    windowCycles = 0;

    const unsigned want = desiredMode(ipc, fp_ipc);

    unsigned next = curMode;
    if (want >= curMode) {
        // Performance first: widen immediately.
        next = want;
        pendingDownCount = 0;
    } else {
        // Mode history damping: confirm before narrowing.
        if (want == pendingDownMode) {
            ++pendingDownCount;
        } else {
            pendingDownMode = want;
            pendingDownCount = 1;
        }
        if (pendingDownCount >= cfg.downConfirmWindows) {
            next = want;
            pendingDownCount = 0;
        }
    }

    if (next != curMode) {
        ++transitions;
        curMode = next;
        applyMode(core, next);
    }
}

void
PlbController::applyMode(Core &core, unsigned mode)
{
    DCG_ASSERT(mode == 8 || mode == 6 || mode == 4, "bad PLB mode");
    core.setIssueWidthLimit(mode);
    switch (mode) {
      case 8:
        core.setFuEnabledCount(FuType::IntAluUnit, 6);
        core.setFuEnabledCount(FuType::IntMulDivUnit, 2);
        core.setFuEnabledCount(FuType::FpAluUnit, 4);
        core.setFuEnabledCount(FuType::FpMulDivUnit, 4);
        core.setDcachePortLimit(coreCfg.dcachePorts);
        core.setResultBusLimit(coreCfg.numResultBuses);
        break;
      case 6:
        // Sec 4.3: disable 1 intALU, 1 FPU, 1 FP mul/div; cache ports
        // stay intact.
        core.setFuEnabledCount(FuType::IntAluUnit, 5);
        core.setFuEnabledCount(FuType::IntMulDivUnit, 2);
        core.setFuEnabledCount(FuType::FpAluUnit, 3);
        core.setFuEnabledCount(FuType::FpMulDivUnit, 3);
        core.setDcachePortLimit(coreCfg.dcachePorts);
        core.setResultBusLimit(cfg.extended ? 6
                                            : coreCfg.numResultBuses);
        break;
      case 4:
        // Sec 4.3: disable 3 intALU, 1 int mul/div, 2 FPUs, 2 FP
        // mul/div; PLB-ext also drops one memory port.
        core.setFuEnabledCount(FuType::IntAluUnit, 3);
        core.setFuEnabledCount(FuType::IntMulDivUnit, 1);
        core.setFuEnabledCount(FuType::FpAluUnit, 2);
        core.setFuEnabledCount(FuType::FpMulDivUnit, 2);
        core.setDcachePortLimit(cfg.extended ? 1 : coreCfg.dcachePorts);
        core.setResultBusLimit(cfg.extended ? 4
                                            : coreCfg.numResultBuses);
        break;
      default:
        break;
    }
}

GateState
PlbController::gates(const CycleActivity &act)
{
    ++windowCycles;
    windowIssued += act.issued;
    windowFpIssued += act.fpIssued;

    switch (curMode) {
      case 8: ++windows8; break;
      case 6: ++windows6; break;
      case 4: ++windows4; break;
      default: break;
    }

    GateState g;
    if (curMode == 8)
        return g;

    const unsigned disabled_slots = coreCfg.issueWidth - curMode;

    // Disabled execution-unit instances are the high-indexed suffix of
    // each pool; they may still be draining pre-switch operations, in
    // which case they cannot be gated yet.
    const unsigned int_alu_on = curMode == 6 ? 5 : 3;
    const unsigned int_md_on = curMode == 6 ? 2 : 1;
    const unsigned fp_alu_on = curMode == 6 ? 3 : 2;
    const unsigned fp_md_on = curMode == 6 ? 3 : 2;
    const unsigned enabled_counts[kNumFuTypes] = {
        int_alu_on, int_md_on, fp_alu_on, fp_md_on};
    for (unsigned t = 0; t < kNumFuTypes; ++t) {
        const std::uint16_t all = static_cast<std::uint16_t>(
            (1u << coreCfg.fuCount[t]) - 1);
        const std::uint16_t enabled_mask = static_cast<std::uint16_t>(
            (1u << enabled_counts[t]) - 1);
        g.fuGateMask[t] = static_cast<std::uint16_t>(
            all & ~enabled_mask & ~act.fuBusyMask[t]);
    }

    // Both PLB variants clock-gate a proportional slice of the issue
    // queue (the paper notes DCG does *not* gate the issue queue).
    g.iqGatedFraction = static_cast<double>(disabled_slots) /
                        static_cast<double>(coreCfg.issueWidth);

    if (cfg.extended) {
        for (unsigned p = 0; p < kNumLatchPhases; ++p) {
            const std::uint8_t free_slots = static_cast<std::uint8_t>(
                coreCfg.issueWidth - act.latchFlux[p]);
            g.latchSlotsGated[p] = static_cast<std::uint8_t>(
                std::min<unsigned>(disabled_slots, free_slots));
        }
        if (curMode == 4) {
            const unsigned free_ports =
                coreCfg.dcachePorts - act.dcachePortsUsed;
            g.dcachePortsGated = static_cast<std::uint8_t>(
                std::min<unsigned>(1, free_ports));
        }
        const unsigned free_buses =
            coreCfg.numResultBuses - act.resultBusUsed;
        g.resultBusesGated = static_cast<std::uint8_t>(
            std::min<unsigned>(disabled_slots, free_buses));
    }

    return g;
}

} // namespace dcg
