#include "gating/registry.hh"

#include <map>
#include <utility>

#include "common/log.hh"
#include "sim/simulator.hh"

namespace dcg::gating {

// Anchors defined in the scheme translation units (see registry.hh:
// they force the self-registration statics out of the static archive).
void anchorBaseSchemeRegistration();
void anchorDcgSchemeRegistration();
void anchorPlbSchemeRegistration();
void anchorDdcgSchemeRegistration();
void anchorCgoooSchemeRegistration();

namespace {

struct SchemeEntry
{
    SchemeInfo info;
    SchemeFactory factory;
};

/** Function-local static: safe against static-init ordering. */
std::map<std::string, SchemeEntry> &
table()
{
    static std::map<std::string, SchemeEntry> entries;
    return entries;
}

void
ensureBuiltins()
{
    anchorBaseSchemeRegistration();
    anchorDcgSchemeRegistration();
    anchorPlbSchemeRegistration();
    anchorDdcgSchemeRegistration();
    anchorCgoooSchemeRegistration();
}

} // namespace

bool
registerScheme(SchemeInfo info, SchemeFactory factory)
{
    if (info.name.empty())
        fatal("registerScheme: empty scheme name");
    if (!factory)
        fatal("registerScheme('", info.name, "'): null factory");
    const std::string name = info.name;
    const auto [it, inserted] = table().emplace(
        name, SchemeEntry{std::move(info), std::move(factory)});
    (void)it;
    if (!inserted)
        fatal("registerScheme: duplicate scheme '", name, "'");
    return true;
}

std::vector<SchemeInfo>
schemeCatalog()
{
    ensureBuiltins();
    std::vector<SchemeInfo> catalog;
    catalog.reserve(table().size());
    for (const auto &[name, entry] : table())
        catalog.push_back(entry.info);
    return catalog;
}

std::vector<std::string>
schemeNames()
{
    ensureBuiltins();
    std::vector<std::string> names;
    names.reserve(table().size());
    for (const auto &[name, entry] : table())
        names.push_back(name);
    return names;
}

std::string
schemeNamesJoined(char sep)
{
    std::string joined;
    for (const std::string &name : schemeNames()) {
        if (!joined.empty())
            joined += sep;
        joined += name;
    }
    return joined;
}

bool
isScheme(const std::string &name)
{
    ensureBuiltins();
    return table().count(name) != 0;
}

const SchemeInfo *
findScheme(const std::string &name)
{
    ensureBuiltins();
    const auto it = table().find(name);
    return it == table().end() ? nullptr : &it->second.info;
}

std::unique_ptr<GatingPolicy>
makePolicy(const SimConfig &config, StatRegistry &stats)
{
    ensureBuiltins();
    const auto it = table().find(config.scheme);
    if (it == table().end())
        fatal("unknown gating scheme '", config.scheme, "' (expected ",
              schemeNamesJoined(), ")");
    return it->second.factory(config, stats);
}

} // namespace dcg::gating
