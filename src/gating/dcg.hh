/**
 * @file
 * Deterministic Clock Gating — the paper's contribution.
 *
 * Hardware view (Section 3): selection-logic GRANT signals and a
 * one-hot encoding of issued slots are latched into small extensions of
 * the pipeline latches and piped alongside the instructions; ANDing
 * them with the clock gates execution units (select X -> use X+2),
 * back-end latch slots, D-cache wordline decoders (load at X -> cache
 * at X+3) and result-bus drivers (execute X -> writeback X+2).
 *
 * Simulator view: the core writes every scheduled resource use into the
 * ActivityWheel *at issue time*, with per-component minimum-advance
 * assertions (see pipeline/activity.hh). By the time a cycle executes,
 * its activity record is exactly the information the piped GRANT bits
 * would carry, so the controller gates precisely the resources the
 * record shows unused. The determinism property — a gated block is
 * never a used block — is asserted every cycle in the power model and
 * verified by the test suite.
 *
 * The controller charges its own overhead: the extended latch bits are
 * clocked every cycle (dcgControlActive), about 1 % of latch power as
 * in the paper (Sec 5.3).
 */

#ifndef DCG_GATING_DCG_HH
#define DCG_GATING_DCG_HH

#include <array>

#include "common/stats.hh"
#include "gating/policy.hh"

namespace dcg {

/** Per-component enables, for ablating DCG's gating targets. */
struct DcgConfig
{
    bool gateExecUnits = true;
    bool gateLatches = true;
    bool gateDcacheDecoders = true;
    bool gateResultBus = true;

    /**
     * Extension: also gate empty issue-queue entries, after the
     * deterministic scheme of [6] (Folegnani & Gonzalez) that the
     * paper cites in Sec 2.2.2. Off by default — the paper's DCG
     * configuration leaves the issue queue alone; bench/ablation_iq
     * measures the combination.
     */
    bool gateIssueQueue = false;
};

class DcgController : public GatingPolicy
{
  public:
    DcgController(const CoreConfig &core_cfg, const DcgConfig &cfg,
                  StatRegistry &stats);

    GateState gates(const CycleActivity &act) override;

    void skipIdle(Core &core, std::uint64_t cycles,
                  IdleSink &sink) override;

    const char *name() const override { return "dcg"; }

    /**
     * Gate-control transitions (gated<->enabled) per FU type so far.
     * The sequential-priority policy (Sec 3.1) exists to minimise
     * these; bench/ablation_priority measures the effect.
     */
    std::uint64_t fuToggles(FuType type) const
    { return toggles[static_cast<unsigned>(type)]->value(); }

  private:
    CoreConfig coreCfg;
    DcgConfig cfg;

    /** Previous cycle's gate mask, for toggle accounting. */
    std::array<std::uint16_t, kNumFuTypes> prevMask{};
    std::array<Counter *, kNumFuTypes> toggles{};

    Counter &gatedFuCycles;
    Counter &gatedLatchSlots;
    Counter &gatedPorts;
    Counter &gatedBuses;
};

} // namespace dcg

#endif // DCG_GATING_DCG_HH
