#include "gating/ddcg.hh"

#include "common/log.hh"
#include "gating/registry.hh"
#include "sim/simulator.hh"

namespace dcg {

DdcgController::DdcgController(const CoreConfig &core_cfg,
                               const DdcgConfig &cfg_,
                               StatRegistry &stats)
    : coreCfg(core_cfg),
      cfg(cfg_),
      gatedSlots(stats.counter("ddcg.gated_latch_slots",
                               "latch slot-cycles fully clock-gated"
                               " (zero flux)")),
      clockedSlots(stats.counter("ddcg.clocked_latch_slots",
                                 "latch slot-cycles left clocked"
                                 " (bit-level gating applies)"))
{
    DCG_ASSERT(cfg.bitActivityFactor >= 0.0 &&
               cfg.bitActivityFactor <= 1.0,
               "DDCG bit activity factor out of range");
    DCG_ASSERT(cfg.compareOverhead >= 0.0,
               "negative DDCG comparator overhead");
}

GateState
DdcgController::gates(const CycleActivity &act)
{
    GateState g;

    for (unsigned p = 0; p < kNumLatchPhases; ++p) {
        const auto phase = static_cast<LatchPhase>(p);
        if (!cfg.gateAllPhases && !latchPhaseGateable(phase))
            continue;
        DCG_ASSERT(act.latchFlux[p] <= coreCfg.issueWidth,
                   "latch flux exceeds machine width");
        // A slot with no in-flight value has D == Q on every bit: the
        // whole slot's comparator output holds its clock low.
        const std::uint8_t gated = static_cast<std::uint8_t>(
            coreCfg.issueWidth - act.latchFlux[p]);
        g.latchSlotsGated[p] = gated;
        gatedSlots += gated;
        clockedSlots += act.latchFlux[p];
    }

    // Within clocked slots, only the switching bits see a clock edge.
    g.latchBitGatedFraction = 1.0 - cfg.bitActivityFactor;
    // Every guarded bit pays its comparator, clocked or not.
    g.latchCompareOverhead = cfg.compareOverhead;
    return g;
}

void
DdcgController::skipIdle(Core &core, std::uint64_t cycles,
                         IdleSink &sink)
{
    (void)core;
    // The all-idle decision is identical every cycle (zero flux gates
    // every guarded slot); charge the first cycle through gates() and
    // multiply the per-cycle counters for the rest.
    const CycleActivity idle{};
    const GateState g = gates(idle);
    if (cycles > 1) {
        std::uint64_t per = 0;
        for (unsigned p = 0; p < kNumLatchPhases; ++p)
            per += g.latchSlotsGated[p];
        gatedSlots += per * (cycles - 1);
        // clockedSlots gains nothing: idle flux is zero.
    }
    sink.chargeIdle(g, cycles);
}

namespace gating {
namespace {

const bool registered = registerScheme(
    {"ddcg",
     "data-driven clock gating (Sarkar et al., arXiv 1806.02271):"
     " per-latch next-state==state comparators, all pipeline phases",
     {{"gate-all-phases",
       "gate front-end latch phases too (comparators need no advance"
       " notice)", "on"},
      {"bit-activity-factor",
       "switching-bit fraction within active latch slots", "0.45"},
      {"compare-overhead",
       "comparator energy per guarded bit, fraction of latchBitCap",
       "0.08"}}},
    [](const SimConfig &cfg, StatRegistry &stats) {
        return std::make_unique<DdcgController>(cfg.core, cfg.ddcg,
                                                stats);
    });

} // namespace

void anchorDdcgSchemeRegistration() { (void)registered; }

} // namespace gating

} // namespace dcg
