/**
 * @file
 * Registry entry for the baseline machine (no clock gating ever) —
 * the denominator of every figure. The policy class itself (NoGating)
 * lives in policy.hh alongside the interface.
 */

#include "gating/policy.hh"
#include "gating/registry.hh"
#include "sim/simulator.hh"

namespace dcg::gating {

namespace {

const bool registered = registerScheme(
    {"base",
     "baseline, nothing clock-gated (paper Sec 5.1 denominator)",
     {}},
    [](const SimConfig &cfg, StatRegistry &stats) {
        (void)cfg;
        (void)stats;
        return std::make_unique<NoGating>();
    });

} // namespace

void anchorBaseSchemeRegistration() { (void)registered; }

} // namespace dcg::gating
