/**
 * @file
 * CG-OoO-style coarse-grain issue-queue gating — after Mohammadi,
 * Han, Heo & Mahlke, "CG-OoO: Energy-Efficient Coarse-Grain
 * Out-of-Order Execution" (arXiv 1606.01607): the monolithic issue
 * window is split into fixed-size blocks with a cheap per-block
 * scheduler; a block holding no instructions is clock-gated whole,
 * and the wakeup broadcast is driven only into active blocks instead
 * of the full CAM.
 *
 * Model over the existing activity wheel: block residency is derived
 * from the issue-queue occupancy the core reports each cycle. The
 * model assumes compacted allocation (instructions occupy the
 * lowest-numbered blocks) — the deterministic idealisation of
 * CG-OoO's block allocator — so
 *
 *     active = ceil(min(occupied + renameWidth, windowSize) / block)
 *
 * blocks are clocked and the rest are gated. The renameWidth reserve
 * mirrors DCG's issue-queue extension ([6]): this cycle's dispatches
 * were not known when the gate control was set up, so enough blocks
 * for a full rename group stay enabled. That makes the decision
 * deterministic — a gated block can hold neither a resident
 * instruction nor one of this cycle's arrivals, so a gated block is
 * never a used block.
 *
 * Energy: gated blocks drop their share of the queue clock/precharge
 * (iqGatedFraction); the wakeup broadcast scales by the active-block
 * fraction (iqWakeupScale); the per-block scheduler costs
 * schedOverhead x iqClockCap scaled by the same fraction
 * (iqSchedOverhead, charged to the CgoooSched component). Latches,
 * execution units, D-cache and result buses see baseline clocks.
 */

#ifndef DCG_GATING_CGOOO_HH
#define DCG_GATING_CGOOO_HH

#include "common/stats.hh"
#include "gating/policy.hh"

namespace dcg {

struct CgoooConfig
{
    /** Issue-queue entries per block (must divide the window size). */
    unsigned blockSize = 16;

    /**
     * Per-block scheduler energy, as a fraction of iqClockCap charged
     * per cycle scaled by the active-block fraction.
     */
    double schedOverhead = 0.04;
};

class CgoooController : public GatingPolicy
{
  public:
    CgoooController(const CoreConfig &core_cfg, const CgoooConfig &cfg,
                    StatRegistry &stats);

    GateState gates(const CycleActivity &act) override;

    void skipIdle(Core &core, std::uint64_t cycles,
                  IdleSink &sink) override;

    const char *name() const override { return "cgooo"; }

  private:
    CoreConfig coreCfg;
    CgoooConfig cfg;
    unsigned numBlocks;

    Counter &activeBlocks;
    Counter &gatedBlocks;
};

} // namespace dcg

#endif // DCG_GATING_CGOOO_HH
