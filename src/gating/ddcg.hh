/**
 * @file
 * Data-Driven Clock Gating (DDCG) — after Sarkar, Bhattacharyya &
 * Mallick, "Data driven clock gating for digital filters" family of
 * per-flip-flop techniques (arXiv 1806.02271): a flip-flop whose next
 * state equals its current state does not need a clock edge, and an
 * XOR of D against Q can detect that *in the same cycle*, with no
 * advance knowledge at all.
 *
 * Relationship to DCG (the paper): DCG derives gate control from
 * piped GRANT signals, which only exist for the back-end latch phases
 * (latchPhaseGateable); DDCG's comparator sits at the latch input, so
 * it gates *every* phase, front end included — but it pays for a
 * comparator on every guarded bit every cycle, while DCG's control
 * overhead is a handful of extended latch bits.
 *
 * Model: two deterministic terms per cycle.
 *  - Slot level: a slot with no in-flight value this cycle has D == Q
 *    for all its bits, so the whole slot's clock stays low — exactly
 *    width - flux slots per phase, for all phases when gateAllPhases.
 *  - Bit level: within clocked (active) slots, the fraction of bits
 *    whose next state differs is the switching activity of the data
 *    path; the remaining 1 - bitActivityFactor of bits are held. The
 *    activity factor is a fixed model parameter (operand bit-level
 *    simulation is outside this simulator's scope), so the decision
 *    stays deterministic and byte-stable.
 *
 * Both terms satisfy the determinism invariant by construction: a
 * gated slot has zero flux, and a gated bit is one whose next state
 * is unchanged — neither can be a "used" block. The comparator
 * overhead (compareOverhead x latchBitCap per guarded bit per cycle)
 * is charged to the DdcgCompare power component and counted inside
 * the Figure-14 latch group.
 *
 * DDCG gates only latches: execution units, D-cache decoders, result
 * buses and the issue queue all see baseline clocks.
 */

#ifndef DCG_GATING_DDCG_HH
#define DCG_GATING_DDCG_HH

#include "common/stats.hh"
#include "gating/policy.hh"

namespace dcg {

struct DdcgConfig
{
    /**
     * Gate every latch phase, not just the DCG-gateable back-end ones
     * — the comparator needs no advance notice. Off restricts DDCG to
     * the same phases DCG gates, for a like-for-like ablation.
     */
    bool gateAllPhases = true;

    /**
     * Fraction of bits in an *active* latch slot whose next state
     * differs from the current one (data switching activity). The
     * complement is bit-gated every cycle.
     */
    double bitActivityFactor = 0.45;

    /**
     * Comparator energy per guarded latch bit per cycle, as a
     * fraction of latchBitCap (an XOR plus a latch on the enable).
     */
    double compareOverhead = 0.08;
};

class DdcgController : public GatingPolicy
{
  public:
    DdcgController(const CoreConfig &core_cfg, const DdcgConfig &cfg,
                   StatRegistry &stats);

    GateState gates(const CycleActivity &act) override;

    void skipIdle(Core &core, std::uint64_t cycles,
                  IdleSink &sink) override;

    const char *name() const override { return "ddcg"; }

  private:
    CoreConfig coreCfg;
    DdcgConfig cfg;

    Counter &gatedSlots;
    Counter &clockedSlots;
};

} // namespace dcg

#endif // DCG_GATING_DDCG_HH
