/**
 * @file
 * Pipeline Balancing (PLB) — the paper's comparison baseline, after
 * Bahar & Manne [1], re-implemented for the non-clustered 8-wide core
 * exactly as the paper's Section 4.3 describes:
 *
 *  - 256-cycle sampling windows;
 *  - primary trigger: issue IPC of the previous window; secondary:
 *    FP issue IPC and mode history (damps spurious transitions);
 *  - three issue modes: 8-wide (normal), 6-wide and 4-wide (low power);
 *  - 6-wide disables 1 intALU, 1 fpALU, 1 fpMulDiv;
 *    4-wide disables 3 intALU, 1 intMulDiv, 2 fpALU, 2 fpMulDiv and
 *    (PLB-ext only) one D-cache port;
 *  - PLB-orig clock-gates the disabled execution units and a
 *    proportional slice of the issue queue; PLB-ext additionally gates
 *    latch slices, the D-cache decoder port and result buses.
 *
 * Exact trigger thresholds are not published; the values below are our
 * calibration (see DESIGN.md Sec 2) chosen to land PLB in the paper's
 * reported band (~3 % performance loss, ~6 % / ~10 % power savings).
 */

#ifndef DCG_GATING_PLB_HH
#define DCG_GATING_PLB_HH

#include "common/stats.hh"
#include "gating/policy.hh"

namespace dcg {

struct PlbConfig
{
    unsigned windowCycles = 256;

    /** Window issue-IPC below this requests 4-wide mode. */
    double ipcThresholdLow = 1.5;
    /** Window issue-IPC below this requests 6-wide mode. */
    double ipcThresholdMid = 2.8;
    /** FP issue-IPC above this keeps the machine at >= 6-wide. */
    double fpIpcGuard = 0.8;

    /**
     * Mode history: consecutive windows that must agree before
     * switching *down* (switching up is immediate, as in [1]).
     */
    unsigned downConfirmWindows = 2;

    /** PLB-ext gates latches/D-cache/result buses too (Sec 4.3). */
    bool extended = false;
};

class PlbController : public GatingPolicy
{
  public:
    PlbController(const CoreConfig &core_cfg, const PlbConfig &cfg,
                  StatRegistry &stats);

    void beginCycle(Core &core) override;
    GateState gates(const CycleActivity &act) override;

    const char *name() const override
    { return cfg.extended ? "plb-ext" : "plb-orig"; }

    /** Current issue mode (8, 6 or 4). */
    unsigned mode() const { return curMode; }

  private:
    void applyMode(Core &core, unsigned mode);
    unsigned desiredMode(double ipc, double fp_ipc) const;

    CoreConfig coreCfg;
    PlbConfig cfg;

    unsigned curMode = 8;
    unsigned pendingDownMode = 8;
    unsigned pendingDownCount = 0;

    /** Current-window accumulators. */
    std::uint64_t windowIssued = 0;
    std::uint64_t windowFpIssued = 0;
    unsigned windowCycles = 0;

    Counter &windows8;
    Counter &windows6;
    Counter &windows4;
    Counter &transitions;
};

} // namespace dcg

#endif // DCG_GATING_PLB_HH
