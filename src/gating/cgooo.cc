#include "gating/cgooo.hh"

#include <algorithm>

#include "common/log.hh"
#include "gating/registry.hh"
#include "sim/simulator.hh"

namespace dcg {

CgoooController::CgoooController(const CoreConfig &core_cfg,
                                 const CgoooConfig &cfg_,
                                 StatRegistry &stats)
    : coreCfg(core_cfg),
      cfg(cfg_),
      activeBlocks(stats.counter("cgooo.active_blocks",
                                 "issue-queue block-cycles clocked")),
      gatedBlocks(stats.counter("cgooo.gated_blocks",
                                "issue-queue block-cycles clock-gated"))
{
    DCG_ASSERT(cfg.blockSize > 0 &&
               coreCfg.windowSize % cfg.blockSize == 0,
               "CG-OoO block size must divide the window size");
    DCG_ASSERT(cfg.schedOverhead >= 0.0,
               "negative CG-OoO scheduler overhead");
    numBlocks = coreCfg.windowSize / cfg.blockSize;
}

GateState
CgoooController::gates(const CycleActivity &act)
{
    GateState g;

    // Compacted-allocation model: residents fill the lowest blocks;
    // a rename group's worth of entries stays enabled for this
    // cycle's unannounced arrivals (same reserve as DCG's IQ
    // extension after [6]).
    DCG_ASSERT(act.iqOccupied <= coreCfg.windowSize,
               "IQ occupancy exceeds window size");
    const unsigned reserved = std::min<unsigned>(
        act.iqOccupied + coreCfg.renameWidth, coreCfg.windowSize);
    const unsigned active =
        (reserved + cfg.blockSize - 1) / cfg.blockSize;
    const unsigned gated = numBlocks - active;
    activeBlocks += active;
    gatedBlocks += gated;

    const double active_frac = static_cast<double>(active) /
                               static_cast<double>(numBlocks);
    g.iqGatedFraction = 1.0 - active_frac;
    // Wakeup broadcast is driven only into active blocks.
    g.iqWakeupScale = active_frac;
    // The per-block schedulers of the active blocks are clocked.
    g.iqSchedOverhead = cfg.schedOverhead * active_frac;
    return g;
}

void
CgoooController::skipIdle(Core &core, std::uint64_t cycles,
                          IdleSink &sink)
{
    (void)core;
    // Idle occupancy is zero, so the same rename-width reserve of
    // blocks stays clocked every skipped cycle; multiply the per-cycle
    // block counters instead of looping.
    const CycleActivity idle{};
    const GateState g = gates(idle);
    if (cycles > 1) {
        const unsigned reserved = std::min<unsigned>(
            coreCfg.renameWidth, coreCfg.windowSize);
        const unsigned active =
            (reserved + cfg.blockSize - 1) / cfg.blockSize;
        activeBlocks += std::uint64_t{active} * (cycles - 1);
        gatedBlocks += std::uint64_t{numBlocks - active} * (cycles - 1);
    }
    sink.chargeIdle(g, cycles);
}

namespace gating {
namespace {

const bool registered = registerScheme(
    {"cgooo",
     "coarse-grain OoO gating (Mohammadi et al., arXiv 1606.01607):"
     " block-granular issue-queue clock and wakeup-broadcast gating",
     {{"block-size", "issue-queue entries per gated block", "16"},
      {"sched-overhead",
       "per-block scheduler energy, fraction of iqClockCap", "0.04"}}},
    [](const SimConfig &cfg, StatRegistry &stats) {
        return std::make_unique<CgoooController>(cfg.core, cfg.cgooo,
                                                 stats);
    });

} // namespace

void anchorCgoooSchemeRegistration() { (void)registered; }

} // namespace gating

} // namespace dcg
