#include "gating/dcg.hh"

#include <algorithm>

#include <string>

#include "common/log.hh"
#include "gating/registry.hh"
#include "sim/simulator.hh"

namespace dcg {

namespace gating {
namespace {

const bool registered = registerScheme(
    {"dcg",
     "deterministic clock gating (this paper, HPCA 2003): FU, latch,"
     " D-cache decoder and result-bus gating from piped GRANT signals",
     {{"gate-iq",
       "also gate empty issue-queue entries after [6] (dcgsim"
       " --gate-iq)", "off"}}},
    [](const SimConfig &cfg, StatRegistry &stats) {
        return std::make_unique<DcgController>(cfg.core, cfg.dcg,
                                               stats);
    });

} // namespace

void anchorDcgSchemeRegistration() { (void)registered; }

} // namespace gating

DcgController::DcgController(const CoreConfig &core_cfg,
                             const DcgConfig &cfg_, StatRegistry &stats)
    : coreCfg(core_cfg),
      cfg(cfg_),
      gatedFuCycles(stats.counter("dcg.gated_fu_cycles",
                                  "execution-unit-cycles clock-gated")),
      gatedLatchSlots(stats.counter("dcg.gated_latch_slots",
                                    "latch slot-cycles clock-gated")),
      gatedPorts(stats.counter("dcg.gated_dcache_ports",
                               "D-cache port-cycles clock-gated")),
      gatedBuses(stats.counter("dcg.gated_result_buses",
                               "result-bus-cycles clock-gated"))
{
    for (unsigned t = 0; t < kNumFuTypes; ++t) {
        toggles[t] = &stats.counter(
            std::string("dcg.toggles.") +
            fuTypeName(static_cast<FuType>(t)),
            "gate-control transitions for this FU type");
        // Everything starts gated: an idle machine draws minimal power.
        prevMask[t] = static_cast<std::uint16_t>(
            (1u << coreCfg.fuCount[t]) - 1);
    }
}

GateState
DcgController::gates(const CycleActivity &act)
{
    GateState g;
    g.dcgControlActive = true;

    if (cfg.gateExecUnits) {
        for (unsigned t = 0; t < kNumFuTypes; ++t) {
            const std::uint16_t all = static_cast<std::uint16_t>(
                (1u << coreCfg.fuCount[t]) - 1);
            // The GRANT signals piped from the issue stage identify the
            // busy instances for this cycle; everything else is gated.
            const std::uint16_t mask =
                static_cast<std::uint16_t>(all & ~act.fuBusyMask[t]);
            g.fuGateMask[t] = mask;
            gatedFuCycles += __builtin_popcount(mask);
            *toggles[t] += __builtin_popcount(
                static_cast<std::uint16_t>(mask ^ prevMask[t]));
            prevMask[t] = mask;
        }
    }

    if (cfg.gateLatches) {
        for (unsigned p = 0; p < kNumLatchPhases; ++p) {
            const auto phase = static_cast<LatchPhase>(p);
            if (!latchPhaseGateable(phase))
                continue;
            DCG_ASSERT(act.latchFlux[p] <= coreCfg.issueWidth,
                       "latch flux exceeds machine width");
            const std::uint8_t gated = static_cast<std::uint8_t>(
                coreCfg.issueWidth - act.latchFlux[p]);
            g.latchSlotsGated[p] = gated;
            gatedLatchSlots += gated;
        }
    }

    if (cfg.gateDcacheDecoders) {
        DCG_ASSERT(act.dcachePortsUsed <= coreCfg.dcachePorts,
                   "port use exceeds port count");
        g.dcachePortsGated = static_cast<std::uint8_t>(
            coreCfg.dcachePorts - act.dcachePortsUsed);
        gatedPorts += g.dcachePortsGated;
    }

    if (cfg.gateIssueQueue) {
        // [6]: entries beyond the allocated window region are known
        // empty and their CAM/wakeup slices can be clock-gated. The
        // rename width is reserved since this cycle's dispatches were
        // not known when the gate control was set up.
        const unsigned size = coreCfg.windowSize;
        const unsigned occupied = std::min<unsigned>(
            act.iqOccupied + coreCfg.renameWidth, size);
        g.iqGatedFraction =
            static_cast<double>(size - occupied) / size;
    }

    if (cfg.gateResultBus) {
        DCG_ASSERT(act.resultBusUsed <= coreCfg.numResultBuses,
                   "bus use exceeds bus count");
        g.resultBusesGated = static_cast<std::uint8_t>(
            coreCfg.numResultBuses - act.resultBusUsed);
        gatedBuses += g.resultBusesGated;
    }

    return g;
}

void
DcgController::skipIdle(Core &core, std::uint64_t cycles, IdleSink &sink)
{
    (void)core;
    // One real gates() call settles the toggle accounting (the mask
    // may transition into all-gated) and charges the first cycle's
    // counters; the remaining cycles repeat the identical all-idle
    // decision with zero toggles, so their counters are a multiply.
    const CycleActivity idle{};
    const GateState g = gates(idle);
    if (cycles > 1) {
        const std::uint64_t rest = cycles - 1;
        if (cfg.gateExecUnits) {
            std::uint64_t per = 0;
            for (unsigned t = 0; t < kNumFuTypes; ++t)
                per += static_cast<unsigned>(
                    __builtin_popcount(g.fuGateMask[t]));
            gatedFuCycles += per * rest;
        }
        if (cfg.gateLatches) {
            std::uint64_t per = 0;
            for (unsigned p = 0; p < kNumLatchPhases; ++p)
                per += g.latchSlotsGated[p];
            gatedLatchSlots += per * rest;
        }
        if (cfg.gateDcacheDecoders)
            gatedPorts += std::uint64_t{g.dcachePortsGated} * rest;
        if (cfg.gateResultBus)
            gatedBuses += std::uint64_t{g.resultBusesGated} * rest;
    }
    sink.chargeIdle(g, cycles);
}

} // namespace dcg
