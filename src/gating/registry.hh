/**
 * @file
 * String-keyed gating-scheme registry.
 *
 * A scheme is one file and one registration: the scheme's translation
 * unit self-registers a SchemeInfo (name, one-line description with
 * paper provenance, config knobs) plus a factory that builds its
 * GatingPolicy from a SimConfig. Everything that enumerates or selects
 * schemes — dcgsim (--scheme validation, --list-schemes, usage text),
 * the figure/ablation drivers, exp::Grid expansion, JobSpec/GridSpec
 * validation on the wire, and the report layer's results schema — goes
 * through this catalog, so adding a scheme never touches a switch
 * statement again (mirroring how statRegistryCatalog already catalogs
 * stats).
 *
 * Registration pattern (in the scheme's .cc):
 *
 *     namespace { const bool registered = gating::registerScheme(
 *         {"myscheme", "what it gates (Paper et al.)",
 *          {{"knob", "what it does", "default"}}},
 *         [](const SimConfig &cfg, StatRegistry &stats) {
 *             return std::make_unique<MyController>(cfg.core,
 *                                                   cfg.myscheme, stats);
 *         }); }
 *     void anchorMySchemeRegistration() {}
 *
 * The anchor is the static-archive escape hatch: a TU whose only
 * definitions are self-registration statics is dropped by the linker,
 * so registry.cc calls every scheme's anchor before answering lookups
 * (ensureBuiltins), forcing the registration objects into the binary.
 *
 * The factory signature takes SimConfig by forward declaration only:
 * scheme implementations include sim/simulator.hh for the definition
 * (a header-only back-reference; the gating library gains no link
 * dependency on dcg_sim).
 */

#ifndef DCG_GATING_REGISTRY_HH
#define DCG_GATING_REGISTRY_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace dcg {

struct SimConfig;
class StatRegistry;
class GatingPolicy;

namespace gating {

/** One scheme configuration knob, for catalogs and usage text. */
struct SchemeKnob
{
    std::string name;
    std::string description;
    std::string defaultValue;
};

/** Everything the catalog knows about one registered scheme. */
struct SchemeInfo
{
    std::string name;
    std::string description;  ///< one line, names the source paper
    std::vector<SchemeKnob> knobs;
};

/** Builds the scheme's policy; stats registrations happen inside. */
using SchemeFactory = std::function<std::unique_ptr<GatingPolicy>(
    const SimConfig &, StatRegistry &)>;

/**
 * Register a scheme. Returns true (the value exists so a namespace-
 * scope `const bool` can run the registration at static-init time).
 * Duplicate names are a fatal() — two files claiming one scheme is a
 * build error, not a runtime preference.
 */
bool registerScheme(SchemeInfo info, SchemeFactory factory);

/** All registered schemes, sorted by name. */
std::vector<SchemeInfo> schemeCatalog();

/** Registered scheme names, sorted. */
std::vector<std::string> schemeNames();

/** Names joined for error/usage text, e.g. "base|cgooo|dcg|...". */
std::string schemeNamesJoined(char sep = '|');

/** True when @p name is a registered scheme. */
bool isScheme(const std::string &name);

/** Catalog entry for @p name, or nullptr. */
const SchemeInfo *findScheme(const std::string &name);

/**
 * Build the gating policy for @p config's scheme string; fatal() on an
 * unregistered name (callers with non-fatal needs validate first via
 * isScheme — JobSpec::validate does).
 */
std::unique_ptr<GatingPolicy> makePolicy(const SimConfig &config,
                                         StatRegistry &stats);

} // namespace gating
} // namespace dcg

#endif // DCG_GATING_REGISTRY_HH
