/**
 * @file
 * Deterministic pseudo-random number generation for workload synthesis.
 *
 * We deliberately avoid <random> engines in the hot path: xoshiro256**
 * is fast, has well-studied statistical quality, and — critically for a
 * simulator — its output is bit-identical across standard libraries, so
 * experiments reproduce everywhere.
 */

#ifndef DCG_COMMON_RNG_HH
#define DCG_COMMON_RNG_HH

#include <cstdint>
#include <vector>

namespace dcg {

/** xoshiro256** PRNG with SplitMix64 seeding. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Uniform 64-bit value. */
    std::uint64_t next();

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Uniform integer in [0, bound) using rejection-free mapping. */
    std::uint64_t nextBounded(std::uint64_t bound);

    /** Bernoulli trial with probability @p p of returning true. */
    bool bernoulli(double p);

    /**
     * Geometric number of failures before first success,
     * P(k) = (1-p)^k p. Returns values in [0, cap].
     */
    unsigned geometric(double p, unsigned cap = 1u << 20);

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t uniformInt(std::uint64_t lo, std::uint64_t hi);

  private:
    std::uint64_t s[4];
};

/**
 * Sampler for a fixed discrete distribution (e.g. an instruction mix).
 * Built once from weights; sampling is O(n) over a small table, which
 * beats alias tables for the ~10-entry mixes used here.
 */
class DiscreteSampler
{
  public:
    DiscreteSampler() = default;

    /** @param weights non-negative weights; need not sum to one. */
    explicit DiscreteSampler(const std::vector<double> &weights);

    /** Draw an index in [0, size). */
    unsigned sample(Rng &rng) const;

    /** Normalised probability of index @p i. */
    double probability(unsigned i) const;

    unsigned size() const { return cumulative.empty()
        ? 0 : static_cast<unsigned>(cumulative.size()); }

  private:
    std::vector<double> cumulative;
};

} // namespace dcg

#endif // DCG_COMMON_RNG_HH
