/**
 * @file
 * Deterministic pseudo-random number generation for workload synthesis.
 *
 * We deliberately avoid <random> engines in the hot path: xoshiro256**
 * is fast, has well-studied statistical quality, and — critically for a
 * simulator — its output is bit-identical across standard libraries, so
 * experiments reproduce everywhere.
 */

#ifndef DCG_COMMON_RNG_HH
#define DCG_COMMON_RNG_HH

#include <cstdint>
#include <vector>

namespace dcg {

/** xoshiro256** PRNG with SplitMix64 seeding. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    // The draw primitives are inline: the trace generator makes
    // several draws per micro-op, which makes call overhead visible
    // in whole-simulator profiles.

    /** Uniform 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(s[1] * 5, 7) * 9;
        const std::uint64_t t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = rotl(s[3], 45);
        return result;
    }

    /** Uniform double in [0, 1). */
    double
    nextDouble()
    {
        // 53 high bits -> [0, 1) with full double precision.
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Uniform integer in [0, bound) using rejection-free mapping. */
    std::uint64_t
    nextBounded(std::uint64_t bound)
    {
        // Lemire's multiply-shift mapping; the tiny modulo bias is
        // irrelevant for workload synthesis.
        const std::uint64_t x = next();
        return static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(x) * bound) >> 64);
    }

    /** Bernoulli trial with probability @p p of returning true. */
    bool
    bernoulli(double p)
    {
        if (p <= 0.0)
            return false;
        if (p >= 1.0)
            return true;
        return nextDouble() < p;
    }

    /**
     * Geometric number of failures before first success,
     * P(k) = (1-p)^k p. Returns values in [0, cap].
     */
    unsigned geometric(double p, unsigned cap = 1u << 20);

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t uniformInt(std::uint64_t lo, std::uint64_t hi);

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t s[4];
};

/**
 * Sampler for a fixed discrete distribution (e.g. an instruction mix).
 * Built once from weights; sampling is O(n) over a small table, which
 * beats alias tables for the ~10-entry mixes used here.
 */
class DiscreteSampler
{
  public:
    DiscreteSampler() = default;

    /** @param weights non-negative weights; need not sum to one. */
    explicit DiscreteSampler(const std::vector<double> &weights);

    /** Draw an index in [0, size). Inline: one draw per micro-op. */
    unsigned
    sample(Rng &rng) const
    {
        const double u = rng.nextDouble();
        for (unsigned i = 0; i < cumulative.size(); ++i) {
            if (u < cumulative[i])
                return i;
        }
        return static_cast<unsigned>(cumulative.size() - 1);
    }

    /** Normalised probability of index @p i. */
    double probability(unsigned i) const;

    unsigned size() const { return cumulative.empty()
        ? 0 : static_cast<unsigned>(cumulative.size()); }

  private:
    std::vector<double> cumulative;
};

} // namespace dcg

#endif // DCG_COMMON_RNG_HH
