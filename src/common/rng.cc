#include "common/rng.hh"

#include <cmath>

#include "common/log.hh"

namespace dcg {

namespace {

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    // SplitMix64 expansion guarantees a non-zero state for any seed.
    std::uint64_t sm = seed;
    for (auto &word : s)
        word = splitmix64(sm);
}

unsigned
Rng::geometric(double p, unsigned cap)
{
    if (p >= 1.0)
        return 0;
    DCG_ASSERT(p > 0.0, "geometric with p <= 0");
    const double u = nextDouble();
    const double k = std::floor(std::log1p(-u) / std::log1p(-p));
    if (k >= static_cast<double>(cap))
        return cap;
    return static_cast<unsigned>(k);
}

std::uint64_t
Rng::uniformInt(std::uint64_t lo, std::uint64_t hi)
{
    DCG_ASSERT(lo <= hi, "uniformInt with lo > hi");
    return lo + nextBounded(hi - lo + 1);
}

DiscreteSampler::DiscreteSampler(const std::vector<double> &weights)
{
    DCG_ASSERT(!weights.empty(), "empty discrete distribution");
    cumulative.reserve(weights.size());
    double total = 0.0;
    for (double w : weights) {
        DCG_ASSERT(w >= 0.0, "negative weight");
        total += w;
        cumulative.push_back(total);
    }
    DCG_ASSERT(total > 0.0, "all-zero weights");
    for (double &c : cumulative)
        c /= total;
    cumulative.back() = 1.0;
}

double
DiscreteSampler::probability(unsigned i) const
{
    DCG_ASSERT(i < cumulative.size(), "probability index out of range");
    return i == 0 ? cumulative[0] : cumulative[i] - cumulative[i - 1];
}

} // namespace dcg
