/**
 * @file
 * Thread-ownership and lock annotations for the serving layer.
 *
 * The serve layer's concurrency contract is an *ownership* contract:
 * a PeerPool belongs to exactly one event-loop thread, a Server's
 * connection state belongs to the I/O thread, and the few members
 * that cross threads are guarded by named mutexes. Before this header
 * those rules lived in comments; these macros turn them into
 * declarations the dcglint `thread-ownership` check (and, under
 * Clang, the native thread-safety analysis) can verify:
 *
 *   - DCG_OWNER_THREAD: callable only on the thread that owns the
 *     object (the event loop driving a PeerPool, the thread inside
 *     Server::run()). An owner-thread method touches unsynchronized
 *     state and must never be reached from a DCG_ANY_THREAD context.
 *
 *   - DCG_ANY_THREAD: safe from any thread — the method either only
 *     touches atomics/immutable state or takes the relevant locks
 *     itself (the injection surface, counters, requestStop()).
 *
 *   - DCG_GUARDED_BY(mutex): the member may only be read or written
 *     with @p mutex held. dcglint flags any out-of-line member
 *     function of the class that names the member but never names
 *     the mutex.
 *
 *   - DCG_REQUIRES(mutex): the function is called with @p mutex
 *     already held by the caller (the `*Locked` helper convention);
 *     dcglint treats the mutex as visibly held for the whole body.
 *
 * Placement: function annotations trail the declarator (after
 * `const`/`override`, before `;` or `{`); DCG_GUARDED_BY trails the
 * member name. Exactly where Clang's attributes go, because that is
 * what they expand to when the toolchain supports them:
 *
 *     void post(...) DCG_ANY_THREAD;
 *     std::vector<Injected> injected DCG_GUARDED_BY(injectMutex);
 *
 * Native expansion is opt-in (-DDCG_THREAD_SAFETY=ON, Clang only —
 * see the root CMakeLists): libstdc++'s std::mutex/std::lock_guard
 * carry no capability annotations, so `-Wthread-safety` under the
 * native expansion reports advisory findings rather than hard
 * errors. dcglint's lexical check is the enforced layer; the native
 * attributes are the escalation path for toolchains that can use
 * them. With the option off every macro expands to nothing and the
 * header costs nothing.
 */

#ifndef DCG_COMMON_THREAD_ANNOTATIONS_HH
#define DCG_COMMON_THREAD_ANNOTATIONS_HH

#if defined(DCG_THREAD_SAFETY_NATIVE) && defined(__clang__) && \
    defined(__has_attribute)
#if __has_attribute(guarded_by)
#define DCG_THREAD_ANNOTATION_(x) __attribute__((x))
#endif
#endif
#ifndef DCG_THREAD_ANNOTATION_
#define DCG_THREAD_ANNOTATION_(x)  // no-op without native support
#endif

/** Callable only on the object's owner thread (see file comment). */
#define DCG_OWNER_THREAD

/** Safe to call from any thread (atomics, or locks internally). */
#define DCG_ANY_THREAD

/** Member readable/writable only with @p x held. */
#define DCG_GUARDED_BY(x) DCG_THREAD_ANNOTATION_(guarded_by(x))

/** Function body runs with @p x already held by the caller. */
#define DCG_REQUIRES(x) \
    DCG_THREAD_ANNOTATION_(requires_capability(x))

#endif // DCG_COMMON_THREAD_ANNOTATIONS_HH
