#include "common/log.hh"

#include <cstdio>
#include <cstdlib>
#include <iostream>

namespace dcg {
namespace detail {

namespace {

const char *
levelTag(LogLevel level)
{
    switch (level) {
      case LogLevel::Inform: return "info";
      case LogLevel::Warn:   return "warn";
      case LogLevel::Fatal:  return "fatal";
      case LogLevel::Panic:  return "panic";
    }
    return "?";
}

} // namespace

void
logPrint(LogLevel level, const std::string &msg)
{
    std::cerr << levelTag(level) << ": " << msg << std::endl;
}

void
logTerminate(LogLevel level, const std::string &msg, const char *file,
             int line)
{
    if (file) {
        std::cerr << levelTag(level) << ": " << msg << " (" << file << ":"
                  << line << ")" << std::endl;
    } else {
        logPrint(level, msg);
    }
    if (level == LogLevel::Panic)
        std::abort();
    std::exit(1);
}

} // namespace detail
} // namespace dcg
