/**
 * @file
 * Lightweight statistics package in the spirit of gem5's Stats.
 *
 * Modules create named statistics inside a StatRegistry; the registry
 * can be dumped as a sorted text report. Statistics are owned by the
 * registry (stable addresses), so modules keep raw references.
 */

#ifndef DCG_COMMON_STATS_HH
#define DCG_COMMON_STATS_HH

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace dcg {

/** Monotonically increasing event counter. */
class Counter
{
  public:
    void operator++() { ++val; }
    void operator++(int) { ++val; }
    void operator+=(std::uint64_t n) { val += n; }
    /** Fold-back hook: overwrite with an externally accumulated count. */
    void set(std::uint64_t n) { val = n; }
    std::uint64_t value() const { return val; }
    void reset() { val = 0; }

  private:
    std::uint64_t val = 0;
};

/** Arbitrary floating-point scalar (accumulated energy, etc.). */
class Scalar
{
  public:
    void operator+=(double x) { val += x; }
    void set(double x) { val = x; }
    double value() const { return val; }
    void reset() { val = 0.0; }

  private:
    double val = 0.0;
};

/** Running average of submitted samples. */
class Average
{
  public:
    void sample(double x) { sum += x; ++count; }
    /** Fold-back hook: overwrite with an externally accumulated sum. */
    void set(double s, std::uint64_t n) { sum = s; count = n; }
    double mean() const { return count ? sum / count : 0.0; }
    std::uint64_t samples() const { return count; }
    void reset() { sum = 0.0; count = 0; }

  private:
    double sum = 0.0;
    std::uint64_t count = 0;
};

/** Fixed-bucket histogram over [0, buckets); overflow goes last. */
class Distribution
{
  public:
    explicit Distribution(unsigned num_buckets = 16)
        : buckets(num_buckets + 1, 0) {}

    void sample(unsigned x);
    std::uint64_t bucket(unsigned i) const { return buckets.at(i); }
    std::uint64_t overflow() const { return buckets.back(); }
    std::uint64_t samples() const { return total; }
    double mean() const { return total ? sum / total : 0.0; }
    unsigned numBuckets() const
    { return static_cast<unsigned>(buckets.size()) - 1; }
    void reset();

  private:
    std::vector<std::uint64_t> buckets;
    std::uint64_t total = 0;
    double sum = 0.0;
};

/** Value computed on demand from other statistics. */
class Formula
{
  public:
    using Fn = std::function<double()>;
    void define(Fn fn) { eval = std::move(fn); }
    double value() const { return eval ? eval() : 0.0; }

  private:
    Fn eval;
};

/**
 * Owning registry of named statistics.
 *
 * Names are hierarchical by convention ("core.ipc", "power.latch.energy")
 * and must be unique; re-registering a name panics so modules catch
 * wiring errors immediately.
 */
class StatRegistry
{
  public:
    Counter &counter(const std::string &name, const std::string &desc);
    Scalar &scalar(const std::string &name, const std::string &desc);
    Average &average(const std::string &name, const std::string &desc);
    Distribution &distribution(const std::string &name,
                               const std::string &desc,
                               unsigned num_buckets);
    Formula &formula(const std::string &name, const std::string &desc);

    /** Look up a statistic's printable value; 0 if absent. */
    double lookup(const std::string &name) const;

    /** True if a statistic with this name exists. */
    bool contains(const std::string &name) const;

    /** Reset all resettable statistics (formulas are unaffected). */
    void resetAll();

    /** Dump "name value # desc" lines, sorted by name. */
    void dump(std::ostream &os) const;

    std::size_t size() const { return entries.size(); }

  private:
    struct Entry
    {
        enum class Kind { Counter, Scalar, Average, Distribution, Formula };
        Kind kind;
        std::string desc;
        std::unique_ptr<Counter> counter;
        std::unique_ptr<Scalar> scalar;
        std::unique_ptr<Average> average;
        std::unique_ptr<Distribution> dist;
        std::unique_ptr<Formula> fml;
        double printable() const;
    };

    Entry &insert(const std::string &name, const std::string &desc,
                  Entry::Kind kind);

    std::map<std::string, Entry> entries;
};

} // namespace dcg

#endif // DCG_COMMON_STATS_HH
