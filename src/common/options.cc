#include "common/options.hh"

#include <cerrno>
#include <cstdlib>

#include "common/log.hh"

namespace dcg {

Options::Options(int argc, char **argv, const std::set<std::string> &known)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0)
            fatal("unexpected argument '", arg, "' (expected --key=value)");
        arg = arg.substr(2);
        std::string key = arg;
        std::string value = "1";
        if (auto eq = arg.find('='); eq != std::string::npos) {
            key = arg.substr(0, eq);
            value = arg.substr(eq + 1);
        }
        if (known.find(key) == known.end())
            fatal("unknown option '--", key, "'");
        values[key] = value;
    }
}

bool
Options::has(const std::string &key) const
{
    return values.find(key) != values.end();
}

std::string
Options::getString(const std::string &key, const std::string &def) const
{
    auto it = values.find(key);
    return it == values.end() ? def : it->second;
}

std::int64_t
Options::getInt(const std::string &key, std::int64_t def) const
{
    auto it = values.find(key);
    if (it == values.end())
        return def;
    return std::strtoll(it->second.c_str(), nullptr, 0);
}

double
Options::getDouble(const std::string &key, double def) const
{
    auto it = values.find(key);
    if (it == values.end())
        return def;
    return std::strtod(it->second.c_str(), nullptr);
}

bool
Options::getBool(const std::string &key, bool def) const
{
    auto it = values.find(key);
    if (it == values.end())
        return def;
    return it->second != "0" && it->second != "false";
}

std::int64_t
Options::envInt(const char *name, std::int64_t def)
{
    const char *v = std::getenv(name);
    if (!v || !*v)
        return def;
    return std::strtoll(v, nullptr, 0);
}

bool
Options::parseInt(const std::string &text, std::int64_t &out)
{
    errno = 0;
    char *end = nullptr;
    const long long v = std::strtoll(text.c_str(), &end, 0);
    if (end == text.c_str() || *end != '\0' || errno == ERANGE)
        return false;
    out = v;
    return true;
}

} // namespace dcg
