#include "common/table.hh"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/log.hh"

namespace dcg {

TextTable::TextTable(std::vector<std::string> headers)
    : header(std::move(headers))
{
    DCG_ASSERT(!header.empty(), "table needs at least one column");
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    DCG_ASSERT(cells.size() == header.size(),
               "row width ", cells.size(), " != header width ",
               header.size());
    rows.push_back(std::move(cells));
}

std::string
TextTable::num(double v, int decimals)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(decimals) << v;
    return os.str();
}

std::string
TextTable::pct(double fraction, int decimals)
{
    return num(fraction * 100.0, decimals);
}

void
TextTable::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(header.size());
    for (std::size_t c = 0; c < header.size(); ++c)
        widths[c] = header[c].size();
    for (const auto &row : rows) {
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            os << std::left << std::setw(static_cast<int>(widths[c]) + 2)
               << cells[c];
        }
        os << '\n';
    };

    emit(header);
    std::size_t total = 0;
    for (auto w : widths)
        total += w + 2;
    os << std::string(total, '-') << '\n';
    for (const auto &row : rows)
        emit(row);
}

} // namespace dcg
