#include "common/stats.hh"

#include <iomanip>
#include <ostream>

#include "common/log.hh"

namespace dcg {

void
Distribution::sample(unsigned x)
{
    const unsigned idx = x < numBuckets() ? x : numBuckets();
    ++buckets[idx];
    ++total;
    sum += x;
}

void
Distribution::reset()
{
    for (auto &b : buckets)
        b = 0;
    total = 0;
    sum = 0.0;
}

double
StatRegistry::Entry::printable() const
{
    switch (kind) {
      case Kind::Counter:      return static_cast<double>(counter->value());
      case Kind::Scalar:       return scalar->value();
      case Kind::Average:      return average->mean();
      case Kind::Distribution: return dist->mean();
      case Kind::Formula:      return fml->value();
    }
    return 0.0;
}

StatRegistry::Entry &
StatRegistry::insert(const std::string &name, const std::string &desc,
                     Entry::Kind kind)
{
    auto [it, inserted] = entries.try_emplace(name);
    if (!inserted)
        panic("duplicate statistic '", name, "'");
    it->second.kind = kind;
    it->second.desc = desc;
    return it->second;
}

Counter &
StatRegistry::counter(const std::string &name, const std::string &desc)
{
    Entry &e = insert(name, desc, Entry::Kind::Counter);
    e.counter = std::make_unique<Counter>();
    return *e.counter;
}

Scalar &
StatRegistry::scalar(const std::string &name, const std::string &desc)
{
    Entry &e = insert(name, desc, Entry::Kind::Scalar);
    e.scalar = std::make_unique<Scalar>();
    return *e.scalar;
}

Average &
StatRegistry::average(const std::string &name, const std::string &desc)
{
    Entry &e = insert(name, desc, Entry::Kind::Average);
    e.average = std::make_unique<Average>();
    return *e.average;
}

Distribution &
StatRegistry::distribution(const std::string &name, const std::string &desc,
                           unsigned num_buckets)
{
    Entry &e = insert(name, desc, Entry::Kind::Distribution);
    e.dist = std::make_unique<Distribution>(num_buckets);
    return *e.dist;
}

Formula &
StatRegistry::formula(const std::string &name, const std::string &desc)
{
    Entry &e = insert(name, desc, Entry::Kind::Formula);
    e.fml = std::make_unique<Formula>();
    return *e.fml;
}

double
StatRegistry::lookup(const std::string &name) const
{
    auto it = entries.find(name);
    return it == entries.end() ? 0.0 : it->second.printable();
}

bool
StatRegistry::contains(const std::string &name) const
{
    return entries.find(name) != entries.end();
}

void
StatRegistry::resetAll()
{
    for (auto &[name, e] : entries) {
        switch (e.kind) {
          case Entry::Kind::Counter:      e.counter->reset(); break;
          case Entry::Kind::Scalar:       e.scalar->reset(); break;
          case Entry::Kind::Average:      e.average->reset(); break;
          case Entry::Kind::Distribution: e.dist->reset(); break;
          case Entry::Kind::Formula:      break;
        }
    }
}

void
StatRegistry::dump(std::ostream &os) const
{
    for (const auto &[name, e] : entries) {
        os << std::left << std::setw(40) << name << ' '
           << std::setw(16) << std::setprecision(6) << e.printable()
           << " # " << e.desc << '\n';
    }
}

} // namespace dcg
