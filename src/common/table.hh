/**
 * @file
 * Plain-text table printer used by the benchmark harness to emit the
 * paper's figures/tables as aligned rows.
 */

#ifndef DCG_COMMON_TABLE_HH
#define DCG_COMMON_TABLE_HH

#include <iosfwd>
#include <string>
#include <vector>

namespace dcg {

class TextTable
{
  public:
    /** @param headers column titles (fixes the column count). */
    explicit TextTable(std::vector<std::string> headers);

    /** Append one row; must match the header column count. */
    void addRow(std::vector<std::string> cells);

    /** Convenience: format a double with @p decimals places. */
    static std::string num(double v, int decimals = 1);

    /** Format as a percentage with one decimal, e.g. "19.9". */
    static std::string pct(double fraction, int decimals = 1);

    void print(std::ostream &os) const;

  private:
    std::vector<std::string> header;
    std::vector<std::vector<std::string>> rows;
};

} // namespace dcg

#endif // DCG_COMMON_TABLE_HH
