/**
 * @file
 * Fundamental scalar types shared across the simulator.
 */

#ifndef DCG_COMMON_TYPES_HH
#define DCG_COMMON_TYPES_HH

#include <cstdint>
#include <limits>

namespace dcg {

/** Simulation time expressed in core clock cycles. */
using Cycle = std::uint64_t;

/** Byte address in the simulated (synthetic) address space. */
using Addr = std::uint64_t;

/** Monotonically increasing dynamic instruction sequence number. */
using InstSeq = std::uint64_t;

/** Sentinel for "no cycle scheduled yet". */
inline constexpr Cycle kCycleNever = std::numeric_limits<Cycle>::max();

/** Sentinel for invalid indices into pipeline structures. */
inline constexpr int kInvalidIndex = -1;

} // namespace dcg

#endif // DCG_COMMON_TYPES_HH
