/**
 * @file
 * Tiny command-line / environment option helper shared by the examples
 * and the benchmark harness.
 *
 * Accepts "--key=value" and bare "--flag" arguments; unknown keys are
 * fatal so typos don't silently run the wrong experiment.
 */

#ifndef DCG_COMMON_OPTIONS_HH
#define DCG_COMMON_OPTIONS_HH

#include <cstdint>
#include <map>
#include <set>
#include <string>

namespace dcg {

class Options
{
  public:
    /**
     * @param argc/argv standard main() arguments
     * @param known the set of accepted keys (without "--")
     */
    Options(int argc, char **argv, const std::set<std::string> &known);

    bool has(const std::string &key) const;
    std::string getString(const std::string &key,
                          const std::string &def) const;
    std::int64_t getInt(const std::string &key, std::int64_t def) const;
    double getDouble(const std::string &key, double def) const;
    bool getBool(const std::string &key, bool def) const;

    /** Read an integer environment variable with default. */
    static std::int64_t envInt(const char *name, std::int64_t def);

    /**
     * Strict integer parse of the *whole* of @p text (base 0: decimal,
     * 0x hex, 0 octal; leading whitespace ok). Returns false on empty
     * input, trailing junk or overflow — unlike getInt()/envInt(),
     * which inherit strtoll's silent zero-on-garbage coercion. Callers
     * that must diagnose bad worker counts (--jobs, DCG_JOBS) use this.
     */
    static bool parseInt(const std::string &text, std::int64_t &out);

  private:
    std::map<std::string, std::string> values;
};

} // namespace dcg

#endif // DCG_COMMON_OPTIONS_HH
