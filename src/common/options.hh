/**
 * @file
 * Tiny command-line / environment option helper shared by the examples
 * and the benchmark harness.
 *
 * Accepts "--key=value" and bare "--flag" arguments; unknown keys are
 * fatal so typos don't silently run the wrong experiment.
 */

#ifndef DCG_COMMON_OPTIONS_HH
#define DCG_COMMON_OPTIONS_HH

#include <cstdint>
#include <map>
#include <set>
#include <string>

namespace dcg {

class Options
{
  public:
    /**
     * @param argc/argv standard main() arguments
     * @param known the set of accepted keys (without "--")
     */
    Options(int argc, char **argv, const std::set<std::string> &known);

    bool has(const std::string &key) const;
    std::string getString(const std::string &key,
                          const std::string &def) const;
    std::int64_t getInt(const std::string &key, std::int64_t def) const;
    double getDouble(const std::string &key, double def) const;
    bool getBool(const std::string &key, bool def) const;

    /** Read an integer environment variable with default. */
    static std::int64_t envInt(const char *name, std::int64_t def);

  private:
    std::map<std::string, std::string> values;
};

} // namespace dcg

#endif // DCG_COMMON_OPTIONS_HH
