/**
 * @file
 * Fixed-latency delay line used to model pipeline-stage transport, e.g.
 * the latched GRANT signals DCG pipes from issue to execute/memory/
 * writeback.
 *
 * push() inserts this cycle's value; tick() shifts the line by one cycle
 * and returns the value that was pushed `depth` calls ago.
 */

#ifndef DCG_COMMON_DELAY_QUEUE_HH
#define DCG_COMMON_DELAY_QUEUE_HH

#include <vector>

#include "common/log.hh"

namespace dcg {

template <typename T>
class DelayQueue
{
  public:
    /**
     * @param depth delay in cycles (>= 1)
     * @param idle  value emitted before the line fills
     */
    explicit DelayQueue(unsigned depth, T idle = T{})
        : line(depth, idle), head(0)
    {
        DCG_ASSERT(depth >= 1, "delay queue needs depth >= 1");
    }

    /**
     * Advance one cycle: retire the oldest value and store @p in for
     * delivery @c depth cycles later.
     */
    T
    tick(const T &in)
    {
        T out = line[head];
        line[head] = in;
        head = (head + 1) % line.size();
        return out;
    }

    /** Value that the next tick() will return. */
    const T &front() const { return line[head]; }

    unsigned depth() const { return static_cast<unsigned>(line.size()); }

    /** Refill the whole line with @p idle. */
    void
    flush(const T &idle)
    {
        for (auto &v : line)
            v = idle;
    }

  private:
    std::vector<T> line;
    std::size_t head;
};

} // namespace dcg

#endif // DCG_COMMON_DELAY_QUEUE_HH
