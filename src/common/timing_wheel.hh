/**
 * @file
 * Fixed-horizon timing wheel for completion events.
 *
 * The out-of-order core schedules "result ready" events whose delays are
 * bounded by execution + memory latencies (a few hundred cycles). A
 * circular bucket array gives O(1) schedule/pop for those; the rare
 * longer delays (queued cache misses) spill into an ordered overflow
 * map.
 */

#ifndef DCG_COMMON_TIMING_WHEEL_HH
#define DCG_COMMON_TIMING_WHEEL_HH

#include <map>
#include <vector>

#include "common/log.hh"
#include "common/types.hh"

namespace dcg {

template <typename T>
class TimingWheel
{
  public:
    /** @param horizon number of slots; must exceed common max delay. */
    explicit TimingWheel(unsigned horizon = 512)
        : slots(horizon), now(0)
    {
        DCG_ASSERT(horizon >= 2, "timing wheel too small");
    }

    /** Schedule @p item to pop @p delay cycles from the current cycle. */
    void
    schedule(Cycle delay, const T &item)
    {
        DCG_ASSERT(delay > 0, "cannot schedule in the current cycle");
        if (delay < slots.size()) {
            slots[(now + delay) % slots.size()].push_back(item);
        } else {
            overflow.emplace(now + delay, item);
        }
        ++pending;
    }

    /**
     * Advance to the next cycle and collect everything due. The result
     * reference is valid until the next advance() call.
     */
    const std::vector<T> &
    advance()
    {
        ++now;
        auto &due = slots[now % slots.size()];
        scratch.swap(due);
        due.clear();
        // Pull overflow events that have come within range.
        while (!overflow.empty() && overflow.begin()->first == now) {
            scratch.push_back(overflow.begin()->second);
            overflow.erase(overflow.begin());
        }
        pending -= scratch.size();
        return scratch;
    }

    Cycle currentCycle() const { return now; }
    std::size_t pendingEvents() const { return pending; }

  private:
    std::vector<std::vector<T>> slots;
    std::multimap<Cycle, T> overflow;
    std::vector<T> scratch;
    Cycle now;
    std::size_t pending = 0;
};

} // namespace dcg

#endif // DCG_COMMON_TIMING_WHEEL_HH
