/**
 * @file
 * Minimal gem5-style status/error reporting: panic(), fatal(), warn(),
 * inform().
 *
 * panic() is for internal simulator bugs (invariant violations) and
 * aborts; fatal() is for user configuration errors and exits cleanly;
 * warn()/inform() only print.
 */

#ifndef DCG_COMMON_LOG_HH
#define DCG_COMMON_LOG_HH

#include <sstream>
#include <string>

namespace dcg {

/** Severity used by the raw reporting hook. */
enum class LogLevel { Inform, Warn, Fatal, Panic };

namespace detail {

/** Print a formatted message; terminates for Fatal/Panic. */
[[noreturn]] void logTerminate(LogLevel level, const std::string &msg,
                               const char *file, int line);

void logPrint(LogLevel level, const std::string &msg);

/** Fold a pack of streamable values into one string. */
template <typename... Args>
std::string
fold(Args &&...args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

} // namespace detail

/** Report an internal simulator bug and abort. */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    detail::logTerminate(LogLevel::Panic,
                         detail::fold(std::forward<Args>(args)...),
                         nullptr, 0);
}

/** Report an unrecoverable user/configuration error and exit(1). */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    detail::logTerminate(LogLevel::Fatal,
                         detail::fold(std::forward<Args>(args)...),
                         nullptr, 0);
}

/** Report suspicious but survivable conditions. */
template <typename... Args>
void
warn(Args &&...args)
{
    detail::logPrint(LogLevel::Warn,
                     detail::fold(std::forward<Args>(args)...));
}

/** Report normal operating status. */
template <typename... Args>
void
inform(Args &&...args)
{
    detail::logPrint(LogLevel::Inform,
                     detail::fold(std::forward<Args>(args)...));
}

/**
 * Simulator-level assertion that stays active in release builds.
 * Use for microarchitectural invariants whose violation means the
 * simulator (not the user) is wrong.
 */
#define DCG_ASSERT(cond, ...)                                           \
    do {                                                                \
        if (!(cond)) {                                                  \
            ::dcg::panic("assertion '", #cond, "' failed at ",          \
                         __FILE__, ":", __LINE__, ": ", __VA_ARGS__);   \
        }                                                               \
    } while (0)

} // namespace dcg

#endif // DCG_COMMON_LOG_HH
