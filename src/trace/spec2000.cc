#include "trace/spec2000.hh"

#include "common/log.hh"

namespace dcg {

namespace {

/** Convenience builder: mix given in OpClass order. */
Profile
makeProfile(const std::string &name, bool is_fp,
            std::array<double, kNumOpClasses> mix)
{
    Profile p;
    p.name = name;
    p.isFp = is_fp;
    p.mix = mix;
    // Stride streams are sized to stay L1-resident (hot-array model);
    // capacity/conflict misses are injected through the random region,
    // whose size selects L2-resident vs DRAM-bound behaviour.
    p.memory.strideRegionBytes = 32 * 1024;
    return p;
}

//                        IAlu  IMul  IDiv  FAlu  FMul  FDiv  Ld    St    Br
constexpr std::array<double, kNumOpClasses>
    kGzipMix    {0.52, 0.010, 0.000, 0.00, 0.00, 0.000, 0.20, 0.09, 0.18},
    kGccMix     {0.48, 0.010, 0.005, 0.00, 0.00, 0.000, 0.23, 0.12, 0.16},
    kMcfMix     {0.40, 0.010, 0.000, 0.00, 0.00, 0.000, 0.31, 0.09, 0.19},
    kParserMix  {0.47, 0.010, 0.005, 0.00, 0.00, 0.000, 0.22, 0.10, 0.20},
    kPerlbmkMix {0.50, 0.010, 0.005, 0.00, 0.00, 0.000, 0.24, 0.12, 0.13},
    kVortexMix  {0.45, 0.005, 0.000, 0.00, 0.00, 0.000, 0.27, 0.15, 0.13},
    kBzip2Mix   {0.50, 0.010, 0.000, 0.00, 0.00, 0.000, 0.23, 0.11, 0.15},
    kTwolfMix   {0.44, 0.020, 0.005, 0.01, 0.01, 0.000, 0.23, 0.09, 0.19},
    kWupwiseMix {0.23, 0.010, 0.000, 0.22, 0.22, 0.010, 0.21, 0.07, 0.03},
    kSwimMix    {0.16, 0.005, 0.000, 0.27, 0.21, 0.005, 0.25, 0.08, 0.02},
    kApplulMix  {0.18, 0.010, 0.000, 0.28, 0.21, 0.010, 0.22, 0.07, 0.02},
    kArtMix     {0.28, 0.005, 0.000, 0.22, 0.165, 0.000, 0.24, 0.04, 0.06},
    kEquakeMix  {0.27, 0.010, 0.000, 0.22, 0.13, 0.005, 0.26, 0.05, 0.06},
    kAmmpMix    {0.24, 0.005, 0.000, 0.24, 0.16, 0.015, 0.24, 0.05, 0.05},
    kLucasMix   {0.17, 0.005, 0.000, 0.28, 0.25, 0.005, 0.22, 0.05, 0.02},
    kApsiMix    {0.23, 0.010, 0.000, 0.25, 0.17, 0.010, 0.22, 0.07, 0.04};

std::vector<Profile>
buildIntProfiles()
{
    std::vector<Profile> v;

    {
        // gzip: compression loops over hot buffers; high ILP, mostly
        // predictable branches.
        Profile p = makeProfile("gzip", false, kGzipMix);
        p.deps = {0.58, 0.50, 0.08, 48};
        p.branches = {0.46, 0.28, 0.16, 0.10};
        p.memory.fracStack = 0.5;
        p.memory.fracStride = 0.47;
        p.memory.fracRandom = 0.03;
        p.memory.randomRegionBytes = 768 * 1024;   // L2 resident
        p.codeFootprintBytes = 32 * 1024;
        v.push_back(p);
    }
    {
        // gcc: branchy with a large code footprint; moderate ILP.
        Profile p = makeProfile("gcc", false, kGccMix);
        p.deps = {0.50, 0.54, 0.11, 48};
        p.branches = {0.40, 0.26, 0.20, 0.14};
        p.memory.fracStack = 0.48;
        p.memory.fracStride = 0.49;
        p.memory.fracRandom = 0.03;
        p.memory.randomRegionBytes = 1024 * 1024;  // L2 resident
        p.codeFootprintBytes = 56 * 1024;
        p.numStaticBranches = 1024;
        v.push_back(p);
    }
    {
        // mcf: pointer chasing over a working set far beyond L2; the
        // paper's stall-heavy best case for DCG.
        Profile p = makeProfile("mcf", false, kMcfMix);
        p.deps = {0.40, 0.58, 0.22, 40};
        p.branches = {0.40, 0.26, 0.22, 0.12};
        p.memory.fracStack = 0.4;
        p.memory.fracStride = 0.48;
        p.memory.fracRandom = 0.12;
        p.memory.randomRegionBytes = Addr{128} * 1024 * 1024;  // DRAM
        p.codeFootprintBytes = 24 * 1024;
        v.push_back(p);
    }
    {
        // parser: dictionary walks, branchy, modest working set.
        Profile p = makeProfile("parser", false, kParserMix);
        p.deps = {0.50, 0.54, 0.12, 48};
        p.branches = {0.40, 0.28, 0.20, 0.12};
        p.memory.fracStack = 0.5;
        p.memory.fracStride = 0.47;
        p.memory.fracRandom = 0.03;
        p.memory.randomRegionBytes = 1024 * 1024;  // L2 resident
        p.codeFootprintBytes = 48 * 1024;
        v.push_back(p);
    }
    {
        // perlbmk: interpreter with high int ILP, almost no FP; the
        // paper highlights that DCG gates its FPUs entirely.
        Profile p = makeProfile("perlbmk", false, kPerlbmkMix);
        p.deps = {0.58, 0.50, 0.08, 48};
        p.branches = {0.44, 0.30, 0.20, 0.06};
        p.memory.fracStack = 0.55;
        p.memory.fracStride = 0.43;
        p.memory.fracRandom = 0.02;
        p.memory.randomRegionBytes = 768 * 1024;
        p.codeFootprintBytes = 56 * 1024;
        p.numStaticBranches = 768;
        v.push_back(p);
    }
    {
        // vortex: OO database; store heavy, very predictable.
        Profile p = makeProfile("vortex", false, kVortexMix);
        p.deps = {0.56, 0.50, 0.09, 48};
        p.branches = {0.50, 0.30, 0.18, 0.02};
        p.memory.fracStack = 0.52;
        p.memory.fracStride = 0.46;
        p.memory.fracRandom = 0.02;
        p.memory.randomRegionBytes = 1024 * 1024;
        p.codeFootprintBytes = 56 * 1024;
        v.push_back(p);
    }
    {
        // bzip2: block-sorting compression, high ILP.
        Profile p = makeProfile("bzip2", false, kBzip2Mix);
        p.deps = {0.58, 0.50, 0.08, 48};
        p.branches = {0.44, 0.28, 0.18, 0.10};
        p.memory.fracStack = 0.45;
        p.memory.fracStride = 0.52;
        p.memory.fracRandom = 0.03;
        p.memory.randomRegionBytes = 1024 * 1024;
        p.codeFootprintBytes = 32 * 1024;
        v.push_back(p);
    }
    {
        // twolf: place-and-route with data-dependent branches.
        Profile p = makeProfile("twolf", false, kTwolfMix);
        p.deps = {0.48, 0.54, 0.14, 48};
        p.branches = {0.36, 0.26, 0.18, 0.20};
        p.memory.fracStack = 0.5;
        p.memory.fracStride = 0.46;
        p.memory.fracRandom = 0.04;
        p.memory.randomRegionBytes = 768 * 1024;
        p.codeFootprintBytes = 48 * 1024;
        v.push_back(p);
    }
    return v;
}

std::vector<Profile>
buildFpProfiles()
{
    std::vector<Profile> v;

    {
        // wupwise: QCD kernels, regular loops, ample ILP.
        Profile p = makeProfile("wupwise", true, kWupwiseMix);
        p.deps = {0.56, 0.56, 0.08, 48};
        p.branches = {0.62, 0.20, 0.17, 0.01};
        p.memory.fracStack = 0.35;
        p.memory.fracStride = 0.63;
        p.memory.fracRandom = 0.02;
        p.memory.randomRegionBytes = 1024 * 1024;
        p.codeFootprintBytes = 48 * 1024;
        p.numStaticBranches = 128;
        v.push_back(p);
    }
    {
        // swim: stencil sweeps with a DRAM-bound fraction.
        Profile p = makeProfile("swim", true, kSwimMix);
        p.deps = {0.52, 0.56, 0.09, 48};
        p.branches = {0.72, 0.12, 0.15, 0.01};
        p.memory.fracStack = 0.25;
        p.memory.fracStride = 0.71;
        p.memory.fracRandom = 0.04;
        p.memory.randomRegionBytes = 6 * 1024 * 1024;  // beyond L2
        p.memory.numStrideStreams = 12;
        p.codeFootprintBytes = 24 * 1024;
        p.numStaticBranches = 96;
        v.push_back(p);
    }
    {
        // applu: dense solver, good locality.
        Profile p = makeProfile("applu", true, kApplulMix);
        p.deps = {0.52, 0.56, 0.09, 48};
        p.branches = {0.66, 0.16, 0.16, 0.02};
        p.memory.fracStack = 0.35;
        p.memory.fracStride = 0.62;
        p.memory.fracRandom = 0.03;
        p.memory.randomRegionBytes = 1536 * 1024;
        p.codeFootprintBytes = 48 * 1024;
        p.numStaticBranches = 96;
        v.push_back(p);
    }
    {
        // art: neural-net scans that defeat the L2.
        Profile p = makeProfile("art", true, kArtMix);
        p.deps = {0.40, 0.58, 0.17, 40};
        p.branches = {0.56, 0.22, 0.16, 0.06};
        p.memory.fracStack = 0.25;
        p.memory.fracStride = 0.67;
        p.memory.fracRandom = 0.08;
        p.memory.randomRegionBytes = 6 * 1024 * 1024;
        p.codeFootprintBytes = 24 * 1024;
        p.numStaticBranches = 96;
        v.push_back(p);
    }
    {
        // equake: sparse FEM with indirect accesses.
        Profile p = makeProfile("equake", true, kEquakeMix);
        p.deps = {0.46, 0.56, 0.13, 48};
        p.branches = {0.54, 0.24, 0.16, 0.06};
        p.memory.fracStack = 0.35;
        p.memory.fracStride = 0.6;
        p.memory.fracRandom = 0.05;
        p.memory.randomRegionBytes = 1536 * 1024;
        p.codeFootprintBytes = 32 * 1024;
        v.push_back(p);
    }
    {
        // ammp: molecular dynamics, mixed locality, FP divides.
        Profile p = makeProfile("ammp", true, kAmmpMix);
        p.deps = {0.50, 0.56, 0.10, 48};
        p.branches = {0.54, 0.26, 0.16, 0.04};
        p.memory.fracStack = 0.4;
        p.memory.fracStride = 0.56;
        p.memory.fracRandom = 0.04;
        p.memory.randomRegionBytes = 1536 * 1024;
        p.codeFootprintBytes = 48 * 1024;
        v.push_back(p);
    }
    {
        // lucas: FFTs over a huge working set; the paper's second
        // stall-heavy outlier alongside mcf.
        Profile p = makeProfile("lucas", true, kLucasMix);
        p.deps = {0.40, 0.58, 0.20, 40};
        p.branches = {0.64, 0.18, 0.16, 0.02};
        p.memory.fracStack = 0.3;
        p.memory.fracStride = 0.63;
        p.memory.fracRandom = 0.07;
        p.memory.randomRegionBytes = Addr{96} * 1024 * 1024;  // DRAM
        p.codeFootprintBytes = 24 * 1024;
        p.numStaticBranches = 64;
        v.push_back(p);
    }
    {
        // apsi: meteorology code, balanced FP mix.
        Profile p = makeProfile("apsi", true, kApsiMix);
        p.deps = {0.52, 0.56, 0.09, 48};
        p.branches = {0.60, 0.20, 0.17, 0.03};
        p.memory.fracStack = 0.35;
        p.memory.fracStride = 0.62;
        p.memory.fracRandom = 0.03;
        p.memory.randomRegionBytes = 1536 * 1024;
        p.codeFootprintBytes = 56 * 1024;
        v.push_back(p);
    }
    return v;
}

} // namespace

std::vector<Profile>
specIntProfiles()
{
    return buildIntProfiles();
}

std::vector<Profile>
specFpProfiles()
{
    return buildFpProfiles();
}

std::vector<Profile>
allSpecProfiles()
{
    auto v = buildIntProfiles();
    auto fp = buildFpProfiles();
    v.insert(v.end(), fp.begin(), fp.end());
    return v;
}

Profile
profileByName(const std::string &name)
{
    for (const auto &p : allSpecProfiles()) {
        if (p.name == name)
            return p;
    }
    fatal("unknown benchmark '", name, "'");
}

std::vector<std::string>
allSpecNames()
{
    std::vector<std::string> names;
    for (const auto &p : allSpecProfiles())
        names.push_back(p.name);
    return names;
}

} // namespace dcg
