/**
 * @file
 * Workload profile: the parameter set from which a synthetic SPEC2000
 * benchmark model is generated.
 *
 * The paper drives Wattch with Alpha SPEC2000 binaries; we do not have
 * those (nor an Alpha front end), so each benchmark is replaced by a
 * stationary stochastic model with the characteristics that matter to
 * clock gating: instruction mix (which unit pools are exercised),
 * register dependence distances (how much ILP the window can extract),
 * branch behaviour (how often the front end refills), and memory
 * working-set structure (how often the back end stalls on misses).
 * See DESIGN.md §2 for the substitution argument.
 */

#ifndef DCG_TRACE_PROFILE_HH
#define DCG_TRACE_PROFILE_HH

#include <array>
#include <string>
#include <vector>

#include "common/types.hh"
#include "isa/op_class.hh"

namespace dcg {

/** Distribution of static-branch behaviour classes. */
struct BranchMixture
{
    double fracStronglyTaken = 0.40;    ///< ~97 % taken
    double fracStronglyNotTaken = 0.30; ///< ~3 % taken
    double fracLoop = 0.20;             ///< taken (P-1)x then not taken
    double fracRandom = 0.10;           ///< 50/50, unpredictable
};

/** Memory reference stream structure. */
struct MemoryBehavior
{
    double fracStack = 0.45;       ///< small hot region (L1 resident)
    double fracStride = 0.40;      ///< streaming walks over arrays
    double fracRandom = 0.15;      ///< uniform over a pointer region

    Addr stackBytes = 8 * 1024;
    Addr strideRegionBytes = 256 * 1024;
    Addr randomRegionBytes = 1 * 1024 * 1024;
    unsigned numStrideStreams = 8;
    unsigned strideBytes = 16;
};

/** Register-dependence structure. */
struct DependenceBehavior
{
    double srcReadyProb = 0.35;  ///< operand has no in-flight producer
    double frac2Src = 0.55;      ///< ops with two register sources
    double depGeoP = 0.18;       ///< geometric distance parameter
    unsigned depDistCap = 48;    ///< max encoded producer distance
};

/**
 * Program-phase behaviour. PLB's premise (and [1]'s) is that ILP
 * varies *within* a program; the generator therefore alternates
 * between a high-ILP phase (the base parameters) and a low-ILP phase
 * with scaled dependence/memory parameters, with geometrically
 * distributed phase lengths.
 */
struct PhaseBehavior
{
    /** Long-run fraction of instructions spent in the low-ILP phase. */
    double lowIlpFraction = 0.35;
    /** Mean phase segment length in instructions. */
    double meanPhaseLen = 3000.0;
    /** srcReadyProb multiplier while in the low-ILP phase. */
    double lowReadyScale = 0.30;
    /** depGeoP multiplier (shorter dependence distances) in low ILP. */
    double lowGeoScale = 2.8;
    /** fracRandom (pointer-region) multiplier in the low-ILP phase. */
    double lowMissScale = 1.8;
};

/**
 * Complete synthetic benchmark description. Instances for the SPEC2000
 * subset used by the paper live in spec2000.hh.
 */
struct Profile
{
    std::string name;
    bool isFp = false;  ///< belongs to the SPECfp subset

    /** Instruction-mix weights indexed by OpClass. */
    std::array<double, kNumOpClasses> mix{};

    DependenceBehavior deps;
    BranchMixture branches;
    MemoryBehavior memory;
    PhaseBehavior phases;

    /** Number of distinct static branches in the model. */
    unsigned numStaticBranches = 256;

    /** Instruction footprint; controls I-cache behaviour. */
    Addr codeFootprintBytes = 64 * 1024;

    double mixFraction(OpClass cls) const;
};

} // namespace dcg

#endif // DCG_TRACE_PROFILE_HH
