/**
 * @file
 * Online synthetic trace generator.
 *
 * Produces an endless, deterministic (per seed) stream of MicroOps that
 * realises a Profile: stable static branches with learnable behaviour,
 * structured memory address streams, and geometric register-dependence
 * distances.
 */

#ifndef DCG_TRACE_GENERATOR_HH
#define DCG_TRACE_GENERATOR_HH

#include <cstdint>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"
#include "isa/inst_source.hh"
#include "isa/micro_op.hh"
#include "trace/profile.hh"

namespace dcg {

class TraceGenerator : public InstSource
{
  public:
    TraceGenerator(const Profile &profile, std::uint64_t seed = 1);

    /** Generate the next dynamic instruction. */
    MicroOp next() override;

    const Profile &profile() const { return prof; }

    /** Dynamic instructions generated so far. */
    InstSeq generated() const { return count; }

    /** True while the generator is in the low-ILP program phase. */
    bool inLowIlpPhase() const { return lowPhase; }

    /** Base of the synthetic code region (for I-cache modelling). */
    static constexpr Addr kCodeBase = 0x0040'0000;
    /** Base of the synthetic data region. */
    static constexpr Addr kDataBase = 0x1000'0000;

  private:
    /** Behaviour class of a static branch. */
    enum class BranchKind : std::uint8_t
    { StronglyTaken, StronglyNotTaken, Loop, Random };

    struct StaticBranch
    {
        Addr pc;
        Addr target;
        BranchKind kind;
        unsigned loopPeriod;   ///< for Loop kind
        unsigned loopCount;    ///< dynamic loop position
    };

    struct StrideStream
    {
        Addr base;
        Addr pos;
        Addr regionBytes;
        unsigned stride;
    };

    void buildBranches();
    void buildStreams();

    Addr nextDataAddr();
    void fillDeps(MicroOp &op);
    Addr wrapCode(Addr pc) const;
    void advancePhase();

    Profile prof;
    Rng rng;
    DiscreteSampler mixSampler;
    DiscreteSampler memSampler;

    std::vector<StaticBranch> branchTable;
    std::vector<StrideStream> streams;

    Addr curPc;
    Addr stackPtr;
    InstSeq count = 0;

    /** Program-phase state (PLB exploits within-program ILP swings). */
    bool lowPhase = false;
    InstSeq phaseLeft = 0;
    DiscreteSampler memSamplerLow;
};

} // namespace dcg

#endif // DCG_TRACE_GENERATOR_HH
