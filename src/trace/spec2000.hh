/**
 * @file
 * Synthetic models of the SPEC CPU2000 subset used by the paper.
 *
 * Mixes and memory behaviour approximate published SPEC2000
 * characterisations; the two high-miss outliers the paper calls out
 * (mcf, lucas) are modelled with large pointer regions so that they
 * stall frequently and become DCG's best cases, as in the paper.
 */

#ifndef DCG_TRACE_SPEC2000_HH
#define DCG_TRACE_SPEC2000_HH

#include <string>
#include <vector>

#include "trace/profile.hh"

namespace dcg {

/** The SPECint2000 subset (8 benchmarks). */
std::vector<Profile> specIntProfiles();

/** The SPECfp2000 subset (8 benchmarks). */
std::vector<Profile> specFpProfiles();

/** Both subsets, integer first. */
std::vector<Profile> allSpecProfiles();

/** Look up a profile by benchmark name; fatal() if unknown. */
Profile profileByName(const std::string &name);

/** Names of all modelled benchmarks. */
std::vector<std::string> allSpecNames();

} // namespace dcg

#endif // DCG_TRACE_SPEC2000_HH
