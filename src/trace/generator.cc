#include "trace/generator.hh"

#include <algorithm>
#include <limits>

#include "common/log.hh"

namespace dcg {

TraceGenerator::TraceGenerator(const Profile &profile, std::uint64_t seed)
    : prof(profile),
      rng(seed ^ 0xdc6'0a7e5u),
      mixSampler(std::vector<double>(prof.mix.begin(), prof.mix.end())),
      memSampler({prof.memory.fracStack, prof.memory.fracStride,
                  prof.memory.fracRandom}),
      curPc(kCodeBase),
      stackPtr(kDataBase)
{
    DCG_ASSERT(prof.numStaticBranches > 0, "profile needs static branches");
    DCG_ASSERT(prof.codeFootprintBytes >= 4096, "code footprint too small");
    buildBranches();
    buildStreams();

    // Low-ILP phases also lean harder on the pointer region.
    const MemoryBehavior &mb = prof.memory;
    const double boosted = std::min(1.0, mb.fracRandom *
                                    prof.phases.lowMissScale);
    const double rest = mb.fracStack + mb.fracStride;
    const double scale = rest > 0.0 ? (1.0 - boosted) / rest : 0.0;
    memSamplerLow = DiscreteSampler({mb.fracStack * scale,
                                     mb.fracStride * scale, boosted});
    lowPhase = true;   // first advancePhase() flips to the high phase
    advancePhase();
}

void
TraceGenerator::advancePhase()
{
    const PhaseBehavior &ph = prof.phases;
    if (ph.lowIlpFraction <= 0.0 || ph.lowIlpFraction >= 1.0) {
        lowPhase = ph.lowIlpFraction >= 1.0;
        phaseLeft = std::numeric_limits<InstSeq>::max();
        return;
    }
    // Alternate phases with geometric segment lengths; the high phase
    // mean is scaled so the long-run low-ILP instruction fraction is
    // lowIlpFraction.
    lowPhase = !lowPhase;
    const double f = ph.lowIlpFraction;
    const double mean_low = std::max(64.0, ph.meanPhaseLen);
    const double mean = lowPhase ? mean_low
                                 : mean_low * (1.0 - f) / f;
    phaseLeft = 1 + rng.geometric(std::min(0.5, 1.0 / mean), 1u << 22);
}

void
TraceGenerator::buildBranches()
{
    const BranchMixture &bm = prof.branches;
    DiscreteSampler kinds({bm.fracStronglyTaken, bm.fracStronglyNotTaken,
                           bm.fracLoop, bm.fracRandom});

    branchTable.reserve(prof.numStaticBranches);
    for (unsigned i = 0; i < prof.numStaticBranches; ++i) {
        StaticBranch br;
        // Spread branch PCs over the code footprint; keep them 4-aligned
        // and distinct per index so predictor entries are stable.
        br.pc = wrapCode(kCodeBase +
                         rng.nextBounded(prof.codeFootprintBytes / 4) * 4);
        // Mostly short backward/forward targets within the footprint.
        br.target = wrapCode(kCodeBase +
                             rng.nextBounded(prof.codeFootprintBytes / 4)
                             * 4);
        br.kind = static_cast<BranchKind>(kinds.sample(rng));
        br.loopPeriod = static_cast<unsigned>(rng.uniformInt(4, 24));
        br.loopCount = 0;
        branchTable.push_back(br);
    }
}

void
TraceGenerator::buildStreams()
{
    const MemoryBehavior &mb = prof.memory;
    streams.reserve(mb.numStrideStreams);
    for (unsigned i = 0; i < mb.numStrideStreams; ++i) {
        StrideStream s;
        s.regionBytes = mb.strideRegionBytes / mb.numStrideStreams;
        if (s.regionBytes < 64)
            s.regionBytes = 64;
        s.base = kDataBase + 0x0100'0000 +
                 static_cast<Addr>(i) * s.regionBytes;
        s.pos = 0;
        s.stride = mb.strideBytes;
        streams.push_back(s);
    }
}

Addr
TraceGenerator::wrapCode(Addr pc) const
{
    const Addr off = (pc - kCodeBase) % prof.codeFootprintBytes;
    return kCodeBase + (off & ~Addr{3});
}

Addr
TraceGenerator::nextDataAddr()
{
    const MemoryBehavior &mb = prof.memory;
    const DiscreteSampler &sampler = lowPhase ? memSamplerLow
                                              : memSampler;
    switch (sampler.sample(rng)) {
      case 0: {
        // Stack: short strided walks within a small hot region.
        stackPtr += 8;
        if (stackPtr >= kDataBase + mb.stackBytes)
            stackPtr = kDataBase;
        return stackPtr;
      }
      case 1: {
        // Streaming: advance one of the stride streams.
        auto &s = streams[rng.nextBounded(streams.size())];
        s.pos += s.stride;
        if (s.pos >= s.regionBytes)
            s.pos = 0;
        return s.base + s.pos;
      }
      default: {
        // Pointer chasing: uniform over a (possibly huge) region.
        const Addr region = mb.randomRegionBytes ? mb.randomRegionBytes
                                                 : 4096;
        return kDataBase + 0x4000'0000 + (rng.nextBounded(region) & ~Addr{7});
      }
    }
}

void
TraceGenerator::fillDeps(MicroOp &op)
{
    const DependenceBehavior &d = prof.deps;
    double ready_p = d.srcReadyProb;
    double geo_p = d.depGeoP;
    if (lowPhase) {
        ready_p *= prof.phases.lowReadyScale;
        geo_p = std::min(0.95, geo_p * prof.phases.lowGeoScale);
    }
    op.numSrcs = rng.bernoulli(d.frac2Src) ? 2 : 1;
    for (unsigned i = 0; i < op.numSrcs; ++i) {
        if (rng.bernoulli(ready_p)) {
            op.srcDist[i] = 0;
        } else {
            unsigned dist = 1 + rng.geometric(geo_p, d.depDistCap - 1);
            op.srcDist[i] = dist;
        }
    }
}

MicroOp
TraceGenerator::next()
{
    MicroOp op;
    op.cls = static_cast<OpClass>(mixSampler.sample(rng));

    if (op.cls == OpClass::Branch) {
        StaticBranch &br = branchTable[rng.nextBounded(branchTable.size())];
        op.pc = br.pc;
        op.target = br.target;
        switch (br.kind) {
          case BranchKind::StronglyTaken:
            op.taken = rng.bernoulli(0.995);
            break;
          case BranchKind::StronglyNotTaken:
            op.taken = rng.bernoulli(0.005);
            break;
          case BranchKind::Loop:
            op.taken = (++br.loopCount % br.loopPeriod) != 0;
            break;
          case BranchKind::Random:
            op.taken = rng.bernoulli(0.5);
            break;
        }
        curPc = op.taken ? br.target : wrapCode(br.pc + 4);
    } else {
        op.pc = curPc;
        curPc = wrapCode(curPc + 4);
    }

    if (op.isMem())
        op.effAddr = nextDataAddr();

    fillDeps(op);
    if (op.cls == OpClass::Store) {
        op.numSrcs = 2;  // address and data
        if (op.srcDist[1] == 0 && op.srcDist[0] == 0) {
            // keep stores occasionally dependent on recent producers
            op.srcDist[1] = rng.bernoulli(prof.deps.srcReadyProb)
                ? 0 : 1 + rng.geometric(prof.deps.depGeoP,
                                        prof.deps.depDistCap - 1);
        }
    }

    ++count;
    if (--phaseLeft == 0)
        advancePhase();
    return op;
}

} // namespace dcg
