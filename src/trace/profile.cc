#include "trace/profile.hh"

namespace dcg {

double
Profile::mixFraction(OpClass cls) const
{
    double total = 0.0;
    for (double w : mix)
        total += w;
    if (total <= 0.0)
        return 0.0;
    return mix[static_cast<unsigned>(cls)] / total;
}

} // namespace dcg
