#include "exp/job.hh"

#include <bit>

namespace dcg::exp {

namespace {

/**
 * Canonical field serialiser. Integers print in decimal, doubles as
 * their exact IEEE-754 bit pattern; every value is '|'-terminated so
 * adjacent fields can never merge ("1","23" vs "12","3").
 */
class KeyStream
{
  public:
    KeyStream &operator<<(const std::string &s)
    {
        // Length-prefix strings so embedded separators stay unambiguous.
        buf += std::to_string(s.size());
        buf += ':';
        buf += s;
        buf += '|';
        return *this;
    }

    KeyStream &operator<<(double d)
    {
        return *this << std::bit_cast<std::uint64_t>(d);
    }

    KeyStream &operator<<(bool b) { return *this << std::uint64_t{b}; }

    template <typename T>
        requires std::is_integral_v<T> || std::is_enum_v<T>
    KeyStream &operator<<(T v)
    {
        buf += std::to_string(static_cast<std::uint64_t>(v));
        buf += '|';
        return *this;
    }

    const std::string &str() const { return buf; }

  private:
    std::string buf;
};

void
serialize(KeyStream &ks, const Profile &p)
{
    ks << p.name << p.isFp;
    for (double m : p.mix)
        ks << m;
    ks << p.deps.srcReadyProb << p.deps.frac2Src << p.deps.depGeoP
       << p.deps.depDistCap;
    ks << p.branches.fracStronglyTaken << p.branches.fracStronglyNotTaken
       << p.branches.fracLoop << p.branches.fracRandom;
    ks << p.memory.fracStack << p.memory.fracStride
       << p.memory.fracRandom << p.memory.stackBytes
       << p.memory.strideRegionBytes << p.memory.randomRegionBytes
       << p.memory.numStrideStreams << p.memory.strideBytes;
    ks << p.phases.lowIlpFraction << p.phases.meanPhaseLen
       << p.phases.lowReadyScale << p.phases.lowGeoScale
       << p.phases.lowMissScale;
    ks << p.numStaticBranches << p.codeFootprintBytes;
}

void
serialize(KeyStream &ks, const CacheGeometry &g)
{
    ks << g.sizeBytes << g.assoc << g.lineBytes << g.hitLatency
       << g.mshrs;
}

void
serialize(KeyStream &ks, const SimConfig &c)
{
    const CoreConfig &core = c.core;
    ks << core.fetchWidth << core.renameWidth << core.issueWidth
       << core.commitWidth << core.windowSize << core.lsqSize
       << core.storeBufferSize;
    for (unsigned n : core.fuCount)
        ks << n;
    ks << core.dcachePorts << core.numResultBuses << core.operandBits
       << core.controlBitsPerSlot;
    ks << core.depth.fetch << core.depth.decode << core.depth.rename
       << core.depth.issue << core.depth.read << core.depth.mem
       << core.depth.wb;
    ks << core.sequentialPriority << core.delayStoresOneCycle
       << core.modelWrongPathFetch;

    const BranchPredictorConfig &b = c.bpred;
    ks << b.kind << b.l1Entries << b.l2Entries << b.historyBits
       << b.btbEntries << b.btbAssoc << b.rasEntries << b.bimodalEntries
       << b.chooserEntries;

    serialize(ks, c.mem.l1i);
    serialize(ks, c.mem.l1d);
    serialize(ks, c.mem.l2);
    ks << c.mem.memLatency;

    const Technology &t = c.tech;
    ks << t.vdd << t.frequencyGHz << t.latchBitCap << t.clockWiringCap
       << t.intAluClockCap << t.intMulDivClockCap << t.fpAluClockCap
       << t.fpMulDivClockCap << t.intAluOpCap << t.intMulDivOpCap
       << t.fpAluOpCap << t.fpMulDivOpCap << t.dcacheDecoderCap
       << t.dcacheArrayAccessCap << t.icacheAccessCap
       << t.fetchPerInstCap << t.bpredAccessCap << t.renameOpCap
       << t.iqClockCap << t.iqWakeupCap << t.iqSelectCap << t.regReadCap
       << t.regWriteCap << t.lsqOpCap << t.robOpCap
       << t.resultBusClockCap << t.resultBusDriveCap << t.l2AccessCap;

    ks << c.scheme;
    ks << c.dcg.gateExecUnits << c.dcg.gateLatches
       << c.dcg.gateDcacheDecoders << c.dcg.gateResultBus
       << c.dcg.gateIssueQueue;
    ks << c.plb.windowCycles << c.plb.ipcThresholdLow
       << c.plb.ipcThresholdMid << c.plb.fpIpcGuard
       << c.plb.downConfirmWindows << c.plb.extended;
    ks << c.ddcg.gateAllPhases << c.ddcg.bitActivityFactor
       << c.ddcg.compareOverhead;
    ks << c.cgooo.blockSize << c.cgooo.schedOverhead;
    ks << c.seed;
}

std::uint64_t
fnv1a(const std::string &s)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (unsigned char c : s) {
        h ^= c;
        h *= 0x100000001b3ULL;
    }
    return h;
}

std::uint64_t
splitmix(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

} // namespace

std::uint64_t
Job::resolvedInstructions() const
{
    return instructions ? instructions : defaultBenchInstructions();
}

std::uint64_t
Job::resolvedWarmup() const
{
    return warmup ? warmup : defaultBenchWarmup();
}

Job
makeJob(const Profile &profile, const SimConfig &config,
        std::uint64_t instructions, std::uint64_t warmup)
{
    Job j;
    j.profile = profile;
    j.config = config;
    j.instructions = instructions;
    j.warmup = warmup;
    return j;
}

std::uint64_t
deriveJobSeed(const Job &job)
{
    KeyStream ks;
    serialize(ks, job.profile);
    return splitmix(job.config.seed ^ fnv1a(ks.str()));
}

std::string
jobKey(const Job &job)
{
    KeyStream ks;
    serialize(ks, job.profile);
    serialize(ks, job.config);
    ks << job.resolvedInstructions() << job.resolvedWarmup();
    for (const std::string &name : job.captureStats)
        ks << name;
    return ks.str();
}

} // namespace dcg::exp
