#include "exp/metrics.hh"

namespace dcg::exp {

double
powerSaving(const RunResult &base, const RunResult &gated)
{
    return 1.0 - gated.avgPowerW / base.avgPowerW;
}

double
powerDelaySaving(const RunResult &base, const RunResult &gated)
{
    // Power x delay per instruction: P * (cycles/inst) — both a power
    // increase and a slowdown reduce the saving (Figure 11).
    const double base_pd = base.avgPowerW / base.ipc;
    const double gated_pd = gated.avgPowerW / gated.ipc;
    return 1.0 - gated_pd / base_pd;
}

double
componentSaving(const RunResult &base, const RunResult &gated,
                const std::function<double(const RunResult &)> &pick)
{
    // Component energies are compared per cycle so that PLB's longer
    // runtime does not masquerade as savings.
    const double base_rate = pick(base) / static_cast<double>(base.cycles);
    const double gated_rate =
        pick(gated) / static_cast<double>(gated.cycles);
    return 1.0 - gated_rate / base_rate;
}

IntFpMeans
meansBySuite(const std::vector<SchemeResults> &grid,
             const std::function<double(const SchemeResults &)> &value)
{
    double int_sum = 0.0, fp_sum = 0.0;
    unsigned int_n = 0, fp_n = 0;
    for (const auto &r : grid) {
        if (r.profile.isFp) {
            fp_sum += value(r);
            ++fp_n;
        } else {
            int_sum += value(r);
            ++int_n;
        }
    }
    return {int_n ? int_sum / int_n : 0.0, fp_n ? fp_sum / fp_n : 0.0};
}

} // namespace dcg::exp
