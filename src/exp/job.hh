/**
 * @file
 * Job: one self-contained simulation request — a workload Profile, a
 * SimConfig and run lengths. Jobs are the unit of work the experiment
 * Engine schedules, caches and (when asked) runs in parallel.
 *
 * Two properties make jobs safe to reorder and share:
 *  - deriveJobSeed() gives every (config seed, workload) pair its own
 *    deterministic RNG stream, independent of when or where the job
 *    runs, so a parallel sweep is bit-identical to a serial one. Only
 *    the *seed* derivation ignores the gating scheme — all schemes of
 *    one benchmark see the same instruction stream, as the paper's
 *    methodology requires.
 *  - jobKey() is a canonical serialisation of *everything* that can
 *    influence a RunResult — the gating scheme and its per-scheme
 *    configuration very much included (schemes produce different
 *    energies over the shared stream, so keys must never collide
 *    across schemes, cache- or store-wide); two jobs with equal keys
 *    are guaranteed to produce equal results, which is what lets the
 *    Engine's cache hand out one simulation to many figures.
 */

#ifndef DCG_EXP_JOB_HH
#define DCG_EXP_JOB_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/simulator.hh"
#include "trace/profile.hh"

namespace dcg::exp {

struct Job
{
    Profile profile;
    SimConfig config;
    std::uint64_t instructions = 0;  ///< 0 = defaultBenchInstructions()
    std::uint64_t warmup = 0;        ///< 0 = defaultBenchWarmup()

    /**
     * Registry statistics to copy into RunResult::extraStats once the
     * run finishes (e.g. "plb.mode_transitions"). Absent names record
     * 0, matching StatRegistry::lookup().
     */
    std::vector<std::string> captureStats;

    std::uint64_t resolvedInstructions() const;
    std::uint64_t resolvedWarmup() const;
};

/** Convenience builder for the common case. */
Job makeJob(const Profile &profile, const SimConfig &config,
            std::uint64_t instructions = 0, std::uint64_t warmup = 0);

/**
 * Deterministic per-job RNG seed: mixes the configured seed with the
 * workload identity (name + model parameters). Scheme- and
 * run-length-independent by design; see the file comment.
 */
std::uint64_t deriveJobSeed(const Job &job);

/**
 * Canonical cache key covering the profile, the full configuration,
 * the resolved run lengths and the capture list. Doubles are encoded
 * as exact bit patterns, so "close" configs never collide.
 */
std::string jobKey(const Job &job);

} // namespace dcg::exp

#endif // DCG_EXP_JOB_HH
