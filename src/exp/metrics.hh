/**
 * @file
 * Derived metrics shared by the figure drivers: power / power-delay /
 * component savings and per-suite means. Pure functions over
 * RunResults; no I/O.
 */

#ifndef DCG_EXP_METRICS_HH
#define DCG_EXP_METRICS_HH

#include <functional>
#include <vector>

#include "exp/grid.hh"

namespace dcg::exp {

/** Fractional total-power saving of @p gated vs @p base. */
double powerSaving(const RunResult &base, const RunResult &gated);

/**
 * Fractional power-delay (energy x time per instruction) saving:
 * both power loss and slowdown hurt, as in Figure 11.
 */
double powerDelaySaving(const RunResult &base, const RunResult &gated);

/** Fractional saving of a component energy selected by @p pick. */
double componentSaving(const RunResult &base, const RunResult &gated,
                       const std::function<double(const RunResult &)> &pick);

/** Mean over int / fp subsets of per-benchmark values. */
struct IntFpMeans
{
    double intMean;
    double fpMean;
};
IntFpMeans meansBySuite(const std::vector<SchemeResults> &grid,
                        const std::function<double(const SchemeResults &)>
                            &value);

} // namespace dcg::exp

#endif // DCG_EXP_METRICS_HH
