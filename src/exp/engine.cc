#include "exp/engine.hh"

#include <cstdlib>
#include <thread>

#include "common/log.hh"
#include "common/options.hh"

namespace dcg::exp {

namespace {

/**
 * Footprint estimate for one cache slot: fixed slot overhead (map
 * node, Entry, mutex/cv, RunResult value members) plus the variable
 * strings. Only feeds the eviction budget — it need not be exact,
 * just monotone in actual memory use.
 */
std::uint64_t
approxEntryBytes(const std::string &key, const RunResult &r)
{
    std::uint64_t n = 512;  // slot + RunResult fixed members
    n += key.size();
    n += r.benchmark.size() + r.scheme.size();
    for (const auto &[name, value] : r.extraStats) {
        (void)value;
        n += name.size() + 48;  // map node + double
    }
    return n;
}

} // namespace

Engine::Engine(unsigned jobs)
    : numWorkers(jobs ? jobs : defaultJobs())
{
}

unsigned
Engine::defaultJobs()
{
    const unsigned hw = std::thread::hardware_concurrency();
    const unsigned fallback = hw ? hw : 1;
    const char *env = std::getenv("DCG_JOBS");
    if (!env || !*env)
        return fallback;
    std::int64_t v = 0;
    if (!Options::parseInt(env, v) || v <= 0) {
        warn("ignoring invalid DCG_JOBS='", env,
             "': expected a positive integer; using ", fallback,
             " worker(s)");
        return fallback;
    }
    return static_cast<unsigned>(v);
}

std::size_t
Engine::cacheSize() const
{
    std::lock_guard<std::mutex> lk(cacheMutex);
    return cache.size();
}

void
Engine::clearCache()
{
    std::lock_guard<std::mutex> lk(cacheMutex);
    cache.clear();
    cacheBytes = 0;
}

std::uint64_t
Engine::bytes() const
{
    std::lock_guard<std::mutex> lk(cacheMutex);
    return cacheBytes;
}

std::size_t
Engine::evictTo(std::uint64_t budgetBytes)
{
    std::lock_guard<std::mutex> lk(cacheMutex);
    std::size_t evicted = 0;
    while (cacheBytes > budgetBytes) {
        auto victim = cache.end();
        for (auto it = cache.begin(); it != cache.end(); ++it) {
            if (!it->second->done.load(std::memory_order_acquire))
                continue;  // in-flight: waiters park on this slot
            if (victim == cache.end() ||
                it->second->lastUse < victim->second->lastUse)
                victim = it;
        }
        if (victim == cache.end())
            break;  // only in-flight entries left
        cacheBytes -= std::min(cacheBytes,
                               victim->second->approxBytes);
        cache.erase(victim);
        ++evicted;
    }
    return evicted;
}

std::shared_ptr<Engine::Entry>
Engine::lookupOrClaim(const std::string &key, bool &owner)
{
    std::lock_guard<std::mutex> lk(cacheMutex);
    auto it = cache.find(key);
    if (it != cache.end()) {
        owner = false;
        ++hits;
        it->second->lastUse = ++useClock;
        return it->second;
    }
    owner = true;
    ++misses;
    auto entry = std::make_shared<Entry>();
    entry->lastUse = ++useClock;
    cache.emplace(key, entry);
    return entry;
}

RunResult
Engine::execute(const Job &job) const
{
    // Every job gets its own deterministic RNG stream so results do
    // not depend on which worker runs it or in what order.
    SimConfig cfg = job.config;
    cfg.seed = deriveJobSeed(job);

    Simulator sim(job.profile, cfg);
    sim.run(job.resolvedInstructions(), job.resolvedWarmup());
    RunResult r = sim.result();
    for (const std::string &name : job.captureStats)
        r.extraStats[name] = sim.stats().lookup(name);
    return r;
}

bool
Engine::tryCached(const Job &job, RunResult &out)
{
    std::shared_ptr<Entry> entry;
    {
        std::lock_guard<std::mutex> lk(cacheMutex);
        auto it = cache.find(jobKey(job));
        if (it == cache.end())
            return false;
        entry = it->second;
        entry->lastUse = ++useClock;
    }
    std::lock_guard<std::mutex> lk(entry->m);
    if (!entry->done)
        return false;
    ++hits;
    out = entry->result;
    return true;
}

RunResult
Engine::runOne(const Job &job, RunOutcome *outcome)
{
    const std::string key = jobKey(job);
    bool owner = false;
    auto entry = lookupOrClaim(key, owner);
    if (owner) {
        RunResult r;
        if (store && store->get(key, r)) {
            ++diskHitCount;
            if (outcome)
                *outcome = RunOutcome::DiskHit;
        } else {
            r = execute(job);
            ++simCount;
            if (outcome)
                *outcome = RunOutcome::Simulated;
            if (store)
                store->put(key, r);
        }
        {
            std::lock_guard<std::mutex> lk(entry->m);
            entry->result = r;
            entry->done.store(true, std::memory_order_release);
        }
        entry->cv.notify_all();
        {
            // Count the completed slot toward the eviction budget —
            // but only if an evictTo() racing with the completion has
            // not already dropped it.
            std::lock_guard<std::mutex> lk(cacheMutex);
            auto it = cache.find(key);
            if (it != cache.end() && it->second == entry) {
                entry->approxBytes = approxEntryBytes(key, r);
                cacheBytes += entry->approxBytes;
            }
        }
        return r;
    }
    std::unique_lock<std::mutex> lk(entry->m);
    if (outcome)
        *outcome = entry->done ? RunOutcome::MemHit : RunOutcome::Shared;
    entry->cv.wait(lk, [&] { return entry->done.load(); });
    return entry->result;
}

std::vector<RunResult>
Engine::run(const std::vector<Job> &jobs)
{
    std::vector<RunResult> results(jobs.size());
    const auto nthreads = static_cast<unsigned>(
        std::min<std::size_t>(numWorkers, jobs.size()));

    if (nthreads <= 1) {
        for (std::size_t i = 0; i < jobs.size(); ++i)
            results[i] = runOne(jobs[i]);
        return results;
    }

    std::atomic<std::size_t> next{0};
    auto worker = [&] {
        for (std::size_t i; (i = next.fetch_add(1)) < jobs.size(); )
            results[i] = runOne(jobs[i]);
    };

    std::vector<std::thread> pool;
    pool.reserve(nthreads);
    for (unsigned t = 0; t < nthreads; ++t)
        pool.emplace_back(worker);
    for (std::thread &t : pool)
        t.join();
    return results;
}

Engine &
sessionEngine()
{
    static Engine engine;
    return engine;
}

} // namespace dcg::exp
