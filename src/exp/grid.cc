#include "exp/grid.hh"

#include <algorithm>

#include "common/log.hh"
#include "gating/registry.hh"

namespace dcg::exp {

namespace {

/** "base" first, then the requested schemes in order, de-duplicated. */
std::vector<std::string>
requestedSchemes(const GridRequest &req)
{
    std::vector<std::string> schemes{"base"};
    for (const std::string &s : req.schemes) {
        if (!gating::isScheme(s))
            fatal("grid request names unknown scheme '", s,
                  "' (expected ", gating::schemeNamesJoined(), ")");
        if (std::find(schemes.begin(), schemes.end(), s) ==
            schemes.end())
            schemes.push_back(s);
    }
    return schemes;
}

std::vector<Profile>
requestedProfiles(const GridRequest &req)
{
    if (req.benchmarks.empty())
        return allSpecProfiles();
    std::vector<Profile> profiles;
    profiles.reserve(req.benchmarks.size());
    for (const std::string &name : req.benchmarks)
        profiles.push_back(profileByName(name));
    return profiles;
}

} // namespace

bool
SchemeResults::has(const std::string &scheme) const
{
    for (const auto &[name, result] : results) {
        if (name == scheme)
            return true;
    }
    return false;
}

const RunResult &
SchemeResults::scheme(const std::string &name) const
{
    for (const auto &[scheme_name, result] : results) {
        if (scheme_name == name)
            return result;
    }
    fatal("SchemeResults for '", profile.name, "' holds no scheme '",
          name, "' — the grid request did not include it");
}

std::vector<Job>
gridJobs(const GridRequest &req)
{
    const auto schemes = requestedSchemes(req);
    std::vector<Job> jobs;
    for (const Profile &p : requestedProfiles(req)) {
        for (const std::string &s : schemes) {
            const SimConfig cfg = req.deepPipeline
                ? deepPipelineConfig(s) : table1Config(s);
            jobs.push_back(makeJob(p, cfg, req.instructions,
                                   req.warmup));
        }
    }
    return jobs;
}

std::vector<SchemeResults>
runGrid(Engine &engine, const GridRequest &req)
{
    const auto schemes = requestedSchemes(req);
    const auto jobs = gridJobs(req);
    const auto results = engine.run(jobs);

    std::vector<SchemeResults> grid;
    grid.reserve(jobs.size() / schemes.size());
    std::size_t i = 0;
    for (const Profile &p : requestedProfiles(req)) {
        SchemeResults r;
        r.profile = p;
        r.results.reserve(schemes.size());
        for (const std::string &s : schemes)
            r.results.emplace_back(s, results[i++]);
        grid.push_back(std::move(r));
    }
    return grid;
}

} // namespace dcg::exp
