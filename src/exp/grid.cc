#include "exp/grid.hh"

namespace dcg::exp {

namespace {

std::vector<GatingScheme>
requestedSchemes(const GridRequest &req)
{
    std::vector<GatingScheme> schemes{GatingScheme::None};
    if (req.wantDcg)
        schemes.push_back(GatingScheme::Dcg);
    if (req.wantPlbOrig)
        schemes.push_back(GatingScheme::PlbOrig);
    if (req.wantPlbExt)
        schemes.push_back(GatingScheme::PlbExt);
    return schemes;
}

std::vector<Profile>
requestedProfiles(const GridRequest &req)
{
    if (req.benchmarks.empty())
        return allSpecProfiles();
    std::vector<Profile> profiles;
    profiles.reserve(req.benchmarks.size());
    for (const std::string &name : req.benchmarks)
        profiles.push_back(profileByName(name));
    return profiles;
}

} // namespace

std::vector<Job>
gridJobs(const GridRequest &req)
{
    const auto schemes = requestedSchemes(req);
    std::vector<Job> jobs;
    for (const Profile &p : requestedProfiles(req)) {
        for (GatingScheme s : schemes) {
            const SimConfig cfg = req.deepPipeline
                ? deepPipelineConfig(s) : table1Config(s);
            jobs.push_back(makeJob(p, cfg, req.instructions,
                                   req.warmup));
        }
    }
    return jobs;
}

std::vector<SchemeResults>
runGrid(Engine &engine, const GridRequest &req)
{
    const auto schemes = requestedSchemes(req);
    const auto jobs = gridJobs(req);
    const auto results = engine.run(jobs);

    std::vector<SchemeResults> grid;
    grid.reserve(jobs.size() / schemes.size());
    std::size_t i = 0;
    for (const Profile &p : requestedProfiles(req)) {
        SchemeResults r;
        r.profile = p;
        for (GatingScheme s : schemes) {
            const RunResult &res = results[i++];
            switch (s) {
              case GatingScheme::None:    r.base = res; break;
              case GatingScheme::Dcg:     r.dcg = res; break;
              case GatingScheme::PlbOrig: r.plbOrig = res; break;
              case GatingScheme::PlbExt:  r.plbExt = res; break;
            }
        }
        grid.push_back(std::move(r));
    }
    return grid;
}

} // namespace dcg::exp
