/**
 * @file
 * Declarative (benchmark x scheme) grid requests — the shape of every
 * figure in the paper's evaluation section. A driver states *which*
 * schemes (and optionally which benchmarks) it needs; expansion into
 * Jobs and execution order belong to the Engine.
 */

#ifndef DCG_EXP_GRID_HH
#define DCG_EXP_GRID_HH

#include <string>
#include <vector>

#include "exp/engine.hh"
#include "sim/presets.hh"
#include "trace/spec2000.hh"

namespace dcg::exp {

/** Which schemes a figure needs beyond the baseline. */
struct GridRequest
{
    bool wantDcg = true;
    bool wantPlbOrig = false;
    bool wantPlbExt = false;
    bool deepPipeline = false;

    /** Benchmark subset; empty = the full SPEC2000 model set. */
    std::vector<std::string> benchmarks;

    /** Run lengths; 0 = DCG_BENCH_INSTS / DCG_BENCH_WARMUP defaults. */
    std::uint64_t instructions = 0;
    std::uint64_t warmup = 0;
};

/** One benchmark's runs across the schemes a figure needs. */
struct SchemeResults
{
    Profile profile;
    RunResult base;
    RunResult dcg;
    RunResult plbOrig;  ///< valid only if requested
    RunResult plbExt;   ///< valid only if requested
};

/** Expand a request into the flat job list the engine executes. */
std::vector<Job> gridJobs(const GridRequest &req);

/** Run the grid on @p engine and regroup results per benchmark. */
std::vector<SchemeResults> runGrid(Engine &engine,
                                   const GridRequest &req);

} // namespace dcg::exp

#endif // DCG_EXP_GRID_HH
