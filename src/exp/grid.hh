/**
 * @file
 * Declarative (benchmark x scheme) grid requests — the shape of every
 * figure in the paper's evaluation section. A driver states *which*
 * registered schemes (and optionally which benchmarks) it needs;
 * expansion into Jobs and execution order belong to the Engine.
 */

#ifndef DCG_EXP_GRID_HH
#define DCG_EXP_GRID_HH

#include <string>
#include <utility>
#include <vector>

#include "exp/engine.hh"
#include "sim/presets.hh"
#include "trace/spec2000.hh"

namespace dcg::exp {

/** Which schemes a figure needs beyond the baseline. */
struct GridRequest
{
    /**
     * Registered scheme names to run *in addition to* "base", which
     * every grid carries as its denominator. Order is preserved in
     * SchemeResults; unknown names are a fatal() at expansion.
     */
    std::vector<std::string> schemes{"dcg"};

    bool deepPipeline = false;

    /** Benchmark subset; empty = the full SPEC2000 model set. */
    std::vector<std::string> benchmarks;

    /** Run lengths; 0 = DCG_BENCH_INSTS / DCG_BENCH_WARMUP defaults. */
    std::uint64_t instructions = 0;
    std::uint64_t warmup = 0;
};

/**
 * One benchmark's runs across the schemes a figure requested, in
 * request order with "base" first. Named accessors fatal() on a
 * scheme the request did not include — a figure asking for results
 * it never requested is a bug, not a default-constructed RunResult.
 */
struct SchemeResults
{
    Profile profile;
    std::vector<std::pair<std::string, RunResult>> results;

    bool has(const std::string &scheme) const;
    const RunResult &scheme(const std::string &name) const;

    const RunResult &base() const { return scheme("base"); }
    const RunResult &dcg() const { return scheme("dcg"); }
    const RunResult &plbOrig() const { return scheme("plb-orig"); }
    const RunResult &plbExt() const { return scheme("plb-ext"); }
};

/** Expand a request into the flat job list the engine executes. */
std::vector<Job> gridJobs(const GridRequest &req);

/** Run the grid on @p engine and regroup results per benchmark. */
std::vector<SchemeResults> runGrid(Engine &engine,
                                   const GridRequest &req);

} // namespace dcg::exp

#endif // DCG_EXP_GRID_HH
