/**
 * @file
 * Experiment engine: executes Jobs on a fixed-size worker pool with a
 * keyed result cache.
 *
 * Each Simulator is self-contained (no globals, per-instance RNG), so
 * jobs run concurrently without synchronisation; determinism comes
 * from the per-job seed derivation in job.hh, which makes results
 * bit-identical regardless of worker count or execution order.
 *
 * The cache is keyed by jobKey() and lives for the Engine's lifetime:
 * a figure binary that needs the baseline grid and the DCG grid
 * simulates each (benchmark, config) pair exactly once, even when
 * several batches — or several threads within one batch — request it.
 *
 * Worker count resolution: explicit argument > DCG_JOBS environment
 * variable > std::thread::hardware_concurrency().
 */

#ifndef DCG_EXP_ENGINE_HH
#define DCG_EXP_ENGINE_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "exp/job.hh"

namespace dcg::exp {

class Engine
{
  public:
    /** @param jobs worker-thread count; 0 = defaultJobs(). */
    explicit Engine(unsigned jobs = 0);

    /**
     * Execute a batch. Results come back in request order; duplicate
     * (and previously cached) jobs are simulated only once.
     */
    std::vector<RunResult> run(const std::vector<Job> &jobs);

    /** Execute (or fetch from cache) a single job. */
    RunResult runOne(const Job &job);

    unsigned workers() const { return numWorkers; }

    /// @name Cache observability (used by tests and run summaries)
    /// @{
    std::uint64_t cacheHits() const { return hits.load(); }
    std::uint64_t cacheMisses() const { return misses.load(); }
    std::size_t cacheSize() const;
    void clearCache();
    /// @}

    /** DCG_JOBS environment override, else hardware_concurrency. */
    static unsigned defaultJobs();

  private:
    /** One cache slot; built by the first requester, awaited by rest. */
    struct Entry
    {
        std::mutex m;
        std::condition_variable cv;
        bool done = false;
        RunResult result;
    };

    std::shared_ptr<Entry> lookupOrClaim(const std::string &key,
                                         bool &owner);
    RunResult execute(const Job &job) const;

    unsigned numWorkers;
    mutable std::mutex cacheMutex;
    std::map<std::string, std::shared_ptr<Entry>> cache;
    std::atomic<std::uint64_t> hits{0};
    std::atomic<std::uint64_t> misses{0};
};

/**
 * Process-wide engine shared by every driver in one binary, so the
 * figure harness, ablations and tools all draw from one result cache.
 */
Engine &sessionEngine();

} // namespace dcg::exp

#endif // DCG_EXP_ENGINE_HH
