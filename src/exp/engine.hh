/**
 * @file
 * Experiment engine: executes Jobs on a fixed-size worker pool with a
 * keyed result cache.
 *
 * Each Simulator is self-contained (no globals, per-instance RNG), so
 * jobs run concurrently without synchronisation; determinism comes
 * from the per-job seed derivation in job.hh, which makes results
 * bit-identical regardless of worker count or execution order.
 *
 * The cache is keyed by jobKey() and lives for the Engine's lifetime:
 * a figure binary that needs the baseline grid and the DCG grid
 * simulates each (benchmark, config) pair exactly once, even when
 * several batches — or several threads within one batch — request it.
 *
 * Beneath the in-memory cache an optional ResultStoreBase can be
 * attached (see serve/store.hh for the on-disk implementation): a
 * memory miss consults the store before simulating, and freshly
 * simulated results are written back, so results survive across
 * processes and a service restart starts warm.
 *
 * Worker count resolution: explicit argument > DCG_JOBS environment
 * variable > std::thread::hardware_concurrency(). A garbage, zero or
 * negative DCG_JOBS is diagnosed with warn() and ignored rather than
 * silently coerced.
 */

#ifndef DCG_EXP_ENGINE_HH
#define DCG_EXP_ENGINE_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "exp/job.hh"

namespace dcg::exp {

/**
 * Shared lifecycle surface for every result-holding layer — the
 * Engine's in-memory cache and any persistent store implement the
 * same four operations, so a long-lived service can budget and
 * maintain both through one API:
 *
 *  - entries()/bytes(): current occupancy (bytes may be an estimate
 *    for in-memory layers);
 *  - evictTo(budget): drop least-recently-used entries until bytes()
 *    is within @p budget — an explicit call always enforces the
 *    bound, so evictTo(0) empties the layer;
 *  - compact(): garbage-collect the backing storage (stale temp
 *    files, corrupt records); a pure in-memory layer has nothing to
 *    collect and returns 0.
 *
 * All four must be safe to call concurrently with get/put traffic.
 */
class StoreLifecycle
{
  public:
    virtual ~StoreLifecycle() = default;

    /** Entries currently held. */
    virtual std::size_t entries() const = 0;

    /** Bytes currently held (estimated for in-memory layers). */
    virtual std::uint64_t bytes() const = 0;

    /**
     * Evict least-recently-used entries until bytes() <= @p budget.
     * Returns the number of entries evicted.
     */
    virtual std::size_t evictTo(std::uint64_t budgetBytes) = 0;

    /**
     * Rewrite/garbage-collect backing storage; returns the number of
     * objects removed or repaired.
     */
    virtual std::size_t compact() = 0;
};

/**
 * Slot for a persistent result layer beneath the in-memory cache.
 * Implementations must be safe to call from several worker threads
 * concurrently (the engine guarantees at most one caller per key at a
 * time, but different keys arrive in parallel). A corrupt or missing
 * record is a miss (get() returns false), never an error.
 *
 * The lifecycle defaults are no-ops so minimal stores (fakes,
 * adapters) only have to provide get/put; real stores override them.
 */
class ResultStoreBase : public StoreLifecycle
{
  public:
    /** Fetch the record for @p key into @p out; false = miss. */
    virtual bool get(const std::string &key, RunResult &out) = 0;

    /** Persist (or overwrite/repair) the record for @p key. */
    virtual void put(const std::string &key, const RunResult &r) = 0;

    std::size_t entries() const override { return 0; }
    std::uint64_t bytes() const override { return 0; }
    std::size_t evictTo(std::uint64_t) override { return 0; }
    std::size_t compact() override { return 0; }
};

/** Where runOne() found (or produced) a result; for stats and tests. */
enum class RunOutcome {
    MemHit,     ///< served from the in-memory cache
    DiskHit,    ///< served from the attached persistent store
    Simulated,  ///< executed a fresh simulation
    Shared,     ///< waited on another thread's in-flight execution
};

class Engine : public StoreLifecycle
{
  public:
    /** @param jobs worker-thread count; 0 = defaultJobs(). */
    explicit Engine(unsigned jobs = 0);

    /**
     * Execute a batch. Results come back in request order; duplicate
     * (and previously cached) jobs are simulated only once.
     */
    std::vector<RunResult> run(const std::vector<Job> &jobs);

    /** Execute (or fetch from cache/store) a single job. */
    RunResult runOne(const Job &job, RunOutcome *outcome = nullptr);

    /**
     * Non-blocking peek: copy a *completed* in-memory cache entry for
     * @p job into @p out (counting a hit). False if absent or still
     * being simulated by another thread. Lets a server answer warm
     * resubmissions without occupying a worker.
     */
    bool tryCached(const Job &job, RunResult &out);

    /**
     * Attach a persistent store beneath the in-memory cache (nullptr
     * detaches). Not thread-safe against concurrent run()s; attach
     * before submitting work.
     */
    void attachStore(std::shared_ptr<ResultStoreBase> s)
    {
        store = std::move(s);
    }

    unsigned workers() const { return numWorkers; }

    /// @name Cache observability (used by tests and run summaries)
    /// @{
    std::uint64_t cacheHits() const { return hits.load(); }
    std::uint64_t cacheMisses() const { return misses.load(); }
    /** Memory misses answered by the persistent store. */
    std::uint64_t diskHits() const { return diskHitCount.load(); }
    /** Simulations actually executed (= misses - disk hits). */
    std::uint64_t simulations() const { return simCount.load(); }
    std::size_t cacheSize() const;
    void clearCache();
    /// @}

    /// @name StoreLifecycle over the in-memory cache
    /// @{
    std::size_t entries() const override { return cacheSize(); }
    /** Estimated cache footprint (keys + results + slot overhead). */
    std::uint64_t bytes() const override;
    /**
     * Drop completed least-recently-used entries until the estimate
     * is within @p budget; in-flight entries are never evicted (their
     * waiters hold the slot alive regardless).
     */
    std::size_t evictTo(std::uint64_t budgetBytes) override;
    /** Nothing to collect for a pure in-memory cache; returns 0. */
    std::size_t compact() override { return 0; }
    /// @}

    /**
     * DCG_JOBS environment override, else hardware_concurrency.
     * Invalid DCG_JOBS values (non-numeric, zero, negative) warn and
     * fall back instead of being silently coerced.
     */
    static unsigned defaultJobs();

  private:
    /** One cache slot; built by the first requester, awaited by rest. */
    struct Entry
    {
        std::mutex m;
        std::condition_variable cv;
        /** Atomic so evictTo() can test completion without taking
         *  every slot's mutex under cacheMutex; still written under
         *  m before the cv notify, as the waiters require. */
        std::atomic<bool> done{false};
        RunResult result;
        std::uint64_t lastUse = 0;     ///< guarded by cacheMutex
        std::uint64_t approxBytes = 0; ///< guarded by cacheMutex
    };

    std::shared_ptr<Entry> lookupOrClaim(const std::string &key,
                                         bool &owner);
    RunResult execute(const Job &job) const;

    unsigned numWorkers;
    mutable std::mutex cacheMutex;
    std::map<std::string, std::shared_ptr<Entry>> cache;
    std::uint64_t useClock = 0;    ///< guarded by cacheMutex
    std::uint64_t cacheBytes = 0;  ///< guarded by cacheMutex
    std::shared_ptr<ResultStoreBase> store;
    std::atomic<std::uint64_t> hits{0};
    std::atomic<std::uint64_t> misses{0};
    std::atomic<std::uint64_t> diskHitCount{0};
    std::atomic<std::uint64_t> simCount{0};
};

/**
 * Process-wide engine shared by every driver in one binary, so the
 * figure harness, ablations and tools all draw from one result cache.
 */
Engine &sessionEngine();

} // namespace dcg::exp

#endif // DCG_EXP_ENGINE_HH
