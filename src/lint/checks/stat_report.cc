/**
 * @file
 * stat-report: every literal-named stat registration must appear in
 * the report catalog (statRegistryCatalog in src/sim/report.cc), so a
 * counter cannot be recorded but silently dropped from the report.
 */

#include <cctype>

#include "lint/context.hh"
#include "lint/lexer.hh"
#include "lint/registry.hh"

namespace dcg::lint {

namespace {

constexpr const char *kAnchor = "src/sim/report.cc";

struct StatRegistration
{
    std::string name;
    std::string file;  ///< relative to root
    int line;
};

/**
 * Find stats.counter("name", ...) style registrations in @p text
 * (comments stripped, strings kept). Dynamic names (no literal) are
 * skipped — they cannot be checked lexically.
 */
void
collectStatRegistrations(const std::string &text, const std::string &file,
                         std::vector<StatRegistration> &out)
{
    static const char *kMethods[] = {"counter", "scalar", "average",
                                     "distribution", "formula"};
    for (const char *method : kMethods) {
        const std::string word = method;
        std::size_t pos = 0;
        while ((pos = text.find(word, pos)) != std::string::npos) {
            const std::size_t start = pos;
            pos += word.size();
            if (start == 0 || text[start - 1] != '.')
                continue;
            std::size_t j = start + word.size();
            while (j < text.size() &&
                   std::isspace(static_cast<unsigned char>(text[j])))
                ++j;
            if (j >= text.size() || text[j] != '(')
                continue;
            ++j;
            while (j < text.size() &&
                   std::isspace(static_cast<unsigned char>(text[j])))
                ++j;
            if (j >= text.size() || text[j] != '"')
                continue;  // dynamic name
            const std::size_t name_start = j + 1;
            const std::size_t name_end = text.find('"', name_start);
            if (name_end == std::string::npos)
                continue;
            out.push_back({text.substr(name_start, name_end - name_start),
                           file, lineOfOffset(text, start)});
        }
    }
}

std::vector<Diagnostic>
checkStatsReported(const Context &ctx)
{
    std::vector<Diagnostic> out;
    const std::string &catalog = ctx.find(kAnchor)->code;

    std::vector<StatRegistration> regs;
    for (const FileRecord *rec : ctx.filesUnder("src")) {
        // The lint subsystem itself registers nothing; skip it so this
        // file's own pattern strings cannot confuse the scan.
        if (rec->rel.rfind("src/lint/", 0) == 0)
            continue;
        collectStatRegistrations(rec->code, rec->rel, regs);
    }

    for (const StatRegistration &reg : regs) {
        if (catalog.find('"' + reg.name + '"') == std::string::npos) {
            out.push_back({reg.file, reg.line, "stat-report",
                           "stat '" + reg.name +
                               "' is registered but missing from the "
                               "catalog in src/sim/report.cc "
                               "(statRegistryCatalog)"});
        }
    }
    return out;
}

const bool registered = registerCheck(
    {"stat-report",
     "every literal-named stat registration appears in the report "
     "catalog in src/sim/report.cc",
     {kAnchor}},
    &checkStatsReported);

} // namespace

void anchorStatReportCheckRegistration() {}

} // namespace dcg::lint
