/**
 * @file
 * net-io: raw socket calls outside src/serve/netio.hh must go through
 * the net::*Retry wrappers — EINTR/partial-write handling lives in
 * exactly one place.
 */

#include <cctype>
#include <set>

#include "lint/context.hh"
#include "lint/lexer.hh"
#include "lint/registry.hh"

namespace dcg::lint {

namespace {

constexpr const char *kAnchor = "src/serve/netio.hh";

/**
 * Raw socket calls that must go through the net::*Retry wrappers in
 * src/serve/netio.hh (the wrapper name is the call plus "Retry").
 */
const std::set<std::string> &
netIoNames()
{
    static const std::set<std::string> names = {
        "accept", "connect", "poll", "read",
        "recv",   "send",    "write",
    };
    return names;
}

/**
 * Scan stripped text for raw calls to the wrapped socket functions.
 * Unlike syscall-return this flags *every* raw call, consumed or not.
 * Member calls (`conn.read(...)`), non-std qualified names and
 * declarations (`ssize_t read(...)`, preceded by a type name) are not
 * the libc functions and pass.
 */
void
scanNetIo(const std::string &text, const std::string &file,
          std::vector<Diagnostic> &out)
{
    for (std::size_t i = 0; i < text.size(); ++i) {
        if (!isIdentChar(text[i]) ||
            (i > 0 && isIdentChar(text[i - 1])))
            continue;
        std::size_t end = i;
        while (end < text.size() && isIdentChar(text[end]))
            ++end;
        const std::string word = text.substr(i, end - i);
        if (!netIoNames().count(word)) {
            i = end;
            continue;
        }

        // Qualified call? Accept std:: (same C function), skip every
        // other namespace — net::… wrappers have distinct names, but a
        // class-qualified Conn::read is not the syscall.
        std::string qualifier;
        if (i >= 2 && text[i - 1] == ':' && text[i - 2] == ':') {
            std::size_t q = i - 2;
            while (q > 0 && isIdentChar(text[q - 1]))
                --q;
            qualifier = text.substr(q, i - q);
        }
        if (!qualifier.empty() && qualifier != "std::") {
            i = end;
            continue;
        }
        if (i > 0 && (text[i - 1] == '.' ||
                      (text[i - 1] == '>' && i >= 2 &&
                       text[i - 2] == '-'))) {
            i = end;  // member call, not the libc function
            continue;
        }

        std::size_t j = end;
        while (j < text.size() &&
               std::isspace(static_cast<unsigned char>(text[j])))
            ++j;
        if (j >= text.size() || text[j] != '(') {
            i = end;
            continue;
        }

        // An unqualified name directly preceded by another identifier
        // is a declarator ("ssize_t read(int, ...)"), except after a
        // statement keyword, where it is a genuine call.
        if (qualifier.empty()) {
            std::size_t b = i;
            while (b > 0 && std::isspace(
                       static_cast<unsigned char>(text[b - 1])))
                --b;
            if (b > 0 && isIdentChar(text[b - 1])) {
                std::size_t w0 = b;
                while (w0 > 0 && isIdentChar(text[w0 - 1]))
                    --w0;
                const std::string prev = text.substr(w0, b - w0);
                static const std::set<std::string> kStmtKeywords = {
                    "return", "else", "do", "case"};
                if (!kStmtKeywords.count(prev)) {
                    i = end;
                    continue;
                }
            }
        }

        out.push_back({file, lineOfOffset(text, i), "net-io",
                       "raw " + word + "() call; route it through "
                           "net::" + word +
                           "Retry() from serve/netio.hh"});
        i = end;
    }
}

std::vector<Diagnostic>
checkNetIo(const Context &ctx)
{
    std::vector<Diagnostic> out;
    for (const char *sub : {"src/serve", "tools"}) {
        for (const FileRecord *rec : ctx.filesUnder(sub)) {
            if (rec->rel == kAnchor)
                continue;  // the wrappers themselves call raw functions
            scanNetIo(rec->bare, rec->rel, out);
        }
    }
    return out;
}

const bool registered = registerCheck(
    {"net-io",
     "raw socket calls are routed through the net::*Retry wrappers "
     "in src/serve/netio.hh",
     {kAnchor}},
    &checkNetIo);

} // namespace

void anchorNetIoCheckRegistration() {}

} // namespace dcg::lint
