/**
 * @file
 * tick-path-stats: the per-cycle hot path must never touch the named
 * stat registry.
 *
 * The simulator's throughput rests on the flat-counter design: the
 * tick loop accumulates into Core's contiguous uint64 block (and the
 * power model's plain doubles), and only foldStats() writes the named
 * Statistic objects at report time. A registry accessor call —
 * counter(), lookup() and friends — inside a per-cycle function
 * reintroduces a map lookup (or at best a pointer chase through a
 * Statistic) per simulated cycle, exactly the overhead the flat block
 * removed. Registrations belong in constructors; reads belong in the
 * report path.
 *
 * Lexical, like every dcglint check: a function whose name is in the
 * per-cycle set (Core::tick, the gating controllers' gates(), the
 * power model's chargeIdle(), ...) may not make a member call to a
 * StatRegistry accessor anywhere in its body. Constructors and the
 * report/fold path are outside the set and remain free to use the
 * registry.
 */

#include <cctype>
#include <map>
#include <set>
#include <string>

#include "lint/context.hh"
#include "lint/lexer.hh"
#include "lint/registry.hh"

namespace dcg::lint {

namespace {

constexpr const char *kAnchor = "src/pipeline/core.cc";

/** Directories whose code runs once per simulated cycle. */
const char *const kScopes[] = {"src/pipeline", "src/gating", "src/power",
                               "src/sim"};

/**
 * Function names that execute per cycle (or per instruction). Matched
 * against FunctionDef::name, so both out-of-line `Core::tick` and
 * inline class-body `tick` definitions are covered; constructors carry
 * the class name and never match.
 */
const std::set<std::string> &
hotFunctions()
{
    static const std::set<std::string> names = {
        "tick",         "gates",       "beginCycle", "applyMode",
        "desiredMode",  "skipIdle",    "chargeIdle", "commit",
        "drainStores",  "fetch",       "fetchWrongPath",
        "idleSkipAvailable", "issue",  "issueOne",   "rename",
        "scheduleReady",
    };
    return names;
}

/** StatRegistry member accessors (registration and lookup alike). */
const std::set<std::string> &
registryAccessors()
{
    static const std::set<std::string> names = {
        "counter", "scalar", "average", "distribution", "formula",
        "lookup",
    };
    return names;
}

/**
 * Scan @p body (a slice of FileRecord::bare at @p bodyBegin) for
 * member calls `.accessor(` / `->accessor(` to any registry accessor
 * and report each at its real line.
 */
void
scanHotBody(const FileRecord &rec, const FunctionDef &fn,
            std::vector<Diagnostic> &out)
{
    const std::string &text = rec.bare;
    for (std::size_t i = fn.bodyBegin; i < fn.bodyEnd; ++i) {
        if (!isIdentChar(text[i]) || (i > 0 && isIdentChar(text[i - 1])))
            continue;
        std::size_t end = i;
        while (end < fn.bodyEnd && isIdentChar(text[end]))
            ++end;
        const std::string word = text.substr(i, end - i);
        if (!registryAccessors().count(word)) {
            i = end;
            continue;
        }
        // Member call only: `x.counter(` or `x->counter(`. A free
        // function or declaration of the same name is not a registry
        // access.
        const bool member =
            (i > 0 && text[i - 1] == '.') ||
            (i >= 2 && text[i - 2] == '-' && text[i - 1] == '>');
        std::size_t j = end;
        while (j < fn.bodyEnd &&
               std::isspace(static_cast<unsigned char>(text[j])))
            ++j;
        if (member && j < fn.bodyEnd && text[j] == '(') {
            const std::string where = fn.qualifier.empty()
                ? fn.name : fn.qualifier + "::" + fn.name;
            out.push_back(
                {rec.rel, lineOfOffset(text, i), "tick-path-stats",
                 "per-cycle function '" + where + "' calls stat "
                 "registry accessor '" + word + "()'; accumulate in "
                 "the flat counter block and fold at report time "
                 "(Core::foldStats)"});
        }
        i = end;
    }
}

std::vector<Diagnostic>
checkTickPathStats(const Context &ctx)
{
    std::vector<Diagnostic> out;
    for (const char *scope : kScopes)
        for (const FileRecord *rec : ctx.filesUnder(scope))
            for (const FunctionDef &fn : rec->functions)
                if (hotFunctions().count(fn.name))
                    scanHotBody(*rec, fn, out);
    return out;
}

const bool registered = registerCheck(
    {"tick-path-stats",
     "per-cycle functions in src/{pipeline,gating,power,sim} never "
     "call stat registry accessors; stats accumulate flat and fold at "
     "report time",
     {kAnchor}},
    &checkTickPathStats);

} // namespace

void anchorTickPathStatsCheckRegistration() {}

} // namespace dcg::lint
