/**
 * @file
 * thread-ownership: static race checking for the serve layer, driven
 * by the DCG_OWNER_THREAD / DCG_ANY_THREAD / DCG_GUARDED_BY /
 * DCG_REQUIRES annotations from src/common/thread_annotations.hh.
 *
 * The serve layer's concurrency contract is ownership-based: a
 * PeerPool (and the poll loop around it) belongs to one event-loop
 * thread; other threads interact only through the designated
 * injection points. That contract used to live in comments. The
 * annotations make it machine-readable and this check enforces three
 * rules over the lexical function index:
 *
 *  (a) ANY -> OWNER: a method annotated DCG_ANY_THREAD must not call
 *      a method that is owner-thread-only. A call name counts as
 *      owner-thread-only when it is annotated DCG_OWNER_THREAD on
 *      some class and DCG_ANY_THREAD on none (names that are OWNER
 *      on one class and ANY on another cannot be attributed
 *      lexically and are skipped). Constructors and destructors are
 *      excluded — they run before/after the object is shared.
 *      Deliberate ownership handoff (spawning the owner thread)
 *      carries a dcglint:allow(thread-ownership) marker.
 *
 *  (b) GUARDED_BY: a method body that mentions a DCG_GUARDED_BY(mu)
 *      member of its own class must also mention mu (taking the
 *      lock), unless the method is annotated DCG_REQUIRES(mu) —
 *      the *Locked caller-holds-lock convention. Constructors and
 *      destructors are excluded (no concurrent access yet/anymore).
 *
 *  (c) Coverage: in a class that carries any thread annotation,
 *      every public method declaration must state its contract
 *      (OWNER, ANY or REQUIRES). Unannotated classes are exempt, so
 *      adoption stays incremental.
 */

#include <algorithm>
#include <cctype>
#include <map>
#include <set>

#include "lint/context.hh"
#include "lint/lexer.hh"
#include "lint/registry.hh"

namespace dcg::lint {

namespace {

constexpr const char *kAnchor = "src/common/thread_annotations.hh";
constexpr const char *kCheck = "thread-ownership";

const char *const kScopes[] = {"src/serve", "tools"};

/** One class definition with its thread annotations. */
struct ClassAnn
{
    std::string name;
    const FileRecord *file = nullptr;
    std::size_t begin = 0;  ///< offset of '{' in file->bare
    std::size_t end = 0;    ///< one past the matching '}'
    bool isStruct = false;  ///< default access
    std::set<std::string> owner;  ///< DCG_OWNER_THREAD methods
    std::set<std::string> any;    ///< DCG_ANY_THREAD methods
    std::map<std::string, std::string> guarded;  ///< member -> mutex
    std::map<std::string, std::string> needs;    ///< method -> mutex

    bool annotated() const
    {
        return !owner.empty() || !any.empty() || !guarded.empty() ||
               !needs.empty();
    }
};

bool
isQualifierWord(const std::string &w)
{
    return w == "const" || w == "noexcept" || w == "override" ||
           w == "final" || w == "mutable";
}

std::size_t
matchForward(const std::string &t, std::size_t open, char lhs, char rhs)
{
    int depth = 0;
    for (std::size_t i = open; i < t.size(); ++i) {
        if (t[i] == lhs)
            ++depth;
        else if (t[i] == rhs && --depth == 0)
            return i + 1;
    }
    return t.size();
}

/**
 * The method name a trailing annotation at @p pos belongs to: walk
 * left over qualifier tokens and the parameter list to the declarator
 * identifier. Empty when the shape is not `name(params) quals ANNOT`.
 */
std::string
methodNameBefore(const std::string &t, std::size_t pos)
{
    std::size_t i = pos;
    while (true) {
        while (i > 0 &&
               std::isspace(static_cast<unsigned char>(t[i - 1])))
            --i;
        if (i == 0)
            return {};
        if (isIdentChar(t[i - 1])) {
            std::size_t b = i;
            while (b > 0 && isIdentChar(t[b - 1]))
                --b;
            const std::string w = t.substr(b, i - b);
            if (!isQualifierWord(w))
                return {};
            i = b;
            continue;
        }
        if (t[i - 1] == ')') {
            // Match backwards to the opening paren.
            int depth = 0;
            std::size_t p = i;
            while (p > 0) {
                --p;
                if (t[p] == ')')
                    ++depth;
                else if (t[p] == '(' && --depth == 0)
                    break;
            }
            if (depth != 0)
                return {};
            std::size_t b = p;
            while (b > 0 &&
                   std::isspace(static_cast<unsigned char>(t[b - 1])))
                --b;
            std::size_t nb = b;
            while (nb > 0 && isIdentChar(t[nb - 1]))
                --nb;
            const std::string w = t.substr(nb, b - nb);
            if (w == "noexcept") {  // noexcept(...) — keep walking
                i = nb;
                continue;
            }
            return w;
        }
        return {};
    }
}

/** The argument of a macro invocation starting at @p macroEnd. */
std::string
macroArg(const std::string &t, std::size_t macroEnd)
{
    std::size_t j = macroEnd;
    while (j < t.size() &&
           std::isspace(static_cast<unsigned char>(t[j])))
        ++j;
    if (j >= t.size() || t[j] != '(')
        return {};
    const std::size_t close = matchForward(t, j, '(', ')');
    return trim(t.substr(j + 1, close - j - 2));
}

/** Whole-word occurrences of @p word within [begin, end) of @p t. */
std::vector<std::size_t>
wordOccurrences(const std::string &t, const std::string &word,
                std::size_t begin, std::size_t end)
{
    std::vector<std::size_t> out;
    std::size_t pos = begin;
    while ((pos = t.find(word, pos)) != std::string::npos &&
           pos < end) {
        const std::size_t after = pos + word.size();
        if ((pos == 0 || !isIdentChar(t[pos - 1])) &&
            (after >= t.size() || !isIdentChar(t[after])))
            out.push_back(pos);
        pos = after;
    }
    return out;
}

/** Find class/struct definitions in @p rec and parse annotations. */
void
collectClasses(const FileRecord *rec, std::vector<ClassAnn> &out)
{
    const std::string &t = rec->bare;
    for (const char *kw : {"class", "struct"}) {
        for (std::size_t pos :
             wordOccurrences(t, kw, 0, t.size())) {
            // `enum class` is not a class.
            std::size_t b = pos;
            while (b > 0 &&
                   std::isspace(static_cast<unsigned char>(t[b - 1])))
                --b;
            if (b >= 4 && t.compare(b - 4, 4, "enum") == 0)
                continue;

            std::size_t j = pos + std::string(kw).size();
            while (j < t.size() &&
                   std::isspace(static_cast<unsigned char>(t[j])))
                ++j;
            std::size_t ne = j;
            while (ne < t.size() && isIdentChar(t[ne]))
                ++ne;
            if (ne == j)
                continue;  // anonymous / template parameter
            const std::string name = t.substr(j, ne - j);

            // Scan to the body brace; ';' first = forward
            // declaration, ',' or '>' = template parameter.
            std::size_t k = ne;
            while (k < t.size() && t[k] != '{' && t[k] != ';' &&
                   t[k] != ',' && t[k] != '>' && t[k] != '(')
                ++k;
            if (k >= t.size() || t[k] != '{')
                continue;

            ClassAnn c;
            c.name = name;
            c.file = rec;
            c.begin = k;
            c.end = matchForward(t, k, '{', '}');
            c.isStruct = std::string(kw) == "struct";

            for (std::size_t m : wordOccurrences(
                     t, "DCG_OWNER_THREAD", c.begin, c.end)) {
                const std::string fn = methodNameBefore(t, m);
                if (!fn.empty())
                    c.owner.insert(fn);
            }
            for (std::size_t m : wordOccurrences(
                     t, "DCG_ANY_THREAD", c.begin, c.end)) {
                const std::string fn = methodNameBefore(t, m);
                if (!fn.empty())
                    c.any.insert(fn);
            }
            for (std::size_t m : wordOccurrences(
                     t, "DCG_REQUIRES", c.begin, c.end)) {
                const std::string fn = methodNameBefore(t, m);
                const std::string mu =
                    macroArg(t, m + std::string("DCG_REQUIRES").size());
                if (!fn.empty() && !mu.empty())
                    c.needs.emplace(fn, mu);
            }
            for (std::size_t m : wordOccurrences(
                     t, "DCG_GUARDED_BY", c.begin, c.end)) {
                const std::string mu = macroArg(
                    t, m + std::string("DCG_GUARDED_BY").size());
                std::size_t e = m;
                while (e > 0 && std::isspace(
                           static_cast<unsigned char>(t[e - 1])))
                    --e;
                std::size_t mb = e;
                while (mb > 0 && isIdentChar(t[mb - 1]))
                    --mb;
                const std::string member = t.substr(mb, e - mb);
                if (!member.empty() && !mu.empty())
                    c.guarded.emplace(member, mu);
            }
            out.push_back(std::move(c));
        }
    }
}

/** Line of the first whole-word use of @p word in @p f's body. */
int
wordLineInBody(const FileRecord *rec, const FunctionDef &f,
               const std::string &word)
{
    const std::vector<std::size_t> occ =
        wordOccurrences(rec->bare, word, f.bodyBegin, f.bodyEnd);
    return occ.empty() ? f.line : lineOfOffset(rec->bare, occ.front());
}

/** The annotated class @p f belongs to, or nullptr: out-of-line
 *  definitions match by qualifier, in-class definitions by the
 *  innermost class body span containing them. */
const ClassAnn *
classOf(const std::vector<ClassAnn> &classes, const FileRecord *rec,
        const FunctionDef &f)
{
    const ClassAnn *best = nullptr;
    for (const ClassAnn &c : classes) {
        if (!f.qualifier.empty()) {
            if (c.name == f.qualifier)
                return &c;
            continue;
        }
        if (c.file == rec && c.begin < f.bodyBegin &&
            f.bodyEnd <= c.end &&
            (!best || c.begin > best->begin))
            best = &c;
    }
    return best;
}

/** Rule (c): public declarations in annotated classes must carry a
 *  thread annotation. */
void
checkCoverage(const ClassAnn &c, std::vector<Diagnostic> &out)
{
    const std::string &t = c.file->bare;
    bool isPublic = c.isStruct;
    int depth = 1;
    std::size_t i = c.begin + 1;
    while (i < c.end) {
        const char ch = t[i];
        if (ch == '{') {
            ++depth;
            ++i;
            continue;
        }
        if (ch == '}') {
            --depth;
            ++i;
            continue;
        }
        if (depth != 1 || !isIdentChar(ch) ||
            (i > 0 && isIdentChar(t[i - 1]))) {
            ++i;
            continue;
        }
        std::size_t e = i;
        while (e < c.end && isIdentChar(t[e]))
            ++e;
        const std::string word = t.substr(i, e - i);

        // Access labels.
        if (word == "public" || word == "private" ||
            word == "protected") {
            std::size_t j = e;
            while (j < c.end &&
                   std::isspace(static_cast<unsigned char>(t[j])))
                ++j;
            if (j < c.end && t[j] == ':' &&
                (j + 1 >= c.end || t[j + 1] != ':')) {
                isPublic = word == "public";
                i = j + 1;
                continue;
            }
        }

        // Candidate method name: identifier directly followed by '('
        // that is not a macro, keyword, or template/param context.
        std::size_t j = e;
        while (j < c.end &&
               std::isspace(static_cast<unsigned char>(t[j])))
            ++j;
        if (j >= c.end || t[j] != '(' || !isPublic ||
            word.rfind("DCG_", 0) == 0 || word == c.name ||
            word == "operator" || word == "decltype" ||
            word == "sizeof" || word == "alignof" ||
            word == "static_assert" || word == "explicit") {
            i = e;
            continue;
        }
        {
            std::size_t b = i;
            while (b > c.begin &&
                   std::isspace(static_cast<unsigned char>(t[b - 1])))
                --b;
            const char prev = b > c.begin ? t[b - 1] : '{';
            if (prev == '<' || prev == '(' || prev == ',' ||
                prev == '~' || prev == ':') {
                // template argument, parameter, destructor, or
                // qualified name — not a plain declaration name
                i = e;
                continue;
            }
        }
        // Declaration prefix: bail on static/friend/using/typedef/
        // template declarations.
        {
            std::size_t p = i;
            while (p > c.begin && t[p - 1] != ';' && t[p - 1] != '{' &&
                   t[p - 1] != '}')
                --p;
            const std::string prefix = t.substr(p, i - p);
            bool skip = false;
            for (const char *w :
                 {"static", "friend", "using", "typedef", "template"})
                if (containsWord(prefix, w))
                    skip = true;
            // An access label inside the prefix resets it: only look
            // after the last ':'.
            if (skip) {
                i = e;
                continue;
            }
        }

        // Walk past the parameter list and trailing qualifiers to the
        // declaration end; record any DCG annotation seen.
        std::size_t k = matchForward(t, j, '(', ')');
        bool annotated = false;
        bool deleted = false;
        while (k < c.end) {
            if (std::isspace(static_cast<unsigned char>(t[k])) ||
                t[k] == '&') {
                ++k;
                continue;
            }
            if (t[k] == ';' || t[k] == '{' || t[k] == ':')
                break;
            if (t[k] == '=') {
                std::size_t v = k + 1;
                while (v < c.end && std::isspace(
                           static_cast<unsigned char>(t[v])))
                    ++v;
                std::size_t ve = v;
                while (ve < c.end && isIdentChar(t[ve]))
                    ++ve;
                const std::string val = t.substr(v, ve - v);
                if (val == "delete" || val == "default")
                    deleted = true;
                k = ve;
                continue;
            }
            if (isIdentChar(t[k])) {
                std::size_t w = k;
                while (w < c.end && isIdentChar(t[w]))
                    ++w;
                const std::string q = t.substr(k, w - k);
                if (q == "DCG_OWNER_THREAD" || q == "DCG_ANY_THREAD" ||
                    q == "DCG_REQUIRES") {
                    annotated = true;
                    k = w;
                    if (q == "DCG_REQUIRES") {
                        std::size_t p = k;
                        while (p < c.end && std::isspace(
                                   static_cast<unsigned char>(t[p])))
                            ++p;
                        if (p < c.end && t[p] == '(')
                            k = matchForward(t, p, '(', ')');
                    }
                    continue;
                }
                if (isQualifierWord(q)) {
                    k = w;
                    if (q == "noexcept") {
                        std::size_t p = k;
                        while (p < c.end && std::isspace(
                                   static_cast<unsigned char>(t[p])))
                            ++p;
                        if (p < c.end && t[p] == '(')
                            k = matchForward(t, p, '(', ')');
                    }
                    continue;
                }
                break;  // trailing return type or similar — give up
            }
            break;
        }
        if (!annotated && !deleted) {
            out.push_back(
                {c.file->rel, lineOfOffset(t, i), kCheck,
                 "public method '" + c.name + "::" + word +
                     "' in an annotated class lacks a thread "
                     "annotation (DCG_OWNER_THREAD / DCG_ANY_THREAD "
                     "/ DCG_REQUIRES)"});
        }
        i = e;
    }
}

std::vector<Diagnostic>
checkThreadOwnership(const Context &ctx)
{
    std::vector<Diagnostic> out;

    std::vector<const FileRecord *> scope;
    for (const char *sub : kScopes)
        for (const FileRecord *rec : ctx.filesUnder(sub))
            scope.push_back(rec);

    std::vector<ClassAnn> classes;
    for (const FileRecord *rec : scope)
        collectClasses(rec, classes);

    // Owner-thread-only call names: OWNER somewhere, ANY nowhere.
    std::set<std::string> ownerOnly, anySomewhere;
    for (const ClassAnn &c : classes) {
        ownerOnly.insert(c.owner.begin(), c.owner.end());
        anySomewhere.insert(c.any.begin(), c.any.end());
    }
    for (const std::string &n : anySomewhere)
        ownerOnly.erase(n);

    for (const FileRecord *rec : scope) {
        for (const FunctionDef &f : rec->functions) {
            const ClassAnn *cls = classOf(classes, rec, f);
            if (!cls || !cls->annotated())
                continue;
            const bool isCtorDtor =
                f.name == cls->name || f.name.front() == '~';
            if (isCtorDtor)
                continue;

            // Rule (a): ANY -> OWNER call.
            if (cls->any.count(f.name)) {
                std::set<std::string> called(
                    f.unqualifiedCalls.begin(),
                    f.unqualifiedCalls.end());
                called.insert(f.memberCalls.begin(),
                              f.memberCalls.end());
                for (const std::string &callee : called) {
                    if (!ownerOnly.count(callee) ||
                        callee == f.name)
                        continue;
                    out.push_back(
                        {rec->rel, wordLineInBody(rec, f, callee),
                         kCheck,
                         "any-thread method '" + cls->name +
                             "::" + f.name +
                             "' calls owner-thread-only method '" +
                             callee + "'"});
                }
            }

            // Rule (b): guarded member used without the mutex.
            for (const auto &[member, mu] : cls->guarded) {
                if (wordOccurrences(rec->bare, member, f.bodyBegin,
                                    f.bodyEnd)
                        .empty())
                    continue;
                const auto need = cls->needs.find(f.name);
                if (need != cls->needs.end() && need->second == mu)
                    continue;  // *Locked: caller holds it
                if (!wordOccurrences(rec->bare, mu, f.bodyBegin,
                                     f.bodyEnd)
                         .empty())
                    continue;  // the lock (or the mutex) is visible
                out.push_back(
                    {rec->rel, wordLineInBody(rec, f, member), kCheck,
                     "method '" + cls->name + "::" + f.name +
                         "' uses member '" + member +
                         "' (DCG_GUARDED_BY(" + mu +
                         ")) without taking " + mu +
                         " or declaring DCG_REQUIRES(" + mu + ")"});
            }
        }
    }

    // Rule (c): coverage of public declarations.
    for (const ClassAnn &c : classes)
        if (c.annotated())
            checkCoverage(c, out);

    return out;
}

const bool registered = registerCheck(
    {kCheck,
     "serve-layer thread-ownership contract: no any-thread calls "
     "into owner-thread-only methods, no guarded-member access "
     "without the mutex, full annotation coverage of annotated "
     "classes",
     {kAnchor}},
    &checkThreadOwnership);

} // namespace

void anchorThreadOwnershipCheckRegistration() {}

} // namespace dcg::lint
