/**
 * @file
 * activity-counter: every CycleActivity field must be produced by the
 * pipeline and consumed by the energy-accounting path.
 *
 * The DCG power claim is an integral over per-cycle activity counts;
 * a counter the pipeline never writes (or the power/gating layers
 * never read) is a silent hole in that integral.
 */

#include <cctype>
#include <map>
#include <set>

#include "lint/context.hh"
#include "lint/lexer.hh"
#include "lint/registry.hh"

namespace dcg::lint {

namespace {

constexpr const char *kAnchor = "src/pipeline/activity.hh";

/**
 * Parse the field names of `struct CycleActivity` from the stripped
 * text of activity.hh. Returns (name -> declaration line). Tracks
 * brace depth so member-function bodies are not mistaken for fields.
 */
std::map<std::string, int>
parseCycleActivityFields(const std::string &stripped)
{
    std::map<std::string, int> fields;
    const std::vector<std::string> lines = toLines(stripped);

    std::size_t i = 0;
    for (; i < lines.size(); ++i)
        if (lines[i].find("struct CycleActivity") != std::string::npos)
            break;
    if (i == lines.size())
        return fields;

    int depth = 0;
    bool in_body = false;
    for (; i < lines.size(); ++i) {
        const std::string &raw = lines[i];
        const int depth_at_start = depth;
        for (char c : raw) {
            if (c == '{')
                ++depth;
            else if (c == '}')
                --depth;
        }
        if (!in_body) {
            if (depth > 0)
                in_body = true;
            continue;
        }
        if (depth <= 0)
            break;  // closed the struct

        const std::string line = trim(raw);
        if (depth_at_start != 1 || line.empty() || line.back() != ';' ||
            line.find('(') != std::string::npos)
            continue;
        if (line.rfind("public", 0) == 0 || line.rfind("private", 0) == 0 ||
            line.rfind("using", 0) == 0 || line.rfind("static", 0) == 0 ||
            line.rfind("friend", 0) == 0)
            continue;

        // Cut the declarator at the initializer ('=' or '{'), then take
        // the trailing identifier: "std::array<u8, N> latchFlux{};"
        // and "std::uint8_t issued = 0;" both yield the field name.
        std::string decl = line.substr(0, line.size() - 1);
        const std::size_t cut = decl.find_first_of("={");
        if (cut != std::string::npos)
            decl = decl.substr(0, cut);
        decl = trim(decl);
        std::size_t end = decl.size();
        while (end > 0 && isIdentChar(decl[end - 1]))
            --end;
        const std::string name = decl.substr(end);
        if (!name.empty() && !std::isdigit(static_cast<unsigned char>(
                name.front())))
            fields.emplace(name, static_cast<int>(i + 1));
    }
    return fields;
}

std::vector<Diagnostic>
checkActivityCounters(const Context &ctx)
{
    std::vector<Diagnostic> out;
    const FileRecord *anchor = ctx.find(kAnchor);
    const std::map<std::string, int> fields =
        parseCycleActivityFields(anchor->bare);

    // Producer side: any whole-word mention in src/pipeline/ outside
    // the declaration lines themselves.
    std::set<std::string> produced;
    for (const FileRecord *rec : ctx.filesUnder("src/pipeline")) {
        const bool is_anchor = rec == anchor;
        const std::vector<std::string> lines =
            is_anchor ? toLines(rec->bare) : std::vector<std::string>();
        for (const auto &[name, decl_line] : fields) {
            if (produced.count(name))
                continue;
            if (!is_anchor) {
                if (containsWord(rec->bare, name))
                    produced.insert(name);
                continue;
            }
            for (std::size_t ln = 0; ln < lines.size(); ++ln) {
                if (static_cast<int>(ln + 1) == decl_line)
                    continue;
                if (containsWord(lines[ln], name)) {
                    produced.insert(name);
                    break;
                }
            }
        }
    }

    // Consumer side: the energy-accounting path — the power model
    // itself, or a gating controller feeding the GateState the power
    // model charges against.
    std::set<std::string> consumed;
    for (const char *sub : {"src/power", "src/gating"}) {
        for (const FileRecord *rec : ctx.filesUnder(sub))
            for (const auto &[name, decl_line] : fields)
                if (!consumed.count(name) &&
                    containsWord(rec->bare, name))
                    consumed.insert(name);
    }

    for (const auto &[name, decl_line] : fields) {
        if (!produced.count(name)) {
            out.push_back({kAnchor, decl_line, "activity-counter",
                           "activity counter '" + name +
                               "' is never written in src/pipeline/"});
        }
        if (!consumed.count(name)) {
            out.push_back({kAnchor, decl_line, "activity-counter",
                           "activity counter '" + name +
                               "' is never consumed by src/power/ or "
                               "src/gating/ (energy-accounting hole)"});
        }
    }
    return out;
}

const bool registered = registerCheck(
    {"activity-counter",
     "every CycleActivity field is written by the pipeline and read "
     "by the power/gating layers",
     {kAnchor}},
    &checkActivityCounters);

} // namespace

void anchorActivityCounterCheckRegistration() {}

} // namespace dcg::lint
