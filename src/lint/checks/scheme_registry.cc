/**
 * @file
 * scheme-registry: every registerScheme({"name", ... site in
 * src/gating/ must have its backticked name in the gating-scheme
 * table in EXPERIMENTS.md — schemes must be documented to exist.
 */

#include <cctype>

#include "lint/context.hh"
#include "lint/lexer.hh"
#include "lint/registry.hh"

namespace dcg::lint {

namespace {

constexpr const char *kAnchor = "EXPERIMENTS.md";

struct SchemeRegistration
{
    std::string name;
    std::string file;
    int line;
};

/**
 * Find registerScheme({"name", ... registration sites in @p text
 * (comments stripped, strings kept). The scheme name is the first
 * string literal of the braced SchemeInfo initializer; declarations
 * and calls without a literal-named initializer are skipped.
 */
void
collectSchemeRegistrations(const std::string &text,
                           const std::string &file,
                           std::vector<SchemeRegistration> &out)
{
    const std::string word = "registerScheme";
    std::size_t pos = 0;
    while ((pos = text.find(word, pos)) != std::string::npos) {
        const std::size_t start = pos;
        pos += word.size();
        if (start > 0 && isIdentChar(text[start - 1]))
            continue;
        std::size_t j = start + word.size();
        auto skipWs = [&] {
            while (j < text.size() &&
                   std::isspace(static_cast<unsigned char>(text[j])))
                ++j;
        };
        skipWs();
        if (j >= text.size() || text[j] != '(')
            continue;
        ++j;
        skipWs();
        if (j >= text.size() || text[j] != '{')
            continue;
        ++j;
        skipWs();
        if (j >= text.size() || text[j] != '"')
            continue;
        const std::size_t name_start = j + 1;
        const std::size_t name_end = text.find('"', name_start);
        if (name_end == std::string::npos)
            continue;
        out.push_back({text.substr(name_start, name_end - name_start),
                       file, lineOfOffset(text, start)});
    }
}

std::vector<Diagnostic>
checkSchemeRegistry(const Context &ctx)
{
    std::vector<Diagnostic> out;
    const std::string &docs = ctx.find(kAnchor)->raw;

    std::vector<SchemeRegistration> regs;
    for (const FileRecord *rec : ctx.filesUnder("src/gating"))
        collectSchemeRegistrations(rec->code, rec->rel, regs);

    for (const SchemeRegistration &reg : regs) {
        // The docs table writes scheme names in backticks; requiring
        // the backticked form keeps short names like "base" from
        // matching prose accidentally.
        if (docs.find('`' + reg.name + '`') == std::string::npos) {
            out.push_back({reg.file, reg.line, "scheme-registry",
                           "gating scheme '" + reg.name +
                               "' is registered but missing from the "
                               "gating-scheme table in EXPERIMENTS.md"});
        }
    }
    return out;
}

const bool registered = registerCheck(
    {"scheme-registry",
     "every registered gating scheme is documented in the "
     "EXPERIMENTS.md scheme table",
     {kAnchor}},
    &checkSchemeRegistry);

} // namespace

void anchorSchemeRegistryCheckRegistration() {}

} // namespace dcg::lint
