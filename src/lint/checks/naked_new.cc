/**
 * @file
 * naked-new: no raw new/delete expressions in src/ or tools/ — use
 * make_unique/make_shared or a container. `= delete` member
 * declarations pass.
 */

#include <cctype>

#include "lint/context.hh"
#include "lint/lexer.hh"
#include "lint/registry.hh"

namespace dcg::lint {

namespace {

std::vector<Diagnostic>
checkNakedNew(const Context &ctx)
{
    std::vector<Diagnostic> out;
    for (const char *sub : {"src", "tools"}) {
        for (const FileRecord *rec : ctx.filesUnder(sub)) {
            const std::string &code = rec->bare;
            for (const char *word : {"new", "delete"}) {
                const std::string w = word;
                std::size_t pos = 0;
                while ((pos = code.find(w, pos)) != std::string::npos) {
                    const std::size_t start = pos;
                    pos += w.size();
                    if (start > 0 && isIdentChar(code[start - 1]))
                        continue;
                    if (start + w.size() < code.size() &&
                        isIdentChar(code[start + w.size()]))
                        continue;
                    // "= delete" / "= delete;" declares a deleted
                    // member.
                    std::size_t b = start;
                    while (b > 0 && std::isspace(
                               static_cast<unsigned char>(code[b - 1])))
                        --b;
                    if (b > 0 && code[b - 1] == '=')
                        continue;
                    out.push_back(
                        {rec->rel, lineOfOffset(code, start),
                         "naked-new",
                         std::string("naked '") + word +
                             "' expression; use make_unique/"
                             "make_shared or a container"});
                }
            }
        }
    }
    return out;
}

const bool registered = registerCheck(
    {"naked-new",
     "no raw new/delete expressions; use make_unique/make_shared or "
     "a container",
     {}},
    &checkNakedNew);

} // namespace

void anchorNakedNewCheckRegistration() {}

} // namespace dcg::lint
