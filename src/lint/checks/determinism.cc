/**
 * @file
 * determinism: the simulated core must be a pure function of its
 * configuration and trace. Replay (serve-layer cache keys, replicated
 * re-execution, the paper's IPC/power numbers) is byte-compare
 * equality of reports, so wall-clock reads, ambient randomness and
 * unordered-container iteration order are banned from
 * src/{sim,pipeline,gating,power,exp}.
 *
 * Deliberate exceptions (e.g. a wall-clock timestamp in a report
 * banner that is excluded from the compare) carry a
 * `dcglint:allow(determinism)` marker on or above the line.
 */

#include <cctype>
#include <map>
#include <set>

#include "lint/context.hh"
#include "lint/lexer.hh"
#include "lint/registry.hh"

namespace dcg::lint {

namespace {

constexpr const char *kAnchor = "src/sim/simulator.hh";

const char *const kScopes[] = {"src/sim", "src/pipeline", "src/gating",
                               "src/power", "src/exp"};

/** Banned when called: name(...) — reason per function. */
const std::map<std::string, std::string> &
bannedCalls()
{
    static const std::map<std::string, std::string> calls = {
        {"rand", "ambient randomness; thread a seeded engine through "
                 "the config instead"},
        {"srand", "ambient randomness; thread a seeded engine through "
                  "the config instead"},
        {"rand_r", "ambient randomness; thread a seeded engine "
                   "through the config instead"},
        {"drand48", "ambient randomness; thread a seeded engine "
                    "through the config instead"},
        {"time", "wall-clock read; replay would diverge run to run"},
        {"gettimeofday",
         "wall-clock read; replay would diverge run to run"},
        {"clock_gettime",
         "wall-clock read; replay would diverge run to run"},
        {"localtime", "wall-clock read; replay would diverge run to "
                      "run"},
        {"gmtime", "wall-clock read; replay would diverge run to run"},
    };
    return calls;
}

/** Banned on sight: types whose mere use is the hazard. */
const std::map<std::string, std::string> &
bannedTokens()
{
    static const std::map<std::string, std::string> tokens = {
        {"random_device",
         "nondeterministic seed source; take the seed from the config"},
        {"system_clock",
         "wall-clock read; replay would diverge run to run"},
        {"unordered_map",
         "iteration order is unspecified; use std::map or a sorted "
         "vector in the deterministic core"},
        {"unordered_set",
         "iteration order is unspecified; use std::set or a sorted "
         "vector in the deterministic core"},
        {"unordered_multimap",
         "iteration order is unspecified; use std::multimap in the "
         "deterministic core"},
        {"unordered_multiset",
         "iteration order is unspecified; use std::multiset in the "
         "deterministic core"},
    };
    return tokens;
}

void
scanFile(const FileRecord &rec, std::vector<Diagnostic> &out)
{
    const std::string &text = rec.bare;
    for (std::size_t i = 0; i < text.size(); ++i) {
        if (!isIdentChar(text[i]) ||
            (i > 0 && isIdentChar(text[i - 1])))
            continue;
        std::size_t end = i;
        while (end < text.size() && isIdentChar(text[end]))
            ++end;
        const std::string word = text.substr(i, end - i);

        const auto tok = bannedTokens().find(word);
        if (tok != bannedTokens().end()) {
            out.push_back({rec.rel, lineOfOffset(text, i),
                           "determinism",
                           word + ": " + tok->second});
            i = end;
            continue;
        }

        const auto call = bannedCalls().find(word);
        if (call == bannedCalls().end()) {
            i = end;
            continue;
        }

        // Only the libc function: member calls (`sim.time(...)`) and
        // non-std qualified names are something else; a directly
        // preceding identifier means a declarator, not a call.
        if (i > 0 && (text[i - 1] == '.' ||
                      (text[i - 1] == '>' && i >= 2 &&
                       text[i - 2] == '-'))) {
            i = end;
            continue;
        }
        if (i >= 2 && text[i - 1] == ':' && text[i - 2] == ':') {
            std::size_t q = i - 2;
            while (q > 0 && isIdentChar(text[q - 1]))
                --q;
            if (text.substr(q, i - q) != "std::") {
                i = end;
                continue;
            }
        } else {
            std::size_t b = i;
            while (b > 0 && std::isspace(
                       static_cast<unsigned char>(text[b - 1])))
                --b;
            if (b > 0 && isIdentChar(text[b - 1])) {
                i = end;
                continue;
            }
        }
        std::size_t j = end;
        while (j < text.size() &&
               std::isspace(static_cast<unsigned char>(text[j])))
            ++j;
        if (j < text.size() && text[j] == '(') {
            out.push_back({rec.rel, lineOfOffset(text, i),
                           "determinism",
                           word + "(): " + call->second});
        }
        i = end;
    }
}

std::vector<Diagnostic>
checkDeterminism(const Context &ctx)
{
    std::vector<Diagnostic> out;
    for (const char *scope : kScopes)
        for (const FileRecord *rec : ctx.filesUnder(scope))
            scanFile(*rec, out);
    return out;
}

const bool registered = registerCheck(
    {"determinism",
     "no wall-clock, ambient-randomness or unordered-iteration "
     "hazards in the replayable core (src/{sim,pipeline,gating,"
     "power,exp})",
     {kAnchor}},
    &checkDeterminism);

} // namespace

void anchorDeterminismCheckRegistration() {}

} // namespace dcg::lint
