/**
 * @file
 * syscall-return: fallible POSIX calls in src/serve/ and tools/ must
 * not discard their result. A standalone-statement `connect(...)` is
 * a bug waiting for a flaky network.
 */

#include <cctype>
#include <set>

#include "lint/context.hh"
#include "lint/lexer.hh"
#include "lint/registry.hh"

namespace dcg::lint {

namespace {

/** Fallible POSIX calls whose results must be consumed. */
const std::set<std::string> &
syscallNames()
{
    static const std::set<std::string> names = {
        "accept",   "bind",     "connect",     "dup",      "dup2",
        "fcntl",    "fork",     "ftruncate",   "getaddrinfo",
        "getsockname", "getsockopt", "kill",   "listen",   "lseek",
        "mkdir",    "open",     "pipe",        "poll",     "read",
        "recv",     "rename",   "select",      "send",     "setsockopt",
        "shutdown", "sigaction", "signal",     "socket",   "unlink",
        "write",
    };
    return names;
}

/** Calls whose unchecked use is accepted project-wide. */
const std::set<std::string> &
syscallAllowlist()
{
    // close() on a teardown path has no useful recovery; flagging it
    // would only breed cargo-cult (void) casts.
    static const std::set<std::string> names = {"close"};
    return names;
}

/**
 * Scan stripped text for standalone-statement calls to the listed
 * syscalls, i.e. calls whose return value is discarded.
 */
void
scanSyscalls(const std::string &text, const std::string &file,
             std::vector<Diagnostic> &out)
{
    for (std::size_t i = 0; i < text.size(); ++i) {
        if (!isIdentChar(text[i]) ||
            (i > 0 && isIdentChar(text[i - 1])))
            continue;
        std::size_t end = i;
        while (end < text.size() && isIdentChar(text[end]))
            ++end;
        const std::string word = text.substr(i, end - i);
        if (!syscallNames().count(word) &&
            !syscallAllowlist().count(word)) {
            i = end;
            continue;
        }

        // Qualified call? foo::bar( — accept std:: (same C function),
        // skip everything else (fs::rename returns void, etc.).
        std::string qualifier;
        if (i >= 2 && text[i - 1] == ':' && text[i - 2] == ':') {
            std::size_t q = i - 2;
            while (q > 0 && isIdentChar(text[q - 1]))
                --q;
            qualifier = text.substr(q, i - q);
        }
        if (!qualifier.empty() && qualifier != "std::") {
            i = end;
            continue;
        }
        if (i > 0 && (text[i - 1] == '.' ||
                      (text[i - 1] == '>' && i >= 2 &&
                       text[i - 2] == '-'))) {
            i = end;  // member call, not the libc function
            continue;
        }

        std::size_t j = end;
        while (j < text.size() &&
               std::isspace(static_cast<unsigned char>(text[j])))
            ++j;
        if (j >= text.size() || text[j] != '(') {
            i = end;
            continue;
        }
        if (syscallAllowlist().count(word)) {
            i = end;
            continue;
        }

        // Statement context: what sits between the previous ';'/'{'/'}'
        // and the call decides whether the result is consumed.
        std::size_t stmt = i - qualifier.size();
        while (stmt > 0) {
            const char c = text[stmt - 1];
            if (c == ';' || c == '{' || c == '}')
                break;
            --stmt;
        }
        std::string before =
            trim(text.substr(stmt, i - qualifier.size() - stmt));
        if (before == "else" || before == "do")
            before.clear();
        if (before.empty()) {
            out.push_back({file, lineOfOffset(text, i), "syscall-return",
                           "return value of " + word +
                               "() is ignored; check it or assign to a "
                               "named variable"});
        }
        i = end;
    }
}

std::vector<Diagnostic>
checkSyscallReturns(const Context &ctx)
{
    std::vector<Diagnostic> out;
    for (const char *sub : {"src/serve", "tools"})
        for (const FileRecord *rec : ctx.filesUnder(sub))
            scanSyscalls(rec->bare, rec->rel, out);
    return out;
}

const bool registered = registerCheck(
    {"syscall-return",
     "fallible POSIX calls in src/serve/ and tools/ do not discard "
     "their return value",
     {}},
    &checkSyscallReturns);

} // namespace

void anchorSyscallReturnCheckRegistration() {}

} // namespace dcg::lint
