#include "lint/lint.hh"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <ostream>
#include <set>
#include <sstream>

#include "lint/lexer.hh"

namespace fs = std::filesystem;

namespace dcg::lint {

namespace {

/** Collect .cc/.hh/.cpp/.h files under @p dir, sorted for determinism. */
std::vector<fs::path>
sourcesUnder(const fs::path &dir)
{
    std::vector<fs::path> out;
    std::error_code ec;
    if (!fs::is_directory(dir, ec))
        return out;
    for (fs::recursive_directory_iterator it(dir, ec), end;
         !ec && it != end; it.increment(ec)) {
        if (!it->is_regular_file())
            continue;
        const std::string ext = it->path().extension().string();
        if (ext == ".cc" || ext == ".hh" || ext == ".cpp" || ext == ".h")
            out.push_back(it->path());
    }
    std::sort(out.begin(), out.end());
    return out;
}

bool
readFile(const fs::path &p, std::string &out)
{
    std::ifstream is(p, std::ios::binary);
    if (!is)
        return false;
    std::ostringstream ss;
    ss << is.rdbuf();
    out = ss.str();
    return true;
}

std::string
relToRoot(const fs::path &p, const fs::path &root)
{
    const std::string rel = p.lexically_relative(root).generic_string();
    return rel.empty() || rel.front() == '.' ? p.generic_string() : rel;
}

/** Anchor-missing handling shared by the anchored checks. */
void
noteMissingAnchor(const LintOptions &opts, const std::string &anchor,
                  const std::string &check, std::vector<Diagnostic> &out)
{
    if (opts.requireAnchors) {
        out.push_back({anchor, 0, "config",
                       "anchor file missing: " + anchor +
                           " (required for check '" + check + "')"});
    }
}

/**
 * Parse the field names of `struct CycleActivity` from the stripped
 * text of activity.hh. Returns (name -> declaration line). Tracks
 * brace depth so member-function bodies are not mistaken for fields.
 */
std::map<std::string, int>
parseCycleActivityFields(const std::string &stripped)
{
    std::map<std::string, int> fields;
    const std::vector<std::string> lines = toLines(stripped);

    std::size_t i = 0;
    for (; i < lines.size(); ++i)
        if (lines[i].find("struct CycleActivity") != std::string::npos)
            break;
    if (i == lines.size())
        return fields;

    int depth = 0;
    bool in_body = false;
    for (; i < lines.size(); ++i) {
        const std::string &raw = lines[i];
        const int depth_at_start = depth;
        for (char c : raw) {
            if (c == '{')
                ++depth;
            else if (c == '}')
                --depth;
        }
        if (!in_body) {
            if (depth > 0)
                in_body = true;
            continue;
        }
        if (depth <= 0)
            break;  // closed the struct

        const std::string line = trim(raw);
        if (depth_at_start != 1 || line.empty() || line.back() != ';' ||
            line.find('(') != std::string::npos)
            continue;
        if (line.rfind("public", 0) == 0 || line.rfind("private", 0) == 0 ||
            line.rfind("using", 0) == 0 || line.rfind("static", 0) == 0 ||
            line.rfind("friend", 0) == 0)
            continue;

        // Cut the declarator at the initializer ('=' or '{'), then take
        // the trailing identifier: "std::array<u8, N> latchFlux{};"
        // and "std::uint8_t issued = 0;" both yield the field name.
        std::string decl = line.substr(0, line.size() - 1);
        const std::size_t cut = decl.find_first_of("={");
        if (cut != std::string::npos)
            decl = decl.substr(0, cut);
        decl = trim(decl);
        std::size_t end = decl.size();
        while (end > 0 && isIdentChar(decl[end - 1]))
            --end;
        const std::string name = decl.substr(end);
        if (!name.empty() && !std::isdigit(static_cast<unsigned char>(
                name.front())))
            fields.emplace(name, static_cast<int>(i + 1));
    }
    return fields;
}

struct StatRegistration
{
    std::string name;
    std::string file;  ///< relative to root
    int line;
};

/**
 * Find stats.counter("name", ...) style registrations in @p text
 * (comments stripped, strings kept). Dynamic names (no literal) are
 * skipped — they cannot be checked lexically.
 */
void
collectStatRegistrations(const std::string &text, const std::string &file,
                         std::vector<StatRegistration> &out)
{
    static const char *kMethods[] = {"counter", "scalar", "average",
                                     "distribution", "formula"};
    for (const char *method : kMethods) {
        const std::string word = method;
        std::size_t pos = 0;
        while ((pos = text.find(word, pos)) != std::string::npos) {
            const std::size_t start = pos;
            pos += word.size();
            if (start == 0 || text[start - 1] != '.')
                continue;
            std::size_t j = start + word.size();
            while (j < text.size() &&
                   std::isspace(static_cast<unsigned char>(text[j])))
                ++j;
            if (j >= text.size() || text[j] != '(')
                continue;
            ++j;
            while (j < text.size() &&
                   std::isspace(static_cast<unsigned char>(text[j])))
                ++j;
            if (j >= text.size() || text[j] != '"')
                continue;  // dynamic name
            const std::size_t name_start = j + 1;
            const std::size_t name_end = text.find('"', name_start);
            if (name_end == std::string::npos)
                continue;
            out.push_back({text.substr(name_start, name_end - name_start),
                           file, lineOfOffset(text, start)});
        }
    }
}

/**
 * Find registerScheme({"name", ... registration sites in @p text
 * (comments stripped, strings kept). The scheme name is the first
 * string literal of the braced SchemeInfo initializer; declarations
 * and calls without a literal-named initializer are skipped.
 */
void
collectSchemeRegistrations(const std::string &text,
                           const std::string &file,
                           std::vector<StatRegistration> &out)
{
    const std::string word = "registerScheme";
    std::size_t pos = 0;
    while ((pos = text.find(word, pos)) != std::string::npos) {
        const std::size_t start = pos;
        pos += word.size();
        if (start > 0 && isIdentChar(text[start - 1]))
            continue;
        std::size_t j = start + word.size();
        auto skipWs = [&] {
            while (j < text.size() &&
                   std::isspace(static_cast<unsigned char>(text[j])))
                ++j;
        };
        skipWs();
        if (j >= text.size() || text[j] != '(')
            continue;
        ++j;
        skipWs();
        if (j >= text.size() || text[j] != '{')
            continue;
        ++j;
        skipWs();
        if (j >= text.size() || text[j] != '"')
            continue;
        const std::size_t name_start = j + 1;
        const std::size_t name_end = text.find('"', name_start);
        if (name_end == std::string::npos)
            continue;
        out.push_back({text.substr(name_start, name_end - name_start),
                       file, lineOfOffset(text, start)});
    }
}

/** Fallible POSIX calls whose results must be consumed. */
const std::set<std::string> &
syscallNames()
{
    static const std::set<std::string> names = {
        "accept",   "bind",     "connect",     "dup",      "dup2",
        "fcntl",    "fork",     "ftruncate",   "getaddrinfo",
        "getsockname", "getsockopt", "kill",   "listen",   "lseek",
        "mkdir",    "open",     "pipe",        "poll",     "read",
        "recv",     "rename",   "select",      "send",     "setsockopt",
        "shutdown", "sigaction", "signal",     "socket",   "unlink",
        "write",
    };
    return names;
}

/** Calls whose unchecked use is accepted project-wide. */
const std::set<std::string> &
syscallAllowlist()
{
    // close() on a teardown path has no useful recovery; flagging it
    // would only breed cargo-cult (void) casts.
    static const std::set<std::string> names = {"close"};
    return names;
}

/**
 * Scan stripped text for standalone-statement calls to the listed
 * syscalls, i.e. calls whose return value is discarded.
 */
void
scanSyscalls(const std::string &text, const std::string &file,
             std::vector<Diagnostic> &out)
{
    for (std::size_t i = 0; i < text.size(); ++i) {
        if (!isIdentChar(text[i]) ||
            (i > 0 && isIdentChar(text[i - 1])))
            continue;
        std::size_t end = i;
        while (end < text.size() && isIdentChar(text[end]))
            ++end;
        const std::string word = text.substr(i, end - i);
        if (!syscallNames().count(word) &&
            !syscallAllowlist().count(word)) {
            i = end;
            continue;
        }

        // Qualified call? foo::bar( — accept std:: (same C function),
        // skip everything else (fs::rename returns void, etc.).
        std::string qualifier;
        if (i >= 2 && text[i - 1] == ':' && text[i - 2] == ':') {
            std::size_t q = i - 2;
            while (q > 0 && isIdentChar(text[q - 1]))
                --q;
            qualifier = text.substr(q, i - q);
        }
        if (!qualifier.empty() && qualifier != "std::") {
            i = end;
            continue;
        }
        if (i > 0 && (text[i - 1] == '.' ||
                      (text[i - 1] == '>' && i >= 2 &&
                       text[i - 2] == '-'))) {
            i = end;  // member call, not the libc function
            continue;
        }

        std::size_t j = end;
        while (j < text.size() &&
               std::isspace(static_cast<unsigned char>(text[j])))
            ++j;
        if (j >= text.size() || text[j] != '(') {
            i = end;
            continue;
        }
        if (syscallAllowlist().count(word)) {
            i = end;
            continue;
        }

        // Statement context: what sits between the previous ';'/'{'/'}'
        // and the call decides whether the result is consumed.
        std::size_t stmt = i - qualifier.size();
        while (stmt > 0) {
            const char c = text[stmt - 1];
            if (c == ';' || c == '{' || c == '}')
                break;
            --stmt;
        }
        std::string before =
            trim(text.substr(stmt, i - qualifier.size() - stmt));
        if (before == "else" || before == "do")
            before.clear();
        if (before.empty()) {
            out.push_back({file, lineOfOffset(text, i), "syscall-return",
                           "return value of " + word +
                               "() is ignored; check it or assign to a "
                               "named variable"});
        }
        i = end;
    }
}

/**
 * Raw socket calls that must go through the net::*Retry wrappers in
 * src/serve/netio.hh (the wrapper name is the call plus "Retry").
 */
const std::set<std::string> &
netIoNames()
{
    static const std::set<std::string> names = {
        "accept", "connect", "poll", "read",
        "recv",   "send",    "write",
    };
    return names;
}

/**
 * Scan stripped text for raw calls to the wrapped socket functions.
 * Unlike scanSyscalls this flags *every* raw call, consumed or not:
 * the point is that EINTR/partial-write handling lives in exactly one
 * place. Member calls (`conn.read(...)`), non-std qualified names and
 * declarations (`ssize_t read(...)`, preceded by a type name) are not
 * the libc functions and pass.
 */
void
scanNetIo(const std::string &text, const std::string &file,
          std::vector<Diagnostic> &out)
{
    for (std::size_t i = 0; i < text.size(); ++i) {
        if (!isIdentChar(text[i]) ||
            (i > 0 && isIdentChar(text[i - 1])))
            continue;
        std::size_t end = i;
        while (end < text.size() && isIdentChar(text[end]))
            ++end;
        const std::string word = text.substr(i, end - i);
        if (!netIoNames().count(word)) {
            i = end;
            continue;
        }

        // Qualified call? Accept std:: (same C function), skip every
        // other namespace — net::… wrappers have distinct names, but a
        // class-qualified Conn::read is not the syscall.
        std::string qualifier;
        if (i >= 2 && text[i - 1] == ':' && text[i - 2] == ':') {
            std::size_t q = i - 2;
            while (q > 0 && isIdentChar(text[q - 1]))
                --q;
            qualifier = text.substr(q, i - q);
        }
        if (!qualifier.empty() && qualifier != "std::") {
            i = end;
            continue;
        }
        if (i > 0 && (text[i - 1] == '.' ||
                      (text[i - 1] == '>' && i >= 2 &&
                       text[i - 2] == '-'))) {
            i = end;  // member call, not the libc function
            continue;
        }

        std::size_t j = end;
        while (j < text.size() &&
               std::isspace(static_cast<unsigned char>(text[j])))
            ++j;
        if (j >= text.size() || text[j] != '(') {
            i = end;
            continue;
        }

        // An unqualified name directly preceded by another identifier
        // is a declarator ("ssize_t read(int, ...)"), except after a
        // statement keyword, where it is a genuine call.
        if (qualifier.empty()) {
            std::size_t b = i;
            while (b > 0 && std::isspace(
                       static_cast<unsigned char>(text[b - 1])))
                --b;
            if (b > 0 && isIdentChar(text[b - 1])) {
                std::size_t w0 = b;
                while (w0 > 0 && isIdentChar(text[w0 - 1]))
                    --w0;
                const std::string prev = text.substr(w0, b - w0);
                static const std::set<std::string> kStmtKeywords = {
                    "return", "else", "do", "case"};
                if (!kStmtKeywords.count(prev)) {
                    i = end;
                    continue;
                }
            }
        }

        out.push_back({file, lineOfOffset(text, i), "net-io",
                       "raw " + word + "() call; route it through "
                           "net::" + word +
                           "Retry() from serve/netio.hh"});
        i = end;
    }
}

using CheckFn = std::vector<Diagnostic> (*)(const LintOptions &);

const std::vector<std::pair<std::string, CheckFn>> &
checkTable()
{
    static const std::vector<std::pair<std::string, CheckFn>> table = {
        {"activity-counter", &checkActivityCounters},
        {"stat-report", &checkStatsReported},
        {"scheme-registry", &checkSchemeRegistry},
        {"syscall-return", &checkSyscallReturns},
        {"net-io", &checkNetIo},
        {"naked-new", &checkNakedNew},
    };
    return table;
}

} // namespace

const std::vector<std::string> &
checkNames()
{
    static const std::vector<std::string> names = [] {
        std::vector<std::string> v;
        for (const auto &[name, fn] : checkTable())
            v.push_back(name);
        return v;
    }();
    return names;
}

std::vector<Diagnostic>
checkActivityCounters(const LintOptions &opts)
{
    std::vector<Diagnostic> out;
    const fs::path root = opts.root;
    const fs::path anchor = root / "src" / "pipeline" / "activity.hh";
    std::string anchor_text;
    if (!readFile(anchor, anchor_text)) {
        noteMissingAnchor(opts, "src/pipeline/activity.hh",
                          "activity-counter", out);
        return out;
    }
    const std::string stripped = stripCode(anchor_text, true);
    const std::map<std::string, int> fields =
        parseCycleActivityFields(stripped);

    // Producer side: any whole-word mention in src/pipeline/ outside
    // the declaration lines themselves.
    std::set<std::string> produced;
    for (const fs::path &p : sourcesUnder(root / "src" / "pipeline")) {
        std::string text;
        if (!readFile(p, text))
            continue;
        const std::string code = stripCode(text, true);
        const bool is_anchor = fs::equivalent(p, anchor);
        const std::vector<std::string> lines = toLines(code);
        for (const auto &[name, decl_line] : fields) {
            if (produced.count(name))
                continue;
            if (!is_anchor) {
                if (containsWord(code, name))
                    produced.insert(name);
                continue;
            }
            for (std::size_t ln = 0; ln < lines.size(); ++ln) {
                if (static_cast<int>(ln + 1) == decl_line)
                    continue;
                if (containsWord(lines[ln], name)) {
                    produced.insert(name);
                    break;
                }
            }
        }
    }

    // Consumer side: the energy-accounting path — the power model
    // itself, or a gating controller feeding the GateState the power
    // model charges against.
    std::set<std::string> consumed;
    for (const char *sub : {"power", "gating"}) {
        for (const fs::path &p : sourcesUnder(root / "src" / sub)) {
            std::string text;
            if (!readFile(p, text))
                continue;
            const std::string code = stripCode(text, true);
            for (const auto &[name, decl_line] : fields)
                if (!consumed.count(name) && containsWord(code, name))
                    consumed.insert(name);
        }
    }

    const std::string anchor_rel = relToRoot(anchor, root);
    for (const auto &[name, decl_line] : fields) {
        if (!produced.count(name)) {
            out.push_back({anchor_rel, decl_line, "activity-counter",
                           "activity counter '" + name +
                               "' is never written in src/pipeline/"});
        }
        if (!consumed.count(name)) {
            out.push_back({anchor_rel, decl_line, "activity-counter",
                           "activity counter '" + name +
                               "' is never consumed by src/power/ or "
                               "src/gating/ (energy-accounting hole)"});
        }
    }
    return out;
}

std::vector<Diagnostic>
checkStatsReported(const LintOptions &opts)
{
    std::vector<Diagnostic> out;
    const fs::path root = opts.root;
    const fs::path catalog_path = root / "src" / "sim" / "report.cc";
    std::string catalog_text;
    if (!readFile(catalog_path, catalog_text)) {
        noteMissingAnchor(opts, "src/sim/report.cc", "stat-report", out);
        return out;
    }
    const std::string catalog = stripCode(catalog_text, false);

    std::vector<StatRegistration> regs;
    for (const fs::path &p : sourcesUnder(root / "src")) {
        // The lint subsystem itself registers nothing; skip it so this
        // file's own pattern strings cannot confuse the scan.
        const std::string rel = relToRoot(p, root);
        if (rel.rfind("src/lint/", 0) == 0)
            continue;
        std::string text;
        if (!readFile(p, text))
            continue;
        collectStatRegistrations(stripCode(text, false), rel, regs);
    }

    for (const StatRegistration &reg : regs) {
        if (catalog.find('"' + reg.name + '"') == std::string::npos) {
            out.push_back({reg.file, reg.line, "stat-report",
                           "stat '" + reg.name +
                               "' is registered but missing from the "
                               "catalog in src/sim/report.cc "
                               "(statRegistryCatalog)"});
        }
    }
    return out;
}

std::vector<Diagnostic>
checkSchemeRegistry(const LintOptions &opts)
{
    std::vector<Diagnostic> out;
    const fs::path root = opts.root;
    const fs::path docs_path = root / "EXPERIMENTS.md";
    std::string docs;
    if (!readFile(docs_path, docs)) {
        noteMissingAnchor(opts, "EXPERIMENTS.md", "scheme-registry",
                          out);
        return out;
    }

    std::vector<StatRegistration> regs;
    for (const fs::path &p : sourcesUnder(root / "src" / "gating")) {
        std::string text;
        if (!readFile(p, text))
            continue;
        collectSchemeRegistrations(stripCode(text, false),
                                   relToRoot(p, root), regs);
    }

    for (const StatRegistration &reg : regs) {
        // The docs table writes scheme names in backticks; requiring
        // the backticked form keeps short names like "base" from
        // matching prose accidentally.
        if (docs.find('`' + reg.name + '`') == std::string::npos) {
            out.push_back({reg.file, reg.line, "scheme-registry",
                           "gating scheme '" + reg.name +
                               "' is registered but missing from the "
                               "gating-scheme table in EXPERIMENTS.md"});
        }
    }
    return out;
}

std::vector<Diagnostic>
checkSyscallReturns(const LintOptions &opts)
{
    std::vector<Diagnostic> out;
    const fs::path root = opts.root;
    std::vector<fs::path> files = sourcesUnder(root / "src" / "serve");
    const std::vector<fs::path> tool_files = sourcesUnder(root / "tools");
    files.insert(files.end(), tool_files.begin(), tool_files.end());
    for (const fs::path &p : files) {
        std::string text;
        if (!readFile(p, text))
            continue;
        scanSyscalls(stripCode(text, true), relToRoot(p, root), out);
    }
    return out;
}

std::vector<Diagnostic>
checkNetIo(const LintOptions &opts)
{
    std::vector<Diagnostic> out;
    const fs::path root = opts.root;
    const fs::path anchor = root / "src" / "serve" / "netio.hh";
    std::string anchor_text;
    if (!readFile(anchor, anchor_text)) {
        noteMissingAnchor(opts, "src/serve/netio.hh", "net-io", out);
        return out;
    }

    std::vector<fs::path> files = sourcesUnder(root / "src" / "serve");
    const std::vector<fs::path> tool_files = sourcesUnder(root / "tools");
    files.insert(files.end(), tool_files.begin(), tool_files.end());
    for (const fs::path &p : files) {
        if (fs::equivalent(p, anchor))
            continue;  // the wrappers themselves call the raw functions
        std::string text;
        if (!readFile(p, text))
            continue;
        scanNetIo(stripCode(text, true), relToRoot(p, root), out);
    }
    return out;
}

std::vector<Diagnostic>
checkNakedNew(const LintOptions &opts)
{
    std::vector<Diagnostic> out;
    const fs::path root = opts.root;
    std::vector<fs::path> files = sourcesUnder(root / "src");
    const std::vector<fs::path> tool_files = sourcesUnder(root / "tools");
    files.insert(files.end(), tool_files.begin(), tool_files.end());

    for (const fs::path &p : files) {
        std::string text;
        if (!readFile(p, text))
            continue;
        const std::string code = stripCode(text, true);
        const std::string rel = relToRoot(p, root);
        for (const char *word : {"new", "delete"}) {
            const std::string w = word;
            std::size_t pos = 0;
            while ((pos = code.find(w, pos)) != std::string::npos) {
                const std::size_t start = pos;
                pos += w.size();
                if (start > 0 && isIdentChar(code[start - 1]))
                    continue;
                if (start + w.size() < code.size() &&
                    isIdentChar(code[start + w.size()]))
                    continue;
                // "= delete" / "= delete;" declares a deleted member.
                std::size_t b = start;
                while (b > 0 && std::isspace(
                           static_cast<unsigned char>(code[b - 1])))
                    --b;
                if (b > 0 && code[b - 1] == '=')
                    continue;
                out.push_back(
                    {rel, lineOfOffset(code, start), "naked-new",
                     std::string("naked '") + word +
                         "' expression; use make_unique/make_shared "
                         "or a container"});
            }
        }
    }
    return out;
}

std::vector<Diagnostic>
runChecks(const LintOptions &opts)
{
    std::vector<Diagnostic> all;
    for (const auto &[name, fn] : checkTable()) {
        if (!opts.checks.empty() &&
            std::find(opts.checks.begin(), opts.checks.end(), name) ==
                opts.checks.end())
            continue;
        std::vector<Diagnostic> d = fn(opts);
        all.insert(all.end(), d.begin(), d.end());
    }
    std::sort(all.begin(), all.end(),
              [](const Diagnostic &a, const Diagnostic &b) {
                  if (a.file != b.file)
                      return a.file < b.file;
                  if (a.line != b.line)
                      return a.line < b.line;
                  return a.message < b.message;
              });
    return all;
}

std::string
formatDiagnostic(const Diagnostic &d)
{
    std::ostringstream os;
    os << d.file;
    if (d.line > 0)
        os << ':' << d.line;
    os << ": [" << d.check << "] " << d.message;
    return os.str();
}

int
runDcglint(const LintOptions &opts, std::ostream &out)
{
    std::error_code ec;
    if (!fs::is_directory(opts.root, ec)) {
        out << "dcglint: root '" << opts.root
            << "' is not a directory\n";
        return 2;
    }
    for (const std::string &name : opts.checks) {
        if (std::find(checkNames().begin(), checkNames().end(), name) ==
            checkNames().end()) {
            out << "dcglint: unknown check '" << name << "'\n";
            return 2;
        }
    }

    const std::vector<Diagnostic> diags = runChecks(opts);
    bool config_error = false;
    for (const Diagnostic &d : diags) {
        out << formatDiagnostic(d) << '\n';
        if (d.check == "config")
            config_error = true;
    }
    if (config_error)
        return 2;
    if (!diags.empty()) {
        out << "dcglint: " << diags.size() << " finding(s)\n";
        return 1;
    }
    out << "dcglint: clean\n";
    return 0;
}

} // namespace dcg::lint
