#include "lint/lint.hh"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <set>
#include <sstream>

#include "lint/context.hh"
#include "lint/registry.hh"

namespace fs = std::filesystem;

namespace dcg::lint {

namespace {

void
sortDiagnostics(std::vector<Diagnostic> &diags)
{
    std::sort(diags.begin(), diags.end(),
              [](const Diagnostic &a, const Diagnostic &b) {
                  if (a.file != b.file)
                      return a.file < b.file;
                  if (a.line != b.line)
                      return a.line < b.line;
                  if (a.check != b.check)
                      return a.check < b.check;
                  return a.message < b.message;
              });
}

/** JSON string-body escaping (quotes added by the caller). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\r':
            out += "\\r";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/**
 * Load a baseline file into the set of suppressed baselineKey()
 * strings. '#' starts a comment; blank lines are skipped. Returns
 * false when @p path cannot be read.
 */
bool
loadBaseline(const std::string &path, std::set<std::string> &keys)
{
    std::ifstream is(path);
    if (!is)
        return false;
    std::string line;
    while (std::getline(is, line)) {
        const std::size_t hash = line.find('#');
        if (hash != std::string::npos)
            line = line.substr(0, hash);
        // Trim without pulling in lexer.hh: keys are exact strings.
        const std::size_t b = line.find_first_not_of(" \t\r");
        if (b == std::string::npos)
            continue;
        const std::size_t e = line.find_last_not_of(" \t\r");
        keys.insert(line.substr(b, e - b + 1));
    }
    return true;
}

} // namespace

std::vector<Diagnostic>
runChecks(const LintOptions &opts)
{
    std::vector<Diagnostic> all;

    // Resolve the selection against the registry first: unknown names
    // surface as config diagnostics instead of silently passing.
    std::vector<std::string> selected;
    if (opts.checks.empty()) {
        selected = checkNames();
    } else {
        for (const std::string &name : opts.checks) {
            if (isCheck(name)) {
                selected.push_back(name);
            } else {
                all.push_back({"", 0, "config",
                               "unknown check '" + name +
                                   "' (known: " + checkNamesJoined() +
                                   ")"});
            }
        }
    }

    const Context ctx(opts);
    if (!ctx.rootOk()) {
        all.push_back({opts.root, 0, "config",
                       "root '" + opts.root +
                           "' is not a directory"});
        sortDiagnostics(all);
        return all;
    }

    for (const std::string &name : selected) {
        const CheckInfo *info = findCheck(name);
        if (!ctx.anchorsOk(info->anchors, name, all))
            continue;  // missing anchor: skip (config diag if required)
        std::vector<Diagnostic> d = checkFn(name)(ctx);
        for (Diagnostic &diag : d) {
            if (!ctx.allowMarked(diag.file, diag.line, diag.check))
                all.push_back(std::move(diag));
        }
    }
    sortDiagnostics(all);
    return all;
}

std::vector<Diagnostic>
runCheck(const std::string &name, const LintOptions &opts)
{
    LintOptions one = opts;
    one.checks = {name};
    return runChecks(one);
}

std::string
formatDiagnostic(const Diagnostic &d)
{
    std::ostringstream os;
    os << d.file;
    if (d.line > 0)
        os << ':' << d.line;
    os << ": [" << d.check << "] " << d.message;
    return os.str();
}

std::string
baselineKey(const Diagnostic &d)
{
    return d.file + ": [" + d.check + "] " + d.message;
}

std::string
toJson(const std::vector<Diagnostic> &diags)
{
    std::ostringstream os;
    os << "{\n  \"findings\": [";
    for (std::size_t i = 0; i < diags.size(); ++i) {
        const Diagnostic &d = diags[i];
        os << (i ? "," : "") << "\n    {\"file\": \""
           << jsonEscape(d.file) << "\", \"line\": " << d.line
           << ", \"check\": \"" << jsonEscape(d.check)
           << "\", \"message\": \"" << jsonEscape(d.message) << "\"}";
    }
    if (!diags.empty())
        os << "\n  ";
    os << "],\n  \"count\": " << diags.size() << "\n}\n";
    return os.str();
}

std::string
toSarif(const std::vector<Diagnostic> &diags)
{
    std::ostringstream os;
    os << "{\n"
       << "  \"$schema\": "
          "\"https://json.schemastore.org/sarif-2.1.0.json\",\n"
       << "  \"version\": \"2.1.0\",\n"
       << "  \"runs\": [\n"
       << "    {\n"
       << "      \"tool\": {\n"
       << "        \"driver\": {\n"
       << "          \"name\": \"dcglint\",\n"
       << "          \"rules\": [";
    // One rule per registered check plus the synthetic "config" rule,
    // so every result's ruleId resolves.
    bool first = true;
    auto rule = [&](const std::string &id, const std::string &desc) {
        os << (first ? "" : ",") << "\n            {\"id\": \""
           << jsonEscape(id) << "\", \"shortDescription\": {\"text\": \""
           << jsonEscape(desc) << "\"}}";
        first = false;
    };
    for (const CheckInfo &info : checkCatalog())
        rule(info.name, info.description);
    rule("config", "dcglint configuration error");
    os << "\n          ]\n"
       << "        }\n"
       << "      },\n"
       << "      \"results\": [";
    for (std::size_t i = 0; i < diags.size(); ++i) {
        const Diagnostic &d = diags[i];
        os << (i ? "," : "") << "\n        {\n"
           << "          \"ruleId\": \"" << jsonEscape(d.check)
           << "\",\n"
           << "          \"level\": \"error\",\n"
           << "          \"message\": {\"text\": \""
           << jsonEscape(d.message) << "\"},\n"
           << "          \"locations\": [{\"physicalLocation\": "
              "{\"artifactLocation\": {\"uri\": \""
           << jsonEscape(d.file) << "\"}";
        if (d.line > 0)
            os << ", \"region\": {\"startLine\": " << d.line << "}";
        os << "}}]\n        }";
    }
    if (!diags.empty())
        os << "\n      ";
    os << "]\n    }\n  ]\n}\n";
    return os.str();
}

int
runDcglint(const LintOptions &opts, std::ostream &out)
{
    std::error_code ec;
    if (!fs::is_directory(opts.root, ec)) {
        out << "dcglint: root '" << opts.root
            << "' is not a directory\n";
        return 2;
    }
    for (const std::string &name : opts.checks) {
        if (!isCheck(name)) {
            out << "dcglint: unknown check '" << name
                << "' (known: " << checkNamesJoined() << ")\n";
            return 2;
        }
    }
    std::set<std::string> baseline;
    if (!opts.baselineFile.empty() &&
        !loadBaseline(opts.baselineFile, baseline)) {
        out << "dcglint: cannot read baseline '" << opts.baselineFile
            << "'\n";
        return 2;
    }

    std::vector<Diagnostic> diags = runChecks(opts);

    // Report filters: config errors always survive them — a broken
    // configuration must not be maskable by a baseline entry or a
    // changed-files list.
    std::size_t suppressed = 0;
    std::vector<Diagnostic> kept;
    for (Diagnostic &d : diags) {
        if (d.check != "config") {
            if (baseline.count(baselineKey(d))) {
                ++suppressed;
                continue;
            }
            if (!opts.onlyFiles.empty() &&
                std::find(opts.onlyFiles.begin(), opts.onlyFiles.end(),
                          d.file) == opts.onlyFiles.end())
                continue;
        }
        kept.push_back(std::move(d));
    }

    bool config_error = false;
    for (const Diagnostic &d : kept)
        if (d.check == "config")
            config_error = true;

    switch (opts.format) {
      case OutputFormat::Json:
        out << toJson(kept);
        break;
      case OutputFormat::Sarif:
        out << toSarif(kept);
        break;
      case OutputFormat::Text:
        for (const Diagnostic &d : kept)
            out << formatDiagnostic(d) << '\n';
        if (config_error) {
            // fall through to the return below; no summary line
        } else if (!kept.empty()) {
            out << "dcglint: " << kept.size() << " finding(s)";
            if (suppressed)
                out << " (" << suppressed << " baselined)";
            out << '\n';
        } else {
            out << "dcglint: clean";
            if (suppressed)
                out << " (" << suppressed << " baselined)";
            out << '\n';
        }
        break;
    }

    if (config_error)
        return 2;
    return kept.empty() ? 0 : 1;
}

} // namespace dcg::lint
