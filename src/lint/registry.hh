/**
 * @file
 * String-keyed lint-check registry.
 *
 * A check is one translation unit and one registration: the check's
 * .cc self-registers a CheckInfo (name, one-line description, the
 * anchor files it keys on) plus the function that produces its
 * diagnostics from a shared analysis Context. Everything that
 * enumerates or selects checks — dcglint (--check validation,
 * --list-checks, usage text), runChecks(), the registry ctest, the
 * SARIF rule table and the ANALYSIS.md check table — goes through
 * this catalog, so adding a check never touches a hard-wired list
 * again (the same pattern src/gating/registry.hh proved out for
 * gating schemes).
 *
 * Registration pattern (in the check's .cc under src/lint/checks/):
 *
 *     namespace { const bool registered = lint::registerCheck(
 *         {"my-check", "what invariant it enforces",
 *          {"src/path/anchor.hh"}},
 *         &checkMyInvariant); }
 *     void anchorMyCheckRegistration() {}
 *
 * The anchor function is the static-archive escape hatch: a TU whose
 * only definitions are self-registration statics is dropped by the
 * linker, so registry.cc calls every check's anchor before answering
 * lookups (ensureBuiltins), forcing the registration objects into
 * the binary.
 *
 * CheckInfo::anchors lists the real files the check's invariant is
 * keyed on. The driver resolves them before running the check: a
 * missing anchor silently skips the check (fixture trees stay
 * small), unless LintOptions::requireAnchors is set — the mode CI
 * and the repo ctest use — in which case it is a configuration
 * error. Checks can therefore assume their anchors exist.
 */

#ifndef DCG_LINT_REGISTRY_HH
#define DCG_LINT_REGISTRY_HH

#include <functional>
#include <string>
#include <vector>

namespace dcg::lint {

class Context;
struct Diagnostic;

/** Everything the catalog knows about one registered check. */
struct CheckInfo
{
    std::string name;
    std::string description;  ///< one line, for --list-checks/SARIF
    /** Root-relative files the invariant is keyed on (may be empty:
     *  path-scope-only checks like naked-new need no anchor). */
    std::vector<std::string> anchors;
};

/** Produces the check's diagnostics from the shared Context. */
using CheckFn =
    std::function<std::vector<Diagnostic>(const Context &)>;

/**
 * Register a check. Returns true (the value exists so a namespace-
 * scope `const bool` can run the registration at static-init time).
 * Duplicate or empty names abort — two files claiming one check is a
 * build error, not a runtime preference.
 */
bool registerCheck(CheckInfo info, CheckFn fn);

/** All registered checks, sorted by name. */
std::vector<CheckInfo> checkCatalog();

/** Registered check names, sorted. */
std::vector<std::string> checkNames();

/** Names joined for error/usage text, e.g. "activity-counter|...". */
std::string checkNamesJoined(char sep = '|');

/** True when @p name is a registered check. */
bool isCheck(const std::string &name);

/** Catalog entry for @p name, or nullptr. */
const CheckInfo *findCheck(const std::string &name);

/** The check function for @p name, or an empty function. */
CheckFn checkFn(const std::string &name);

} // namespace dcg::lint

#endif // DCG_LINT_REGISTRY_HH
