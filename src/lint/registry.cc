#include "lint/registry.hh"

#include <cstdio>
#include <cstdlib>
#include <map>
#include <utility>

namespace dcg::lint {

// Anchors defined in the check translation units (see registry.hh:
// they force the self-registration statics out of the static
// archive). dcg_lint deliberately links nothing else, so this cannot
// use common/log.hh's fatal().
void anchorActivityCounterCheckRegistration();
void anchorStatReportCheckRegistration();
void anchorSchemeRegistryCheckRegistration();
void anchorSyscallReturnCheckRegistration();
void anchorNetIoCheckRegistration();
void anchorNakedNewCheckRegistration();
void anchorThreadOwnershipCheckRegistration();
void anchorDeterminismCheckRegistration();
void anchorTickPathStatsCheckRegistration();

namespace {

struct CheckEntry
{
    CheckInfo info;
    CheckFn fn;
};

/** Function-local static: safe against static-init ordering. */
std::map<std::string, CheckEntry> &
table()
{
    static std::map<std::string, CheckEntry> entries;
    return entries;
}

void
ensureBuiltins()
{
    anchorActivityCounterCheckRegistration();
    anchorStatReportCheckRegistration();
    anchorSchemeRegistryCheckRegistration();
    anchorSyscallReturnCheckRegistration();
    anchorNetIoCheckRegistration();
    anchorNakedNewCheckRegistration();
    anchorThreadOwnershipCheckRegistration();
    anchorDeterminismCheckRegistration();
    anchorTickPathStatsCheckRegistration();
}

[[noreturn]] void
registrationError(const char *what, const std::string &name)
{
    std::fprintf(stderr, "dcglint: registerCheck: %s '%s'\n", what,
                 name.c_str());
    std::abort();
}

} // namespace

bool
registerCheck(CheckInfo info, CheckFn fn)
{
    if (info.name.empty())
        registrationError("empty check name", info.name);
    if (!fn)
        registrationError("null check function for", info.name);
    const std::string name = info.name;
    const auto [it, inserted] = table().emplace(
        name, CheckEntry{std::move(info), std::move(fn)});
    (void)it;
    if (!inserted)
        registrationError("duplicate check", name);
    return true;
}

std::vector<CheckInfo>
checkCatalog()
{
    ensureBuiltins();
    std::vector<CheckInfo> catalog;
    catalog.reserve(table().size());
    for (const auto &[name, entry] : table())
        catalog.push_back(entry.info);
    return catalog;
}

std::vector<std::string>
checkNames()
{
    ensureBuiltins();
    std::vector<std::string> names;
    names.reserve(table().size());
    for (const auto &[name, entry] : table())
        names.push_back(name);
    return names;
}

std::string
checkNamesJoined(char sep)
{
    std::string joined;
    for (const std::string &name : checkNames()) {
        if (!joined.empty())
            joined += sep;
        joined += name;
    }
    return joined;
}

bool
isCheck(const std::string &name)
{
    ensureBuiltins();
    return table().count(name) != 0;
}

const CheckInfo *
findCheck(const std::string &name)
{
    ensureBuiltins();
    const auto it = table().find(name);
    return it == table().end() ? nullptr : &it->second.info;
}

CheckFn
checkFn(const std::string &name)
{
    ensureBuiltins();
    const auto it = table().find(name);
    return it == table().end() ? CheckFn() : it->second.fn;
}

} // namespace dcg::lint
