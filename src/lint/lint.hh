/**
 * @file
 * dcglint: project-specific static checks for the invariants the
 * simulator's correctness argument rests on.
 *
 * The deterministic-clock-gating claim (19.9 % power saving at ~0 %
 * IPC loss) is only as good as the wiring between the activity
 * counters the pipeline records, the power model that converts them
 * into energy, the reporting layer that serializes them — and, now
 * that the replayable core serves traffic as a replicated cluster,
 * the concurrency and determinism conventions that keep replay
 * byte-identical. These checks make that wiring a build-time
 * invariant instead of a code-review convention.
 *
 * v2 architecture: checks live in a self-registering registry
 * (lint/registry.hh — one translation unit per check under
 * src/lint/checks/), share one preprocessed per-file analysis
 * Context (lint/context.hh: stripped text, raw lines, a lexical
 * function/call index, built once and file-parallel), and are all
 * lexical (see lexer.hh) — no libclang dependency, so dcglint builds
 * anywhere the simulator builds and stays usable on a tree that does
 * not compile. `dcglint --list-checks` enumerates the registered
 * catalog; the per-check invariants are documented in ANALYSIS.md.
 *
 * Suppression layers, strict by default:
 *  - a `dcglint:allow(check-name)` comment on (or immediately above)
 *    the offending line waives one finding at the source, visibly;
 *  - a baseline file (--baseline=FILE; one `file: [check] message`
 *    entry per line, '#' comments) waives known findings centrally,
 *    so a new check can land strict while its backlog is burned
 *    down. Line numbers are not part of the match, so baselines
 *    survive unrelated edits.
 */

#ifndef DCG_LINT_LINT_HH
#define DCG_LINT_LINT_HH

#include <iosfwd>
#include <string>
#include <vector>

namespace dcg::lint {

struct Diagnostic
{
    std::string file;     ///< path relative to the lint root
    int line = 0;         ///< 1-based; 0 = whole-file/config finding
    std::string check;    ///< check name, e.g. "activity-counter"
    std::string message;
};

/** Machine-readable output selection for runDcglint(). */
enum class OutputFormat
{
    Text,   ///< "file:line: [check] message" lines + summary
    Json,   ///< {"findings": [...], "count": N}
    Sarif,  ///< SARIF 2.1.0 (one run, one rule per check)
};

struct LintOptions
{
    std::string root = ".";      ///< project root to lint
    bool requireAnchors = false; ///< missing anchor file = config error
    /** Empty = all checks; else names from registry checkNames(). */
    std::vector<std::string> checks;
    /** Empty = report everything; else only findings in these
     *  root-relative files (config errors always surface). The
     *  analysis itself stays tree-wide — cross-file invariants need
     *  the whole tree — only the report is filtered. */
    std::vector<std::string> onlyFiles;
    std::string baselineFile;    ///< empty = no baseline
    OutputFormat format = OutputFormat::Text;
};

/**
 * Run the selected checks over @p opts.root; diagnostics sorted by
 * (file, line, message). Unknown check names come back as "config"
 * diagnostics. dcglint:allow markers are already applied; the
 * baseline and onlyFiles filters are the driver's job (runDcglint).
 */
std::vector<Diagnostic> runChecks(const LintOptions &opts);

/** Convenience for tests: runChecks restricted to one check. */
std::vector<Diagnostic> runCheck(const std::string &name,
                                 const LintOptions &opts);

/** "file:line: [check] message" (line omitted when 0). */
std::string formatDiagnostic(const Diagnostic &d);

/** The line-number-free form baseline files match against. */
std::string baselineKey(const Diagnostic &d);

/** Serialize diagnostics as the --format=json document. */
std::string toJson(const std::vector<Diagnostic> &diags);

/** Serialize diagnostics as the --format=sarif document. */
std::string toSarif(const std::vector<Diagnostic> &diags);

/**
 * CLI driver shared by tools/dcglint.cc and the tests: runs checks,
 * applies the baseline and file filters, prints diagnostics to
 * @p out in opts.format. Returns the process exit code: 0 = clean,
 * 1 = findings, 2 = configuration error (bad root, unknown or empty
 * check name, unreadable baseline, or — with requireAnchors — a
 * missing anchor file).
 */
int runDcglint(const LintOptions &opts, std::ostream &out);

} // namespace dcg::lint

#endif // DCG_LINT_LINT_HH
