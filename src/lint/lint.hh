/**
 * @file
 * dcglint: project-specific static checks for the gating/energy
 * accounting invariants the simulator's correctness argument rests on.
 *
 * The deterministic-clock-gating claim (19.9 % power saving at ~0 %
 * IPC loss) is only as good as the wiring between the activity
 * counters the pipeline records, the power model that converts them
 * into energy, and the reporting layer that serializes them. These
 * checks make that wiring a build-time invariant instead of a code
 * review convention:
 *
 *  - activity-counter: every field of CycleActivity declared in
 *    src/pipeline/activity.hh must be written by the pipeline
 *    (src/pipeline/) and consumed by the energy-accounting side
 *    (src/power/ or src/gating/ — gating controllers feed the
 *    GateState the power model charges against). An orphaned counter
 *    means recorded activity that silently never reaches the power
 *    model, i.e. an energy-accounting hole.
 *
 *  - stat-report: every statistic registered on a StatRegistry
 *    (stats.counter("name", ...) and friends) must be listed in the
 *    stat catalog in src/sim/report.cc, which is what --capture /
 *    extraStats serialization documents. A stat missing from the
 *    catalog is invisible to the result schema.
 *
 *  - scheme-registry: every gating scheme registered in src/gating/
 *    (registerScheme({"name", ...)) must appear — backticked — in the
 *    gating-scheme table in EXPERIMENTS.md, so the catalog a user
 *    reads cannot drift from the one the binary serves. Stats the
 *    scheme registers are covered by stat-report like everyone
 *    else's.
 *
 *  - syscall-return: every fallible POSIX call in src/serve/ and
 *    tools/ must consume its return value (assignment, comparison,
 *    condition, or explicit (void) discard). close() is allowlisted.
 *
 *  - net-io: the raw socket I/O calls (read/write/recv/send/poll/
 *    accept/connect) may not be used in src/serve/ or tools/ outside
 *    src/serve/netio.hh — every call site goes through the EINTR-safe
 *    net::*Retry wrappers declared there, so signal handling and
 *    partial-write semantics cannot regress one call site at a time.
 *
 *  - naked-new: no `new` / `delete` expressions anywhere in src/ or
 *    tools/ (ownership goes through make_unique/make_shared or
 *    containers); deleted special member functions (= delete) are not
 *    flagged.
 *
 * All checks are lexical (see lexer.hh) — no libclang dependency —
 * and anchored on real paths in the tree; a check whose anchor is
 * missing reports nothing unless LintOptions::requireAnchors is set
 * (the mode CI and the repo ctest use), in which case it is a
 * configuration error.
 */

#ifndef DCG_LINT_LINT_HH
#define DCG_LINT_LINT_HH

#include <iosfwd>
#include <string>
#include <vector>

namespace dcg::lint {

struct Diagnostic
{
    std::string file;     ///< path relative to the lint root
    int line = 0;         ///< 1-based; 0 = whole-file/config finding
    std::string check;    ///< check name, e.g. "activity-counter"
    std::string message;
};

struct LintOptions
{
    std::string root = ".";      ///< project root to lint
    bool requireAnchors = false; ///< missing anchor file = config error
    /** Empty = all checks; else names from checkNames(). */
    std::vector<std::string> checks;
};

/** Registered check names, in execution order. */
const std::vector<std::string> &checkNames();

/// @name Individual checks (exposed for tests)
/// @{
std::vector<Diagnostic> checkActivityCounters(const LintOptions &opts);
std::vector<Diagnostic> checkStatsReported(const LintOptions &opts);
std::vector<Diagnostic> checkSchemeRegistry(const LintOptions &opts);
std::vector<Diagnostic> checkSyscallReturns(const LintOptions &opts);
std::vector<Diagnostic> checkNetIo(const LintOptions &opts);
std::vector<Diagnostic> checkNakedNew(const LintOptions &opts);
/// @}

/** Run the selected checks; diagnostics sorted by (file, line). */
std::vector<Diagnostic> runChecks(const LintOptions &opts);

/** "file:line: [check] message" (line omitted when 0). */
std::string formatDiagnostic(const Diagnostic &d);

/**
 * CLI driver shared by tools/dcglint.cc and the tests: runs checks,
 * prints diagnostics to @p out. Returns the process exit code:
 * 0 = clean, 1 = findings, 2 = configuration error (bad root, unknown
 * check name, or — with requireAnchors — a missing anchor file).
 */
int runDcglint(const LintOptions &opts, std::ostream &out);

} // namespace dcg::lint

#endif // DCG_LINT_LINT_HH
