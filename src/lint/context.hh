/**
 * @file
 * Shared per-file analysis context for dcglint checks.
 *
 * v1 checks each re-walked the tree, re-read every file and
 * re-stripped comments — six times over. The Context does that work
 * exactly once, file-parallel, and every registered check reuses it:
 *
 *  - FileRecord: one loaded file with its raw text, two stripped
 *    views (comments stripped / comments+strings stripped — both
 *    newline-preserving, so offsets map to real line numbers), the
 *    raw lines (for dcglint:allow(...) suppression markers), and the
 *    lexical function/call index.
 *
 *  - FunctionDef: one lexically recognized function definition —
 *    `Type Class::name(args) qualifiers { body }` — with its class
 *    qualifier, body span (offsets into FileRecord::bare) and the
 *    deduplicated names it calls, split into unqualified calls
 *    (`helper(...)`) and member calls (`obj.method(...)` /
 *    `ptr->method(...)`). This is what the thread-ownership check
 *    walks; it is deliberately lexical (no libclang — see lexer.hh),
 *    so inline class-body definitions carry no qualifier and
 *    template noise is tolerated, not parsed.
 *
 * Construction loads .cc/.hh/.cpp/.h under src/ and tools/ plus the
 * markdown anchors (EXPERIMENTS.md), preprocessing files in parallel
 * across hardware threads; the file list and all results are sorted
 * by path, so diagnostics stay deterministic regardless of thread
 * count.
 */

#ifndef DCG_LINT_CONTEXT_HH
#define DCG_LINT_CONTEXT_HH

#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "lint/lint.hh"

namespace dcg::lint {

/** One lexically recognized function definition (see file comment). */
struct FunctionDef
{
    std::string qualifier;  ///< "PeerPool" for PeerPool::f; "" if none
    std::string name;
    int line = 0;              ///< 1-based line of the name
    std::size_t bodyBegin = 0; ///< offset of '{' in FileRecord::bare
    std::size_t bodyEnd = 0;   ///< offset one past the matching '}'
    std::vector<std::string> unqualifiedCalls;  ///< sorted, deduped
    std::vector<std::string> memberCalls;       ///< sorted, deduped

    bool callsUnqualified(const std::string &n) const;
    bool callsMember(const std::string &n) const;
};

/** One loaded and preprocessed file. */
struct FileRecord
{
    std::string rel;   ///< path relative to the lint root ('/' seps)
    std::string raw;   ///< original bytes
    std::string code;  ///< comments stripped, strings kept
    std::string bare;  ///< comments and strings stripped
    std::vector<std::string> rawLines;   ///< for allow markers
    std::vector<FunctionDef> functions;  ///< lexical definition index

    /** Body text of @p f (a view into bare). */
    std::string_view body(const FunctionDef &f) const;
};

class Context
{
  public:
    /** Load and preprocess the tree named by @p opts.root. */
    explicit Context(const LintOptions &opts);

    Context(const Context &) = delete;
    Context &operator=(const Context &) = delete;

    const LintOptions &options() const { return opts_; }
    const std::filesystem::path &rootPath() const { return root_; }

    /** True when opts.root named a readable directory. */
    bool rootOk() const { return rootOk_; }

    /** All loaded files, sorted by rel path. */
    const std::vector<const FileRecord *> &files() const
    {
        return all_;
    }

    /**
     * Files whose rel path starts with @p relDir + '/', sorted.
     * Pass e.g. "src/serve" or "tools".
     */
    std::vector<const FileRecord *>
    filesUnder(std::string_view relDir) const;

    /** The record for root-relative @p rel, or nullptr. */
    const FileRecord *find(const std::string &rel) const;

    /**
     * True when every anchor in @p anchors resolves. Missing anchors
     * append a "config" Diagnostic to @p out when requireAnchors is
     * set (the driver skips the check either way — see registry.hh).
     */
    bool anchorsOk(const std::vector<std::string> &anchors,
                   const std::string &check,
                   std::vector<Diagnostic> &out) const;

    /**
     * True when the finding at @p rel:@p line is suppressed by a
     * `dcglint:allow(check)` marker on that raw line or the one
     * above it.
     */
    bool allowMarked(const std::string &rel, int line,
                     const std::string &check) const;

  private:
    void loadAll();

    LintOptions opts_;
    std::filesystem::path root_;
    bool rootOk_ = false;
    std::vector<std::unique_ptr<FileRecord>> files_;
    std::vector<const FileRecord *> all_;
    std::map<std::string, const FileRecord *, std::less<>> byRel_;
};

/** Build the lexical function/call index for one file (exposed for
 *  the lexer tests). @p bare is comments-and-strings-stripped text. */
std::vector<FunctionDef> indexFunctions(const std::string &bare);

} // namespace dcg::lint

#endif // DCG_LINT_CONTEXT_HH
