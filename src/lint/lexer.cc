#include "lint/lexer.hh"

#include <cctype>

namespace dcg::lint {

namespace {

/** True if src[pos] starts a raw string literal's R" introducer. */
bool
atRawStringIntro(const std::string &src, std::size_t pos)
{
    if (pos + 1 >= src.size() || src[pos] != 'R' || src[pos + 1] != '"')
        return false;
    // R must not be the tail of a longer identifier (e.g. FOOR"...").
    return pos == 0 || !isIdentChar(src[pos - 1]);
}

} // namespace

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

std::string
stripCode(const std::string &src, bool strip_strings)
{
    std::string out = src;
    enum class State {
        Code,
        LineComment,
        BlockComment,
        String,
        Char,
        RawString,
    } state = State::Code;

    std::string raw_delim;  // ")delim" terminator for raw strings
    for (std::size_t i = 0; i < src.size(); ++i) {
        const char c = src[i];
        switch (state) {
          case State::Code:
            if (c == '/' && i + 1 < src.size() && src[i + 1] == '/') {
                state = State::LineComment;
                out[i] = out[i + 1] = ' ';
                ++i;
            } else if (c == '/' && i + 1 < src.size() &&
                       src[i + 1] == '*') {
                state = State::BlockComment;
                out[i] = out[i + 1] = ' ';
                ++i;
            } else if (atRawStringIntro(src, i)) {
                raw_delim = ")";
                std::size_t j = i + 2;
                while (j < src.size() && src[j] != '(')
                    raw_delim += src[j++];
                raw_delim += '"';
                state = State::RawString;
                if (strip_strings) {
                    for (std::size_t k = i; k <= j && k < src.size(); ++k)
                        if (src[k] != '\n')
                            out[k] = ' ';
                }
                i = j;  // now inside the raw body
            } else if (c == '"') {
                state = State::String;
                if (strip_strings)
                    out[i] = ' ';
            } else if (c == '\'') {
                state = State::Char;
                if (strip_strings)
                    out[i] = ' ';
            }
            break;

          case State::LineComment:
            if (c == '\n')
                state = State::Code;
            else
                out[i] = ' ';
            break;

          case State::BlockComment:
            if (c == '*' && i + 1 < src.size() && src[i + 1] == '/') {
                out[i] = out[i + 1] = ' ';
                ++i;
                state = State::Code;
            } else if (c != '\n') {
                out[i] = ' ';
            }
            break;

          case State::String:
          case State::Char: {
            const char quote = state == State::String ? '"' : '\'';
            if (c == '\\' && i + 1 < src.size()) {
                if (strip_strings) {
                    out[i] = ' ';
                    if (src[i + 1] != '\n')
                        out[i + 1] = ' ';
                }
                ++i;
            } else if (c == quote) {
                if (strip_strings)
                    out[i] = ' ';
                state = State::Code;
            } else if (strip_strings && c != '\n') {
                out[i] = ' ';
            }
            break;
          }

          case State::RawString:
            if (c == ')' &&
                src.compare(i, raw_delim.size(), raw_delim) == 0) {
                if (strip_strings) {
                    for (std::size_t k = i; k < i + raw_delim.size(); ++k)
                        out[k] = ' ';
                }
                i += raw_delim.size() - 1;
                state = State::Code;
            } else if (strip_strings && c != '\n') {
                out[i] = ' ';
            }
            break;
        }
    }
    return out;
}

bool
containsWord(const std::string &text, const std::string &word)
{
    std::size_t pos = 0;
    while ((pos = text.find(word, pos)) != std::string::npos) {
        const bool left_ok = pos == 0 || !isIdentChar(text[pos - 1]);
        const std::size_t end = pos + word.size();
        const bool right_ok =
            end >= text.size() || !isIdentChar(text[end]);
        if (left_ok && right_ok)
            return true;
        pos += 1;
    }
    return false;
}

int
lineOfOffset(const std::string &text, std::size_t pos)
{
    int line = 1;
    for (std::size_t i = 0; i < pos && i < text.size(); ++i)
        if (text[i] == '\n')
            ++line;
    return line;
}

std::vector<std::string>
toLines(const std::string &text)
{
    std::vector<std::string> lines;
    std::size_t start = 0;
    while (start <= text.size()) {
        const std::size_t nl = text.find('\n', start);
        if (nl == std::string::npos) {
            lines.push_back(text.substr(start));
            break;
        }
        lines.push_back(text.substr(start, nl - start));
        start = nl + 1;
    }
    return lines;
}

std::string
trim(const std::string &s)
{
    std::size_t b = 0;
    std::size_t e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

} // namespace dcg::lint
