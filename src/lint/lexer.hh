/**
 * @file
 * Lightweight C++ lexing helpers for dcglint (src/lint/lint.hh).
 *
 * dcglint deliberately avoids libclang: the invariants it enforces are
 * lexical (identifier X must appear in directory Y, a call statement
 * must not discard its result), so comment/string-aware text scanning
 * is sufficient, dependency-free, and fast enough to run as a ctest.
 */

#ifndef DCG_LINT_LEXER_HH
#define DCG_LINT_LEXER_HH

#include <string>
#include <vector>

namespace dcg::lint {

/**
 * Return @p src with comment bodies — and, when @p strip_strings is
 * set, string/character literal bodies — replaced by spaces. Newlines
 * are preserved, so byte offsets map to the original line numbers.
 * Handles line and block comments, escape sequences, and raw string
 * literals R"delim(...)delim".
 */
std::string stripCode(const std::string &src, bool strip_strings);

/** True for characters that can appear in a C++ identifier. */
bool isIdentChar(char c);

/** Whole-word occurrence test on (already stripped) text. */
bool containsWord(const std::string &text, const std::string &word);

/** 1-based line number of byte offset @p pos in @p text. */
int lineOfOffset(const std::string &text, std::size_t pos);

/** Split into lines (newline not included). */
std::vector<std::string> toLines(const std::string &text);

/** Strip leading and trailing whitespace. */
std::string trim(const std::string &s);

} // namespace dcg::lint

#endif // DCG_LINT_LEXER_HH
