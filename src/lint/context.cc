#include "lint/context.hh"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <fstream>
#include <set>
#include <sstream>
#include <thread>

#include "lint/lexer.hh"

namespace fs = std::filesystem;

namespace dcg::lint {

namespace {

bool
readFile(const fs::path &p, std::string &out)
{
    std::ifstream is(p, std::ios::binary);
    if (!is)
        return false;
    std::ostringstream ss;
    ss << is.rdbuf();
    out = ss.str();
    return true;
}

bool
isSourceExt(const std::string &ext)
{
    return ext == ".cc" || ext == ".hh" || ext == ".cpp" || ext == ".h";
}

/** Collect source files under @p dir, recursively. */
void
collectSources(const fs::path &dir, std::vector<fs::path> &out)
{
    std::error_code ec;
    if (!fs::is_directory(dir, ec))
        return;
    for (fs::recursive_directory_iterator it(dir, ec), end;
         !ec && it != end; it.increment(ec)) {
        if (it->is_regular_file() &&
            isSourceExt(it->path().extension().string()))
            out.push_back(it->path());
    }
}

std::string
relToRoot(const fs::path &p, const fs::path &root)
{
    const std::string rel = p.lexically_relative(root).generic_string();
    return rel.empty() || rel.front() == '.' ? p.generic_string() : rel;
}

bool
isKeyword(const std::string &w)
{
    static const std::set<std::string> kw = {
        "if",     "for",      "while",   "switch",  "catch",
        "return", "sizeof",   "new",     "delete",  "throw",
        "else",   "do",       "case",    "alignof", "decltype",
        "static_assert",      "typeid",  "co_await", "co_return",
        "co_yield",
    };
    return kw.count(w) != 0;
}

/** Offset one past the brace/paren that matches @p open's partner. */
std::size_t
matchDelims(const std::string &text, std::size_t open, char lhs,
            char rhs)
{
    int depth = 0;
    for (std::size_t i = open; i < text.size(); ++i) {
        if (text[i] == lhs)
            ++depth;
        else if (text[i] == rhs && --depth == 0)
            return i + 1;
    }
    return text.size();
}

/** Scan a function body for called names (see FunctionDef docs). */
void
collectCalls(const std::string &bare, std::size_t begin,
             std::size_t end, std::set<std::string> &unqualified,
             std::set<std::string> &member)
{
    for (std::size_t i = begin; i < end; ++i) {
        if (!isIdentChar(bare[i]) ||
            (i > 0 && isIdentChar(bare[i - 1])))
            continue;
        std::size_t e = i;
        while (e < end && isIdentChar(bare[e]))
            ++e;
        const std::string word = bare.substr(i, e - i);
        std::size_t j = e;
        while (j < end &&
               std::isspace(static_cast<unsigned char>(bare[j])))
            ++j;
        if (j >= end || bare[j] != '(' || isKeyword(word)) {
            i = e;
            continue;
        }
        const bool afterDot = i > 0 && bare[i - 1] == '.';
        const bool afterArrow =
            i >= 2 && bare[i - 2] == '-' && bare[i - 1] == '>';
        const bool afterColons =
            i >= 2 && bare[i - 2] == ':' && bare[i - 1] == ':';
        if (afterDot || afterArrow)
            member.insert(word);
        else if (!afterColons)
            unqualified.insert(word);
        i = e;
    }
}

} // namespace

bool
FunctionDef::callsUnqualified(const std::string &n) const
{
    return std::binary_search(unqualifiedCalls.begin(),
                              unqualifiedCalls.end(), n);
}

bool
FunctionDef::callsMember(const std::string &n) const
{
    return std::binary_search(memberCalls.begin(), memberCalls.end(),
                              n);
}

std::string_view
FileRecord::body(const FunctionDef &f) const
{
    if (f.bodyBegin >= bare.size() || f.bodyEnd <= f.bodyBegin)
        return {};
    return std::string_view(bare).substr(f.bodyBegin,
                                         f.bodyEnd - f.bodyBegin);
}

std::vector<FunctionDef>
indexFunctions(const std::string &bare)
{
    std::vector<FunctionDef> defs;
    for (std::size_t i = 0; i < bare.size(); ++i) {
        if (!isIdentChar(bare[i]) ||
            (i > 0 && isIdentChar(bare[i - 1])))
            continue;
        std::size_t e = i;
        while (e < bare.size() && isIdentChar(bare[e]))
            ++e;
        std::string name = bare.substr(i, e - i);
        if (isKeyword(name)) {
            i = e;
            continue;
        }
        // Destructor definitions keep their '~' so ~Class is
        // distinguishable from the class name.
        std::size_t nameStart = i;
        if (i > 0 && bare[i - 1] == '~') {
            nameStart = i - 1;
            name.insert(name.begin(), '~');
        }

        std::size_t j = e;
        while (j < bare.size() &&
               std::isspace(static_cast<unsigned char>(bare[j])))
            ++j;
        if (j >= bare.size() || bare[j] != '(') {
            i = e;
            continue;
        }
        const std::size_t afterParams = matchDelims(bare, j, '(', ')');

        // Trailing declarator qualifiers before the body:
        // const/noexcept(...)/&/&&/override/final. Anything else
        // (';', ',', '=', ':', ...) means no definition here. A ':'
        // would be a constructor init-list — accepted.
        std::size_t k = afterParams;
        bool sawInitList = false;
        while (k < bare.size()) {
            if (std::isspace(static_cast<unsigned char>(bare[k]))) {
                ++k;
                continue;
            }
            if (bare[k] == '&') {
                ++k;
                continue;
            }
            if (bare[k] == ':' && !sawInitList &&
                (k + 1 >= bare.size() || bare[k + 1] != ':')) {
                // Constructor member-init list: skip to the body
                // brace at top level (parens/braces of member
                // initializers are balanced on the way).
                sawInitList = true;
                int depth = 0;
                ++k;
                while (k < bare.size()) {
                    const char c = bare[k];
                    if (c == '(' || c == '{') {
                        // A '{' at depth 0 is the body...
                        if (c == '{' && depth == 0)
                            break;
                        ++depth;
                    } else if (c == ')' || c == '}') {
                        --depth;
                    } else if (c == ';') {
                        break;  // not a definition after all
                    }
                    ++k;
                }
                continue;
            }
            if (isIdentChar(bare[k])) {
                std::size_t w = k;
                while (w < bare.size() && isIdentChar(bare[w]))
                    ++w;
                const std::string q = bare.substr(k, w - k);
                if (q == "const" || q == "noexcept" ||
                    q == "override" || q == "final" ||
                    q == "mutable" || q == "try") {
                    k = w;
                    if (q == "noexcept") {
                        std::size_t p = k;
                        while (p < bare.size() &&
                               std::isspace(static_cast<unsigned char>(
                                   bare[p])))
                            ++p;
                        if (p < bare.size() && bare[p] == '(')
                            k = matchDelims(bare, p, '(', ')');
                    }
                    continue;
                }
            }
            break;
        }
        if (k >= bare.size() || bare[k] != '{') {
            i = e;
            continue;
        }

        FunctionDef def;
        def.name = name;
        def.line = lineOfOffset(bare, nameStart);
        def.bodyBegin = k;
        def.bodyEnd = matchDelims(bare, k, '{', '}');

        // Class qualifier: the identifier before a '::' immediately
        // preceding the name ("PeerPool::post" -> "PeerPool";
        // namespace chains keep only the innermost segment, which is
        // the class for out-of-line member definitions).
        if (nameStart >= 2 && bare[nameStart - 1] == ':' &&
            bare[nameStart - 2] == ':') {
            std::size_t q = nameStart - 2;
            while (q > 0 && isIdentChar(bare[q - 1]))
                --q;
            def.qualifier = bare.substr(q, nameStart - 2 - q);
        }

        std::set<std::string> unqualified, member;
        collectCalls(bare, def.bodyBegin + 1, def.bodyEnd - 1,
                     unqualified, member);
        def.unqualifiedCalls.assign(unqualified.begin(),
                                    unqualified.end());
        def.memberCalls.assign(member.begin(), member.end());
        defs.push_back(std::move(def));

        // Continue inside the body: nested lambdas rarely match the
        // name(+params+brace) pattern, and bodies can contain local
        // structs with methods worth indexing.
        i = k;
    }
    return defs;
}

Context::Context(const LintOptions &opts) : opts_(opts), root_(opts.root)
{
    std::error_code ec;
    rootOk_ = fs::is_directory(root_, ec) && !ec;
    if (rootOk_)
        loadAll();
}

void
Context::loadAll()
{
    std::vector<fs::path> paths;
    collectSources(root_ / "src", paths);
    collectSources(root_ / "tools", paths);
    std::sort(paths.begin(), paths.end());

    // Markdown anchors are loaded raw (no C++ stripping or indexing).
    std::vector<fs::path> mdPaths;
    for (const char *md : {"EXPERIMENTS.md", "ANALYSIS.md"}) {
        const fs::path p = root_ / md;
        std::error_code ec;
        if (fs::is_regular_file(p, ec))
            mdPaths.push_back(p);
    }

    files_.resize(paths.size() + mdPaths.size());

    // File-parallel preprocessing: each worker claims the next index;
    // results land at their slot, so order stays deterministic.
    std::atomic<std::size_t> next{0};
    auto work = [&] {
        for (std::size_t i = next.fetch_add(1); i < paths.size();
             i = next.fetch_add(1)) {
            std::string raw;
            if (!readFile(paths[i], raw))
                continue;
            auto rec = std::make_unique<FileRecord>();
            rec->rel = relToRoot(paths[i], root_);
            rec->raw = std::move(raw);
            rec->code = stripCode(rec->raw, false);
            rec->bare = stripCode(rec->raw, true);
            rec->rawLines = toLines(rec->raw);
            rec->functions = indexFunctions(rec->bare);
            files_[i] = std::move(rec);
        }
    };
    const unsigned hw = std::thread::hardware_concurrency();
    const std::size_t nThreads =
        std::min<std::size_t>(std::max(1u, hw),
                              std::max<std::size_t>(1, paths.size()));
    if (nThreads <= 1) {
        work();
    } else {
        std::vector<std::thread> workers;
        workers.reserve(nThreads);
        for (std::size_t t = 0; t < nThreads; ++t)
            workers.emplace_back(work);
        for (std::thread &t : workers)
            t.join();
    }

    for (std::size_t i = 0; i < mdPaths.size(); ++i) {
        std::string raw;
        if (!readFile(mdPaths[i], raw))
            continue;
        auto rec = std::make_unique<FileRecord>();
        rec->rel = relToRoot(mdPaths[i], root_);
        rec->raw = std::move(raw);
        rec->code = rec->raw;
        rec->bare = rec->raw;
        rec->rawLines = toLines(rec->raw);
        files_[paths.size() + i] = std::move(rec);
    }

    for (const auto &rec : files_) {
        if (!rec)
            continue;  // unreadable file: skip, as v1 did
        all_.push_back(rec.get());
        byRel_.emplace(rec->rel, rec.get());
    }
}

std::vector<const FileRecord *>
Context::filesUnder(std::string_view relDir) const
{
    std::string prefix(relDir);
    if (!prefix.empty() && prefix.back() != '/')
        prefix += '/';
    std::vector<const FileRecord *> out;
    for (const FileRecord *rec : all_)
        if (rec->rel.rfind(prefix, 0) == 0)
            out.push_back(rec);
    return out;
}

const FileRecord *
Context::find(const std::string &rel) const
{
    const auto it = byRel_.find(rel);
    return it == byRel_.end() ? nullptr : it->second;
}

bool
Context::anchorsOk(const std::vector<std::string> &anchors,
                   const std::string &check,
                   std::vector<Diagnostic> &out) const
{
    bool ok = true;
    for (const std::string &anchor : anchors) {
        if (find(anchor))
            continue;
        ok = false;
        if (opts_.requireAnchors) {
            out.push_back({anchor, 0, "config",
                           "anchor file missing: " + anchor +
                               " (required for check '" + check +
                               "')"});
        }
    }
    return ok;
}

bool
Context::allowMarked(const std::string &rel, int line,
                     const std::string &check) const
{
    if (line <= 0)
        return false;
    const FileRecord *rec = find(rel);
    if (!rec)
        return false;
    const std::string marker = "dcglint:allow(" + check + ")";
    const auto marked = [&](int ln) {
        return ln >= 1 &&
               ln <= static_cast<int>(rec->rawLines.size()) &&
               rec->rawLines[ln - 1].find(marker) != std::string::npos;
    };
    return marked(line) || marked(line - 1);
}

} // namespace dcg::lint
