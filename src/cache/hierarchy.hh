/**
 * @file
 * The Table-1 memory hierarchy bundled as one object: split L1 I/D over
 * a unified L2 over main memory.
 */

#ifndef DCG_CACHE_HIERARCHY_HH
#define DCG_CACHE_HIERARCHY_HH

#include <memory>

#include "cache/cache.hh"
#include "common/stats.hh"

namespace dcg {

struct HierarchyConfig
{
    CacheGeometry l1i{64 * 1024, 2, 32, 1};
    CacheGeometry l1d{64 * 1024, 2, 32, 2};
    CacheGeometry l2{2 * 1024 * 1024, 8, 64, 12};
    Cycle memLatency = 100;
};

class MemoryHierarchy
{
  public:
    MemoryHierarchy(const HierarchyConfig &config, StatRegistry &stats);

    Cache &icache() { return *l1i; }
    Cache &dcache() { return *l1d; }
    Cache &l2cache() { return *l2; }
    MainMemory &memory() { return *mem; }

  private:
    std::unique_ptr<MainMemory> mem;
    std::unique_ptr<Cache> l2;
    std::unique_ptr<Cache> l1i;
    std::unique_ptr<Cache> l1d;
};

} // namespace dcg

#endif // DCG_CACHE_HIERARCHY_HH
