#include "cache/cache.hh"

#include <algorithm>

#include "common/log.hh"

namespace dcg {

MainMemory::MainMemory(Cycle latency, StatRegistry &stats,
                       const std::string &name)
    : lat(latency),
      accesses(stats.counter(name + ".accesses", "main memory accesses"))
{
}

Cycle
MainMemory::access(Addr addr, bool is_write, Cycle now)
{
    (void)addr;
    (void)is_write;
    (void)now;
    ++accesses;
    return lat;
}

Cache::Cache(const std::string &name, const CacheGeometry &geom_,
             MemLevel *next, StatRegistry &stats)
    : geom(geom_),
      nextLevel(next),
      accesses(stats.counter(name + ".accesses", "cache accesses")),
      misses(stats.counter(name + ".misses", "cache misses")),
      writebacks(stats.counter(name + ".writebacks",
                               "dirty lines evicted")),
      prefetches(stats.counter(name + ".prefetches",
                               "next-line prefetch fills")),
      mshrStalls(stats.counter(name + ".mshr_stalls",
                               "misses delayed by full MSHRs"))
{
    DCG_ASSERT(nextLevel, "cache needs a next level");
    DCG_ASSERT(geom.lineBytes && !(geom.lineBytes & (geom.lineBytes - 1)),
               "line size must be a power of two");
    DCG_ASSERT(geom.assoc >= 1, "bad associativity");
    const std::uint64_t num_lines = geom.sizeBytes / geom.lineBytes;
    DCG_ASSERT(num_lines % geom.assoc == 0, "size/assoc mismatch");
    numSets = static_cast<unsigned>(num_lines / geom.assoc);
    DCG_ASSERT(numSets && !(numSets & (numSets - 1)),
               "set count must be a power of two");
    lines.resize(num_lines);
}

unsigned
Cache::setIndex(Addr addr) const
{
    return static_cast<unsigned>(addr / geom.lineBytes) & (numSets - 1);
}

Addr
Cache::tagOf(Addr addr) const
{
    return addr / geom.lineBytes / numSets;
}

Addr
Cache::lineAddr(Addr addr) const
{
    return addr & ~static_cast<Addr>(geom.lineBytes - 1);
}

bool
Cache::contains(Addr addr) const
{
    const unsigned base = setIndex(addr) * geom.assoc;
    const Addr tag = tagOf(addr);
    for (unsigned w = 0; w < geom.assoc; ++w) {
        const Line &l = lines[base + w];
        if (l.valid && l.tag == tag)
            return true;
    }
    return false;
}

Cycle
Cache::access(Addr addr, bool is_write, Cycle now)
{
    ++accesses;
    const unsigned base = setIndex(addr) * geom.assoc;
    const Addr tag = tagOf(addr);

    Line *victim = &lines[base];
    for (unsigned w = 0; w < geom.assoc; ++w) {
        Line &l = lines[base + w];
        if (l.valid && l.tag == tag) {
            l.lastUse = ++useClock;
            l.dirty |= is_write;
            // A hit on a line whose fill is still in flight waits for
            // the fill (MSHR merge). Once every scheduled fill has
            // landed the lookup can't change the latency, so skip it.
            if (lastFillDone > now) {
                if (auto it = inflight.find(lineAddr(addr));
                    it != inflight.end()) {
                    if (it->second > now)
                        return geom.hitLatency + (it->second - now);
                    inflight.erase(it);
                }
            }
            return geom.hitLatency;
        }
        if (!l.valid) {
            victim = &l;
        } else if (victim->valid && l.lastUse < victim->lastUse) {
            victim = &l;
        }
    }

    // Miss: fetch from the next level (write-allocate for stores).
    ++misses;
    if (victim->valid && victim->dirty)
        ++writebacks;  // writeback bandwidth is not a bottleneck here

    const Cycle queue = mshrDelay(now);
    const Cycle fill = nextLevel->access(lineAddr(addr), false,
                                         now + queue + geom.hitLatency);
    victim->valid = true;
    victim->dirty = is_write;
    victim->tag = tag;
    victim->lastUse = ++useClock;

    const Cycle total = geom.hitLatency + queue + fill;
    inflight[lineAddr(addr)] = now + total;
    lastFillDone = std::max(lastFillDone, now + total);
    if (inflight.size() > 4096) {
        // Opportunistic cleanup of completed fills.
        for (auto it = inflight.begin(); it != inflight.end();) {
            it = it->second <= now ? inflight.erase(it) : std::next(it);
        }
    }

    if (geom.nextLinePrefetch) {
        // Tagged next-line prefetch: pull the successor line alongside
        // the demand fill; the requester is not charged.
        const Addr next_line = lineAddr(addr) + geom.lineBytes;
        if (!contains(next_line)) {
            ++prefetches;
            const Cycle pf = nextLevel->access(next_line, false,
                                               now + geom.hitLatency);
            installLine(next_line, false, now + geom.hitLatency + pf);
        }
    }
    return total;
}

void
Cache::warmLine(Addr addr)
{
    const unsigned base = setIndex(addr) * geom.assoc;
    const Addr tag = tagOf(addr);
    Line *victim = &lines[base];
    for (unsigned w = 0; w < geom.assoc; ++w) {
        Line &l = lines[base + w];
        if (l.valid && l.tag == tag) {
            l.lastUse = ++useClock;
            return;
        }
        if (!l.valid) {
            victim = &l;
            break;
        }
        if (victim->valid && l.lastUse < victim->lastUse)
            victim = &l;
    }
    victim->valid = true;
    victim->dirty = false;
    victim->tag = tag;
    victim->lastUse = ++useClock;
}

void
Cache::installLine(Addr addr, bool dirty, Cycle ready_at)
{
    const unsigned base = setIndex(addr) * geom.assoc;
    const Addr tag = tagOf(addr);
    Line *victim = &lines[base];
    for (unsigned w = 0; w < geom.assoc; ++w) {
        Line &l = lines[base + w];
        if (l.valid && l.tag == tag)
            return;  // already present
        if (!l.valid) {
            victim = &l;
            break;
        }
        if (victim->valid && l.lastUse < victim->lastUse)
            victim = &l;
    }
    if (victim->valid && victim->dirty)
        ++writebacks;
    victim->valid = true;
    victim->dirty = dirty;
    victim->tag = tag;
    // Prefetched lines install as LRU-adjacent so useless prefetches
    // leave quickly; a demand hit will promote them.
    victim->lastUse = ++useClock;
    inflight[lineAddr(addr)] = ready_at;
    lastFillDone = std::max(lastFillDone, ready_at);
}

Cycle
Cache::mshrDelay(Cycle now)
{
    if (geom.mshrs == 0)
        return 0;
    unsigned outstanding = 0;
    Cycle earliest = kCycleNever;
    for (auto it = inflight.begin(); it != inflight.end();) {
        if (it->second <= now) {
            it = inflight.erase(it);
            continue;
        }
        ++outstanding;
        earliest = std::min(earliest, it->second);
        ++it;
    }
    if (outstanding < geom.mshrs)
        return 0;
    ++mshrStalls;
    return earliest > now ? earliest - now : 0;
}

double
Cache::missRate() const
{
    const double n = static_cast<double>(accesses.value());
    return n > 0 ? static_cast<double>(misses.value()) / n : 0.0;
}

} // namespace dcg
