/**
 * @file
 * Set-associative cache model with LRU replacement and latency
 * composition across levels (Table 1: 64 KB 2-way 2-cycle L1 I/D,
 * 2 MB 8-way 12-cycle L2, 100-cycle main memory).
 *
 * The model is access-latency oriented: each access returns the number
 * of cycles until its data is available. Misses to a line that is
 * already in flight merge with the outstanding fill (an MSHR-style
 * behaviour) instead of paying the full miss penalty again.
 */

#ifndef DCG_CACHE_CACHE_HH
#define DCG_CACHE_CACHE_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace dcg {

/** Abstract memory level that can service an access. */
class MemLevel
{
  public:
    virtual ~MemLevel() = default;

    /**
     * Service an access.
     * @param addr   byte address
     * @param is_write true for stores
     * @param now    current cycle (for in-flight miss merging)
     * @return cycles until the data is available
     */
    virtual Cycle access(Addr addr, bool is_write, Cycle now) = 0;
};

/** Fixed-latency terminal level (Table 1: infinite capacity, 100cy). */
class MainMemory : public MemLevel
{
  public:
    MainMemory(Cycle latency, StatRegistry &stats,
               const std::string &name = "mem");

    Cycle access(Addr addr, bool is_write, Cycle now) override;

    Cycle latency() const { return lat; }

  private:
    Cycle lat;
    Counter &accesses;
};

struct CacheGeometry
{
    std::uint64_t sizeBytes;
    unsigned assoc;
    unsigned lineBytes;
    Cycle hitLatency;

    /**
     * Miss-status holding registers: outstanding fills beyond this
     * count queue behind the earliest one. 0 = unlimited.
     */
    unsigned mshrs = 8;

    /** Tagged next-line prefetch on demand misses. */
    bool nextLinePrefetch = false;
};

class Cache : public MemLevel
{
  public:
    /**
     * @param name  stat prefix, e.g. "dcache"
     * @param geom  geometry parameters
     * @param next  next level (not owned); must outlive this cache
     */
    Cache(const std::string &name, const CacheGeometry &geom,
          MemLevel *next, StatRegistry &stats);

    Cycle access(Addr addr, bool is_write, Cycle now) override;

    /** Probe without side effects (no LRU update, no fill). */
    bool contains(Addr addr) const;

    /**
     * Install a line as already-resident without latency, statistics
     * or MSHR state — fast-forward warm-up only (see
     * Simulator::prewarmCaches).
     */
    void warmLine(Addr addr);

    double missRate() const;
    const CacheGeometry &geometry() const { return geom; }

    std::uint64_t numAccesses() const { return accesses.value(); }
    std::uint64_t numMisses() const { return misses.value(); }
    std::uint64_t numPrefetches() const { return prefetches.value(); }

  private:
    struct Line
    {
        bool valid = false;
        bool dirty = false;
        Addr tag = 0;
        std::uint64_t lastUse = 0;
    };

    unsigned setIndex(Addr addr) const;
    Addr tagOf(Addr addr) const;
    Addr lineAddr(Addr addr) const;

    /** Install @p addr's line without charging the requester. */
    void installLine(Addr addr, bool dirty, Cycle ready_at);

    /** Outstanding-fill housekeeping; returns MSHR queueing delay. */
    Cycle mshrDelay(Cycle now);

    CacheGeometry geom;
    MemLevel *nextLevel;
    std::vector<Line> lines;
    unsigned numSets;
    std::uint64_t useClock = 0;

    /** Outstanding fills: line address -> cycle the data arrives. */
    std::unordered_map<Addr, Cycle> inflight;

    /**
     * Latest scheduled fill-arrival cycle: once `now` passes it, no
     * fill is pending and the hit path can skip the inflight lookup
     * (the map may still hold completed entries, but a hit on one
     * returns plain hitLatency either way).
     */
    Cycle lastFillDone = 0;

    Counter &accesses;
    Counter &misses;
    Counter &writebacks;
    Counter &prefetches;
    Counter &mshrStalls;
};

} // namespace dcg

#endif // DCG_CACHE_CACHE_HH
