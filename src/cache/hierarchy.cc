#include "cache/hierarchy.hh"

namespace dcg {

MemoryHierarchy::MemoryHierarchy(const HierarchyConfig &config,
                                 StatRegistry &stats)
{
    mem = std::make_unique<MainMemory>(config.memLatency, stats);
    l2 = std::make_unique<Cache>("l2", config.l2, mem.get(), stats);
    l1i = std::make_unique<Cache>("icache", config.l1i, l2.get(), stats);
    l1d = std::make_unique<Cache>("dcache", config.l1d, l2.get(), stats);
}

} // namespace dcg
