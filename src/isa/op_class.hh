/**
 * @file
 * Micro-operation classes, functional-unit types and the latency model.
 *
 * The synthetic workload model does not need architectural semantics —
 * only the resource class, latency and dependency structure of each
 * dynamic instruction, which is exactly what drives clock-gating
 * opportunity in the paper.
 */

#ifndef DCG_ISA_OP_CLASS_HH
#define DCG_ISA_OP_CLASS_HH

#include <cstdint>
#include <string>

namespace dcg {

/** Dynamic instruction class. */
enum class OpClass : std::uint8_t
{
    IntAlu,     ///< add/sub/logic/shift/compare, also branch condition
    IntMult,    ///< integer multiply
    IntDiv,     ///< integer divide (unpipelined)
    FpAlu,      ///< FP add/sub/convert/compare
    FpMult,     ///< FP multiply
    FpDiv,      ///< FP divide/sqrt (unpipelined)
    Load,       ///< memory read (address generation + cache access)
    Store,      ///< memory write (address generation; data at commit)
    Branch,     ///< conditional/unconditional control transfer
    NumOpClasses
};

inline constexpr unsigned kNumOpClasses =
    static_cast<unsigned>(OpClass::NumOpClasses);

/** Execution-unit pool type. Matches the Table-1 configuration. */
enum class FuType : std::uint8_t
{
    IntAluUnit,    ///< integer ALUs (also used by branches and AGEN)
    IntMulDivUnit, ///< integer multiply/divide units
    FpAluUnit,     ///< FP adders
    FpMulDivUnit,  ///< FP multiply/divide units
    NumFuTypes
};

inline constexpr unsigned kNumFuTypes =
    static_cast<unsigned>(FuType::NumFuTypes);

/** Per-op-class execution timing. */
struct OpTiming
{
    unsigned latency;    ///< cycles from start of execute to result
    unsigned issueRate;  ///< cycles before the same unit can start again
};

/** Timing (latency, initiation interval) for an op class. */
OpTiming opTiming(OpClass cls);

/** The functional-unit pool an op class executes on. */
FuType opFuType(OpClass cls);

/** True for loads and stores. */
bool isMemOp(OpClass cls);

/** True for classes that write a register result onto the result bus. */
bool writesResult(OpClass cls);

/** True for FP computation classes. */
bool isFpOp(OpClass cls);

const char *opClassName(OpClass cls);
const char *fuTypeName(FuType type);

} // namespace dcg

#endif // DCG_ISA_OP_CLASS_HH
