/**
 * @file
 * The dynamic micro-operation record produced by the trace generators
 * and consumed by the out-of-order core.
 */

#ifndef DCG_ISA_MICRO_OP_HH
#define DCG_ISA_MICRO_OP_HH

#include <cstdint>

#include "common/types.hh"
#include "isa/op_class.hh"

namespace dcg {

/** Maximum register source operands per micro-op. */
inline constexpr unsigned kMaxSrcs = 2;

/**
 * One dynamic instruction.
 *
 * Register dependences are encoded as *distances*: srcDist[i] == d means
 * the i-th source is produced by the d-th previous instruction that
 * writes a result (d >= 1). Distance 0 means the operand is already
 * architecturally ready (no in-flight producer).
 */
struct MicroOp
{
    OpClass cls = OpClass::IntAlu;
    std::uint8_t numSrcs = 0;
    std::uint32_t srcDist[kMaxSrcs] = {0, 0};

    /** Instruction address (synthetic); used by the branch predictor. */
    Addr pc = 0;

    /** Branch fields (valid when cls == Branch). */
    bool taken = false;
    Addr target = 0;

    /** Effective address (valid for Load/Store). */
    Addr effAddr = 0;

    bool isBranch() const { return cls == OpClass::Branch; }
    bool isLoad() const { return cls == OpClass::Load; }
    bool isStore() const { return cls == OpClass::Store; }
    bool isMem() const { return isMemOp(cls); }
};

} // namespace dcg

#endif // DCG_ISA_MICRO_OP_HH
