/**
 * @file
 * Abstract dynamic-instruction source consumed by the core's fetch
 * stage. TraceGenerator is the production implementation; tests supply
 * scripted sequences.
 */

#ifndef DCG_ISA_INST_SOURCE_HH
#define DCG_ISA_INST_SOURCE_HH

#include "isa/micro_op.hh"

namespace dcg {

class InstSource
{
  public:
    virtual ~InstSource() = default;

    /** Produce the next dynamic instruction (endless stream). */
    virtual MicroOp next() = 0;
};

} // namespace dcg

#endif // DCG_ISA_INST_SOURCE_HH
