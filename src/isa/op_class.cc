#include "isa/op_class.hh"

#include "common/log.hh"

namespace dcg {

OpTiming
opTiming(OpClass cls)
{
    // SimpleScalar-style default timings (latency, initiation interval).
    switch (cls) {
      case OpClass::IntAlu:  return {1, 1};
      case OpClass::IntMult: return {3, 1};
      case OpClass::IntDiv:  return {20, 19};   // unpipelined
      case OpClass::FpAlu:   return {2, 1};
      case OpClass::FpMult:  return {4, 1};
      case OpClass::FpDiv:   return {12, 12};   // unpipelined
      case OpClass::Load:    return {1, 1};     // AGEN; cache adds latency
      case OpClass::Store:   return {1, 1};     // AGEN only at execute
      case OpClass::Branch:  return {1, 1};
      default: break;
    }
    panic("opTiming: bad op class");
}

FuType
opFuType(OpClass cls)
{
    switch (cls) {
      case OpClass::IntAlu:
      case OpClass::Load:
      case OpClass::Store:
      case OpClass::Branch:
        // Address generation and branch resolution use the integer ALUs,
        // as in sim-outorder.
        return FuType::IntAluUnit;
      case OpClass::IntMult:
      case OpClass::IntDiv:
        return FuType::IntMulDivUnit;
      case OpClass::FpAlu:
        return FuType::FpAluUnit;
      case OpClass::FpMult:
      case OpClass::FpDiv:
        return FuType::FpMulDivUnit;
      default: break;
    }
    panic("opFuType: bad op class");
}

bool
isMemOp(OpClass cls)
{
    return cls == OpClass::Load || cls == OpClass::Store;
}

bool
writesResult(OpClass cls)
{
    return cls != OpClass::Store && cls != OpClass::Branch;
}

bool
isFpOp(OpClass cls)
{
    return cls == OpClass::FpAlu || cls == OpClass::FpMult ||
           cls == OpClass::FpDiv;
}

const char *
opClassName(OpClass cls)
{
    switch (cls) {
      case OpClass::IntAlu:  return "IntAlu";
      case OpClass::IntMult: return "IntMult";
      case OpClass::IntDiv:  return "IntDiv";
      case OpClass::FpAlu:   return "FpAlu";
      case OpClass::FpMult:  return "FpMult";
      case OpClass::FpDiv:   return "FpDiv";
      case OpClass::Load:    return "Load";
      case OpClass::Store:   return "Store";
      case OpClass::Branch:  return "Branch";
      default: break;
    }
    return "?";
}

const char *
fuTypeName(FuType type)
{
    switch (type) {
      case FuType::IntAluUnit:    return "IntAlu";
      case FuType::IntMulDivUnit: return "IntMulDiv";
      case FuType::FpAluUnit:     return "FpAlu";
      case FuType::FpMulDivUnit:  return "FpMulDiv";
      default: break;
    }
    return "?";
}

} // namespace dcg
