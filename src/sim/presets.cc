#include "sim/presets.hh"

#include <ostream>

namespace dcg {

SimConfig
table1Config(const std::string &scheme)
{
    SimConfig cfg;  // defaults throughout the tree ARE Table 1
    cfg.scheme = scheme;
    return cfg;
}

SimConfig
deepPipelineConfig(const std::string &scheme)
{
    SimConfig cfg = table1Config(scheme);
    cfg.core.depth = deepPipeline();
    return cfg;
}

void
printConfig(const SimConfig &cfg, std::ostream &os)
{
    const CoreConfig &c = cfg.core;
    os << "Processor:\n"
       << "  " << c.issueWidth << "-way issue, " << c.windowSize
       << "-entry window, " << c.lsqSize << "-entry load/store queue\n"
       << "  " << c.fuCount[0] << " integer ALUs, " << c.fuCount[1]
       << " integer multiply/divide units,\n"
       << "  " << c.fuCount[2] << " floating point ALUs, "
       << c.fuCount[3] << " floating point multiply/divide units\n"
       << "  " << c.dcachePorts << " D-cache ports, "
       << c.numResultBuses << " result buses, "
       << c.depth.totalStages() << "-stage pipeline\n";

    const BranchPredictorConfig &b = cfg.bpred;
    os << "Branch prediction:\n"
       << "  2-level, " << b.l1Entries << "-entry first level, "
       << b.l2Entries << "-entry second level, " << b.historyBits
       << "-bit history;\n"
       << "  " << b.rasEntries << "-entry RAS, " << b.btbEntries
       << "-entry " << b.btbAssoc << "-way BTB\n";

    const HierarchyConfig &m = cfg.mem;
    os << "Caches:\n"
       << "  " << m.l1d.sizeBytes / 1024 << "KB " << m.l1d.assoc
       << "-way " << m.l1d.hitLatency << "-cycle D-L1, "
       << m.l1i.sizeBytes / 1024 << "KB " << m.l1i.assoc << "-way "
       << m.l1i.hitLatency << "-cycle I-L1,\n"
       << "  " << m.l2.sizeBytes / (1024 * 1024) << "MB " << m.l2.assoc
       << "-way " << m.l2.hitLatency << "-cycle L2, both LRU\n";

    os << "Main memory:\n"
       << "  Infinite capacity, " << m.memLatency << " cycle latency\n";

    const Technology &t = cfg.tech;
    os << "Technology:\n"
       << "  " << t.vdd << "V, " << t.frequencyGHz
       << "GHz, Wattch-style 0.18um capacitance model\n";
}

} // namespace dcg
