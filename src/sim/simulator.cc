#include "sim/simulator.hh"

#include <ostream>

#include "common/log.hh"
#include "common/options.hh"
#include "gating/registry.hh"

namespace dcg {

Simulator::Simulator(const Profile &profile, const SimConfig &config)
    : cfg(config), prof(profile)
{
    genP = std::make_unique<TraceGenerator>(prof, cfg.seed);
    memP = std::make_unique<MemoryHierarchy>(cfg.mem, statsP);
    bpredP = std::make_unique<BranchPredictor>(cfg.bpred, statsP);
    coreP = std::make_unique<Core>(cfg.core, *genP, *memP, *bpredP,
                                   statsP);
    powerP = std::make_unique<PowerModel>(cfg.core, cfg.tech, statsP,
                                          &memP->l2cache());
    policyP = gating::makePolicy(cfg, statsP);
}

Simulator::~Simulator() = default;

void
Simulator::prewarmCaches()
{
    // The paper fast-forwards 2 billion instructions before measuring,
    // which leaves the code footprint and the hot data region resident.
    // Our synthetic workloads are stationary, so the equivalent is to
    // install those lines directly; the statistics reset after warm-up
    // discards the artificial accesses.
    const Addr iline = cfg.mem.l1i.lineBytes;
    const Addr l2line = cfg.mem.l2.lineBytes;
    for (Addr a = 0; a < prof.codeFootprintBytes; a += iline)
        memP->icache().warmLine(TraceGenerator::kCodeBase + a);
    for (Addr a = 0; a < prof.codeFootprintBytes; a += l2line)
        memP->l2cache().warmLine(TraceGenerator::kCodeBase + a);

    const Addr dline = cfg.mem.l1d.lineBytes;
    for (Addr a = 0; a < prof.memory.stackBytes; a += dline)
        memP->dcache().warmLine(TraceGenerator::kDataBase + a);

    // Stride-stream arrays (contiguous from the stream base; see
    // TraceGenerator::buildStreams).
    const Addr stream_base = TraceGenerator::kDataBase + 0x0100'0000;
    for (Addr a = 0; a < prof.memory.strideRegionBytes; a += dline)
        memP->dcache().warmLine(stream_base + a);
    for (Addr a = 0; a < prof.memory.strideRegionBytes; a += l2line)
        memP->l2cache().warmLine(stream_base + a);

    // The pointer region is part of the resident working set only when
    // it fits in the L2; bigger regions (mcf, lucas) miss by design.
    const Addr rand_base = TraceGenerator::kDataBase + 0x4000'0000;
    if (prof.memory.randomRegionBytes <= cfg.mem.l2.sizeBytes) {
        for (Addr a = 0; a < prof.memory.randomRegionBytes; a += l2line)
            memP->l2cache().warmLine(rand_base + a);
    }
}

void
Simulator::step()
{
    if (cfg.skipAhead) {
        if (const Cycle k = coreP->idleSkipAvailable()) {
            // The window is provably all-idle: charge its energy
            // through the scheme's bulk hook and jump the core. Zero
            // activity means zero utilisation contributions.
            policyP->skipIdle(*coreP, k, *powerP);
            coreP->skipIdle(k);
            measuredCycles += k;
            return;
        }
    }

    policyP->beginCycle(*coreP);
    coreP->tick();
    const CycleActivity &act = coreP->activity();
    const GateState gates = policyP->gates(act);
    powerP->tick(act, gates);

    // Utilisation bookkeeping (measured window only; reset clears it).
    intUnitBusySum += act.fuBusyCount(FuType::IntAluUnit) +
                      act.fuBusyCount(FuType::IntMulDivUnit);
    fpUnitBusySum += act.fuBusyCount(FuType::FpAluUnit) +
                     act.fuBusyCount(FuType::FpMulDivUnit);
    unsigned gateable_flux = 0;
    for (unsigned p = 0; p < kNumLatchPhases; ++p) {
        if (latchPhaseGateable(static_cast<LatchPhase>(p)))
            gateable_flux += act.latchFlux[p];
    }
    latchFluxSum += gateable_flux;
    portUseSum += act.dcachePortsUsed;
    busUseSum += act.resultBusUsed;
    ++measuredCycles;
}

void
Simulator::resetMeasurement()
{
    statsP.resetAll();
    // The flat counter block must be zeroed with the registry: a later
    // fold would otherwise resurrect warm-up values resetAll discarded.
    coreP->resetStats();
    powerP->reset();
    intUnitBusySum = 0;
    fpUnitBusySum = 0;
    latchFluxSum = 0;
    portUseSum = 0;
    busUseSum = 0;
    measuredCycles = 0;
}

void
Simulator::run(std::uint64_t instructions, std::uint64_t warmup)
{
    const std::uint64_t cycle_cap =
        (instructions + warmup) * 100 + 1'000'000;

    prewarmCaches();
    while (coreP->committedInsts() < warmup) {
        step();
        if (coreP->cycle() > cycle_cap)
            fatal("simulation deadlock during warm-up (",
                  coreP->committedInsts(), " committed)");
    }
    resetMeasurement();

    while (coreP->committedInsts() < instructions) {
        step();
        if (coreP->cycle() > cycle_cap)
            fatal("simulation deadlock (", coreP->committedInsts(),
                  " committed)");
    }
}

RunResult
Simulator::result() const
{
    // Fold the hot-path counter blocks into the registry so formulas
    // (IPC, average power) evaluate against current values.
    coreP->foldStats();
    powerP->foldStats();

    RunResult r;
    r.benchmark = prof.name;
    r.scheme = policyP->name();
    r.instructions = coreP->committedInsts();
    r.cycles = measuredCycles;
    r.ipc = measuredCycles
        ? static_cast<double>(r.instructions) /
          static_cast<double>(measuredCycles)
        : 0.0;

    r.totalEnergyPJ = powerP->totalEnergyPJ();
    r.avgPowerW = powerP->averagePowerW();
    for (unsigned c = 0; c < kNumPowerComponents; ++c)
        r.componentPJ[c] = powerP->energyPJ(static_cast<PowerComponent>(c));
    r.intUnitsPJ = powerP->intUnitsEnergyPJ();
    r.fpUnitsPJ = powerP->fpUnitsEnergyPJ();
    r.latchPJ = powerP->latchEnergyPJ();
    r.dcachePJ = powerP->dcacheEnergyPJ();
    r.resultBusPJ = powerP->resultBusEnergyPJ();

    const auto cyc = static_cast<double>(measuredCycles);
    if (cyc > 0) {
        const CoreConfig &cc = cfg.core;
        const double int_units = cc.fuCount[0] + cc.fuCount[1];
        const double fp_units = cc.fuCount[2] + cc.fuCount[3];
        unsigned gateable_phases = 0;
        for (unsigned p = 0; p < kNumLatchPhases; ++p) {
            if (latchPhaseGateable(static_cast<LatchPhase>(p)))
                ++gateable_phases;
        }
        r.intUnitUtil = intUnitBusySum / (cyc * int_units);
        r.fpUnitUtil = fpUnitBusySum / (cyc * fp_units);
        r.latchUtil = latchFluxSum /
                      (cyc * gateable_phases * cc.issueWidth);
        r.dcachePortUtil = portUseSum / (cyc * cc.dcachePorts);
        r.resultBusUtil = busUseSum / (cyc * cc.numResultBuses);
    }

    r.branchAccuracy = bpredP->accuracy();
    r.l1dMissRate = memP->dcache().missRate();
    return r;
}

void
Simulator::dumpStats(std::ostream &os) const
{
    coreP->foldStats();
    powerP->foldStats();
    statsP.dump(os);
}

std::uint64_t
defaultBenchInstructions()
{
    return static_cast<std::uint64_t>(
        Options::envInt("DCG_BENCH_INSTS", 150'000));
}

std::uint64_t
defaultBenchWarmup()
{
    return static_cast<std::uint64_t>(
        Options::envInt("DCG_BENCH_WARMUP", 60'000));
}

RunResult
runBenchmark(const Profile &profile, const SimConfig &config,
             std::uint64_t instructions, std::uint64_t warmup)
{
    if (instructions == 0)
        instructions = defaultBenchInstructions();
    if (warmup == 0)
        warmup = defaultBenchWarmup();
    Simulator sim(profile, config);
    sim.run(instructions, warmup);
    return sim.result();
}

} // namespace dcg
