/**
 * @file
 * Top-level simulator: wires a synthetic workload, the Table-1 core,
 * the memory hierarchy, a gating policy and the power model; runs
 * warm-up + measurement and produces a RunResult.
 */

#ifndef DCG_SIM_SIMULATOR_HH
#define DCG_SIM_SIMULATOR_HH

#include <array>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>

#include "branch/predictor.hh"
#include "cache/hierarchy.hh"
#include "common/stats.hh"
#include "gating/cgooo.hh"
#include "gating/dcg.hh"
#include "gating/ddcg.hh"
#include "gating/plb.hh"
#include "gating/policy.hh"
#include "pipeline/core.hh"
#include "power/model.hh"
#include "trace/generator.hh"
#include "trace/spec2000.hh"

namespace dcg {

struct SimConfig
{
    CoreConfig core;
    BranchPredictorConfig bpred;
    HierarchyConfig mem;
    Technology tech;

    /**
     * Registered gating-scheme name (see gating/registry.hh); the
     * Simulator constructor resolves it through gating::makePolicy.
     */
    std::string scheme = "base";

    /// @name Per-scheme configuration, keyed by the scheme string
    /// @{
    DcgConfig dcg;
    PlbConfig plb;
    DdcgConfig ddcg;
    CgoooConfig cgooo;
    /// @}

    std::uint64_t seed = 1;

    /**
     * Skip provably idle windows in O(1) instead of ticking through
     * them (Core::idleSkipAvailable). Results are identical by
     * construction — tests/sim/skipahead_test.cc checks byte-identity
     * of the full report with the knob off vs on — so this stays on
     * except when that equivalence itself is under test.
     */
    bool skipAhead = true;
};

/** Everything the benchmark harness needs from one run. */
struct RunResult
{
    std::string benchmark;
    std::string scheme;

    std::uint64_t instructions = 0;
    std::uint64_t cycles = 0;
    double ipc = 0.0;

    double totalEnergyPJ = 0.0;
    double avgPowerW = 0.0;

    /** Per-component energies (pJ), indexed by PowerComponent. */
    std::array<double, kNumPowerComponents> componentPJ{};

    /// @name Grouped energies used by the paper's figures
    /// @{
    double intUnitsPJ = 0.0;
    double fpUnitsPJ = 0.0;
    double latchPJ = 0.0;   ///< includes DCG control overhead
    double dcachePJ = 0.0;
    double resultBusPJ = 0.0;
    /// @}

    /// @name Measured utilisations (fraction of capacity per cycle)
    /// @{
    double intUnitUtil = 0.0;
    double fpUnitUtil = 0.0;
    double latchUtil = 0.0;       ///< gateable phases only
    double dcachePortUtil = 0.0;
    double resultBusUtil = 0.0;
    /// @}

    double branchAccuracy = 0.0;
    double l1dMissRate = 0.0;

    /**
     * Named registry statistics captured on request (see
     * exp::Job::captureStats); empty for plain Simulator runs.
     */
    std::map<std::string, double> extraStats;

    /** Power x delay, normalised per instruction (pJ/inst). */
    double energyPerInstPJ() const
    {
        return instructions ? totalEnergyPJ /
               static_cast<double>(instructions) : 0.0;
    }
};

class Simulator
{
  public:
    Simulator(const Profile &profile, const SimConfig &config);
    ~Simulator();

    /**
     * Simulate @p warmup instructions (stats then reset), then
     * @p instructions measured instructions.
     */
    void run(std::uint64_t instructions, std::uint64_t warmup);

    RunResult result() const;

    Core &core() { return *coreP; }
    PowerModel &power() { return *powerP; }
    StatRegistry &stats() { return statsP; }
    GatingPolicy &policy() { return *policyP; }
    MemoryHierarchy &memory() { return *memP; }

    /** Dump the full statistics registry. */
    void dumpStats(std::ostream &os) const;

  private:
    void step();
    void resetMeasurement();
    void prewarmCaches();

    SimConfig cfg;
    Profile prof;

    StatRegistry statsP;
    std::unique_ptr<TraceGenerator> genP;
    std::unique_ptr<MemoryHierarchy> memP;
    std::unique_ptr<BranchPredictor> bpredP;
    std::unique_ptr<Core> coreP;
    std::unique_ptr<PowerModel> powerP;
    std::unique_ptr<GatingPolicy> policyP;

    /**
     * Utilisation accumulators over measured cycles. Integer: the
     * per-cycle contributions are small counts, and integer sums keep
     * the utilisation figures independent of accumulation order
     * (skipped idle windows contribute zero).
     */
    std::uint64_t intUnitBusySum = 0;
    std::uint64_t fpUnitBusySum = 0;
    std::uint64_t latchFluxSum = 0;
    std::uint64_t portUseSum = 0;
    std::uint64_t busUseSum = 0;
    std::uint64_t measuredCycles = 0;

    /** L2 access count at measurement start (for energy reset). */
    std::uint64_t l2AccessBase = 0;
};

/**
 * Convenience harness: build, run and collect the result in one call.
 * Instruction counts default to the benchmark-suite settings and may
 * be overridden by the DCG_BENCH_INSTS / DCG_BENCH_WARMUP environment
 * variables.
 */
RunResult runBenchmark(const Profile &profile, const SimConfig &config,
                       std::uint64_t instructions = 0,
                       std::uint64_t warmup = 0);

/** Default measured instructions (honours DCG_BENCH_INSTS). */
std::uint64_t defaultBenchInstructions();
/** Default warm-up instructions (honours DCG_BENCH_WARMUP). */
std::uint64_t defaultBenchWarmup();

} // namespace dcg

#endif // DCG_SIM_SIMULATOR_HH
