/**
 * @file
 * Canonical experiment configurations: the Table-1 baseline machine
 * and the Figure-17 deep-pipeline variant.
 */

#ifndef DCG_SIM_PRESETS_HH
#define DCG_SIM_PRESETS_HH

#include "sim/simulator.hh"

namespace dcg {

/** Table-1 machine with the requested gating scheme. */
SimConfig table1Config(GatingScheme scheme = GatingScheme::None);

/** The 20-stage machine of Figure 17. */
SimConfig deepPipelineConfig(GatingScheme scheme = GatingScheme::None);

/** Human-readable dump of a configuration (bench/table1_config). */
void printConfig(const SimConfig &config, std::ostream &os);

} // namespace dcg

#endif // DCG_SIM_PRESETS_HH
