/**
 * @file
 * Canonical experiment configurations: the Table-1 baseline machine
 * and the Figure-17 deep-pipeline variant.
 */

#ifndef DCG_SIM_PRESETS_HH
#define DCG_SIM_PRESETS_HH

#include <string>

#include "sim/simulator.hh"

namespace dcg {

/** Table-1 machine with the requested registered gating scheme. */
SimConfig table1Config(const std::string &scheme = "base");

/** The 20-stage machine of Figure 17. */
SimConfig deepPipelineConfig(const std::string &scheme = "base");

/** Human-readable dump of a configuration (bench/table1_config). */
void printConfig(const SimConfig &config, std::ostream &os);

} // namespace dcg

#endif // DCG_SIM_PRESETS_HH
