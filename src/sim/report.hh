/**
 * @file
 * Machine-readable result export: CSV and JSON writers (plus a JSON
 * reader and a schema description) for RunResult collections, so
 * experiment output can feed plotting scripts and downstream tooling
 * without scraping the text tables.
 *
 * The JSON writer emits doubles with max_digits10 precision, so
 * writeResultsJson -> readResultsJson round-trips bit-exactly.
 */

#ifndef DCG_SIM_REPORT_HH
#define DCG_SIM_REPORT_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "sim/simulator.hh"

namespace dcg {

/** Column-stable CSV with a header row. */
void writeResultsCsv(const std::vector<RunResult> &results,
                     std::ostream &os);

/**
 * JSON array of result objects: headline metrics, grouped component
 * energies, utilisations, the full per-component breakdown and any
 * captured extra statistics.
 */
void writeResultsJson(const std::vector<RunResult> &results,
                      std::ostream &os);

/**
 * Parse a JSON array previously produced by writeResultsJson().
 * fatal() on malformed input or unknown component names.
 */
std::vector<RunResult> readResultsJson(std::istream &is);

/**
 * Non-terminating variant of readResultsJson() for callers that must
 * survive malformed input (the serve-layer result store treats a
 * truncated or corrupt record as a cache miss). Returns false and
 * leaves @p out untouched on failure; @p error (if non-null) receives
 * a one-line description.
 */
bool tryReadResultsJson(std::istream &is, std::vector<RunResult> &out,
                        std::string *error = nullptr);

/**
 * Machine-readable description of the JSON result schema (field
 * names, types, units), for consumers that validate before parsing.
 */
void writeResultsSchemaJson(std::ostream &os);

/** Convenience: write to a file path; fatal() on I/O failure. */
void writeResultsCsvFile(const std::vector<RunResult> &results,
                         const std::string &path);
void writeResultsJsonFile(const std::vector<RunResult> &results,
                          const std::string &path);

/** Convenience: read a JSON result file; fatal() on I/O failure. */
std::vector<RunResult> readResultsJsonFile(const std::string &path);

/** One entry of the registry-statistic catalog. */
struct StatCatalogEntry
{
    const char *name;  ///< registry name, e.g. "core.ipc"
    const char *desc;  ///< what the value means
};

/**
 * Catalog of every statistic the simulator can register, across all
 * gating schemes. This is the authoritative name list for the
 * "extra" result field (--capture serializes registry stats by these
 * names), and `dcglint` enforces that every stats.counter(...)-style
 * registration in src/ appears here — a stat missing from the catalog
 * would be invisible to the result schema. sim/report_test.cc checks
 * the other direction: every catalog name is actually registered by
 * some scheme, so the list cannot rot.
 */
const std::vector<StatCatalogEntry> &statRegistryCatalog();

} // namespace dcg

#endif // DCG_SIM_REPORT_HH
