/**
 * @file
 * Machine-readable result export: CSV and JSON writers for RunResult
 * collections, so experiment output can feed plotting scripts without
 * scraping the text tables.
 */

#ifndef DCG_SIM_REPORT_HH
#define DCG_SIM_REPORT_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "sim/simulator.hh"

namespace dcg {

/** Column-stable CSV with a header row. */
void writeResultsCsv(const std::vector<RunResult> &results,
                     std::ostream &os);

/** JSON array of result objects (component energies included). */
void writeResultsJson(const std::vector<RunResult> &results,
                      std::ostream &os);

/** Convenience: write to a file path; fatal() on I/O failure. */
void writeResultsCsvFile(const std::vector<RunResult> &results,
                         const std::string &path);
void writeResultsJsonFile(const std::vector<RunResult> &results,
                          const std::string &path);

} // namespace dcg

#endif // DCG_SIM_REPORT_HH
