#include "sim/report.hh"

#include <cctype>
#include <fstream>
#include <iomanip>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "common/log.hh"
#include "gating/registry.hh"
#include "power/model.hh"

namespace dcg {

namespace {

/** Escape a string for JSON output. */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
          case '"':  out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:   out += c; break;
        }
    }
    return out;
}

/**
 * Raised by JsonParser on malformed input; callers decide whether it
 * is fatal (CLI paths) or a recoverable miss (the serve-layer result
 * store treats a truncated record as absent and re-simulates).
 */
struct ResultParseError : std::runtime_error
{
    using std::runtime_error::runtime_error;
};

/**
 * Minimal recursive-descent parser for the subset of JSON the writer
 * emits (objects, arrays, strings, numbers, bools). Errors throw
 * ResultParseError: result files are produced by this program, so
 * malformed input means a truncated or foreign file.
 */
class JsonParser
{
  public:
    explicit JsonParser(std::istream &stream) : is(stream) {}

    void expect(char c)
    {
        skipWs();
        if (is.get() != c)
            throw ResultParseError(
                detail::fold("result JSON: expected '", c, "'"));
    }

    bool consumeIf(char c)
    {
        skipWs();
        if (is.peek() == c) {
            is.get();
            return true;
        }
        return false;
    }

    std::string parseString()
    {
        expect('"');
        std::string out;
        for (int c; (c = is.get()) != '"'; ) {
            if (c == EOF)
                throw ResultParseError("result JSON: unterminated string");
            if (c == '\\') {
                const int e = is.get();
                switch (e) {
                  case '"':  out += '"'; break;
                  case '\\': out += '\\'; break;
                  case 'n':  out += '\n'; break;
                  case 't':  out += '\t'; break;
                  default:
                    throw ResultParseError(
                        detail::fold("result JSON: unsupported escape"
                                     " '\\", static_cast<char>(e), "'"));
                }
            } else {
                out += static_cast<char>(c);
            }
        }
        return out;
    }

    double parseNumber()
    {
        skipWs();
        std::string tok;
        while (true) {
            const int c = is.peek();
            if (c == EOF || (!std::isdigit(c) && c != '-' && c != '+' &&
                             c != '.' && c != 'e' && c != 'E'))
                break;
            tok += static_cast<char>(is.get());
        }
        if (tok.empty())
            throw ResultParseError("result JSON: expected a number");
        try {
            return std::stod(tok);
        } catch (const std::exception &) {
            throw ResultParseError(
                detail::fold("result JSON: malformed number '", tok,
                             "'"));
        }
    }

    /** Parse {"name": number, ...} into @p store via @p set. */
    template <typename Setter>
    void parseNumberObject(const Setter &set)
    {
        expect('{');
        if (consumeIf('}'))
            return;
        do {
            const std::string key = parseString();
            expect(':');
            set(key, parseNumber());
        } while (consumeIf(','));
        expect('}');
    }

    void skipWs()
    {
        while (std::isspace(is.peek()))
            is.get();
    }

    bool atEof()
    {
        skipWs();
        return is.peek() == EOF;
    }

  private:
    std::istream &is;
};

int
componentByName(const std::string &name)
{
    for (unsigned c = 0; c < kNumPowerComponents; ++c) {
        if (name == powerComponentName(static_cast<PowerComponent>(c)))
            return static_cast<int>(c);
    }
    return -1;
}

RunResult
parseResultObject(JsonParser &p)
{
    RunResult r;
    p.expect('{');
    do {
        const std::string key = p.parseString();
        p.expect(':');
        if (key == "benchmark") {
            r.benchmark = p.parseString();
        } else if (key == "scheme") {
            r.scheme = p.parseString();
        } else if (key == "instructions") {
            r.instructions = static_cast<std::uint64_t>(p.parseNumber());
        } else if (key == "cycles") {
            r.cycles = static_cast<std::uint64_t>(p.parseNumber());
        } else if (key == "ipc") {
            r.ipc = p.parseNumber();
        } else if (key == "total_energy_pj") {
            r.totalEnergyPJ = p.parseNumber();
        } else if (key == "avg_power_w") {
            r.avgPowerW = p.parseNumber();
        } else if (key == "energy_per_inst_pj") {
            p.parseNumber();  // derived; recomputed on demand
        } else if (key == "branch_accuracy") {
            r.branchAccuracy = p.parseNumber();
        } else if (key == "l1d_miss_rate") {
            r.l1dMissRate = p.parseNumber();
        } else if (key == "group_pj") {
            p.parseNumberObject([&](const std::string &k, double v) {
                if (k == "int_units") r.intUnitsPJ = v;
                else if (k == "fp_units") r.fpUnitsPJ = v;
                else if (k == "latches") r.latchPJ = v;
                else if (k == "dcache") r.dcachePJ = v;
                else if (k == "result_bus") r.resultBusPJ = v;
                else throw ResultParseError(detail::fold(
                    "result JSON: unknown group '", k, "'"));
            });
        } else if (key == "utilization") {
            p.parseNumberObject([&](const std::string &k, double v) {
                if (k == "int_units") r.intUnitUtil = v;
                else if (k == "fp_units") r.fpUnitUtil = v;
                else if (k == "latches") r.latchUtil = v;
                else if (k == "dcache_ports") r.dcachePortUtil = v;
                else if (k == "result_bus") r.resultBusUtil = v;
                else throw ResultParseError(detail::fold(
                    "result JSON: unknown utilisation '", k, "'"));
            });
        } else if (key == "components_pj") {
            p.parseNumberObject([&](const std::string &k, double v) {
                const int c = componentByName(k);
                if (c < 0)
                    throw ResultParseError(detail::fold(
                        "result JSON: unknown component '", k, "'"));
                r.componentPJ[static_cast<unsigned>(c)] = v;
            });
        } else if (key == "extra") {
            p.parseNumberObject([&](const std::string &k, double v) {
                r.extraStats[k] = v;
            });
        } else {
            throw ResultParseError(detail::fold(
                "result JSON: unknown field '", key, "'"));
        }
    } while (p.consumeIf(','));
    p.expect('}');
    return r;
}

} // namespace

void
writeResultsCsv(const std::vector<RunResult> &results, std::ostream &os)
{
    os << "benchmark,scheme,instructions,cycles,ipc,total_energy_pj,"
          "avg_power_w,energy_per_inst_pj,int_units_pj,fp_units_pj,"
          "latch_pj,dcache_pj,result_bus_pj,int_unit_util,fp_unit_util,"
          "latch_util,dcache_port_util,result_bus_util,branch_accuracy,"
          "l1d_miss_rate";
    for (unsigned c = 0; c < kNumPowerComponents; ++c)
        os << ",pj_" << powerComponentName(static_cast<PowerComponent>(c));
    os << '\n';

    os << std::setprecision(std::numeric_limits<double>::max_digits10);
    for (const RunResult &r : results) {
        os << r.benchmark << ',' << r.scheme << ',' << r.instructions
           << ',' << r.cycles << ',' << r.ipc << ',' << r.totalEnergyPJ
           << ',' << r.avgPowerW << ',' << r.energyPerInstPJ() << ','
           << r.intUnitsPJ << ',' << r.fpUnitsPJ << ',' << r.latchPJ
           << ',' << r.dcachePJ << ',' << r.resultBusPJ << ','
           << r.intUnitUtil << ',' << r.fpUnitUtil << ',' << r.latchUtil
           << ',' << r.dcachePortUtil << ',' << r.resultBusUtil << ','
           << r.branchAccuracy << ',' << r.l1dMissRate;
        for (unsigned c = 0; c < kNumPowerComponents; ++c)
            os << ',' << r.componentPJ[c];
        os << '\n';
    }
}

void
writeResultsJson(const std::vector<RunResult> &results, std::ostream &os)
{
    os << std::setprecision(std::numeric_limits<double>::max_digits10)
       << "[\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
        const RunResult &r = results[i];
        os << "  {\"benchmark\": \"" << jsonEscape(r.benchmark)
           << "\", \"scheme\": \"" << jsonEscape(r.scheme)
           << "\", \"instructions\": " << r.instructions
           << ", \"cycles\": " << r.cycles
           << ", \"ipc\": " << r.ipc
           << ", \"total_energy_pj\": " << r.totalEnergyPJ
           << ", \"avg_power_w\": " << r.avgPowerW
           << ", \"energy_per_inst_pj\": " << r.energyPerInstPJ()
           << ", \"branch_accuracy\": " << r.branchAccuracy
           << ", \"l1d_miss_rate\": " << r.l1dMissRate
           << ",\n   \"group_pj\": {"
           << "\"int_units\": " << r.intUnitsPJ
           << ", \"fp_units\": " << r.fpUnitsPJ
           << ", \"latches\": " << r.latchPJ
           << ", \"dcache\": " << r.dcachePJ
           << ", \"result_bus\": " << r.resultBusPJ
           << "},\n   \"utilization\": {"
           << "\"int_units\": " << r.intUnitUtil
           << ", \"fp_units\": " << r.fpUnitUtil
           << ", \"latches\": " << r.latchUtil
           << ", \"dcache_ports\": " << r.dcachePortUtil
           << ", \"result_bus\": " << r.resultBusUtil
           << "},\n   \"components_pj\": {";
        for (unsigned c = 0; c < kNumPowerComponents; ++c) {
            os << (c ? ", " : "") << '"'
               << powerComponentName(static_cast<PowerComponent>(c))
               << "\": " << r.componentPJ[c];
        }
        os << '}';
        if (!r.extraStats.empty()) {
            os << ",\n   \"extra\": {";
            bool first = true;
            for (const auto &[name, value] : r.extraStats) {
                os << (first ? "" : ", ") << '"' << jsonEscape(name)
                   << "\": " << value;
                first = false;
            }
            os << '}';
        }
        os << "}" << (i + 1 < results.size() ? "," : "") << '\n';
    }
    os << "]\n";
}

bool
tryReadResultsJson(std::istream &is, std::vector<RunResult> &out,
                   std::string *error)
{
    try {
        JsonParser p(is);
        std::vector<RunResult> results;
        p.expect('[');
        if (!p.consumeIf(']')) {
            do {
                results.push_back(parseResultObject(p));
            } while (p.consumeIf(','));
            p.expect(']');
        }
        out = std::move(results);
        return true;
    } catch (const std::exception &e) {
        if (error)
            *error = e.what();
        return false;
    }
}

std::vector<RunResult>
readResultsJson(std::istream &is)
{
    std::vector<RunResult> results;
    std::string error;
    if (!tryReadResultsJson(is, results, &error))
        fatal(error);
    return results;
}

void
writeResultsSchemaJson(std::ostream &os)
{
    os << "{\n"
          "  \"schema\": \"dcg.run_result\",\n"
          "  \"version\": 2,\n"
          "  \"fields\": [\n"
          "    {\"name\": \"benchmark\", \"type\": \"string\"},\n"
          "    {\"name\": \"scheme\", \"type\": \"string\","
          " \"values\": [";
    // The scheme enumeration is the live registry catalog, so the
    // schema can never fall behind a newly-registered scheme.
    bool first_scheme = true;
    for (const std::string &name : gating::schemeNames()) {
        os << (first_scheme ? "" : ", ") << '"' << jsonEscape(name)
           << '"';
        first_scheme = false;
    }
    os << "]},\n"
          "    {\"name\": \"instructions\", \"type\": \"integer\"},\n"
          "    {\"name\": \"cycles\", \"type\": \"integer\"},\n"
          "    {\"name\": \"ipc\", \"type\": \"number\"},\n"
          "    {\"name\": \"total_energy_pj\", \"type\": \"number\","
          " \"unit\": \"pJ\"},\n"
          "    {\"name\": \"avg_power_w\", \"type\": \"number\","
          " \"unit\": \"W\"},\n"
          "    {\"name\": \"energy_per_inst_pj\", \"type\": \"number\","
          " \"unit\": \"pJ\"},\n"
          "    {\"name\": \"branch_accuracy\", \"type\": \"number\","
          " \"unit\": \"fraction\"},\n"
          "    {\"name\": \"l1d_miss_rate\", \"type\": \"number\","
          " \"unit\": \"fraction\"},\n"
          "    {\"name\": \"group_pj\", \"type\": \"object\","
          " \"unit\": \"pJ\", \"keys\": [\"int_units\", \"fp_units\","
          " \"latches\", \"dcache\", \"result_bus\"]},\n"
          "    {\"name\": \"utilization\", \"type\": \"object\","
          " \"unit\": \"fraction\", \"keys\": [\"int_units\","
          " \"fp_units\", \"latches\", \"dcache_ports\","
          " \"result_bus\"]},\n"
          "    {\"name\": \"components_pj\", \"type\": \"object\","
          " \"unit\": \"pJ\", \"keys\": [";
    for (unsigned c = 0; c < kNumPowerComponents; ++c) {
        os << (c ? ", " : "") << '"'
           << powerComponentName(static_cast<PowerComponent>(c)) << '"';
    }
    os << "]},\n"
          "    {\"name\": \"extra\", \"type\": \"object\","
          " \"optional\": true, \"description\":"
          " \"captured registry statistics, keyed by stat name\"}\n"
          "  ]\n"
          "}\n";
}

const std::vector<StatCatalogEntry> &
statRegistryCatalog()
{
    // Keep sorted by name. dcglint's stat-report check requires every
    // literal registration site in src/ to have its name listed here;
    // the report_test cross-checks that the catalog exactly matches
    // the union of stats the gating schemes register, so
    // dynamically-composed names (per-cache-instance counters, per-FU
    // toggle counters) are enumerated concretely.
    static const std::vector<StatCatalogEntry> catalog = {
        {"bpred.btb_misses", "taken predictions without a BTB target"},
        {"bpred.correct", "fully correct predictions"},
        {"bpred.dir_mispredicts", "wrong taken/not-taken direction"},
        {"bpred.lookups", "branch predictions made"},
        {"cgooo.active_blocks", "issue-queue block-cycles clocked"},
        {"cgooo.gated_blocks", "issue-queue block-cycles clock-gated"},
        {"core.commit_latency", "issue-to-commit latency (cycles)"},
        {"core.commit_wait_complete", "commits stalled on in-flight head"},
        {"core.commit_wait_issue", "commits stalled on unissued head"},
        {"core.commit_wait_storebuf", "commits stalled on store buffer"},
        {"core.committed", "committed instructions"},
        {"core.cycles", "simulated cycles"},
        {"core.fetch_stall_cycles", "cycles fetch produced nothing"},
        {"core.fetched_per_cycle", "mean fetch bandwidth"},
        {"core.ipc", "committed IPC"},
        {"core.issue_wait", "mean window wait before issue (cycles)"},
        {"core.issued", "issued instructions"},
        {"core.lsq_full_stalls", "rename stalls on a full LSQ"},
        {"core.mispredicts", "branch mispredictions"},
        {"core.rob_full_stalls", "rename stalls on a full ROB"},
        {"core.skipped_cycles", "idle cycles advanced in bulk by skip-ahead"},
        {"core.window_occupancy", "mean issue-window occupancy"},
        {"dcache.accesses", "L1D cache accesses"},
        {"dcache.misses", "L1D cache misses"},
        {"dcache.mshr_stalls", "L1D stalls on a full MSHR"},
        {"dcache.prefetches", "L1D prefetches issued"},
        {"dcache.writebacks", "L1D dirty-line writebacks"},
        {"dcg.gated_dcache_ports", "D-cache port-cycles clock-gated"},
        {"dcg.gated_fu_cycles", "FU instance-cycles clock-gated"},
        {"dcg.gated_latch_slots", "latch slot-cycles clock-gated"},
        {"dcg.gated_result_buses", "result-bus cycles clock-gated"},
        {"dcg.toggles.FpAlu", "FP-ALU gate-control transitions"},
        {"dcg.toggles.FpMulDiv", "FP mul/div gate-control transitions"},
        {"dcg.toggles.IntAlu", "integer-ALU gate-control transitions"},
        {"dcg.toggles.IntMulDiv", "int mul/div gate-control transitions"},
        {"ddcg.clocked_latch_slots", "latch slot-cycles left clocked"},
        {"ddcg.gated_latch_slots", "latch slot-cycles clock-gated"},
        {"icache.accesses", "L1I cache accesses"},
        {"icache.misses", "L1I cache misses"},
        {"icache.mshr_stalls", "L1I stalls on a full MSHR"},
        {"icache.prefetches", "L1I prefetches issued"},
        {"icache.writebacks", "L1I dirty-line writebacks"},
        {"l2.accesses", "L2 cache accesses"},
        {"l2.misses", "L2 cache misses"},
        {"l2.mshr_stalls", "L2 stalls on a full MSHR"},
        {"l2.prefetches", "L2 prefetches issued"},
        {"l2.writebacks", "L2 dirty-line writebacks"},
        {"mem.accesses", "main memory accesses"},
        {"plb.mode_transitions", "issue-mode changes"},
        {"plb.windows_4wide", "windows spent in 4-wide mode"},
        {"plb.windows_6wide", "windows spent in 6-wide mode"},
        {"plb.windows_8wide", "windows spent in 8-wide mode"},
        {"power.avg_watts", "average power (W)"},
        {"power.total_energy_pj", "total dynamic energy (pJ)"},
    };
    return catalog;
}

void
writeResultsCsvFile(const std::vector<RunResult> &results,
                    const std::string &path)
{
    std::ofstream os(path);
    if (!os)
        fatal("cannot open '", path, "' for writing");
    writeResultsCsv(results, os);
}

void
writeResultsJsonFile(const std::vector<RunResult> &results,
                     const std::string &path)
{
    std::ofstream os(path);
    if (!os)
        fatal("cannot open '", path, "' for writing");
    writeResultsJson(results, os);
}

std::vector<RunResult>
readResultsJsonFile(const std::string &path)
{
    std::ifstream is(path);
    if (!is)
        fatal("cannot open '", path, "' for reading");
    return readResultsJson(is);
}

} // namespace dcg
