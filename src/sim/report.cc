#include "sim/report.hh"

#include <fstream>
#include <iomanip>
#include <ostream>

#include "common/log.hh"
#include "power/model.hh"

namespace dcg {

namespace {

/** Escape a string for JSON output. */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
          case '"':  out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:   out += c; break;
        }
    }
    return out;
}

} // namespace

void
writeResultsCsv(const std::vector<RunResult> &results, std::ostream &os)
{
    os << "benchmark,scheme,instructions,cycles,ipc,total_energy_pj,"
          "avg_power_w,energy_per_inst_pj,int_unit_util,fp_unit_util,"
          "latch_util,dcache_port_util,result_bus_util,branch_accuracy,"
          "l1d_miss_rate";
    for (unsigned c = 0; c < kNumPowerComponents; ++c)
        os << ",pj_" << powerComponentName(static_cast<PowerComponent>(c));
    os << '\n';

    os << std::setprecision(10);
    for (const RunResult &r : results) {
        os << r.benchmark << ',' << r.scheme << ',' << r.instructions
           << ',' << r.cycles << ',' << r.ipc << ',' << r.totalEnergyPJ
           << ',' << r.avgPowerW << ',' << r.energyPerInstPJ() << ','
           << r.intUnitUtil << ',' << r.fpUnitUtil << ',' << r.latchUtil
           << ',' << r.dcachePortUtil << ',' << r.resultBusUtil << ','
           << r.branchAccuracy << ',' << r.l1dMissRate;
        for (unsigned c = 0; c < kNumPowerComponents; ++c)
            os << ',' << r.componentPJ[c];
        os << '\n';
    }
}

void
writeResultsJson(const std::vector<RunResult> &results, std::ostream &os)
{
    os << std::setprecision(10) << "[\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
        const RunResult &r = results[i];
        os << "  {\"benchmark\": \"" << jsonEscape(r.benchmark)
           << "\", \"scheme\": \"" << jsonEscape(r.scheme)
           << "\", \"instructions\": " << r.instructions
           << ", \"cycles\": " << r.cycles
           << ", \"ipc\": " << r.ipc
           << ", \"total_energy_pj\": " << r.totalEnergyPJ
           << ", \"avg_power_w\": " << r.avgPowerW
           << ", \"branch_accuracy\": " << r.branchAccuracy
           << ", \"l1d_miss_rate\": " << r.l1dMissRate
           << ", \"components_pj\": {";
        for (unsigned c = 0; c < kNumPowerComponents; ++c) {
            os << (c ? ", " : "") << '"'
               << powerComponentName(static_cast<PowerComponent>(c))
               << "\": " << r.componentPJ[c];
        }
        os << "}}" << (i + 1 < results.size() ? "," : "") << '\n';
    }
    os << "]\n";
}

void
writeResultsCsvFile(const std::vector<RunResult> &results,
                    const std::string &path)
{
    std::ofstream os(path);
    if (!os)
        fatal("cannot open '", path, "' for writing");
    writeResultsCsv(results, os);
}

void
writeResultsJsonFile(const std::vector<RunResult> &results,
                     const std::string &path)
{
    std::ofstream os(path);
    if (!os)
        fatal("cannot open '", path, "' for writing");
    writeResultsJson(results, os);
}

} // namespace dcg
