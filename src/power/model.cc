#include "power/model.hh"

#include "common/log.hh"
#include "isa/micro_op.hh"

namespace dcg {

const char *
powerComponentName(PowerComponent c)
{
    switch (c) {
      case PowerComponent::Latches:       return "latches";
      case PowerComponent::DcgControl:    return "dcg_control";
      case PowerComponent::DdcgCompare:   return "ddcg_compare";
      case PowerComponent::ClockWiring:   return "clock_wiring";
      case PowerComponent::IntAlu:        return "int_alu";
      case PowerComponent::IntMulDiv:     return "int_muldiv";
      case PowerComponent::FpAlu:         return "fp_alu";
      case PowerComponent::FpMulDiv:      return "fp_muldiv";
      case PowerComponent::DcacheDecoder: return "dcache_decoder";
      case PowerComponent::DcacheArray:   return "dcache_array";
      case PowerComponent::Icache:        return "icache";
      case PowerComponent::Bpred:         return "bpred";
      case PowerComponent::Rename:        return "rename";
      case PowerComponent::IssueQueue:    return "issue_queue";
      case PowerComponent::CgoooSched:    return "cgooo_sched";
      case PowerComponent::Regfile:       return "regfile";
      case PowerComponent::Lsq:           return "lsq";
      case PowerComponent::Rob:           return "rob";
      case PowerComponent::ResultBus:     return "result_bus";
      case PowerComponent::L2:            return "l2";
      default: break;
    }
    return "?";
}

PowerModel::PowerModel(const CoreConfig &core_cfg, const Technology &tech_,
                       StatRegistry &stats, const Cache *l2_)
    : cfg(core_cfg),
      tech(tech_),
      l2(l2_),
      totalStat(stats.scalar("power.total_energy_pj",
                             "total dynamic energy (pJ)")),
      avgPowerStat(stats.formula("power.avg_watts", "average power (W)"))
{
    slotBits = kMaxSrcs * cfg.operandBits + cfg.controlBitsPerSlot;

    // DCG control: GRANT bits for every FU instance piped through the
    // issue/read latches, the one-hot issued-slot encoding piped to the
    // writeback stage, and D-cache port / result-bus control bits
    // (Sections 3.1-3.4). These extended latches are never gated.
    unsigned fu_instances = 0;
    for (unsigned t = 0; t < kNumFuTypes; ++t)
        fu_instances += cfg.fuCount[t];
    const unsigned pipe_len = cfg.depth.read + 1 + cfg.depth.mem +
                              cfg.depth.wb;
    controlBits = fu_instances * (cfg.depth.read + 1) +
                  cfg.issueWidth * pipe_len +
                  cfg.dcachePorts * (cfg.depth.read + 2) +
                  cfg.numResultBuses * 2;

    avgPowerStat.define([this]() { return averagePowerW(); });
}

void
PowerModel::reset()
{
    energy.fill(0.0);
    numCycles = 0;
}

void
PowerModel::addEnergy(PowerComponent c, double pj)
{
    energy[static_cast<unsigned>(c)] += pj;
    totalStat += pj;
}

void
PowerModel::tick(const CycleActivity &act, const GateState &g)
{
    ++numCycles;
    const double v2 = tech.vdd * tech.vdd;

    // --- Consistency: deterministic gating never gates a used block.
    for (unsigned t = 0; t < kNumFuTypes; ++t) {
        DCG_ASSERT((g.fuGateMask[t] & act.fuBusyMask[t]) == 0,
                   "gated a busy execution unit (type ", t, ")");
    }
    for (unsigned p = 0; p < kNumLatchPhases; ++p) {
        DCG_ASSERT(g.latchSlotsGated[p] + act.latchFlux[p] <=
                   cfg.issueWidth,
                   "gated latch slots overlap used slots (phase ", p, ")");
    }
    DCG_ASSERT(g.dcachePortsGated + act.dcachePortsUsed <=
               cfg.dcachePorts, "gated a busy D-cache port");
    DCG_ASSERT(g.resultBusesGated + act.resultBusUsed <=
               cfg.numResultBuses, "gated a busy result bus");
    DCG_ASSERT(g.latchBitGatedFraction >= 0.0 &&
               g.latchBitGatedFraction <= 1.0,
               "bad latch bit-gated fraction");
    DCG_ASSERT(g.latchCompareOverhead >= 0.0,
               "negative latch compare overhead");
    DCG_ASSERT(g.iqWakeupScale >= 0.0 && g.iqWakeupScale <= 1.0,
               "bad IQ wakeup scale");
    DCG_ASSERT(g.iqSchedOverhead >= 0.0,
               "negative IQ scheduler overhead");

    // --- Pipeline latches: clock power for every un-gated slot, in
    // every latch group of every phase. DDCG's per-bit comparators
    // additionally hold the clock low for the unchanged-bit fraction
    // within clocked slots (latchBitGatedFraction) and charge the
    // comparator network for every guarded bit, clocked or not.
    double latch_pj = 0.0;
    double guarded_bits = 0.0;
    for (unsigned p = 0; p < kNumLatchPhases; ++p) {
        const unsigned groups =
            cfg.depth.groupsFor(static_cast<LatchPhase>(p));
        const unsigned clocked = cfg.issueWidth - g.latchSlotsGated[p];
        latch_pj += static_cast<double>(groups) * clocked * slotBits *
                    tech.latchBitCap * v2 *
                    (1.0 - g.latchBitGatedFraction);
        guarded_bits += static_cast<double>(groups) * cfg.issueWidth *
                        slotBits;
    }
    addEnergy(PowerComponent::Latches, latch_pj);

    if (g.latchCompareOverhead > 0.0) {
        addEnergy(PowerComponent::DdcgCompare,
                  g.latchCompareOverhead * guarded_bits *
                  tech.latchBitCap * v2);
    }

    if (g.dcgControlActive) {
        addEnergy(PowerComponent::DcgControl,
                  controlBits * tech.latchBitCap * v2);
    }

    // --- Global clock spine: charged every cycle regardless.
    addEnergy(PowerComponent::ClockWiring,
              tech.clockWiringCap * v2);

    // --- Execution units: clock/precharge for un-gated instances plus
    // switching for started operations.
    struct FuPower { PowerComponent comp; double clockCap; double opCap; };
    const FuPower fu_power[kNumFuTypes] = {
        {PowerComponent::IntAlu, tech.intAluClockCap, tech.intAluOpCap},
        {PowerComponent::IntMulDiv, tech.intMulDivClockCap,
         tech.intMulDivOpCap},
        {PowerComponent::FpAlu, tech.fpAluClockCap, tech.fpAluOpCap},
        {PowerComponent::FpMulDiv, tech.fpMulDivClockCap,
         tech.fpMulDivOpCap},
    };
    for (unsigned t = 0; t < kNumFuTypes; ++t) {
        const unsigned total = cfg.fuCount[t];
        const unsigned gated = static_cast<unsigned>(
            __builtin_popcount(g.fuGateMask[t]));
        DCG_ASSERT(gated <= total, "gate mask exceeds FU count");
        const double clock_pj = (total - gated) * fu_power[t].clockCap
                                * v2;
        const double op_pj = act.fuStarts[t] * fu_power[t].opCap * v2;
        addEnergy(fu_power[t].comp, clock_pj + op_pj);
    }

    // --- D-cache: per-port dynamic decoders (gateable) + array energy
    // per access (charged only when accessed).
    addEnergy(PowerComponent::DcacheDecoder,
              (cfg.dcachePorts - g.dcachePortsGated) *
              tech.dcacheDecoderCap * v2);
    addEnergy(PowerComponent::DcacheArray,
              act.dcacheAccesses * tech.dcacheArrayAccessCap * v2);

    // --- Front end.
    addEnergy(PowerComponent::Icache,
              act.icacheAccesses * tech.icacheAccessCap * v2 +
              (act.fetched + act.wrongPathFetched) *
              tech.fetchPerInstCap * v2);
    addEnergy(PowerComponent::Bpred,
              act.bpredLookups * tech.bpredAccessCap * v2);

    addEnergy(PowerComponent::Rename,
              act.renamed * tech.renameOpCap * v2);

    // --- Issue queue: CAM precharge every cycle (PLB and CG-OoO gate
    // slices/blocks; DCG leaves it to the scheme of [6], Sec 2.2.2).
    // CG-OoO confines the wakeup broadcast to active blocks
    // (iqWakeupScale) and pays its block scheduler (iqSchedOverhead,
    // a fraction of the queue clock).
    DCG_ASSERT(g.iqGatedFraction >= 0.0 && g.iqGatedFraction <= 1.0,
               "bad IQ gated fraction");
    addEnergy(PowerComponent::IssueQueue,
              tech.iqClockCap * v2 * (1.0 - g.iqGatedFraction) +
              act.iqWakeups * tech.iqWakeupCap * v2 * g.iqWakeupScale +
              act.issued * tech.iqSelectCap * v2);
    if (g.iqSchedOverhead > 0.0) {
        addEnergy(PowerComponent::CgoooSched,
                  g.iqSchedOverhead * tech.iqClockCap * v2);
    }

    addEnergy(PowerComponent::Regfile,
              act.regReads * tech.regReadCap * v2 +
              act.regWrites * tech.regWriteCap * v2);

    addEnergy(PowerComponent::Lsq, act.lsqOps * tech.lsqOpCap * v2);
    addEnergy(PowerComponent::Rob,
              (act.renamed + act.committed) * tech.robOpCap * v2);

    // --- Result bus drivers: precharge for un-gated buses + switching
    // per drive.
    addEnergy(PowerComponent::ResultBus,
              (cfg.numResultBuses - g.resultBusesGated) *
              tech.resultBusClockCap * v2 +
              act.resultBusUsed * tech.resultBusDriveCap * v2);
}

double
PowerModel::energyPJ(PowerComponent c) const
{
    if (c == PowerComponent::L2 && l2) {
        return static_cast<double>(l2->numAccesses()) *
               tech.l2AccessCap * tech.vdd * tech.vdd;
    }
    return energy[static_cast<unsigned>(c)];
}

double
PowerModel::totalEnergyPJ() const
{
    double total = 0.0;
    for (unsigned c = 0; c < kNumPowerComponents; ++c)
        total += energyPJ(static_cast<PowerComponent>(c));
    return total;
}

double
PowerModel::averagePowerW() const
{
    return tech.wattsFromPJ(totalEnergyPJ(),
                            static_cast<double>(numCycles));
}

double
PowerModel::intUnitsEnergyPJ() const
{
    return energyPJ(PowerComponent::IntAlu) +
           energyPJ(PowerComponent::IntMulDiv);
}

double
PowerModel::fpUnitsEnergyPJ() const
{
    return energyPJ(PowerComponent::FpAlu) +
           energyPJ(PowerComponent::FpMulDiv);
}

double
PowerModel::latchEnergyPJ() const
{
    // Figure-14 semantics: the latch group carries each scheme's own
    // latch-side control overhead (DCG's extended latches, DDCG's
    // comparators).
    return energyPJ(PowerComponent::Latches) +
           energyPJ(PowerComponent::DcgControl) +
           energyPJ(PowerComponent::DdcgCompare);
}

double
PowerModel::dcacheEnergyPJ() const
{
    return energyPJ(PowerComponent::DcacheDecoder) +
           energyPJ(PowerComponent::DcacheArray);
}

double
PowerModel::resultBusEnergyPJ() const
{
    return energyPJ(PowerComponent::ResultBus);
}

} // namespace dcg
