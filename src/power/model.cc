#include "power/model.hh"

#include "common/log.hh"
#include "isa/micro_op.hh"

namespace dcg {

const char *
powerComponentName(PowerComponent c)
{
    switch (c) {
      case PowerComponent::Latches:       return "latches";
      case PowerComponent::DcgControl:    return "dcg_control";
      case PowerComponent::DdcgCompare:   return "ddcg_compare";
      case PowerComponent::ClockWiring:   return "clock_wiring";
      case PowerComponent::IntAlu:        return "int_alu";
      case PowerComponent::IntMulDiv:    return "int_muldiv";
      case PowerComponent::FpAlu:         return "fp_alu";
      case PowerComponent::FpMulDiv:      return "fp_muldiv";
      case PowerComponent::DcacheDecoder: return "dcache_decoder";
      case PowerComponent::DcacheArray:   return "dcache_array";
      case PowerComponent::Icache:        return "icache";
      case PowerComponent::Bpred:         return "bpred";
      case PowerComponent::Rename:        return "rename";
      case PowerComponent::IssueQueue:    return "issue_queue";
      case PowerComponent::CgoooSched:    return "cgooo_sched";
      case PowerComponent::Regfile:       return "regfile";
      case PowerComponent::Lsq:           return "lsq";
      case PowerComponent::Rob:           return "rob";
      case PowerComponent::ResultBus:     return "result_bus";
      case PowerComponent::L2:            return "l2";
      default: break;
    }
    return "?";
}

PowerModel::PowerModel(const CoreConfig &core_cfg, const Technology &tech_,
                       StatRegistry &stats, const Cache *l2_)
    : cfg(core_cfg),
      tech(tech_),
      l2(l2_),
      totalStat(stats.scalar("power.total_energy_pj",
                             "total dynamic energy (pJ)")),
      avgPowerStat(stats.formula("power.avg_watts", "average power (W)"))
{
    slotBits = kMaxSrcs * cfg.operandBits + cfg.controlBitsPerSlot;

    // DCG control: GRANT bits for every FU instance piped through the
    // issue/read latches, the one-hot issued-slot encoding piped to the
    // writeback stage, and D-cache port / result-bus control bits
    // (Sections 3.1-3.4). These extended latches are never gated.
    unsigned fu_instances = 0;
    for (unsigned t = 0; t < kNumFuTypes; ++t)
        fu_instances += cfg.fuCount[t];
    const unsigned pipe_len = cfg.depth.read + 1 + cfg.depth.mem +
                              cfg.depth.wb;
    controlBits = fu_instances * (cfg.depth.read + 1) +
                  cfg.issueWidth * pipe_len +
                  cfg.dcachePorts * (cfg.depth.read + 2) +
                  cfg.numResultBuses * 2;

    // Everything that does not depend on per-cycle state is computed
    // once here, off the tick path.
    v2 = tech.vdd * tech.vdd;
    guardedBits = 0.0;
    for (unsigned p = 0; p < kNumLatchPhases; ++p) {
        phaseGroups[p] = cfg.depth.groupsFor(static_cast<LatchPhase>(p));
        guardedBits += static_cast<double>(phaseGroups[p]) *
                       cfg.issueWidth * slotBits;
    }
    latchSlotPJ = static_cast<double>(slotBits) * tech.latchBitCap * v2;
    comparePJ = guardedBits * tech.latchBitCap * v2;
    controlPJ = static_cast<double>(controlBits) * tech.latchBitCap * v2;
    wiringPJ = tech.clockWiringCap * v2;

    const double fu_clock_cap[kNumFuTypes] = {
        tech.intAluClockCap, tech.intMulDivClockCap,
        tech.fpAluClockCap, tech.fpMulDivClockCap};
    const double fu_op_cap[kNumFuTypes] = {
        tech.intAluOpCap, tech.intMulDivOpCap,
        tech.fpAluOpCap, tech.fpMulDivOpCap};
    const PowerComponent fu_comp[kNumFuTypes] = {
        PowerComponent::IntAlu, PowerComponent::IntMulDiv,
        PowerComponent::FpAlu, PowerComponent::FpMulDiv};
    for (unsigned t = 0; t < kNumFuTypes; ++t) {
        fuClockPJ[t] = fu_clock_cap[t] * v2;
        fuOpPJ[t] = fu_op_cap[t] * v2;
        fuComp[t] = fu_comp[t];
    }

    decoderPJ = tech.dcacheDecoderCap * v2;
    arrayPJ = tech.dcacheArrayAccessCap * v2;
    icachePJ = tech.icacheAccessCap * v2;
    fetchPJ = tech.fetchPerInstCap * v2;
    bpredPJ = tech.bpredAccessCap * v2;
    renamePJ = tech.renameOpCap * v2;
    iqClockPJ = tech.iqClockCap * v2;
    iqWakeupPJ = tech.iqWakeupCap * v2;
    iqSelectPJ = tech.iqSelectCap * v2;
    regReadPJ = tech.regReadCap * v2;
    regWritePJ = tech.regWriteCap * v2;
    lsqPJ = tech.lsqOpCap * v2;
    robPJ = tech.robOpCap * v2;
    busClockPJ = tech.resultBusClockCap * v2;
    busDrivePJ = tech.resultBusDriveCap * v2;

    avgPowerStat.define([this]() { return averagePowerW(); });
}

void
PowerModel::reset()
{
    energy.fill(0.0);
    idleClasses.clear();
    numCycles = 0;
}

std::array<double, kNumPowerComponents>
PowerModel::idleClassEnergy(const GateState &g) const
{
    DCG_ASSERT(g.latchBitGatedFraction >= 0.0 &&
               g.latchBitGatedFraction <= 1.0,
               "bad latch bit-gated fraction");
    DCG_ASSERT(g.latchCompareOverhead >= 0.0,
               "negative latch compare overhead");
    DCG_ASSERT(g.iqGatedFraction >= 0.0 && g.iqGatedFraction <= 1.0,
               "bad IQ gated fraction");
    DCG_ASSERT(g.iqSchedOverhead >= 0.0,
               "negative IQ scheduler overhead");

    std::array<double, kNumPowerComponents> e{};
    auto at = [&e](PowerComponent c) -> double & {
        return e[static_cast<unsigned>(c)];
    };

    double latch_pj = 0.0;
    for (unsigned p = 0; p < kNumLatchPhases; ++p) {
        DCG_ASSERT(g.latchSlotsGated[p] <= cfg.issueWidth,
                   "gated latch slots exceed width (phase ", p, ")");
        const unsigned clocked = cfg.issueWidth - g.latchSlotsGated[p];
        latch_pj += static_cast<double>(phaseGroups[p]) * clocked *
                    latchSlotPJ * (1.0 - g.latchBitGatedFraction);
    }
    at(PowerComponent::Latches) = latch_pj;

    if (g.latchCompareOverhead > 0.0)
        at(PowerComponent::DdcgCompare) = g.latchCompareOverhead * comparePJ;
    if (g.dcgControlActive)
        at(PowerComponent::DcgControl) = controlPJ;
    at(PowerComponent::ClockWiring) = wiringPJ;

    for (unsigned t = 0; t < kNumFuTypes; ++t) {
        const unsigned total = cfg.fuCount[t];
        const unsigned gated = static_cast<unsigned>(
            __builtin_popcount(g.fuGateMask[t]));
        DCG_ASSERT(gated <= total, "gate mask exceeds FU count");
        at(fuComp[t]) += (total - gated) * fuClockPJ[t];
    }

    DCG_ASSERT(g.dcachePortsGated <= cfg.dcachePorts,
               "gated D-cache ports exceed port count");
    at(PowerComponent::DcacheDecoder) =
        (cfg.dcachePorts - g.dcachePortsGated) * decoderPJ;

    at(PowerComponent::IssueQueue) =
        iqClockPJ * (1.0 - g.iqGatedFraction);
    if (g.iqSchedOverhead > 0.0)
        at(PowerComponent::CgoooSched) = g.iqSchedOverhead * iqClockPJ;

    DCG_ASSERT(g.resultBusesGated <= cfg.numResultBuses,
               "gated result buses exceed bus count");
    at(PowerComponent::ResultBus) =
        (cfg.numResultBuses - g.resultBusesGated) * busClockPJ;

    return e;
}

void
PowerModel::chargeIdle(const GateState &g, std::uint64_t cycles)
{
    numCycles += cycles;
    for (auto &c : idleClasses) {
        if (c.g == g) {
            c.count += cycles;
            return;
        }
    }
    // A handful of distinct idle decisions per run (one per scheme
    // mode), so a linear scan beats any map.
    idleClasses.push_back({g, cycles, idleClassEnergy(g)});
}

void
PowerModel::tick(const CycleActivity &act, const GateState &g)
{
    if (act.none()) {
        // All-idle cycles are counted, not accumulated, so that a
        // skipped idle window charges bit-identical energy.
        chargeIdle(g, 1);
        return;
    }

    ++numCycles;

    // --- Consistency: deterministic gating never gates a used block.
    for (unsigned t = 0; t < kNumFuTypes; ++t) {
        DCG_ASSERT((g.fuGateMask[t] & act.fuBusyMask[t]) == 0,
                   "gated a busy execution unit (type ", t, ")");
    }
    for (unsigned p = 0; p < kNumLatchPhases; ++p) {
        DCG_ASSERT(g.latchSlotsGated[p] + act.latchFlux[p] <=
                   cfg.issueWidth,
                   "gated latch slots overlap used slots (phase ", p, ")");
    }
    DCG_ASSERT(g.dcachePortsGated + act.dcachePortsUsed <=
               cfg.dcachePorts, "gated a busy D-cache port");
    DCG_ASSERT(g.resultBusesGated + act.resultBusUsed <=
               cfg.numResultBuses, "gated a busy result bus");
    DCG_ASSERT(g.latchBitGatedFraction >= 0.0 &&
               g.latchBitGatedFraction <= 1.0,
               "bad latch bit-gated fraction");
    DCG_ASSERT(g.latchCompareOverhead >= 0.0,
               "negative latch compare overhead");
    DCG_ASSERT(g.iqWakeupScale >= 0.0 && g.iqWakeupScale <= 1.0,
               "bad IQ wakeup scale");
    DCG_ASSERT(g.iqSchedOverhead >= 0.0,
               "negative IQ scheduler overhead");

    // --- Pipeline latches: clock power for every un-gated slot, in
    // every latch group of every phase. DDCG's per-bit comparators
    // additionally hold the clock low for the unchanged-bit fraction
    // within clocked slots (latchBitGatedFraction) and charge the
    // comparator network for every guarded bit, clocked or not.
    double latch_pj = 0.0;
    for (unsigned p = 0; p < kNumLatchPhases; ++p) {
        const unsigned clocked = cfg.issueWidth - g.latchSlotsGated[p];
        latch_pj += static_cast<double>(phaseGroups[p]) * clocked *
                    latchSlotPJ * (1.0 - g.latchBitGatedFraction);
    }
    addEnergy(PowerComponent::Latches, latch_pj);

    if (g.latchCompareOverhead > 0.0) {
        addEnergy(PowerComponent::DdcgCompare,
                  g.latchCompareOverhead * comparePJ);
    }

    if (g.dcgControlActive)
        addEnergy(PowerComponent::DcgControl, controlPJ);

    // --- Global clock spine: charged every cycle regardless.
    addEnergy(PowerComponent::ClockWiring, wiringPJ);

    // --- Execution units: clock/precharge for un-gated instances plus
    // switching for started operations.
    for (unsigned t = 0; t < kNumFuTypes; ++t) {
        const unsigned total = cfg.fuCount[t];
        const unsigned gated = static_cast<unsigned>(
            __builtin_popcount(g.fuGateMask[t]));
        DCG_ASSERT(gated <= total, "gate mask exceeds FU count");
        addEnergy(fuComp[t], (total - gated) * fuClockPJ[t] +
                             act.fuStarts[t] * fuOpPJ[t]);
    }

    // --- D-cache: per-port dynamic decoders (gateable) + array energy
    // per access (charged only when accessed).
    addEnergy(PowerComponent::DcacheDecoder,
              (cfg.dcachePorts - g.dcachePortsGated) * decoderPJ);
    addEnergy(PowerComponent::DcacheArray,
              act.dcacheAccesses * arrayPJ);

    // --- Front end.
    addEnergy(PowerComponent::Icache,
              act.icacheAccesses * icachePJ +
              (act.fetched + act.wrongPathFetched) * fetchPJ);
    addEnergy(PowerComponent::Bpred, act.bpredLookups * bpredPJ);

    addEnergy(PowerComponent::Rename, act.renamed * renamePJ);

    // --- Issue queue: CAM precharge every cycle (PLB and CG-OoO gate
    // slices/blocks; DCG leaves it to the scheme of [6], Sec 2.2.2).
    // CG-OoO confines the wakeup broadcast to active blocks
    // (iqWakeupScale) and pays its block scheduler (iqSchedOverhead,
    // a fraction of the queue clock).
    DCG_ASSERT(g.iqGatedFraction >= 0.0 && g.iqGatedFraction <= 1.0,
               "bad IQ gated fraction");
    addEnergy(PowerComponent::IssueQueue,
              iqClockPJ * (1.0 - g.iqGatedFraction) +
              act.iqWakeups * iqWakeupPJ * g.iqWakeupScale +
              act.issued * iqSelectPJ);
    if (g.iqSchedOverhead > 0.0)
        addEnergy(PowerComponent::CgoooSched, g.iqSchedOverhead * iqClockPJ);

    addEnergy(PowerComponent::Regfile,
              act.regReads * regReadPJ + act.regWrites * regWritePJ);

    addEnergy(PowerComponent::Lsq, act.lsqOps * lsqPJ);
    addEnergy(PowerComponent::Rob, (act.renamed + act.committed) * robPJ);

    // --- Result bus drivers: precharge for un-gated buses + switching
    // per drive.
    addEnergy(PowerComponent::ResultBus,
              (cfg.numResultBuses - g.resultBusesGated) * busClockPJ +
              act.resultBusUsed * busDrivePJ);
}

double
PowerModel::accumEnergyPJ(unsigned c) const
{
    double pj = energy[c];
    for (const auto &cls : idleClasses)
        pj += static_cast<double>(cls.count) * cls.perCycle[c];
    return pj;
}

void
PowerModel::foldStats() const
{
    // L2 is excluded: the registry scalar mirrors what addEnergy used
    // to accumulate, and L2 energy has always been report-time only.
    double total = 0.0;
    for (unsigned c = 0; c < kNumPowerComponents; ++c) {
        if (static_cast<PowerComponent>(c) != PowerComponent::L2)
            total += accumEnergyPJ(c);
    }
    totalStat.set(total);
}

double
PowerModel::energyPJ(PowerComponent c) const
{
    if (c == PowerComponent::L2 && l2) {
        return static_cast<double>(l2->numAccesses()) *
               tech.l2AccessCap * tech.vdd * tech.vdd;
    }
    return accumEnergyPJ(static_cast<unsigned>(c));
}

double
PowerModel::totalEnergyPJ() const
{
    double total = 0.0;
    for (unsigned c = 0; c < kNumPowerComponents; ++c)
        total += energyPJ(static_cast<PowerComponent>(c));
    return total;
}

double
PowerModel::averagePowerW() const
{
    return tech.wattsFromPJ(totalEnergyPJ(),
                            static_cast<double>(numCycles));
}

double
PowerModel::intUnitsEnergyPJ() const
{
    return energyPJ(PowerComponent::IntAlu) +
           energyPJ(PowerComponent::IntMulDiv);
}

double
PowerModel::fpUnitsEnergyPJ() const
{
    return energyPJ(PowerComponent::FpAlu) +
           energyPJ(PowerComponent::FpMulDiv);
}

double
PowerModel::latchEnergyPJ() const
{
    // Figure-14 semantics: the latch group carries each scheme's own
    // latch-side control overhead (DCG's extended latches, DDCG's
    // comparators).
    return energyPJ(PowerComponent::Latches) +
           energyPJ(PowerComponent::DcgControl) +
           energyPJ(PowerComponent::DdcgCompare);
}

double
PowerModel::dcacheEnergyPJ() const
{
    return energyPJ(PowerComponent::DcacheDecoder) +
           energyPJ(PowerComponent::DcacheArray);
}

double
PowerModel::resultBusEnergyPJ() const
{
    return energyPJ(PowerComponent::ResultBus);
}

} // namespace dcg
