/**
 * @file
 * Per-cycle clock-gate decisions handed from a gating policy (none /
 * DCG / PLB) to the power model.
 */

#ifndef DCG_POWER_GATE_STATE_HH
#define DCG_POWER_GATE_STATE_HH

#include <array>
#include <cstdint>

#include "isa/op_class.hh"
#include "pipeline/config.hh"

namespace dcg {

/**
 * Consumer of idle-cycle accounting (implemented by the power model):
 * charge @p cycles all-idle cycles under gate decision @p g. Counting
 * cycles per gate state — instead of re-summing per-cycle floating
 * point — is what makes a skipped idle window charge bit-identical
 * energy to the same window simulated cycle by cycle.
 */
struct GateState;
class IdleSink
{
  public:
    virtual ~IdleSink() = default;
    virtual void chargeIdle(const GateState &g,
                            std::uint64_t cycles) = 0;
};

struct GateState
{
    /** Bitmask of gated execution-unit instances per FU type. */
    std::array<std::uint16_t, kNumFuTypes> fuGateMask{};

    /** Number of latch slots gated in each latch phase (0..width). */
    std::array<std::uint8_t, kNumLatchPhases> latchSlotsGated{};

    /** D-cache port decoders gated this cycle. */
    std::uint8_t dcachePortsGated = 0;

    /** Result-bus drivers gated this cycle. */
    std::uint8_t resultBusesGated = 0;

    /**
     * Fraction of the issue queue clock-gated (PLB low-power modes,
     * CG-OoO empty blocks; DCG leaves the issue queue alone,
     * Sec 2.2.2).
     */
    double iqGatedFraction = 0.0;

    /**
     * True when the DCG control circuitry (extended latches carrying
     * GRANT signals / one-hot encodings) is present and clocked — the
     * overhead the paper charges against DCG's latch savings.
     */
    bool dcgControlActive = false;

    /**
     * DDCG (arXiv 1806.02271): fraction of the bits *within clocked
     * latch slots* whose next state equals their current state, so the
     * per-bit comparator holds their clock low. Slot-level gating
     * (latchSlotsGated) composes with this bit-level term.
     */
    double latchBitGatedFraction = 0.0;

    /**
     * DDCG comparator overhead: energy of the per-bit XOR/compare
     * network, as a fraction of latchBitCap charged for every guarded
     * latch bit every cycle (the comparator must observe its input
     * even when the bit's clock is gated).
     */
    double latchCompareOverhead = 0.0;

    /**
     * CG-OoO (arXiv 1606.01607): wakeup broadcast confined to active
     * issue-queue blocks — scales the per-wakeup CAM energy. 1 = full
     * broadcast (every other scheme).
     */
    double iqWakeupScale = 1.0;

    /**
     * CG-OoO block-scheduler overhead, as a fraction of iqClockCap
     * charged per cycle (scaled by the active-block fraction inside
     * the controller).
     */
    double iqSchedOverhead = 0.0;

    void reset() { *this = GateState{}; }

    /**
     * Field-wise equality (not memcmp: struct padding must not make
     * identical decisions compare unequal). The power model buckets
     * all-idle cycles into per-GateState classes keyed by this.
     */
    bool
    operator==(const GateState &o) const
    {
        return fuGateMask == o.fuGateMask &&
               latchSlotsGated == o.latchSlotsGated &&
               dcachePortsGated == o.dcachePortsGated &&
               resultBusesGated == o.resultBusesGated &&
               iqGatedFraction == o.iqGatedFraction &&
               dcgControlActive == o.dcgControlActive &&
               latchBitGatedFraction == o.latchBitGatedFraction &&
               latchCompareOverhead == o.latchCompareOverhead &&
               iqWakeupScale == o.iqWakeupScale &&
               iqSchedOverhead == o.iqSchedOverhead;
    }
};

} // namespace dcg

#endif // DCG_POWER_GATE_STATE_HH
