/**
 * @file
 * Per-cycle clock-gate decisions handed from a gating policy (none /
 * DCG / PLB) to the power model.
 */

#ifndef DCG_POWER_GATE_STATE_HH
#define DCG_POWER_GATE_STATE_HH

#include <array>
#include <cstdint>

#include "isa/op_class.hh"
#include "pipeline/config.hh"

namespace dcg {

struct GateState
{
    /** Bitmask of gated execution-unit instances per FU type. */
    std::array<std::uint16_t, kNumFuTypes> fuGateMask{};

    /** Number of latch slots gated in each latch phase (0..width). */
    std::array<std::uint8_t, kNumLatchPhases> latchSlotsGated{};

    /** D-cache port decoders gated this cycle. */
    std::uint8_t dcachePortsGated = 0;

    /** Result-bus drivers gated this cycle. */
    std::uint8_t resultBusesGated = 0;

    /**
     * Fraction of the issue queue clock-gated (PLB low-power modes;
     * DCG leaves the issue queue alone, Sec 2.2.2).
     */
    double iqGatedFraction = 0.0;

    /**
     * True when the DCG control circuitry (extended latches carrying
     * GRANT signals / one-hot encodings) is present and clocked — the
     * overhead the paper charges against DCG's latch savings.
     */
    bool dcgControlActive = false;

    void reset() { *this = GateState{}; }
};

} // namespace dcg

#endif // DCG_POWER_GATE_STATE_HH
