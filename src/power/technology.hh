/**
 * @file
 * 0.18 µm technology parameters for the Wattch-style power model.
 *
 * Methodology follows Wattch: every component is modelled as an
 * effective switched capacitance; dynamic energy per event is
 * E = C_eff * Vdd^2. The C_eff values below are *effective* loads that
 * fold in local clock buffering, wire capacitance and short-circuit
 * factors — they are calibrated so that the baseline (no clock gating)
 * component breakdown of the 8-wide Table-1 machine matches the
 * distribution Wattch reports for comparable processors (clock+latch
 * power ≈ 30-35 % of the total, per Section 1 of the paper).
 *
 * Absolute watts are therefore plausible (tens of watts at 1 GHz /
 * 1.8 V) but not authoritative; all paper comparisons are expressed as
 * *percent savings*, which depend on the breakdown, not on the scale.
 */

#ifndef DCG_POWER_TECHNOLOGY_HH
#define DCG_POWER_TECHNOLOGY_HH

namespace dcg {

struct Technology
{
    double vdd = 1.8;           ///< supply voltage (V)
    double frequencyGHz = 1.0;  ///< clock frequency

    /// @name Effective capacitances in pF (energy = C * Vdd^2, in pJ)
    /// @{

    /** Clock + data load of one pipeline-latch bit. */
    double latchBitCap = 0.100;

    /** Global clock spine + drivers (charged every cycle, ungateable). */
    double clockWiringCap = 1400.0;

    /** Per-unit dynamic-logic clock/precharge load when not gated. */
    double intAluClockCap = 75.0;
    double intMulDivClockCap = 72.0;
    double fpAluClockCap = 38.0;
    double fpMulDivClockCap = 38.0;

    /** Additional switching per operation started. */
    double intAluOpCap = 37.0;
    double intMulDivOpCap = 62.0;
    double fpAluOpCap = 46.0;
    double fpMulDivOpCap = 77.0;

    /** D-cache wordline decoder, per port per cycle (dynamic logic). */
    double dcacheDecoderCap = 170.0;
    /** D-cache array (wordline/bitline/senseamp) per access. */
    double dcacheArrayAccessCap = 858.0;

    /** I-cache access per fetched line. */
    double icacheAccessCap = 790.0;
    /** Per-instruction fetch/decode path switching. */
    double fetchPerInstCap = 59.0;

    /** Branch predictor arrays per lookup+update. */
    double bpredAccessCap = 216.0;

    /** Rename table per renamed instruction. */
    double renameOpCap = 103.0;

    /** Issue queue CAM/selection precharge per cycle (ungated by DCG). */
    double iqClockCap = 1300.0;
    double iqWakeupCap = 40.0;  ///< per result broadcast
    double iqSelectCap = 28.0;  ///< per granted instruction

    /** Register file. */
    double regReadCap = 128.0;
    double regWriteCap = 146.0;

    /** LSQ CAM per memory operation. */
    double lsqOpCap = 169.0;
    /** ROB per dispatch/commit event. */
    double robOpCap = 61.0;

    /** Result bus driver: per-bus precharge per cycle, and per drive. */
    double resultBusClockCap = 45.0;
    double resultBusDriveCap = 49.0;

    /** L2 array per access. */
    double l2AccessCap = 925.0;
    /// @}

    /** Energy (pJ) for an effective capacitance (pF). */
    double energyPJ(double cap_pf) const { return cap_pf * vdd * vdd; }

    /** Convert accumulated pJ over cycles to average watts. */
    double
    wattsFromPJ(double total_pj, double cycles) const
    {
        if (cycles <= 0.0)
            return 0.0;
        // pJ per cycle * GHz = mW * 1e3 ... : E/t = pJ * (cycles/s) / cycles
        return total_pj * 1e-12 * frequencyGHz * 1e9 / cycles;
    }
};

} // namespace dcg

#endif // DCG_POWER_TECHNOLOGY_HH
