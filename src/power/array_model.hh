/**
 * @file
 * CACTI-lite: analytical switched-capacitance estimates for SRAM-style
 * array structures (caches, register files, RAM/CAM queues) at 0.18 µm.
 *
 * This follows the Wattch/CACTI decomposition the paper relies on
 * (Sec 3.3 shows the three-stage decoder it gates): a port access
 * charges the pre-decoder and row decoder, one wordline, the bitline
 * columns and the sense amplifiers; a CAM search charges tag lines and
 * match lines instead.
 *
 * The default Technology constants in technology.hh are *calibrated*
 * so the whole-processor breakdown lands on the published Wattch
 * distribution; this module provides the *derived* alternative
 * (Technology::fromGeometry) and the validation path between the two —
 * the derived values must land within small factors of the calibrated
 * ones, which the test suite checks.
 */

#ifndef DCG_POWER_ARRAY_MODEL_HH
#define DCG_POWER_ARRAY_MODEL_HH

namespace dcg {

/** Shape of one SRAM array bank. */
struct ArrayGeometry
{
    unsigned rows = 128;
    unsigned cols = 128;      ///< bit columns read/written per access
    unsigned readPorts = 1;
    unsigned writePorts = 1;

    /** Total bits. */
    unsigned long bits() const
    { return static_cast<unsigned long>(rows) * cols; }
};

/** 0.18 µm device/wire parameters used by the analytical model. */
struct ArrayTechnology
{
    /** Gate capacitance of a minimum inverter input (pF). */
    double cGateMin = 0.0018;
    /** Drain capacitance on a bitline per cell (pF). */
    double cDrain = 0.0011;
    /** Pass-gate capacitance per cell on a wordline (pF). */
    double cPass = 0.0016;
    /** Wire capacitance per micron (pF/um). */
    double cWirePerUm = 0.00028;
    /** SRAM cell width/height (um) incl. one port. */
    double cellWidthUm = 1.84;
    double cellHeightUm = 1.44;
    /** Extra cell pitch per additional port (um). */
    double portPitchUm = 0.92;
    /** Sense-amp effective capacitance per column (pF). */
    double cSense = 0.0070;
    /** Driver sizing factor folded into decoder/wordline drivers. */
    double driverFanout = 4.0;
};

/**
 * Per-access and per-cycle effective capacitances of one array.
 * All values in pF; energy = C * Vdd^2.
 */
class ArrayPowerModel
{
  public:
    ArrayPowerModel(const ArrayGeometry &geom,
                    const ArrayTechnology &tech = ArrayTechnology{});

    /** Row pre-decoder + decoder switched cap per access (one port). */
    double decoderCap() const;

    /** One wordline swing across the row. */
    double wordlineCap() const;

    /** Bitline precharge + discharge for the accessed columns. */
    double bitlineCap() const;

    /** Sense amplifiers for the accessed columns. */
    double senseCap() const;

    /** Full read access through one port. */
    double readAccessCap() const;

    /** Full write access through one port (no sense amps). */
    double writeAccessCap() const;

    /**
     * CAM search across all rows (tag broadcast + match lines), as in
     * the issue-queue wakeup or LSQ address check.
     * @param tag_bits width of the comparison
     */
    double camSearchCap(unsigned tag_bits) const;

    const ArrayGeometry &geometry() const { return geom; }

  private:
    double wireWidthUm() const;
    double wireHeightUm() const;

    ArrayGeometry geom;
    ArrayTechnology tech;
};

} // namespace dcg

#endif // DCG_POWER_ARRAY_MODEL_HH
