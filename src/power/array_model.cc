#include "power/array_model.hh"

#include <cmath>

#include "common/log.hh"

namespace dcg {

ArrayPowerModel::ArrayPowerModel(const ArrayGeometry &geom_,
                                 const ArrayTechnology &tech_)
    : geom(geom_), tech(tech_)
{
    DCG_ASSERT(geom.rows >= 1 && geom.cols >= 1, "empty array");
    DCG_ASSERT(geom.readPorts + geom.writePorts >= 1, "array needs ports");
}

double
ArrayPowerModel::wireWidthUm() const
{
    const unsigned ports = geom.readPorts + geom.writePorts;
    return geom.cols * (tech.cellWidthUm +
                        (ports - 1) * tech.portPitchUm);
}

double
ArrayPowerModel::wireHeightUm() const
{
    const unsigned ports = geom.readPorts + geom.writePorts;
    return geom.rows * (tech.cellHeightUm +
                        (ports - 1) * tech.portPitchUm);
}

double
ArrayPowerModel::decoderCap() const
{
    // Three-stage decoder as in Figure 8 of the paper: 3x8 NAND
    // pre-decoders, a NOR per row, and the wordline drivers. The NOR
    // stage dominates: every row's NOR input charges on the predecode
    // lines each cycle (why it is worth clock-gating).
    const double predecode_gates = std::ceil(geom.rows / 8.0) * 8.0;
    const double predecode = predecode_gates * tech.cGateMin *
                             tech.driverFanout;
    const double nor_stage = geom.rows * tech.cGateMin * 3.0;
    const double drivers = tech.driverFanout * tech.cGateMin *
                           std::log2(std::max(2u, geom.rows));
    return predecode + nor_stage + drivers;
}

double
ArrayPowerModel::wordlineCap() const
{
    return geom.cols * tech.cPass +
           wireWidthUm() * tech.cWirePerUm +
           tech.driverFanout * tech.cGateMin;
}

double
ArrayPowerModel::bitlineCap() const
{
    // Precharge + swing on one bitline pair per column.
    const double per_column = geom.rows * tech.cDrain +
                              wireHeightUm() * tech.cWirePerUm;
    return geom.cols * per_column;
}

double
ArrayPowerModel::senseCap() const
{
    return geom.cols * tech.cSense;
}

double
ArrayPowerModel::readAccessCap() const
{
    return decoderCap() + wordlineCap() + bitlineCap() + senseCap();
}

double
ArrayPowerModel::writeAccessCap() const
{
    // Full-swing write drivers, no sense amps.
    return decoderCap() + wordlineCap() + bitlineCap() * 1.2;
}

double
ArrayPowerModel::camSearchCap(unsigned tag_bits) const
{
    DCG_ASSERT(tag_bits >= 1, "CAM search needs a tag");
    // Tag broadcast down the columns + one matchline per row.
    const double taglines = tag_bits *
        (geom.rows * tech.cPass + wireHeightUm() * tech.cWirePerUm);
    const double matchlines = geom.rows *
        (tag_bits * tech.cDrain + wireWidthUm() * tech.cWirePerUm * 0.5);
    return taglines + matchlines;
}

} // namespace dcg
