/**
 * @file
 * Wattch-style per-cycle power accounting.
 *
 * Accounting rule (paper Sec 4.2): a circuit that is clock-gated in a
 * cycle contributes zero power for that cycle; an enabled circuit
 * contributes its full clock/precharge power plus per-event switching
 * energy; leakage is not modelled. DCG's control overhead (extended
 * latches) is charged whenever the DCG controller is active.
 *
 * All-idle cycles (CycleActivity::none()) are not accumulated in
 * floating point: they are *counted* per distinct GateState (an "idle
 * class") and multiplied out at report time. That makes charging k
 * skipped idle cycles in one call (chargeIdle, the IdleSink hook used
 * by skip-ahead) bit-identical to ticking the same k cycles one by
 * one — the property tests/sim/skipahead_test.cc locks down.
 */

#ifndef DCG_POWER_MODEL_HH
#define DCG_POWER_MODEL_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "cache/cache.hh"
#include "common/stats.hh"
#include "pipeline/activity.hh"
#include "pipeline/config.hh"
#include "power/gate_state.hh"
#include "power/technology.hh"

namespace dcg {

/** Power-accounting component categories. */
enum class PowerComponent : std::uint8_t
{
    Latches,        ///< pipeline latches, all phases
    DcgControl,     ///< DCG extended latches / AND gates
    DdcgCompare,    ///< DDCG per-bit next-state comparators
    ClockWiring,    ///< global clock spine (ungateable)
    IntAlu,
    IntMulDiv,
    FpAlu,
    FpMulDiv,
    DcacheDecoder,
    DcacheArray,
    Icache,
    Bpred,
    Rename,
    IssueQueue,
    CgoooSched,     ///< CG-OoO per-block scheduler overhead
    Regfile,
    Lsq,
    Rob,
    ResultBus,
    L2,
    NumComponents
};

inline constexpr unsigned kNumPowerComponents =
    static_cast<unsigned>(PowerComponent::NumComponents);

const char *powerComponentName(PowerComponent c);

class PowerModel : public IdleSink
{
  public:
    /**
     * @param core_cfg structure widths/counts (latch sizing, FU pool)
     * @param tech technology constants
     * @param l2 optional L2 cache whose access count is charged at
     *        report time (identical across gating schemes)
     */
    PowerModel(const CoreConfig &core_cfg, const Technology &tech,
               StatRegistry &stats, const Cache *l2 = nullptr);

    /**
     * Account one cycle. Asserts that @p gates never gate a resource
     * that @p act shows in use — the defining property of
     * *deterministic* gating. All-idle cycles route through
     * chargeIdle(gates, 1).
     */
    void tick(const CycleActivity &act, const GateState &gates);

    /**
     * Count @p cycles all-idle cycles under @p g (IdleSink). Used both
     * by tick() for a single idle cycle and by the gating schemes'
     * skipIdle hooks for a whole skipped window.
     */
    void chargeIdle(const GateState &g, std::uint64_t cycles) override;

    /** Total energy so far in pJ (including L2 at current counts). */
    double totalEnergyPJ() const;

    /** Energy of one component in pJ. */
    double energyPJ(PowerComponent c) const;

    /** Average power in watts over the ticked cycles. */
    double averagePowerW() const;

    std::uint64_t cycles() const { return numCycles; }

    /**
     * Write the accumulated total into the power.total_energy_pj
     * registry scalar (kept out of the tick path). Idempotent; called
     * at report time.
     */
    void foldStats() const;

    /**
     * Zero the accumulated energies and idle classes
     * (measurement-window reset after warm-up). Registry scalars are
     * reset separately via StatRegistry::resetAll().
     */
    void reset();

    const Technology &technology() const { return tech; }

    /// @name Convenience groupings used by the paper's figures
    /// @{
    double intUnitsEnergyPJ() const;
    double fpUnitsEnergyPJ() const;
    /** Latches + DCG control + DDCG comparators (Figure 14). */
    double latchEnergyPJ() const;
    /** Decoder + array (Figure 15 denominators are total D-cache). */
    double dcacheEnergyPJ() const;
    double resultBusEnergyPJ() const;
    /// @}

    /** Latch bits in one slot (operands + control). */
    unsigned bitsPerLatchSlot() const { return slotBits; }
    /** DCG control latch bits (always clocked when DCG is active). */
    unsigned dcgControlBits() const { return controlBits; }

  private:
    /**
     * One distinct all-idle gate decision: how many cycles it covered
     * and the per-cycle energy it implies per component.
     */
    struct IdleClass
    {
        GateState g;
        std::uint64_t count = 0;
        std::array<double, kNumPowerComponents> perCycle{};
    };

    void
    addEnergy(PowerComponent c, double pj)
    {
        energy[static_cast<unsigned>(c)] += pj;
    }

    /** Per-cycle energy of an all-idle cycle under @p g. */
    std::array<double, kNumPowerComponents>
    idleClassEnergy(const GateState &g) const;

    /** Accumulated energy incl. idle classes (no L2 special case). */
    double accumEnergyPJ(unsigned c) const;

    CoreConfig cfg;
    Technology tech;
    const Cache *l2;

    unsigned slotBits;
    unsigned controlBits;

    /// @name Constants precomputed off the tick path
    /// @{
    double v2;                    ///< vdd^2
    std::array<unsigned, kNumLatchPhases> phaseGroups{};
    double latchSlotPJ;           ///< slotBits x latchBitCap x v2
    double guardedBits;           ///< total latch bits, all phases
    double comparePJ;             ///< guardedBits x latchBitCap x v2
    double controlPJ;             ///< controlBits x latchBitCap x v2
    double wiringPJ;
    std::array<double, kNumFuTypes> fuClockPJ{};
    std::array<double, kNumFuTypes> fuOpPJ{};
    std::array<PowerComponent, kNumFuTypes> fuComp{};
    double decoderPJ;
    double arrayPJ;
    double icachePJ;
    double fetchPJ;
    double bpredPJ;
    double renamePJ;
    double iqClockPJ;
    double iqWakeupPJ;
    double iqSelectPJ;
    double regReadPJ;
    double regWritePJ;
    double lsqPJ;
    double robPJ;
    double busClockPJ;
    double busDrivePJ;
    /// @}

    std::array<double, kNumPowerComponents> energy{};
    std::vector<IdleClass> idleClasses;
    std::uint64_t numCycles = 0;

    Scalar &totalStat;
    Formula &avgPowerStat;
};

} // namespace dcg

#endif // DCG_POWER_MODEL_HH
