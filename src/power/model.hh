/**
 * @file
 * Wattch-style per-cycle power accounting.
 *
 * Accounting rule (paper Sec 4.2): a circuit that is clock-gated in a
 * cycle contributes zero power for that cycle; an enabled circuit
 * contributes its full clock/precharge power plus per-event switching
 * energy; leakage is not modelled. DCG's control overhead (extended
 * latches) is charged whenever the DCG controller is active.
 */

#ifndef DCG_POWER_MODEL_HH
#define DCG_POWER_MODEL_HH

#include <array>
#include <cstdint>
#include <string>

#include "cache/cache.hh"
#include "common/stats.hh"
#include "pipeline/activity.hh"
#include "pipeline/config.hh"
#include "power/gate_state.hh"
#include "power/technology.hh"

namespace dcg {

/** Power-accounting component categories. */
enum class PowerComponent : std::uint8_t
{
    Latches,        ///< pipeline latches, all phases
    DcgControl,     ///< DCG extended latches / AND gates
    DdcgCompare,    ///< DDCG per-bit next-state comparators
    ClockWiring,    ///< global clock spine (ungateable)
    IntAlu,
    IntMulDiv,
    FpAlu,
    FpMulDiv,
    DcacheDecoder,
    DcacheArray,
    Icache,
    Bpred,
    Rename,
    IssueQueue,
    CgoooSched,     ///< CG-OoO per-block scheduler overhead
    Regfile,
    Lsq,
    Rob,
    ResultBus,
    L2,
    NumComponents
};

inline constexpr unsigned kNumPowerComponents =
    static_cast<unsigned>(PowerComponent::NumComponents);

const char *powerComponentName(PowerComponent c);

class PowerModel
{
  public:
    /**
     * @param core_cfg structure widths/counts (latch sizing, FU pool)
     * @param tech technology constants
     * @param l2 optional L2 cache whose access count is charged at
     *        report time (identical across gating schemes)
     */
    PowerModel(const CoreConfig &core_cfg, const Technology &tech,
               StatRegistry &stats, const Cache *l2 = nullptr);

    /**
     * Account one cycle. Asserts that @p gates never gate a resource
     * that @p act shows in use — the defining property of
     * *deterministic* gating.
     */
    void tick(const CycleActivity &act, const GateState &gates);

    /** Total energy so far in pJ (including L2 at current counts). */
    double totalEnergyPJ() const;

    /** Energy of one component in pJ. */
    double energyPJ(PowerComponent c) const;

    /** Average power in watts over the ticked cycles. */
    double averagePowerW() const;

    std::uint64_t cycles() const { return numCycles; }

    /**
     * Zero the accumulated energies (measurement-window reset after
     * warm-up). Registry scalars are reset separately via
     * StatRegistry::resetAll().
     */
    void reset();

    const Technology &technology() const { return tech; }

    /// @name Convenience groupings used by the paper's figures
    /// @{
    double intUnitsEnergyPJ() const;
    double fpUnitsEnergyPJ() const;
    /** Latches + DCG control + DDCG comparators (Figure 14). */
    double latchEnergyPJ() const;
    /** Decoder + array (Figure 15 denominators are total D-cache). */
    double dcacheEnergyPJ() const;
    double resultBusEnergyPJ() const;
    /// @}

    /** Latch bits in one slot (operands + control). */
    unsigned bitsPerLatchSlot() const { return slotBits; }
    /** DCG control latch bits (always clocked when DCG is active). */
    unsigned dcgControlBits() const { return controlBits; }

  private:
    void addEnergy(PowerComponent c, double pj);

    CoreConfig cfg;
    Technology tech;
    const Cache *l2;

    unsigned slotBits;
    unsigned controlBits;

    std::array<double, kNumPowerComponents> energy{};
    std::uint64_t numCycles = 0;

    Scalar &totalStat;
    Formula &avgPowerStat;
};

} // namespace dcg

#endif // DCG_POWER_MODEL_HH
