#include "power/derived.hh"

#include <algorithm>
#include <cmath>

namespace dcg {

ArrayGeometry
cacheArrayGeometry(const CacheGeometry &geom, unsigned ports)
{
    ArrayGeometry a;
    const auto lines =
        static_cast<unsigned>(geom.sizeBytes / geom.lineBytes);
    a.rows = lines / geom.assoc;
    a.cols = geom.lineBytes * 8;  // one way is read after way select
    a.readPorts = ports;
    a.writePorts = 1;
    return a;
}

Technology
derivedTechnology(const CoreConfig &core, const HierarchyConfig &mem,
                  const ArrayTechnology &at)
{
    Technology t;  // start from the calibrated constants

    // --- Caches.
    const ArrayGeometry dgeom =
        cacheArrayGeometry(mem.l1d, core.dcachePorts);
    ArrayPowerModel darr(dgeom, at);
    t.dcacheArrayAccessCap = darr.bitlineCap() + darr.senseCap();
    // The gateable "wordline decoder" of Sec 3.3/Figure 8: predecode
    // NANDs, the per-row NOR stage and the wordline drivers, charged
    // per port per cycle while enabled.
    t.dcacheDecoderCap = darr.decoderCap() + darr.wordlineCap() * 8.0;

    const ArrayGeometry igeom = cacheArrayGeometry(mem.l1i, 1);
    ArrayPowerModel iarr(igeom, at);
    t.icacheAccessCap = iarr.readAccessCap();

    const ArrayGeometry l2geom = cacheArrayGeometry(mem.l2, 1);
    ArrayPowerModel l2arr(l2geom, at);
    t.l2AccessCap = l2arr.readAccessCap();

    // --- Register file: window-sized physical file, 64-bit rows, two
    // read ports per issue slot and one write port per result bus.
    ArrayGeometry rf;
    rf.rows = core.windowSize;
    rf.cols = core.operandBits;
    rf.readPorts = 2 * core.issueWidth;
    rf.writePorts = core.numResultBuses;
    ArrayPowerModel rfarr(rf, at);
    t.regReadCap = rfarr.readAccessCap();
    t.regWriteCap = rfarr.writeAccessCap();

    // --- Issue queue: CAM over the window; tag is a physical-register
    // id. Precharge happens every cycle (hence "clock" cap), one
    // search per result broadcast, a RAM read per grant.
    ArrayGeometry iq;
    iq.rows = core.windowSize;
    iq.cols = 8;
    ArrayPowerModel iqarr(iq, at);
    const unsigned tag_bits = static_cast<unsigned>(
        std::ceil(std::log2(std::max(2u, core.windowSize * 2))));
    t.iqWakeupCap = iqarr.camSearchCap(tag_bits);
    t.iqClockCap = t.iqWakeupCap * core.numResultBuses;
    t.iqSelectCap = iqarr.decoderCap() * 2.0;

    // --- LSQ: address CAM.
    ArrayGeometry lsq;
    lsq.rows = core.lsqSize;
    lsq.cols = 8;
    ArrayPowerModel lsqarr(lsq, at);
    t.lsqOpCap = lsqarr.camSearchCap(30);

    // --- ROB payload array.
    ArrayGeometry rob;
    rob.rows = core.windowSize;
    rob.cols = 40;
    rob.readPorts = core.commitWidth;
    rob.writePorts = core.renameWidth;
    ArrayPowerModel robarr(rob, at);
    t.robOpCap = robarr.readAccessCap() / 4.0;

    // --- Rename map: small multiported RAM.
    ArrayGeometry map;
    map.rows = 64;
    map.cols = 8;
    map.readPorts = 2 * core.renameWidth;
    map.writePorts = core.renameWidth;
    ArrayPowerModel maparr(map, at);
    t.renameOpCap = maparr.readAccessCap();

    // --- Branch predictor arrays: PHT + BTB lookup slice.
    ArrayGeometry pht;
    pht.rows = 256;
    pht.cols = 64;  // 8192 x 2-bit organised as 256x64
    ArrayPowerModel phtarr(pht, at);
    t.bpredAccessCap = phtarr.readAccessCap() * 2.0;  // lookup+update

    return t;
}

} // namespace dcg
