/**
 * @file
 * Derivation of Technology array constants from structure geometry via
 * the CACTI-lite model — the "compute it from first principles"
 * alternative to the calibrated defaults in technology.hh.
 *
 * The shipped experiments use the calibrated constants (they reproduce
 * the published Wattch breakdown); derivedTechnology() exists to show
 * the constants are physically plausible, to let users re-derive them
 * for different geometries, and to drive the validation benchmark
 * (bench/validation_power_model).
 */

#ifndef DCG_POWER_DERIVED_HH
#define DCG_POWER_DERIVED_HH

#include "cache/hierarchy.hh"
#include "pipeline/config.hh"
#include "power/array_model.hh"
#include "power/technology.hh"

namespace dcg {

/**
 * Build a Technology whose array-access capacitances are derived from
 * the machine geometry with ArrayPowerModel. Non-array constants
 * (latch bits, FU clock loads, global wiring) keep their calibrated
 * values — those model dynamic logic and clock distribution, which the
 * SRAM model does not cover.
 */
Technology derivedTechnology(const CoreConfig &core,
                             const HierarchyConfig &mem,
                             const ArrayTechnology &array_tech =
                                 ArrayTechnology{});

/** Cache data-array geometry (per-port view) for a CacheGeometry. */
ArrayGeometry cacheArrayGeometry(const CacheGeometry &geom,
                                 unsigned ports);

} // namespace dcg

#endif // DCG_POWER_DERIVED_HH
