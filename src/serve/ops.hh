/**
 * @file
 * String-keyed op-handler registry for the dcgserved wire protocol.
 *
 * Every protocol verb ("submit", "stats", "join", ...) is one OpInfo
 * plus a handler, registered from server.cc exactly the way gating
 * schemes (src/gating/registry.hh) and lint checks
 * (src/lint/registry.hh) self-register: the server's dispatch loop
 * looks the verb up here instead of walking an `op ==` if/else chain,
 * an unknown verb gets a structured error naming the whole catalog
 * (the same UX as `--scheme`/`--check`), and the catalog itself is a
 * first-class part of the protocol surface — the `stats` response
 * lists it so clients can discover what a server speaks.
 *
 * An OpInfo carries the verb's minimum protocol version and whether
 * it is an *admin* verb (operator surface — mutates the service
 * rather than submitting work). minVersion is enforced on the wire
 * only for verbs introduced after v4: requests never carried a
 * version gate before this registry existed, so gating the historic
 * verbs would break the very v1-v4 clients the envelope promises to
 * keep serving. For the historic verbs the field is catalog
 * documentation.
 *
 * Handlers run on the server's I/O thread with private access to the
 * Server (registration happens inside server.cc). A handler either
 * fills OpCall::resp — the dispatch loop stamps version, echoes the
 * rid and writes it — or sets OpCall::deferred after parking the
 * response (submit+wait, result+wait, epoch/join/leave quiesce acks).
 */

#ifndef DCG_SERVE_OPS_HH
#define DCG_SERVE_OPS_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "serve/json.hh"

namespace dcg::serve {

class Server;

/** Everything the catalog knows about one protocol verb. */
struct OpInfo
{
    std::string name;
    unsigned minVersion = 1;  ///< enforced on the wire when > 4
    bool adminOnly = false;   ///< operator verb, not a work submission
    std::string description;  ///< one line, for catalogs and docs
};

/** One request mid-dispatch; see the file comment for the contract. */
struct OpCall
{
    const JsonValue &req;     ///< the parsed request line
    unsigned version;         ///< the request's envelope version
    std::uint64_t connId;     ///< originating connection (for parking)
    JsonValue resp;           ///< the response, unless deferred
    bool deferred = false;    ///< response parked; write nothing now
};

using OpHandler = std::function<void(Server &, OpCall &)>;

/**
 * Register a verb. Returns true (so a namespace-scope `const bool`
 * can run the registration). Duplicate names are fatal(): two
 * handlers claiming one verb is a build error, not a preference.
 */
bool registerOp(OpInfo info, OpHandler handler);

/** All registered verbs, sorted by name. */
std::vector<OpInfo> opCatalog();

/** Registered verb names, sorted. */
std::vector<std::string> opNames();

/** Names joined for error text, e.g. "compact|fetch|join|...". */
std::string opNamesJoined(char sep = '|');

/** True when @p name is a registered verb. */
bool isOp(const std::string &name);

/** Catalog entry for @p name, or nullptr. */
const OpInfo *findOp(const std::string &name);

/** Handler for @p name, or nullptr. */
const OpHandler *findOpHandler(const std::string &name);

/** The catalog as a JSON array (name/min_version/admin/description)
 *  — the `ops` member of the stats response. */
JsonValue opCatalogJson();

} // namespace dcg::serve

#endif // DCG_SERVE_OPS_HH
