/**
 * @file
 * Client stack for the dcgserved protocol — the engine room behind
 * `dcgsim --server HOST:PORT[,HOST:PORT...]`.
 *
 * Three layers, redesigned for the sharded, replicated cluster:
 *
 *  - Connection: one blocking TCP connection speaking the
 *    newline-JSON protocol. Every failure is reported (bool + error
 *    string), never fatal — this is the transport the *server* also
 *    uses when forwarding a job to the peer that owns its key, and a
 *    peer outage must not kill the forwarding node. An optional
 *    timeout bounds connect() and every recv/send, so a partitioned
 *    (blackholed, not merely dead) peer fails the exchange instead of
 *    hanging it.
 *
 *  - ClientBase: the transport-agnostic client API. Subclasses
 *    provide tryRoundTrip(request, routeKey) — one non-fatal exchange
 *    with the node currently routed for a key — plus the failover
 *    hooks advanceRoute()/onResultServed(); the base implements the
 *    submit/wait/backpressure/failover dance of runJobs() on top.
 *    When a node dies mid-grid the base advances the key's route to
 *    the next replica candidate and *resubmits* (job ids are
 *    per-node), so a grid survives any single-node loss as long as a
 *    replica can answer. CLI semantics: an error with no remaining
 *    candidate is fatal() here.
 *
 *  - ClusterClient: ClientBase over a consistent-hash ring of
 *    endpoints. Each job is submitted directly to the node the ring
 *    designates (client-side fan-out — no double hop), and the
 *    matching result request goes back to the same node. Speaks
 *    protocol version 3; follows one `not_owner` redirect as a safety
 *    net when client and server disagree about the ring. With
 *    replicas > 1 it fails over along the key's ring-successor
 *    candidates on connect failure, timeout, draining or
 *    forward_failed — and when a failover candidate serves a result
 *    the primary has lost, it best-effort pushes the record back to
 *    the primary (`replicate` op): client-driven read-repair.
 *
 *  - Client: thin compatibility wrapper — the original single-socket
 *    "HOST:PORT" constructor and request() surface, now a one-node
 *    ClusterClient. Existing callers compile and behave unchanged.
 *
 * runJobs() returns exactly what a local Engine::run() would have —
 * bit-identical, since RunResult doubles travel as max_digits10
 * tokens and are re-parsed by the same reader — regardless of how
 * many nodes the grid was scattered across or how many failovers it
 * took to collect them.
 */

#ifndef DCG_SERVE_CLIENT_HH
#define DCG_SERVE_CLIENT_HH

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "serve/endpoint.hh"
#include "serve/json.hh"
#include "serve/protocol.hh"
#include "serve/ring.hh"

namespace dcg::serve {

/**
 * One blocking TCP connection; newline-delimited JSON request in,
 * one parsed response out. Non-fatal by design (see file comment).
 */
class Connection
{
  public:
    Connection() = default;
    ~Connection();

    Connection(const Connection &) = delete;
    Connection &operator=(const Connection &) = delete;

    /**
     * Connect to @p ep (closing any previous socket first).
     * @p timeoutMs > 0 bounds the connect itself and every later
     * send/recv on the socket; 0 never times out.
     */
    bool open(const Endpoint &ep, std::string &err,
              unsigned timeoutMs = 0);
    bool isOpen() const { return fd >= 0; }
    void shut();

    /** The "host:port" this connection targets (set by open()). */
    const std::string &peerName() const { return peer; }

    /**
     * Send one request line, receive one response line, parse it.
     * On any failure (including a timeout) the connection is closed
     * and false is returned with @p err describing the failure.
     */
    bool roundTrip(const JsonValue &req, JsonValue &resp,
                   std::string &err);

  private:
    bool sendAll(const std::string &line, std::string &err);
    bool recvLine(std::string &line, std::string &err);

    int fd = -1;
    std::string peer;
    std::string inBuf;
};

/**
 * Server-side forwarding: run @p spec on @p peer (submit with bounded
 * busy retries, then wait for the result). Marks the submit
 * "forwarded" so a ring disagreement surfaces as `not_owner` instead
 * of a forwarding loop; @p asReplica additionally marks it "replica"
 * — the target is a replica holder asked to serve a key whose primary
 * is unreachable. @p timeoutMs bounds each socket operation (0 =
 * none). Non-fatal: false + @p err on any failure.
 */
bool forwardJobToPeer(const Endpoint &peer, const JobSpec &spec,
                      bool asReplica, unsigned timeoutMs,
                      RunResult &out, std::string &err);

/** Transport-agnostic client API (CLI semantics: errors are fatal). */
class ClientBase
{
  public:
    virtual ~ClientBase() = default;

    /** Eagerly establish the transport; fatal() on failure. */
    virtual void connect() = 0;

    /**
     * One non-fatal request/response exchange with the node currently
     * routed for @p routeKey (a jobKey(); "" = the default/first
     * node). False + @p err on a transport failure; protocol-level
     * errors come back as a parsed {"ok":false,...} response.
     */
    virtual bool tryRoundTrip(const JsonValue &req,
                              const std::string &routeKey,
                              JsonValue &resp, std::string &err) = 0;

    /**
     * Advance @p routeKey to its next replica candidate after a
     * failure. False (the default) means there is nowhere to fail
     * over to — the caller escalates to fatal().
     */
    virtual bool advanceRoute(const std::string &routeKey)
    {
        (void)routeKey;
        return false;
    }

    /** Hook: @p resp served a done result for @p routeKey. */
    virtual void onResultServed(const std::string &routeKey,
                                const JsonValue &resp)
    {
        (void)routeKey;
        (void)resp;
    }

    /**
     * One exchange with the @p routeKey node, failing over along the
     * key's candidates on transport errors; fatal() when no candidate
     * is reachable. Protocol-level errors are returned, not judged.
     */
    JsonValue roundTrip(const JsonValue &req,
                        const std::string &routeKey);

    /** The server stats surface (aggregated for multi-node setups). */
    virtual JsonValue stats() = 0;

    /**
     * Run @p specs remotely: submit each to its owning node (retrying
     * on backpressure, failing over and resubmitting on node loss),
     * then wait for every result. Results come back in request order.
     */
    std::vector<RunResult> runJobs(const std::vector<JobSpec> &specs);

    /** Failovers performed while routing requests (0 without them). */
    std::uint64_t failovers() const { return failoverCount; }

    /** Read-repair pushes that reached the primary (subclass hook). */
    std::uint64_t readRepairs() const { return readRepairCount; }

  protected:
    /**
     * Submit @p spec to the key's routed node; busy-retries, fails
     * over on transport errors / draining / forward_failed. fatal()
     * when every candidate is exhausted.
     */
    std::uint64_t submitWithRetry(const JobSpec &spec,
                                  const std::string &routeKey);

    std::uint64_t failoverCount = 0;
    std::uint64_t readRepairCount = 0;
};

/** ClientBase over a consistent-hash ring of server endpoints. */
class ClusterClient : public ClientBase
{
  public:
    /**
     * fatal() on an empty endpoint list. Connects lazily.
     * @p replicas > 1 enables failover along each key's ring
     * successors (match the servers' --replicas); @p timeoutMs bounds
     * every socket operation (0 = none).
     */
    explicit ClusterClient(std::vector<Endpoint> endpoints,
                           unsigned replicas = 1,
                           unsigned timeoutMs = 0);

    void connect() override;
    bool tryRoundTrip(const JsonValue &req,
                      const std::string &routeKey, JsonValue &resp,
                      std::string &err) override;
    bool advanceRoute(const std::string &routeKey) override;
    void onResultServed(const std::string &routeKey,
                        const JsonValue &resp) override;
    JsonValue stats() override;

    std::size_t nodeCount() const { return eps.size(); }
    const HashRing &ringView() const { return ring; }

  private:
    /** Node index currently routed for @p key (candidate chain). */
    std::size_t nodeFor(const std::string &key) const;

    /** Non-fatal exchange with node @p idx, opening it on first use;
     *  follows one not_owner redirect. */
    bool tryExchange(std::size_t idx, const JsonValue &req,
                     JsonValue &resp, std::string &err);

    /** Fatal variant for surfaces with no failover story (stats). */
    JsonValue exchange(std::size_t idx, const JsonValue &req);

    std::vector<Endpoint> eps;
    HashRing ring;
    unsigned replicas;
    unsigned timeoutMs;
    std::vector<std::unique_ptr<Connection>> conns;  ///< per endpoint
    /** Failover state: key -> position in its candidate chain. */
    std::map<std::string, std::size_t> routePos;
};

/** Compatibility wrapper: the original single-socket client API. */
class Client : public ClusterClient
{
  public:
    /** Parse "host:port" and connect; fatal() on either failing. */
    explicit Client(const std::string &hostPort);

    /** Send one request line, return the parsed response line. */
    JsonValue request(const JsonValue &req)
    {
        return roundTrip(req, "");
    }
};

} // namespace dcg::serve

#endif // DCG_SERVE_CLIENT_HH
