/**
 * @file
 * Blocking client for the dcgserved protocol — the engine room behind
 * `dcgsim --server HOST:PORT`.
 *
 * One TCP connection, one request line out, one response line back.
 * runJobs() hides the submit/wait/backpressure dance: it submits each
 * spec (sleeping and retrying on "busy" using the server's
 * retry-after hint), then collects results in request order, so a
 * caller gets exactly what a local Engine::run() would have returned —
 * bit-identical, since RunResult doubles travel as max_digits10
 * tokens and are re-parsed by the same reader.
 *
 * Errors (refused connection, dropped socket, protocol violations)
 * are fatal(): this is a CLI path, not a library promise.
 */

#ifndef DCG_SERVE_CLIENT_HH
#define DCG_SERVE_CLIENT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "serve/json.hh"
#include "serve/protocol.hh"

namespace dcg::serve {

class Client
{
  public:
    /** Connect to "host:port" (fatal() on failure). */
    explicit Client(const std::string &hostPort);
    ~Client();

    Client(const Client &) = delete;
    Client &operator=(const Client &) = delete;

    /** Send one request line, return the parsed response line. */
    JsonValue request(const JsonValue &req);

    /**
     * Run @p specs remotely: submit each (retrying on backpressure),
     * then wait for every result. Results in request order.
     */
    std::vector<RunResult> runJobs(const std::vector<JobSpec> &specs);

    /** Fetch the server's stats object (the "stats" member). */
    JsonValue stats();

  private:
    std::uint64_t submitWithRetry(const JobSpec &spec);
    std::string recvLine();

    int fd = -1;
    std::string peer;
    std::string inBuf;
};

} // namespace dcg::serve

#endif // DCG_SERVE_CLIENT_HH
