/**
 * @file
 * Client stack for the dcgserved protocol — the engine room behind
 * `dcgsim --server HOST:PORT[,HOST:PORT...]`.
 *
 * Three layers, rebuilt on the multiplexed link layer:
 *
 *  - Connection: one blocking TCP connection speaking the
 *    newline-JSON protocol. Every failure is reported (bool + error
 *    string), never fatal. An optional timeout bounds connect() and
 *    every recv/send, so a partitioned (blackholed, not merely dead)
 *    peer fails the exchange instead of hanging it. This is the
 *    one-shot transport the pool's legacy fallback and the
 *    DirectPeerTransport still use; the primary client path no longer
 *    opens one per exchange.
 *
 *  - ClientBase: the transport-agnostic client API. Subclasses
 *    provide tryRoundTrip(request, routeKey) — one non-fatal exchange
 *    with the node currently routed for a key — plus the failover
 *    hooks advanceRoute()/onResultServed(); the base implements a
 *    sequential submit/wait/backpressure/failover runJobs() on top.
 *    When a node dies mid-grid the base advances the key's route to
 *    the next replica candidate and *resubmits* (job ids are
 *    per-node), so a grid survives any single-node loss as long as a
 *    replica can answer. CLI semantics: an error with no remaining
 *    candidate is fatal() here.
 *
 *  - ClusterClient: ClientBase over a consistent-hash ring of
 *    endpoints, with all traffic multiplexed over one persistent
 *    PeerLink per node (driven by a LinkLoop thread). Speaks protocol
 *    version 4: every frame carries a request id, so many exchanges
 *    share a link concurrently, and runJobs() is overridden to
 *    *pipeline* the grid — each job is a single v4 submit+wait frame
 *    to the node the ring designates, with up to a window of jobs in
 *    flight at once across all nodes. Busy nodes are retried on their
 *    hint, dead or draining nodes fail the affected jobs over along
 *    each key's ring-successor candidates (resubmitting elsewhere),
 *    and when a failover candidate serves a result the primary has
 *    lost, the record is pushed back to the primary (`replicate` op):
 *    client-driven read-repair. Pre-v4 servers are handled by the
 *    link layer's legacy fallback — the client logic never notices.
 *
 *  - Client: thin compatibility wrapper — the original single-socket
 *    "HOST:PORT" constructor and request() surface, now a one-node
 *    ClusterClient. Existing callers compile and behave unchanged.
 *
 * runJobs() returns exactly what a local Engine::run() would have —
 * bit-identical, since RunResult doubles travel as max_digits10
 * tokens and are re-parsed by the same reader — regardless of how
 * many nodes the grid was scattered across, how deep the submit
 * pipeline ran, or how many failovers it took to collect them.
 */

#ifndef DCG_SERVE_CLIENT_HH
#define DCG_SERVE_CLIENT_HH

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "serve/endpoint.hh"
#include "serve/json.hh"
#include "serve/peerlink.hh"
#include "serve/protocol.hh"
#include "serve/ring.hh"

namespace dcg::serve {

/**
 * One blocking TCP connection; newline-delimited JSON request in,
 * one parsed response out. Non-fatal by design (see file comment).
 */
class Connection
{
  public:
    Connection() = default;
    ~Connection();

    Connection(const Connection &) = delete;
    Connection &operator=(const Connection &) = delete;

    /**
     * Connect to @p ep (closing any previous socket first).
     * @p timeoutMs > 0 bounds the connect itself and every later
     * send/recv on the socket; 0 never times out.
     */
    bool open(const Endpoint &ep, std::string &err,
              unsigned timeoutMs = 0);
    bool isOpen() const { return fd >= 0; }
    void shut();

    /** The "host:port" this connection targets (set by open()). */
    const std::string &peerName() const { return peer; }

    /**
     * Send one request line, receive one response line, parse it.
     * On any failure (including a timeout) the connection is closed
     * and false is returned with @p err describing the failure.
     */
    bool roundTrip(const JsonValue &req, JsonValue &resp,
                   std::string &err);

  private:
    bool sendAll(const std::string &line, std::string &err);
    bool recvLine(std::string &line, std::string &err);

    int fd = -1;
    std::string peer;
    std::string inBuf;
};

/** Transport-agnostic client API (CLI semantics: errors are fatal). */
class ClientBase
{
  public:
    virtual ~ClientBase() = default;

    /** Eagerly establish the transport; fatal() on failure. */
    virtual void connect() = 0;

    /**
     * One non-fatal request/response exchange with the node currently
     * routed for @p routeKey (a jobKey(); "" = the default/first
     * node). False + @p err on a transport failure; protocol-level
     * errors come back as a parsed {"ok":false,...} response.
     */
    virtual bool tryRoundTrip(const JsonValue &req,
                              const std::string &routeKey,
                              JsonValue &resp, std::string &err) = 0;

    /**
     * Advance @p routeKey to its next replica candidate after a
     * failure. False (the default) means there is nowhere to fail
     * over to — the caller escalates to fatal().
     */
    virtual bool advanceRoute(const std::string &routeKey)
    {
        (void)routeKey;
        return false;
    }

    /** Hook: @p resp served a done result for @p routeKey. */
    virtual void onResultServed(const std::string &routeKey,
                                const JsonValue &resp)
    {
        (void)routeKey;
        (void)resp;
    }

    /**
     * One exchange with the @p routeKey node, failing over along the
     * key's candidates on transport errors; fatal() when no candidate
     * is reachable. Protocol-level errors are returned, not judged.
     */
    JsonValue roundTrip(const JsonValue &req,
                        const std::string &routeKey);

    /** The server stats surface (aggregated for multi-node setups). */
    virtual JsonValue stats() = 0;

    /**
     * Run @p specs remotely: submit each to its owning node (retrying
     * on backpressure, failing over and resubmitting on node loss),
     * then wait for every result. Results come back in request order.
     * The base implementation is strictly sequential; ClusterClient
     * overrides it with a pipelined fan-out.
     */
    virtual std::vector<RunResult>
    runJobs(const std::vector<JobSpec> &specs);

    /** Failovers performed while routing requests (0 without them). */
    std::uint64_t failovers() const { return failoverCount; }

    /** Read-repair pushes that reached the primary (subclass hook). */
    std::uint64_t readRepairs() const { return readRepairCount; }

  protected:
    /**
     * Submit @p spec to the key's routed node; busy-retries, fails
     * over on transport errors / draining / forward_failed. fatal()
     * when every candidate is exhausted.
     */
    std::uint64_t submitWithRetry(const JobSpec &spec,
                                  const std::string &routeKey);

    std::uint64_t failoverCount = 0;
    std::uint64_t readRepairCount = 0;
};

/**
 * ClientBase over a consistent-hash ring of server endpoints,
 * multiplexing all traffic over one persistent link per node.
 */
class ClusterClient : public ClientBase
{
  public:
    /**
     * fatal() on an empty endpoint list. Connects lazily.
     * @p replicas > 1 enables failover along each key's ring
     * successors (match the servers' --replicas); @p timeoutMs is the
     * per-request deadline on the links (0 = none).
     */
    explicit ClusterClient(std::vector<Endpoint> endpoints,
                           unsigned replicas = 1,
                           unsigned timeoutMs = 0);
    ~ClusterClient() override;

    void connect() override;
    bool tryRoundTrip(const JsonValue &req,
                      const std::string &routeKey, JsonValue &resp,
                      std::string &err) override;
    bool advanceRoute(const std::string &routeKey) override;
    void onResultServed(const std::string &routeKey,
                        const JsonValue &resp) override;
    JsonValue stats() override;

    /**
     * Pipelined grid fan-out: every job is one v4 submit+wait frame
     * on its owner's link, up to a window in flight at once.
     * Failover, busy retries and read-repair run per job from the
     * link thread's completions; results return in request order,
     * bit-identical to a sequential run.
     */
    std::vector<RunResult>
    runJobs(const std::vector<JobSpec> &specs) override;

    std::size_t nodeCount() const { return eps.size(); }
    const HashRing &ringView() const { return ring; }

    /// @name Typed admin surface (protocol v5 membership verbs)
    ///
    /// Admin verbs address one specific node — the first endpoint
    /// this client was built with (the coordinator of the change) —
    /// never ring-routed. Transport failures are fatal() (CLI
    /// semantics); protocol-level rejections (already_member,
    /// change_in_progress, ...) come back as the parsed
    /// {"ok":false,...} response for the caller to judge.
    /// @{

    /** Send admin @p verb with the fields of @p args on the envelope. */
    JsonValue admin(const std::string &verb,
                    const JsonValue &args = JsonValue::object());

    /** Ask the coordinator to add @p node ("host:port") to the ring. */
    JsonValue join(const std::string &node);

    /** Ask the coordinator to remove @p node from the ring. */
    JsonValue leave(const std::string &node);

    /** The coordinator's epoch, members and rebalance counters. */
    JsonValue ringInfo();
    /// @}

  private:
    /** The link pool, starting its LinkLoop on first use. */
    PeerPool &pool();

    /** Node index currently routed for @p key (candidate chain). */
    std::size_t nodeFor(const std::string &key) const;
    std::size_t nodeForLocked(const std::string &key) const;
    bool advanceRouteLocked(const std::string &routeKey);

    /** The key's current position in its candidate chain (0 =
     *  primary). */
    std::size_t routePosOf(const std::string &key) const;

    /** Non-fatal exchange with node @p idx over its link; follows one
     *  not_owner redirect. */
    bool tryExchange(std::size_t idx, const JsonValue &req,
                     JsonValue &resp, std::string &err);

    /** Fatal variant for surfaces with no failover story (stats). */
    JsonValue exchange(std::size_t idx, const JsonValue &req);

    std::vector<Endpoint> eps;
    HashRing ring;
    unsigned replicas;
    unsigned timeoutMs;
    std::unique_ptr<LinkLoop> links;  ///< lazily started

    /**
     * Guards routePos and the ClientBase counters: the pipelined
     * runJobs() mutates them from the link thread's completions while
     * the calling thread reads them.
     */
    mutable std::mutex routeMutex;
    /** Failover state: key -> position in its candidate chain. */
    std::map<std::string, std::size_t> routePos;
};

/** Compatibility wrapper: the original single-socket client API. */
class Client : public ClusterClient
{
  public:
    /** Parse "host:port" and connect; fatal() on either failing. */
    explicit Client(const std::string &hostPort);

    /** Send one request line, return the parsed response line. */
    JsonValue request(const JsonValue &req)
    {
        return roundTrip(req, "");
    }
};

} // namespace dcg::serve

#endif // DCG_SERVE_CLIENT_HH
