/**
 * @file
 * Client stack for the dcgserved protocol — the engine room behind
 * `dcgsim --server HOST:PORT[,HOST:PORT...]`.
 *
 * Three layers, redesigned for the sharded cluster:
 *
 *  - Connection: one blocking TCP connection speaking the
 *    newline-JSON protocol. Every failure is reported (bool + error
 *    string), never fatal — this is the transport the *server* also
 *    uses when forwarding a job to the peer that owns its key, and a
 *    peer outage must not kill the forwarding node.
 *
 *  - ClientBase: the transport-agnostic client API. Subclasses
 *    provide connect() and roundTrip(request, routeKey); the base
 *    implements the submit/wait/backpressure dance of runJobs() on
 *    top, routing every request by the job's content-addressed key so
 *    an implementation can pick the owning node. CLI semantics:
 *    transport errors and protocol violations are fatal() here.
 *
 *  - ClusterClient: ClientBase over a consistent-hash ring of
 *    endpoints. Each job is submitted directly to the node the ring
 *    designates (client-side fan-out — no double hop), and the
 *    matching result request goes back to the same node. Speaks
 *    protocol version 2; follows one `not_owner` redirect as a safety
 *    net when client and server disagree about the ring.
 *
 *  - Client: thin compatibility wrapper — the original single-socket
 *    "HOST:PORT" constructor and request() surface, now a one-node
 *    ClusterClient. Existing callers compile and behave unchanged.
 *
 * runJobs() returns exactly what a local Engine::run() would have —
 * bit-identical, since RunResult doubles travel as max_digits10
 * tokens and are re-parsed by the same reader — regardless of how
 * many nodes the grid was scattered across.
 */

#ifndef DCG_SERVE_CLIENT_HH
#define DCG_SERVE_CLIENT_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "serve/endpoint.hh"
#include "serve/json.hh"
#include "serve/protocol.hh"
#include "serve/ring.hh"

namespace dcg::serve {

/**
 * One blocking TCP connection; newline-delimited JSON request in,
 * one parsed response out. Non-fatal by design (see file comment).
 */
class Connection
{
  public:
    Connection() = default;
    ~Connection();

    Connection(const Connection &) = delete;
    Connection &operator=(const Connection &) = delete;

    /** Connect to @p ep (closing any previous socket first). */
    bool open(const Endpoint &ep, std::string &err);
    bool isOpen() const { return fd >= 0; }
    void shut();

    /** The "host:port" this connection targets (set by open()). */
    const std::string &peerName() const { return peer; }

    /**
     * Send one request line, receive one response line, parse it.
     * On any failure the connection is closed and false is returned
     * with @p err describing the failure.
     */
    bool roundTrip(const JsonValue &req, JsonValue &resp,
                   std::string &err);

  private:
    bool sendAll(const std::string &line, std::string &err);
    bool recvLine(std::string &line, std::string &err);

    int fd = -1;
    std::string peer;
    std::string inBuf;
};

/**
 * Server-side forwarding: run @p spec on @p peer (submit with bounded
 * busy retries, then wait for the result). Marks the submit
 * "forwarded" so a ring disagreement surfaces as `not_owner` instead
 * of a forwarding loop. Non-fatal: false + @p err on any failure.
 */
bool forwardJobToPeer(const Endpoint &peer, const JobSpec &spec,
                      RunResult &out, std::string &err);

/** Transport-agnostic client API (CLI semantics: errors are fatal). */
class ClientBase
{
  public:
    virtual ~ClientBase() = default;

    /** Eagerly establish the transport; fatal() on failure. */
    virtual void connect() = 0;

    /**
     * One request/response exchange with the node that owns
     * @p routeKey (a jobKey(); "" = the default/first node).
     */
    virtual JsonValue roundTrip(const JsonValue &req,
                                const std::string &routeKey) = 0;

    /** The server stats surface (aggregated for multi-node setups). */
    virtual JsonValue stats() = 0;

    /**
     * Run @p specs remotely: submit each to its owning node (retrying
     * on backpressure), then wait for every result. Results come back
     * in request order.
     */
    std::vector<RunResult> runJobs(const std::vector<JobSpec> &specs);

  protected:
    std::uint64_t submitWithRetry(const JobSpec &spec,
                                  const std::string &routeKey);
};

/** ClientBase over a consistent-hash ring of server endpoints. */
class ClusterClient : public ClientBase
{
  public:
    /** fatal() on an empty endpoint list. Connects lazily. */
    explicit ClusterClient(std::vector<Endpoint> endpoints);

    void connect() override;
    JsonValue roundTrip(const JsonValue &req,
                        const std::string &routeKey) override;
    JsonValue stats() override;

    std::size_t nodeCount() const { return eps.size(); }
    const HashRing &ringView() const { return ring; }

  private:
    /** Exchange with node @p idx, opening it on first use; follows
     *  one not_owner redirect; fatal() on failure. */
    JsonValue exchange(std::size_t idx, const JsonValue &req);

    std::vector<Endpoint> eps;
    HashRing ring;
    std::vector<std::unique_ptr<Connection>> conns;  ///< per endpoint
};

/** Compatibility wrapper: the original single-socket client API. */
class Client : public ClusterClient
{
  public:
    /** Parse "host:port" and connect; fatal() on either failing. */
    explicit Client(const std::string &hostPort);

    /** Send one request line, return the parsed response line. */
    JsonValue request(const JsonValue &req)
    {
        return roundTrip(req, "");
    }
};

} // namespace dcg::serve

#endif // DCG_SERVE_CLIENT_HH
