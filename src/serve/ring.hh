/**
 * @file
 * HashRing: the deterministic consistent-hash ring that assigns every
 * content-addressed job key to exactly one cluster node.
 *
 * Each node contributes a fixed number of virtual points, hashed from
 * its canonical "host:port" name (see endpoint.hh); a key belongs to
 * the node owning the first point at or after the key's hash,
 * wrapping at the top. Two properties the cluster relies on:
 *
 *  - *Agreement*: the ring is a pure function of the node-name set —
 *    list order, construction site (client or server) and process do
 *    not matter — so a client fanning a grid out and a server
 *    deciding whether to forward always name the same owner.
 *  - *Stability*: adding or removing one node only remaps the keys
 *    that move to/from that node (~1/N of the space); everything else
 *    keeps its owner, which is what keeps a persistent shard's store
 *    warm across cluster resizes.
 *
 * Hashing is 64-bit FNV-1a with a 64-bit avalanche finisher, applied
 * to the node name (per virtual point) and to the key; no randomness,
 * no process state.
 */

#ifndef DCG_SERVE_RING_HH
#define DCG_SERVE_RING_HH

#include <cstdint>
#include <string>
#include <vector>

namespace dcg::serve {

class HashRing
{
  public:
    /** Virtual points per node; enough for <5 % imbalance at N<=16. */
    static constexpr unsigned kDefaultVnodes = 64;

    HashRing() = default;

    /**
     * Build from canonical node names (typically Endpoint::str()s).
     * fatal() on duplicate names — a duplicate would double-weight a
     * node, and the parse layer already rejects it.
     */
    explicit HashRing(std::vector<std::string> nodeNames,
                      unsigned vnodesPerNode = kDefaultVnodes);

    bool empty() const { return names.empty(); }
    std::size_t nodeCount() const { return names.size(); }
    const std::vector<std::string> &nodeNames() const { return names; }

    /** Owning node for @p key; fatal() on an empty ring. */
    const std::string &owner(const std::string &key) const;

    /** Index into nodeNames() of owner(key). */
    std::size_t ownerIndex(const std::string &key) const;

    /**
     * The first min(k, nodeCount()) *distinct* nodes encountered
     * walking the ring from the key's point: owners(key, k)[0] is the
     * primary owner(key), the rest are the replica followers, in
     * deterministic successor order. k >= nodeCount() returns every
     * node exactly once (the whole cluster holds the key). Like the
     * single-owner lookup this is a pure function of the name set, so
     * clients and servers always agree on a key's replica set.
     * fatal() on an empty ring or k == 0.
     */
    std::vector<std::size_t> ownerIndices(const std::string &key,
                                          std::size_t k) const;

    /** Names form of ownerIndices(key, k). */
    std::vector<std::string> owners(const std::string &key,
                                    std::size_t k) const;

    /** 64-bit FNV-1a + avalanche finisher (exposed for tests). */
    static std::uint64_t hash(const std::string &s);

  private:
    std::vector<std::string> names;
    /** (point hash, node index), sorted by hash then index. */
    std::vector<std::pair<std::uint64_t, std::uint32_t>> points;
};

/**
 * EpochView: one versioned ring epoch — the unit of elastic cluster
 * membership (protocol v5). A monotonically increasing epoch id, the
 * member list it was agreed for, the ring built over those members,
 * and the mapping from each member's ring ordinal to its index in the
 * process-local append-only node table (which is what peer links and
 * transports are addressed by — nodes keep their table slot across
 * epochs, so in-flight peer work survives a membership change).
 *
 * A server holds two: the current epoch routes new work, while the
 * previous one keeps answering for records whose handoff has not
 * landed yet (dual-epoch routing). Plain value type; the thread
 * owning it decides the locking.
 */
struct EpochView
{
    std::uint64_t epoch = 0;
    std::vector<std::string> members;   ///< canonical "host:port"s
    std::vector<std::size_t> nodeIdx;   ///< member ordinal -> node table
    HashRing ring;                      ///< built over members

    /** An epoch with no members is "no view" (e.g. no previous). */
    bool valid() const { return !members.empty(); }

    bool hasMember(const std::string &addr) const
    {
        for (const std::string &m : members)
            if (m == addr)
                return true;
        return false;
    }

    /** The key's holder *node-table* indices, primary first. */
    std::vector<std::size_t> holders(const std::string &key,
                                     std::size_t k) const
    {
        std::vector<std::size_t> out;
        for (std::size_t ord : ring.ownerIndices(key, k))
            out.push_back(nodeIdx[ord]);
        return out;
    }

    /** True when @p node (a node-table index) holds @p key. */
    bool holds(const std::string &key, std::size_t k,
               std::size_t node) const
    {
        for (std::size_t idx : holders(key, k))
            if (idx == node)
                return true;
        return false;
    }
};

} // namespace dcg::serve

#endif // DCG_SERVE_RING_HH
