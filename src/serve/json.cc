#include "serve/json.hh"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <limits>

namespace dcg::serve {

namespace {

/** Immutable shared "absent member" value. */
const JsonValue kNull{};

const std::string kEmpty;

void
appendUtf8(std::string &out, unsigned cp)
{
    if (cp < 0x80) {
        out += static_cast<char>(cp);
    } else if (cp < 0x800) {
        out += static_cast<char>(0xc0 | (cp >> 6));
        out += static_cast<char>(0x80 | (cp & 0x3f));
    } else {
        out += static_cast<char>(0xe0 | (cp >> 12));
        out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
        out += static_cast<char>(0x80 | (cp & 0x3f));
    }
}

/** Recursive-descent parser over a string; records errors, no I/O. */
class Parser
{
  public:
    Parser(const std::string &text, std::string &err)
        : s(text), error(err)
    {
    }

    bool parseDocument(JsonValue &out)
    {
        if (!parseValue(out))
            return false;
        skipWs();
        if (pos != s.size())
            return fail("trailing characters after JSON value");
        return true;
    }

  private:
    bool fail(const std::string &what)
    {
        error = what + " at offset " + std::to_string(pos);
        return false;
    }

    void skipWs()
    {
        while (pos < s.size() &&
               std::isspace(static_cast<unsigned char>(s[pos])))
            ++pos;
    }

    bool literal(const char *word)
    {
        for (const char *p = word; *p; ++p, ++pos) {
            if (pos >= s.size() || s[pos] != *p)
                return fail(std::string("bad literal (expected '") +
                            word + "')");
        }
        return true;
    }

    bool parseValue(JsonValue &out)
    {
        skipWs();
        if (pos >= s.size())
            return fail("unexpected end of input");
        switch (s[pos]) {
          case '{': return parseObject(out);
          case '[': return parseArray(out);
          case '"': {
              std::string str;
              if (!parseString(str))
                  return false;
              out = JsonValue::string(std::move(str));
              return true;
          }
          case 't':
              out = JsonValue::boolean(true);
              return literal("true");
          case 'f':
              out = JsonValue::boolean(false);
              return literal("false");
          case 'n':
              out = JsonValue::null();
              return literal("null");
          default:
              return parseNumber(out);
        }
    }

    bool parseObject(JsonValue &out)
    {
        out = JsonValue::object();
        ++pos;  // '{'
        skipWs();
        if (pos < s.size() && s[pos] == '}') {
            ++pos;
            return true;
        }
        while (true) {
            skipWs();
            std::string key;
            if (!parseString(key))
                return false;
            skipWs();
            if (pos >= s.size() || s[pos] != ':')
                return fail("expected ':' in object");
            ++pos;
            JsonValue v;
            if (!parseValue(v))
                return false;
            out.members().emplace_back(std::move(key), std::move(v));
            skipWs();
            if (pos >= s.size())
                return fail("unterminated object");
            if (s[pos] == ',') {
                ++pos;
                continue;
            }
            if (s[pos] == '}') {
                ++pos;
                return true;
            }
            return fail("expected ',' or '}' in object");
        }
    }

    bool parseArray(JsonValue &out)
    {
        out = JsonValue::array();
        ++pos;  // '['
        skipWs();
        if (pos < s.size() && s[pos] == ']') {
            ++pos;
            return true;
        }
        while (true) {
            JsonValue v;
            if (!parseValue(v))
                return false;
            out.items().push_back(std::move(v));
            skipWs();
            if (pos >= s.size())
                return fail("unterminated array");
            if (s[pos] == ',') {
                ++pos;
                continue;
            }
            if (s[pos] == ']') {
                ++pos;
                return true;
            }
            return fail("expected ',' or ']' in array");
        }
    }

    bool hex4(unsigned &out)
    {
        out = 0;
        for (int i = 0; i < 4; ++i) {
            if (pos >= s.size())
                return fail("truncated \\u escape");
            const char c = s[pos++];
            out <<= 4;
            if (c >= '0' && c <= '9')
                out |= static_cast<unsigned>(c - '0');
            else if (c >= 'a' && c <= 'f')
                out |= static_cast<unsigned>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                out |= static_cast<unsigned>(c - 'A' + 10);
            else
                return fail("bad hex digit in \\u escape");
        }
        return true;
    }

    bool parseString(std::string &out)
    {
        if (pos >= s.size() || s[pos] != '"')
            return fail("expected string");
        ++pos;
        out.clear();
        while (true) {
            if (pos >= s.size())
                return fail("unterminated string");
            const char c = s[pos++];
            if (c == '"')
                return true;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos >= s.size())
                return fail("truncated escape");
            const char e = s[pos++];
            switch (e) {
              case '"':  out += '"'; break;
              case '\\': out += '\\'; break;
              case '/':  out += '/'; break;
              case 'b':  out += '\b'; break;
              case 'f':  out += '\f'; break;
              case 'n':  out += '\n'; break;
              case 'r':  out += '\r'; break;
              case 't':  out += '\t'; break;
              case 'u': {
                  unsigned cp = 0;
                  if (!hex4(cp))
                      return false;
                  if (cp >= 0xd800 && cp <= 0xdfff)
                      return fail("surrogate \\u escapes unsupported");
                  appendUtf8(out, cp);
                  break;
              }
              default:
                  return fail("unsupported escape");
            }
        }
    }

    bool parseNumber(JsonValue &out)
    {
        const std::size_t start = pos;
        if (pos < s.size() && s[pos] == '-')
            ++pos;
        while (pos < s.size() &&
               (std::isdigit(static_cast<unsigned char>(s[pos])) ||
                s[pos] == '.' || s[pos] == 'e' || s[pos] == 'E' ||
                s[pos] == '+' || s[pos] == '-'))
            ++pos;
        const std::string tok = s.substr(start, pos - start);
        if (tok.empty())
            return fail("expected a value");
        errno = 0;
        char *end = nullptr;
        const double d = std::strtod(tok.c_str(), &end);
        if (end != tok.c_str() + tok.size())
            return fail("malformed number '" + tok + "'");
        out = JsonValue::number(d);
        out.setRawToken(tok);
        return true;
    }

    const std::string &s;
    std::string &error;
    std::size_t pos = 0;
};

} // namespace

JsonValue
JsonValue::null()
{
    return JsonValue{};
}

JsonValue
JsonValue::boolean(bool v)
{
    JsonValue j;
    j.k = Kind::Bool;
    j.b = v;
    return j;
}

JsonValue
JsonValue::number(double d)
{
    JsonValue j;
    j.k = Kind::Number;
    j.num = d;
    return j;
}

JsonValue
JsonValue::integer(std::int64_t v)
{
    JsonValue j = number(static_cast<double>(v));
    j.numRaw = std::to_string(v);
    return j;
}

JsonValue
JsonValue::integer(std::uint64_t v)
{
    JsonValue j = number(static_cast<double>(v));
    j.numRaw = std::to_string(v);
    return j;
}

JsonValue
JsonValue::string(std::string s)
{
    JsonValue j;
    j.k = Kind::String;
    j.str = std::move(s);
    return j;
}

JsonValue
JsonValue::array()
{
    JsonValue j;
    j.k = Kind::Array;
    return j;
}

JsonValue
JsonValue::object()
{
    JsonValue j;
    j.k = Kind::Object;
    return j;
}

void
JsonValue::setRawToken(std::string tok)
{
    numRaw = std::move(tok);
}

bool
JsonValue::asBool(bool def) const
{
    return isBool() ? b : def;
}

double
JsonValue::asNumber(double def) const
{
    return isNumber() ? num : def;
}

std::uint64_t
JsonValue::asU64(std::uint64_t def) const
{
    if (!isNumber())
        return def;
    const std::string tok = numRaw.empty() ? dump() : numRaw;
    errno = 0;
    char *end = nullptr;
    const unsigned long long v = std::strtoull(tok.c_str(), &end, 10);
    if (end == tok.c_str() || *end != '\0' || errno == ERANGE ||
        tok[0] == '-')
        return def;
    return v;
}

std::int64_t
JsonValue::asI64(std::int64_t def) const
{
    if (!isNumber())
        return def;
    const std::string tok = numRaw.empty() ? dump() : numRaw;
    errno = 0;
    char *end = nullptr;
    const long long v = std::strtoll(tok.c_str(), &end, 10);
    if (end == tok.c_str() || *end != '\0' || errno == ERANGE)
        return def;
    return v;
}

const std::string &
JsonValue::asString() const
{
    return isString() ? str : kEmpty;
}

std::vector<JsonValue> &
JsonValue::items()
{
    return arr;
}

const std::vector<JsonValue> &
JsonValue::items() const
{
    return arr;
}

std::vector<JsonValue::Member> &
JsonValue::members()
{
    return obj;
}

const std::vector<JsonValue::Member> &
JsonValue::members() const
{
    return obj;
}

void
JsonValue::push(JsonValue v)
{
    arr.push_back(std::move(v));
}

void
JsonValue::set(const std::string &key, JsonValue v)
{
    for (Member &m : obj) {
        if (m.first == key) {
            m.second = std::move(v);
            return;
        }
    }
    obj.emplace_back(key, std::move(v));
}

bool
JsonValue::has(const std::string &key) const
{
    for (const Member &m : obj)
        if (m.first == key)
            return true;
    return false;
}

const JsonValue &
JsonValue::get(const std::string &key) const
{
    for (const Member &m : obj)
        if (m.first == key)
            return m.second;
    return kNull;
}

std::string
JsonValue::encodeString(const std::string &s)
{
    std::string out = "\"";
    for (char c : s) {
        const auto u = static_cast<unsigned char>(c);
        switch (c) {
          case '"':  out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (u < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", u);
                out += buf;
            } else {
                out += c;
            }
            break;
        }
    }
    out += '"';
    return out;
}

void
JsonValue::dumpTo(std::string &out) const
{
    switch (k) {
      case Kind::Null:
        out += "null";
        break;
      case Kind::Bool:
        out += b ? "true" : "false";
        break;
      case Kind::Number:
        if (!numRaw.empty()) {
            out += numRaw;
        } else {
            char buf[64];
            std::snprintf(buf, sizeof(buf), "%.*g",
                          std::numeric_limits<double>::max_digits10, num);
            out += buf;
        }
        break;
      case Kind::String:
        out += encodeString(str);
        break;
      case Kind::Array: {
        out += '[';
        bool first = true;
        for (const JsonValue &v : arr) {
            if (!first)
                out += ", ";
            first = false;
            v.dumpTo(out);
        }
        out += ']';
        break;
      }
      case Kind::Object: {
        out += '{';
        bool first = true;
        for (const Member &m : obj) {
            if (!first)
                out += ", ";
            first = false;
            out += encodeString(m.first);
            out += ": ";
            m.second.dumpTo(out);
        }
        out += '}';
        break;
      }
    }
}

std::string
JsonValue::dump() const
{
    std::string out;
    dumpTo(out);
    return out;
}

bool
JsonValue::parse(const std::string &text, JsonValue &out,
                 std::string &err)
{
    err.clear();
    Parser p(text, err);
    return p.parseDocument(out);
}

} // namespace dcg::serve
