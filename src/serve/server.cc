#include "serve/server.hh"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "common/log.hh"
#include "serve/netio.hh"

namespace dcg::serve {

namespace {

/** Cap a single request line; beyond this the peer is misbehaving. */
constexpr std::size_t kMaxLineBytes = 1 << 20;

/** How often a Forward chain re-tries one busy holder before moving
 *  on — mirrors the client-side submit retry bound. */
constexpr unsigned kMaxForwardBusyRetries = 600;

/** Replicate pushes a rebalance keeps on the wire at once — enough to
 *  pipeline the links, small enough not to starve forwarded work. */
constexpr std::size_t kMaxRebalanceInflight = 4;

/** During a membership transition a holder may answer not_owner
 *  because it has not installed the new epoch yet; the Forward chain
 *  re-asks the same holder instead of burning it. */
constexpr unsigned kMaxForwardOwnerRetries = 200;
constexpr unsigned kOwnerRetryDelayMs = 50;

JsonValue
memberListJson(const std::vector<std::string> &members)
{
    JsonValue arr = JsonValue::array();
    for (const std::string &m : members)
        arr.push(JsonValue::string(m));
    return arr;
}

void
setNonBlocking(int fd)
{
    const int flags = fcntl(fd, F_GETFL, 0);
    if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
        // A blocking fd degrades the event loop but is not fatal;
        // every read/write path already handles short operations.
        warn("dcgserved: cannot set O_NONBLOCK on fd ", fd, ": ",
             std::strerror(errno));
    }
}

const char *
stateName(int state)
{
    switch (state) {
      case 0: return "queued";
      case 1: return "running";
      case 3: return "failed";
      default: return "done";
    }
}

} // namespace

Server::Server(const ServerConfig &config)
    : cfg(config),
      workerCount(config.workers ? config.workers
                                 : exp::Engine::defaultJobs()),
      eng(workerCount)
{
    if (!cfg.storeDir.empty()) {
        store = std::make_shared<ResultStore>(cfg.storeDir);
        eng.attachStore(store);
        // One startup compaction: clear interrupted-write leftovers
        // and invalid records before the first request arrives.
        const std::size_t removed = store->compact();
        if (removed)
            inform("dcgserved: startup compaction removed ", removed,
                   " stale file(s) from '", cfg.storeDir, "'");
        if (cfg.storeBudgetBytes)
            store->setBudgetBytes(cfg.storeBudgetBytes);
    }

    if (pipe(wakePipe) != 0)
        fatal("dcgserved: cannot create wake pipe: ",
              std::strerror(errno));
    setNonBlocking(wakePipe[0]);
    setNonBlocking(wakePipe[1]);

    addrinfo hints{};
    hints.ai_family = AF_INET;
    hints.ai_socktype = SOCK_STREAM;
    hints.ai_flags = AI_PASSIVE | AI_NUMERICSERV;
    addrinfo *res = nullptr;
    const std::string port_str = std::to_string(cfg.port);
    const int rc =
        getaddrinfo(cfg.host.c_str(), port_str.c_str(), &hints, &res);
    if (rc != 0)
        fatal("dcgserved: cannot resolve '", cfg.host,
              "': ", gai_strerror(rc));

    listenFd = socket(res->ai_family, res->ai_socktype,
                      res->ai_protocol);
    if (listenFd < 0) {
        freeaddrinfo(res);
        fatal("dcgserved: cannot create socket: ",
              std::strerror(errno));
    }
    const int one = 1;
    if (setsockopt(listenFd, SOL_SOCKET, SO_REUSEADDR, &one,
                   sizeof(one)) != 0) {
        // Without SO_REUSEADDR a quick restart may fail to bind; warn
        // now so that the later bind error has context.
        warn("dcgserved: setsockopt(SO_REUSEADDR) failed: ",
             std::strerror(errno));
    }
    if (bind(listenFd, res->ai_addr, res->ai_addrlen) != 0) {
        const int e = errno;
        freeaddrinfo(res);
        fatal("dcgserved: cannot bind ", cfg.host, ":", cfg.port, ": ",
              std::strerror(e));
    }
    freeaddrinfo(res);
    if (listen(listenFd, 64) != 0)
        fatal("dcgserved: listen failed: ", std::strerror(errno));
    setNonBlocking(listenFd);

    sockaddr_in bound{};
    socklen_t blen = sizeof(bound);
    if (getsockname(listenFd, reinterpret_cast<sockaddr *>(&bound),
                    &blen) == 0)
        boundPort = ntohs(bound.sin_port);

    // This node's canonical identity and the epoch-0 standalone view:
    // a one-member ring a live `join` can grow from.
    selfAddr = !cfg.self.empty()
                   ? cfg.self
                   : cfg.host + ":" + std::to_string(boundPort);
    {
        Endpoint self_ep;
        std::string eerr;
        if (!parseEndpoint(selfAddr, self_ep, eerr))
            fatal("dcgserved: bad self address '", selfAddr, "': ",
                  eerr);
        nodes = {self_ep};
    }
    selfIdx = 0;
    curEp.epoch = 0;
    curEp.members = {selfAddr};
    curEp.nodeIdx = {0};
    curEp.ring = HashRing(curEp.members);
    epochReps = std::max(cfg.replicas, 1u);

    if (store) {
        // Decorate with the replication layer even standalone (k=1,
        // pass-through): a later live join needs its handoff read
        // path, and the Engine's store pointer cannot be swapped
        // safely once workers run.
        peerTransport = std::make_shared<DirectPeerTransport>(
            nodes, cfg.peerTimeoutMs);
        repl = std::make_shared<ReplicatedStore>(
            store, nodes, selfIdx, 1, cfg.peerTimeoutMs, peerTransport);
        repl->setEpochViews(curEp, prevEp, epochReps);
        eng.attachStore(repl);
    }

    if (!cfg.peers.empty())
        configureCluster(cfg.peers, cfg.self);
}

void
Server::configureCluster(const std::vector<Endpoint> &allNodes,
                         const std::string &self)
{
    if (allNodes.empty())
        fatal("dcgserved: cluster needs at least one node");
    bool found = false;
    std::size_t self_idx = 0;
    for (std::size_t i = 0; i < allNodes.size(); ++i) {
        if (allNodes[i].str() == self) {
            found = true;
            self_idx = i;
        }
    }
    if (!found)
        fatal("dcgserved: own address '", self,
              "' is not in the cluster node list");
    nodes = allNodes;
    ring = HashRing(endpointStrings(nodes));
    selfAddr = self;
    selfIdx = self_idx;
    clustered = nodes.size() > 1;

    // Epoch 0: the statically configured member list; live joins and
    // leaves advance from here. The node table and the member list
    // coincide until the first membership change.
    curEp = EpochView{};
    curEp.epoch = 0;
    curEp.members = endpointStrings(nodes);
    for (std::size_t i = 0; i < nodes.size(); ++i)
        curEp.nodeIdx.push_back(i);
    curEp.ring = ring;
    prevEp = EpochView{};
    epochReps = std::max(cfg.replicas, 1u);

    replFactor = 1;
    if (repl) {
        // Reconfiguring: destroy the old replication layer (joining
        // its fan-out thread) before the pool it may call through.
        eng.attachStore(store);
        repl.reset();
    }
    pool.reset();
    peerTransport.reset();
    if (clustered) {
        PeerPool::Options po;
        po.peerTimeoutMs = cfg.peerTimeoutMs;
        po.wake = [this] { wake(); };
        pool = std::make_unique<PeerPool>(nodes, std::move(po));
        peerTransport = std::make_shared<PoolPeerTransport>(
            pool.get(), nodes, cfg.peerTimeoutMs);
    }
    if (cfg.replicas > 1 && clustered) {
        if (!store)
            fatal("dcgserved: replication needs a persistent store "
                  "(--replicas without --store)");
        replFactor = static_cast<unsigned>(
            std::min<std::size_t>(cfg.replicas, nodes.size()));
        if (replFactor < cfg.replicas)
            warn("dcgserved: --replicas=", cfg.replicas,
                 " clamped to the cluster size (", replFactor, ")");
    } else if (cfg.replicas > 1) {
        warn("dcgserved: --replicas=", cfg.replicas,
             " ignored on a single-node cluster");
    }
    if (store) {
        // The replication layer wraps every store-backed node (k=1 is
        // a pass-through): it carries the epoch views the handoff
        // read path needs when the ring resizes live.
        if (!peerTransport)
            peerTransport = std::make_shared<DirectPeerTransport>(
                nodes, cfg.peerTimeoutMs);
        repl = std::make_shared<ReplicatedStore>(
            store, nodes, selfIdx, std::max(replFactor, 1u),
            cfg.peerTimeoutMs, peerTransport);
        repl->setEpochViews(curEp, prevEp, epochReps);
        eng.attachStore(repl);
    }

    if (clustered)
        inform("dcgserved: cluster of ", nodes.size(),
               " node(s); this shard is ", selfAddr,
               replFactor > 1
                   ? " (replication factor " +
                         std::to_string(replFactor) + ")"
                   : "");
}

Server::~Server()
{
    // Fail any outstanding peer work first so nothing (the replicator
    // thread included) can block inside the pool, then tear down the
    // replication layer — which joins that thread — before the pool
    // object it calls through goes away. The engine's reference is
    // re-pointed at the plain store so resetting repl really destroys
    // it (and joins its thread) here, not at some later member's
    // destruction after the pool is gone.
    if (pool)
        pool->shutdown();
    if (repl) {
        eng.attachStore(store);
        repl.reset();
    }
    pool.reset();
    {
        std::lock_guard<std::mutex> lk(qMutex);
        workersStop = true;
    }
    qCv.notify_all();
    for (std::thread &t : workerThreads)
        if (t.joinable())
            t.join();
    for (auto &[id, c] : conns)
        if (c.fd >= 0)
            close(c.fd);
    if (listenFd >= 0)
        close(listenFd);
    if (wakePipe[0] >= 0)
        close(wakePipe[0]);
    if (wakePipe[1] >= 0)
        close(wakePipe[1]);
}

void
Server::requestStop()
{
    // Only async-signal-safe operations: dcgserved calls this from
    // its SIGINT/SIGTERM handler.
    stopFlag.store(true, std::memory_order_release);
    const char b = 1;
    const ssize_t n = net::writeRetry(wakePipe[1], &b, 1);
    (void)n;
}

void
Server::wake()
{
    const char b = 1;
    const ssize_t n = net::writeRetry(wakePipe[1], &b, 1);
    (void)n;
}

void
Server::pushEvent(Event ev)
{
    std::lock_guard<std::mutex> lk(evMutex);
    events.push_back(std::move(ev));
}

void
Server::workerLoop()
{
    while (true) {
        WorkItem item;
        {
            std::unique_lock<std::mutex> lk(qMutex);
            qCv.wait(lk, [this] {
                return workersStop || !pending.empty();
            });
            if (workersStop)
                return;
            item = std::move(pending.front());
            pending.pop_front();
            // Claim busy before releasing the lock so idle() can never
            // observe "queue empty, nobody busy" mid-handoff.
            busyWorkers.fetch_add(1, std::memory_order_acq_rel);
        }
        Event started;
        started.kind = Event::Kind::Started;
        started.id = item.id;
        pushEvent(std::move(started));
        wake();

        // Workers only simulate. Peer exchanges — forwards, failover
        // walks, replica traffic — live on the I/O thread's
        // multiplexed links (stepForward), never here.
        Event done;
        done.kind = Event::Kind::Done;
        done.id = item.id;
        done.failovers = item.failovers;
        done.result = eng.runOne(item.job, &done.outcome);
        if (cfg.cacheBudgetBytes)
            eng.evictTo(cfg.cacheBudgetBytes);

        pushEvent(std::move(done));
        busyWorkers.fetch_sub(1, std::memory_order_acq_rel);
        wake();
    }
}

bool
Server::idle()
{
    if (inflightForwards != 0 || (pool && !pool->idle()))
        return false;
    if (rebal.active || adm.active)
        return false;
    {
        std::lock_guard<std::mutex> lk(qMutex);
        if (!pending.empty() ||
            busyWorkers.load(std::memory_order_acquire) != 0)
            return false;
    }
    {
        std::lock_guard<std::mutex> lk(evMutex);
        if (!events.empty())
            return false;
    }
    for (const auto &[id, c] : conns)
        if (c.fd >= 0 && !c.out.empty())
            return false;
    return true;
}

void
Server::run()
{
    workerThreads.reserve(workerCount);
    for (unsigned i = 0; i < workerCount; ++i)
        workerThreads.emplace_back([this] { workerLoop(); });
    loopRunning = true;
    if (pool)
        pool->markRunning();

    bool drain_announced = false;
    std::chrono::steady_clock::time_point drain_start{};

    while (true) {
        const bool draining = stopFlag.load(std::memory_order_acquire);
        if (draining && listenFd >= 0) {
            close(listenFd);
            listenFd = -1;
        }
        if (draining && !drain_announced) {
            drain_announced = true;
            drain_start = std::chrono::steady_clock::now();
            inform("dcgserved: draining (", jobsSubmitted - jobsCompleted,
                   " job(s) outstanding)");
        }

        drainEvents();
        if (pool)
            pool->runDue();

        if (draining) {
            if (idle())
                break;
            const auto waited =
                std::chrono::duration_cast<std::chrono::milliseconds>(
                    std::chrono::steady_clock::now() - drain_start);
            if (waited.count() >=
                static_cast<long long>(cfg.drainGraceMs)) {
                warn("dcgserved: drain grace expired; abandoning "
                     "undelivered output");
                break;
            }
        }

        // Build the poll set: wake pipe, listener, every connection.
        std::vector<pollfd> fds;
        std::vector<std::uint64_t> fd_conn;  // conn id per pollfd; 0=none
        fds.push_back({wakePipe[0], POLLIN, 0});
        fd_conn.push_back(0);
        if (listenFd >= 0) {
            fds.push_back({listenFd, POLLIN, 0});
            fd_conn.push_back(0);
        }
        for (const auto &[id, c] : conns) {
            if (c.fd < 0)
                continue;
            short ev = POLLIN;
            if (!c.out.empty())
                ev |= POLLOUT;
            fds.push_back({c.fd, ev, 0});
            fd_conn.push_back(id);
        }
        const std::size_t ownFds = fds.size();
        if (pool) {
            pool->appendPollFds(fds);
            fd_conn.resize(fds.size(), 0);
        }

        int timeout_ms = draining ? 50 : -1;
        if (pool) {
            const int hint = pool->timeoutHintMs();
            if (hint >= 0 && (timeout_ms < 0 || hint < timeout_ms))
                timeout_ms = hint;
        }
        const int nready =
            net::pollRetry(fds.data(), static_cast<nfds_t>(fds.size()),
                           timeout_ms);
        if (nready < 0)
            fatal("dcgserved: poll failed: ", std::strerror(errno));

        for (std::size_t i = 0; i < ownFds; ++i) {
            if (!fds[i].revents)
                continue;
            if (fds[i].fd == wakePipe[0]) {
                char buf[256];
                while (net::readRetry(wakePipe[0], buf, sizeof(buf)) >
                       0) {
                }
                continue;
            }
            if (listenFd >= 0 && fds[i].fd == listenFd) {
                acceptClients();
                continue;
            }
            auto it = conns.find(fd_conn[i]);
            if (it == conns.end() || it->second.fd < 0)
                continue;
            Conn &conn = it->second;
            if (fds[i].revents & POLLIN)
                readConn(conn);
            if (conn.fd >= 0 && (fds[i].revents & POLLOUT))
                writeConn(conn);
            if (conn.fd >= 0 &&
                (fds[i].revents & (POLLERR | POLLNVAL)))
                closeConn(conn);
        }
        if (pool)
            pool->dispatch(fds.data() + ownFds, fds.size() - ownFds);

        // Sweep connections closed during this iteration.
        for (auto it = conns.begin(); it != conns.end();) {
            if (it->second.fd < 0)
                it = conns.erase(it);
            else
                ++it;
        }
    }

    // Fail any forwards the drain grace abandoned (their finishJob
    // responses land in conn buffers about to close — same fate as
    // any other undelivered output) and unblock every thread parked
    // in a callSync before the workers are joined below.
    loopRunning = false;
    if (pool)
        pool->shutdown();
    drainEvents();

    for (auto &[id, c] : conns)
        closeConn(c);
    conns.clear();
    if (listenFd >= 0) {
        close(listenFd);
        listenFd = -1;
    }
    {
        std::lock_guard<std::mutex> lk(qMutex);
        workersStop = true;
    }
    qCv.notify_all();
    for (std::thread &t : workerThreads)
        t.join();
    workerThreads.clear();

    // Workers are gone, so no new fan-out tasks can appear: give the
    // replicator a chance to land every queued replica before exit.
    if (repl)
        repl->flush();
}

void
Server::acceptClients()
{
    while (true) {
        const int fd = net::acceptRetry(listenFd);
        if (fd < 0)
            return;  // EAGAIN/EWOULDBLOCK: try next iteration
        setNonBlocking(fd);
        Conn c;
        c.id = nextConnId++;
        c.fd = fd;
        conns.emplace(c.id, std::move(c));
    }
}

void
Server::closeConn(Conn &conn)
{
    if (conn.fd >= 0) {
        close(conn.fd);
        conn.fd = -1;  // swept (and erased) at the end of the loop
    }
}

void
Server::readConn(Conn &conn)
{
    char buf[4096];
    while (true) {
        const ssize_t n = net::recvRetry(conn.fd, buf, sizeof(buf), 0);
        if (n > 0) {
            conn.in.append(buf, static_cast<std::size_t>(n));
            if (conn.in.size() > kMaxLineBytes) {
                warn("dcgserved: dropping connection with oversized "
                     "request line");
                closeConn(conn);
                return;
            }
            continue;
        }
        if (n == 0) {
            closeConn(conn);
            return;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            break;
        closeConn(conn);
        return;
    }

    std::size_t start = 0;
    while (true) {
        const std::size_t nl = conn.in.find('\n', start);
        if (nl == std::string::npos)
            break;
        std::string line = conn.in.substr(start, nl - start);
        start = nl + 1;
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        if (!line.empty())
            handleLine(conn, line);
        if (conn.fd < 0)
            return;
    }
    conn.in.erase(0, start);
}

void
Server::writeConn(Conn &conn)
{
    while (!conn.out.empty()) {
        const ssize_t n = net::sendRetry(conn.fd, conn.out.data(),
                                         conn.out.size(), MSG_NOSIGNAL);
        if (n > 0) {
            conn.out.erase(0, static_cast<std::size_t>(n));
            continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
            return;
        closeConn(conn);
        return;
    }
}

void
Server::handleLine(Conn &conn, const std::string &line)
{
    JsonValue req;
    std::string err;
    if (!JsonValue::parse(line, req, err) || !req.isObject()) {
        ++badRequests;
        JsonValue resp =
            errorResponse("bad_request",
                          err.empty() ? "request must be a JSON object"
                                      : err);
        stampVersion(resp, 1);
        conn.out += resp.dump();
        conn.out += '\n';
        return;
    }

    // Envelope version: absent = 1 (legacy client); anything newer
    // than we speak gets the structured rejection.
    unsigned version = 1;
    JsonValue early;
    bool rejected = false;
    if (!requestVersion(req, version, err)) {
        ++badRequests;
        early = errorResponse("bad_request", err);
        version = 1;
        rejected = true;
    } else if (version > kProtocolVersion) {
        ++badRequests;
        early = unsupportedVersionResponse(version);
        rejected = true;
    }
    if (rejected) {
        stampVersion(early, version);
        echoRid(req, early);
        conn.out += early.dump();
        conn.out += '\n';
        return;
    }

    // Registry dispatch: every verb — built-in or future — resolves
    // through the op catalog (serve/ops.hh); there is no verb chain.
    const std::string op = req.get("op").asString();
    const OpInfo *info = findOp(op);
    if (!info) {
        ++badRequests;
        JsonValue resp = errorResponse(
            "bad_request",
            "unknown op '" + op + "' (expected " + opNamesJoined() +
                ")");
        stampVersion(resp, version);
        echoRid(req, resp);
        conn.out += resp.dump();
        conn.out += '\n';
        return;
    }
    // minVersion is enforced only for verbs newer than v4 — the
    // historic verbs predate versioned requests (see ops.hh).
    if (info->minVersion > 4 && version < info->minVersion) {
        ++badRequests;
        JsonValue resp = versionTooLowResponse(op, info->minVersion);
        stampVersion(resp, version);
        echoRid(req, resp);
        conn.out += resp.dump();
        conn.out += '\n';
        return;
    }

    OpCall call{req, version, conn.id, JsonValue(), false};
    (*findOpHandler(op))(*this, call);
    if (call.deferred)
        return;  // the response is parked; written on completion
    stampVersion(call.resp, version);
    echoRid(req, call.resp);
    conn.out += call.resp.dump();
    conn.out += '\n';
}

void
registerServerOps()
{
    static const bool once = [] {
        registerOp({"submit", 1, false,
                    "run or fetch simulation jobs (job/jobs/grid)"},
                   [](Server &s, OpCall &c) {
                       c.resp =
                           s.stopFlag.load(std::memory_order_acquire)
                               ? errorResponse(
                                     "draining",
                                     "server is shutting down")
                               : s.handleSubmit(c.req, c.version,
                                                c.connId, c.deferred);
                   });
        registerOp({"status", 1, false, "poll one job's state"},
                   [](Server &s, OpCall &c) {
                       c.resp = s.handleStatus(c.req);
                   });
        registerOp({"result", 1, false,
                    "fetch (or wait for) one job's result"},
                   [](Server &s, OpCall &c) { s.handleResult(c); });
        registerOp({"stats", 1, false,
                    "service counters and the op catalog"},
                   [](Server &s, OpCall &c) {
                       c.resp = okResponse();
                       c.resp.set("stats", s.statsJson());
                   });
        registerOp({"shutdown", 1, true, "begin graceful drain"},
                   [](Server &s, OpCall &c) {
                       c.resp = okResponse();
                       c.resp.set("status",
                                  JsonValue::string("draining"));
                       s.requestStop();
                   });
        registerOp({"compact", 2, true,
                    "garbage-collect the result store"},
                   [](Server &s, OpCall &c) {
                       c.resp = s.handleCompact();
                   });
        // Accepted even while draining: a late replica or read-repair
        // write is a harmless local put that helps the cluster heal.
        registerOp({"replicate", 3, false,
                    "store a replica record (peer-to-peer)"},
                   [](Server &s, OpCall &c) {
                       c.resp = s.handleReplicate(c.req);
                   });
        registerOp({"fetch", 3, false,
                    "serve a stored record to a peer"},
                   [](Server &s, OpCall &c) {
                       c.resp = s.handleFetch(c.req);
                   });
        registerOp({"join", 5, true,
                    "add a node to the ring (advances the epoch)"},
                   [](Server &s, OpCall &c) { s.handleJoin(c); });
        registerOp({"leave", 5, true,
                    "remove a node from the ring (advances the epoch)"},
                   [](Server &s, OpCall &c) { s.handleLeave(c); });
        registerOp({"ring", 5, true,
                    "current epoch, members and rebalance state"},
                   [](Server &s, OpCall &c) {
                       c.resp = s.handleRing();
                   });
        registerOp({"epoch", 5, false,
                    "peer-to-peer epoch announcement"},
                   [](Server &s, OpCall &c) { s.handleEpoch(c); });
        return true;
    }();
    (void)once;
}

JsonValue
Server::handleSubmit(const JsonValue &req, unsigned version,
                     std::uint64_t connId, bool &deferred)
{
    deferred = false;
    std::vector<JobSpec> specs;
    std::string err;
    if (req.has("job")) {
        JobSpec s;
        if (!JobSpec::fromJson(req.get("job"), s, err)) {
            ++badRequests;
            return errorResponse("bad_request", err);
        }
        specs.push_back(std::move(s));
    } else if (req.has("jobs")) {
        const JsonValue &arr = req.get("jobs");
        if (!arr.isArray()) {
            ++badRequests;
            return errorResponse("bad_request", "jobs must be an array");
        }
        for (const JsonValue &v : arr.items()) {
            JobSpec s;
            if (!JobSpec::fromJson(v, s, err)) {
                ++badRequests;
                return errorResponse("bad_request", err);
            }
            specs.push_back(std::move(s));
        }
    } else if (req.has("grid")) {
        GridSpec g;
        if (!GridSpec::fromJson(req.get("grid"), g, err)) {
            ++badRequests;
            return errorResponse("bad_request", err);
        }
        specs = g.expand();
    } else {
        ++badRequests;
        return errorResponse("bad_request",
                             "submit needs 'job', 'jobs' or 'grid'");
    }
    if (specs.empty()) {
        ++badRequests;
        return errorResponse("bad_request", "empty submission");
    }

    // Ring ownership per job. A forwarded submit for a key we do not
    // own means the peer's ring disagrees with ours: answer not_owner
    // rather than forwarding again (no loops, ever). A client that
    // asked to route itself ("redirect": true, single job) gets the
    // owner's address back instead of transparent forwarding.
    const bool forwarded = req.get("forwarded").asBool(false);
    const bool wantRedirect = req.get("redirect").asBool(false);

    struct Admit
    {
        exp::Job job;
        bool cached = false;
        RunResult result;
        bool remote = false;
        std::vector<std::size_t> holders;
        JobSpec spec;
    };
    std::vector<Admit> admits;
    admits.reserve(specs.size());
    std::size_t need_slots = 0;
    for (JobSpec &s : specs) {
        Admit a;
        a.job = s.toJob();
        if (clustered) {
            const std::string key = exp::jobKey(a.job);
            a.holders = curEp.holders(
                key, std::min<std::size_t>(replFactor,
                                           curEp.members.size()));
            a.remote = a.holders.front() != selfIdx;
            // A forwarded submit is served here whenever this node
            // holds the key under the *current or previous* epoch:
            // a replica-marked forward is a failover onto a holder,
            // and during a membership transition the sender's ring
            // may lawfully disagree with ours — dual-epoch routing
            // means no request misses mid-rebalance. A node that
            // holds under neither epoch still bounces not_owner, so
            // a genuinely bad ring cannot loop.
            if (a.remote && forwarded) {
                bool serve_here =
                    std::find(a.holders.begin(), a.holders.end(),
                              selfIdx) != a.holders.end();
                if (!serve_here && prevEp.valid()) {
                    const auto ph = prevEp.holders(
                        key,
                        std::min<std::size_t>(replFactor,
                                              prevEp.members.size()));
                    serve_here = std::find(ph.begin(), ph.end(),
                                           selfIdx) != ph.end();
                }
                if (serve_here)
                    a.remote = false;
            }
        }
        if (a.remote) {
            if (forwarded || (wantRedirect && specs.size() == 1)) {
                ++notOwnerReplies;
                return notOwnerResponse(nodes[a.holders.front()].str());
            }
            a.spec = std::move(s);
            ++need_slots;
        } else {
            // Peek the warm cache first: satisfied jobs complete
            // immediately and never occupy a queue slot or worker.
            a.cached = eng.tryCached(a.job, a.result);
            if (!a.cached)
                ++need_slots;
        }
        admits.push_back(std::move(a));
    }

    // Bounded admission: reject the whole submit (all-or-nothing, so
    // clients never track partial grids) when the queue cannot take
    // it. In-flight forwards hold no queue slot but count against the
    // same capacity — peer traffic must feel backpressure too.
    std::size_t queue_len;
    {
        std::lock_guard<std::mutex> lk(qMutex);
        queue_len = pending.size();
    }
    queue_len += static_cast<std::size_t>(inflightForwards);
    if (queue_len + need_slots > cfg.queueCapacity) {
        ++submitsRejected;
        JsonValue resp = errorResponse("busy", "job queue is full");
        resp.set("retry_after_ms",
                 JsonValue::integer(std::uint64_t{cfg.retryAfterMs}));
        resp.set("queue_depth",
                 JsonValue::integer(std::uint64_t{queue_len}));
        resp.set("queue_capacity",
                 JsonValue::integer(std::uint64_t{cfg.queueCapacity}));
        return resp;
    }

    const auto now = std::chrono::steady_clock::now();
    JsonValue ids = JsonValue::array();
    std::uint64_t soleId = 0;
    for (Admit &a : admits) {
        const std::uint64_t id = nextJobId++;
        soleId = id;
        JobRec rec;
        rec.enqueued = now;
        if (a.cached) {
            rec.state = JobState::Done;
            rec.result = std::move(a.result);
            ++jobsCompleted;  // zero-latency completion
        }
        jobs.emplace(id, std::move(rec));
        ids.push(JsonValue::integer(id));
        ++jobsSubmitted;
        if (a.cached)
            continue;
        if (a.remote) {
            // The job leaves on the owner's multiplexed link right
            // now; its failover walk is a continuation chain stepped
            // by link completions on this thread.
            auto fwd = std::make_shared<Forward>();
            fwd->id = id;
            fwd->spec = std::move(a.spec);
            fwd->job = std::move(a.job);
            fwd->holders = std::move(a.holders);
            fwd->epoch = curEp.epoch;
            jobs[id].state = JobState::Running;
            ++inflightForwards;
            peakInflightForwards =
                std::max(peakInflightForwards, inflightForwards);
            stepForward(fwd);
        } else {
            WorkItem item;
            item.id = id;
            item.job = std::move(a.job);
            enqueueLocal(std::move(item));
        }
    }

    JsonValue resp = okResponse();
    if (ids.items().size() == 1)
        resp.set("id", ids.items().front());
    resp.set("ids", std::move(ids));

    // v4 single-job submit+wait: defer the response until the job
    // finishes (cached jobs are already Done and answer now), parking
    // on the same waiter list "result"+wait uses.
    if (version >= 4 && req.get("wait").asBool(false) &&
        admits.size() == 1) {
        auto it = jobs.find(soleId);
        if (it->second.state == JobState::Done)
            return doneResponse(soleId, it->second);
        if (it->second.state == JobState::Failed)
            return failedResponse(soleId, it->second);
        Waiter w;
        w.connId = connId;
        w.version = version;
        if (req.has("rid")) {
            w.hasRid = true;
            w.rid = req.get("rid");
        }
        it->second.waiters.push_back(std::move(w));
        deferred = true;
    }
    return resp;
}

void
Server::enqueueLocal(WorkItem item)
{
    {
        std::lock_guard<std::mutex> lk(qMutex);
        pending.push_back(std::move(item));
    }
    qCv.notify_all();
}

void
Server::stepForward(const std::shared_ptr<Forward> &fwd)
{
    if (fwd->pos >= fwd->holders.size()) {
        Event ev;
        ev.id = fwd->id;
        ev.remote = true;
        ev.failed = true;
        ev.failovers = fwd->holders.empty()
                           ? 0
                           : static_cast<unsigned>(
                                 fwd->holders.size() - 1);
        ev.error = "forward failed on every holder: " + fwd->errs;
        deliverForward(fwd, std::move(ev));
        return;
    }

    const std::size_t idx = fwd->holders[fwd->pos];
    if (idx == selfIdx) {
        // We hold a replica: serve the job here. The worker item
        // carries the failovers burned getting to us; the forward
        // slot converts into a queue slot.
        WorkItem item;
        item.id = fwd->id;
        item.job = fwd->job;
        item.failovers = static_cast<unsigned>(fwd->pos);
        --inflightForwards;
        enqueueLocal(std::move(item));
        return;
    }

    JsonValue submit = JsonValue::object();
    submit.set("op", JsonValue::string("submit"));
    submit.set("job", fwd->spec.toJson());
    submit.set("forwarded", JsonValue::boolean(true));
    if (fwd->pos > 0)
        submit.set("replica", JsonValue::boolean(true));
    submit.set("wait", JsonValue::boolean(true));
    pool->call(idx, std::move(submit),
               [this, fwd](PeerReply reply) {
                   forwardReply(fwd, std::move(reply));
               });
}

void
Server::forwardReply(const std::shared_ptr<Forward> &fwd,
                     PeerReply reply)
{
    const std::size_t idx = fwd->holders[fwd->pos];
    auto recordErr = [&](const std::string &what) {
        if (!fwd->errs.empty())
            fwd->errs += "; ";
        fwd->errs += nodes[idx].str() + ": " + what;
    };

    if (!reply.transportOk) {
        recordErr(reply.error);
        ++fwd->pos;
        stepForward(fwd);
        return;
    }

    const JsonValue &resp = reply.resp;
    if (resp.get("ok").asBool(false)) {
        std::vector<RunResult> one;
        std::string err;
        if (resultsFromJson(resp.get("result"), one, err) &&
            one.size() == 1) {
            Event ev;
            ev.id = fwd->id;
            ev.remote = true;
            ev.failovers = static_cast<unsigned>(fwd->pos);
            ev.result = std::move(one.front());
            deliverForward(fwd, std::move(ev));
            return;
        }
        recordErr("malformed forwarded result" +
                  (err.empty() ? "" : ": " + err));
        ++fwd->pos;
        stepForward(fwd);
        return;
    }

    const std::string code = resp.get("error").asString();
    if (code == "busy") {
        if (++fwd->busyRetries >= kMaxForwardBusyRetries) {
            recordErr("stayed busy after " +
                      std::to_string(fwd->busyRetries) + " retries");
            ++fwd->pos;
            stepForward(fwd);
            return;
        }
        const std::uint64_t hint =
            resp.get("retry_after_ms").asU64(250);
        pool->schedule(static_cast<unsigned>(hint ? hint : 250),
                       [this, fwd] { stepForward(fwd); });
        return;
    }

    // During a membership transition (only then: epochs advance past
    // 0) a holder may bounce not_owner because the new epoch has not
    // reached it yet. If our own epoch moved since the walk was
    // computed, recompute the holders against the new ring; otherwise
    // re-ask the same holder shortly — it converges once the epoch
    // lands there. A static cluster (epoch 0) keeps the original
    // walk-on semantics.
    if ((code == "not_owner" || code == "stale_epoch") &&
        curEp.epoch > 0) {
        if (fwd->epoch != curEp.epoch && fwd->reroutes < 2) {
            ++fwd->reroutes;
            fwd->epoch = curEp.epoch;
            fwd->busyRetries = 0;
            fwd->ownerRetries = 0;
            fwd->holders = curEp.holders(
                exp::jobKey(fwd->job),
                std::min<std::size_t>(replFactor,
                                      curEp.members.size()));
            fwd->pos = 0;
            stepForward(fwd);
            return;
        }
        if (++fwd->ownerRetries < kMaxForwardOwnerRetries) {
            pool->schedule(kOwnerRetryDelayMs,
                           [this, fwd] { stepForward(fwd); });
            return;
        }
    }

    recordErr("rejected forwarded job (" + code + ")" +
              (resp.has("detail") ? ": " + resp.get("detail").asString()
                                  : ""));
    ++fwd->pos;
    stepForward(fwd);
}

void
Server::deliverForward(const std::shared_ptr<Forward> &fwd, Event ev)
{
    --inflightForwards;
    auto it = jobs.find(fwd->id);
    if (it == jobs.end())
        return;
    finishJob(fwd->id, it->second, ev);
}

JsonValue
Server::handleReplicate(const JsonValue &req)
{
    if (!store)
        return errorResponse("no_store",
                             "server runs without a persistent store");
    const std::string key = req.get("key").asString();
    if (key.empty()) {
        ++badRequests;
        return errorResponse("bad_request", "replicate needs a key");
    }
    std::vector<RunResult> one;
    std::string err;
    if (!resultsFromJson(req.get("result"), one, err) ||
        one.size() != 1) {
        ++badRequests;
        return errorResponse("bad_request",
                             "replicate needs exactly one result" +
                                 (err.empty() ? "" : ": " + err));
    }
    // Into the plain local store, bypassing the replication layer —
    // accepting a replica must never trigger another fan-out.
    store->putReplica(key, one.front());
    ++replicateOps;
    return okResponse();
}

JsonValue
Server::handleFetch(const JsonValue &req)
{
    const std::string key = req.get("key").asString();
    if (key.empty()) {
        ++badRequests;
        return errorResponse("bad_request", "fetch needs a key");
    }
    RunResult r;
    // Local store only — never the replication layer — so a fetch
    // cannot cascade into fetches of fetches across the cluster.
    if (!store || !store->get(key, r))
        return errorResponse("not_found", "no record for this key");
    ++fetchesServed;
    JsonValue resp = okResponse();
    resp.set("key", JsonValue::string(key));
    resp.set("result", resultsToJson({r}));
    return resp;
}

JsonValue
Server::handleStatus(const JsonValue &req) const
{
    const std::uint64_t id = req.get("id").asU64(0);
    auto it = jobs.find(id);
    if (it == jobs.end())
        return errorResponse("unknown_id", "no such job id");
    JsonValue resp = okResponse();
    resp.set("id", JsonValue::integer(id));
    resp.set("status",
             JsonValue::string(
                 stateName(static_cast<int>(it->second.state))));
    return resp;
}

void
Server::handleResult(OpCall &c)
{
    const std::uint64_t id = c.req.get("id").asU64(0);
    auto it = jobs.find(id);
    if (it == jobs.end()) {
        c.resp = errorResponse("unknown_id", "no such job id");
    } else if (it->second.state == JobState::Done) {
        c.resp = doneResponse(id, it->second);
    } else if (it->second.state == JobState::Failed) {
        c.resp = failedResponse(id, it->second);
    } else if (c.req.get("wait").asBool(false)) {
        Waiter w;
        w.connId = c.connId;
        w.version = c.version;
        if (c.req.has("rid")) {
            w.hasRid = true;
            w.rid = c.req.get("rid");
        }
        it->second.waiters.push_back(std::move(w));
        c.deferred = true;  // answered on completion
    } else {
        c.resp = okResponse();
        c.resp.set("id", JsonValue::integer(id));
        c.resp.set("status",
                   JsonValue::string(
                       stateName(static_cast<int>(it->second.state))));
    }
}

JsonValue
Server::handleCompact()
{
    if (!store)
        return errorResponse("no_store",
                             "server runs without a persistent store");
    const std::size_t removed = store->compact();
    JsonValue resp = okResponse();
    resp.set("removed", JsonValue::integer(std::uint64_t{removed}));
    resp.set("records",
             JsonValue::integer(std::uint64_t{store->entries()}));
    resp.set("bytes", JsonValue::integer(store->bytes()));
    return resp;
}

std::size_t
Server::nodeIndexOf(const Endpoint &ep)
{
    for (std::size_t i = 0; i < nodes.size(); ++i)
        if (nodes[i] == ep)
            return i;
    // Append-only: a node keeps its table slot for the life of the
    // process, so in-flight Forward walks and pool links never see
    // their indices shift underneath them.
    nodes.push_back(ep);
    if (pool)
        pool->addPeer(ep);
    if (peerTransport)
        peerTransport->addPeer(ep);
    return nodes.size() - 1;
}

void
Server::ensurePeerInfra()
{
    if (pool)
        return;
    PeerPool::Options po;
    po.peerTimeoutMs = cfg.peerTimeoutMs;
    po.wake = [this] { wake(); };
    pool = std::make_unique<PeerPool>(nodes, std::move(po));
    if (loopRunning)
        pool->markRunning();
    if (!peerTransport)
        peerTransport = std::make_shared<PoolPeerTransport>(
            pool.get(), nodes, cfg.peerTimeoutMs);
}

void
Server::installEpoch(std::uint64_t epoch,
                     const std::vector<std::string> &members,
                     unsigned reps, const EpochView *announcedPrev)
{
    // Callers canonicalize and de-duplicate member lists before they
    // get here; a violation is a bug, not bad input.
    EpochView next;
    next.epoch = epoch;
    next.members = members;
    for (const std::string &m : members) {
        Endpoint ep;
        std::string err;
        if (!parseEndpoint(m, ep, err))
            fatal("dcgserved: epoch ", epoch,
                  " carries unparseable member '", m, "': ", err);
        next.nodeIdx.push_back(nodeIndexOf(ep));
    }
    next.ring = HashRing(members);

    EpochView ownPrev = std::move(curEp);
    curEp = std::move(next);
    prevEp = announcedPrev && announcedPrev->valid() ? *announcedPrev
                                                     : ownPrev;
    ring = curEp.ring;
    epochReps = std::max(reps, 1u);
    clustered = !(curEp.members.size() == 1 &&
                  curEp.members.front() == selfAddr);
    replFactor = static_cast<unsigned>(
        std::min<std::size_t>(epochReps, curEp.members.size()));
    if (clustered)
        ensurePeerInfra();
    if (repl)
        repl->setEpochViews(curEp, prevEp, epochReps);
    inform("dcgserved: epoch ", curEp.epoch, " installed (",
           curEp.members.size(), " member(s), replication factor ",
           replFactor, ")");
    startRebalance(ownPrev);
}

void
Server::startRebalance(const EpochView &ownPrev)
{
    // A newer epoch supersedes an unfinished rebalance: release its
    // parked epoch acks (the handoff read path covers whatever the
    // aborted push skipped) and rescan under the new view pair.
    if (rebal.active) {
        for (const ParkedResp &p : rebal.acks) {
            JsonValue resp = okResponse();
            resp.set("epoch", JsonValue::integer(rebal.epoch));
            respondParked(p, std::move(resp));
        }
        rebal.acks.clear();
    }
    rebal.queue.clear();
    rebal.epoch = curEp.epoch;

    // Only a node that held arcs under its own previous view has
    // records to push, and only a key's old primary pushes — one
    // pusher per key keeps the move at ~1/N of the store, not k/N.
    if (store && pool && ownPrev.valid() &&
        ownPrev.hasMember(selfAddr)) {
        const std::size_t kPrev = std::min<std::size_t>(
            epochReps, ownPrev.members.size());
        const std::size_t kCur = std::min<std::size_t>(
            epochReps, curEp.members.size());
        for (const std::string &key : store->keys()) {
            const auto ph = ownPrev.holders(key, kPrev);
            if (ph.empty() || ph.front() != selfIdx)
                continue;
            const auto ch = curEp.holders(key, kCur);
            Rebalance::Item item;
            item.key = key;
            for (std::size_t t : ch)
                if (std::find(ph.begin(), ph.end(), t) == ph.end())
                    item.targets.push_back(t);
            if (item.targets.empty())
                continue;  // this arc did not move
            ++rebalArcsMoved;
            rebal.queue.push_back(std::move(item));
        }
    }

    rebal.active = !rebal.queue.empty() || rebal.inflight > 0;
    if (rebal.active)
        stepRebalance();
}

void
Server::stepRebalance()
{
    if (!rebal.active)
        return;
    while (rebal.inflight < kMaxRebalanceInflight &&
           !rebal.queue.empty()) {
        Rebalance::Item item = std::move(rebal.queue.front());
        rebal.queue.pop_front();
        RunResult r;
        if (!store->get(item.key, r))
            continue;  // evicted since the scan; handoff covers it
        const JsonValue req = replicateRequest(item.key, r);
        const std::size_t sz = req.dump().size();
        // Count the whole item in flight before issuing anything: a
        // completion that fires synchronously must not see the count
        // drain to zero while later targets are still unposted.
        rebal.inflight += item.targets.size();
        for (std::size_t t : item.targets) {
            rebalBytes += sz;
            pool->call(t, JsonValue(req), [this](PeerReply reply) {
                --rebal.inflight;
                if (!reply.transportOk ||
                    !reply.resp.get("ok").asBool(false))
                    ++rebalPushFailures;
                stepRebalance();
            });
        }
    }
    if (rebal.queue.empty() && rebal.inflight == 0)
        finishRebalance();
}

void
Server::finishRebalance()
{
    if (!rebal.active)
        return;
    rebal.active = false;
    for (const ParkedResp &p : rebal.acks) {
        JsonValue resp = okResponse();
        resp.set("epoch", JsonValue::integer(rebal.epoch));
        respondParked(p, std::move(resp));
    }
    rebal.acks.clear();
    if (adm.active && adm.epoch == rebal.epoch) {
        adm.localDone = true;
        maybeFinishAdmin();
    }
}

void
Server::respondParked(const ParkedResp &p, JsonValue resp)
{
    auto it = conns.find(p.connId);
    if (it == conns.end() || it->second.fd < 0)
        return;  // client went away; nothing to deliver
    stampVersion(resp, p.version);
    if (p.hasRid)
        resp.set("rid", p.rid);
    it->second.out += resp.dump();
    it->second.out += '\n';
}

void
Server::handleEpoch(OpCall &c)
{
    const std::uint64_t e = c.req.get("epoch").asU64(0);
    const JsonValue &mj = c.req.get("members");
    if (e == 0 || !mj.isArray() || mj.items().empty()) {
        c.resp = errorResponse("bad_request",
                               "epoch needs a nonzero 'epoch' and a "
                               "nonempty 'members' array");
        return;
    }
    std::vector<std::string> members;
    for (const JsonValue &mv : mj.items()) {
        const std::string m = mv.asString();
        Endpoint ep;
        std::string err;
        if (!parseEndpoint(m, ep, err)) {
            c.resp = errorResponse("bad_request",
                                   "bad member '" + m + "': " + err);
            return;
        }
        members.push_back(ep.str());
    }
    // The ring treats duplicate names as a fatal construction error;
    // wire input must never reach it unchecked.
    std::vector<std::string> sorted = members;
    std::sort(sorted.begin(), sorted.end());
    if (std::adjacent_find(sorted.begin(), sorted.end()) !=
        sorted.end()) {
        c.resp = errorResponse(
            "bad_request", "duplicate member in epoch announcement");
        return;
    }
    const unsigned reps = static_cast<unsigned>(
        c.req.get("replicas").asU64(epochReps));

    if (e < curEp.epoch) {
        c.resp = staleEpochResponse(curEp.epoch, curEp.members);
        return;
    }
    if (e == curEp.epoch) {
        // Idempotent re-announcement.
        c.resp = okResponse();
        c.resp.set("epoch", JsonValue::integer(curEp.epoch));
        return;
    }
    if (std::find(members.begin(), members.end(), selfAddr) ==
            members.end() &&
        !curEp.hasMember(selfAddr)) {
        c.resp = errorResponse("not_member",
                               "this node is in neither the announced "
                               "nor its current member list");
        return;
    }

    // The announced previous view tells a node that was not in it —
    // the joiner, above all — where the cluster kept records until
    // now; the handoff read leg routes by it. Unusable prev fields
    // just mean "no announced view", never a rejection.
    EpochView announcedPrev;
    announcedPrev.epoch = c.req.get("prev_epoch").asU64(0);
    const JsonValue &pj = c.req.get("prev_members");
    if (pj.isArray()) {
        bool parsed = true;
        for (const JsonValue &pv : pj.items()) {
            Endpoint pep;
            std::string perr;
            if (!parseEndpoint(pv.asString(), pep, perr)) {
                parsed = false;
                break;
            }
            announcedPrev.members.push_back(pep.str());
        }
        std::vector<std::string> ps = announcedPrev.members;
        std::sort(ps.begin(), ps.end());
        if (!parsed || announcedPrev.members.empty() ||
            std::adjacent_find(ps.begin(), ps.end()) != ps.end()) {
            announcedPrev.members.clear();
        } else {
            for (const std::string &m : announcedPrev.members) {
                Endpoint pep;
                std::string perr;
                parseEndpoint(m, pep, perr);  // re-parse: canonical
                announcedPrev.nodeIdx.push_back(nodeIndexOf(pep));
            }
            announcedPrev.ring = HashRing(announcedPrev.members);
        }
    }

    installEpoch(e, members, reps,
                 announcedPrev.valid() ? &announcedPrev : nullptr);
    if (rebal.active) {
        // The ack doubles as the quiesce signal: the coordinator's
        // admin response only completes once every member (this one
        // included) has drained its rebalance push queue.
        ParkedResp p;
        p.connId = c.connId;
        p.version = c.version;
        if (c.req.has("rid")) {
            p.hasRid = true;
            p.rid = c.req.get("rid");
        }
        rebal.acks.push_back(std::move(p));
        c.deferred = true;
        return;
    }
    c.resp = okResponse();
    c.resp.set("epoch", JsonValue::integer(curEp.epoch));
}

void
Server::handleJoin(OpCall &c)
{
    const std::string node = c.req.get("node").asString();
    Endpoint ep;
    std::string err;
    if (!parseEndpoint(node, ep, err)) {
        c.resp = errorResponse("bad_request",
                               "bad node '" + node + "': " + err);
        return;
    }
    if (adm.active) {
        c.resp = errorResponse("change_in_progress",
                               "membership change in flight: " +
                                   adm.verb + " " + adm.node);
        return;
    }
    const std::string addr = ep.str();
    if (addr == selfAddr || curEp.hasMember(addr)) {
        c.resp = errorResponse(
            "already_member",
            "'" + addr + "' is already a cluster member");
        return;
    }

    const std::uint64_t e = curEp.epoch + 1;
    adm = AdminChange{};
    adm.active = true;
    adm.verb = "join";
    adm.node = addr;
    adm.epoch = e;
    adm.resp.connId = c.connId;
    adm.resp.version = c.version;
    if (c.req.has("rid")) {
        adm.resp.hasRid = true;
        adm.resp.rid = c.req.get("rid");
    }
    c.deferred = true;

    std::vector<std::string> newMembers = curEp.members;
    newMembers.push_back(addr);

    ensurePeerInfra();
    const std::size_t jidx = nodeIndexOf(ep);
    // Tell the joiner FIRST: by the time anything routes a request to
    // it, it must know the ring. Its ack doubles as a liveness probe —
    // an unreachable joiner fails the join with no epoch change
    // anywhere.
    pool->call(
        jidx,
        epochRequest(e, newMembers, curEp.epoch, curEp.members,
                     epochReps),
        [this, e, newMembers](PeerReply reply) {
            if (!adm.active || adm.epoch != e)
                return;  // superseded
            if (!reply.transportOk) {
                adm.failed = true;
                adm.errs = "joiner unreachable: " + reply.error;
                adm.localDone = true;
                maybeFinishAdmin();
                return;
            }
            if (!reply.resp.get("ok").asBool(false)) {
                adm.failed = true;
                adm.errs = "joiner rejected the epoch (" +
                           reply.resp.get("error").asString() + ")";
                adm.localDone = true;
                maybeFinishAdmin();
                return;
            }
            // The old members hear about the epoch only after the
            // joiner acknowledged it — capture them before the install
            // replaces the view.
            std::vector<std::string> others;
            for (const std::string &m : curEp.members)
                if (m != selfAddr)
                    others.push_back(m);
            installEpoch(e, newMembers, epochReps);
            adm.localDone = !rebal.active;
            broadcastEpoch(others);
            maybeFinishAdmin();
        });
}

void
Server::handleLeave(OpCall &c)
{
    const std::string node = c.req.get("node").asString();
    Endpoint ep;
    std::string err;
    if (!parseEndpoint(node, ep, err)) {
        c.resp = errorResponse("bad_request",
                               "bad node '" + node + "': " + err);
        return;
    }
    if (adm.active) {
        c.resp = errorResponse("change_in_progress",
                               "membership change in flight: " +
                                   adm.verb + " " + adm.node);
        return;
    }
    const std::string addr = ep.str();
    if (!curEp.hasMember(addr)) {
        c.resp = errorResponse(
            "not_member", "'" + addr + "' is not a cluster member");
        return;
    }
    if (curEp.members.size() <= 1) {
        c.resp = errorResponse("bad_request",
                               "cannot remove the last member");
        return;
    }

    const std::uint64_t e = curEp.epoch + 1;
    adm = AdminChange{};
    adm.active = true;
    adm.verb = "leave";
    adm.node = addr;
    adm.epoch = e;
    adm.resp.connId = c.connId;
    adm.resp.version = c.version;
    if (c.req.has("rid")) {
        adm.resp.hasRid = true;
        adm.resp.rid = c.req.get("rid");
    }
    c.deferred = true;

    // Everyone on the OLD list hears the new epoch — the leaver
    // included, so a live leaver stops owning arcs; a dead one merely
    // fails its notification, which a leave tolerates.
    std::vector<std::string> targets;
    for (const std::string &m : curEp.members)
        if (m != selfAddr)
            targets.push_back(m);
    std::vector<std::string> newMembers;
    for (const std::string &m : curEp.members)
        if (m != addr)
            newMembers.push_back(m);

    ensurePeerInfra();
    installEpoch(e, newMembers, epochReps);
    adm.localDone = !rebal.active;
    broadcastEpoch(targets);
    maybeFinishAdmin();
}

void
Server::broadcastEpoch(const std::vector<std::string> &targets)
{
    adm.pendingAcks = targets.size();
    const std::uint64_t e = adm.epoch;
    for (const std::string &m : targets) {
        Endpoint ep;
        std::string err;
        if (!parseEndpoint(m, ep, err)) {
            // Members are canonicalized before entering any view.
            --adm.pendingAcks;
            continue;
        }
        const std::size_t idx = nodeIndexOf(ep);
        pool->call(
            idx,
            epochRequest(e, curEp.members, prevEp.epoch,
                         prevEp.members, epochReps),
            [this, e, m](PeerReply reply) {
                if (!adm.active || adm.epoch != e)
                    return;  // superseded
                --adm.pendingAcks;
                const bool leaver =
                    adm.verb == "leave" && m == adm.node;
                if (!reply.transportOk) {
                    if (leaver) {
                        // A dead node is exactly what a leave removes.
                        warn("dcgserved: leaving node ", m,
                             " unreachable (", reply.error,
                             "); removed anyway");
                    } else {
                        adm.failed = true;
                        if (!adm.errs.empty())
                            adm.errs += "; ";
                        adm.errs += m + " unreachable: " + reply.error;
                    }
                } else if (!reply.resp.get("ok").asBool(false)) {
                    const std::string code =
                        reply.resp.get("error").asString();
                    if (code == "stale_epoch") {
                        // The peer is ahead of us. Fail this change
                        // and adopt its epoch once the response is
                        // delivered — highest epoch wins.
                        adm.failed = true;
                        if (!adm.errs.empty())
                            adm.errs += "; ";
                        adm.errs +=
                            m + " is on higher epoch " +
                            std::to_string(
                                reply.resp.get("epoch").asU64(0));
                        const std::uint64_t he =
                            reply.resp.get("epoch").asU64(0);
                        const JsonValue &hm =
                            reply.resp.get("members");
                        if (he > adm.higherEpoch && hm.isArray()) {
                            std::vector<std::string> hms;
                            bool parsed = true;
                            for (const JsonValue &hv :
                                 hm.items()) {
                                Endpoint hep;
                                std::string herr;
                                if (!parseEndpoint(hv.asString(), hep,
                                                   herr)) {
                                    parsed = false;
                                    break;
                                }
                                hms.push_back(hep.str());
                            }
                            std::vector<std::string> s2 = hms;
                            std::sort(s2.begin(), s2.end());
                            if (parsed && !hms.empty() &&
                                std::adjacent_find(s2.begin(),
                                                   s2.end()) ==
                                    s2.end()) {
                                adm.higherEpoch = he;
                                adm.higherMembers = std::move(hms);
                            }
                        }
                    } else if (leaver) {
                        warn("dcgserved: leaving node ", m,
                             " rejected the epoch (", code,
                             "); removed anyway");
                    } else {
                        adm.failed = true;
                        if (!adm.errs.empty())
                            adm.errs += "; ";
                        adm.errs +=
                            m + " rejected the epoch (" + code + ")";
                    }
                }
                maybeFinishAdmin();
            });
    }
}

void
Server::maybeFinishAdmin()
{
    if (!adm.active || adm.pendingAcks > 0 || !adm.localDone)
        return;
    JsonValue resp;
    if (adm.failed) {
        resp = errorResponse(adm.verb + "_failed", adm.errs);
    } else {
        resp = okResponse();
        resp.set("members", memberListJson(curEp.members));
        resp.set("rebalance_arcs_moved",
                 JsonValue::integer(rebalArcsMoved));
        resp.set("rebalance_bytes", JsonValue::integer(rebalBytes));
    }
    resp.set("epoch", JsonValue::integer(curEp.epoch));
    respondParked(adm.resp, std::move(resp));
    // Clear the change before any follow-up install: a peer that
    // reported a higher epoch wins, and installing it re-enters the
    // rebalance machinery.
    const std::uint64_t he = adm.higherEpoch;
    std::vector<std::string> hm = std::move(adm.higherMembers);
    adm = AdminChange{};
    if (he > curEp.epoch && !hm.empty())
        installEpoch(he, hm, epochReps);
}

JsonValue
Server::handleRing() const
{
    JsonValue resp = okResponse();
    resp.set("epoch", JsonValue::integer(curEp.epoch));
    resp.set("members", memberListJson(curEp.members));
    resp.set("self", JsonValue::string(selfAddr));
    resp.set("replicas",
             JsonValue::integer(std::uint64_t{replFactor}));
    resp.set("rebalance_arcs_moved",
             JsonValue::integer(rebalArcsMoved));
    resp.set("rebalance_bytes", JsonValue::integer(rebalBytes));
    resp.set("rebalance_pending",
             JsonValue::integer(std::uint64_t{rebal.queue.size() +
                                              rebal.inflight}));
    resp.set("handoff_fetches",
             JsonValue::integer(repl ? repl->handoffFetches()
                                     : std::uint64_t{0}));
    resp.set("change_in_progress", JsonValue::boolean(adm.active));
    return resp;
}

JsonValue
Server::doneResponse(std::uint64_t id, const JobRec &rec) const
{
    JsonValue resp = okResponse();
    resp.set("id", JsonValue::integer(id));
    resp.set("status", JsonValue::string("done"));
    resp.set("result", resultsToJson({rec.result}));
    return resp;
}

JsonValue
Server::failedResponse(std::uint64_t id, const JobRec &rec) const
{
    JsonValue resp = errorResponse("forward_failed", rec.error);
    resp.set("id", JsonValue::integer(id));
    resp.set("status", JsonValue::string("failed"));
    return resp;
}

void
Server::drainEvents()
{
    std::deque<Event> batch;
    {
        std::lock_guard<std::mutex> lk(evMutex);
        batch.swap(events);
    }
    for (Event &ev : batch) {
        auto it = jobs.find(ev.id);
        if (it == jobs.end())
            continue;
        JobRec &rec = it->second;
        if (ev.kind == Event::Kind::Started) {
            if (rec.state == JobState::Queued)
                rec.state = JobState::Running;
            continue;
        }
        finishJob(ev.id, rec, ev);
    }
}

void
Server::finishJob(std::uint64_t id, JobRec &rec, Event &ev)
{
    failoverCount += ev.failovers;
    if (ev.failed) {
        rec.state = JobState::Failed;
        rec.error = std::move(ev.error);
        ++forwardFailures;
        warn("dcgserved: job ", id, ": ", rec.error);
    } else {
        rec.state = JobState::Done;
        rec.result = std::move(ev.result);
        if (ev.remote)
            ++jobsForwarded;
    }
    const auto us =
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - rec.enqueued)
            .count();
    latencySumUs += static_cast<std::uint64_t>(us);
    latencyMaxUs =
        std::max(latencyMaxUs, static_cast<std::uint64_t>(us));
    ++jobsCompleted;

    if (rec.waiters.empty())
        return;
    for (const Waiter &w : rec.waiters) {
        auto cit = conns.find(w.connId);
        if (cit == conns.end() || cit->second.fd < 0)
            continue;
        JsonValue resp = rec.state == JobState::Failed
                             ? failedResponse(id, rec)
                             : doneResponse(id, rec);
        stampVersion(resp, w.version);
        if (w.hasRid)
            resp.set("rid", w.rid);
        cit->second.out += resp.dump();
        cit->second.out += '\n';
    }
    rec.waiters.clear();
}

JsonValue
Server::statsJson() const
{
    std::size_t depth;
    {
        std::lock_guard<std::mutex> lk(qMutex);
        depth = pending.size();
    }
    JsonValue s = JsonValue::object();
    s.set("workers", JsonValue::integer(std::uint64_t{workerCount}));
    s.set("busy_workers",
          JsonValue::integer(std::uint64_t{
              busyWorkers.load(std::memory_order_acquire)}));
    s.set("queue_depth", JsonValue::integer(std::uint64_t{depth}));
    s.set("queue_capacity",
          JsonValue::integer(std::uint64_t{cfg.queueCapacity}));
    s.set("connections",
          JsonValue::integer(std::uint64_t{conns.size()}));
    s.set("jobs_submitted", JsonValue::integer(jobsSubmitted));
    s.set("jobs_completed", JsonValue::integer(jobsCompleted));
    s.set("jobs_forwarded", JsonValue::integer(jobsForwarded));
    s.set("forward_failures", JsonValue::integer(forwardFailures));
    s.set("not_owner_replies", JsonValue::integer(notOwnerReplies));
    s.set("submits_rejected", JsonValue::integer(submitsRejected));
    s.set("bad_requests", JsonValue::integer(badRequests));
    s.set("mem_hits", JsonValue::integer(eng.cacheHits()));
    s.set("mem_misses", JsonValue::integer(eng.cacheMisses()));
    s.set("disk_hits", JsonValue::integer(eng.diskHits()));
    s.set("simulations", JsonValue::integer(eng.simulations()));
    s.set("cache_entries",
          JsonValue::integer(std::uint64_t{eng.cacheSize()}));
    s.set("cache_bytes", JsonValue::integer(eng.bytes()));
    if (store) {
        s.set("store_records",
              JsonValue::integer(std::uint64_t{store->size()}));
        s.set("store_bytes", JsonValue::integer(store->bytes()));
        s.set("store_corrupt",
              JsonValue::integer(store->corruptRecords()));
        s.set("store_evicted",
              JsonValue::integer(store->evictedRecords()));
        s.set("store_compactions",
              JsonValue::integer(store->compactions()));
        s.set("replicas_stored",
              JsonValue::integer(store->replicaRecords()));
        s.set("store_dir", JsonValue::string(store->directory()));
    }
    s.set("latency_mean_us",
          JsonValue::number(jobsCompleted
                                ? static_cast<double>(latencySumUs) /
                                      static_cast<double>(jobsCompleted)
                                : 0.0));
    s.set("latency_max_us", JsonValue::integer(latencyMaxUs));
    s.set("protocol_version",
          JsonValue::integer(std::uint64_t{kProtocolVersion}));
    s.set("epoch", JsonValue::integer(curEp.epoch));
    s.set("ops", opCatalogJson());
    if (clustered) {
        s.set("cluster_self", JsonValue::string(selfAddr));
        s.set("cluster_nodes",
              JsonValue::integer(std::uint64_t{curEp.members.size()}));
        s.set("cluster_members", memberListJson(curEp.members));
        s.set("failovers", JsonValue::integer(failoverCount));
        s.set("replicate_ops", JsonValue::integer(replicateOps));
        s.set("fetches_served", JsonValue::integer(fetchesServed));
        s.set("forwards_inflight",
              JsonValue::integer(inflightForwards));
        s.set("forwards_inflight_peak",
              JsonValue::integer(peakInflightForwards));
        s.set("rebalance_arcs_moved",
              JsonValue::integer(rebalArcsMoved));
        s.set("rebalance_bytes", JsonValue::integer(rebalBytes));
        s.set("rebalance_pending",
              JsonValue::integer(std::uint64_t{rebal.queue.size() +
                                               rebal.inflight}));
        s.set("rebalance_push_failures",
              JsonValue::integer(rebalPushFailures));
    }
    if (pool) {
        s.set("peer_requests", JsonValue::integer(pool->requestsSent()));
        s.set("peer_link_deaths",
              JsonValue::integer(pool->linkDeaths()));
        s.set("peer_reconnects",
              JsonValue::integer(pool->reconnects()));
        s.set("peer_legacy_fallbacks",
              JsonValue::integer(pool->legacyFallbacks()));
    }
    if (repl) {
        s.set("replication_factor",
              JsonValue::integer(std::uint64_t{repl->factor()}));
        s.set("replicas_written", JsonValue::integer(repl->pushes()));
        s.set("replica_push_failures",
              JsonValue::integer(repl->pushFailures()));
        s.set("replica_misses",
              JsonValue::integer(repl->replicaMisses()));
        s.set("read_repairs", JsonValue::integer(repl->readRepairs()));
        s.set("handoff_fetches",
              JsonValue::integer(repl->handoffFetches()));
    }
    s.set("draining",
          JsonValue::boolean(stopFlag.load(std::memory_order_acquire)));
    return s;
}

} // namespace dcg::serve
