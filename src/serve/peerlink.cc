#include "serve/peerlink.hh"

#include <fcntl.h>
#include <netdb.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <utility>

#include "common/log.hh"
#include "serve/client.hh"
#include "serve/netio.hh"
#include "serve/protocol.hh"

namespace dcg::serve {

namespace {

using Clock = std::chrono::steady_clock;

constexpr unsigned kDefaultConnectTimeoutMs = 10000;
constexpr unsigned kBackoffStartMs = 50;
constexpr unsigned kBackoffCapMs = 2000;

/** A partial response line longer than this kills the link: no
 *  legitimate single result approaches it, a stuck peer could grow
 *  the buffer without bound. */
constexpr std::size_t kMaxResponseLineBytes = 16u << 20;

int
msUntil(Clock::time_point when, Clock::time_point now)
{
    if (when <= now)
        return 0;
    const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
        when - now);
    return static_cast<int>(
        std::min<std::int64_t>(ms.count() + 1, 3600 * 1000));
}

void
foldHint(int &hint, int candidate)
{
    if (candidate >= 0 && (hint < 0 || candidate < hint))
        hint = candidate;
}

} // namespace

PeerPool::PeerPool(std::vector<Endpoint> peers, Options options)
    : endpoints(std::move(peers)), opts(std::move(options))
{
    links.resize(endpoints.size());
    for (std::size_t i = 0; i < endpoints.size(); ++i) {
        links[i].ep = endpoints[i];
        links[i].idx = i;
    }
}

std::size_t
PeerPool::addPeer(const Endpoint &ep)
{
    for (std::size_t i = 0; i < endpoints.size(); ++i)
        if (endpoints[i] == ep)
            return i;
    endpoints.push_back(ep);
    links.emplace_back();
    links.back().ep = ep;
    links.back().idx = links.size() - 1;
    return links.size() - 1;
}

PeerPool::~PeerPool()
{
    // Qualified: this is PeerPool::shutdown, not shutdown(2).
    this->shutdown();
}

unsigned
PeerPool::connectTimeoutMs() const
{
    if (opts.connectTimeoutMs)
        return opts.connectTimeoutMs;
    if (opts.peerTimeoutMs)
        return opts.peerTimeoutMs;
    return kDefaultConnectTimeoutMs;
}

void
PeerPool::wakeOwner()
{
    if (opts.wake)
        opts.wake();
}

void
PeerPool::call(std::size_t idx, JsonValue req, PeerCompletion cb)
{
    if (idx >= links.size()) {
        cb(PeerReply{false, JsonValue::null(),
                     "peer index out of range"});
        return;
    }
    if (closed_.load(std::memory_order_acquire)) {
        cb(PeerReply{false, JsonValue::null(),
                     "peer pool is shut down"});
        return;
    }

    Link &link = links[idx];
    const std::uint64_t rid = nextRid++;
    requests_.fetch_add(1, std::memory_order_relaxed);

    if (link.legacy) {
        toLegacy(idx, rid, std::move(req), std::move(cb));
        return;
    }

    stampVersion(req, kProtocolVersion);
    req.set("rid", JsonValue::integer(rid));

    Pending p;
    p.cb = std::move(cb);
    p.req = req;
    if (opts.peerTimeoutMs) {
        p.hasDeadline = true;
        p.deadline = Clock::now() +
                     std::chrono::milliseconds(opts.peerTimeoutMs);
    }

    std::string line = req.dump();
    line += '\n';

    link.pending.emplace(rid, std::move(p));
    if (!link.v4Confirmed)
        link.fifo.push_back(rid);

    if (link.state == Link::State::Up) {
        link.out += line;
        flushOut(link);
    } else {
        link.waitq.push_back(Link::Queued{rid, std::move(line)});
        maybeConnect(link);
    }
}

void
PeerPool::connectAsync(std::size_t idx, PeerCompletion cb)
{
    if (idx >= links.size()) {
        cb(PeerReply{false, JsonValue::null(),
                     "peer index out of range"});
        return;
    }
    if (closed_.load(std::memory_order_acquire)) {
        cb(PeerReply{false, JsonValue::null(),
                     "peer pool is shut down"});
        return;
    }
    Link &link = links[idx];
    // A legacy verdict implies traffic already flowed, so the peer is
    // known reachable; a live link answers immediately too.
    if (link.state == Link::State::Up || link.legacy) {
        cb(PeerReply{true, okResponse(), ""});
        return;
    }
    link.connectWaiters.push_back(std::move(cb));
    if (link.state == Link::State::Down)
        maybeConnect(link);
}

void
PeerPool::schedule(unsigned delayMs, std::function<void()> fn)
{
    timers.push_back(
        Timer{Clock::now() + std::chrono::milliseconds(delayMs),
              std::move(fn)});
}

void
PeerPool::post(std::size_t idx, JsonValue req, PeerCompletion cb)
{
    {
        std::lock_guard<std::mutex> lock(injectMutex);
        if (!closed_.load(std::memory_order_acquire)) {
            injected.push_back(
                Injected{idx, std::move(req), std::move(cb), false});
            cb = nullptr;
        }
    }
    if (cb) {
        cb(PeerReply{false, JsonValue::null(),
                     "peer pool is shut down"});
        return;
    }
    wakeOwner();
}

namespace {

struct SyncWaiter
{
    std::mutex m;
    std::condition_variable cv;
    bool done = false;
    PeerReply reply;
};

PeerCompletion
syncCompletion(const std::shared_ptr<SyncWaiter> &w)
{
    return [w](PeerReply r) {
        std::lock_guard<std::mutex> lock(w->m);
        w->reply = std::move(r);
        w->done = true;
        w->cv.notify_all();
    };
}

} // namespace

bool
PeerPool::callSync(std::size_t idx, const JsonValue &req,
                   JsonValue &resp, std::string &err)
{
    auto w = std::make_shared<SyncWaiter>();
    post(idx, req, syncCompletion(w));
    std::unique_lock<std::mutex> lock(w->m);
    w->cv.wait(lock, [&] { return w->done; });
    if (!w->reply.transportOk) {
        err = w->reply.error;
        return false;
    }
    resp = std::move(w->reply.resp);
    return true;
}

bool
PeerPool::connectSync(std::size_t idx, std::string &err)
{
    auto w = std::make_shared<SyncWaiter>();
    {
        std::lock_guard<std::mutex> lock(injectMutex);
        if (!closed_.load(std::memory_order_acquire)) {
            injected.push_back(Injected{idx, JsonValue::null(),
                                        syncCompletion(w), true});
        } else {
            err = "peer pool is shut down";
            return false;
        }
    }
    wakeOwner();
    std::unique_lock<std::mutex> lock(w->m);
    w->cv.wait(lock, [&] { return w->done; });
    if (!w->reply.transportOk) {
        err = w->reply.error;
        return false;
    }
    return true;
}

void
PeerPool::maybeConnect(Link &link)
{
    if (link.state != Link::State::Down)
        return;
    if (link.retryArmed && Clock::now() < link.retryAt)
        return;  // runDue() fires the retry when the backoff expires
    startConnect(link);
}

void
PeerPool::startConnect(Link &link)
{
    link.retryArmed = false;

    addrinfo hints{};
    hints.ai_family = AF_INET;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo *res = nullptr;
    const std::string port = std::to_string(link.ep.port);
    const int rc = getaddrinfo(link.ep.host.c_str(), port.c_str(),
                               &hints, &res);
    if (rc != 0) {
        failConnect(link, std::string("cannot resolve: ") +
                              gai_strerror(rc));
        return;
    }

    int fd = -1;
    int lastErrno = 0;
    bool inProgress = false;
    for (addrinfo *ai = res; ai; ai = ai->ai_next) {
        fd = socket(ai->ai_family,
                    ai->ai_socktype | SOCK_NONBLOCK | SOCK_CLOEXEC,
                    ai->ai_protocol);
        if (fd < 0) {
            lastErrno = errno;
            continue;
        }
        if (net::connectRetry(fd, ai->ai_addr, ai->ai_addrlen) == 0)
            break;
        if (errno == EINPROGRESS) {
            inProgress = true;
            break;
        }
        lastErrno = errno;
        close(fd);
        fd = -1;
    }
    freeaddrinfo(res);

    if (fd < 0) {
        failConnect(link, std::string("cannot connect: ") +
                              std::strerror(lastErrno));
        return;
    }

    link.fd = fd;
    if (inProgress) {
        link.state = Link::State::Connecting;
        link.connectDeadline =
            Clock::now() + std::chrono::milliseconds(connectTimeoutMs());
    } else {
        onConnected(link);
    }
}

void
PeerPool::onConnected(Link &link)
{
    link.state = Link::State::Up;
    link.backoffMs = 0;
    link.retryArmed = false;
    if (link.everConnected)
        reconnects_.fetch_add(1, std::memory_order_relaxed);
    link.everConnected = true;

    while (!link.waitq.empty()) {
        link.out += link.waitq.front().line;
        link.waitq.pop_front();
    }

    std::vector<PeerCompletion> waiters;
    waiters.swap(link.connectWaiters);
    for (PeerCompletion &cb : waiters)
        cb(PeerReply{true, okResponse(), ""});

    flushOut(link);
}

void
PeerPool::armBackoff(Link &link)
{
    link.backoffMs = link.backoffMs
                         ? std::min(link.backoffMs * 2, kBackoffCapMs)
                         : kBackoffStartMs;
    link.retryArmed = true;
    link.retryAt = Clock::now() +
                   std::chrono::milliseconds(link.backoffMs);
}

void
PeerPool::failAllPending(Link &link, const std::string &err)
{
    std::vector<PeerCompletion> cbs;
    cbs.reserve(link.pending.size());
    for (auto &[rid, p] : link.pending)
        cbs.push_back(std::move(p.cb));
    link.pending.clear();
    link.fifo.clear();
    link.waitq.clear();
    for (PeerCompletion &cb : cbs)
        cb(PeerReply{false, JsonValue::null(), err});
}

void
PeerPool::failConnect(Link &link, const std::string &why)
{
    if (link.fd >= 0) {
        close(link.fd);
        link.fd = -1;
    }
    link.state = Link::State::Down;
    armBackoff(link);

    const std::string err = link.ep.str() + ": " + why;
    std::vector<PeerCompletion> waiters;
    waiters.swap(link.connectWaiters);
    failAllPending(link, err);
    for (PeerCompletion &cb : waiters)
        cb(PeerReply{false, JsonValue::null(), err});
}

void
PeerPool::linkDeath(Link &link, const std::string &why)
{
    linkDeaths_.fetch_add(1, std::memory_order_relaxed);
    if (link.fd >= 0) {
        close(link.fd);
        link.fd = -1;
    }
    link.state = Link::State::Down;
    link.in.clear();
    link.out.clear();
    link.v4Confirmed = false;
    armBackoff(link);
    failAllPending(link,
                   "link to " + link.ep.str() + " died: " + why);
}

void
PeerPool::flushOut(Link &link)
{
    while (!link.out.empty()) {
        const ssize_t w = net::sendRetry(link.fd, link.out.data(),
                                         link.out.size(), MSG_NOSIGNAL);
        if (w > 0) {
            link.out.erase(0, static_cast<std::size_t>(w));
            continue;
        }
        if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
            return;
        linkDeath(link, w == 0 ? "zero-length send"
                               : std::strerror(errno));
        return;
    }
}

void
PeerPool::readLink(Link &link)
{
    char buf[65536];
    for (;;) {
        const ssize_t n = net::recvRetry(link.fd, buf, sizeof(buf), 0);
        if (n > 0) {
            link.in.append(buf, static_cast<std::size_t>(n));
            // Peel complete lines; handleResponse() may run callbacks
            // that touch this link again, so keep `in` consistent
            // before each dispatch.
            for (;;) {
                const std::size_t nl = link.in.find('\n');
                if (nl == std::string::npos)
                    break;
                std::string line = link.in.substr(0, nl);
                link.in.erase(0, nl + 1);
                handleResponse(link, line);
                if (link.fd < 0)
                    return;  // a callback or downgrade closed us
            }
            if (link.in.size() > kMaxResponseLineBytes) {
                linkDeath(link, "oversized response line");
                return;
            }
            continue;
        }
        if (n == 0) {
            linkDeath(link, "peer closed the connection");
            return;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            return;
        linkDeath(link, std::strerror(errno));
        return;
    }
}

void
PeerPool::handleResponse(Link &link, const std::string &line)
{
    JsonValue resp;
    std::string err;
    if (!JsonValue::parse(line, resp, err) || !resp.isObject()) {
        linkDeath(link, "malformed response: " + err);
        return;
    }

    if (resp.has("rid")) {
        // The peer echoes rids: v4 confirmed, the FIFO fallback is
        // dead weight from here on.
        link.v4Confirmed = true;
        link.fifo.clear();

        const std::uint64_t rid = resp.get("rid").asU64(0);
        auto it = link.pending.find(rid);
        if (it == link.pending.end())
            return;  // deadline already failed it; drop the straggler
        PeerCompletion cb = std::move(it->second.cb);
        link.pending.erase(it);
        cb(PeerReply{true, std::move(resp), ""});
        return;
    }

    if (resp.get("error").asString() == "unsupported_version" &&
        resp.get("supported").asU64(kProtocolVersion) <
            kProtocolVersion) {
        downgradeToLegacy(link);
        return;
    }

    // A rid-less, non-rejection response: an in-order peer from
    // before rid echo existed. Match the oldest in-flight request.
    while (!link.fifo.empty()) {
        const std::uint64_t rid = link.fifo.front();
        link.fifo.pop_front();
        auto it = link.pending.find(rid);
        if (it == link.pending.end())
            continue;  // expired; its response slot is unknowable now
        PeerCompletion cb = std::move(it->second.cb);
        link.pending.erase(it);
        cb(PeerReply{true, std::move(resp), ""});
        return;
    }
    // Nothing to match: drop it (the requests it answered timed out).
}

void
PeerPool::downgradeToLegacy(Link &link)
{
    legacyFallbacks_.fetch_add(1, std::memory_order_relaxed);
    link.legacy = true;

    const std::size_t idx = link.idx;

    // The peer rejected (never executed) every pipelined frame, so
    // replaying them one-shot is safe. Queued-but-unsent frames ride
    // along too.
    std::vector<std::pair<std::uint64_t, Pending>> moved;
    moved.reserve(link.pending.size());
    for (auto &[rid, p] : link.pending)
        moved.emplace_back(rid, std::move(p));
    link.pending.clear();
    link.fifo.clear();
    link.waitq.clear();
    if (link.fd >= 0) {
        close(link.fd);
        link.fd = -1;
    }
    link.state = Link::State::Down;
    link.in.clear();
    link.out.clear();

    for (auto &[rid, p] : moved)
        toLegacy(idx, rid, std::move(p.req), std::move(p.cb));
}

void
PeerPool::toLegacy(std::size_t idx, std::uint64_t rid, JsonValue req,
                   PeerCompletion cb)
{
    legacyPending.emplace(rid, std::move(cb));
    {
        std::lock_guard<std::mutex> lock(legacyMutex);
        legacyQueue.push_back(
            LegacyTask{endpoints[idx], rid, std::move(req)});
        if (!legacyThread.joinable())
            legacyThread = std::thread([this] { legacyLoop(); });
    }
    legacyCv.notify_one();
}

void
PeerPool::legacyLoop()
{
    for (;;) {
        LegacyTask task;
        {
            std::unique_lock<std::mutex> lock(legacyMutex);
            legacyCv.wait(lock, [&] {
                return legacyStop || !legacyQueue.empty();
            });
            if (legacyQueue.empty())
                return;  // stop requested, queue drained
            task = std::move(legacyQueue.front());
            legacyQueue.pop_front();
        }
        PeerReply reply = runLegacy(task);
        {
            std::lock_guard<std::mutex> lock(legacyDoneMutex);
            legacyDone.emplace_back(task.rid, std::move(reply));
        }
        wakeOwner();
    }
}

PeerReply
PeerPool::runLegacy(const LegacyTask &task)
{
    // Rebuild the request for the one-shot wire: no rid (the peer
    // would choke or, worse, echo it), version pinned to the last
    // one-shot protocol, and "wait" peeled off submits so the old
    // submit + result-wait pair can be replayed explicitly.
    JsonValue req = JsonValue::object();
    bool wantWait = false;
    const bool isSubmit = task.req.get("op").asString() == "submit";
    for (const auto &[key, value] : task.req.members()) {
        if (key == "rid" || key == "version")
            continue;
        if (key == "wait" && isSubmit) {
            wantWait = value.asBool(false);
            continue;
        }
        req.set(key, value);
    }
    stampVersion(req, kLastOneShotVersion);

    PeerReply reply;
    Connection conn;
    std::string err;
    if (!conn.open(task.ep, err, opts.peerTimeoutMs)) {
        reply.error = err;
        return reply;
    }
    JsonValue resp;
    if (!conn.roundTrip(req, resp, err)) {
        reply.error = err;
        return reply;
    }
    if (isSubmit && wantWait && resp.get("ok").asBool(false)) {
        // Stage two of the decomposed submit+wait. A non-ok submit
        // response (busy, draining, not_owner) went back to the
        // caller above — its retry/failover logic reposts.
        const JsonValue &ids = resp.get("ids");
        const std::uint64_t id = resp.has("id")
                                     ? resp.get("id").asU64(0)
                                     : ids.items().empty()
                                           ? 0
                                           : ids.items().front().asU64(0);
        JsonValue wait = JsonValue::object();
        wait.set("op", JsonValue::string("result"));
        wait.set("id", JsonValue::integer(id));
        wait.set("wait", JsonValue::boolean(true));
        stampVersion(wait, kLastOneShotVersion);
        JsonValue result;
        if (!conn.roundTrip(wait, result, err)) {
            reply.error = err;
            return reply;
        }
        resp = std::move(result);
    }
    reply.transportOk = true;
    reply.resp = std::move(resp);
    return reply;
}

void
PeerPool::deliverLegacyDone()
{
    std::vector<std::pair<std::uint64_t, PeerReply>> done;
    {
        std::lock_guard<std::mutex> lock(legacyDoneMutex);
        done.swap(legacyDone);
    }
    for (auto &[rid, reply] : done) {
        auto it = legacyPending.find(rid);
        if (it == legacyPending.end())
            continue;
        PeerCompletion cb = std::move(it->second);
        legacyPending.erase(it);
        cb(std::move(reply));
    }
}

void
PeerPool::appendPollFds(std::vector<pollfd> &fds) const
{
    for (const Link &link : links) {
        if (link.fd < 0)
            continue;
        pollfd p{};
        p.fd = link.fd;
        p.events = POLLIN;
        if (link.state == Link::State::Connecting || !link.out.empty())
            p.events |= POLLOUT;
        fds.push_back(p);
    }
}

void
PeerPool::dispatch(const pollfd *fds, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i) {
        const pollfd &p = fds[i];
        if (p.revents == 0)
            continue;
        Link *link = nullptr;
        for (Link &l : links) {
            if (l.fd == p.fd) {
                link = &l;
                break;
            }
        }
        if (!link)
            continue;

        if (link->state == Link::State::Connecting) {
            int soerr = 0;
            socklen_t len = sizeof(soerr);
            if (getsockopt(link->fd, SOL_SOCKET, SO_ERROR, &soerr,
                           &len) != 0)
                soerr = errno;
            if (soerr == 0)
                onConnected(*link);
            else
                failConnect(*link, std::string("cannot connect: ") +
                                       std::strerror(soerr));
            continue;
        }

        if (p.revents & POLLIN)
            readLink(*link);
        if (link->fd >= 0 && (p.revents & POLLOUT))
            flushOut(*link);
        if (link->fd >= 0 && (p.revents & (POLLERR | POLLNVAL)))
            linkDeath(*link, "socket error");
    }
}

void
PeerPool::runDue()
{
    // Injected work first: a post() may create the very pending
    // entries whose deadlines the sweep below tracks.
    std::vector<Injected> batch;
    {
        std::lock_guard<std::mutex> lock(injectMutex);
        batch.swap(injected);
    }
    for (Injected &inj : batch) {
        if (inj.connectProbe)
            connectAsync(inj.idx, std::move(inj.cb));
        else
            call(inj.idx, std::move(inj.req), std::move(inj.cb));
    }

    deliverLegacyDone();

    const auto now = Clock::now();

    if (!timers.empty()) {
        std::vector<std::function<void()>> due;
        for (std::size_t i = 0; i < timers.size();) {
            if (timers[i].when <= now) {
                due.push_back(std::move(timers[i].fn));
                timers[i] = std::move(timers.back());
                timers.pop_back();
            } else {
                ++i;
            }
        }
        for (auto &fn : due)
            fn();
    }

    // Index-based: the failure callbacks below may addPeer(), growing
    // the table mid-sweep (new links are idle, so visiting or missing
    // them this pass is equally correct).
    for (std::size_t li = 0; li < links.size(); ++li) {
        Link &link = links[li];
        if (link.state == Link::State::Connecting &&
            now >= link.connectDeadline) {
            failConnect(link, "connect timed out");
            continue;
        }
        if (link.state == Link::State::Down && link.retryArmed &&
            now >= link.retryAt &&
            (!link.waitq.empty() || !link.connectWaiters.empty())) {
            startConnect(link);
            continue;
        }
        if (link.pending.empty())
            continue;
        std::vector<PeerCompletion> expired;
        for (auto it = link.pending.begin();
             it != link.pending.end();) {
            if (it->second.hasDeadline && now >= it->second.deadline) {
                expired.push_back(std::move(it->second.cb));
                it = link.pending.erase(it);
            } else {
                ++it;
            }
        }
        if (expired.empty())
            continue;
        const std::string err =
            "request to " + link.ep.str() + " timed out after " +
            std::to_string(opts.peerTimeoutMs) + "ms";
        for (PeerCompletion &cb : expired)
            cb(PeerReply{false, JsonValue::null(), err});
    }
}

int
PeerPool::timeoutHintMs() const
{
    const auto now = Clock::now();
    int hint = -1;
    for (const Timer &t : timers)
        foldHint(hint, msUntil(t.when, now));
    for (const Link &link : links) {
        if (link.state == Link::State::Connecting)
            foldHint(hint, msUntil(link.connectDeadline, now));
        if (link.state == Link::State::Down && link.retryArmed &&
            (!link.waitq.empty() || !link.connectWaiters.empty()))
            foldHint(hint, msUntil(link.retryAt, now));
        for (const auto &[rid, p] : link.pending)
            if (p.hasDeadline)
                foldHint(hint, msUntil(p.deadline, now));
    }
    return hint;
}

bool
PeerPool::idle() const
{
    for (const Link &link : links) {
        if (!link.pending.empty() || !link.waitq.empty() ||
            !link.connectWaiters.empty())
            return false;
    }
    if (!timers.empty() || !legacyPending.empty())
        return false;
    {
        std::lock_guard<std::mutex> lock(injectMutex);
        if (!injected.empty())
            return false;
    }
    {
        std::lock_guard<std::mutex> lock(legacyDoneMutex);
        if (!legacyDone.empty())
            return false;
    }
    return true;
}

void
PeerPool::shutdown()
{
    if (shutdownDone)
        return;
    shutdownDone = true;
    closed_.store(true, std::memory_order_release);
    running_.store(false, std::memory_order_release);

    // Stop the legacy executor: it drains its queue (each task still
    // completes or fails on its own merits), then exits.
    {
        std::lock_guard<std::mutex> lock(legacyMutex);
        legacyStop = true;
    }
    legacyCv.notify_all();
    if (legacyThread.joinable())
        legacyThread.join();
    deliverLegacyDone();
    {
        std::vector<PeerCompletion> orphans;
        for (auto &[rid, cb] : legacyPending)
            orphans.push_back(std::move(cb));
        legacyPending.clear();
        for (PeerCompletion &cb : orphans)
            cb(PeerReply{false, JsonValue::null(),
                         "peer pool is shut down"});
    }

    timers.clear();
    for (std::size_t li = 0; li < links.size(); ++li) {
        Link &link = links[li];
        std::vector<PeerCompletion> waiters;
        waiters.swap(link.connectWaiters);
        failAllPending(link, "peer pool is shut down");
        for (PeerCompletion &cb : waiters)
            cb(PeerReply{false, JsonValue::null(),
                         "peer pool is shut down"});
        if (link.fd >= 0) {
            close(link.fd);
            link.fd = -1;
        }
        link.state = Link::State::Down;
        link.in.clear();
        link.out.clear();
    }

    std::vector<Injected> orphaned;
    {
        std::lock_guard<std::mutex> lock(injectMutex);
        orphaned.swap(injected);
    }
    for (Injected &inj : orphaned)
        inj.cb(PeerReply{false, JsonValue::null(),
                         "peer pool is shut down"});
}

LinkLoop::LinkLoop(std::vector<Endpoint> peers, unsigned peerTimeoutMs)
{
    if (pipe(wakePipe) != 0)
        fatal("LinkLoop: cannot create wake pipe: ",
              std::strerror(errno));
    for (int fd : wakePipe)
        fcntl(fd, F_SETFL, O_NONBLOCK);

    PeerPool::Options opts;
    opts.peerTimeoutMs = peerTimeoutMs;
    const int wfd = wakePipe[1];
    opts.wake = [wfd] {
        const char b = 1;
        (void)net::writeRetry(wfd, &b, 1);
    };
    pool_ = std::make_unique<PeerPool>(std::move(peers),
                                       std::move(opts));
}

LinkLoop::~LinkLoop()
{
    stop();
    for (int &fd : wakePipe) {
        if (fd >= 0) {
            close(fd);
            fd = -1;
        }
    }
}

void
LinkLoop::start()
{
    if (thread.joinable())
        return;
    pool_->markRunning();
    // Ownership handoff: the spawned thread IS the pool's owner.
    thread = std::thread([this] { loop(); });  // dcglint:allow(thread-ownership)
}

void
LinkLoop::stop()
{
    if (!thread.joinable()) {
        // Never started: the caller still owns the pool.
        pool_->shutdown();  // dcglint:allow(thread-ownership)
        return;
    }
    stopFlag.store(true, std::memory_order_release);
    const char b = 1;
    (void)net::writeRetry(wakePipe[1], &b, 1);
    thread.join();
    // Owner thread joined: ownership reverts to the stopping thread.
    pool_->shutdown();
}

void
LinkLoop::loop()
{
    std::vector<pollfd> fds;
    while (!stopFlag.load(std::memory_order_acquire)) {
        fds.clear();
        pollfd wp{};
        wp.fd = wakePipe[0];
        wp.events = POLLIN;
        fds.push_back(wp);
        pool_->appendPollFds(fds);

        const int timeout = pool_->timeoutHintMs();
        const int pr = net::pollRetry(fds.data(), fds.size(), timeout);
        if (pr < 0)
            fatal("LinkLoop: poll failed: ", std::strerror(errno));

        if (fds[0].revents & POLLIN) {
            char buf[256];
            while (net::readRetry(wakePipe[0], buf, sizeof(buf)) > 0) {
            }
        }
        pool_->dispatch(fds.data() + 1, fds.size() - 1);
        pool_->runDue();
    }
}

DirectPeerTransport::DirectPeerTransport(std::vector<Endpoint> peers,
                                         unsigned timeoutMs)
    : endpoints(std::move(peers)), timeoutMs(timeoutMs)
{
}

bool
DirectPeerTransport::call(std::size_t idx, const JsonValue &req,
                          JsonValue &resp, std::string &err)
{
    Endpoint ep;
    {
        std::lock_guard<std::mutex> lock(epMutex);
        if (idx >= endpoints.size()) {
            err = "peer index out of range";
            return false;
        }
        ep = endpoints[idx];
    }
    Connection conn;
    if (!conn.open(ep, err, timeoutMs))
        return false;
    return conn.roundTrip(req, resp, err);
}

void
DirectPeerTransport::addPeer(const Endpoint &ep)
{
    std::lock_guard<std::mutex> lock(epMutex);
    for (const Endpoint &existing : endpoints)
        if (existing == ep)
            return;
    endpoints.push_back(ep);
}

PoolPeerTransport::PoolPeerTransport(PeerPool *pool,
                                     std::vector<Endpoint> peers,
                                     unsigned timeoutMs)
    : pool(pool), direct(std::move(peers), timeoutMs)
{
}

void
PoolPeerTransport::addPeer(const Endpoint &ep)
{
    direct.addPeer(ep);
}

bool
PoolPeerTransport::call(std::size_t idx, const JsonValue &req,
                        JsonValue &resp, std::string &err)
{
    if (pool && pool->isRunning()) {
        if (pool->callSync(idx, req, resp, err))
            return true;
        // A pool-side failure during shutdown still has the one-shot
        // path available (drain-time replica flushes land this way).
        if (pool->isRunning())
            return false;
    }
    return direct.call(idx, req, resp, err);
}

} // namespace dcg::serve
