#include "serve/endpoint.hh"

#include <algorithm>

#include "common/options.hh"

namespace dcg::serve {

bool
parseEndpoint(const std::string &text, Endpoint &out, std::string &err)
{
    const std::size_t colon = text.rfind(':');
    if (colon == std::string::npos) {
        err = "'" + text + "': expected HOST:PORT";
        return false;
    }
    const std::string host = text.substr(0, colon);
    const std::string port = text.substr(colon + 1);
    if (host.empty()) {
        err = "'" + text + "': empty host";
        return false;
    }
    std::int64_t p = 0;
    if (port.empty() || !Options::parseInt(port, p)) {
        err = "'" + text + "': port is not a number";
        return false;
    }
    if (p < 1 || p > 65535) {
        err = "'" + text + "': port out of range 1..65535";
        return false;
    }
    out.host = host;
    out.port = static_cast<std::uint16_t>(p);
    return true;
}

bool
parseEndpoints(const std::string &list, std::vector<Endpoint> &out,
               std::string &err)
{
    if (list.empty()) {
        err = "empty server list";
        return false;
    }
    std::vector<Endpoint> eps;
    std::size_t start = 0;
    while (start <= list.size()) {
        const std::size_t comma = list.find(',', start);
        const std::size_t end =
            comma == std::string::npos ? list.size() : comma;
        const std::string item = list.substr(start, end - start);
        if (item.empty()) {
            err = "empty element in server list '" + list +
                  "' (stray comma?)";
            return false;
        }
        Endpoint ep;
        std::string eerr;
        if (!parseEndpoint(item, ep, eerr)) {
            // Name the position as well as the element: in a long
            // --peers list "port is not a number" alone sends the
            // user hunting.
            err = "element " + std::to_string(eps.size() + 1) +
                  " of '" + list + "': " + eerr;
            return false;
        }
        if (std::find(eps.begin(), eps.end(), ep) != eps.end()) {
            err = "duplicate endpoint '" + ep.str() + "' in list '" +
                  list + "'";
            return false;
        }
        eps.push_back(std::move(ep));
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
    out = std::move(eps);
    return true;
}

std::vector<std::string>
endpointStrings(const std::vector<Endpoint> &endpoints)
{
    std::vector<std::string> names;
    names.reserve(endpoints.size());
    for (const Endpoint &ep : endpoints)
        names.push_back(ep.str());
    return names;
}

} // namespace dcg::serve
