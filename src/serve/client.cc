#include "serve/client.hh"

#include <netdb.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "common/log.hh"
#include "exp/job.hh"

namespace dcg::serve {

namespace {

/** Give up on a persistently "busy" server after this many retries. */
constexpr unsigned kMaxBusyRetries = 600;

/** Route key for a validated spec: the engine's content address. */
std::string
specRouteKey(const JobSpec &spec)
{
    return exp::jobKey(spec.toJob());
}

void
sleepRetryHint(const JsonValue &resp)
{
    const auto delay_ms = resp.get("retry_after_ms").asU64(250);
    std::this_thread::sleep_for(
        std::chrono::milliseconds(delay_ms ? delay_ms : 250));
}

} // namespace

// ---------------------------------------------------------------- //
// Connection                                                       //
// ---------------------------------------------------------------- //

Connection::~Connection()
{
    shut();
}

void
Connection::shut()
{
    if (fd >= 0) {
        close(fd);
        fd = -1;
    }
    inBuf.clear();
}

bool
Connection::open(const Endpoint &ep, std::string &err)
{
    shut();
    peer = ep.str();

    addrinfo hints{};
    hints.ai_family = AF_INET;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo *res = nullptr;
    const std::string port = std::to_string(ep.port);
    const int rc = getaddrinfo(ep.host.c_str(), port.c_str(), &hints,
                               &res);
    if (rc != 0) {
        err = "cannot resolve '" + peer + "': " + gai_strerror(rc);
        return false;
    }

    int last_errno = 0;
    for (addrinfo *ai = res; ai; ai = ai->ai_next) {
        fd = socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
        if (fd < 0) {
            last_errno = errno;
            continue;
        }
        if (connect(fd, ai->ai_addr, ai->ai_addrlen) == 0)
            break;
        last_errno = errno;
        close(fd);
        fd = -1;
    }
    freeaddrinfo(res);
    if (fd < 0) {
        err = "cannot connect to " + peer + ": " +
              std::strerror(last_errno);
        return false;
    }
    return true;
}

bool
Connection::sendAll(const std::string &line, std::string &err)
{
    std::size_t off = 0;
    while (off < line.size()) {
        const ssize_t n = send(fd, line.data() + off,
                               line.size() - off, MSG_NOSIGNAL);
        if (n > 0) {
            off += static_cast<std::size_t>(n);
            continue;
        }
        if (n < 0 && errno == EINTR)
            continue;
        err = "cannot send request to " + peer + ": " +
              std::strerror(errno);
        return false;
    }
    return true;
}

bool
Connection::recvLine(std::string &line, std::string &err)
{
    while (true) {
        const std::size_t nl = inBuf.find('\n');
        if (nl != std::string::npos) {
            line = inBuf.substr(0, nl);
            inBuf.erase(0, nl + 1);
            return true;
        }
        char buf[4096];
        const ssize_t n = recv(fd, buf, sizeof(buf), 0);
        if (n > 0) {
            inBuf.append(buf, static_cast<std::size_t>(n));
            continue;
        }
        if (n < 0 && errno == EINTR)
            continue;
        err = "connection to " + peer +
              (n == 0 ? " closed" : " failed") +
              " while awaiting a response";
        return false;
    }
}

bool
Connection::roundTrip(const JsonValue &req, JsonValue &resp,
                      std::string &err)
{
    if (fd < 0) {
        err = "connection to " + peer + " is not open";
        return false;
    }
    std::string line = req.dump();
    line += '\n';
    if (!sendAll(line, err)) {
        shut();
        return false;
    }
    std::string reply;
    if (!recvLine(reply, err)) {
        shut();
        return false;
    }
    if (!JsonValue::parse(reply, resp, err) || !resp.isObject()) {
        err = "malformed response from " + peer + ": " + err;
        shut();
        return false;
    }
    return true;
}

// ---------------------------------------------------------------- //
// Server-side forwarding                                           //
// ---------------------------------------------------------------- //

bool
forwardJobToPeer(const Endpoint &peer, const JobSpec &spec,
                 RunResult &out, std::string &err)
{
    Connection conn;
    if (!conn.open(peer, err))
        return false;

    JsonValue submit = JsonValue::object();
    submit.set("op", JsonValue::string("submit"));
    submit.set("job", spec.toJson());
    submit.set("forwarded", JsonValue::boolean(true));
    stampVersion(submit, kProtocolVersion);

    std::uint64_t id = 0;
    for (unsigned attempt = 0;; ++attempt) {
        JsonValue resp;
        if (!conn.roundTrip(submit, resp, err))
            return false;
        if (resp.get("ok").asBool(false)) {
            id = resp.get("id").asU64(0);
            break;
        }
        const std::string code = resp.get("error").asString();
        if (code != "busy") {
            err = "peer " + peer.str() + " rejected forwarded job (" +
                  code + "): " + resp.get("detail").asString();
            return false;
        }
        if (attempt + 1 >= kMaxBusyRetries) {
            err = "peer " + peer.str() + " stayed busy after " +
                  std::to_string(kMaxBusyRetries) + " retries";
            return false;
        }
        sleepRetryHint(resp);
    }

    JsonValue req = JsonValue::object();
    req.set("op", JsonValue::string("result"));
    req.set("id", JsonValue::integer(id));
    req.set("wait", JsonValue::boolean(true));
    stampVersion(req, kProtocolVersion);
    JsonValue resp;
    if (!conn.roundTrip(req, resp, err))
        return false;
    if (!resp.get("ok").asBool(false)) {
        err = "peer " + peer.str() + " failed forwarded job (" +
              resp.get("error").asString() + "): " +
              resp.get("detail").asString();
        return false;
    }
    std::vector<RunResult> one;
    if (!resultsFromJson(resp.get("result"), one, err) ||
        one.size() != 1) {
        err = "malformed forwarded result from " + peer.str() + ": " +
              err;
        return false;
    }
    out = std::move(one.front());
    return true;
}

// ---------------------------------------------------------------- //
// ClientBase                                                       //
// ---------------------------------------------------------------- //

std::uint64_t
ClientBase::submitWithRetry(const JobSpec &spec,
                            const std::string &routeKey)
{
    JsonValue req = JsonValue::object();
    req.set("op", JsonValue::string("submit"));
    req.set("job", spec.toJson());

    for (unsigned attempt = 0; attempt < kMaxBusyRetries; ++attempt) {
        const JsonValue resp = roundTrip(req, routeKey);
        if (resp.get("ok").asBool(false))
            return resp.get("id").asU64(0);
        const std::string code = resp.get("error").asString();
        if (code != "busy")
            fatal("server rejected job (", code, "): ",
                  resp.get("detail").asString());
        // Backpressure: honour the server's retry-after hint.
        sleepRetryHint(resp);
    }
    fatal("server stayed busy after ", kMaxBusyRetries, " retries");
}

std::vector<RunResult>
ClientBase::runJobs(const std::vector<JobSpec> &specs)
{
    // Content-addressed route keys pin every job — and its later
    // result fetch — to the ring node that owns it.
    std::vector<std::string> keys;
    keys.reserve(specs.size());
    for (const JobSpec &spec : specs)
        keys.push_back(specRouteKey(spec));

    std::vector<std::uint64_t> ids;
    ids.reserve(specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i)
        ids.push_back(submitWithRetry(specs[i], keys[i]));

    std::vector<RunResult> results;
    results.reserve(ids.size());
    for (std::size_t i = 0; i < ids.size(); ++i) {
        JsonValue req = JsonValue::object();
        req.set("op", JsonValue::string("result"));
        req.set("id", JsonValue::integer(ids[i]));
        req.set("wait", JsonValue::boolean(true));
        const JsonValue resp = roundTrip(req, keys[i]);
        if (!resp.get("ok").asBool(false))
            fatal("server failed job ", ids[i], " (",
                  resp.get("error").asString(), "): ",
                  resp.get("detail").asString());
        std::vector<RunResult> one;
        std::string err;
        if (!resultsFromJson(resp.get("result"), one, err) ||
            one.size() != 1)
            fatal("malformed result for job ", ids[i], ": ", err);
        results.push_back(std::move(one.front()));
    }
    return results;
}

// ---------------------------------------------------------------- //
// ClusterClient                                                    //
// ---------------------------------------------------------------- //

ClusterClient::ClusterClient(std::vector<Endpoint> endpoints)
    : eps(std::move(endpoints))
{
    if (eps.empty())
        fatal("client: empty server endpoint list");
    ring = HashRing(endpointStrings(eps));
    conns.reserve(eps.size());
    for (std::size_t i = 0; i < eps.size(); ++i)
        conns.push_back(std::make_unique<Connection>());
}

void
ClusterClient::connect()
{
    for (std::size_t i = 0; i < eps.size(); ++i) {
        std::string err;
        if (!conns[i]->isOpen() && !conns[i]->open(eps[i], err))
            fatal(err);
    }
}

JsonValue
ClusterClient::exchange(std::size_t idx, const JsonValue &req)
{
    std::string err;
    Connection &conn = *conns[idx];
    if (!conn.isOpen() && !conn.open(eps[idx], err))
        fatal(err);
    JsonValue resp;
    if (!conn.roundTrip(req, resp, err))
        fatal(err);
    if (!resp.get("ok").asBool(false)) {
        const std::string code = resp.get("error").asString();
        if (code == "unsupported_version")
            fatal("server ", eps[idx].str(),
                  " rejected the protocol version: ",
                  resp.get("detail").asString());
        if (code == "not_owner" && resp.has("redirect")) {
            // Ring disagreement safety net: follow the server's
            // redirect exactly once.
            const std::string target =
                resp.get("redirect").asString();
            for (std::size_t i = 0; i < eps.size(); ++i) {
                if (i == idx || eps[i].str() != target)
                    continue;
                Connection &rconn = *conns[i];
                if (!rconn.isOpen() && !rconn.open(eps[i], err))
                    fatal(err);
                JsonValue redirected;
                if (!rconn.roundTrip(req, redirected, err))
                    fatal(err);
                return redirected;
            }
            fatal("server ", eps[idx].str(),
                  " redirected to unknown node '", target, "'");
        }
    }
    return resp;
}

JsonValue
ClusterClient::roundTrip(const JsonValue &req,
                         const std::string &routeKey)
{
    const std::size_t idx =
        routeKey.empty() || eps.size() == 1
            ? 0
            : ring.ownerIndex(routeKey);
    JsonValue vreq = req;
    if (!vreq.has("version"))
        stampVersion(vreq, kProtocolVersion);
    return exchange(idx, vreq);
}

JsonValue
ClusterClient::stats()
{
    std::vector<JsonValue> per;
    per.reserve(eps.size());
    for (std::size_t i = 0; i < eps.size(); ++i) {
        JsonValue req = JsonValue::object();
        req.set("op", JsonValue::string("stats"));
        stampVersion(req, kProtocolVersion);
        const JsonValue resp = exchange(i, req);
        if (!resp.get("ok").asBool(false))
            fatal("stats request to ", eps[i].str(), " failed: ",
                  resp.get("error").asString());
        per.push_back(resp.get("stats"));
    }
    if (per.size() == 1)
        return per.front();

    // Aggregate: sum every numeric counter across nodes (max for the
    // latency high-water mark, drop the per-node mean), and attach
    // the untouched per-node objects under "nodes".
    JsonValue agg = JsonValue::object();
    for (const auto &[name, v] : per.front().members()) {
        if (!v.isNumber() || name == "latency_mean_us")
            continue;
        std::uint64_t acc = 0;
        for (const JsonValue &s : per) {
            const std::uint64_t x = s.get(name).asU64(0);
            acc = name == "latency_max_us" ? std::max(acc, x)
                                           : acc + x;
        }
        agg.set(name, JsonValue::integer(acc));
    }
    agg.set("nodes_total",
            JsonValue::integer(std::uint64_t{eps.size()}));
    JsonValue nodes = JsonValue::object();
    for (std::size_t i = 0; i < eps.size(); ++i)
        nodes.set(eps[i].str(), std::move(per[i]));
    agg.set("nodes", std::move(nodes));
    return agg;
}

// ---------------------------------------------------------------- //
// Client (compatibility wrapper)                                   //
// ---------------------------------------------------------------- //

namespace {

std::vector<Endpoint>
singleEndpoint(const std::string &hostPort)
{
    Endpoint ep;
    std::string err;
    if (!parseEndpoint(hostPort, ep, err))
        fatal("--server expects HOST:PORT, got ", err);
    return {ep};
}

} // namespace

Client::Client(const std::string &hostPort)
    : ClusterClient(singleEndpoint(hostPort))
{
    this->connect();
}

} // namespace dcg::serve
