#include "serve/client.hh"

#include <fcntl.h>
#include <netdb.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <functional>
#include <thread>

#include "common/log.hh"
#include "exp/job.hh"
#include "serve/netio.hh"

namespace dcg::serve {

namespace {

/** Give up on a persistently "busy" server after this many retries. */
constexpr unsigned kMaxBusyRetries = 600;

/** Jobs in flight at once during a pipelined runJobs() fan-out. */
constexpr std::size_t kPipelineWindow = 128;

/** Route key for a validated spec: the engine's content address. */
std::string
specRouteKey(const JobSpec &spec)
{
    return exp::jobKey(spec.toJob());
}

void
sleepRetryHint(const JsonValue &resp)
{
    const auto delay_ms = resp.get("retry_after_ms").asU64(250);
    std::this_thread::sleep_for(
        std::chrono::milliseconds(delay_ms ? delay_ms : 250));
}

/**
 * A response whose failure is the *node's* fault, not the request's:
 * worth retrying on another replica candidate. "draining" is a node on
 * its way out; "forward_failed" is a node that could not reach the
 * key's owner; "unknown_id" is a node that restarted and lost the job
 * table between our submit and our wait.
 */
bool
failedOverable(const std::string &code)
{
    return code == "draining" || code == "forward_failed" ||
           code == "unknown_id";
}

} // namespace

// ---------------------------------------------------------------- //
// Connection                                                       //
// ---------------------------------------------------------------- //

Connection::~Connection()
{
    shut();
}

void
Connection::shut()
{
    if (fd >= 0) {
        close(fd);
        fd = -1;
    }
    inBuf.clear();
}

bool
Connection::open(const Endpoint &ep, std::string &err,
                 unsigned timeoutMs)
{
    shut();
    peer = ep.str();

    addrinfo hints{};
    hints.ai_family = AF_INET;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo *res = nullptr;
    const std::string port = std::to_string(ep.port);
    const int rc = getaddrinfo(ep.host.c_str(), port.c_str(), &hints,
                               &res);
    if (rc != 0) {
        err = "cannot resolve '" + peer + "': " + gai_strerror(rc);
        return false;
    }

    int last_errno = 0;
    for (addrinfo *ai = res; ai; ai = ai->ai_next) {
        fd = socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
        if (fd < 0) {
            last_errno = errno;
            continue;
        }
        if (timeoutMs == 0) {
            if (net::connectRetry(fd, ai->ai_addr,
                                  ai->ai_addrlen) == 0)
                break;
            last_errno = errno;
            close(fd);
            fd = -1;
            continue;
        }

        // Bounded connect: flip to non-blocking, poll for the
        // three-way handshake, then restore blocking mode (recv/send
        // are bounded separately via SO_RCVTIMEO/SO_SNDTIMEO below).
        bool connected = false;
        const int flags = fcntl(fd, F_GETFL, 0);
        if (flags >= 0 &&
            fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0) {
            if (net::connectRetry(fd, ai->ai_addr,
                                  ai->ai_addrlen) == 0) {
                connected = true;
            } else if (errno == EINPROGRESS) {
                pollfd pfd{};
                pfd.fd = fd;
                pfd.events = POLLOUT;
                const int pr = net::pollRetry(
                    &pfd, 1, static_cast<int>(timeoutMs));
                if (pr == 1) {
                    int soerr = 0;
                    socklen_t len = sizeof(soerr);
                    if (getsockopt(fd, SOL_SOCKET, SO_ERROR, &soerr,
                                   &len) == 0 &&
                        soerr == 0)
                        connected = true;
                    else
                        last_errno = soerr ? soerr : errno;
                } else {
                    last_errno = pr == 0 ? ETIMEDOUT : errno;
                }
            } else {
                last_errno = errno;
            }
            if (connected && fcntl(fd, F_SETFL, flags) != 0) {
                last_errno = errno;
                connected = false;
            }
        } else {
            last_errno = errno;
        }
        if (connected)
            break;
        close(fd);
        fd = -1;
    }
    freeaddrinfo(res);
    if (fd < 0) {
        err = "cannot connect to " + peer + ": " +
              std::strerror(last_errno);
        return false;
    }

    if (timeoutMs) {
        timeval tv{};
        tv.tv_sec = timeoutMs / 1000;
        tv.tv_usec = static_cast<long>(timeoutMs % 1000) * 1000;
        if (setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv,
                       sizeof(tv)) != 0 ||
            setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv,
                       sizeof(tv)) != 0) {
            err = "cannot arm timeout on " + peer + ": " +
                  std::strerror(errno);
            shut();
            return false;
        }
    }
    return true;
}

bool
Connection::sendAll(const std::string &line, std::string &err)
{
    const std::size_t sent =
        net::sendAllRetry(fd, line.data(), line.size());
    if (sent == line.size())
        return true;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
        err = "timeout sending request to " + peer;
        return false;
    }
    err = "cannot send request to " + peer + ": " +
          std::strerror(errno);
    return false;
}

bool
Connection::recvLine(std::string &line, std::string &err)
{
    while (true) {
        const std::size_t nl = inBuf.find('\n');
        if (nl != std::string::npos) {
            line = inBuf.substr(0, nl);
            inBuf.erase(0, nl + 1);
            return true;
        }
        char buf[4096];
        const ssize_t n = net::recvRetry(fd, buf, sizeof(buf), 0);
        if (n > 0) {
            inBuf.append(buf, static_cast<std::size_t>(n));
            continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
            err = "timeout awaiting a response from " + peer;
            return false;
        }
        err = "connection to " + peer +
              (n == 0 ? " closed" : " failed") +
              " while awaiting a response";
        return false;
    }
}

bool
Connection::roundTrip(const JsonValue &req, JsonValue &resp,
                      std::string &err)
{
    if (fd < 0) {
        err = "connection to " + peer + " is not open";
        return false;
    }
    std::string line = req.dump();
    line += '\n';
    if (!sendAll(line, err)) {
        shut();
        return false;
    }
    std::string reply;
    if (!recvLine(reply, err)) {
        shut();
        return false;
    }
    if (!JsonValue::parse(reply, resp, err) || !resp.isObject()) {
        err = "malformed response from " + peer + ": " + err;
        shut();
        return false;
    }
    return true;
}

// ---------------------------------------------------------------- //
// ClientBase                                                       //
// ---------------------------------------------------------------- //

JsonValue
ClientBase::roundTrip(const JsonValue &req, const std::string &routeKey)
{
    for (;;) {
        JsonValue resp;
        std::string err;
        if (tryRoundTrip(req, routeKey, resp, err))
            return resp;
        if (!advanceRoute(routeKey))
            fatal(err);
    }
}

std::uint64_t
ClientBase::submitWithRetry(const JobSpec &spec,
                            const std::string &routeKey)
{
    JsonValue req = JsonValue::object();
    req.set("op", JsonValue::string("submit"));
    req.set("job", spec.toJson());

    unsigned busy = 0;
    for (;;) {
        JsonValue resp;
        std::string err;
        if (!tryRoundTrip(req, routeKey, resp, err)) {
            if (advanceRoute(routeKey))
                continue;
            fatal(err);
        }
        if (resp.get("ok").asBool(false))
            return resp.get("id").asU64(0);
        const std::string code = resp.get("error").asString();
        if (code == "busy") {
            if (++busy >= kMaxBusyRetries)
                fatal("server stayed busy after ", kMaxBusyRetries,
                      " retries");
            // Backpressure: honour the server's retry-after hint.
            sleepRetryHint(resp);
            continue;
        }
        if (failedOverable(code) && advanceRoute(routeKey))
            continue;
        fatal("server rejected job (", code, "): ",
              resp.get("detail").asString());
    }
}

std::vector<RunResult>
ClientBase::runJobs(const std::vector<JobSpec> &specs)
{
    // Content-addressed route keys pin every job — and its later
    // result fetch — to the ring node that owns it.
    std::vector<std::string> keys;
    keys.reserve(specs.size());
    for (const JobSpec &spec : specs)
        keys.push_back(specRouteKey(spec));

    std::vector<std::uint64_t> ids;
    ids.reserve(specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i)
        ids.push_back(submitWithRetry(specs[i], keys[i]));

    std::vector<RunResult> results;
    results.reserve(ids.size());
    for (std::size_t i = 0; i < ids.size(); ++i) {
        std::uint64_t id = ids[i];
        for (;;) {
            JsonValue req = JsonValue::object();
            req.set("op", JsonValue::string("result"));
            req.set("id", JsonValue::integer(id));
            req.set("wait", JsonValue::boolean(true));
            JsonValue resp;
            std::string err;
            const bool sent = tryRoundTrip(req, keys[i], resp, err);
            if (sent && resp.get("ok").asBool(false)) {
                std::vector<RunResult> one;
                if (!resultsFromJson(resp.get("result"), one, err) ||
                    one.size() != 1)
                    fatal("malformed result for job ", id, ": ", err);
                onResultServed(keys[i], resp);
                results.push_back(std::move(one.front()));
                break;
            }
            const std::string code =
                sent ? resp.get("error").asString() : "";
            if (sent && !failedOverable(code))
                fatal("server failed job ", id, " (", code, "): ",
                      resp.get("detail").asString());
            // The routed node died (or is dying) with our job: move
            // this key to its next replica candidate and resubmit —
            // job ids are per-node and mean nothing elsewhere.
            if (!advanceRoute(keys[i]))
                fatal(sent ? "server failed job " +
                                 std::to_string(id) + " (" + code +
                                 "): " + resp.get("detail").asString()
                           : err);
            id = submitWithRetry(specs[i], keys[i]);
        }
    }
    return results;
}

// ---------------------------------------------------------------- //
// ClusterClient                                                    //
// ---------------------------------------------------------------- //

ClusterClient::ClusterClient(std::vector<Endpoint> endpoints,
                             unsigned replicaCount, unsigned timeout)
    : eps(std::move(endpoints)), replicas(replicaCount),
      timeoutMs(timeout)
{
    if (eps.empty())
        fatal("client: empty server endpoint list");
    ring = HashRing(endpointStrings(eps));
}

ClusterClient::~ClusterClient()
{
    if (links)
        links->stop();
}

PeerPool &
ClusterClient::pool()
{
    if (!links)
        links = std::make_unique<LinkLoop>(eps, timeoutMs);
    if (!links->started())
        links->start();
    return links->pool();
}

void
ClusterClient::connect()
{
    PeerPool &p = pool();
    std::size_t up = 0;
    for (std::size_t i = 0; i < eps.size(); ++i) {
        std::string err;
        if (p.connectSync(i, err)) {
            ++up;
            continue;
        }
        // With failover available a down node is survivable — the
        // ring still names live candidates for every key.
        if (replicas > 1 && eps.size() > 1)
            warn("client: ", err, " (will fail over)");
        else
            fatal(err);
    }
    if (up == 0)
        fatal("client: no server endpoint is reachable");
}

std::size_t
ClusterClient::nodeForLocked(const std::string &key) const
{
    if (key.empty() || eps.size() == 1)
        return 0;
    const auto it = routePos.find(key);
    const std::size_t pos = it == routePos.end() ? 0 : it->second;
    if (pos == 0)
        return ring.ownerIndex(key);
    return ring.ownerIndices(key, eps.size())[pos];
}

std::size_t
ClusterClient::nodeFor(const std::string &key) const
{
    std::lock_guard<std::mutex> lock(routeMutex);
    return nodeForLocked(key);
}

std::size_t
ClusterClient::routePosOf(const std::string &key) const
{
    std::lock_guard<std::mutex> lock(routeMutex);
    const auto it = routePos.find(key);
    return it == routePos.end() ? 0 : it->second;
}

bool
ClusterClient::advanceRouteLocked(const std::string &routeKey)
{
    if (replicas <= 1 || routeKey.empty() || eps.size() <= 1)
        return false;
    std::size_t &pos = routePos[routeKey];
    if (pos + 1 >= eps.size())
        return false;
    ++pos;
    ++failoverCount;
    return true;
}

bool
ClusterClient::advanceRoute(const std::string &routeKey)
{
    std::lock_guard<std::mutex> lock(routeMutex);
    return advanceRouteLocked(routeKey);
}

void
ClusterClient::onResultServed(const std::string &routeKey,
                              const JsonValue &resp)
{
    if (replicas <= 1 || routeKey.empty())
        return;
    if (routePosOf(routeKey) == 0)
        return;

    // A failover candidate served a key its primary could not:
    // best-effort push the record back to the primary (client-driven
    // read-repair). The result tokens are forwarded verbatim, so the
    // repaired record is byte-identical to the one served.
    JsonValue push = JsonValue::object();
    push.set("op", JsonValue::string("replicate"));
    push.set("key", JsonValue::string(routeKey));
    push.set("result", resp.get("result"));
    JsonValue r;
    std::string err;
    if (tryExchange(ring.ownerIndex(routeKey), push, r, err) &&
        r.get("ok").asBool(false)) {
        std::lock_guard<std::mutex> lock(routeMutex);
        ++readRepairCount;
    }
}

bool
ClusterClient::tryExchange(std::size_t idx, const JsonValue &req,
                           JsonValue &resp, std::string &err)
{
    PeerPool &p = pool();
    if (!p.callSync(idx, req, resp, err))
        return false;
    if (!resp.get("ok").asBool(false)) {
        const std::string code = resp.get("error").asString();
        if (code == "unsupported_version")
            fatal("server ", eps[idx].str(),
                  " rejected the protocol version: ",
                  resp.get("detail").asString());
        if (code == "not_owner" && resp.has("redirect")) {
            // Ring disagreement safety net: follow the server's
            // redirect exactly once.
            const std::string target =
                resp.get("redirect").asString();
            for (std::size_t i = 0; i < eps.size(); ++i) {
                if (i == idx || eps[i].str() != target)
                    continue;
                return p.callSync(i, req, resp, err);
            }
            fatal("server ", eps[idx].str(),
                  " redirected to unknown node '", target, "'");
        }
    }
    return true;
}

JsonValue
ClusterClient::exchange(std::size_t idx, const JsonValue &req)
{
    JsonValue resp;
    std::string err;
    if (!tryExchange(idx, req, resp, err))
        fatal(err);
    return resp;
}

bool
ClusterClient::tryRoundTrip(const JsonValue &req,
                            const std::string &routeKey,
                            JsonValue &resp, std::string &err)
{
    // The link layer stamps the protocol version and request id.
    return tryExchange(nodeFor(routeKey), req, resp, err);
}

JsonValue
ClusterClient::admin(const std::string &verb, const JsonValue &args)
{
    JsonValue req = args.isObject() ? args : JsonValue::object();
    req.set("op", JsonValue::string(verb));
    return exchange(0, req);
}

JsonValue
ClusterClient::join(const std::string &node)
{
    JsonValue args = JsonValue::object();
    args.set("node", JsonValue::string(node));
    return admin("join", args);
}

JsonValue
ClusterClient::leave(const std::string &node)
{
    JsonValue args = JsonValue::object();
    args.set("node", JsonValue::string(node));
    return admin("leave", args);
}

JsonValue
ClusterClient::ringInfo()
{
    return admin("ring");
}

std::vector<RunResult>
ClusterClient::runJobs(const std::vector<JobSpec> &specs)
{
    const std::size_t n = specs.size();
    if (n == 0)
        return {};

    /** One pipelined job's progress, guarded by Board::m. */
    struct JobSt
    {
        std::string key;
        JsonValue resp = JsonValue::null();  ///< done response
        unsigned busy = 0;
        unsigned redirects = 0;
        bool hasOverride = false;  ///< one-shot not_owner redirect
        std::size_t overrideIdx = 0;
    };

    /** The shared scoreboard the link thread and this thread meet
     *  on. shared_ptr: completions must outlive early unwinding. */
    struct Board
    {
        std::mutex m;
        std::condition_variable cv;
        std::vector<JobSt> jobs;
        std::size_t next = 0;     ///< first job not yet launched
        std::size_t live = 0;     ///< launched, not yet settled
        std::size_t repairs = 0;  ///< read-repair pushes in flight
        bool failed = false;
        std::string failMsg;
    };

    auto bd = std::make_shared<Board>();
    bd->jobs.resize(n);
    for (std::size_t i = 0; i < n; ++i)
        bd->jobs[i].key = specRouteKey(specs[i]);

    PeerPool &p = pool();

    // The launcher and the completion handler call each other
    // (failover resubmits, busy retries, window refills), so the
    // launcher lives behind a shared function object. The self-
    // reference cycle is broken explicitly before returning.
    auto launch = std::make_shared<std::function<void(std::size_t)>>();

    *launch = [this, bd, &p, &specs, launch](std::size_t i) {
        std::size_t idx;
        {
            std::lock_guard<std::mutex> lk(bd->m);
            JobSt &job = bd->jobs[i];
            if (bd->failed) {
                // The grid is already doomed: settle without a
                // result so the caller's drain can finish.
                --bd->live;
                bd->cv.notify_all();
                return;
            }
            idx = job.hasOverride ? job.overrideIdx
                                  : nodeFor(job.key);
            job.hasOverride = false;
        }

        JsonValue req = JsonValue::object();
        req.set("op", JsonValue::string("submit"));
        req.set("job", specs[i].toJson());
        req.set("wait", JsonValue::boolean(true));

        p.post(idx, std::move(req),
               [this, bd, &p, launch, i, idx](PeerReply r) {
            std::unique_lock<std::mutex> lk(bd->m);
            JobSt &job = bd->jobs[i];

            const auto fail = [&](std::string msg) {
                if (!bd->failed) {
                    bd->failed = true;
                    bd->failMsg = std::move(msg);
                }
                --bd->live;
                bd->cv.notify_all();
            };

            if (bd->failed) {
                --bd->live;
                bd->cv.notify_all();
                return;
            }

            if (!r.transportOk) {
                if (advanceRoute(job.key)) {
                    lk.unlock();
                    (*launch)(i);
                    return;
                }
                fail("job " + std::to_string(i + 1) + ": " + r.error);
                return;
            }

            if (r.resp.get("ok").asBool(false)) {
                job.resp = std::move(r.resp);

                // Served by a failover candidate: push the record
                // back to the primary (client-driven read-repair),
                // awaited before runJobs() returns.
                bool repair = false;
                JsonValue push;
                std::size_t primary = 0;
                if (replicas > 1 && routePosOf(job.key) > 0) {
                    push = JsonValue::object();
                    push.set("op", JsonValue::string("replicate"));
                    push.set("key", JsonValue::string(job.key));
                    push.set("result", job.resp.get("result"));
                    primary = ring.ownerIndex(job.key);
                    repair = true;
                    ++bd->repairs;
                }

                --bd->live;
                bool hasNext = false;
                std::size_t next = 0;
                if (bd->next < bd->jobs.size()) {
                    next = bd->next++;
                    ++bd->live;
                    hasNext = true;
                }
                bd->cv.notify_all();
                lk.unlock();

                if (repair)
                    p.post(primary, std::move(push),
                           [this, bd](PeerReply rr) {
                        std::lock_guard<std::mutex> g(bd->m);
                        if (rr.transportOk &&
                            rr.resp.get("ok").asBool(false)) {
                            std::lock_guard<std::mutex> rl(routeMutex);
                            ++readRepairCount;
                        }
                        --bd->repairs;
                        bd->cv.notify_all();
                    });
                if (hasNext)
                    (*launch)(next);
                return;
            }

            const std::string code = r.resp.get("error").asString();
            if (code == "busy") {
                if (++job.busy >= kMaxBusyRetries) {
                    fail("server stayed busy after " +
                         std::to_string(kMaxBusyRetries) +
                         " retries");
                    return;
                }
                const auto delay =
                    r.resp.get("retry_after_ms").asU64(250);
                lk.unlock();
                // Completions run on the link thread, which owns the
                // pool — the owner-thread schedule() is safe here.
                p.schedule(
                    static_cast<unsigned>(delay ? delay : 250),
                    [launch, i] { (*launch)(i); });
                return;
            }
            if (code == "unsupported_version") {
                fail("server " + eps[idx].str() +
                     " rejected the protocol version: " +
                     r.resp.get("detail").asString());
                return;
            }
            if (code == "not_owner" && r.resp.has("redirect")) {
                // Ring disagreement safety net: follow the server's
                // redirect exactly once per job.
                const std::string target =
                    r.resp.get("redirect").asString();
                if (job.redirects++ == 0) {
                    for (std::size_t t = 0; t < eps.size(); ++t) {
                        if (t == idx || eps[t].str() != target)
                            continue;
                        job.hasOverride = true;
                        job.overrideIdx = t;
                        lk.unlock();
                        (*launch)(i);
                        return;
                    }
                }
                fail("server " + eps[idx].str() +
                     " redirected to unknown node '" + target + "'");
                return;
            }
            if (failedOverable(code) && advanceRoute(job.key)) {
                lk.unlock();
                (*launch)(i);
                return;
            }
            fail("server failed job " + std::to_string(i + 1) + " (" +
                 code + "): " + r.resp.get("detail").asString());
        });
    };

    // Prime the window, then let completions keep it full.
    const std::size_t window = std::min(n, kPipelineWindow);
    {
        std::lock_guard<std::mutex> lk(bd->m);
        bd->next = window;
        bd->live = window;
    }
    for (std::size_t i = 0; i < window; ++i)
        (*launch)(i);

    {
        std::unique_lock<std::mutex> lk(bd->m);
        bd->cv.wait(lk, [&] {
            return bd->live == 0 && bd->repairs == 0 &&
                   (bd->failed || bd->next >= n);
        });
    }
    *launch = nullptr;  // break the launcher's self-reference cycle

    if (bd->failed)
        fatal(bd->failMsg);

    std::vector<RunResult> results;
    results.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        std::vector<RunResult> one;
        std::string err;
        if (!resultsFromJson(bd->jobs[i].resp.get("result"), one,
                             err) ||
            one.size() != 1)
            fatal("malformed result for job ", i + 1, ": ", err);
        results.push_back(std::move(one.front()));
    }
    return results;
}

JsonValue
ClusterClient::stats()
{
    std::vector<JsonValue> per;
    per.reserve(eps.size());
    for (std::size_t i = 0; i < eps.size(); ++i) {
        JsonValue req = JsonValue::object();
        req.set("op", JsonValue::string("stats"));
        const JsonValue resp = exchange(i, req);
        if (!resp.get("ok").asBool(false))
            fatal("stats request to ", eps[i].str(), " failed: ",
                  resp.get("error").asString());
        per.push_back(resp.get("stats"));
    }
    if (per.size() == 1)
        return per.front();

    // Aggregate: sum every numeric counter across nodes (max for the
    // latency high-water mark, drop the per-node mean), and attach
    // the untouched per-node objects under "nodes".
    JsonValue agg = JsonValue::object();
    for (const auto &[name, v] : per.front().members()) {
        if (!v.isNumber() || name == "latency_mean_us")
            continue;
        std::uint64_t acc = 0;
        for (const JsonValue &s : per) {
            const std::uint64_t x = s.get(name).asU64(0);
            acc = name == "latency_max_us" ? std::max(acc, x)
                                           : acc + x;
        }
        agg.set(name, JsonValue::integer(acc));
    }
    agg.set("nodes_total",
            JsonValue::integer(std::uint64_t{eps.size()}));
    JsonValue nodes = JsonValue::object();
    for (std::size_t i = 0; i < eps.size(); ++i)
        nodes.set(eps[i].str(), std::move(per[i]));
    agg.set("nodes", std::move(nodes));
    return agg;
}

// ---------------------------------------------------------------- //
// Client (compatibility wrapper)                                   //
// ---------------------------------------------------------------- //

namespace {

std::vector<Endpoint>
singleEndpoint(const std::string &hostPort)
{
    Endpoint ep;
    std::string err;
    if (!parseEndpoint(hostPort, ep, err))
        fatal("--server expects HOST:PORT, got ", err);
    return {ep};
}

} // namespace

Client::Client(const std::string &hostPort)
    : ClusterClient(singleEndpoint(hostPort))
{
    this->connect();
}

} // namespace dcg::serve
