#include "serve/client.hh"

#include <netdb.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "common/log.hh"

namespace dcg::serve {

namespace {

/** Give up on a persistently "busy" server after this many retries. */
constexpr unsigned kMaxBusyRetries = 600;

} // namespace

Client::Client(const std::string &hostPort)
    : peer(hostPort)
{
    const std::size_t colon = hostPort.rfind(':');
    if (colon == std::string::npos || colon + 1 >= hostPort.size())
        fatal("--server expects HOST:PORT, got '", hostPort, "'");
    const std::string host = hostPort.substr(0, colon);
    const std::string port = hostPort.substr(colon + 1);

    addrinfo hints{};
    hints.ai_family = AF_INET;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo *res = nullptr;
    const int rc = getaddrinfo(host.c_str(), port.c_str(), &hints, &res);
    if (rc != 0)
        fatal("cannot resolve '", hostPort, "': ", gai_strerror(rc));

    int last_errno = 0;
    for (addrinfo *ai = res; ai; ai = ai->ai_next) {
        fd = socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
        if (fd < 0) {
            last_errno = errno;
            continue;
        }
        if (connect(fd, ai->ai_addr, ai->ai_addrlen) == 0)
            break;
        last_errno = errno;
        close(fd);
        fd = -1;
    }
    freeaddrinfo(res);
    if (fd < 0)
        fatal("cannot connect to ", hostPort, ": ",
              std::strerror(last_errno));
}

Client::~Client()
{
    if (fd >= 0)
        close(fd);
}

std::string
Client::recvLine()
{
    while (true) {
        const std::size_t nl = inBuf.find('\n');
        if (nl != std::string::npos) {
            std::string line = inBuf.substr(0, nl);
            inBuf.erase(0, nl + 1);
            return line;
        }
        char buf[4096];
        const ssize_t n = recv(fd, buf, sizeof(buf), 0);
        if (n > 0) {
            inBuf.append(buf, static_cast<std::size_t>(n));
            continue;
        }
        if (n < 0 && errno == EINTR)
            continue;
        fatal("connection to ", peer, n == 0 ? " closed" : " failed",
              " while awaiting a response");
    }
}

JsonValue
Client::request(const JsonValue &req)
{
    std::string line = req.dump();
    line += '\n';
    std::size_t off = 0;
    while (off < line.size()) {
        const ssize_t n = send(fd, line.data() + off, line.size() - off,
                               MSG_NOSIGNAL);
        if (n > 0) {
            off += static_cast<std::size_t>(n);
            continue;
        }
        if (n < 0 && errno == EINTR)
            continue;
        fatal("cannot send request to ", peer, ": ",
              std::strerror(errno));
    }

    JsonValue resp;
    std::string err;
    const std::string reply = recvLine();
    if (!JsonValue::parse(reply, resp, err) || !resp.isObject())
        fatal("malformed response from ", peer, ": ", err);
    return resp;
}

std::uint64_t
Client::submitWithRetry(const JobSpec &spec)
{
    JsonValue req = JsonValue::object();
    req.set("op", JsonValue::string("submit"));
    req.set("job", spec.toJson());

    for (unsigned attempt = 0; attempt < kMaxBusyRetries; ++attempt) {
        const JsonValue resp = request(req);
        if (resp.get("ok").asBool(false))
            return resp.get("id").asU64(0);
        const std::string code = resp.get("error").asString();
        if (code != "busy")
            fatal("server rejected job (", code, "): ",
                  resp.get("detail").asString());
        // Backpressure: honour the server's retry-after hint.
        const auto delay_ms = resp.get("retry_after_ms").asU64(250);
        std::this_thread::sleep_for(
            std::chrono::milliseconds(delay_ms ? delay_ms : 250));
    }
    fatal("server at ", peer, " stayed busy after ", kMaxBusyRetries,
          " retries");
}

std::vector<RunResult>
Client::runJobs(const std::vector<JobSpec> &specs)
{
    std::vector<std::uint64_t> ids;
    ids.reserve(specs.size());
    for (const JobSpec &spec : specs)
        ids.push_back(submitWithRetry(spec));

    std::vector<RunResult> results;
    results.reserve(ids.size());
    for (std::uint64_t id : ids) {
        JsonValue req = JsonValue::object();
        req.set("op", JsonValue::string("result"));
        req.set("id", JsonValue::integer(id));
        req.set("wait", JsonValue::boolean(true));
        const JsonValue resp = request(req);
        if (!resp.get("ok").asBool(false))
            fatal("server failed job ", id, " (",
                  resp.get("error").asString(), "): ",
                  resp.get("detail").asString());
        std::vector<RunResult> one;
        std::string err;
        if (!resultsFromJson(resp.get("result"), one, err) ||
            one.size() != 1)
            fatal("malformed result for job ", id, ": ", err);
        results.push_back(std::move(one.front()));
    }
    return results;
}

JsonValue
Client::stats()
{
    JsonValue req = JsonValue::object();
    req.set("op", JsonValue::string("stats"));
    const JsonValue resp = request(req);
    if (!resp.get("ok").asBool(false))
        fatal("stats request failed: ", resp.get("error").asString());
    return resp.get("stats");
}

} // namespace dcg::serve
