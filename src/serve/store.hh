/**
 * @file
 * ResultStore: the persistent, content-addressed result layer that
 * dcgserved (and any Engine) slots beneath the in-memory cache.
 *
 * One record per jobKey(), stored as a small file whose name is a
 * 128-bit FNV-1a hash of the key. A record is a one-line JSON header
 * (format version + the full key, for verification) followed by the
 * standard writeResultsJson() array of exactly one RunResult, so the
 * on-disk format round-trips bit-exactly through the same code path
 * as every other result file in the repo.
 *
 * Durability and tolerance:
 *  - writes go to a temporary file in the same directory and are
 *    renamed into place, so readers never observe a half-written
 *    record and concurrent writers of the same key last-write-win;
 *  - a truncated, corrupt or foreign record (including a hash
 *    collision, detected via the stored key) is treated as a miss —
 *    the engine re-simulates and put() repairs the record in place.
 *
 * Safe for concurrent use from several worker threads (the directory
 * index is mutex-guarded; file operations are per-key).
 */

#ifndef DCG_SERVE_STORE_HH
#define DCG_SERVE_STORE_HH

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_set>

#include "exp/engine.hh"

namespace dcg::serve {

class ResultStore : public exp::ResultStoreBase
{
  public:
    /**
     * Open (creating if needed) the store rooted at @p directory and
     * index the records already present. fatal() if the directory
     * cannot be created.
     */
    explicit ResultStore(const std::string &directory);

    bool get(const std::string &key, RunResult &out) override;
    void put(const std::string &key, const RunResult &r) override;

    /** Records currently on disk (indexed at open + later puts). */
    std::size_t size() const;

    /** Corrupt/foreign records encountered by get() so far. */
    std::uint64_t corruptRecords() const { return corrupt.load(); }

    const std::string &directory() const { return dir; }

    /** Absolute record path for @p key (exposed for tests/tools). */
    std::string recordPath(const std::string &key) const;

  private:
    std::string dir;
    mutable std::mutex indexMutex;
    std::unordered_set<std::string> index;  ///< record file names
    std::atomic<std::uint64_t> corrupt{0};
    std::atomic<std::uint64_t> tmpCounter{0};
};

} // namespace dcg::serve

#endif // DCG_SERVE_STORE_HH
