/**
 * @file
 * ResultStore: the persistent, content-addressed result layer that
 * dcgserved (and any Engine) slots beneath the in-memory cache.
 *
 * One record per jobKey(), stored as a small file whose name is a
 * 128-bit FNV-1a hash of the key. A record is a one-line JSON header
 * (format version + the full key, for verification) followed by the
 * standard writeResultsJson() array of exactly one RunResult, so the
 * on-disk format round-trips bit-exactly through the same code path
 * as every other result file in the repo.
 *
 * Durability and tolerance:
 *  - writes go to a temporary file in the same directory and are
 *    renamed into place, so readers never observe a half-written
 *    record and concurrent writers of the same key last-write-win;
 *  - a truncated, corrupt or foreign record (including a hash
 *    collision, detected via the stored key) is treated as a miss —
 *    the engine re-simulates and put() repairs the record in place.
 *
 * Lifecycle (the exp::StoreLifecycle seam, shared with the Engine's
 * in-memory cache):
 *  - every record carries a last-access stamp (seeded from file
 *    mtimes at open, bumped in memory on get/put), and evictTo()
 *    removes least-recently-used records until the store fits a byte
 *    budget. setBudgetBytes() makes put() enforce the bound
 *    automatically, so a long-lived service never grows without
 *    limit. The record just written is never the eviction victim.
 *  - compact() garbage-collects the directory: stale "*.tmp.*"
 *    leftovers from interrupted writes and records that fail full
 *    validation (header, key/filename agreement, result body) are
 *    deleted, the index and byte accounting are rebuilt, and a
 *    "manifest.json" summary is rewritten atomically (tmp + rename)
 *    so external tooling can read the store's shape without a scan.
 *    dcgserved runs one pass at startup and serves {"op":"compact"}
 *    on demand.
 *
 * Safe for concurrent use from several worker threads (the index is
 * mutex-guarded; file operations are per-key).
 */

#ifndef DCG_SERVE_STORE_HH
#define DCG_SERVE_STORE_HH

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/thread_annotations.hh"
#include "exp/engine.hh"

namespace dcg::serve {

class ResultStore : public exp::ResultStoreBase
{
  public:
    /**
     * Open (creating if needed) the store rooted at @p directory and
     * index the records already present. fatal() if the directory
     * cannot be created.
     */
    explicit ResultStore(const std::string &directory);

    bool get(const std::string &key, RunResult &out)
        override DCG_ANY_THREAD;
    void put(const std::string &key, const RunResult &r)
        override DCG_ANY_THREAD;

    /**
     * Persist a record on behalf of a peer (the owner fanning a
     * result out, or a read-repair pull). Identical bytes to put()
     * except the header is marked "replica": true, so tooling can
     * tell locally-computed records from replicated ones; the record
     * is a first-class index entry either way — LRU budgets and
     * compaction count it exactly once, like any other record.
     */
    void putReplica(const std::string &key, const RunResult &r)
        DCG_ANY_THREAD;

    /**
     * True when the record for @p key exists and its header carries
     * the replica marker (exposed for tests/tools).
     */
    bool recordIsReplica(const std::string &key) const DCG_ANY_THREAD;

    /** Replica-marked records written by this process so far. */
    std::uint64_t replicaRecords() const DCG_ANY_THREAD
    {
        return replicas.load();
    }

    /// @name exp::StoreLifecycle
    /// @{
    std::size_t entries() const override DCG_ANY_THREAD;
    std::uint64_t bytes() const override DCG_ANY_THREAD;
    std::size_t evictTo(std::uint64_t budgetBytes)
        override DCG_ANY_THREAD;
    std::size_t compact() override DCG_ANY_THREAD;
    /// @}

    /**
     * Enable automatic LRU eviction: after every put() the store is
     * trimmed back to @p budget bytes. 0 disables (the default).
     */
    void setBudgetBytes(std::uint64_t budget) DCG_ANY_THREAD;
    std::uint64_t budgetBytes() const DCG_ANY_THREAD;

    /** Records currently on disk (alias of entries(), kept for the
     *  original observability surface). */
    std::size_t size() const DCG_ANY_THREAD { return entries(); }

    /** Corrupt/foreign records encountered by get() so far. */
    std::uint64_t corruptRecords() const DCG_ANY_THREAD
    {
        return corrupt.load();
    }

    /** Records removed by evictTo()/budget enforcement so far. */
    std::uint64_t evictedRecords() const DCG_ANY_THREAD
    {
        return evicted.load();
    }

    /** compact() passes completed so far. */
    std::uint64_t compactions() const DCG_ANY_THREAD
    {
        return compactPasses.load();
    }

    const std::string &directory() const DCG_ANY_THREAD
    {
        return dir;
    }

    /** Absolute record path for @p key (exposed for tests/tools). */
    std::string recordPath(const std::string &key) const
        DCG_ANY_THREAD;

    /**
     * Every stored record's full job key, recovered from the record
     * headers (file names are hashes; the keys live inside). The
     * index is snapshotted under the lock, the headers are read
     * without it — records vanishing mid-scan are simply skipped.
     * This is the rebalance scan of an epoch change: the server walks
     * it to find the keys whose ring arc moved.
     */
    std::vector<std::string> keys() const DCG_ANY_THREAD;

  private:
    struct Rec
    {
        std::uint64_t bytes = 0;
        std::uint64_t lastUse = 0;
    };

    /** Drop LRU records until totalBytes <= budget; indexMutex held.
     *  @p keep (a record file name) is never evicted. */
    std::size_t evictLocked(std::uint64_t budget,
                            const std::string &keep)
        DCG_REQUIRES(indexMutex);
    void writeManifestLocked() const DCG_REQUIRES(indexMutex);
    void putRecord(const std::string &key, const RunResult &r,
                   bool replica);

    std::string dir;
    mutable std::mutex indexMutex;
    std::unordered_map<std::string, Rec> index
        DCG_GUARDED_BY(indexMutex);  ///< by record name
    std::uint64_t totalBytes DCG_GUARDED_BY(indexMutex) = 0;
    std::uint64_t useClock DCG_GUARDED_BY(indexMutex) = 0;
    std::uint64_t budget DCG_GUARDED_BY(indexMutex) = 0;
    std::atomic<std::uint64_t> corrupt{0};
    std::atomic<std::uint64_t> replicas{0};
    std::atomic<std::uint64_t> evicted{0};
    std::atomic<std::uint64_t> compactPasses{0};
    std::atomic<std::uint64_t> tmpCounter{0};
};

} // namespace dcg::serve

#endif // DCG_SERVE_STORE_HH
