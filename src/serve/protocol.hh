/**
 * @file
 * Wire protocol for dcgserved: newline-delimited JSON, one request and
 * one response object per line.
 *
 * A JobSpec is the network-portable description of one simulation —
 * the same surface dcgsim exposes (benchmark, scheme, pipeline depth,
 * run lengths, seed, ablation toggles). Both sides expand a spec into
 * an exp::Job through the identical presets code path, which is what
 * makes `dcgsim --server` output byte-identical to a local run.
 *
 * Requests ("op" selects the verb):
 *   {"op":"submit", "job": {JobSpec}}            -> {"ok":true,"ids":[N]}
 *   {"op":"submit", "jobs": [{JobSpec}, ...]}    -> {"ok":true,"ids":[...]}
 *   {"op":"submit", "grid": {GridSpec}}          -> {"ok":true,"ids":[...]}
 *   {"op":"status", "id": N}                     -> {"ok":true,"status":...}
 *   {"op":"result", "id": N, "wait": true|false} -> result or status
 *   {"op":"stats"}                               -> {"ok":true,"stats":{..}}
 *   {"op":"compact"}                             -> {"ok":true,"removed":N}
 *   {"op":"shutdown"}                            -> {"ok":true,...}; drains
 *
 * Versioning: every request MAY carry "version": N; a request without
 * one is treated as version 1 (the pre-cluster protocol), so old
 * single-socket clients keep working unchanged. Every response
 * carries "version" echoing the request's (old clients ignore the
 * extra member). A request with a version above kProtocolVersion is
 * rejected with the structured error "unsupported_version" plus a
 * "supported" member naming the highest version this server speaks.
 *
 * Clustering (version 2): in a sharded deployment a submit for a job
 * key this node does not own is transparently forwarded to the owner
 * unless the request carries "redirect": true, in which case the
 * server answers {"ok":false, "error":"not_owner",
 * "redirect":"HOST:PORT"} so a ring-aware client reconnects itself.
 * Server-to-server forwards are marked "forwarded": true; a forwarded
 * submit is never re-forwarded (ring disagreement yields "not_owner"
 * instead of a forwarding loop).
 *
 * Replication (version 3): with --replicas=k every key lives on the k
 * distinct ring successors HashRing::owners() names. Two ops carry
 * replica records between holders:
 *   {"op":"replicate", "key": K, "result": [RunResult]}
 *       -> {"ok":true}            (receiver stores a replica record)
 *   {"op":"fetch", "key": K}
 *       -> {"ok":true, "result": [...]} or {"ok":false,
 *           "error":"not_found"}  (local store only — never recursive)
 * A forwarded submit additionally marked "replica": true asks a
 * *follower* to serve a key whose primary is unreachable; the
 * follower answers from its replica store (or simulates) instead of
 * bouncing not_owner. Unversioned/v1 and v2 clients are still served
 * byte-identically — the new members only appear on v3 exchanges.
 *
 * Multiplexing (version 4): a request MAY carry "rid", an opaque
 * request id chosen by the sender, and every response to a rid-tagged
 * request echoes it verbatim — including responses parked behind
 * "wait". That turns one TCP connection into a pipelined multiplexed
 * link: many requests in flight, responses matched by rid in whatever
 * order jobs finish (see serve/peerlink.hh for the link layer built
 * on this). A v4 single-job submit additionally accepts "wait": true,
 * collapsing the old submit + result-wait pair into one deferred
 * response that carries the result (or the structured failure)
 * directly — the op peers use to forward jobs without burning a
 * round trip or a connection per job. Negotiation is optimistic:
 * a sender pipelines v4 frames immediately, and a peer that answers
 * "unsupported_version" (supported < 4) is retried over the
 * pre-mux one-shot-connection path, so v1-v3 peers keep working.
 *
 * Cluster membership (version 5): the ring is no longer frozen at
 * startup. Three admin verbs ride the same envelope:
 *   {"op":"join",  "node":"HOST:PORT"}  -> add a running node
 *   {"op":"leave", "node":"HOST:PORT"}  -> remove a member
 *   {"op":"ring"}                       -> epoch, members, rebalance
 * plus the peer-to-peer verb the coordinator confirms a change with:
 *   {"op":"epoch", "epoch":N, "members":[...], "prev_epoch":M,
 *    "prev_members":[...], "replicas":k}
 * Membership is a *versioned ring epoch*: a monotonically increasing
 * epoch id plus the member list. A node receiving an epoch newer than
 * its own installs it (keeping the previous view for dual-epoch
 * routing), rebalances by pushing only the remapped ~1/N arcs to
 * their new owners over the v3 `replicate` verb, and acks the epoch
 * only once that push queue drains — so a join/leave response means
 * the whole cluster has quiesced. An epoch older than the receiver's
 * is rejected with "stale_epoch" carrying the higher epoch and its
 * member list, which is how disagreeing peers resolve to the highest
 * epoch. Until handoff completes, previous-epoch holders keep serving
 * (`fetch` falls back to them), so no request ever misses. v1-v4
 * clients keep working unchanged; the admin verbs themselves require
 * a v5 envelope ("version_too_low" otherwise).
 *
 * Error responses: {"ok":false, "error": "<code>", "detail": "..."};
 * a full queue answers code "busy" plus "retry_after_ms". Done results
 * carry "result": [<RunResult>] — the exact writeResultsJson() array
 * flattened onto one line, numbers forwarded token-for-token. The
 * full verb catalog lives in the op registry (serve/ops.hh) and is
 * echoed on every stats response as "ops".
 */

#ifndef DCG_SERVE_PROTOCOL_HH
#define DCG_SERVE_PROTOCOL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "exp/job.hh"
#include "serve/json.hh"

namespace dcg::serve {

/**
 * Highest protocol version this build speaks. Version 1 is the
 * original single-server protocol; version 2 adds the version field
 * itself, `not_owner`/`redirect` and forwarded submits; version 3
 * adds replication (`replicate`/`fetch` ops and replica-marked
 * forwarded submits); version 4 adds request-id multiplexing ("rid"
 * echo on every response) and single-job submit+wait; version 5 adds
 * elastic membership (`join`/`leave`/`ring` admin verbs and the
 * peer-to-peer `epoch` confirmation).
 */
constexpr unsigned kProtocolVersion = 5;

/** Highest version whose peers are driven over one-shot connections
 *  (no rid multiplexing): the legacy fallback target. */
constexpr unsigned kLastOneShotVersion = 3;

/**
 * Extract a request's protocol version: absent = 1 (legacy client).
 * False + @p err when "version" is present but not a positive
 * integer. A version above kProtocolVersion parses fine — reject it
 * separately with unsupportedVersionResponse() so the client learns
 * what *is* supported.
 */
bool requestVersion(const JsonValue &req, unsigned &version,
                    std::string &err);

/** Network-portable description of one simulation request. */
struct JobSpec
{
    std::string bench = "gzip";
    std::string scheme = "dcg";   ///< any registered gating scheme
    unsigned depth = 8;           ///< >= 20 selects the Fig-17 machine
    std::uint64_t insts = 0;      ///< 0 = receiver-side default
    std::uint64_t warmup = 0;
    std::uint64_t seed = 1;
    bool gateIq = false;
    bool storeDelay = false;
    bool roundRobin = false;

    /**
     * Validate without terminating (the server must reject, not die):
     * false + @p err on unknown benchmark/scheme.
     */
    bool validate(std::string &err) const;

    /** Expand via the presets path; fatal() if not validate()d. */
    exp::Job toJob() const;

    JsonValue toJson() const;
    static bool fromJson(const JsonValue &v, JobSpec &out,
                         std::string &err);
};

/** A (benchmarks x schemes) request, expanded server- or client-side. */
struct GridSpec
{
    std::vector<std::string> benchmarks;  ///< empty = full SPEC set
    std::vector<std::string> schemes;     ///< empty = {base, dcg}
    unsigned depth = 8;
    std::uint64_t insts = 0;
    std::uint64_t warmup = 0;
    std::uint64_t seed = 1;
    bool gateIq = false;
    bool storeDelay = false;
    bool roundRobin = false;

    bool validate(std::string &err) const;
    std::vector<JobSpec> expand() const;

    JsonValue toJson() const;
    static bool fromJson(const JsonValue &v, GridSpec &out,
                         std::string &err);
};

/**
 * RunResults as a JSON value: the writeResultsJson() array reparsed
 * with raw number tokens preserved, so embedding it in a response and
 * dump()ing stays bit-exact.
 */
JsonValue resultsToJson(const std::vector<RunResult> &results);

/** Inverse of resultsToJson(); false + @p err on malformed input. */
bool resultsFromJson(const JsonValue &v, std::vector<RunResult> &out,
                     std::string &err);

/// @name Response helpers (shared by server and tests)
/// @{
JsonValue okResponse();
JsonValue errorResponse(const std::string &code,
                        const std::string &detail);

/** Stamp the response envelope's "version" member (insert/replace). */
void stampVersion(JsonValue &resp, unsigned version);

/**
 * v4 rid echo: copy @p req's "rid" member (if any) onto @p resp,
 * token-for-token. Every server response path funnels through this so
 * a multiplexed peer can match responses to in-flight requests no
 * matter which op — or which error branch — produced them.
 */
void echoRid(const JsonValue &req, JsonValue &resp);

/** "unsupported_version" error naming the supported maximum. */
JsonValue unsupportedVersionResponse(unsigned requested);

/** "not_owner" error carrying the owning node as "redirect". */
JsonValue notOwnerResponse(const std::string &ownerAddress);

/** v3 "replicate" push: hand @p result for @p key to a follower. */
JsonValue replicateRequest(const std::string &key, const RunResult &r);

/** v3 "fetch" pull: ask a holder for its local record of @p key. */
JsonValue fetchRequest(const std::string &key);

/**
 * v5 "epoch" confirmation: install ring epoch @p epoch with member
 * list @p members, superseding (@p prevEpoch, @p prevMembers).
 * @p replicas carries the coordinator's configured factor so a
 * freshly joined node replicates with the cluster's k, not its own.
 */
JsonValue epochRequest(std::uint64_t epoch,
                       const std::vector<std::string> &members,
                       std::uint64_t prevEpoch,
                       const std::vector<std::string> &prevMembers,
                       unsigned replicas);

/** "stale_epoch" error carrying the higher epoch and its members —
 *  how peers that disagree resolve to the highest epoch. */
JsonValue staleEpochResponse(std::uint64_t epoch,
                             const std::vector<std::string> &members);

/** "version_too_low" error: @p op needs envelope version
 *  >= @p minVersion. */
JsonValue versionTooLowResponse(const std::string &op,
                                unsigned minVersion);
/// @}

} // namespace dcg::serve

#endif // DCG_SERVE_PROTOCOL_HH
