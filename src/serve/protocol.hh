/**
 * @file
 * Wire protocol for dcgserved: newline-delimited JSON, one request and
 * one response object per line.
 *
 * A JobSpec is the network-portable description of one simulation —
 * the same surface dcgsim exposes (benchmark, scheme, pipeline depth,
 * run lengths, seed, ablation toggles). Both sides expand a spec into
 * an exp::Job through the identical presets code path, which is what
 * makes `dcgsim --server` output byte-identical to a local run.
 *
 * Requests ("op" selects the verb):
 *   {"op":"submit", "job": {JobSpec}}            -> {"ok":true,"ids":[N]}
 *   {"op":"submit", "jobs": [{JobSpec}, ...]}    -> {"ok":true,"ids":[...]}
 *   {"op":"submit", "grid": {GridSpec}}          -> {"ok":true,"ids":[...]}
 *   {"op":"status", "id": N}                     -> {"ok":true,"status":...}
 *   {"op":"result", "id": N, "wait": true|false} -> result or status
 *   {"op":"stats"}                               -> {"ok":true,"stats":{..}}
 *   {"op":"shutdown"}                            -> {"ok":true,...}; drains
 *
 * Error responses: {"ok":false, "error": "<code>", "detail": "..."};
 * a full queue answers code "busy" plus "retry_after_ms". Done results
 * carry "result": [<RunResult>] — the exact writeResultsJson() array
 * flattened onto one line, numbers forwarded token-for-token.
 */

#ifndef DCG_SERVE_PROTOCOL_HH
#define DCG_SERVE_PROTOCOL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "exp/job.hh"
#include "serve/json.hh"

namespace dcg::serve {

/** Network-portable description of one simulation request. */
struct JobSpec
{
    std::string bench = "gzip";
    std::string scheme = "dcg";   ///< base|dcg|plb-orig|plb-ext
    unsigned depth = 8;           ///< >= 20 selects the Fig-17 machine
    std::uint64_t insts = 0;      ///< 0 = receiver-side default
    std::uint64_t warmup = 0;
    std::uint64_t seed = 1;
    bool gateIq = false;
    bool storeDelay = false;
    bool roundRobin = false;

    /**
     * Validate without terminating (the server must reject, not die):
     * false + @p err on unknown benchmark/scheme.
     */
    bool validate(std::string &err) const;

    /** Expand via the presets path; fatal() if not validate()d. */
    exp::Job toJob() const;

    JsonValue toJson() const;
    static bool fromJson(const JsonValue &v, JobSpec &out,
                         std::string &err);
};

/** A (benchmarks x schemes) request, expanded server- or client-side. */
struct GridSpec
{
    std::vector<std::string> benchmarks;  ///< empty = full SPEC set
    std::vector<std::string> schemes;     ///< empty = {base, dcg}
    unsigned depth = 8;
    std::uint64_t insts = 0;
    std::uint64_t warmup = 0;
    std::uint64_t seed = 1;
    bool gateIq = false;
    bool storeDelay = false;
    bool roundRobin = false;

    bool validate(std::string &err) const;
    std::vector<JobSpec> expand() const;

    JsonValue toJson() const;
    static bool fromJson(const JsonValue &v, GridSpec &out,
                         std::string &err);
};

/** Non-fatal scheme-name parse (base|dcg|plb-orig|plb-ext). */
bool parseSchemeName(const std::string &name, GatingScheme &out);

/**
 * RunResults as a JSON value: the writeResultsJson() array reparsed
 * with raw number tokens preserved, so embedding it in a response and
 * dump()ing stays bit-exact.
 */
JsonValue resultsToJson(const std::vector<RunResult> &results);

/** Inverse of resultsToJson(); false + @p err on malformed input. */
bool resultsFromJson(const JsonValue &v, std::vector<RunResult> &out,
                     std::string &err);

/// @name Response helpers (shared by server and tests)
/// @{
JsonValue okResponse();
JsonValue errorResponse(const std::string &code,
                        const std::string &detail);
/// @}

} // namespace dcg::serve

#endif // DCG_SERVE_PROTOCOL_HH
