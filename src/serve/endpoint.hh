/**
 * @file
 * Endpoint: one "HOST:PORT" server address, plus the shared parser
 * behind every server-address flag in the tree (`dcgsim --server=...`,
 * `dcgserved --peers=.../--self=...`).
 *
 * The textual form matters beyond convenience: consistent-hash ring
 * nodes are identified by the *canonical string* str() produces, so
 * every process that names the same cluster must spell each node the
 * same way ("127.0.0.1:7878", not "localhost:7878" on one side). The
 * parser therefore rejects anything ambiguous — empty hosts, ports
 * outside 1..65535, empty list elements from stray commas, and
 * duplicate endpoints (which would double-weight a ring node).
 *
 * Parsing is non-fatal (bool + error string) so servers can reject
 * bad peer lists with a message and tests can probe malformed input;
 * CLI callers wrap the failure in fatal() themselves.
 */

#ifndef DCG_SERVE_ENDPOINT_HH
#define DCG_SERVE_ENDPOINT_HH

#include <cstdint>
#include <string>
#include <vector>

namespace dcg::serve {

struct Endpoint
{
    std::string host;
    std::uint16_t port = 0;

    /** Canonical "host:port" — the ring node identity. */
    std::string str() const
    {
        return host + ":" + std::to_string(port);
    }

    bool operator==(const Endpoint &o) const
    {
        return host == o.host && port == o.port;
    }
};

/**
 * Parse one "HOST:PORT". False + @p err on an empty host, a missing
 * or non-numeric port, or a port outside 1..65535. IPv6 literals are
 * out of scope for this protocol (the last ':' splits host and port).
 */
bool parseEndpoint(const std::string &text, Endpoint &out,
                   std::string &err);

/**
 * Parse "HOST:PORT[,HOST:PORT...]" — the `--server` / `--peers` flag
 * syntax. Rejects an empty list, empty elements (leading, doubled or
 * trailing commas) and duplicate endpoints. On failure @p out is left
 * untouched.
 */
bool parseEndpoints(const std::string &list, std::vector<Endpoint> &out,
                    std::string &err);

/** Canonical strings for a parsed list, in list order. */
std::vector<std::string> endpointStrings(
    const std::vector<Endpoint> &endpoints);

} // namespace dcg::serve

#endif // DCG_SERVE_ENDPOINT_HH
