#include "serve/ring.hh"

#include <algorithm>

#include "common/log.hh"

namespace dcg::serve {

std::uint64_t
HashRing::hash(const std::string &s)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (unsigned char c : s) {
        h ^= c;
        h *= 0x100000001b3ULL;
    }
    // Raw FNV-1a clusters badly on the short, similar strings this
    // ring sees ("host:port#v", job keys differing in a few chars) —
    // enough to hand one node half the arc. The 64-bit avalanche
    // finisher makes every output bit depend on every input byte.
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdULL;
    h ^= h >> 33;
    h *= 0xc4ceb9fe1a85ec53ULL;
    h ^= h >> 33;
    return h;
}

HashRing::HashRing(std::vector<std::string> nodeNames,
                   unsigned vnodesPerNode)
    : names(std::move(nodeNames))
{
    for (std::size_t i = 0; i < names.size(); ++i) {
        for (std::size_t j = i + 1; j < names.size(); ++j)
            if (names[i] == names[j])
                fatal("hash ring: duplicate node '", names[i], "'");
    }
    points.reserve(names.size() * vnodesPerNode);
    for (std::size_t n = 0; n < names.size(); ++n) {
        for (unsigned v = 0; v < vnodesPerNode; ++v) {
            // Hashing "name#v" instead of seeding per node keeps the
            // point set a pure function of the name strings.
            points.emplace_back(
                hash(names[n] + "#" + std::to_string(v)),
                static_cast<std::uint32_t>(n));
        }
    }
    // Sort by (hash, index): the index tiebreak makes even a point
    // collision between two nodes resolve identically everywhere.
    std::sort(points.begin(), points.end());
}

std::size_t
HashRing::ownerIndex(const std::string &key) const
{
    if (points.empty())
        fatal("hash ring: owner lookup on an empty ring");
    const std::uint64_t h = hash(key);
    auto it = std::lower_bound(
        points.begin(), points.end(), h,
        [](const std::pair<std::uint64_t, std::uint32_t> &p,
           std::uint64_t v) { return p.first < v; });
    if (it == points.end())
        it = points.begin();  // wrap past the top of the ring
    return it->second;
}

std::vector<std::size_t>
HashRing::ownerIndices(const std::string &key, std::size_t k) const
{
    if (points.empty())
        fatal("hash ring: owner lookup on an empty ring");
    if (k == 0)
        fatal("hash ring: replica lookup with k == 0");
    const std::size_t want = std::min(k, names.size());
    const std::uint64_t h = hash(key);
    auto it = std::lower_bound(
        points.begin(), points.end(), h,
        [](const std::pair<std::uint64_t, std::uint32_t> &p,
           std::uint64_t v) { return p.first < v; });
    std::size_t pos =
        it == points.end()
            ? 0
            : static_cast<std::size_t>(it - points.begin());

    // Successor walk: collect the first `want` distinct nodes. Each
    // node contributes many virtual points, so `seen` keeps the walk
    // from double-counting one; a full lap visits every node.
    std::vector<std::size_t> out;
    out.reserve(want);
    std::vector<bool> seen(names.size(), false);
    for (std::size_t step = 0;
         step < points.size() && out.size() < want; ++step) {
        const std::size_t n =
            points[(pos + step) % points.size()].second;
        if (!seen[n]) {
            seen[n] = true;
            out.push_back(n);
        }
    }
    return out;
}

std::vector<std::string>
HashRing::owners(const std::string &key, std::size_t k) const
{
    std::vector<std::string> out;
    for (const std::size_t idx : ownerIndices(key, k))
        out.push_back(names[idx]);
    return out;
}

const std::string &
HashRing::owner(const std::string &key) const
{
    return names[ownerIndex(key)];
}

} // namespace dcg::serve
