/**
 * @file
 * Retry-hardened wrappers around the raw socket syscalls the serving
 * layer uses. Every call site in src/serve/ and tools/ goes through
 * these instead of the bare libc functions — the dcglint "net-io"
 * check enforces it — so EINTR handling and partial-write semantics
 * are decided once, here, and cannot regress one call site at a time.
 *
 * The wrappers deliberately preserve the raw return-value contract
 * (ssize_t/-1 + errno) so call sites keep their EAGAIN/EWOULDBLOCK
 * handling: non-blocking event loops still see would-block, timed
 * blocking sockets still see their SO_RCVTIMEO/SO_SNDTIMEO expiry.
 * Only EINTR is absorbed — a signal must never be misread as a dead
 * peer, a short write, or an expired timeout.
 *
 * connectRetry() is the one asymmetric case: POSIX says a connect()
 * interrupted by a signal *continues asynchronously*, so retrying the
 * call itself would yield EALREADY/EISCONN confusion. Instead an
 * EINTR is reported as EINPROGRESS, which every caller already treats
 * as "poll for completion" — exactly the state the kernel is in.
 */

#ifndef DCG_SERVE_NETIO_HH
#define DCG_SERVE_NETIO_HH

#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstddef>

namespace dcg::serve::net {

/** read(2) restarted on EINTR. */
inline ssize_t
readRetry(int fd, void *buf, std::size_t n)
{
    for (;;) {
        const ssize_t r = read(fd, buf, n);
        if (r >= 0 || errno != EINTR)
            return r;
    }
}

/** write(2) restarted on EINTR (async-signal-safe: loop + write). */
inline ssize_t
writeRetry(int fd, const void *buf, std::size_t n)
{
    for (;;) {
        const ssize_t r = write(fd, buf, n);
        if (r >= 0 || errno != EINTR)
            return r;
    }
}

/** recv(2) restarted on EINTR. */
inline ssize_t
recvRetry(int fd, void *buf, std::size_t n, int flags)
{
    for (;;) {
        const ssize_t r = recv(fd, buf, n, flags);
        if (r >= 0 || errno != EINTR)
            return r;
    }
}

/** send(2) restarted on EINTR. */
inline ssize_t
sendRetry(int fd, const void *buf, std::size_t n, int flags)
{
    for (;;) {
        const ssize_t r = send(fd, buf, n, flags);
        if (r >= 0 || errno != EINTR)
            return r;
    }
}

/**
 * poll(2) restarted on EINTR with the same timeout. Callers that need
 * an absolute deadline recompute the remaining time in their own loop
 * (the event loops here all do); for them a restarted slice only
 * shifts one wakeup, never the deadline.
 */
inline int
pollRetry(pollfd *fds, nfds_t nfds, int timeoutMs)
{
    for (;;) {
        const int r = poll(fds, nfds, timeoutMs);
        if (r >= 0 || errno != EINTR)
            return r;
    }
}

/** accept(2) restarted on EINTR. */
inline int
acceptRetry(int fd)
{
    for (;;) {
        const int r = accept(fd, nullptr, nullptr);
        if (r >= 0 || errno != EINTR)
            return r;
    }
}

/**
 * connect(2) with EINTR mapped to EINPROGRESS (see file comment): the
 * handshake keeps running in the kernel, so the caller polls for
 * completion exactly as it would for a non-blocking connect.
 */
inline int
connectRetry(int fd, const sockaddr *addr, socklen_t len)
{
    const int r = connect(fd, addr, len);
    if (r < 0 && errno == EINTR)
        errno = EINPROGRESS;
    return r;
}

/**
 * Write all of @p n bytes to a blocking (possibly SO_SNDTIMEO-timed)
 * socket, handling partial writes and EINTR. Returns the number of
 * bytes written; short only on error/timeout (check errno).
 */
inline std::size_t
sendAllRetry(int fd, const char *data, std::size_t n)
{
    std::size_t off = 0;
    while (off < n) {
        const ssize_t w = sendRetry(fd, data + off, n - off,
                                    MSG_NOSIGNAL);
        if (w <= 0)
            break;
        off += static_cast<std::size_t>(w);
    }
    return off;
}

} // namespace dcg::serve::net

#endif // DCG_SERVE_NETIO_HH
