#include "serve/protocol.hh"

#include <algorithm>
#include <sstream>

#include "common/log.hh"
#include "gating/registry.hh"
#include "sim/presets.hh"
#include "sim/report.hh"
#include "trace/spec2000.hh"

namespace dcg::serve {

namespace {

bool
knownBench(const std::string &name)
{
    const auto names = allSpecNames();
    return std::find(names.begin(), names.end(), name) != names.end();
}

void
specFieldsToJson(JsonValue &o, unsigned depth, std::uint64_t insts,
                 std::uint64_t warmup, std::uint64_t seed, bool gateIq,
                 bool storeDelay, bool roundRobin)
{
    o.set("depth", JsonValue::integer(std::uint64_t{depth}));
    o.set("insts", JsonValue::integer(insts));
    o.set("warmup", JsonValue::integer(warmup));
    o.set("seed", JsonValue::integer(seed));
    if (gateIq)
        o.set("gate_iq", JsonValue::boolean(true));
    if (storeDelay)
        o.set("store_delay", JsonValue::boolean(true));
    if (roundRobin)
        o.set("round_robin", JsonValue::boolean(true));
}

} // namespace

bool
JobSpec::validate(std::string &err) const
{
    if (!gating::isScheme(scheme)) {
        err = "unknown scheme '" + scheme + "' (expected " +
              gating::schemeNamesJoined() + ")";
        return false;
    }
    if (!knownBench(bench)) {
        err = "unknown benchmark '" + bench + "'";
        return false;
    }
    return true;
}

exp::Job
JobSpec::toJob() const
{
    if (!gating::isScheme(scheme))
        fatal("JobSpec::toJob on unvalidated scheme '", scheme, "'");

    // Mirror dcgsim's local configuration path exactly: this is the
    // contract that makes --server output byte-identical.
    SimConfig cfg = depth >= 20 ? deepPipelineConfig(scheme)
                                : table1Config(scheme);
    cfg.seed = seed;
    cfg.dcg.gateIssueQueue = gateIq;
    cfg.core.delayStoresOneCycle = storeDelay;
    cfg.core.sequentialPriority = !roundRobin;
    return exp::makeJob(profileByName(bench), cfg, insts, warmup);
}

JsonValue
JobSpec::toJson() const
{
    JsonValue o = JsonValue::object();
    o.set("bench", JsonValue::string(bench));
    o.set("scheme", JsonValue::string(scheme));
    specFieldsToJson(o, depth, insts, warmup, seed, gateIq, storeDelay,
                     roundRobin);
    return o;
}

bool
JobSpec::fromJson(const JsonValue &v, JobSpec &out, std::string &err)
{
    if (!v.isObject()) {
        err = "job spec must be an object";
        return false;
    }
    JobSpec s;
    s.bench = v.get("bench").asString();
    s.scheme = v.has("scheme") ? v.get("scheme").asString() : "dcg";
    s.depth = static_cast<unsigned>(v.get("depth").asU64(8));
    s.insts = v.get("insts").asU64(0);
    s.warmup = v.get("warmup").asU64(0);
    s.seed = v.get("seed").asU64(1);
    s.gateIq = v.get("gate_iq").asBool(false);
    s.storeDelay = v.get("store_delay").asBool(false);
    s.roundRobin = v.get("round_robin").asBool(false);
    if (!s.validate(err))
        return false;
    out = std::move(s);
    return true;
}

bool
GridSpec::validate(std::string &err) const
{
    for (const std::string &b : benchmarks) {
        if (!knownBench(b)) {
            err = "unknown benchmark '" + b + "'";
            return false;
        }
    }
    for (const std::string &name : schemes) {
        if (!gating::isScheme(name)) {
            err = "unknown scheme '" + name + "' (expected " +
                  gating::schemeNamesJoined() + ")";
            return false;
        }
    }
    return true;
}

std::vector<JobSpec>
GridSpec::expand() const
{
    const std::vector<std::string> benches =
        benchmarks.empty() ? allSpecNames() : benchmarks;
    const std::vector<std::string> schms =
        schemes.empty() ? std::vector<std::string>{"base", "dcg"}
                        : schemes;

    std::vector<JobSpec> specs;
    specs.reserve(benches.size() * schms.size());
    for (const std::string &b : benches) {
        for (const std::string &s : schms) {
            JobSpec spec;
            spec.bench = b;
            spec.scheme = s;
            spec.depth = depth;
            spec.insts = insts;
            spec.warmup = warmup;
            spec.seed = seed;
            spec.gateIq = gateIq;
            spec.storeDelay = storeDelay;
            spec.roundRobin = roundRobin;
            specs.push_back(std::move(spec));
        }
    }
    return specs;
}

JsonValue
GridSpec::toJson() const
{
    JsonValue o = JsonValue::object();
    JsonValue benches = JsonValue::array();
    for (const std::string &b : benchmarks)
        benches.push(JsonValue::string(b));
    o.set("benchmarks", std::move(benches));
    JsonValue schms = JsonValue::array();
    for (const std::string &s : schemes)
        schms.push(JsonValue::string(s));
    o.set("schemes", std::move(schms));
    specFieldsToJson(o, depth, insts, warmup, seed, gateIq, storeDelay,
                     roundRobin);
    return o;
}

bool
GridSpec::fromJson(const JsonValue &v, GridSpec &out, std::string &err)
{
    if (!v.isObject()) {
        err = "grid spec must be an object";
        return false;
    }
    GridSpec g;
    for (const JsonValue &b : v.get("benchmarks").items())
        g.benchmarks.push_back(b.asString());
    for (const JsonValue &s : v.get("schemes").items())
        g.schemes.push_back(s.asString());
    g.depth = static_cast<unsigned>(v.get("depth").asU64(8));
    g.insts = v.get("insts").asU64(0);
    g.warmup = v.get("warmup").asU64(0);
    g.seed = v.get("seed").asU64(1);
    g.gateIq = v.get("gate_iq").asBool(false);
    g.storeDelay = v.get("store_delay").asBool(false);
    g.roundRobin = v.get("round_robin").asBool(false);
    if (!g.validate(err))
        return false;
    out = std::move(g);
    return true;
}

JsonValue
resultsToJson(const std::vector<RunResult> &results)
{
    std::ostringstream os;
    writeResultsJson(results, os);
    JsonValue v;
    std::string err;
    // The writer's output is always parseable; a failure here is a
    // programming error, not an input error.
    if (!JsonValue::parse(os.str(), v, err))
        panic("resultsToJson: writer/parser mismatch: ", err);
    return v;
}

bool
resultsFromJson(const JsonValue &v, std::vector<RunResult> &out,
                std::string &err)
{
    if (!v.isArray()) {
        err = "results must be a JSON array";
        return false;
    }
    std::istringstream is(v.dump());
    return tryReadResultsJson(is, out, &err);
}

JsonValue
okResponse()
{
    JsonValue o = JsonValue::object();
    o.set("ok", JsonValue::boolean(true));
    return o;
}

JsonValue
errorResponse(const std::string &code, const std::string &detail)
{
    JsonValue o = JsonValue::object();
    o.set("ok", JsonValue::boolean(false));
    o.set("error", JsonValue::string(code));
    if (!detail.empty())
        o.set("detail", JsonValue::string(detail));
    return o;
}

bool
requestVersion(const JsonValue &req, unsigned &version,
               std::string &err)
{
    if (!req.has("version")) {
        version = 1;  // pre-versioning client
        return true;
    }
    const JsonValue &v = req.get("version");
    const std::uint64_t n = v.asU64(0);
    if (!v.isNumber() || n == 0) {
        err = "version must be a positive integer";
        return false;
    }
    version = static_cast<unsigned>(n);
    return true;
}

void
stampVersion(JsonValue &resp, unsigned version)
{
    resp.set("version",
             JsonValue::integer(std::uint64_t{version}));
}

void
echoRid(const JsonValue &req, JsonValue &resp)
{
    if (req.has("rid"))
        resp.set("rid", req.get("rid"));
}

JsonValue
unsupportedVersionResponse(unsigned requested)
{
    JsonValue o = errorResponse(
        "unsupported_version",
        "requested protocol version " + std::to_string(requested) +
            "; this server speaks up to " +
            std::to_string(kProtocolVersion));
    o.set("supported",
          JsonValue::integer(std::uint64_t{kProtocolVersion}));
    return o;
}

JsonValue
notOwnerResponse(const std::string &ownerAddress)
{
    JsonValue o = errorResponse(
        "not_owner", "job key is owned by " + ownerAddress);
    o.set("redirect", JsonValue::string(ownerAddress));
    return o;
}

JsonValue
replicateRequest(const std::string &key, const RunResult &r)
{
    JsonValue o = JsonValue::object();
    o.set("op", JsonValue::string("replicate"));
    o.set("key", JsonValue::string(key));
    o.set("result", resultsToJson({r}));
    stampVersion(o, kProtocolVersion);
    return o;
}

JsonValue
fetchRequest(const std::string &key)
{
    JsonValue o = JsonValue::object();
    o.set("op", JsonValue::string("fetch"));
    o.set("key", JsonValue::string(key));
    stampVersion(o, kProtocolVersion);
    return o;
}

namespace {

JsonValue
memberArray(const std::vector<std::string> &members)
{
    JsonValue arr = JsonValue::array();
    for (const std::string &m : members)
        arr.push(JsonValue::string(m));
    return arr;
}

} // namespace

JsonValue
epochRequest(std::uint64_t epoch,
             const std::vector<std::string> &members,
             std::uint64_t prevEpoch,
             const std::vector<std::string> &prevMembers,
             unsigned replicas)
{
    JsonValue o = JsonValue::object();
    o.set("op", JsonValue::string("epoch"));
    o.set("epoch", JsonValue::integer(epoch));
    o.set("members", memberArray(members));
    o.set("prev_epoch", JsonValue::integer(prevEpoch));
    o.set("prev_members", memberArray(prevMembers));
    o.set("replicas", JsonValue::integer(std::uint64_t{replicas}));
    stampVersion(o, kProtocolVersion);
    return o;
}

JsonValue
staleEpochResponse(std::uint64_t epoch,
                   const std::vector<std::string> &members)
{
    JsonValue o = errorResponse(
        "stale_epoch", "this node is already on a newer ring epoch");
    o.set("epoch", JsonValue::integer(epoch));
    o.set("members", memberArray(members));
    return o;
}

JsonValue
versionTooLowResponse(const std::string &op, unsigned minVersion)
{
    JsonValue o = errorResponse(
        "version_too_low", "op '" + op + "' needs protocol version " +
                               std::to_string(minVersion) + " or newer");
    o.set("min_version",
          JsonValue::integer(std::uint64_t{minVersion}));
    return o;
}

} // namespace dcg::serve
