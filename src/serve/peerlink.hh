/**
 * @file
 * PeerLink/PeerPool: persistent multiplexed peer connections for the
 * serving layer — the protocol-v4 link layer both dcgserved (peer
 * forwarding, replica pushes, read-repair fetches) and the cluster
 * client (connection pooling, pipelined grid fan-out) are built on.
 *
 * One PeerLink is one non-blocking TCP connection to one peer,
 * carrying many requests in flight at once: every frame is tagged
 * with a pool-unique request id ("rid"), responses are matched by rid
 * in whatever order the peer finishes them, and a per-request
 * deadline (from --peer-timeout-ms) fails a slow request without
 * killing the link. Link death — EOF, reset, a malformed frame —
 * fails every in-flight request (callers fail over) and arms an
 * automatic reconnect with exponential backoff; requests issued while
 * the link is down wait for the reconnect instead of failing
 * immediately.
 *
 * Version negotiation is optimistic: frames are pipelined as v4 from
 * the first byte. A peer that answers "unsupported_version"
 * (supported < 4) downgrades the link to legacy mode — every pending
 * and future request on that link is replayed by a background
 * executor over one-shot blocking connections speaking v3, exactly
 * the pre-mux wire behaviour — so a mixed-version cluster keeps
 * working with no configuration.
 *
 * Threading: a PeerPool is owned by exactly one event loop thread
 * (dcgserved's poll loop, or a LinkLoop's). All link state is touched
 * only on that thread; other threads hand requests in through the
 * mutex-guarded post()/callSync() injection path, and every
 * completion callback runs on the owner thread. The owner drives the
 * pool by including appendPollFds() in its poll set, then calling
 * dispatch() and runDue() each iteration with timeoutHintMs() folded
 * into its poll timeout.
 */

#ifndef DCG_SERVE_PEERLINK_HH
#define DCG_SERVE_PEERLINK_HH

#include <poll.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_annotations.hh"
#include "serve/endpoint.hh"
#include "serve/json.hh"

namespace dcg::serve {

/** Outcome of one multiplexed request. */
struct PeerReply
{
    bool transportOk = false;  ///< a parsed response arrived
    JsonValue resp;            ///< the response (when transportOk)
    std::string error;         ///< transport failure otherwise
};

using PeerCompletion = std::function<void(PeerReply)>;

class PeerPool
{
  public:
    struct Options
    {
        /** Per-request deadline and per-socket-op bound for the
         *  legacy one-shot path (0 = none). */
        unsigned peerTimeoutMs = 0;
        /** Bound on connection establishment. 0 derives it from
         *  peerTimeoutMs, falling back to 10s — a blackholed peer
         *  must never pin a request for the kernel default. */
        unsigned connectTimeoutMs = 0;
        /** Called (from any thread) when the owner loop must wake to
         *  process injected work or legacy completions. */
        std::function<void()> wake;
    };

    PeerPool(std::vector<Endpoint> peers, Options options);
    ~PeerPool();

    PeerPool(const PeerPool &) = delete;
    PeerPool &operator=(const PeerPool &) = delete;

    /// @name Owner-thread request surface
    /// @{
    /** Issue @p req to peer @p idx; @p cb runs on the owner thread
     *  with the rid-matched response or a transport failure. */
    void call(std::size_t idx, JsonValue req, PeerCompletion cb)
        DCG_OWNER_THREAD;

    /**
     * Append a peer (elastic membership: a node joining the ring gets
     * a link slot without rebuilding the pool — in-flight requests
     * and their completions are untouched). Returns the peer's index;
     * an endpoint already present returns its existing index. The
     * link table is a deque and every loop over it is index-based, so
     * growing it from a completion callback is safe.
     */
    std::size_t addPeer(const Endpoint &ep) DCG_OWNER_THREAD;

    /** Establish (or confirm) the TCP link to @p idx without sending
     *  a frame; @p cb gets transportOk on success. */
    void connectAsync(std::size_t idx, PeerCompletion cb)
        DCG_OWNER_THREAD;

    /** Run @p fn on the owner thread after @p delayMs. */
    void schedule(unsigned delayMs, std::function<void()> fn)
        DCG_OWNER_THREAD;
    /// @}

    /// @name Any-thread injection surface
    /// @{
    /** Thread-safe call(): enqueues and wakes the owner loop. Safe
     *  from the owner thread too (runs on the next runDue()). */
    void post(std::size_t idx, JsonValue req, PeerCompletion cb)
        DCG_ANY_THREAD;

    /** Blocking request from a NON-owner thread: post() + wait.
     *  False + @p err on transport failure or pool shutdown. */
    bool callSync(std::size_t idx, const JsonValue &req,
                  JsonValue &resp, std::string &err) DCG_ANY_THREAD;

    /** Blocking connect probe from a NON-owner thread. */
    bool connectSync(std::size_t idx, std::string &err) DCG_ANY_THREAD;
    /// @}

    /// @name Owner-loop driving surface
    /// @{
    void appendPollFds(std::vector<pollfd> &fds) const
        DCG_OWNER_THREAD;
    void dispatch(const pollfd *fds, std::size_t n) DCG_OWNER_THREAD;
    /** Injected work, due timers, expired deadlines, reconnects,
     *  legacy completions. Call once per loop iteration. */
    void runDue() DCG_OWNER_THREAD;
    /** ms until the next deadline/timer (-1 = nothing scheduled). */
    int timeoutHintMs() const DCG_OWNER_THREAD;
    /** No request in flight anywhere (links, injection, legacy). */
    bool idle() const DCG_OWNER_THREAD;
    /** Fail everything outstanding, close links, stop the legacy
     *  executor. Further post()/callSync() fail fast. Idempotent. */
    void shutdown() DCG_OWNER_THREAD;
    /// @}

    /** The owner loop is live between markRunning() and shutdown() —
     *  callSync() from other threads requires it. */
    void markRunning() DCG_ANY_THREAD
    {
        running_.store(true, std::memory_order_release);
    }
    bool isRunning() const DCG_ANY_THREAD
    {
        return running_.load(std::memory_order_acquire);
    }

    /** Owner-thread: addPeer() can grow the table concurrently. */
    std::size_t peerCount() const DCG_OWNER_THREAD
    {
        return endpoints.size();
    }

    /// @name Counters (any thread)
    /// @{
    std::uint64_t requestsSent() const DCG_ANY_THREAD
    {
        return requests_.load();
    }
    std::uint64_t linkDeaths() const DCG_ANY_THREAD
    {
        return linkDeaths_.load();
    }
    std::uint64_t reconnects() const DCG_ANY_THREAD
    {
        return reconnects_.load();
    }
    std::uint64_t legacyFallbacks() const DCG_ANY_THREAD
    {
        return legacyFallbacks_.load();
    }
    /// @}

  private:
    struct Pending
    {
        PeerCompletion cb;
        JsonValue req;  ///< kept for legacy replay on downgrade
        std::chrono::steady_clock::time_point deadline{};
        bool hasDeadline = false;
    };

    struct Link
    {
        enum class State { Down, Connecting, Up };

        Endpoint ep;
        std::size_t idx = 0;  ///< position in links/endpoints
        int fd = -1;
        State state = State::Down;
        bool legacy = false;       ///< peer speaks <= v3: one-shots
        bool v4Confirmed = false;  ///< saw a rid-echoing response
        bool everConnected = false;
        std::string out;  ///< bytes awaiting the socket
        std::string in;   ///< partial response line
        std::map<std::uint64_t, Pending> pending;  ///< rid -> request
        /** Send order, kept until v4 is confirmed: a rid-less
         *  response (a pre-v4 peer answering in order) matches the
         *  oldest in-flight request. */
        std::deque<std::uint64_t> fifo;
        struct Queued
        {
            std::uint64_t rid;
            std::string line;
        };
        std::deque<Queued> waitq;  ///< serialized, awaiting connect
        std::chrono::steady_clock::time_point connectDeadline{};
        unsigned backoffMs = 0;
        bool retryArmed = false;
        std::chrono::steady_clock::time_point retryAt{};
        std::vector<PeerCompletion> connectWaiters;
    };

    struct Injected
    {
        std::size_t idx = 0;
        JsonValue req;
        PeerCompletion cb;
        bool connectProbe = false;
    };

    struct LegacyTask
    {
        /** Captured at enqueue: the legacy thread must not read the
         *  endpoint table the owner thread may be growing. */
        Endpoint ep;
        std::uint64_t rid = 0;
        JsonValue req;
    };

    struct Timer
    {
        std::chrono::steady_clock::time_point when;
        std::function<void()> fn;
    };

    void wakeOwner();
    void maybeConnect(Link &link);
    void startConnect(Link &link);
    void onConnected(Link &link);
    void failConnect(Link &link, const std::string &why);
    void linkDeath(Link &link, const std::string &why);
    void armBackoff(Link &link);
    void failAllPending(Link &link, const std::string &err);
    void flushOut(Link &link);
    void readLink(Link &link);
    void handleResponse(Link &link, const std::string &line);
    void downgradeToLegacy(Link &link);
    void toLegacy(std::size_t idx, std::uint64_t rid, JsonValue req,
                  PeerCompletion cb);
    void legacyLoop();
    PeerReply runLegacy(const LegacyTask &task);
    void deliverLegacyDone();
    unsigned connectTimeoutMs() const;

    std::vector<Endpoint> endpoints;
    Options opts;
    /** Index-aligned with endpoints. A deque so addPeer() growth
     *  never invalidates a Link reference held across a callback. */
    std::deque<Link> links;
    std::uint64_t nextRid = 1;
    std::vector<Timer> timers;

    mutable std::mutex injectMutex;
    std::vector<Injected> injected DCG_GUARDED_BY(injectMutex);

    std::mutex legacyMutex;
    std::condition_variable legacyCv;
    std::deque<LegacyTask> legacyQueue DCG_GUARDED_BY(legacyMutex);
    bool legacyStop DCG_GUARDED_BY(legacyMutex) = false;
    std::thread legacyThread;             ///< started lazily
    std::map<std::uint64_t, PeerCompletion> legacyPending;  ///< owner
    mutable std::mutex legacyDoneMutex;
    std::vector<std::pair<std::uint64_t, PeerReply>> legacyDone
        DCG_GUARDED_BY(legacyDoneMutex);

    std::atomic<bool> running_{false};
    std::atomic<bool> closed_{false};
    bool shutdownDone = false;

    std::atomic<std::uint64_t> requests_{0};
    std::atomic<std::uint64_t> linkDeaths_{0};
    std::atomic<std::uint64_t> reconnects_{0};
    std::atomic<std::uint64_t> legacyFallbacks_{0};
};

/**
 * LinkLoop: a PeerPool plus the thread that drives it — the client-
 * side arrangement, where no event loop exists to own the pool.
 * start() spawns the loop; every pool interaction from other threads
 * goes through post()/callSync(). stop() (and the destructor) shuts
 * the pool down, failing anything still in flight.
 */
class LinkLoop
{
  public:
    LinkLoop(std::vector<Endpoint> peers, unsigned peerTimeoutMs);
    ~LinkLoop();

    LinkLoop(const LinkLoop &) = delete;
    LinkLoop &operator=(const LinkLoop &) = delete;

    void start() DCG_ANY_THREAD;
    void stop() DCG_ANY_THREAD;
    bool started() const DCG_ANY_THREAD { return thread.joinable(); }

    PeerPool &pool() DCG_ANY_THREAD { return *pool_; }

  private:
    void loop() DCG_OWNER_THREAD;

    int wakePipe[2] = {-1, -1};
    std::atomic<bool> stopFlag{false};
    std::unique_ptr<PeerPool> pool_;
    std::thread thread;
};

/**
 * The peer-exchange seam ReplicatedStore talks through: one blocking
 * request/response with peer @p idx. Lets replication ride the
 * multiplexed links when a server event loop is running, and plain
 * one-shot connections otherwise (unit tests, post-drain flushes).
 */
class PeerTransport
{
  public:
    virtual ~PeerTransport() = default;

    /** False + @p err on transport failure; protocol-level errors
     *  come back as parsed {"ok":false,...} responses. */
    virtual bool call(std::size_t idx, const JsonValue &req,
                      JsonValue &resp, std::string &err)
        DCG_ANY_THREAD = 0;

    /** Elastic membership: extend the index space with a new peer.
     *  Default no-op so transport fakes in tests stay two-liners. */
    virtual void addPeer(const Endpoint &ep) DCG_ANY_THREAD
    {
        (void)ep;
    }
};

/** One-shot blocking connections (the pre-mux wire behaviour). */
class DirectPeerTransport : public PeerTransport
{
  public:
    DirectPeerTransport(std::vector<Endpoint> peers,
                        unsigned timeoutMs);
    bool call(std::size_t idx, const JsonValue &req, JsonValue &resp,
              std::string &err) override DCG_ANY_THREAD;
    void addPeer(const Endpoint &ep) override DCG_ANY_THREAD;

  private:
    mutable std::mutex epMutex;  ///< addPeer() races call()
    std::vector<Endpoint> endpoints DCG_GUARDED_BY(epMutex);
    unsigned timeoutMs;
};

/**
 * Multiplexed transport: callSync() through @p pool while its owner
 * loop runs, falling back to one-shot connections before run() and
 * after shutdown — so drain-time replica flushes still land.
 */
class PoolPeerTransport : public PeerTransport
{
  public:
    PoolPeerTransport(PeerPool *pool, std::vector<Endpoint> peers,
                      unsigned timeoutMs);
    bool call(std::size_t idx, const JsonValue &req, JsonValue &resp,
              std::string &err) override DCG_ANY_THREAD;

    /** Extends only the one-shot fallback: the pool itself is grown
     *  by its owner thread (Server::installEpoch → PeerPool::addPeer),
     *  never through this any-thread seam. */
    void addPeer(const Endpoint &ep) override DCG_ANY_THREAD;

  private:
    PeerPool *pool;
    DirectPeerTransport direct;
};

} // namespace dcg::serve

#endif // DCG_SERVE_PEERLINK_HH
