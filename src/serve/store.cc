#include "serve/store.hh"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>

#include "common/log.hh"
#include "serve/json.hh"
#include "sim/report.hh"

namespace fs = std::filesystem;

namespace dcg::serve {

namespace {

constexpr int kStoreFormatVersion = 1;

std::uint64_t
fnv1a(const std::string &s, std::uint64_t h)
{
    for (unsigned char c : s) {
        h ^= c;
        h *= 0x100000001b3ULL;
    }
    return h;
}

/**
 * 128 bits of FNV-1a (two independent offset bases) keep accidental
 * collisions out of reach for any realistic sweep; a real collision
 * is still caught by the key stored inside the record.
 */
std::string
recordName(const std::string &key)
{
    const std::uint64_t a = fnv1a(key, 0xcbf29ce484222325ULL);
    const std::uint64_t b = fnv1a(key, 0x84222325cbf29ce4ULL);
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%016llx%016llx.json",
                  static_cast<unsigned long long>(a),
                  static_cast<unsigned long long>(b));
    return buf;
}

} // namespace

ResultStore::ResultStore(const std::string &directory)
    : dir(directory)
{
    std::error_code ec;
    fs::create_directories(dir, ec);
    if (ec)
        fatal("result store: cannot create directory '", dir, "': ",
              ec.message());
    for (const auto &entry : fs::directory_iterator(dir, ec)) {
        if (entry.is_regular_file() &&
            entry.path().extension() == ".json")
            index.insert(entry.path().filename().string());
    }
    if (ec)
        warn("result store: cannot index '", dir, "': ", ec.message());
}

std::string
ResultStore::recordPath(const std::string &key) const
{
    return (fs::path(dir) / recordName(key)).string();
}

std::size_t
ResultStore::size() const
{
    std::lock_guard<std::mutex> lk(indexMutex);
    return index.size();
}

bool
ResultStore::get(const std::string &key, RunResult &out)
{
    std::ifstream is(recordPath(key));
    if (!is)
        return false;

    // Header line: {"dcg_store": 1, "key": "..."}.
    std::string header;
    if (!std::getline(is, header)) {
        ++corrupt;
        return false;
    }
    JsonValue h;
    std::string err;
    if (!JsonValue::parse(header, h, err) || !h.isObject() ||
        h.get("dcg_store").asI64(-1) != kStoreFormatVersion ||
        h.get("key").asString() != key) {
        ++corrupt;
        return false;
    }

    // Body: the standard one-result JSON array. Any truncation or
    // damage is a miss; the caller re-simulates and put() repairs.
    std::vector<RunResult> results;
    if (!tryReadResultsJson(is, results, &err) || results.size() != 1) {
        ++corrupt;
        return false;
    }
    out = std::move(results.front());
    return true;
}

void
ResultStore::put(const std::string &key, const RunResult &r)
{
    const std::string name = recordName(key);
    const fs::path final_path = fs::path(dir) / name;
    const fs::path tmp_path =
        final_path.string() + ".tmp." +
        std::to_string(tmpCounter.fetch_add(1));

    {
        std::ofstream os(tmp_path);
        if (!os) {
            warn("result store: cannot write '", tmp_path.string(),
                 "'; result not persisted");
            return;
        }
        JsonValue header = JsonValue::object();
        header.set("dcg_store", JsonValue::integer(
            static_cast<std::int64_t>(kStoreFormatVersion)));
        header.set("key", JsonValue::string(key));
        os << header.dump() << '\n';
        writeResultsJson({r}, os);
        os.flush();
        if (!os) {
            warn("result store: short write to '", tmp_path.string(),
                 "'; result not persisted");
            std::error_code ec;
            fs::remove(tmp_path, ec);
            return;
        }
    }

    std::error_code ec;
    fs::rename(tmp_path, final_path, ec);
    if (ec) {
        warn("result store: cannot rename '", tmp_path.string(),
             "' into place: ", ec.message());
        fs::remove(tmp_path, ec);
        return;
    }

    std::lock_guard<std::mutex> lk(indexMutex);
    index.insert(name);
}

} // namespace dcg::serve
