#include "serve/store.hh"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>
#include <vector>

#include "common/log.hh"
#include "serve/json.hh"
#include "sim/report.hh"

namespace fs = std::filesystem;

namespace dcg::serve {

namespace {

constexpr int kStoreFormatVersion = 1;
constexpr const char *kManifestName = "manifest.json";

std::uint64_t
fnv1a(const std::string &s, std::uint64_t h)
{
    for (unsigned char c : s) {
        h ^= c;
        h *= 0x100000001b3ULL;
    }
    return h;
}

/**
 * 128 bits of FNV-1a (two independent offset bases) keep accidental
 * collisions out of reach for any realistic sweep; a real collision
 * is still caught by the key stored inside the record.
 */
std::string
recordName(const std::string &key)
{
    const std::uint64_t a = fnv1a(key, 0xcbf29ce484222325ULL);
    const std::uint64_t b = fnv1a(key, 0x84222325cbf29ce4ULL);
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%016llx%016llx.json",
                  static_cast<unsigned long long>(a),
                  static_cast<unsigned long long>(b));
    return buf;
}

/** A leftover from an interrupted put(): "<record>.json.tmp.<n>". */
bool
isStaleTmp(const std::string &name)
{
    return name.find(".tmp.") != std::string::npos;
}

/**
 * Full validation of one record file: header line parses, format
 * version matches, the stored key hashes to this very file name, and
 * the body is exactly one readable RunResult.
 */
bool
validRecordFile(const fs::path &path)
{
    std::ifstream is(path);
    if (!is)
        return false;
    std::string header;
    if (!std::getline(is, header))
        return false;
    JsonValue h;
    std::string err;
    if (!JsonValue::parse(header, h, err) || !h.isObject() ||
        h.get("dcg_store").asI64(-1) != kStoreFormatVersion)
        return false;
    const std::string &key = h.get("key").asString();
    if (key.empty() || recordName(key) != path.filename().string())
        return false;
    std::vector<RunResult> results;
    return tryReadResultsJson(is, results, &err) && results.size() == 1;
}

} // namespace

ResultStore::ResultStore(const std::string &directory)
    : dir(directory)
{
    std::error_code ec;
    fs::create_directories(dir, ec);
    if (ec)
        fatal("result store: cannot create directory '", dir, "': ",
              ec.message());

    // Index the surviving records, seeding last-access order from
    // file mtimes so a restarted service evicts the same "oldest
    // first" a long-running one would.
    struct Found
    {
        std::string name;
        std::uint64_t bytes = 0;
        fs::file_time_type mtime;
    };
    std::vector<Found> found;
    for (const auto &entry : fs::directory_iterator(dir, ec)) {
        if (!entry.is_regular_file() ||
            entry.path().extension() != ".json" ||
            entry.path().filename() == kManifestName ||
            isStaleTmp(entry.path().filename().string()))
            continue;
        Found f;
        f.name = entry.path().filename().string();
        std::error_code fec;
        f.bytes = entry.file_size(fec);
        f.mtime = entry.last_write_time(fec);
        found.push_back(std::move(f));
    }
    if (ec)
        warn("result store: cannot index '", dir, "': ", ec.message());

    std::sort(found.begin(), found.end(),
              [](const Found &a, const Found &b) {
                  return a.mtime != b.mtime ? a.mtime < b.mtime
                                            : a.name < b.name;
              });
    for (const Found &f : found) {
        index.emplace(f.name, Rec{f.bytes, ++useClock});
        totalBytes += f.bytes;
    }
}

std::string
ResultStore::recordPath(const std::string &key) const
{
    return (fs::path(dir) / recordName(key)).string();
}

std::size_t
ResultStore::entries() const
{
    std::lock_guard<std::mutex> lk(indexMutex);
    return index.size();
}

std::uint64_t
ResultStore::bytes() const
{
    std::lock_guard<std::mutex> lk(indexMutex);
    return totalBytes;
}

void
ResultStore::setBudgetBytes(std::uint64_t b)
{
    std::size_t dropped = 0;
    {
        std::lock_guard<std::mutex> lk(indexMutex);
        budget = b;
        if (budget)
            dropped = evictLocked(budget, "");
    }
    if (dropped)
        inform("result store: budget ", b, " B evicted ", dropped,
               " record(s)");
}

std::uint64_t
ResultStore::budgetBytes() const
{
    std::lock_guard<std::mutex> lk(indexMutex);
    return budget;
}

bool
ResultStore::get(const std::string &key, RunResult &out)
{
    std::ifstream is(recordPath(key));
    if (!is)
        return false;

    // Header line: {"dcg_store": 1, "key": "..."}.
    std::string header;
    if (!std::getline(is, header)) {
        ++corrupt;
        return false;
    }
    JsonValue h;
    std::string err;
    if (!JsonValue::parse(header, h, err) || !h.isObject() ||
        h.get("dcg_store").asI64(-1) != kStoreFormatVersion ||
        h.get("key").asString() != key) {
        ++corrupt;
        return false;
    }

    // Body: the standard one-result JSON array. Any truncation or
    // damage is a miss; the caller re-simulates and put() repairs.
    std::vector<RunResult> results;
    if (!tryReadResultsJson(is, results, &err) || results.size() != 1) {
        ++corrupt;
        return false;
    }
    out = std::move(results.front());

    std::lock_guard<std::mutex> lk(indexMutex);
    auto it = index.find(recordName(key));
    if (it != index.end())
        it->second.lastUse = ++useClock;
    return true;
}

void
ResultStore::put(const std::string &key, const RunResult &r)
{
    putRecord(key, r, false);
}

void
ResultStore::putReplica(const std::string &key, const RunResult &r)
{
    ++replicas;
    putRecord(key, r, true);
}

bool
ResultStore::recordIsReplica(const std::string &key) const
{
    std::ifstream is(recordPath(key));
    std::string header;
    if (!is || !std::getline(is, header))
        return false;
    JsonValue h;
    std::string err;
    return JsonValue::parse(header, h, err) && h.isObject() &&
           h.get("replica").asBool(false);
}

void
ResultStore::putRecord(const std::string &key, const RunResult &r,
                       bool replica)
{
    const std::string name = recordName(key);
    const fs::path final_path = fs::path(dir) / name;
    const fs::path tmp_path =
        final_path.string() + ".tmp." +
        std::to_string(tmpCounter.fetch_add(1));

    {
        std::ofstream os(tmp_path);
        if (!os) {
            warn("result store: cannot write '", tmp_path.string(),
                 "'; result not persisted");
            return;
        }
        JsonValue header = JsonValue::object();
        header.set("dcg_store", JsonValue::integer(
            static_cast<std::int64_t>(kStoreFormatVersion)));
        header.set("key", JsonValue::string(key));
        if (replica)
            header.set("replica", JsonValue::boolean(true));
        os << header.dump() << '\n';
        writeResultsJson({r}, os);
        os.flush();
        if (!os) {
            warn("result store: short write to '", tmp_path.string(),
                 "'; result not persisted");
            std::error_code ec;
            fs::remove(tmp_path, ec);
            return;
        }
    }

    std::error_code ec;
    const std::uint64_t written = fs::file_size(tmp_path, ec);
    std::error_code rec;
    fs::rename(tmp_path, final_path, rec);
    if (rec) {
        warn("result store: cannot rename '", tmp_path.string(),
             "' into place: ", rec.message());
        fs::remove(tmp_path, rec);
        return;
    }

    std::lock_guard<std::mutex> lk(indexMutex);
    auto [it, inserted] = index.emplace(name, Rec{});
    if (!inserted)
        totalBytes -= std::min(totalBytes, it->second.bytes);
    it->second.bytes = ec ? 0 : written;
    it->second.lastUse = ++useClock;
    totalBytes += it->second.bytes;
    if (budget && totalBytes > budget)
        evictLocked(budget, name);
}

std::vector<std::string>
ResultStore::keys() const
{
    std::vector<std::string> names;
    {
        std::lock_guard<std::mutex> lk(indexMutex);
        names.reserve(index.size());
        for (const auto &[name, rec] : index)
            names.push_back(name);
    }

    std::vector<std::string> out;
    out.reserve(names.size());
    for (const std::string &name : names) {
        std::ifstream is(fs::path(dir) / name);
        std::string header;
        if (!is || !std::getline(is, header))
            continue;  // evicted/compacted away mid-scan
        JsonValue h;
        std::string err;
        if (!JsonValue::parse(header, h, err) || !h.isObject() ||
            h.get("dcg_store").asI64(-1) != kStoreFormatVersion)
            continue;
        std::string key = h.get("key").asString();
        if (!key.empty())
            out.push_back(std::move(key));
    }
    return out;
}

std::size_t
ResultStore::evictLocked(std::uint64_t target, const std::string &keep)
{
    std::size_t dropped = 0;
    while (totalBytes > target) {
        auto victim = index.end();
        for (auto it = index.begin(); it != index.end(); ++it) {
            if (it->first == keep)
                continue;
            if (victim == index.end() ||
                it->second.lastUse < victim->second.lastUse)
                victim = it;
        }
        if (victim == index.end())
            break;  // nothing evictable (at most the kept record)
        std::error_code ec;
        fs::remove(fs::path(dir) / victim->first, ec);
        if (ec)
            warn("result store: cannot evict '", victim->first, "': ",
                 ec.message());
        totalBytes -= std::min(totalBytes, victim->second.bytes);
        index.erase(victim);
        ++dropped;
        ++evicted;
    }
    return dropped;
}

std::size_t
ResultStore::evictTo(std::uint64_t budgetBytes)
{
    std::lock_guard<std::mutex> lk(indexMutex);
    return evictLocked(budgetBytes, "");
}

void
ResultStore::writeManifestLocked() const
{
    const fs::path final_path = fs::path(dir) / kManifestName;
    const fs::path tmp_path = final_path.string() + ".tmp.m";
    {
        std::ofstream os(tmp_path);
        if (!os)
            return;  // purely advisory; the scan remains authoritative
        JsonValue m = JsonValue::object();
        m.set("dcg_store_manifest", JsonValue::integer(
            static_cast<std::int64_t>(kStoreFormatVersion)));
        m.set("records",
              JsonValue::integer(std::uint64_t{index.size()}));
        m.set("bytes", JsonValue::integer(totalBytes));
        m.set("compactions", JsonValue::integer(compactPasses.load()));
        os << m.dump() << '\n';
    }
    std::error_code ec;
    fs::rename(tmp_path, final_path, ec);
    if (ec)
        fs::remove(tmp_path, ec);
}

std::size_t
ResultStore::compact()
{
    std::lock_guard<std::mutex> lk(indexMutex);

    std::size_t removed = 0;
    std::unordered_map<std::string, Rec> fresh;
    std::uint64_t freshBytes = 0;
    std::error_code ec;
    for (const auto &entry : fs::directory_iterator(dir, ec)) {
        if (!entry.is_regular_file())
            continue;
        const std::string name = entry.path().filename().string();
        if (name == kManifestName)
            continue;
        // Interrupted-write leftovers are always garbage: a completed
        // put() renames its tmp file away.
        if (isStaleTmp(name)) {
            std::error_code fec;
            fs::remove(entry.path(), fec);
            ++removed;
            continue;
        }
        if (entry.path().extension() != ".json")
            continue;
        if (!validRecordFile(entry.path())) {
            std::error_code fec;
            fs::remove(entry.path(), fec);
            ++removed;
            ++corrupt;
            continue;
        }
        std::error_code fec;
        Rec rec;
        rec.bytes = entry.file_size(fec);
        auto it = index.find(name);
        rec.lastUse = it != index.end() ? it->second.lastUse
                                        : ++useClock;
        freshBytes += rec.bytes;
        fresh.emplace(name, rec);
    }
    if (ec) {
        warn("result store: compaction scan of '", dir,
             "' failed: ", ec.message());
        return removed;
    }

    index = std::move(fresh);
    totalBytes = freshBytes;
    ++compactPasses;
    if (budget)
        removed += evictLocked(budget, "");
    writeManifestLocked();
    return removed;
}

} // namespace dcg::serve
