#include "serve/replication.hh"

#include <algorithm>
#include <utility>

#include "common/log.hh"
#include "serve/protocol.hh"

namespace dcg::serve {

ReplicatedStore::ReplicatedStore(std::shared_ptr<ResultStore> localStore,
                                 std::vector<Endpoint> nodeList,
                                 std::size_t selfIndex,
                                 unsigned replicaCount,
                                 unsigned peerTimeoutMs,
                                 std::shared_ptr<PeerTransport> peerTx)
    : local(std::move(localStore)), nodes(std::move(nodeList)),
      selfIdx(selfIndex), timeoutMs(peerTimeoutMs),
      transport(std::move(peerTx))
{
    if (!local)
        fatal("replication: no local store to decorate");
    if (nodes.empty() || selfIdx >= nodes.size())
        fatal("replication: self index ", selfIdx,
              " outside a cluster of ", nodes.size(), " node(s)");
    k = static_cast<unsigned>(std::min<std::size_t>(
        std::max(replicaCount, 1u), nodes.size()));
    ring = HashRing(endpointStrings(nodes));
    if (!transport)
        transport = std::make_shared<DirectPeerTransport>(nodes,
                                                          timeoutMs);
    replicator = std::thread([this] { replicatorLoop(); });
}

ReplicatedStore::~ReplicatedStore()
{
    {
        std::lock_guard<std::mutex> lk(qMutex);
        stopping = true;
    }
    qCv.notify_all();
    if (replicator.joinable())
        replicator.join();
}

std::vector<std::size_t>
ReplicatedStore::holdersFor(const std::string &key) const
{
    return ring.ownerIndices(key, k.load());
}

void
ReplicatedStore::setEpochViews(const EpochView &cur,
                               const EpochView &prev, unsigned replicas)
{
    if (!cur.valid())
        fatal("replication: cannot install an empty current epoch");
    {
        std::lock_guard<std::mutex> lk(viewMutex);
        useViews = true;
        curView = cur;
        prevView = prev;
        viewReps = std::max(replicas, 1u);
        k = static_cast<unsigned>(std::min<std::size_t>(
            viewReps, cur.members.size()));
    }
}

bool
ReplicatedStore::fetchFrom(std::size_t idx, const JsonValue &req,
                           const std::string &key, RunResult &out)
{
    JsonValue resp;
    std::string err;
    if (!transport->call(idx, req, resp, err))
        return false;
    if (!resp.get("ok").asBool(false))
        return false;
    std::vector<RunResult> one;
    if (!resultsFromJson(resp.get("result"), one, err) ||
        one.size() != 1)
        return false;
    out = std::move(one.front());
    local->putReplica(key, out);
    return true;
}

bool
ReplicatedStore::get(const std::string &key, RunResult &out)
{
    if (local->get(key, out))
        return true;

    // Snapshot the routing state: either the installed epoch views or
    // the fixed construction-time ring (pre-v5 behaviour).
    bool views;
    EpochView cur, prev;
    unsigned reps;
    {
        std::lock_guard<std::mutex> lk(viewMutex);
        views = useViews;
        if (views) {
            cur = curView;
            prev = prevView;
        }
        reps = viewReps;
    }

    std::vector<std::size_t> curHolders, prevHolders;
    if (views) {
        curHolders = cur.holders(
            key, std::min<std::size_t>(reps, cur.members.size()));
        if (prev.valid())
            prevHolders = prev.holders(
                key, std::min<std::size_t>(reps, prev.members.size()));
    } else {
        if (k.load() <= 1)
            return false;
        curHolders = holdersFor(key);
    }

    // Only a holder (under either epoch) pulls from peers; everyone
    // else misses locally and lets the owner do the work.
    const bool selfInCur = std::find(curHolders.begin(),
                                     curHolders.end(),
                                     selfIdx) != curHolders.end();
    const bool selfInPrev = std::find(prevHolders.begin(),
                                      prevHolders.end(),
                                      selfIdx) != prevHolders.end();
    if (!selfInCur && !selfInPrev)
        return false;

    const JsonValue req = fetchRequest(key);

    // Current-epoch siblings first: ordinary read-repair.
    for (std::size_t idx : curHolders) {
        if (idx == selfIdx)
            continue;
        if (fetchFrom(idx, req, key, out)) {
            ++repaired;
            return true;
        }
    }

    // Then the previous epoch's holders: the handoff leg. The record
    // may still live only where the old ring placed it.
    for (std::size_t idx : prevHolders) {
        if (idx == selfIdx ||
            std::find(curHolders.begin(), curHolders.end(), idx) !=
                curHolders.end())
            continue;
        if (fetchFrom(idx, req, key, out)) {
            ++handoffs;
            return true;
        }
    }
    ++misses;
    return false;
}

void
ReplicatedStore::put(const std::string &key, const RunResult &r)
{
    local->put(key, r);

    bool views;
    EpochView cur;
    unsigned reps;
    {
        std::lock_guard<std::mutex> lk(viewMutex);
        views = useViews;
        if (views)
            cur = curView;
        reps = viewReps;
    }

    Task t;
    t.key = key;
    if (views) {
        // Fan out to the current epoch's holders — including the new
        // owner of a key this node only serves under the previous
        // epoch, which doubles as an eager handoff of fresh results.
        const auto holders = cur.holders(
            key, std::min<std::size_t>(reps, cur.members.size()));
        for (std::size_t idx : holders)
            if (idx != selfIdx)
                t.targets.push_back(idx);
    } else {
        if (k.load() <= 1)
            return;
        for (std::size_t idx : holdersFor(key))
            if (idx != selfIdx)
                t.targets.push_back(idx);
    }
    t.result = r;
    if (t.targets.empty())
        return;
    {
        std::lock_guard<std::mutex> lk(qMutex);
        if (stopping)
            return;
        queue.push_back(std::move(t));
    }
    qCv.notify_all();
}

void
ReplicatedStore::flush()
{
    std::unique_lock<std::mutex> lk(qMutex);
    qCv.wait(lk, [this] { return queue.empty() && !busy; });
}

void
ReplicatedStore::replicatorLoop()
{
    std::unique_lock<std::mutex> lk(qMutex);
    for (;;) {
        qCv.wait(lk, [this] { return stopping || !queue.empty(); });
        if (queue.empty()) {
            // stopping with nothing left to push
            qCv.notify_all();
            return;
        }
        Task t = std::move(queue.front());
        queue.pop_front();
        busy = true;
        lk.unlock();
        pushOne(t);
        lk.lock();
        busy = false;
        if (queue.empty())
            qCv.notify_all();  // wake flush()ers
    }
}

void
ReplicatedStore::pushOne(const Task &t)
{
    const JsonValue req = replicateRequest(t.key, t.result);
    for (std::size_t idx : t.targets) {
        JsonValue resp;
        std::string err;
        if (transport->call(idx, req, resp, err) &&
            resp.get("ok").asBool(false)) {
            ++pushed;
        } else {
            ++pushFailed;
        }
    }
}

} // namespace dcg::serve
