#include "serve/replication.hh"

#include <algorithm>
#include <utility>

#include "common/log.hh"
#include "serve/protocol.hh"

namespace dcg::serve {

ReplicatedStore::ReplicatedStore(std::shared_ptr<ResultStore> localStore,
                                 std::vector<Endpoint> nodeList,
                                 std::size_t selfIndex,
                                 unsigned replicaCount,
                                 unsigned peerTimeoutMs,
                                 std::shared_ptr<PeerTransport> peerTx)
    : local(std::move(localStore)), nodes(std::move(nodeList)),
      selfIdx(selfIndex), timeoutMs(peerTimeoutMs),
      transport(std::move(peerTx))
{
    if (!local)
        fatal("replication: no local store to decorate");
    if (nodes.empty() || selfIdx >= nodes.size())
        fatal("replication: self index ", selfIdx,
              " outside a cluster of ", nodes.size(), " node(s)");
    k = static_cast<unsigned>(std::min<std::size_t>(
        std::max(replicaCount, 1u), nodes.size()));
    ring = HashRing(endpointStrings(nodes));
    if (!transport)
        transport = std::make_shared<DirectPeerTransport>(nodes,
                                                          timeoutMs);
    replicator = std::thread([this] { replicatorLoop(); });
}

ReplicatedStore::~ReplicatedStore()
{
    {
        std::lock_guard<std::mutex> lk(qMutex);
        stopping = true;
    }
    qCv.notify_all();
    if (replicator.joinable())
        replicator.join();
}

std::vector<std::size_t>
ReplicatedStore::holdersFor(const std::string &key) const
{
    return ring.ownerIndices(key, k);
}

bool
ReplicatedStore::get(const std::string &key, RunResult &out)
{
    if (local->get(key, out))
        return true;
    if (k <= 1)
        return false;

    // Local miss: if we are one of the key's holders, a sibling may
    // still have the record — pull it and repair our copy.
    const std::vector<std::size_t> holders = holdersFor(key);
    if (std::find(holders.begin(), holders.end(), selfIdx) ==
        holders.end())
        return false;

    const JsonValue req = fetchRequest(key);
    for (std::size_t idx : holders) {
        if (idx == selfIdx)
            continue;
        JsonValue resp;
        std::string err;
        if (!transport->call(idx, req, resp, err))
            continue;
        if (!resp.get("ok").asBool(false))
            continue;
        std::vector<RunResult> one;
        if (!resultsFromJson(resp.get("result"), one, err) ||
            one.size() != 1)
            continue;
        out = std::move(one.front());
        local->putReplica(key, out);
        ++repaired;
        return true;
    }
    ++misses;
    return false;
}

void
ReplicatedStore::put(const std::string &key, const RunResult &r)
{
    local->put(key, r);
    if (k <= 1)
        return;

    Task t;
    t.key = key;
    t.result = r;
    for (std::size_t idx : holdersFor(key))
        if (idx != selfIdx)
            t.targets.push_back(idx);
    if (t.targets.empty())
        return;
    {
        std::lock_guard<std::mutex> lk(qMutex);
        if (stopping)
            return;
        queue.push_back(std::move(t));
    }
    qCv.notify_all();
}

void
ReplicatedStore::flush()
{
    std::unique_lock<std::mutex> lk(qMutex);
    qCv.wait(lk, [this] { return queue.empty() && !busy; });
}

void
ReplicatedStore::replicatorLoop()
{
    std::unique_lock<std::mutex> lk(qMutex);
    for (;;) {
        qCv.wait(lk, [this] { return stopping || !queue.empty(); });
        if (queue.empty()) {
            // stopping with nothing left to push
            qCv.notify_all();
            return;
        }
        Task t = std::move(queue.front());
        queue.pop_front();
        busy = true;
        lk.unlock();
        pushOne(t);
        lk.lock();
        busy = false;
        if (queue.empty())
            qCv.notify_all();  // wake flush()ers
    }
}

void
ReplicatedStore::pushOne(const Task &t)
{
    const JsonValue req = replicateRequest(t.key, t.result);
    for (std::size_t idx : t.targets) {
        JsonValue resp;
        std::string err;
        if (transport->call(idx, req, resp, err) &&
            resp.get("ok").asBool(false)) {
            ++pushed;
        } else {
            ++pushFailed;
        }
    }
}

} // namespace dcg::serve
