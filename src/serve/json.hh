/**
 * @file
 * Minimal JSON value model for the service protocol and the result
 * store's record headers.
 *
 * Unlike the writer/parser pair in sim/report.hh (which is specialised
 * to RunResult arrays and fatal()s on malformed input), this is a
 * general tree with *non-fatal* parsing: the server must survive a
 * garbage request line and the store must survive a truncated record.
 *
 * Numbers remember the exact source token (or the exact token they
 * were built from), and dump() re-emits it verbatim, so forwarding a
 * parsed value over the wire never perturbs a double that sim/report
 * wrote with max_digits10 — the bit-exact round-trip the `--server`
 * path relies on.
 *
 * Supported subset: objects, arrays, strings (with \uXXXX for the
 * BMP), numbers, booleans, null. Object member order is preserved.
 */

#ifndef DCG_SERVE_JSON_HH
#define DCG_SERVE_JSON_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace dcg::serve {

class JsonValue
{
  public:
    enum class Kind { Null, Bool, Number, String, Array, Object };

    using Member = std::pair<std::string, JsonValue>;

    JsonValue() = default;

    /// @name Construction
    /// @{
    static JsonValue null();
    static JsonValue boolean(bool b);
    static JsonValue number(double d);
    static JsonValue integer(std::int64_t v);
    static JsonValue integer(std::uint64_t v);
    static JsonValue string(std::string s);
    static JsonValue array();
    static JsonValue object();

    /**
     * Remember the exact source/wire token for a number so dump()
     * re-emits it verbatim (value-preserving forwarding).
     */
    void setRawToken(std::string tok);
    /// @}

    Kind kind() const { return k; }
    bool isNull() const { return k == Kind::Null; }
    bool isBool() const { return k == Kind::Bool; }
    bool isNumber() const { return k == Kind::Number; }
    bool isString() const { return k == Kind::String; }
    bool isArray() const { return k == Kind::Array; }
    bool isObject() const { return k == Kind::Object; }

    /// @name Accessors (return the default when the kind mismatches)
    /// @{
    bool asBool(bool def = false) const;
    double asNumber(double def = 0.0) const;
    /** Integer read from the raw token; def on overflow/mismatch. */
    std::uint64_t asU64(std::uint64_t def = 0) const;
    std::int64_t asI64(std::int64_t def = 0) const;
    const std::string &asString() const;  ///< empty for non-strings
    /// @}

    /// @name Array / object access
    /// @{
    std::vector<JsonValue> &items();            ///< array elements
    const std::vector<JsonValue> &items() const;
    std::vector<Member> &members();             ///< object members
    const std::vector<Member> &members() const;

    void push(JsonValue v);                        ///< append to array
    void set(const std::string &key, JsonValue v); ///< insert/replace
    bool has(const std::string &key) const;
    /** Member lookup; a shared Null value when absent / not object. */
    const JsonValue &get(const std::string &key) const;
    /// @}

    /** Serialise on a single line (newline-free; wire-safe). */
    std::string dump() const;

    /**
     * Parse @p text into @p out. Returns false (and sets @p err to a
     * one-line description) on malformed input; never terminates.
     * Trailing non-whitespace after the value is an error.
     */
    static bool parse(const std::string &text, JsonValue &out,
                      std::string &err);

    /** Escape + quote @p s as a JSON string literal. */
    static std::string encodeString(const std::string &s);

  private:
    Kind k = Kind::Null;
    bool b = false;
    double num = 0.0;
    std::string numRaw;  ///< exact token; empty = format from num
    std::string str;
    std::vector<JsonValue> arr;
    std::vector<Member> obj;

    void dumpTo(std::string &out) const;
};

} // namespace dcg::serve

#endif // DCG_SERVE_JSON_HH
