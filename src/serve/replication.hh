/**
 * @file
 * ReplicatedStore: the replication layer of a --replicas=k cluster,
 * slotted between the Engine and the node's local ResultStore as a
 * decorator — the Engine keeps calling plain get()/put() and never
 * learns that records now live on k ring successors.
 *
 * Write path (put): the record lands in the local store first,
 * synchronously — the caller's durability is never held hostage to a
 * peer — then a fan-out task is queued for the replicator thread,
 * which pushes a `replicate` op to each *other* holder
 * HashRing::owners() names for the key. Pushes are asynchronous and
 * best-effort: a dead follower costs a counter tick, not latency on
 * the submit path. Any holder that stores a freshly computed result
 * fans out (not just the primary); results are deterministic and
 * byte-identical, so concurrent fan-outs of the same key are
 * harmless last-write-wins of identical bytes.
 *
 * Read path (get): local store first. On a local miss — a cold
 * restart, an evicted record, a corrupt file — and only when this
 * node is one of the key's holders, the other holders are asked via
 * the `fetch` op; the first hit is written back locally as a replica
 * record (read-repair) and served. The Engine counts that as a
 * DiskHit, which is precisely what makes a node restarted with an
 * empty disk serve its keys with zero re-simulations as long as one
 * replica survives.
 *
 * Lifecycle calls (entries/bytes/evictTo/compact) pass straight
 * through to the local store: replica records are ordinary records
 * there, budgeted and compacted exactly once.
 *
 * Elastic membership (protocol v5): once the server installs epoch
 * views via setEpochViews(), routing switches from the fixed
 * construction-time ring to the current EpochView, and the read path
 * gains a *handoff* leg — on a local miss, after the current epoch's
 * sibling holders, the *previous* epoch's holders are asked too
 * (counted separately as handoff fetches). That leg is what lets a
 * node serve an arc it just inherited before the background rebalance
 * push has landed the record, which in turn is what makes a live
 * join/leave lose zero work. Holder indices in a view are node-table
 * indices — the same index space the transport is addressed by.
 *
 * Peer I/O goes through a PeerTransport seam: the server injects a
 * PoolPeerTransport so pushes and fetches ride the event loop's
 * multiplexed links; standalone uses (unit tests, tools) default to
 * one-shot blocking connections.
 *
 * Thread safety: get()/put() may be called from any worker thread;
 * the queue is mutex-guarded and the replicator thread performs all
 * pushes (fetches run on the calling thread — the transport is
 * thread-safe either way). flush() blocks until queued pushes have
 * drained — used by graceful drain and by tests that assert on
 * follower state.
 */

#ifndef DCG_SERVE_REPLICATION_HH
#define DCG_SERVE_REPLICATION_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_annotations.hh"
#include "serve/endpoint.hh"
#include "serve/peerlink.hh"
#include "serve/ring.hh"
#include "serve/store.hh"

namespace dcg::serve {

class ReplicatedStore : public exp::ResultStoreBase
{
  public:
    /**
     * @param local      the node's own ResultStore (must outlive this)
     * @param nodes      the cluster's canonical node list (ring order
     *                   is derived from it, as the server does)
     * @param selfIndex  this node's position in @p nodes
     * @param replicaCount  k; effective factor is min(k, nodes.size())
     * @param peerTimeoutMs bound on each push/fetch socket operation
     *                      (0 = unbounded)
     * @param transport  peer exchange seam; null = one-shot blocking
     *                   connections (DirectPeerTransport)
     */
    ReplicatedStore(std::shared_ptr<ResultStore> local,
                    std::vector<Endpoint> nodes, std::size_t selfIndex,
                    unsigned replicaCount, unsigned peerTimeoutMs,
                    std::shared_ptr<PeerTransport> transport = nullptr);
    ~ReplicatedStore() override;

    ReplicatedStore(const ReplicatedStore &) = delete;
    ReplicatedStore &operator=(const ReplicatedStore &) = delete;

    bool get(const std::string &key, RunResult &out)
        override DCG_ANY_THREAD;
    void put(const std::string &key, const RunResult &r)
        override DCG_ANY_THREAD;

    /// @name exp::StoreLifecycle (pass-through to the local store)
    /// @{
    std::size_t entries() const override DCG_ANY_THREAD
    {
        return local->entries();
    }
    std::uint64_t bytes() const override DCG_ANY_THREAD
    {
        return local->bytes();
    }
    std::size_t evictTo(std::uint64_t budgetBytes)
        override DCG_ANY_THREAD
    {
        return local->evictTo(budgetBytes);
    }
    std::size_t compact() override DCG_ANY_THREAD
    {
        return local->compact();
    }
    /// @}

    /** Block until every queued fan-out push has been attempted. */
    void flush() DCG_ANY_THREAD;

    /**
     * Install the epoch views that route replication from now on:
     * @p cur decides a key's holders, @p prev (invalid() when there is
     * no previous epoch or its handoff completed) adds the handoff
     * read leg. @p replicas is the cluster's configured k; the
     * effective factor is clamped per view to its member count. May
     * be called repeatedly as epochs advance.
     */
    void setEpochViews(const EpochView &cur, const EpochView &prev,
                       unsigned replicas) DCG_ANY_THREAD;

    /** Effective replication factor (clamped to the cluster size). */
    unsigned factor() const DCG_ANY_THREAD { return k.load(); }

    /** Successful `replicate` pushes to followers. */
    std::uint64_t pushes() const DCG_ANY_THREAD
    {
        return pushed.load();
    }

    /** Fan-out pushes that failed (follower down/unreachable). */
    std::uint64_t pushFailures() const DCG_ANY_THREAD
    {
        return pushFailed.load();
    }

    /** Local misses repaired by fetching a peer's replica. */
    std::uint64_t readRepairs() const DCG_ANY_THREAD
    {
        return repaired.load();
    }

    /** Local misses no replica holder could serve either. */
    std::uint64_t replicaMisses() const DCG_ANY_THREAD
    {
        return misses.load();
    }

    /** Local misses served by a *previous-epoch* holder (handoff). */
    std::uint64_t handoffFetches() const DCG_ANY_THREAD
    {
        return handoffs.load();
    }

    /** Fan-out tasks queued or mid-push right now. */
    std::size_t pendingPushes() const DCG_ANY_THREAD
    {
        std::lock_guard<std::mutex> lk(qMutex);
        return queue.size() + (busy ? 1 : 0);
    }

  private:
    struct Task
    {
        std::string key;
        RunResult result;
        std::vector<std::size_t> targets;  ///< indices into nodes
    };

    /** The key's holder indices (ring successor order, primary first). */
    std::vector<std::size_t> holdersFor(const std::string &key) const;

    /** Fetch @p key from @p idx; on success repair locally and serve. */
    bool fetchFrom(std::size_t idx, const JsonValue &req,
                   const std::string &key, RunResult &out);

    void replicatorLoop();
    void pushOne(const Task &t);

    std::shared_ptr<ResultStore> local;
    std::vector<Endpoint> nodes;
    std::size_t selfIdx;
    std::atomic<unsigned> k{1};
    unsigned timeoutMs;
    HashRing ring;
    std::shared_ptr<PeerTransport> transport;

    mutable std::mutex viewMutex;
    bool useViews DCG_GUARDED_BY(viewMutex) = false;
    EpochView curView DCG_GUARDED_BY(viewMutex);
    EpochView prevView DCG_GUARDED_BY(viewMutex);
    unsigned viewReps DCG_GUARDED_BY(viewMutex) = 1;

    mutable std::mutex qMutex;
    std::condition_variable qCv;       ///< work available / drained
    std::deque<Task> queue DCG_GUARDED_BY(qMutex);
    bool busy DCG_GUARDED_BY(qMutex) = false;  ///< task mid-push
    bool stopping DCG_GUARDED_BY(qMutex) = false;
    std::thread replicator;

    std::atomic<std::uint64_t> pushed{0};
    std::atomic<std::uint64_t> pushFailed{0};
    std::atomic<std::uint64_t> repaired{0};
    std::atomic<std::uint64_t> misses{0};
    std::atomic<std::uint64_t> handoffs{0};
};

} // namespace dcg::serve

#endif // DCG_SERVE_REPLICATION_HH
