#include "serve/ops.hh"

#include <map>
#include <utility>

#include "common/log.hh"

namespace dcg::serve {

// Defined in server.cc (the handlers need private Server access);
// idempotent, and doubles as the static-archive anchor that keeps the
// registration code out of the linker's dead-strip.
void registerServerOps();

namespace {

struct OpEntry
{
    OpInfo info;
    OpHandler handler;
};

/** Function-local static: safe against static-init ordering. */
std::map<std::string, OpEntry> &
table()
{
    static std::map<std::string, OpEntry> entries;
    return entries;
}

void
ensureBuiltins()
{
    registerServerOps();
}

} // namespace

bool
registerOp(OpInfo info, OpHandler handler)
{
    if (info.name.empty())
        fatal("registerOp: empty op name");
    if (!handler)
        fatal("registerOp('", info.name, "'): null handler");
    const std::string name = info.name;
    const auto [it, inserted] = table().emplace(
        name, OpEntry{std::move(info), std::move(handler)});
    (void)it;
    if (!inserted)
        fatal("registerOp: duplicate op '", name, "'");
    return true;
}

std::vector<OpInfo>
opCatalog()
{
    ensureBuiltins();
    std::vector<OpInfo> catalog;
    catalog.reserve(table().size());
    for (const auto &[name, entry] : table())
        catalog.push_back(entry.info);
    return catalog;
}

std::vector<std::string>
opNames()
{
    ensureBuiltins();
    std::vector<std::string> names;
    names.reserve(table().size());
    for (const auto &[name, entry] : table())
        names.push_back(name);
    return names;
}

std::string
opNamesJoined(char sep)
{
    std::string joined;
    for (const std::string &name : opNames()) {
        if (!joined.empty())
            joined += sep;
        joined += name;
    }
    return joined;
}

bool
isOp(const std::string &name)
{
    ensureBuiltins();
    return table().count(name) != 0;
}

const OpInfo *
findOp(const std::string &name)
{
    ensureBuiltins();
    const auto it = table().find(name);
    return it == table().end() ? nullptr : &it->second.info;
}

const OpHandler *
findOpHandler(const std::string &name)
{
    ensureBuiltins();
    const auto it = table().find(name);
    return it == table().end() ? nullptr : &it->second.handler;
}

JsonValue
opCatalogJson()
{
    JsonValue ops = JsonValue::array();
    for (const OpInfo &info : opCatalog()) {
        JsonValue o = JsonValue::object();
        o.set("name", JsonValue::string(info.name));
        o.set("min_version",
              JsonValue::integer(std::uint64_t{info.minVersion}));
        o.set("admin", JsonValue::boolean(info.adminOnly));
        o.set("description", JsonValue::string(info.description));
        ops.push(std::move(o));
    }
    return ops;
}

} // namespace dcg::serve
