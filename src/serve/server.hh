/**
 * @file
 * dcgserved's core: an asynchronous TCP simulation service over the
 * experiment Engine — one shard of a (possibly single-node) cluster.
 *
 * Architecture (one process, two kinds of threads):
 *
 *  - The I/O thread (run()) owns a poll()-based event loop: the
 *    non-blocking listen socket, every client connection, a
 *    self-wake pipe, and — in a cluster — the PeerPool's multiplexed
 *    peer links. It parses newline-delimited JSON requests, admits
 *    jobs to a *bounded* queue (over-capacity submits are rejected
 *    with a retry-after hint — backpressure, not buffering), answers
 *    status/result/stats without touching a worker, and drives every
 *    peer exchange asynchronously: a forwarded submit is a pipelined
 *    v4 submit+wait frame on the owner's link, its failover walk a
 *    continuation chain (Forward) stepped by link completions, never
 *    a blocked thread.
 *
 *  - N worker threads pop admitted jobs and ONLY simulate
 *    (Engine::runOne). Results flow back to the I/O thread as events
 *    through the wake pipe, which then resolves any parked
 *    "result"+wait requests — and, on v4, parked single-job
 *    submit+wait requests.
 *
 * Clustering: configureCluster() (or ServerConfig::peers/self) names
 * every node of the shared consistent-hash ring plus this node's own
 * canonical "host:port". A submit whose job key hashes to a peer is
 * transparently forwarded — unless the client asked for
 * "redirect": true (answered with not_owner + the owner's address) or
 * the submit is itself a forward (answered with not_owner, never
 * re-forwarded, so ring disagreement cannot loop). Forwarded results
 * are NOT persisted locally: every record lives on exactly the
 * shard(s) the ring designates. In-flight forwards count against
 * queueCapacity, so peer traffic is backpressured like local work
 * even though it holds no worker.
 *
 * Replication: with ServerConfig::replicas = k > 1 (and a persistent
 * store) every key lives on the k distinct ring successors
 * HashRing::owners() names. The node's store is wrapped in a
 * ReplicatedStore, so each locally computed result is written
 * locally first and then fanned out asynchronously to the other
 * holders ("replicate" op), and a local miss on a held key is
 * repaired by pulling a sibling's record ("fetch" op). The fan-out
 * thread's pushes and the read-repair fetches ride the multiplexed
 * links through a PoolPeerTransport while the event loop runs (and
 * fall back to one-shot connections around it). Forwarding is
 * failover-aware: when the key's primary is unreachable the Forward
 * chain walks the remaining holders in ring order — enqueueing the
 * job locally when this node is itself one of them — before
 * reporting forward_failed. A forwarded submit marked
 * "replica": true is such a failover: a holder receiving one serves
 * it instead of bouncing not_owner.
 *
 * Warm resubmissions never occupy a worker: admission first peeks the
 * engine's in-memory cache (Engine::tryCached) and completes such jobs
 * immediately. With a ResultStore attached, results additionally
 * survive restarts — a cold process serves a previously-seen grid
 * entirely from disk (stats report 0 simulations). Both layers share
 * the exp::StoreLifecycle seam: storeBudgetBytes/cacheBudgetBytes put
 * LRU bounds on the persistent store and the in-memory cache, and the
 * store is compacted once at startup and on {"op":"compact"}.
 *
 * Shutdown: requestStop() (async-signal-safe; wired to SIGINT/SIGTERM
 * by dcgserved) stops accepting and admitting, drains queued and
 * running jobs, flushes responses, then returns from run(). A drain
 * grace period bounds how long undeliverable output is waited for.
 */

#ifndef DCG_SERVE_SERVER_HH
#define DCG_SERVE_SERVER_HH

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_annotations.hh"
#include "exp/engine.hh"
#include "serve/endpoint.hh"
#include "serve/json.hh"
#include "serve/peerlink.hh"
#include "serve/protocol.hh"
#include "serve/replication.hh"
#include "serve/ring.hh"
#include "serve/store.hh"

namespace dcg::serve {

struct ServerConfig
{
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;        ///< 0 = ephemeral (see Server::port)
    unsigned workers = 0;          ///< 0 = Engine::defaultJobs()
    std::size_t queueCapacity = 256;
    std::string storeDir;          ///< empty = no persistent store
    unsigned retryAfterMs = 250;   ///< backpressure hint to clients
    unsigned drainGraceMs = 5000;  ///< max wait for undelivered output

    /// @name Clustering (empty peers = standalone single node)
    /// @{
    std::vector<Endpoint> peers;   ///< every ring node, self included
    std::string self;              ///< this node's canonical host:port
    unsigned replicas = 1;         ///< copies per key (1 = no replication)
    unsigned peerTimeoutMs = 0;    ///< bound on peer ops (0 = none)
    /// @}

    /// @name Lifecycle budgets (0 = unbounded)
    /// @{
    std::uint64_t storeBudgetBytes = 0;  ///< LRU bound on the store
    std::uint64_t cacheBudgetBytes = 0;  ///< LRU bound on the cache
    /// @}
};

class Server
{
  public:
    /**
     * Bind and listen (fatal() on failure); the actual port — useful
     * with port 0 — is available immediately via port(). No requests
     * are served until run().
     */
    explicit Server(const ServerConfig &config);
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /**
     * Join a cluster after construction but before run() — the window
     * tests and multi-process launchers need when ports are ephemeral
     * and the full ring is only known once every node has bound.
     * @p allNodes must contain @p self (canonical "host:port");
     * fatal() otherwise or on a malformed ring.
     */
    void configureCluster(const std::vector<Endpoint> &allNodes,
                          const std::string &self) DCG_OWNER_THREAD;

    /** Event loop; blocks until requestStop() and the drain finish. */
    void run() DCG_OWNER_THREAD;

    /** Begin graceful drain. Async-signal-safe. */
    void requestStop() DCG_ANY_THREAD;

    std::uint16_t port() const DCG_ANY_THREAD { return boundPort; }
    exp::Engine &engine() DCG_ANY_THREAD { return eng; }

    /** The cluster ring ("" nodes when standalone). */
    const HashRing &ringView() const DCG_ANY_THREAD { return ring; }
    const std::string &selfAddress() const DCG_ANY_THREAD
    {
        return selfAddr;
    }

    /** The replication layer (null unless replicas > 1 in a cluster).
     *  Exposed so tests and tools can flush()/inspect fan-out state. */
    ReplicatedStore *replication() DCG_ANY_THREAD { return repl.get(); }

  private:
    struct Conn
    {
        std::uint64_t id = 0;
        int fd = -1;
        std::string in;
        std::string out;
    };

    enum class JobState { Queued, Running, Done, Failed };

    /** A "result"+wait (or v4 submit+wait) request parked until its
     *  job finishes. */
    struct Waiter
    {
        std::uint64_t connId = 0;
        unsigned version = 1;  ///< the parked request's version
        bool hasRid = false;
        JsonValue rid;  ///< echoed verbatim on the deferred response
    };

    struct JobRec
    {
        JobState state = JobState::Queued;
        RunResult result;
        std::string error;  ///< set when state == Failed
        std::chrono::steady_clock::time_point enqueued;
        std::vector<Waiter> waiters;
    };

    /** One locally-simulated job — the ONLY thing workers see. */
    struct WorkItem
    {
        std::uint64_t id = 0;
        exp::Job job;
        /** Holder attempts burned before this local run (a Forward
         *  chain falling back to "we hold a replica, run it here"). */
        unsigned failovers = 0;
    };

    /**
     * One forwarded job's failover walk, owned by the I/O thread and
     * stepped by PeerPool completions: holders in ring order, the
     * current position, accumulated per-holder errors. Lives in a
     * shared_ptr threaded through the completion callbacks until the
     * job is served (possibly locally) or every holder has failed.
     */
    struct Forward
    {
        std::uint64_t id = 0;
        JobSpec spec;
        exp::Job job;      ///< for the serve-it-here fallback
        std::vector<std::size_t> holders;
        std::size_t pos = 0;
        unsigned busyRetries = 0;
        std::string errs;
    };

    struct Event
    {
        enum class Kind { Started, Done } kind = Kind::Done;
        std::uint64_t id = 0;
        RunResult result;
        exp::RunOutcome outcome = exp::RunOutcome::Simulated;
        bool remote = false;
        bool failed = false;
        unsigned failovers = 0;  ///< holder attempts after the first
        std::string error;
    };

    /// @name I/O-thread side
    /// @{
    void acceptClients();
    void readConn(Conn &conn);
    void writeConn(Conn &conn);
    void closeConn(Conn &conn);
    void handleLine(Conn &conn, const std::string &line);
    JsonValue handleSubmit(const JsonValue &req, unsigned version,
                           Conn &conn, bool &deferred);
    JsonValue handleReplicate(const JsonValue &req);
    JsonValue handleFetch(const JsonValue &req);
    JsonValue handleStatus(const JsonValue &req) const;
    void handleResult(Conn &conn, const JsonValue &req,
                      unsigned version);
    JsonValue handleCompact();
    JsonValue statsJson() const;
    JsonValue doneResponse(std::uint64_t id, const JobRec &rec) const;
    JsonValue failedResponse(std::uint64_t id,
                             const JobRec &rec) const;
    void drainEvents();
    void finishJob(std::uint64_t id, JobRec &rec, Event &ev);
    bool idle();
    void stepForward(const std::shared_ptr<Forward> &fwd);
    void forwardReply(const std::shared_ptr<Forward> &fwd,
                      PeerReply reply);
    void deliverForward(const std::shared_ptr<Forward> &fwd, Event ev);
    void enqueueLocal(WorkItem item);
    /// @}

    /// @name Worker side
    /// @{
    void workerLoop();
    void pushEvent(Event ev);
    void wake();
    /// @}

    ServerConfig cfg;
    unsigned workerCount;
    exp::Engine eng;
    std::shared_ptr<ResultStore> store;
    std::shared_ptr<ReplicatedStore> repl;  ///< set when replicating

    /** Multiplexed peer links (set when clustered), owned and driven
     *  by the I/O thread's event loop. Destroyed AFTER repl is reset
     *  (~Server orders this explicitly): the replicator thread calls
     *  into the pool through peerTransport. */
    std::unique_ptr<PeerPool> pool;
    std::shared_ptr<PeerTransport> peerTransport;
    std::uint64_t inflightForwards = 0;  ///< I/O thread only

    /// @name Cluster state (set before run(); read-only afterwards)
    /// @{
    std::vector<Endpoint> nodes;  ///< ring order = ctor order
    HashRing ring;
    std::string selfAddr;
    std::size_t selfIdx = 0;      ///< this node's index in nodes
    bool clustered = false;       ///< more than one ring node
    unsigned replFactor = 1;      ///< effective copies per key
    /// @}

    int listenFd = -1;
    int wakePipe[2] = {-1, -1};
    std::uint16_t boundPort = 0;
    std::atomic<bool> stopFlag{false};

    std::uint64_t nextConnId = 1;
    std::map<std::uint64_t, Conn> conns;  ///< conn id -> connection

    std::uint64_t nextJobId = 1;
    std::map<std::uint64_t, JobRec> jobs;  ///< I/O thread only

    mutable std::mutex qMutex;
    std::condition_variable qCv;
    std::deque<WorkItem> pending DCG_GUARDED_BY(qMutex);
    bool workersStop DCG_GUARDED_BY(qMutex) = false;
    std::vector<std::thread> workerThreads;
    std::atomic<unsigned> busyWorkers{0};

    mutable std::mutex evMutex;
    std::deque<Event> events DCG_GUARDED_BY(evMutex);

    /// @name Service counters (I/O thread only)
    /// @{
    std::uint64_t peakInflightForwards = 0;
    std::uint64_t jobsSubmitted = 0;
    std::uint64_t jobsCompleted = 0;
    std::uint64_t jobsForwarded = 0;
    std::uint64_t forwardFailures = 0;
    std::uint64_t failoverCount = 0;
    std::uint64_t replicateOps = 0;
    std::uint64_t fetchesServed = 0;
    std::uint64_t notOwnerReplies = 0;
    std::uint64_t submitsRejected = 0;
    std::uint64_t badRequests = 0;
    std::uint64_t latencySumUs = 0;
    std::uint64_t latencyMaxUs = 0;
    /// @}
};

} // namespace dcg::serve

#endif // DCG_SERVE_SERVER_HH
