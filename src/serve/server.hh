/**
 * @file
 * dcgserved's core: an asynchronous TCP simulation service over the
 * experiment Engine — one shard of a (possibly single-node) cluster.
 *
 * Architecture (one process, two kinds of threads):
 *
 *  - The I/O thread (run()) owns a poll()-based event loop: the
 *    non-blocking listen socket, every client connection, a
 *    self-wake pipe, and — in a cluster — the PeerPool's multiplexed
 *    peer links. It parses newline-delimited JSON requests, admits
 *    jobs to a *bounded* queue (over-capacity submits are rejected
 *    with a retry-after hint — backpressure, not buffering), answers
 *    status/result/stats without touching a worker, and drives every
 *    peer exchange asynchronously: a forwarded submit is a pipelined
 *    v4 submit+wait frame on the owner's link, its failover walk a
 *    continuation chain (Forward) stepped by link completions, never
 *    a blocked thread.
 *
 *  - N worker threads pop admitted jobs and ONLY simulate
 *    (Engine::runOne). Results flow back to the I/O thread as events
 *    through the wake pipe, which then resolves any parked
 *    "result"+wait requests — and, on v4, parked single-job
 *    submit+wait requests.
 *
 * Clustering: configureCluster() (or ServerConfig::peers/self) names
 * every node of the shared consistent-hash ring plus this node's own
 * canonical "host:port". A submit whose job key hashes to a peer is
 * transparently forwarded — unless the client asked for
 * "redirect": true (answered with not_owner + the owner's address) or
 * the submit is itself a forward (answered with not_owner, never
 * re-forwarded, so ring disagreement cannot loop). Forwarded results
 * are NOT persisted locally: every record lives on exactly the
 * shard(s) the ring designates. In-flight forwards count against
 * queueCapacity, so peer traffic is backpressured like local work
 * even though it holds no worker.
 *
 * Replication: with ServerConfig::replicas = k > 1 (and a persistent
 * store) every key lives on the k distinct ring successors
 * HashRing::owners() names. The node's store is wrapped in a
 * ReplicatedStore, so each locally computed result is written
 * locally first and then fanned out asynchronously to the other
 * holders ("replicate" op), and a local miss on a held key is
 * repaired by pulling a sibling's record ("fetch" op). The fan-out
 * thread's pushes and the read-repair fetches ride the multiplexed
 * links through a PoolPeerTransport while the event loop runs (and
 * fall back to one-shot connections around it). Forwarding is
 * failover-aware: when the key's primary is unreachable the Forward
 * chain walks the remaining holders in ring order — enqueueing the
 * job locally when this node is itself one of them — before
 * reporting forward_failed. A forwarded submit marked
 * "replica": true is such a failover: a holder receiving one serves
 * it instead of bouncing not_owner.
 *
 * Warm resubmissions never occupy a worker: admission first peeks the
 * engine's in-memory cache (Engine::tryCached) and completes such jobs
 * immediately. With a ResultStore attached, results additionally
 * survive restarts — a cold process serves a previously-seen grid
 * entirely from disk (stats report 0 simulations). Both layers share
 * the exp::StoreLifecycle seam: storeBudgetBytes/cacheBudgetBytes put
 * LRU bounds on the persistent store and the in-memory cache, and the
 * store is compacted once at startup and on {"op":"compact"}.
 *
 * Elastic membership (protocol v5): the cluster's member list is a
 * *versioned ring epoch* — a monotonically increasing epoch id plus
 * the member list it was agreed for (EpochView). The admin verbs
 * `join` and `leave` advance it at runtime: the node serving the verb
 * coordinates — a joiner is told the new epoch first (so it can serve
 * from its first forwarded request), then the coordinator installs it
 * locally and broadcasts `epoch` to every other member over the
 * multiplexed links. Each receiver installs any newer epoch, keeps
 * the previous one for dual-epoch routing (a forwarded submit is
 * served if this node holds the key under *either* epoch, so no
 * request ever misses mid-transition), pushes the remapped ~1/N of
 * its stored records to their new holders via the v3 `replicate`
 * verb, and only acks the `epoch` once that push queue drains —
 * which makes a completed join/leave response mean "the whole
 * cluster has rebalanced". Gaps (a push raced an eviction, a node
 * was down) are healed lazily: the ReplicatedStore's read path also
 * asks the previous epoch's holders (handoff fetches). One membership
 * change runs at a time; a node on a newer epoch answers stale_epoch
 * with its view, and the lower side catches up.
 *
 * Dispatch: every protocol verb is registered in the op-handler
 * registry (serve/ops.hh) by registerServerOps(); handleLine() looks
 * verbs up there — there is no if/else verb chain — and the catalog
 * is echoed on every stats response.
 *
 * Shutdown: requestStop() (async-signal-safe; wired to SIGINT/SIGTERM
 * by dcgserved) stops accepting and admitting, drains queued and
 * running jobs, flushes responses, then returns from run(). A drain
 * grace period bounds how long undeliverable output is waited for.
 */

#ifndef DCG_SERVE_SERVER_HH
#define DCG_SERVE_SERVER_HH

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_annotations.hh"
#include "exp/engine.hh"
#include "serve/endpoint.hh"
#include "serve/json.hh"
#include "serve/ops.hh"
#include "serve/peerlink.hh"
#include "serve/protocol.hh"
#include "serve/replication.hh"
#include "serve/ring.hh"
#include "serve/store.hh"

namespace dcg::serve {

/** Registers every built-in protocol verb with the op registry (see
 *  serve/ops.hh). Idempotent; called by the registry's first lookup
 *  and doubling as the static-archive anchor. Defined in server.cc —
 *  the handlers need private Server access. */
void registerServerOps();

struct ServerConfig
{
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;        ///< 0 = ephemeral (see Server::port)
    unsigned workers = 0;          ///< 0 = Engine::defaultJobs()
    std::size_t queueCapacity = 256;
    std::string storeDir;          ///< empty = no persistent store
    unsigned retryAfterMs = 250;   ///< backpressure hint to clients
    unsigned drainGraceMs = 5000;  ///< max wait for undelivered output

    /// @name Clustering (empty peers = standalone single node)
    /// @{
    std::vector<Endpoint> peers;   ///< every ring node, self included
    std::string self;              ///< this node's canonical host:port
    unsigned replicas = 1;         ///< copies per key (1 = no replication)
    unsigned peerTimeoutMs = 0;    ///< bound on peer ops (0 = none)
    /// @}

    /// @name Lifecycle budgets (0 = unbounded)
    /// @{
    std::uint64_t storeBudgetBytes = 0;  ///< LRU bound on the store
    std::uint64_t cacheBudgetBytes = 0;  ///< LRU bound on the cache
    /// @}
};

class Server
{
  public:
    /**
     * Bind and listen (fatal() on failure); the actual port — useful
     * with port 0 — is available immediately via port(). No requests
     * are served until run().
     */
    explicit Server(const ServerConfig &config);
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /**
     * Join a cluster after construction but before run() — the window
     * tests and multi-process launchers need when ports are ephemeral
     * and the full ring is only known once every node has bound.
     * @p allNodes must contain @p self (canonical "host:port");
     * fatal() otherwise or on a malformed ring.
     */
    void configureCluster(const std::vector<Endpoint> &allNodes,
                          const std::string &self) DCG_OWNER_THREAD;

    /** Event loop; blocks until requestStop() and the drain finish. */
    void run() DCG_OWNER_THREAD;

    /** Begin graceful drain. Async-signal-safe. */
    void requestStop() DCG_ANY_THREAD;

    std::uint16_t port() const DCG_ANY_THREAD { return boundPort; }
    exp::Engine &engine() DCG_ANY_THREAD { return eng; }

    /** The cluster ring ("" nodes when standalone). */
    const HashRing &ringView() const DCG_ANY_THREAD { return ring; }
    const std::string &selfAddress() const DCG_ANY_THREAD
    {
        return selfAddr;
    }

    /** The replication layer (null when no persistent store).
     *  Exposed so tests and tools can flush()/inspect fan-out state. */
    ReplicatedStore *replication() DCG_ANY_THREAD { return repl.get(); }

    /** The current ring epoch id (0 until the first live change). */
    std::uint64_t epoch() const DCG_ANY_THREAD { return curEp.epoch; }

  private:
    friend void registerServerOps();
    struct Conn
    {
        std::uint64_t id = 0;
        int fd = -1;
        std::string in;
        std::string out;
    };

    enum class JobState { Queued, Running, Done, Failed };

    /** A "result"+wait (or v4 submit+wait) request parked until its
     *  job finishes. */
    struct Waiter
    {
        std::uint64_t connId = 0;
        unsigned version = 1;  ///< the parked request's version
        bool hasRid = false;
        JsonValue rid;  ///< echoed verbatim on the deferred response
    };

    struct JobRec
    {
        JobState state = JobState::Queued;
        RunResult result;
        std::string error;  ///< set when state == Failed
        std::chrono::steady_clock::time_point enqueued;
        std::vector<Waiter> waiters;
    };

    /** One locally-simulated job — the ONLY thing workers see. */
    struct WorkItem
    {
        std::uint64_t id = 0;
        exp::Job job;
        /** Holder attempts burned before this local run (a Forward
         *  chain falling back to "we hold a replica, run it here"). */
        unsigned failovers = 0;
    };

    /**
     * One forwarded job's failover walk, owned by the I/O thread and
     * stepped by PeerPool completions: holders in ring order, the
     * current position, accumulated per-holder errors. Lives in a
     * shared_ptr threaded through the completion callbacks until the
     * job is served (possibly locally) or every holder has failed.
     */
    struct Forward
    {
        std::uint64_t id = 0;
        JobSpec spec;
        exp::Job job;      ///< for the serve-it-here fallback
        std::vector<std::size_t> holders;  ///< node-table indices
        std::size_t pos = 0;
        unsigned busyRetries = 0;
        /** Epoch the holder walk was computed under. A not_owner from
         *  a holder during a membership transition is retried (the
         *  peer has not installed the epoch yet) or — if our own
         *  epoch moved — rerouted against the new ring. */
        std::uint64_t epoch = 0;
        unsigned ownerRetries = 0;
        unsigned reroutes = 0;
        std::string errs;
    };

    struct Event
    {
        enum class Kind { Started, Done } kind = Kind::Done;
        std::uint64_t id = 0;
        RunResult result;
        exp::RunOutcome outcome = exp::RunOutcome::Simulated;
        bool remote = false;
        bool failed = false;
        unsigned failovers = 0;  ///< holder attempts after the first
        std::string error;
    };

    /** One peer's deferred `epoch` ack, or the parked admin verb
     *  response — written out once the local rebalance drains. */
    struct ParkedResp
    {
        std::uint64_t connId = 0;
        unsigned version = 1;
        bool hasRid = false;
        JsonValue rid;
    };

    /** The one in-flight membership change this node coordinates. */
    struct AdminChange
    {
        bool active = false;
        std::string verb;       ///< "join" or "leave"
        std::string node;       ///< endpoint being added/removed
        std::uint64_t epoch = 0;
        ParkedResp resp;        ///< the admin client, answered at end
        std::size_t pendingAcks = 0;
        bool localDone = false; ///< own rebalance push has drained
        bool failed = false;
        std::string errs;
        /** A broadcast target answered stale_epoch: its (higher)
         *  view, installed once this change resolves. */
        std::uint64_t higherEpoch = 0;
        std::vector<std::string> higherMembers;
    };

    /** The push queue moving remapped arcs after an epoch install. */
    struct Rebalance
    {
        bool active = false;
        std::uint64_t epoch = 0;
        struct Item
        {
            std::string key;
            std::vector<std::size_t> targets;  ///< node-table indices
        };
        std::deque<Item> queue;
        std::size_t inflight = 0;   ///< replicate pushes on the wire
        std::vector<ParkedResp> acks;  ///< deferred peer `epoch` acks
    };

    /// @name I/O-thread side
    /// @{
    void acceptClients();
    void readConn(Conn &conn);
    void writeConn(Conn &conn);
    void closeConn(Conn &conn);
    void handleLine(Conn &conn, const std::string &line);
    JsonValue handleSubmit(const JsonValue &req, unsigned version,
                           std::uint64_t connId, bool &deferred);
    JsonValue handleReplicate(const JsonValue &req);
    JsonValue handleFetch(const JsonValue &req);
    JsonValue handleStatus(const JsonValue &req) const;
    void handleResult(OpCall &c);
    JsonValue handleCompact();
    void handleJoin(OpCall &c);
    void handleLeave(OpCall &c);
    JsonValue handleRing() const;
    void handleEpoch(OpCall &c);
    /** Node-table index for @p ep, appending (and growing the pool
     *  and transports) when unknown. */
    std::size_t nodeIndexOf(const Endpoint &ep);
    /** Create the pool/transport lazily (a standalone node joining a
     *  cluster mid-run has neither). */
    void ensurePeerInfra();
    /** Make {epoch, members} the current view: grow the node table,
     *  shift cur -> prev, rewire replication, start the rebalance
     *  push. The heart of a membership change. @p announcedPrev, when
     *  valid, becomes the previous view instead of this node's own
     *  superseded one — a joiner's own view ("just me") says nothing
     *  about where the cluster kept records, but the announced one
     *  does, and the handoff read leg depends on it. The rebalance
     *  push scan always uses the node's OWN old view: what *I* used
     *  to hold primary is what *I* push. */
    void installEpoch(std::uint64_t epoch,
                      const std::vector<std::string> &members,
                      unsigned reps,
                      const EpochView *announcedPrev = nullptr);
    void startRebalance(const EpochView &ownPrev);
    void stepRebalance();
    void finishRebalance();
    /** Send `epoch` to every @p targets member; acks feed adm. */
    void broadcastEpoch(const std::vector<std::string> &targets);
    void maybeFinishAdmin();
    /** Write a deferred response to its (possibly gone) connection. */
    void respondParked(const ParkedResp &p, JsonValue resp);
    JsonValue statsJson() const;
    JsonValue doneResponse(std::uint64_t id, const JobRec &rec) const;
    JsonValue failedResponse(std::uint64_t id,
                             const JobRec &rec) const;
    void drainEvents();
    void finishJob(std::uint64_t id, JobRec &rec, Event &ev);
    bool idle();
    void stepForward(const std::shared_ptr<Forward> &fwd);
    void forwardReply(const std::shared_ptr<Forward> &fwd,
                      PeerReply reply);
    void deliverForward(const std::shared_ptr<Forward> &fwd, Event ev);
    void enqueueLocal(WorkItem item);
    /// @}

    /// @name Worker side
    /// @{
    void workerLoop();
    void pushEvent(Event ev);
    void wake();
    /// @}

    ServerConfig cfg;
    unsigned workerCount;
    exp::Engine eng;
    std::shared_ptr<ResultStore> store;
    std::shared_ptr<ReplicatedStore> repl;  ///< set when replicating

    /** Multiplexed peer links (set when clustered), owned and driven
     *  by the I/O thread's event loop. Destroyed AFTER repl is reset
     *  (~Server orders this explicitly): the replicator thread calls
     *  into the pool through peerTransport. */
    std::unique_ptr<PeerPool> pool;
    std::shared_ptr<PeerTransport> peerTransport;
    std::uint64_t inflightForwards = 0;  ///< I/O thread only

    /// @name Cluster state (owner/I/O thread; epochs mutate it live)
    /// @{
    /** Append-only node table: the index space peer links, transports
     *  and Forward walks share. Members keep their slot across
     *  epochs; a left node's slot simply stops being routed to. */
    std::vector<Endpoint> nodes;
    HashRing ring;                ///< mirror of curEp.ring (ringView)
    std::string selfAddr;
    std::size_t selfIdx = 0;      ///< this node's index in nodes
    bool clustered = false;       ///< routing consults the ring
    unsigned replFactor = 1;      ///< effective copies per key
    EpochView curEp;              ///< routes new work
    EpochView prevEp;             ///< dual-epoch routing + handoff
    unsigned epochReps = 1;       ///< configured k carried by epochs
    bool loopRunning = false;     ///< run() is live (pool lazy-init)
    AdminChange adm;
    Rebalance rebal;
    std::uint64_t rebalArcsMoved = 0;  ///< keys whose arc remapped
    std::uint64_t rebalBytes = 0;      ///< replicate payload pushed
    std::uint64_t rebalPushFailures = 0;
    /// @}

    int listenFd = -1;
    int wakePipe[2] = {-1, -1};
    std::uint16_t boundPort = 0;
    std::atomic<bool> stopFlag{false};

    std::uint64_t nextConnId = 1;
    std::map<std::uint64_t, Conn> conns;  ///< conn id -> connection

    std::uint64_t nextJobId = 1;
    std::map<std::uint64_t, JobRec> jobs;  ///< I/O thread only

    mutable std::mutex qMutex;
    std::condition_variable qCv;
    std::deque<WorkItem> pending DCG_GUARDED_BY(qMutex);
    bool workersStop DCG_GUARDED_BY(qMutex) = false;
    std::vector<std::thread> workerThreads;
    std::atomic<unsigned> busyWorkers{0};

    mutable std::mutex evMutex;
    std::deque<Event> events DCG_GUARDED_BY(evMutex);

    /// @name Service counters (I/O thread only)
    /// @{
    std::uint64_t peakInflightForwards = 0;
    std::uint64_t jobsSubmitted = 0;
    std::uint64_t jobsCompleted = 0;
    std::uint64_t jobsForwarded = 0;
    std::uint64_t forwardFailures = 0;
    std::uint64_t failoverCount = 0;
    std::uint64_t replicateOps = 0;
    std::uint64_t fetchesServed = 0;
    std::uint64_t notOwnerReplies = 0;
    std::uint64_t submitsRejected = 0;
    std::uint64_t badRequests = 0;
    std::uint64_t latencySumUs = 0;
    std::uint64_t latencyMaxUs = 0;
    /// @}
};

} // namespace dcg::serve

#endif // DCG_SERVE_SERVER_HH
