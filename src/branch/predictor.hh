/**
 * @file
 * Front-end branch prediction facade: two-level direction predictor +
 * BTB (+ RAS, unused by the synthetic workloads). The core asks for a
 * prediction at fetch and trains at branch resolution.
 */

#ifndef DCG_BRANCH_PREDICTOR_HH
#define DCG_BRANCH_PREDICTOR_HH

#include <vector>

#include "branch/bimodal.hh"
#include "branch/btb.hh"
#include "branch/ras.hh"
#include "branch/two_level.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace dcg {

/** Direction-predictor organisation. */
enum class DirectionKind
{
    TwoLevel,  ///< Table 1's 2-level adaptive predictor (default)
    Bimodal,   ///< per-PC 2-bit counters
    Hybrid     ///< 21264-style: chooser between the two above
};

/** Sizing knobs, defaulting to Table 1 of the paper. */
struct BranchPredictorConfig
{
    DirectionKind kind = DirectionKind::TwoLevel;
    unsigned l1Entries = 8192;
    unsigned l2Entries = 8192;
    unsigned historyBits = 12;
    unsigned btbEntries = 8192;
    unsigned btbAssoc = 4;
    unsigned rasEntries = 32;
    unsigned bimodalEntries = 8192;
    unsigned chooserEntries = 8192;
};

/** The front end's view of one prediction. */
struct BranchPrediction
{
    bool taken = false;
    Addr target = 0;       ///< valid when taken and btbHit
    bool btbHit = false;
};

class BranchPredictor
{
  public:
    BranchPredictor(const BranchPredictorConfig &config,
                    StatRegistry &stats);

    BranchPrediction predict(Addr pc);

    /**
     * Train with the actual outcome.
     *
     * @param pred the prediction the front end acted on at fetch
     * @return true when that prediction was correct (direction and,
     *         for taken branches, target)
     */
    bool resolve(Addr pc, const BranchPrediction &pred, bool taken,
                 Addr target);

    double accuracy() const;

  private:
    bool directionPredict(Addr pc) const;
    void directionUpdate(Addr pc, bool taken);
    unsigned chooserIndex(Addr pc) const;

    DirectionKind kind;
    TwoLevelPredictor twoLevel;
    BimodalPredictor bimodal;
    /** Hybrid chooser: >=2 selects the two-level component. */
    std::vector<std::uint8_t> chooser;
    unsigned chooserMask;
    Btb btb;
    Ras ras;

    Counter &lookups;
    Counter &correct;
    Counter &dirMispredicts;
    Counter &btbMisses;
};

} // namespace dcg

#endif // DCG_BRANCH_PREDICTOR_HH
