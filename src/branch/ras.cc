#include "branch/ras.hh"

#include "common/log.hh"

namespace dcg {

Ras::Ras(unsigned entries)
    : stack(entries, 0)
{
    DCG_ASSERT(entries >= 1, "RAS needs at least one entry");
}

void
Ras::push(Addr return_addr)
{
    topIdx = (topIdx + 1) % stack.size();
    stack[topIdx] = return_addr;
    if (occupancy < stack.size())
        ++occupancy;
    // else: circular overwrite of the oldest entry, as in hardware.
}

Addr
Ras::pop()
{
    if (occupancy == 0)
        return 0;
    const Addr value = stack[topIdx];
    topIdx = (topIdx + stack.size() - 1) % stack.size();
    --occupancy;
    return value;
}

Addr
Ras::top() const
{
    return occupancy ? stack[topIdx] : 0;
}

} // namespace dcg
