/**
 * @file
 * Return-address stack (Table 1: 32 entries). The synthetic workloads
 * do not distinguish call/return branches, but the structure is part of
 * the front end (and its power is charged with the predictor arrays),
 * so it is implemented and tested for completeness.
 */

#ifndef DCG_BRANCH_RAS_HH
#define DCG_BRANCH_RAS_HH

#include <vector>

#include "common/types.hh"

namespace dcg {

class Ras
{
  public:
    explicit Ras(unsigned entries = 32);

    void push(Addr return_addr);

    /** Pop the predicted return address; 0 when empty. */
    Addr pop();

    Addr top() const;
    bool empty() const { return occupancy == 0; }
    unsigned size() const { return occupancy; }
    unsigned capacity() const
    { return static_cast<unsigned>(stack.size()); }

  private:
    std::vector<Addr> stack;
    unsigned topIdx = 0;
    unsigned occupancy = 0;
};

} // namespace dcg

#endif // DCG_BRANCH_RAS_HH
