/**
 * @file
 * Bimodal (per-PC 2-bit counter) direction predictor. Not used by the
 * Table-1 configuration (which is 2-level), but available as the
 * simple baseline and as one component of the hybrid predictor for
 * the predictor-sensitivity study (bench/ablation_bpred).
 */

#ifndef DCG_BRANCH_BIMODAL_HH
#define DCG_BRANCH_BIMODAL_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace dcg {

class BimodalPredictor
{
  public:
    explicit BimodalPredictor(unsigned entries = 8192);

    bool predict(Addr pc) const;
    void update(Addr pc, bool taken);

  private:
    unsigned index(Addr pc) const;

    std::vector<std::uint8_t> counters;
    unsigned mask;
};

} // namespace dcg

#endif // DCG_BRANCH_BIMODAL_HH
