#include "branch/bimodal.hh"

#include "common/log.hh"

namespace dcg {

BimodalPredictor::BimodalPredictor(unsigned entries)
    : counters(entries, 1),  // weakly not-taken
      mask(entries - 1)
{
    DCG_ASSERT(entries && !(entries & (entries - 1)),
               "bimodal table must be a power of two");
}

unsigned
BimodalPredictor::index(Addr pc) const
{
    return static_cast<unsigned>(pc >> 2) & mask;
}

bool
BimodalPredictor::predict(Addr pc) const
{
    return counters[index(pc)] >= 2;
}

void
BimodalPredictor::update(Addr pc, bool taken)
{
    std::uint8_t &ctr = counters[index(pc)];
    if (taken) {
        if (ctr < 3)
            ++ctr;
    } else {
        if (ctr > 0)
            --ctr;
    }
}

} // namespace dcg
