#include "branch/btb.hh"

#include "common/log.hh"

namespace dcg {

Btb::Btb(unsigned entries, unsigned assoc)
    : table(entries), numSets(entries / assoc), ways(assoc)
{
    DCG_ASSERT(assoc >= 1 && entries % assoc == 0,
               "BTB entries must divide evenly into ways");
    DCG_ASSERT(numSets && !(numSets & (numSets - 1)),
               "BTB set count must be a power of two");
}

unsigned
Btb::setIndex(Addr pc) const
{
    return static_cast<unsigned>(pc >> 2) & (numSets - 1);
}

std::optional<Addr>
Btb::lookup(Addr pc) const
{
    const unsigned base = setIndex(pc) * ways;
    for (unsigned w = 0; w < ways; ++w) {
        const Entry &e = table[base + w];
        if (e.valid && e.tag == pc) {
            e.lastUse = ++useClock;  // LRU touch (mutable bookkeeping)
            return e.target;
        }
    }
    return std::nullopt;
}

void
Btb::update(Addr pc, Addr target)
{
    const unsigned base = setIndex(pc) * ways;
    Entry *victim = &table[base];
    for (unsigned w = 0; w < ways; ++w) {
        Entry &e = table[base + w];
        if (e.valid && e.tag == pc) {
            e.target = target;
            e.lastUse = ++useClock;
            return;
        }
        if (!e.valid) {
            victim = &e;
            break;
        }
        if (e.lastUse < victim->lastUse)
            victim = &e;
    }
    victim->valid = true;
    victim->tag = pc;
    victim->target = target;
    victim->lastUse = ++useClock;
}

} // namespace dcg
