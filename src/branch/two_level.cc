#include "branch/two_level.hh"

#include "common/log.hh"

namespace dcg {

namespace {

bool
isPow2(unsigned x)
{
    return x && !(x & (x - 1));
}

} // namespace

TwoLevelPredictor::TwoLevelPredictor(unsigned l1_entries,
                                     unsigned l2_entries,
                                     unsigned history_bits)
    : historyTable(l1_entries, 0),
      patternTable(l2_entries, 1),  // weakly not-taken
      histBits(history_bits),
      histMask((1u << history_bits) - 1),
      l1Mask(l1_entries - 1),
      l2Mask(l2_entries - 1)
{
    DCG_ASSERT(isPow2(l1_entries) && isPow2(l2_entries),
               "predictor tables must be powers of two");
    DCG_ASSERT(history_bits >= 1 && history_bits <= 30,
               "bad history length");
}

unsigned
TwoLevelPredictor::l1Index(Addr pc) const
{
    return static_cast<unsigned>(pc >> 2) & l1Mask;
}

unsigned
TwoLevelPredictor::l2Index(Addr pc) const
{
    const std::uint32_t hist = historyTable[l1Index(pc)] & histMask;
    return (hist ^ static_cast<unsigned>(pc >> 2)) & l2Mask;
}

bool
TwoLevelPredictor::predict(Addr pc) const
{
    return patternTable[l2Index(pc)] >= 2;
}

void
TwoLevelPredictor::update(Addr pc, bool taken)
{
    std::uint8_t &ctr = patternTable[l2Index(pc)];
    if (taken) {
        if (ctr < 3)
            ++ctr;
    } else {
        if (ctr > 0)
            --ctr;
    }
    std::uint32_t &hist = historyTable[l1Index(pc)];
    hist = ((hist << 1) | (taken ? 1 : 0)) & histMask;
}

} // namespace dcg
