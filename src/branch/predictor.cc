#include "branch/predictor.hh"

namespace dcg {

BranchPredictor::BranchPredictor(const BranchPredictorConfig &config,
                                 StatRegistry &stats)
    : kind(config.kind),
      twoLevel(config.l1Entries, config.l2Entries, config.historyBits),
      bimodal(config.bimodalEntries),
      chooser(config.chooserEntries, 2),  // weakly prefer two-level
      chooserMask(config.chooserEntries - 1),
      btb(config.btbEntries, config.btbAssoc),
      ras(config.rasEntries),
      lookups(stats.counter("bpred.lookups", "branch predictions made")),
      correct(stats.counter("bpred.correct", "fully correct predictions")),
      dirMispredicts(stats.counter("bpred.dir_mispredicts",
                                   "direction mispredictions")),
      btbMisses(stats.counter("bpred.btb_misses",
                              "taken predictions without a BTB target"))
{
}

unsigned
BranchPredictor::chooserIndex(Addr pc) const
{
    return static_cast<unsigned>(pc >> 2) & chooserMask;
}

bool
BranchPredictor::directionPredict(Addr pc) const
{
    switch (kind) {
      case DirectionKind::TwoLevel:
        return twoLevel.predict(pc);
      case DirectionKind::Bimodal:
        return bimodal.predict(pc);
      case DirectionKind::Hybrid:
        return chooser[chooserIndex(pc)] >= 2 ? twoLevel.predict(pc)
                                              : bimodal.predict(pc);
    }
    return false;
}

void
BranchPredictor::directionUpdate(Addr pc, bool taken)
{
    if (kind == DirectionKind::Hybrid) {
        // Train the chooser toward whichever component was right.
        const bool tl_right = twoLevel.predict(pc) == taken;
        const bool bi_right = bimodal.predict(pc) == taken;
        std::uint8_t &sel = chooser[chooserIndex(pc)];
        if (tl_right && !bi_right && sel < 3)
            ++sel;
        else if (bi_right && !tl_right && sel > 0)
            --sel;
    }
    twoLevel.update(pc, taken);
    bimodal.update(pc, taken);
}

BranchPrediction
BranchPredictor::predict(Addr pc)
{
    ++lookups;
    BranchPrediction pred;
    pred.taken = directionPredict(pc);
    if (auto target = btb.lookup(pc)) {
        pred.btbHit = true;
        pred.target = *target;
    }
    return pred;
}

bool
BranchPredictor::resolve(Addr pc, const BranchPrediction &pred, bool taken,
                         Addr target)
{
    directionUpdate(pc, taken);
    if (taken)
        btb.update(pc, target);

    bool ok = pred.taken == taken;
    if (!ok)
        ++dirMispredicts;
    if (ok && taken) {
        // A correct "taken" only redirects fetch correctly if the BTB
        // supplied the right target.
        if (!pred.btbHit) {
            ++btbMisses;
            ok = false;
        } else if (pred.target != target) {
            ok = false;
        }
    }
    if (ok)
        ++correct;
    return ok;
}

double
BranchPredictor::accuracy() const
{
    const double n = static_cast<double>(lookups.value());
    return n > 0 ? static_cast<double>(correct.value()) / n : 0.0;
}

} // namespace dcg
