/**
 * @file
 * Set-associative branch target buffer (Table 1: 8192-entry, 4-way).
 */

#ifndef DCG_BRANCH_BTB_HH
#define DCG_BRANCH_BTB_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "common/types.hh"

namespace dcg {

class Btb
{
  public:
    Btb(unsigned entries = 8192, unsigned assoc = 4);

    /** Target of the branch at @p pc, if present. */
    std::optional<Addr> lookup(Addr pc) const;

    /** Install/refresh the mapping pc -> target. */
    void update(Addr pc, Addr target);

  private:
    struct Entry
    {
        bool valid = false;
        Addr tag = 0;
        Addr target = 0;
        /** mutable: LRU touch happens on const lookup paths. */
        mutable std::uint64_t lastUse = 0;
    };

    unsigned setIndex(Addr pc) const;

    std::vector<Entry> table;
    unsigned numSets;
    unsigned ways;
    mutable std::uint64_t useClock = 0;
};

} // namespace dcg

#endif // DCG_BRANCH_BTB_HH
