/**
 * @file
 * Two-level adaptive branch direction predictor (per Table 1 of the
 * paper: 8192-entry first level, 8192-entry second level).
 *
 * First level: per-branch history registers. Second level: 2-bit
 * saturating counters indexed by history xor PC (gshare-style hashing
 * keeps the table small without losing the pattern-learning behaviour
 * the workloads rely on).
 */

#ifndef DCG_BRANCH_TWO_LEVEL_HH
#define DCG_BRANCH_TWO_LEVEL_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace dcg {

class TwoLevelPredictor
{
  public:
    /**
     * @param l1_entries history-register table size (power of two)
     * @param l2_entries pattern-history table size (power of two)
     * @param history_bits history length per branch
     */
    TwoLevelPredictor(unsigned l1_entries = 8192,
                      unsigned l2_entries = 8192,
                      unsigned history_bits = 12);

    /** Predict the direction of the branch at @p pc. */
    bool predict(Addr pc) const;

    /** Train with the resolved outcome. */
    void update(Addr pc, bool taken);

    unsigned historyBits() const { return histBits; }

  private:
    unsigned l1Index(Addr pc) const;
    unsigned l2Index(Addr pc) const;

    std::vector<std::uint32_t> historyTable;
    std::vector<std::uint8_t> patternTable;  ///< 2-bit counters
    unsigned histBits;
    std::uint32_t histMask;
    unsigned l1Mask;
    unsigned l2Mask;
};

} // namespace dcg

#endif // DCG_BRANCH_TWO_LEVEL_HH
