/**
 * @file
 * Cycle-accurate 8-wide out-of-order superscalar core (Table 1).
 *
 * Trace-driven: architectural semantics come from the synthetic
 * workload; the core models event *timing* — fetch with branch
 * prediction and I-cache stalls, rename into a 128-entry window,
 * oldest-first wakeup/select with sequential-priority FU allocation,
 * D-cache port arbitration, result-bus arbitration and in-order commit.
 *
 * All future resource usage discovered at issue is written into the
 * ActivityWheel with per-component advance-notice assertions; this is
 * the machine-checkable form of the paper's determinism claim and the
 * information source for the DCG controller.
 */

#ifndef DCG_PIPELINE_CORE_HH
#define DCG_PIPELINE_CORE_HH

#include <deque>
#include <vector>

#include "branch/predictor.hh"
#include "cache/hierarchy.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "isa/micro_op.hh"
#include "pipeline/activity.hh"
#include "pipeline/config.hh"
#include "pipeline/fu_pool.hh"
#include "pipeline/lsq.hh"
#include "pipeline/rob.hh"
#include "isa/inst_source.hh"

namespace dcg {

class Core
{
  public:
    Core(const CoreConfig &config, InstSource &gen,
         MemoryHierarchy &mem, BranchPredictor &bpred,
         StatRegistry &stats);

    /** Advance one cycle. */
    void tick();

    /** Activity of the cycle just simulated. */
    const CycleActivity &activity() const { return *currentAct; }

    Cycle cycle() const { return wheel.cycle(); }
    InstSeq committedInsts() const { return numCommitted.value(); }
    double ipc() const;

    const CoreConfig &config() const { return cfg; }
    const PipeTiming &timing() const { return pipeTiming; }

    /// @name PLB constraint hooks (Sec 4.3)
    /// @{
    void setIssueWidthLimit(unsigned width);
    void setFuEnabledCount(FuType type, unsigned count);
    void setDcachePortLimit(unsigned ports);
    void setResultBusLimit(unsigned buses);

    unsigned issueWidthLimit() const { return issueLimit; }
    unsigned dcachePortLimit() const { return portLimit; }
    unsigned resultBusLimit() const { return busLimit; }
    const FuPool &fuPool() const { return fus; }
    /// @}

  private:
    void commit(CycleActivity &act);
    void drainStores(CycleActivity &act);
    void issue(CycleActivity &act);
    void rename(CycleActivity &act);
    void fetch(CycleActivity &act);
    void fetchWrongPath(CycleActivity &act);

    bool srcsReady(const DynInst &di, Cycle now) const;
    Cycle producerReadyAt(std::int64_t slot) const;
    void issueOne(DynInst &di, CycleActivity &act, Cycle now);

    CoreConfig cfg;
    PipeTiming pipeTiming;

    InstSource &gen;
    MemoryHierarchy &mem;
    BranchPredictor &bpred;

    ActivityWheel wheel;
    CycleActivity *currentAct;

    Rob rob;
    Lsq lsq;
    StoreBuffer storeBuf;
    FuPool fus;

    /** Producer scoreboard ring: consumer-visible ready cycles. */
    std::vector<Cycle> prodReady;
    std::uint64_t prodCount = 0;

    /** Fetched instructions awaiting rename. */
    std::deque<DynInst> frontQ;
    std::size_t frontQCap;

    /** Fetch redirect/stall state. */
    Cycle fetchResumeAt = 0;
    bool waitingForBranch = false;  ///< stalled on unresolved mispredict
    /** Wrong-path fetch state (modelWrongPathFetch). */
    bool wrongPathActive = false;
    Addr wrongPathPc = 0;
    bool pendingOpValid = false;
    MicroOp pendingOp;
    Addr lastFetchLine = ~Addr{0};

    InstSeq nextSeq = 0;

    /** Window entries renamed but not yet issued. */
    unsigned iqOccupied = 0;

    /** Dynamic constraints (PLB). */
    unsigned issueLimit;
    unsigned portLimit;
    unsigned busLimit;

    Counter &numCycles;
    Counter &numCommitted;
    Counter &numIssued;
    Counter &fetchStallCycles;
    Counter &robFullStalls;
    Counter &lsqFullStalls;
    Counter &mispredicts;
    Formula &ipcFormula;
    Average &windowOccupancy;
    Average &issueWait;
    Average &fetchedPerCycle;
    Average &commitLatency;
    Counter &commitWaitIssue;
    Counter &commitWaitComplete;
    Counter &commitWaitStoreBuf;
};

} // namespace dcg

#endif // DCG_PIPELINE_CORE_HH
