/**
 * @file
 * Cycle-accurate 8-wide out-of-order superscalar core (Table 1).
 *
 * Trace-driven: architectural semantics come from the synthetic
 * workload; the core models event *timing* — fetch with branch
 * prediction and I-cache stalls, rename into a 128-entry window,
 * oldest-first wakeup/select with sequential-priority FU allocation,
 * D-cache port arbitration, result-bus arbitration and in-order commit.
 *
 * All future resource usage discovered at issue is written into the
 * ActivityWheel with per-component advance-notice assertions; this is
 * the machine-checkable form of the paper's determinism claim and the
 * information source for the DCG controller.
 *
 * Hot-path structure: per-entry window state is structure-of-arrays
 * (pipeline/window.hh), wakeup is event-driven (consumers park on
 * per-producer waiter chains and surface in an `issuable` bitmap only
 * once every operand's ready cycle is met, so the issue scan never
 * revisits dependence-blocked entries), tick-path statistics
 * accumulate in a flat uint64 block indexed by CoreStat and fold into
 * the registry only at report time (foldStats), and provably idle
 * stall windows can be skipped in O(1) (idleSkipAvailable /
 * skipIdle) — the same
 * determinism that lets DCG gate an idle unit lets the simulator not
 * simulate it.
 */

#ifndef DCG_PIPELINE_CORE_HH
#define DCG_PIPELINE_CORE_HH

#include <array>
#include <cstdint>
#include <vector>

#include "branch/predictor.hh"
#include "cache/hierarchy.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "isa/micro_op.hh"
#include "pipeline/activity.hh"
#include "pipeline/config.hh"
#include "pipeline/fu_pool.hh"
#include "pipeline/lsq.hh"
#include "pipeline/window.hh"
#include "isa/inst_source.hh"

namespace dcg {

/**
 * Flat tick-path statistic slots. The per-cycle loop only touches this
 * contiguous block; Core::foldStats() writes the values back into the
 * named registry statistics (averages keep integer sums + sample
 * counts, so the fold is byte-exact). tests/sim/flatstats_test.cc
 * asserts the reconciliation, and the dcglint `tick-path-stats` check
 * keeps registry calls out of the tick path.
 */
enum class CoreStat : unsigned
{
    Cycles,
    Committed,
    Issued,
    FetchStallCycles,
    RobFullStalls,
    LsqFullStalls,
    Mispredicts,
    SkippedCycles,
    CommitWaitIssue,
    CommitWaitComplete,
    CommitWaitStoreBuf,
    WindowOccSum,
    WindowOccSamples,
    IssueWaitSum,
    IssueWaitSamples,
    FetchedSum,
    FetchedSamples,
    CommitLatSum,
    CommitLatSamples,
    NumStats
};

inline constexpr unsigned kNumCoreStats =
    static_cast<unsigned>(CoreStat::NumStats);

class Core
{
  public:
    Core(const CoreConfig &config, InstSource &gen,
         MemoryHierarchy &mem, BranchPredictor &bpred,
         StatRegistry &stats);

    /** Advance one cycle. */
    void tick();

    /**
     * Cycles the next tick would provably spend doing nothing: fetch
     * is stalled past the next cycle, every queue is drained and the
     * activity ledger holds no scheduled event. 0 when the machine
     * cannot skip.
     */
    Cycle idleSkipAvailable() const;

    /**
     * Jump over @p cycles provably idle cycles (as reported by
     * idleSkipAvailable) in O(1), charging exactly the statistics the
     * per-cycle path would have: cycle count, occupancy samples and
     * fetch-stall cycles. The caller accounts gating/power via
     * GatingPolicy::skipIdle.
     */
    void skipIdle(Cycle cycles);

    /** Activity of the cycle just simulated. */
    const CycleActivity &activity() const { return *currentAct; }

    Cycle cycle() const { return wheel.cycle(); }
    InstSeq committedInsts() const
    { return stat(CoreStat::Committed); }
    double ipc() const;

    /** Read one flat tick-path statistic slot. */
    std::uint64_t
    stat(CoreStat s) const
    {
        return flat[static_cast<unsigned>(s)];
    }

    /**
     * Fold the flat counter block into the named registry statistics.
     * Cheap and idempotent; called at report time (and by tests that
     * read the registry mid-run).
     */
    void foldStats() const;

    /** Zero the flat counter block (measurement-window reset). */
    void resetStats() { flat.fill(0); }

    const CoreConfig &config() const { return cfg; }
    const PipeTiming &timing() const { return pipeTiming; }

    /// @name PLB constraint hooks (Sec 4.3)
    /// @{
    void setIssueWidthLimit(unsigned width);
    void setFuEnabledCount(FuType type, unsigned count);
    void setDcachePortLimit(unsigned ports);
    void setResultBusLimit(unsigned buses);

    unsigned issueWidthLimit() const { return issueLimit; }
    unsigned dcachePortLimit() const { return portLimit; }
    unsigned resultBusLimit() const { return busLimit; }
    const FuPool &fuPool() const { return fus; }
    /// @}

  private:
    /** Fetched instruction awaiting rename. */
    struct FrontEntry
    {
        MicroOp op;
        Cycle fetchCycle = 0;
        bool mispredicted = false;
    };

    /** Per-OpClass constants, resolved once at construction. */
    struct OpClassInfo
    {
        std::uint8_t fu = 0;         ///< FuType
        std::uint8_t issueRate = 1;
        std::uint16_t latency = 1;
        std::uint8_t metaBits = 0;   ///< Window::kIsFp / kWritesResult
    };

    void commit(CycleActivity &act);
    void drainStores();
    void issue(CycleActivity &act);
    void rename(CycleActivity &act);
    void fetch(CycleActivity &act);
    void fetchWrongPath(CycleActivity &act);
    void issueOne(unsigned idx, CycleActivity &act, Cycle now);
    void scheduleReady(unsigned idx, Cycle t);

    std::uint64_t &
    statRef(CoreStat s)
    {
        return flat[static_cast<unsigned>(s)];
    }

    CoreConfig cfg;
    PipeTiming pipeTiming;

    InstSource &gen;
    MemoryHierarchy &mem;
    BranchPredictor &bpred;

    ActivityWheel wheel;
    CycleActivity *currentAct;

    Window window;
    Lsq lsq;
    StoreBuffer storeBuf;
    FuPool fus;

    std::array<OpClassInfo, kNumOpClasses> clsInfo{};

    /**
     * Producer scoreboard ring: consumer-visible ready cycles. One
     * extra pinned-zero slot backs the "no in-flight producer"
     * sentinel, so readiness checks are branch-free.
     */
    std::vector<Cycle> prodReady;
    std::uint64_t prodCount = 0;

    /** Fetched instructions awaiting rename (fixed ring). */
    std::vector<FrontEntry> fq;
    unsigned fqHead = 0;
    unsigned fqCount = 0;
    unsigned fqMask;
    unsigned frontQCap;

    /** Fetch redirect/stall state. */
    Cycle fetchResumeAt = 0;
    bool waitingForBranch = false;  ///< stalled on unresolved mispredict
    /** Wrong-path fetch state (modelWrongPathFetch). */
    bool wrongPathActive = false;
    Addr wrongPathPc = 0;
    bool pendingOpValid = false;
    MicroOp pendingOp;
    Addr lastFetchLine = ~Addr{0};

    /** Window entries renamed but not yet issued. */
    unsigned iqOccupied = 0;

    /**
     * Event-driven wakeup state. An entry appears in `issuable` (a
     * bitmap parallel to the window's physical slots) only once its
     * select-eligibility cycle has arrived and every source operand
     * has a met ready time, so the issue scan never revisits
     * dependence-blocked entries. Entries whose producers have not
     * issued yet park on intrusive per-producer chains (links encode
     * (slot << 1) | sourceIndex); waitCount holds the number of
     * still-unknown producers, and readyBuckets is a cycle-indexed
     * ring of entries whose wake cycle is known but in the future.
     */
    std::vector<std::uint64_t> issuable;
    std::vector<std::uint8_t> waitCount;
    std::vector<std::uint16_t> waiterHead;   ///< per producer slot
    std::vector<std::uint16_t> nextWaiter0;  ///< chain link via src0
    std::vector<std::uint16_t> nextWaiter1;  ///< chain link via src1
    std::vector<std::vector<std::uint16_t>> readyBuckets;

    /** Dynamic constraints (PLB). */
    unsigned issueLimit;
    unsigned portLimit;
    unsigned busLimit;

    /** Flat tick-path statistic block (see CoreStat). */
    std::array<std::uint64_t, kNumCoreStats> flat{};

    /// @name Registry statistics, written only by foldStats()
    /// @{
    Counter &numCycles;
    Counter &numCommitted;
    Counter &numIssued;
    Counter &fetchStallCycles;
    Counter &robFullStalls;
    Counter &lsqFullStalls;
    Counter &mispredicts;
    Counter &skippedCycles;
    Formula &ipcFormula;
    Average &windowOccupancy;
    Average &issueWait;
    Average &fetchedPerCycle;
    Average &commitLatency;
    Counter &commitWaitIssue;
    Counter &commitWaitComplete;
    Counter &commitWaitStoreBuf;
    /// @}
};

} // namespace dcg

#endif // DCG_PIPELINE_CORE_HH
