/**
 * @file
 * Reorder buffer / instruction window (Table 1: 128 entries). The
 * design follows SimpleScalar's RUU: one unified structure serves as
 * both ROB and issue window.
 */

#ifndef DCG_PIPELINE_ROB_HH
#define DCG_PIPELINE_ROB_HH

#include <vector>

#include "common/log.hh"
#include "pipeline/dyn_inst.hh"

namespace dcg {

class Rob
{
  public:
    explicit Rob(unsigned capacity)
        : entries(capacity), headIdx(0), count(0)
    {
        DCG_ASSERT(capacity >= 4, "window too small");
    }

    bool full() const { return count == entries.size(); }
    bool empty() const { return count == 0; }
    unsigned size() const { return count; }
    unsigned capacity() const
    { return static_cast<unsigned>(entries.size()); }

    /** Allocate the next entry at the tail (resets it). */
    DynInst &
    push()
    {
        DCG_ASSERT(!full(), "push into full window");
        const unsigned idx = (headIdx + count) % entries.size();
        ++count;
        entries[idx] = DynInst{};
        return entries[idx];
    }

    DynInst &
    head()
    {
        DCG_ASSERT(!empty(), "head of empty window");
        return entries[headIdx];
    }

    void
    pop()
    {
        DCG_ASSERT(!empty(), "pop from empty window");
        headIdx = (headIdx + 1) % entries.size();
        --count;
    }

    /** Entry at logical position @p i (0 = oldest). */
    DynInst &
    at(unsigned i)
    {
        DCG_ASSERT(i < count, "window index out of range");
        return entries[(headIdx + i) % entries.size()];
    }

    const DynInst &
    at(unsigned i) const
    {
        DCG_ASSERT(i < count, "window index out of range");
        return entries[(headIdx + i) % entries.size()];
    }

  private:
    std::vector<DynInst> entries;
    unsigned headIdx;
    unsigned count;
};

} // namespace dcg

#endif // DCG_PIPELINE_ROB_HH
