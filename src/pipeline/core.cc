#include "pipeline/core.hh"

#include <algorithm>

#include "common/log.hh"

namespace dcg {

namespace {

/** Producer scoreboard size; must exceed window + max dep distance. */
constexpr std::uint64_t kProdRingSize = 8192;
constexpr std::uint64_t kProdRingMask = kProdRingSize - 1;

/**
 * Sentinel producer slot for "no in-flight producer": indexes the
 * extra pinned-zero scoreboard entry, so srcs-ready checks need no
 * validity branch.
 */
constexpr std::uint16_t kNoProducer =
    static_cast<std::uint16_t>(kProdRingSize);

/** Nil link for the per-producer waiter chains. */
constexpr std::uint16_t kNilWaiter = 0xffff;

/**
 * Ready-ring span. Wake cycles are bounded by the same event horizon
 * as the ActivityWheel (every producer's completion is also scheduled
 * there), so the same size is provably sufficient.
 */
constexpr unsigned kReadyRing = 1024;

unsigned
roundUpPow2(unsigned n)
{
    unsigned p = 1;
    while (p < n)
        p <<= 1;
    return p;
}

} // namespace

Core::Core(const CoreConfig &config, InstSource &gen_,
           MemoryHierarchy &mem_, BranchPredictor &bpred_,
           StatRegistry &stats)
    : cfg(config),
      pipeTiming(config),
      gen(gen_),
      mem(mem_),
      bpred(bpred_),
      wheel(1024),
      currentAct(&wheel.current()),
      window(config.windowSize),
      lsq(config.lsqSize),
      storeBuf(config.storeBufferSize),
      fus(config.fuCount, config.sequentialPriority),
      prodReady(kProdRingSize + 1, 0),
      frontQCap(config.fetchWidth * (pipeTiming.fetchToRename + 4)),
      issueLimit(config.issueWidth),
      portLimit(config.dcachePorts),
      busLimit(config.numResultBuses),
      numCycles(stats.counter("core.cycles", "simulated cycles")),
      numCommitted(stats.counter("core.committed",
                                 "committed instructions")),
      numIssued(stats.counter("core.issued", "issued instructions")),
      fetchStallCycles(stats.counter("core.fetch_stall_cycles",
                                     "cycles fetch made no progress")),
      robFullStalls(stats.counter("core.rob_full_stalls",
                                  "rename stalls on full window")),
      lsqFullStalls(stats.counter("core.lsq_full_stalls",
                                  "rename stalls on full LSQ")),
      mispredicts(stats.counter("core.mispredicts",
                                "resolved branch mispredictions")),
      skippedCycles(stats.counter(
          "core.skipped_cycles",
          "idle cycles advanced in bulk by skip-ahead")),
      ipcFormula(stats.formula("core.ipc", "committed IPC")),
      windowOccupancy(stats.average("core.window_occupancy",
                                    "average ROB/window occupancy")),
      issueWait(stats.average("core.issue_wait",
                              "cycles from select-eligible to issue")),
      fetchedPerCycle(stats.average("core.fetched_per_cycle",
                                    "instructions fetched per cycle")),
      commitLatency(stats.average("core.commit_latency",
                                  "cycles from rename to commit")),
      commitWaitIssue(stats.counter("core.commit_wait_issue",
                                    "commit blocked: head not issued")),
      commitWaitComplete(stats.counter(
          "core.commit_wait_complete",
          "commit blocked: head issued but not complete")),
      commitWaitStoreBuf(stats.counter(
          "core.commit_wait_storebuf",
          "commit blocked: store buffer full"))
{
    ipcFormula.define([this]() { return ipc(); });

    // Resolve per-OpClass timing/routing once; the issue loop then
    // reads a 6-byte record instead of calling through op_class.cc.
    for (unsigned c = 0; c < kNumOpClasses; ++c) {
        const auto cls = static_cast<OpClass>(c);
        const OpTiming t = opTiming(cls);
        OpClassInfo &info = clsInfo[c];
        info.fu = static_cast<std::uint8_t>(opFuType(cls));
        info.issueRate = static_cast<std::uint8_t>(t.issueRate);
        info.latency = static_cast<std::uint16_t>(t.latency);
        if (isFpOp(cls))
            info.metaBits |= Window::kIsFp;
        if (writesResult(cls))
            info.metaBits |= Window::kWritesResult;
    }

    // Fetch can overshoot the rename-queue cap by one block within a
    // cycle (the cap is checked once per cycle), so the physical ring
    // leaves room for a full fetch group beyond it.
    fq.resize(roundUpPow2(frontQCap + cfg.fetchWidth));
    fqMask = static_cast<unsigned>(fq.size()) - 1;

    // Event-driven wakeup state (waiter links pack a slot index and a
    // source selector into 16 bits).
    const unsigned phys = window.physicalCapacity();
    DCG_ASSERT(phys < (kNilWaiter >> 1), "window too large for links");
    issuable.assign((phys + 63) / 64, 0);
    waitCount.assign(phys, 0);
    waiterHead.assign(kProdRingSize + 1, kNilWaiter);
    nextWaiter0.assign(phys, kNilWaiter);
    nextWaiter1.assign(phys, kNilWaiter);
    readyBuckets.resize(kReadyRing);
}

double
Core::ipc() const
{
    const double c = static_cast<double>(stat(CoreStat::Cycles));
    return c > 0
        ? static_cast<double>(stat(CoreStat::Committed)) / c : 0.0;
}

void
Core::foldStats() const
{
    numCycles.set(stat(CoreStat::Cycles));
    numCommitted.set(stat(CoreStat::Committed));
    numIssued.set(stat(CoreStat::Issued));
    fetchStallCycles.set(stat(CoreStat::FetchStallCycles));
    robFullStalls.set(stat(CoreStat::RobFullStalls));
    lsqFullStalls.set(stat(CoreStat::LsqFullStalls));
    mispredicts.set(stat(CoreStat::Mispredicts));
    skippedCycles.set(stat(CoreStat::SkippedCycles));
    commitWaitIssue.set(stat(CoreStat::CommitWaitIssue));
    commitWaitComplete.set(stat(CoreStat::CommitWaitComplete));
    commitWaitStoreBuf.set(stat(CoreStat::CommitWaitStoreBuf));
    // Every sample is integer-valued, so sum-of-samples stays exact in
    // a double and the fold reproduces sample()-accumulation byte for
    // byte.
    windowOccupancy.set(
        static_cast<double>(stat(CoreStat::WindowOccSum)),
        stat(CoreStat::WindowOccSamples));
    issueWait.set(static_cast<double>(stat(CoreStat::IssueWaitSum)),
                  stat(CoreStat::IssueWaitSamples));
    fetchedPerCycle.set(
        static_cast<double>(stat(CoreStat::FetchedSum)),
        stat(CoreStat::FetchedSamples));
    commitLatency.set(
        static_cast<double>(stat(CoreStat::CommitLatSum)),
        stat(CoreStat::CommitLatSamples));
}

void
Core::tick()
{
    CycleActivity &act = wheel.advance();
    currentAct = &act;
    statRef(CoreStat::Cycles) += 1;
    statRef(CoreStat::WindowOccSum) += window.size();
    statRef(CoreStat::WindowOccSamples) += 1;
    act.iqOccupied = static_cast<std::uint8_t>(
        std::min<unsigned>(iqOccupied, 255));
    commit(act);
    drainStores();
    issue(act);
    rename(act);
    fetch(act);
}

Cycle
Core::idleSkipAvailable() const
{
    const Cycle now = wheel.cycle();
    // Fetch must be stalled past the next cycle with no unresolved
    // branch, nothing in flight anywhere, and no wrong-path fetch to
    // model; the wheel then proves no unit/queue/miss event can fire
    // before the fetch block arrives.
    if (waitingForBranch || fetchResumeAt <= now + 1)
        return 0;
    if (!window.empty() || fqCount != 0 || !storeBuf.empty())
        return 0;
    if (cfg.modelWrongPathFetch && wrongPathActive)
        return 0;
    if (wheel.lastScheduled() > now)
        return 0;
    return fetchResumeAt - now - 1;
}

void
Core::skipIdle(Cycle cycles)
{
    wheel.skip(cycles);
    currentAct = &wheel.current();
    // Exactly what the per-cycle path charges for an idle cycle: the
    // cycle itself, one zero-valued occupancy sample, and a fetch
    // stall. fetchedPerCycle is *not* sampled on the stall path.
    statRef(CoreStat::Cycles) += cycles;
    statRef(CoreStat::WindowOccSamples) += cycles;
    statRef(CoreStat::FetchStallCycles) += cycles;
    statRef(CoreStat::SkippedCycles) += cycles;
}

void
Core::commit(CycleActivity &act)
{
    const Cycle now = wheel.cycle();
    unsigned budget = cfg.commitWidth;
    while (budget > 0 && !window.empty()) {
        const unsigned h = window.headIndex();
        if (window.isUnissued(h)) {
            statRef(CoreStat::CommitWaitIssue) += 1;
            break;
        }
        if (window.commitReady[h] > now) {
            statRef(CoreStat::CommitWaitComplete) += 1;
            break;
        }
        const std::uint8_t m = window.meta[h];
        if (m & Window::kIsStore) {
            if (storeBuf.full()) {
                statRef(CoreStat::CommitWaitStoreBuf) += 1;
                break;
            }
            storeBuf.push(window.effAddr[h]);
        }
        if (m & Window::kInLsq)
            lsq.release();
        statRef(CoreStat::CommitLatSum) += now - window.renameCycle[h];
        statRef(CoreStat::CommitLatSamples) += 1;
        ++act.committed;
        statRef(CoreStat::Committed) += 1;
        --budget;
        window.pop();
    }
}

void
Core::drainStores()
{
    if (storeBuf.empty())
        return;
    const Cycle now = wheel.cycle();
    // Case (1) of Sec 3.3: an upcoming store access is known one cycle
    // ahead, so the clock-gate control of the D-cache port decoder can
    // be set up in time. Case (2) (ablation) delays the store by one
    // more cycle.
    const Cycle target = now + 1 + (cfg.delayStoresOneCycle ? 1 : 0);
    CycleActivity &ta = wheel.at(target, 1);
    while (!storeBuf.empty() && ta.dcachePortsUsed < portLimit) {
        const Addr addr = storeBuf.pop();
        ++ta.dcachePortsUsed;
        ++ta.dcacheAccesses;
        ++ta.lsqOps;
        mem.dcache().access(addr, true, target);
    }
}

void
Core::issue(CycleActivity &act)
{
    const Cycle now = wheel.cycle();
    // Entries whose wake cycle arrives now enter the issuable set;
    // arrival order within a cycle is irrelevant because the bitmap
    // scan below re-imposes age order.
    std::vector<std::uint16_t> &due = readyBuckets[now % kReadyRing];
    for (const std::uint16_t idx : due)
        issuable[idx >> 6] |= std::uint64_t{1} << (idx & 63);
    due.clear();

    unsigned budget = std::min(cfg.issueWidth, issueLimit);
    if (budget == 0)
        return;
    window.forEachSetIn(issuable, [&](unsigned idx) {
        const OpClassInfo &info = clsInfo[window.cls[idx]];
        const Cycle exec_start = now + pipeTiming.selectToExec;
        const int unit = fus.allocate(static_cast<FuType>(info.fu),
                                      exec_start, info.issueRate);
        if (unit < 0)
            return true;  // structural hazard; stays issuable
        issuable[idx >> 6] &= ~(std::uint64_t{1} << (idx & 63));
        issueOne(idx, act, now);
        // FU occupancy is deterministic at selection time: the GRANT
        // signal generated now gates the unit selectToExec cycles ahead
        // (Figure 5/6 of the paper).
        wheel.markFuBusy(static_cast<FuType>(info.fu),
                         static_cast<unsigned>(unit), exec_start,
                         exec_start + info.latency,
                         pipeTiming.selectToExec);
        return --budget > 0;
    });
}

void
Core::issueOne(unsigned idx, CycleActivity &act, Cycle now)
{
    const auto cls = static_cast<OpClass>(window.cls[idx]);
    const OpClassInfo &info = clsInfo[window.cls[idx]];
    const std::uint8_t m = window.meta[idx];
    const Cycle exec_start = now + pipeTiming.selectToExec;

    window.markIssued(idx);
    DCG_ASSERT(iqOccupied > 0, "issue from empty issue queue");
    --iqOccupied;
    statRef(CoreStat::IssueWaitSum) += now - window.eligible[idx];
    statRef(CoreStat::IssueWaitSamples) += 1;
    ++act.issued;
    statRef(CoreStat::Issued) += 1;
    act.bumpLatchFlux(LatchPhase::IssueOut, cfg.issueWidth);

    if (m & Window::kIsFp)
        ++act.fpIssued;

    // Register-file reads happen in the read stage, next cycle.
    wheel.at(now + 1, 1).regReads +=
        static_cast<std::uint8_t>(m >> Window::kNumSrcsShift);
    // One-hot issue encoding gates the read-out latch slots (Sec 3.2).
    wheel.at(exec_start, 1).bumpLatchFlux(LatchPhase::ReadOut,
                                          cfg.issueWidth);

    Cycle complete;
    if (cls == OpClass::Load) {
        // A load selected at X reaches the D-cache at X+3 with the
        // default depths (Sec 3.3); the port is reserved now, which is
        // exactly the advance knowledge DCG exploits.
        Cycle mem_cycle = exec_start + 1;
        while (wheel.at(mem_cycle).dcachePortsUsed >= portLimit)
            ++mem_cycle;
        CycleActivity &ma = wheel.at(mem_cycle,
                                     pipeTiming.selectToExec + 1);
        ++ma.dcachePortsUsed;
        ++ma.dcacheAccesses;
        ++ma.lsqOps;
        const Cycle lat = mem.dcache().access(window.effAddr[idx],
                                              false, mem_cycle);
        complete = mem_cycle + lat;
        // Address-generation result crosses the exec-out latch.
        wheel.at(exec_start + 1, 1).bumpLatchFlux(LatchPhase::ExecOut,
                                                  cfg.issueWidth);
    } else {
        complete = exec_start + info.latency;
        wheel.at(complete, 1).bumpLatchFlux(LatchPhase::ExecOut,
                                            cfg.issueWidth);
    }

    if (m & Window::kWritesResult) {
        // Result-bus slot: drive happens after the memory stage
        // (Sec 3.4: executed in X, writeback in X+2 for unit ops).
        Cycle wb = complete + (cls == OpClass::Load ? 1 : cfg.depth.mem);
        while (wheel.at(wb).resultBusUsed >= busLimit)
            ++wb;
        CycleActivity &wa = wheel.at(wb, 2);
        ++wa.resultBusUsed;
        ++wa.regWrites;
        wheel.at(wb, 1).bumpLatchFlux(LatchPhase::MemOut,
                                      cfg.issueWidth);
        wheel.at(wb + cfg.depth.wb, 1).bumpLatchFlux(LatchPhase::WbOut,
                                                     cfg.issueWidth);
        window.commitReady[idx] = wb + pipeTiming.wbToCommit;

        // Consumers may issue once their read stage lines up with the
        // data (full bypass network).
        DCG_ASSERT(window.dest[idx] != kNoProducer,
                   "result op without producer slot");
        const Cycle ready =
            std::max(complete - pipeTiming.selectToExec, now + 1);
        const std::uint16_t d = window.dest[idx];
        prodReady[d] = ready;
        // Wakeup broadcast into the window (tag match in the CAM).
        wheel.at(ready, 1).iqWakeups++;
        // Consumers parked on this producer now know their last
        // unknown operand time; any whose wait count hits zero has a
        // decidable issue cycle.
        std::uint16_t link = waiterHead[d];
        waiterHead[d] = kNilWaiter;
        while (link != kNilWaiter) {
            const unsigned w = link >> 1;
            link = (link & 1) ? nextWaiter1[w] : nextWaiter0[w];
            if (--waitCount[w] == 0)
                scheduleReady(w,
                              std::max({window.eligible[w],
                                        prodReady[window.src0[w]],
                                        prodReady[window.src1[w]]}));
        }
    } else {
        // Stores and branches pass through mem/wb without a result.
        wheel.at(complete + cfg.depth.mem, 1)
            .bumpLatchFlux(LatchPhase::MemOut, cfg.issueWidth);
        wheel.at(complete + cfg.depth.mem + cfg.depth.wb, 1)
            .bumpLatchFlux(LatchPhase::WbOut, cfg.issueWidth);
        window.commitReady[idx] =
            complete + cfg.depth.mem + pipeTiming.wbToCommit;
    }

    if (m & Window::kMispredicted) {
        // The front end restarts on the correct path once the branch
        // resolves at the end of execute.
        fetchResumeAt = complete + 1;
        waitingForBranch = false;
        statRef(CoreStat::Mispredicts) += 1;
    }
}

void
Core::scheduleReady(unsigned idx, Cycle t)
{
    const Cycle now = wheel.cycle();
    if (t <= now) {
        // Rename runs after issue within a tick, so a wake time of
        // "now" still means the next issue scan — same as the old
        // per-cycle poll.
        issuable[idx >> 6] |= std::uint64_t{1} << (idx & 63);
        return;
    }
    DCG_ASSERT(t - now < kReadyRing, "wake time beyond ready ring");
    readyBuckets[t % kReadyRing].push_back(
        static_cast<std::uint16_t>(idx));
}

void
Core::rename(CycleActivity &act)
{
    const Cycle now = wheel.cycle();
    unsigned budget = cfg.renameWidth;
    while (budget > 0 && fqCount > 0) {
        const FrontEntry &fi = fq[fqHead];
        if (fi.fetchCycle + pipeTiming.fetchToRename > now)
            break;
        if (window.full()) {
            statRef(CoreStat::RobFullStalls) += 1;
            break;
        }
        const MicroOp &op = fi.op;
        const bool is_mem = op.isMem();
        if (is_mem && lsq.full()) {
            statRef(CoreStat::LsqFullStalls) += 1;
            break;
        }

        const unsigned idx = window.push();
        const OpClassInfo &info = clsInfo[static_cast<unsigned>(op.cls)];
        window.renameCycle[idx] = now;
        window.eligible[idx] = now + pipeTiming.renameToSelect;
        window.commitReady[idx] = kCycleNever;
        window.effAddr[idx] = op.effAddr;
        window.cls[idx] = static_cast<std::uint8_t>(op.cls);

        // Resolve dependence distances against the producer scoreboard.
        std::uint16_t s0 = kNoProducer;
        std::uint16_t s1 = kNoProducer;
        if (op.numSrcs > 0) {
            const std::uint32_t d = op.srcDist[0];
            if (d != 0 && d <= prodCount)
                s0 = static_cast<std::uint16_t>(
                    (prodCount - d) & kProdRingMask);
        }
        if (op.numSrcs > 1) {
            const std::uint32_t d = op.srcDist[1];
            if (d != 0 && d <= prodCount)
                s1 = static_cast<std::uint16_t>(
                    (prodCount - d) & kProdRingMask);
        }
        window.src0[idx] = s0;
        window.src1[idx] = s1;

        std::uint8_t m = static_cast<std::uint8_t>(
            info.metaBits |
            (static_cast<unsigned>(op.numSrcs)
             << Window::kNumSrcsShift));
        if (info.metaBits & Window::kWritesResult) {
            window.dest[idx] = static_cast<std::uint16_t>(
                prodCount & kProdRingMask);
            prodReady[prodCount & kProdRingMask] = kCycleNever;
            ++prodCount;
        } else {
            window.dest[idx] = kNoProducer;
        }
        if (is_mem) {
            lsq.allocate();
            m |= Window::kInLsq;
            if (op.isStore())
                m |= Window::kIsStore;
        }
        if (fi.mispredicted)
            m |= Window::kMispredicted;
        window.meta[idx] = m;

        // Event-driven wakeup: park on the chain of every source whose
        // producer has not issued yet; otherwise the wake cycle is
        // already known and the entry goes straight to the ready ring.
        unsigned wc = 0;
        if (s0 != kNoProducer && prodReady[s0] == kCycleNever) {
            nextWaiter0[idx] = waiterHead[s0];
            waiterHead[s0] = static_cast<std::uint16_t>(idx << 1);
            ++wc;
        }
        if (s1 != kNoProducer && prodReady[s1] == kCycleNever) {
            nextWaiter1[idx] = waiterHead[s1];
            waiterHead[s1] = static_cast<std::uint16_t>((idx << 1) | 1);
            ++wc;
        }
        waitCount[idx] = static_cast<std::uint8_t>(wc);
        if (wc == 0)
            scheduleReady(idx, std::max({window.eligible[idx],
                                         prodReady[s0],
                                         prodReady[s1]}));

        ++iqOccupied;
        ++act.renamed;
        act.bumpLatchFlux(LatchPhase::DecodeOut, cfg.issueWidth);
        // The rename-out latch is gated with knowledge available one
        // stage earlier (Sec 2.2.1).
        wheel.at(now + cfg.depth.rename, 1)
            .bumpLatchFlux(LatchPhase::RenameOut, cfg.issueWidth);

        --budget;
        fqHead = (fqHead + 1) & fqMask;
        --fqCount;
    }
}

void
Core::fetch(CycleActivity &act)
{
    const Cycle now = wheel.cycle();
    if (waitingForBranch || fetchResumeAt > now) {
        if (cfg.modelWrongPathFetch && wrongPathActive)
            fetchWrongPath(act);
        statRef(CoreStat::FetchStallCycles) += 1;
        return;
    }
    wrongPathActive = false;
    if (fqCount >= frontQCap) {
        statRef(CoreStat::FetchStallCycles) += 1;
        return;
    }

    const unsigned line_shift = 5;  // 32-byte I-cache lines
    // The fetch unit has a two-line fetch buffer: a block may span one
    // line boundary but not two (classic 8-wide front end).
    Addr cur_line = ~Addr{0};
    unsigned lines_used = 0;
    unsigned n = 0;
    while (n < cfg.fetchWidth) {
        MicroOp op = pendingOpValid ? pendingOp : gen.next();
        pendingOpValid = false;

        const Addr line = op.pc >> line_shift;
        if (line != cur_line) {
            if (lines_used == 2) {
                // Third line this cycle: resume next cycle.
                pendingOp = op;
                pendingOpValid = true;
                break;
            }
            cur_line = line;
            ++lines_used;
            if (line != lastFetchLine) {
                ++act.icacheAccesses;
                const Cycle lat = mem.icache().access(op.pc, false, now);
                lastFetchLine = line;
                if (lat > mem.icache().geometry().hitLatency) {
                    // I-cache miss: this block arrives later.
                    pendingOp = op;
                    pendingOpValid = true;
                    fetchResumeAt = now + lat;
                    break;
                }
            }
        }

        // Build the front-queue entry in place (a MicroOp copy per
        // fetched op is measurable at this loop's rate).
        FrontEntry &fe = fq[(fqHead + fqCount) & fqMask];
        fe.op = op;
        fe.fetchCycle = now;
        fe.mispredicted = false;

        bool stop_block = false;
        if (op.isBranch()) {
            ++act.bpredLookups;
            const BranchPrediction pred = bpred.predict(op.pc);
            const bool ok = bpred.resolve(op.pc, pred, op.taken,
                                          op.target);
            fe.mispredicted = !ok;
            if (!ok) {
                // Correct-path fetch stalls until the branch resolves;
                // optionally the machine runs down the wrong path for
                // power purposes (modelWrongPathFetch).
                waitingForBranch = true;
                stop_block = true;
                wrongPathActive = true;
                // The path the (wrong) prediction would have taken.
                wrongPathPc = pred.taken && pred.btbHit
                    ? pred.target : op.pc + 4;
            } else if (op.taken) {
                stop_block = true;  // redirect ends the fetch block
            }
        }

        ++fqCount;
        ++n;
        ++act.fetched;
        act.bumpLatchFlux(LatchPhase::FetchOut, cfg.issueWidth);
        if (stop_block)
            break;
    }
    statRef(CoreStat::FetchedSum) += n;
    statRef(CoreStat::FetchedSamples) += 1;
    if (n == 0)
        statRef(CoreStat::FetchStallCycles) += 1;
}

void
Core::fetchWrongPath(CycleActivity &act)
{
    // Fetch speculative junk down the mispredicted path: charges
    // I-cache and fetch-path energy and pollutes the I-cache; nothing
    // enters the front queue. A wrong-path I-cache miss does not stall
    // anything (the data is thrown away anyway), but the pollution can
    // perturb later correct-path fetches, as in real machines.
    const Cycle now = wheel.cycle();
    const unsigned line_shift = 5;
    Addr last_line = ~Addr{0};
    for (unsigned n = 0; n < cfg.fetchWidth; ++n) {
        const Addr line = wrongPathPc >> line_shift;
        if (line != last_line) {
            ++act.icacheAccesses;
            mem.icache().access(wrongPathPc, false, now);
            last_line = line;
        }
        ++act.wrongPathFetched;
        act.bumpLatchFlux(LatchPhase::FetchOut, cfg.issueWidth);
        // The wrong path still runs the same program: keep it inside a
        // 64KB window so it touches plausible code addresses rather
        // than marching off into unmapped space.
        const Addr base = wrongPathPc & ~Addr{0xffff};
        wrongPathPc = base + ((wrongPathPc + 4) & Addr{0xffff});
    }
}

void
Core::setIssueWidthLimit(unsigned width)
{
    issueLimit = std::clamp(width, 1u, cfg.issueWidth);
}

void
Core::setFuEnabledCount(FuType type, unsigned count)
{
    fus.setEnabledCount(type, count);
}

void
Core::setDcachePortLimit(unsigned ports)
{
    portLimit = std::clamp(ports, 1u, cfg.dcachePorts);
}

void
Core::setResultBusLimit(unsigned buses)
{
    busLimit = std::clamp(buses, 1u, cfg.numResultBuses);
}

} // namespace dcg
