#include "pipeline/core.hh"

#include <algorithm>

#include "common/log.hh"

namespace dcg {

namespace {

/** Producer scoreboard size; must exceed window + max dep distance. */
constexpr std::uint64_t kProdRingSize = 8192;

} // namespace

Core::Core(const CoreConfig &config, InstSource &gen_,
           MemoryHierarchy &mem_, BranchPredictor &bpred_,
           StatRegistry &stats)
    : cfg(config),
      pipeTiming(config),
      gen(gen_),
      mem(mem_),
      bpred(bpred_),
      wheel(1024),
      currentAct(&wheel.current()),
      rob(config.windowSize),
      lsq(config.lsqSize),
      storeBuf(config.storeBufferSize),
      fus(config.fuCount, config.sequentialPriority),
      prodReady(kProdRingSize, 0),
      frontQCap(config.fetchWidth * (pipeTiming.fetchToRename + 4)),
      issueLimit(config.issueWidth),
      portLimit(config.dcachePorts),
      busLimit(config.numResultBuses),
      numCycles(stats.counter("core.cycles", "simulated cycles")),
      numCommitted(stats.counter("core.committed",
                                 "committed instructions")),
      numIssued(stats.counter("core.issued", "issued instructions")),
      fetchStallCycles(stats.counter("core.fetch_stall_cycles",
                                     "cycles fetch made no progress")),
      robFullStalls(stats.counter("core.rob_full_stalls",
                                  "rename stalls on full window")),
      lsqFullStalls(stats.counter("core.lsq_full_stalls",
                                  "rename stalls on full LSQ")),
      mispredicts(stats.counter("core.mispredicts",
                                "resolved branch mispredictions")),
      ipcFormula(stats.formula("core.ipc", "committed IPC")),
      windowOccupancy(stats.average("core.window_occupancy",
                                    "average ROB/window occupancy")),
      issueWait(stats.average("core.issue_wait",
                              "cycles from select-eligible to issue")),
      fetchedPerCycle(stats.average("core.fetched_per_cycle",
                                    "instructions fetched per cycle")),
      commitLatency(stats.average("core.commit_latency",
                                  "cycles from rename to commit")),
      commitWaitIssue(stats.counter("core.commit_wait_issue",
                                    "commit blocked: head not issued")),
      commitWaitComplete(stats.counter(
          "core.commit_wait_complete",
          "commit blocked: head issued but not complete")),
      commitWaitStoreBuf(stats.counter(
          "core.commit_wait_storebuf",
          "commit blocked: store buffer full"))
{
    ipcFormula.define([this]() { return ipc(); });
}

double
Core::ipc() const
{
    const double c = static_cast<double>(numCycles.value());
    return c > 0 ? static_cast<double>(numCommitted.value()) / c : 0.0;
}

Cycle
Core::producerReadyAt(std::int64_t slot) const
{
    if (slot < 0)
        return 0;
    return prodReady[static_cast<std::uint64_t>(slot) % kProdRingSize];
}

bool
Core::srcsReady(const DynInst &di, Cycle now) const
{
    for (unsigned i = 0; i < di.op.numSrcs; ++i) {
        if (producerReadyAt(di.srcSlot[i]) > now)
            return false;
    }
    return true;
}

void
Core::tick()
{
    CycleActivity &act = wheel.advance();
    currentAct = &act;
    ++numCycles;
    windowOccupancy.sample(rob.size());
    act.iqOccupied = static_cast<std::uint8_t>(
        std::min<unsigned>(iqOccupied, 255));
    commit(act);
    drainStores(act);
    issue(act);
    rename(act);
    fetch(act);
}

void
Core::commit(CycleActivity &act)
{
    const Cycle now = wheel.cycle();
    unsigned budget = cfg.commitWidth;
    while (budget > 0 && !rob.empty()) {
        DynInst &head = rob.head();
        if (!head.issued) {
            ++commitWaitIssue;
            break;
        }
        if (head.commitReady > now) {
            ++commitWaitComplete;
            break;
        }
        if (head.op.isStore()) {
            if (storeBuf.full()) {
                ++commitWaitStoreBuf;
                break;
            }
            storeBuf.push(head.op.effAddr);
        }
        if (head.inLsq)
            lsq.release();
        commitLatency.sample(static_cast<double>(now - head.renameCycle));
        ++act.committed;
        ++numCommitted;
        --budget;
        rob.pop();
    }
}

void
Core::drainStores(CycleActivity &act)
{
    (void)act;
    const Cycle now = wheel.cycle();
    // Case (1) of Sec 3.3: an upcoming store access is known one cycle
    // ahead, so the clock-gate control of the D-cache port decoder can
    // be set up in time. Case (2) (ablation) delays the store by one
    // more cycle.
    const Cycle target = now + 1 + (cfg.delayStoresOneCycle ? 1 : 0);
    CycleActivity &ta = wheel.at(target, 1);
    while (!storeBuf.empty() && ta.dcachePortsUsed < portLimit) {
        const Addr addr = storeBuf.pop();
        ++ta.dcachePortsUsed;
        ++ta.dcacheAccesses;
        ++ta.lsqOps;
        mem.dcache().access(addr, true, target);
    }
}

void
Core::issue(CycleActivity &act)
{
    const Cycle now = wheel.cycle();
    unsigned budget = std::min(cfg.issueWidth, issueLimit);
    for (unsigned i = 0; i < rob.size() && budget > 0; ++i) {
        DynInst &di = rob.at(i);
        if (di.issued)
            continue;
        if (di.eligibleCycle > now)
            break;  // eligibility is monotonic in window order
        if (!srcsReady(di, now))
            continue;
        const FuType fu = opFuType(di.op.cls);
        const OpTiming t = opTiming(di.op.cls);
        const Cycle exec_start = now + pipeTiming.selectToExec;
        const int unit = fus.allocate(fu, exec_start, t.issueRate);
        if (unit < 0)
            continue;  // structural hazard; try younger instructions
        issueOne(di, act, now);
        // FU occupancy is deterministic at selection time: the GRANT
        // signal generated now gates the unit selectToExec cycles ahead
        // (Figure 5/6 of the paper).
        wheel.markFuBusy(fu, static_cast<unsigned>(unit), exec_start,
                         exec_start + t.latency, pipeTiming.selectToExec);
        --budget;
    }
}

void
Core::issueOne(DynInst &di, CycleActivity &act, Cycle now)
{
    const OpClass cls = di.op.cls;
    const OpTiming t = opTiming(cls);
    const Cycle exec_start = now + pipeTiming.selectToExec;

    di.issued = true;
    di.issueCycle = now;
    DCG_ASSERT(iqOccupied > 0, "issue from empty issue queue");
    --iqOccupied;
    issueWait.sample(static_cast<double>(now - di.eligibleCycle));
    ++act.issued;
    ++numIssued;
    act.bumpLatchFlux(LatchPhase::IssueOut, cfg.issueWidth);

    if (isFpOp(cls))
        ++act.fpIssued;

    // Register-file reads happen in the read stage, next cycle.
    wheel.at(now + 1, 1).regReads += di.op.numSrcs;
    // One-hot issue encoding gates the read-out latch slots (Sec 3.2).
    wheel.at(exec_start, 1).bumpLatchFlux(LatchPhase::ReadOut, cfg.issueWidth);

    Cycle complete;
    if (cls == OpClass::Load) {
        // A load selected at X reaches the D-cache at X+3 with the
        // default depths (Sec 3.3); the port is reserved now, which is
        // exactly the advance knowledge DCG exploits.
        Cycle mem_cycle = exec_start + 1;
        while (wheel.at(mem_cycle).dcachePortsUsed >= portLimit)
            ++mem_cycle;
        CycleActivity &ma = wheel.at(mem_cycle,
                                     pipeTiming.selectToExec + 1);
        ++ma.dcachePortsUsed;
        ++ma.dcacheAccesses;
        ++ma.lsqOps;
        const Cycle lat = mem.dcache().access(di.op.effAddr, false,
                                              mem_cycle);
        complete = mem_cycle + lat;
        // Address-generation result crosses the exec-out latch.
        wheel.at(exec_start + 1, 1).bumpLatchFlux(LatchPhase::ExecOut, cfg.issueWidth);
    } else {
        complete = exec_start + t.latency;
        wheel.at(complete, 1).bumpLatchFlux(LatchPhase::ExecOut, cfg.issueWidth);
    }
    di.completeCycle = complete;


    if (writesResult(cls)) {
        // Result-bus slot: drive happens after the memory stage
        // (Sec 3.4: executed in X, writeback in X+2 for unit ops).
        Cycle wb = complete + (cls == OpClass::Load ? 1 : cfg.depth.mem);
        while (wheel.at(wb).resultBusUsed >= busLimit)
            ++wb;
        CycleActivity &wa = wheel.at(wb, 2);
        ++wa.resultBusUsed;
        ++wa.regWrites;
        wheel.at(wb, 1).bumpLatchFlux(LatchPhase::MemOut, cfg.issueWidth);
        wheel.at(wb + cfg.depth.wb, 1).bumpLatchFlux(LatchPhase::WbOut, cfg.issueWidth);
        di.wbCycle = wb;
        di.commitReady = wb + pipeTiming.wbToCommit;

        // Consumers may issue once their read stage lines up with the
        // data (full bypass network).
        DCG_ASSERT(di.destSlot >= 0, "result op without producer slot");
        const Cycle ready = complete - pipeTiming.selectToExec;
        prodReady[static_cast<std::uint64_t>(di.destSlot) %
                  kProdRingSize] = std::max(ready, now + 1);
        // Wakeup broadcast into the window (tag match in the CAM).
        wheel.at(std::max(ready, now + 1), 1).iqWakeups++;
    } else {
        // Stores and branches pass through mem/wb without a result.
        wheel.at(complete + cfg.depth.mem, 1).bumpLatchFlux(LatchPhase::MemOut, cfg.issueWidth);
        wheel.at(complete + cfg.depth.mem + cfg.depth.wb, 1).bumpLatchFlux(LatchPhase::WbOut, cfg.issueWidth);
        di.commitReady = complete + cfg.depth.mem + pipeTiming.wbToCommit;
    }

    if (di.mispredicted) {
        // The front end restarts on the correct path once the branch
        // resolves at the end of execute.
        fetchResumeAt = di.completeCycle + 1;
        waitingForBranch = false;
        ++mispredicts;
    }
}

void
Core::rename(CycleActivity &act)
{
    const Cycle now = wheel.cycle();
    unsigned budget = cfg.renameWidth;
    while (budget > 0 && !frontQ.empty()) {
        DynInst &fi = frontQ.front();
        if (fi.fetchCycle + pipeTiming.fetchToRename > now)
            break;
        if (rob.full()) {
            ++robFullStalls;
            break;
        }
        if (fi.op.isMem() && lsq.full()) {
            ++lsqFullStalls;
            break;
        }

        DynInst &di = rob.push();
        di = fi;
        di.renameCycle = now;
        di.eligibleCycle = now + pipeTiming.renameToSelect;

        // Resolve dependence distances against the producer scoreboard.
        for (unsigned s = 0; s < di.op.numSrcs; ++s) {
            const std::uint32_t dist = di.op.srcDist[s];
            if (dist == 0 || dist > prodCount) {
                di.srcSlot[s] = kInvalidIndex;
            } else {
                di.srcSlot[s] =
                    static_cast<std::int64_t>(prodCount - dist);
            }
        }
        if (writesResult(di.op.cls)) {
            di.destSlot = static_cast<std::int64_t>(prodCount);
            prodReady[prodCount % kProdRingSize] = kCycleNever;
            ++prodCount;
        }
        if (di.op.isMem()) {
            lsq.allocate();
            di.inLsq = true;
        }

        ++iqOccupied;
        ++act.renamed;
        act.bumpLatchFlux(LatchPhase::DecodeOut, cfg.issueWidth);
        // The rename-out latch is gated with knowledge available one
        // stage earlier (Sec 2.2.1).
        wheel.at(now + cfg.depth.rename, 1).bumpLatchFlux(LatchPhase::RenameOut, cfg.issueWidth);

        --budget;
        frontQ.pop_front();
    }
}

void
Core::fetch(CycleActivity &act)
{
    const Cycle now = wheel.cycle();
    if (waitingForBranch || fetchResumeAt > now) {
        if (cfg.modelWrongPathFetch && wrongPathActive)
            fetchWrongPath(act);
        ++fetchStallCycles;
        return;
    }
    wrongPathActive = false;
    if (frontQ.size() >= frontQCap) {
        ++fetchStallCycles;
        return;
    }

    const unsigned line_shift = 5;  // 32-byte I-cache lines
    // The fetch unit has a two-line fetch buffer: a block may span one
    // line boundary but not two (classic 8-wide front end).
    Addr cur_line = ~Addr{0};
    unsigned lines_used = 0;
    unsigned n = 0;
    while (n < cfg.fetchWidth) {
        MicroOp op = pendingOpValid ? pendingOp : gen.next();
        pendingOpValid = false;

        const Addr line = op.pc >> line_shift;
        if (line != cur_line) {
            if (lines_used == 2) {
                // Third line this cycle: resume next cycle.
                pendingOp = op;
                pendingOpValid = true;
                break;
            }
            cur_line = line;
            ++lines_used;
            if (line != lastFetchLine) {
                ++act.icacheAccesses;
                const Cycle lat = mem.icache().access(op.pc, false, now);
                lastFetchLine = line;
                if (lat > mem.icache().geometry().hitLatency) {
                    // I-cache miss: this block arrives later.
                    pendingOp = op;
                    pendingOpValid = true;
                    fetchResumeAt = now + lat;
                    break;
                }
            }
        }

        DynInst di;
        di.op = op;
        di.seq = nextSeq++;
        di.fetchCycle = now;

        bool stop_block = false;
        if (op.isBranch()) {
            ++act.bpredLookups;
            di.pred = bpred.predict(op.pc);
            const bool ok = bpred.resolve(op.pc, di.pred, op.taken,
                                          op.target);
            di.mispredicted = !ok;
            if (!ok) {
                // Correct-path fetch stalls until the branch resolves;
                // optionally the machine runs down the wrong path for
                // power purposes (modelWrongPathFetch).
                waitingForBranch = true;
                stop_block = true;
                wrongPathActive = true;
                // The path the (wrong) prediction would have taken.
                wrongPathPc = di.pred.taken && di.pred.btbHit
                    ? di.pred.target : op.pc + 4;
            } else if (op.taken) {
                stop_block = true;  // redirect ends the fetch block
            }
        }

        frontQ.push_back(di);
        ++n;
        ++act.fetched;
        act.bumpLatchFlux(LatchPhase::FetchOut, cfg.issueWidth);
        if (stop_block)
            break;
    }
    fetchedPerCycle.sample(n);
    if (n == 0)
        ++fetchStallCycles;
}

void
Core::fetchWrongPath(CycleActivity &act)
{
    // Fetch speculative junk down the mispredicted path: charges
    // I-cache and fetch-path energy and pollutes the I-cache; nothing
    // enters the front queue. A wrong-path I-cache miss does not stall
    // anything (the data is thrown away anyway), but the pollution can
    // perturb later correct-path fetches, as in real machines.
    const Cycle now = wheel.cycle();
    const unsigned line_shift = 5;
    Addr last_line = ~Addr{0};
    for (unsigned n = 0; n < cfg.fetchWidth; ++n) {
        const Addr line = wrongPathPc >> line_shift;
        if (line != last_line) {
            ++act.icacheAccesses;
            mem.icache().access(wrongPathPc, false, now);
            last_line = line;
        }
        ++act.wrongPathFetched;
        act.bumpLatchFlux(LatchPhase::FetchOut, cfg.issueWidth);
        // The wrong path still runs the same program: keep it inside a
        // 64KB window so it touches plausible code addresses rather
        // than marching off into unmapped space.
        const Addr base = wrongPathPc & ~Addr{0xffff};
        wrongPathPc = base + ((wrongPathPc + 4) & Addr{0xffff});
    }
}

void
Core::setIssueWidthLimit(unsigned width)
{
    issueLimit = std::clamp(width, 1u, cfg.issueWidth);
}

void
Core::setFuEnabledCount(FuType type, unsigned count)
{
    fus.setEnabledCount(type, count);
}

void
Core::setDcachePortLimit(unsigned ports)
{
    portLimit = std::clamp(ports, 1u, cfg.dcachePorts);
}

void
Core::setResultBusLimit(unsigned buses)
{
    busLimit = std::clamp(buses, 1u, cfg.numResultBuses);
}

} // namespace dcg
