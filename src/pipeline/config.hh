/**
 * @file
 * Core configuration: widths, window sizes, functional-unit pool and
 * pipeline depth. Defaults reproduce Table 1 of the paper (8-way issue,
 * 128-entry window, 64-entry LSQ, 6 iALU / 2 iMulDiv / 4 fpALU /
 * 4 fpMulDiv, 8-stage pipeline).
 */

#ifndef DCG_PIPELINE_CONFIG_HH
#define DCG_PIPELINE_CONFIG_HH

#include <array>
#include <cstdint>

#include "isa/op_class.hh"

namespace dcg {

/**
 * Pipeline-latch groups, one per stage boundary of the 8-stage model in
 * Figure 3 of the paper. Deeper pipelines (Figure 17) multiply the
 * sub-latch count of individual phases via DepthConfig.
 */
enum class LatchPhase : std::uint8_t
{
    FetchOut,   ///< fetch -> decode    (never gated: pre-decode)
    DecodeOut,  ///< decode -> rename   (never gated per paper Sec 2.2.1)
    RenameOut,  ///< rename -> issue    (DCG-gated; set up during rename)
    IssueOut,   ///< issue -> regread   (never gated: no setup time)
    ReadOut,    ///< regread -> execute (DCG-gated via one-hot encoding)
    ExecOut,    ///< execute -> memory  (DCG-gated)
    MemOut,     ///< memory -> wb       (DCG-gated)
    WbOut,      ///< wb -> retirement   (DCG-gated)
    NumLatchPhases
};

inline constexpr unsigned kNumLatchPhases =
    static_cast<unsigned>(LatchPhase::NumLatchPhases);

/**
 * True for phases DCG is allowed to gate (paper Sections 2.2.1/3.2).
 * Inline: the gating controllers ask this per phase per cycle.
 */
inline bool
latchPhaseGateable(LatchPhase phase)
{
    switch (phase) {
      case LatchPhase::FetchOut:
      case LatchPhase::DecodeOut:
      case LatchPhase::IssueOut:
        return false;
      default:
        return true;
    }
}

const char *latchPhaseName(LatchPhase phase);

/**
 * Number of physical stages per logical phase. The sum (+1 for
 * execute) is the pipeline depth: the default adds up to the paper's
 * 8-stage baseline; deepPipeline() yields the 20-stage machine of
 * Figure 17.
 */
struct DepthConfig
{
    unsigned fetch = 1;
    unsigned decode = 1;
    unsigned rename = 1;
    unsigned issue = 1;
    unsigned read = 1;
    unsigned mem = 1;
    unsigned wb = 1;

    unsigned totalStages() const
    { return fetch + decode + rename + issue + read + 1 + mem + wb; }

    /** Latch groups belonging to one phase. */
    unsigned groupsFor(LatchPhase phase) const;
};

/** The 20-stage configuration used for Figure 17. */
DepthConfig deepPipeline();

struct CoreConfig
{
    unsigned fetchWidth = 8;
    unsigned renameWidth = 8;
    unsigned issueWidth = 8;
    unsigned commitWidth = 8;

    unsigned windowSize = 128;   ///< ROB / instruction window entries
    unsigned lsqSize = 64;
    unsigned storeBufferSize = 16;

    /** Functional-unit pool, indexed by FuType. */
    std::array<unsigned, kNumFuTypes> fuCount{6, 2, 4, 4};

    unsigned dcachePorts = 2;
    unsigned numResultBuses = 8;

    /** Operand width in bits (drives latch sizing). */
    unsigned operandBits = 64;
    /** Non-operand payload bits per latch slot (opcode, tags, ...). */
    unsigned controlBitsPerSlot = 40;

    DepthConfig depth;

    /**
     * FU allocation policy: true = the paper's sequential priority
     * (Sec 3.1); false = round-robin (ablation).
     */
    bool sequentialPriority = true;

    /**
     * Store clock-gate setup (paper Sec 3.3): false = advance knowledge
     * available (case 1); true = delay stores one cycle (case 2,
     * ablation).
     */
    bool delayStoresOneCycle = false;

    /**
     * Model wrong-path fetch power: while a mispredicted branch is
     * unresolved, the front end keeps fetching down the wrong path,
     * burning I-cache/fetch energy (and polluting the I-cache) without
     * architectural effect. Off by default to match the headline
     * experiments; bench/ablation_wrongpath quantifies it. The wrong
     * path never reaches rename, but its I-cache pollution can shift
     * timing marginally (as in real machines).
     */
    bool modelWrongPathFetch = false;

    /** Maximum instance count any FU type may have. */
    static constexpr unsigned kMaxFuPerType = 16;
};

/** Timing offsets derived from a CoreConfig (see core.cc for use). */
struct PipeTiming
{
    explicit PipeTiming(const CoreConfig &cfg);

    /** fetch -> earliest rename. */
    unsigned fetchToRename;
    /** rename -> earliest select. */
    unsigned renameToSelect;
    /** select -> execute start (register read stages + 1). */
    unsigned selectToExec;
    /** execute end -> result-bus drive. */
    unsigned execToWb;
    /** result-bus drive -> commit eligibility. */
    unsigned wbToCommit;
};

} // namespace dcg

#endif // DCG_PIPELINE_CONFIG_HH
