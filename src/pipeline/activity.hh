/**
 * @file
 * Per-cycle microarchitectural activity record and the future-activity
 * ledger ("activity wheel").
 *
 * The issue stage knows — deterministically — which execution units,
 * D-cache ports, result buses and latch slots every selected
 * instruction will use in the cycles ahead (the key observation of the
 * paper). The core therefore writes each scheduled use into a
 * cycle-indexed ledger at issue time; the entry for a cycle is consumed
 * when that cycle arrives. Advance-notice invariants (use must be
 * scheduled at least N cycles early, N per component per Section 3 of
 * the paper) are asserted at write time, which is what makes the DCG
 * controller's gating provably deterministic rather than predictive.
 */

#ifndef DCG_PIPELINE_ACTIVITY_HH
#define DCG_PIPELINE_ACTIVITY_HH

#include <array>
#include <cstdint>
#include <vector>

#include "common/log.hh"
#include "common/types.hh"
#include "pipeline/config.hh"

namespace dcg {

/** Everything that happened (or is scheduled to happen) in one cycle. */
struct CycleActivity
{
    /** Instructions crossing each latch-phase boundary this cycle. */
    std::array<std::uint8_t, kNumLatchPhases> latchFlux{};

    /** Busy-instance bitmask per FU type. */
    std::array<std::uint16_t, kNumFuTypes> fuBusyMask{};

    /** Instances *starting* an operation this cycle, per FU type. */
    std::array<std::uint8_t, kNumFuTypes> fuStarts{};

    std::uint8_t dcachePortsUsed = 0;
    std::uint8_t resultBusUsed = 0;

    std::uint8_t fetched = 0;
    std::uint8_t renamed = 0;
    std::uint8_t issued = 0;
    std::uint8_t committed = 0;

    /**
     * FP-class ops issued; feeds the PLB controller's FP-IPC guard.
     * (Former intIssued/memIssued siblings were dropped: nothing in
     * the power or gating path consumed them, which is exactly the
     * orphaned-counter condition dcglint now rejects.)
     */
    std::uint8_t fpIssued = 0;

    std::uint8_t bpredLookups = 0;
    std::uint8_t wrongPathFetched = 0;
    std::uint8_t icacheAccesses = 0;
    std::uint8_t dcacheAccesses = 0;
    std::uint8_t regReads = 0;
    std::uint8_t regWrites = 0;
    std::uint8_t iqWakeups = 0;   ///< results broadcast into the window
    /** Window entries awaiting issue at the start of the cycle. */
    std::uint8_t iqOccupied = 0;
    std::uint8_t lsqOps = 0;

    /**
     * Count one crossing of a latch-phase boundary, saturating at the
     * machine width: more crossings than slots (e.g. result-bus
     * writebacks plus store/branch pass-throughs colliding in MemOut)
     * simply leave the whole latch clocked, which is the conservative
     * outcome for clock gating.
     */
    void
    bumpLatchFlux(LatchPhase phase, unsigned width)
    {
        auto &f = latchFlux[static_cast<unsigned>(phase)];
        if (f < width)
            ++f;
    }

    unsigned fuBusyCount(FuType type) const
    {
        return static_cast<unsigned>(
            __builtin_popcount(fuBusyMask[static_cast<unsigned>(type)]));
    }

    /**
     * True when nothing at all happened (or is scheduled) this cycle —
     * the condition under which the power model folds the cycle into a
     * per-gate-state idle class and skip-ahead may batch it. Field-wise
     * rather than memcmp so struct padding can never alias activity.
     */
    bool
    none() const
    {
        unsigned acc = 0;
        for (unsigned p = 0; p < kNumLatchPhases; ++p)
            acc |= latchFlux[p];
        for (unsigned t = 0; t < kNumFuTypes; ++t)
            acc |= fuBusyMask[t] | fuStarts[t];
        acc |= dcachePortsUsed | resultBusUsed | fetched | renamed |
               issued | committed | fpIssued | bpredLookups |
               wrongPathFetched | icacheAccesses | dcacheAccesses |
               regReads | regWrites | iqWakeups | iqOccupied | lsqOps;
        return acc == 0;
    }

    void reset() { *this = CycleActivity{}; }
};

/**
 * Cycle-indexed ring of CycleActivity with advance-notice checking.
 *
 * Writers schedule future activity; advance() hands out the completed
 * record for the cycle being entered.
 */
class ActivityWheel
{
  public:
    explicit ActivityWheel(unsigned horizon = 1024)
        : ring(roundUpPow2(horizon)), mask(ring.size() - 1), now(0)
    {
        DCG_ASSERT(horizon >= 256, "activity wheel too small");
    }

    /** Current cycle number. */
    Cycle cycle() const { return now; }

    /** Mutable record for the current cycle (front-end bookkeeping). */
    CycleActivity &current() { return ring[now & mask]; }

    /**
     * Latest cycle any writer has ever scheduled activity for. When
     * this is <= the current cycle, the ledger provably holds nothing
     * for the future — the precondition for skip().
     */
    Cycle lastScheduled() const { return lastSched; }

    /**
     * Record for a future cycle; @p min_notice asserts the component's
     * advance-knowledge requirement.
     */
    CycleActivity &
    at(Cycle target, unsigned min_notice = 0)
    {
        DCG_ASSERT(target >= now + min_notice,
                   "activity scheduled with insufficient advance notice: ",
                   "target=", target, " now=", now, " need=", min_notice);
        DCG_ASSERT(target - now < ring.size(),
                   "activity scheduled beyond wheel horizon");
        if (target > lastSched)
            lastSched = target;
        return ring[target & mask];
    }

    /** Mark an FU instance busy over [from, until). */
    void
    markFuBusy(FuType type, unsigned instance, Cycle from, Cycle until,
               unsigned min_notice)
    {
        const auto t = static_cast<unsigned>(type);
        for (Cycle c = from; c < until; ++c)
            at(c, min_notice).fuBusyMask[t] |=
                static_cast<std::uint16_t>(1u << instance);
        at(from, min_notice).fuStarts[t] += 1;
    }

    /**
     * Advance to the next cycle; returns the record accumulated for it.
     * The returned reference stays valid until the wheel wraps.
     */
    CycleActivity &
    advance()
    {
        // Recycle the slot we are leaving so future writers find it
        // clean when the wheel wraps around.
        ring[now & mask].reset();
        ++now;
        return ring[now & mask];
    }

    /**
     * Jump @p cycles forward in O(1). Legal only when nothing is
     * scheduled beyond the current cycle: every intermediate slot was
     * already recycled by the advance() that left it, so the ledger is
     * provably all-idle over the skipped window and the landing slot
     * is clean.
     */
    void
    skip(Cycle cycles)
    {
        DCG_ASSERT(cycles > 0, "skip of zero cycles");
        DCG_ASSERT(lastSched <= now,
                   "skip with future activity scheduled: last=", lastSched,
                   " now=", now);
        ring[now & mask].reset();
        now += cycles;
    }

  private:
    static std::size_t
    roundUpPow2(std::size_t n)
    {
        std::size_t p = 1;
        while (p < n)
            p <<= 1;
        return p;
    }

    std::vector<CycleActivity> ring;
    std::size_t mask;
    Cycle now;
    Cycle lastSched = 0;
};

} // namespace dcg

#endif // DCG_PIPELINE_ACTIVITY_HH
