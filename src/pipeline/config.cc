#include "pipeline/config.hh"

#include "common/log.hh"

namespace dcg {

const char *
latchPhaseName(LatchPhase phase)
{
    switch (phase) {
      case LatchPhase::FetchOut:  return "fetch_out";
      case LatchPhase::DecodeOut: return "decode_out";
      case LatchPhase::RenameOut: return "rename_out";
      case LatchPhase::IssueOut:  return "issue_out";
      case LatchPhase::ReadOut:   return "read_out";
      case LatchPhase::ExecOut:   return "exec_out";
      case LatchPhase::MemOut:    return "mem_out";
      case LatchPhase::WbOut:     return "wb_out";
      default: break;
    }
    return "?";
}

unsigned
DepthConfig::groupsFor(LatchPhase phase) const
{
    switch (phase) {
      case LatchPhase::FetchOut:  return fetch;
      case LatchPhase::DecodeOut: return decode;
      case LatchPhase::RenameOut: return rename;
      case LatchPhase::IssueOut:  return issue;
      case LatchPhase::ReadOut:   return read;
      case LatchPhase::ExecOut:   return 1;
      case LatchPhase::MemOut:    return mem;
      case LatchPhase::WbOut:     return wb;
      default: break;
    }
    panic("groupsFor: bad phase");
}

DepthConfig
deepPipeline()
{
    DepthConfig d;
    d.fetch = 4;
    d.decode = 3;
    d.rename = 2;
    d.issue = 2;
    d.read = 2;
    d.mem = 3;
    d.wb = 3;
    // 4+3+2+2+2+1+3+3 = 20 stages
    return d;
}

PipeTiming::PipeTiming(const CoreConfig &cfg)
{
    const DepthConfig &d = cfg.depth;
    fetchToRename = d.fetch + d.decode;
    renameToSelect = d.rename + d.issue;
    selectToExec = d.read + 1;
    execToWb = d.mem + 1;
    wbToCommit = d.wb;
    DCG_ASSERT(d.totalStages() >= 8, "pipeline too shallow");
}

} // namespace dcg
