#include "pipeline/fu_pool.hh"

#include "common/log.hh"

namespace dcg {

FuPool::FuPool(const std::array<unsigned, kNumFuTypes> &counts_,
               bool sequential_priority)
    : counts(counts_), enabled(counts_), seqPriority(sequential_priority)
{
    for (unsigned t = 0; t < kNumFuTypes; ++t) {
        DCG_ASSERT(counts[t] >= 1 &&
                   counts[t] <= CoreConfig::kMaxFuPerType,
                   "bad FU count for type ", t);
        freeAt[t].assign(counts[t], 0);
    }
}

int
FuPool::allocate(FuType type, Cycle start, unsigned busy_cycles)
{
    const auto t = static_cast<unsigned>(type);
    const unsigned n = enabled[t];

    if (seqPriority) {
        // Always prefer the lowest-indexed free unit so high-indexed
        // units stay parked (and clock-gated) as long as possible.
        for (unsigned i = 0; i < n; ++i) {
            if (freeAt[t][i] <= start) {
                freeAt[t][i] = start + busy_cycles;
                return static_cast<int>(i);
            }
        }
        return kInvalidIndex;
    }

    // Round-robin: start the search after the last grant.
    for (unsigned k = 0; k < n; ++k) {
        const unsigned i = (rrCursor[t] + k) % n;
        if (freeAt[t][i] <= start) {
            freeAt[t][i] = start + busy_cycles;
            rrCursor[t] = (i + 1) % n;
            return static_cast<int>(i);
        }
    }
    return kInvalidIndex;
}

void
FuPool::setEnabledCount(FuType type, unsigned n)
{
    const auto t = static_cast<unsigned>(type);
    if (n < 1)
        n = 1;
    if (n > counts[t])
        n = counts[t];
    enabled[t] = n;
}

} // namespace dcg
