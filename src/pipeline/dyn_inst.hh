/**
 * @file
 * In-flight dynamic instruction state (one window/ROB entry).
 */

#ifndef DCG_PIPELINE_DYN_INST_HH
#define DCG_PIPELINE_DYN_INST_HH

#include <cstdint>

#include "branch/predictor.hh"
#include "common/types.hh"
#include "isa/micro_op.hh"

namespace dcg {

struct DynInst
{
    MicroOp op;
    InstSeq seq = 0;

    Cycle fetchCycle = 0;
    Cycle renameCycle = 0;
    /** Earliest cycle the select logic may consider this instruction. */
    Cycle eligibleCycle = 0;
    Cycle issueCycle = kCycleNever;
    /** Cycle the result data exists (end of execute / cache return). */
    Cycle completeCycle = kCycleNever;
    /** Cycle the result bus is driven (writeback); kCycleNever if none. */
    Cycle wbCycle = kCycleNever;
    /** Cycle the instruction may retire. */
    Cycle commitReady = kCycleNever;

    /**
     * Producer-ring slots of the register sources; kInvalidIndex when
     * the operand is architecturally ready.
     */
    std::int64_t srcSlot[kMaxSrcs] = {kInvalidIndex, kInvalidIndex};

    /** This instruction's own producer-ring slot (results only). */
    std::int64_t destSlot = kInvalidIndex;

    bool issued = false;
    bool inLsq = false;
    bool mispredicted = false;
    BranchPrediction pred;
};

} // namespace dcg

#endif // DCG_PIPELINE_DYN_INST_HH
