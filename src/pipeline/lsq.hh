/**
 * @file
 * Load/store queue occupancy model plus the post-commit store buffer.
 *
 * Table 1 specifies a 64-entry load/store queue. Loads access the
 * D-cache at execute ("the load accesses the cache and the queue
 * simultaneously", Sec 3.3); stores sit until commit and then drain
 * through a store buffer, reserving a D-cache port one cycle in
 * advance (the paper's case (1); case (2) adds one cycle of delay and
 * is available as an ablation).
 */

#ifndef DCG_PIPELINE_LSQ_HH
#define DCG_PIPELINE_LSQ_HH

#include <vector>

#include "common/log.hh"
#include "common/types.hh"

namespace dcg {

class Lsq
{
  public:
    explicit Lsq(unsigned capacity)
        : cap(capacity), occupancy(0)
    {
        DCG_ASSERT(capacity >= 2, "LSQ too small");
    }

    bool full() const { return occupancy == cap; }
    unsigned size() const { return occupancy; }
    unsigned capacity() const { return cap; }

    void
    allocate()
    {
        DCG_ASSERT(!full(), "allocate into full LSQ");
        ++occupancy;
    }

    void
    release()
    {
        DCG_ASSERT(occupancy > 0, "release from empty LSQ");
        --occupancy;
    }

  private:
    unsigned cap;
    unsigned occupancy;
};

/**
 * Committed stores awaiting their D-cache write slot. Fixed-capacity
 * ring: the drain loop runs every cycle with stores in flight, so the
 * buffer avoids deque's segment bookkeeping on the hot path.
 */
class StoreBuffer
{
  public:
    explicit StoreBuffer(unsigned capacity)
        : slots(capacity), cap(capacity)
    {
        DCG_ASSERT(capacity >= 1, "store buffer too small");
    }

    bool full() const { return occupancy >= cap; }
    bool empty() const { return occupancy == 0; }
    unsigned size() const { return occupancy; }

    void
    push(Addr addr)
    {
        DCG_ASSERT(!full(), "push into full store buffer");
        unsigned tail = head + occupancy;
        if (tail >= cap)
            tail -= cap;
        slots[tail] = addr;
        ++occupancy;
    }

    Addr
    pop()
    {
        DCG_ASSERT(!empty(), "pop from empty store buffer");
        const Addr a = slots[head];
        if (++head == cap)
            head = 0;
        --occupancy;
        return a;
    }

  private:
    std::vector<Addr> slots;
    unsigned cap;
    unsigned head = 0;
    unsigned occupancy = 0;
};

} // namespace dcg

#endif // DCG_PIPELINE_LSQ_HH
