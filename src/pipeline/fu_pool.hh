/**
 * @file
 * Execution-unit pool with the paper's sequential-priority allocation.
 *
 * Section 3.1: "Among the execution units of the same type, we
 * statically assign priorities to the units, so that the higher-
 * priority units are always chosen to be used before the lower priority
 * units" — this keeps low-priority units parked in the clock-gated
 * state and minimises gate-control toggling. Round-robin allocation is
 * provided for the ablation benchmark.
 */

#ifndef DCG_PIPELINE_FU_POOL_HH
#define DCG_PIPELINE_FU_POOL_HH

#include <array>
#include <vector>

#include "common/types.hh"
#include "isa/op_class.hh"
#include "pipeline/config.hh"

namespace dcg {

class FuPool
{
  public:
    FuPool(const std::array<unsigned, kNumFuTypes> &counts,
           bool sequential_priority);

    /**
     * Try to claim an instance of @p type that is free over
     * [start, start + busy_cycles).
     * @return instance index, or kInvalidIndex if none available.
     */
    int allocate(FuType type, Cycle start, unsigned busy_cycles);

    /** Instances physically present. */
    unsigned count(FuType type) const
    { return counts[static_cast<unsigned>(type)]; }

    /** Instances currently usable (PLB may disable a suffix). */
    unsigned enabledCount(FuType type) const
    { return enabled[static_cast<unsigned>(type)]; }

    /**
     * Enable only the first @p n instances of @p type (PLB low-power
     * modes); clamped to the physical count.
     */
    void setEnabledCount(FuType type, unsigned n);

    bool sequentialPriority() const { return seqPriority; }

  private:
    std::array<unsigned, kNumFuTypes> counts;
    std::array<unsigned, kNumFuTypes> enabled;
    /** Cycle each instance becomes free to start a new op. */
    std::array<std::vector<Cycle>, kNumFuTypes> freeAt;
    /** Round-robin cursor per type (ablation policy). */
    std::array<unsigned, kNumFuTypes> rrCursor{};
    bool seqPriority;
};

} // namespace dcg

#endif // DCG_PIPELINE_FU_POOL_HH
