/**
 * @file
 * Structure-of-arrays instruction window (ROB + issue-queue state).
 *
 * The per-cycle issue scan is the hottest loop in the simulator; the
 * former array-of-DynInst ROB made it walk ~170-byte records with a
 * runtime modulo per element. Here every field the tick path touches
 * lives in its own dense array indexed by *physical slot*, entries are
 * allocated FIFO over a power-of-two ring, and the set of
 * not-yet-issued entries is mirrored in a bitmap so the issue stage
 * visits exactly the waiting instructions, oldest first, via
 * count-trailing-zeros instead of probing every occupied slot.
 */

#ifndef DCG_PIPELINE_WINDOW_HH
#define DCG_PIPELINE_WINDOW_HH

#include <cstdint>
#include <vector>

#include "common/log.hh"
#include "common/types.hh"

namespace dcg {

class Window
{
  public:
    /// @name Per-entry meta flag bits (metaOf / meta array)
    /// @{
    static constexpr std::uint8_t kInLsq = 1u << 0;
    static constexpr std::uint8_t kIsStore = 1u << 1;
    static constexpr std::uint8_t kMispredicted = 1u << 2;
    static constexpr std::uint8_t kIsFp = 1u << 3;
    static constexpr std::uint8_t kWritesResult = 1u << 4;
    /** Source-operand count lives in the top bits (0..kMaxSrcs). */
    static constexpr unsigned kNumSrcsShift = 5;
    /// @}

    explicit Window(unsigned capacity)
        : cap(capacity), physCap(roundUpPow2(capacity)),
          mask(physCap - 1),
          eligible(physCap, 0), commitReady(physCap, 0),
          renameCycle(physCap, 0), effAddr(physCap, 0),
          src0(physCap, 0), src1(physCap, 0), dest(physCap, 0),
          cls(physCap, 0), meta(physCap, 0),
          unissued((physCap + 63) / 64, 0)
    {
        DCG_ASSERT(capacity >= 4, "window too small");
    }

    bool empty() const { return count == 0; }
    bool full() const { return count == cap; }
    unsigned size() const { return count; }
    unsigned capacity() const { return cap; }
    unsigned physicalCapacity() const { return physCap; }

    /** Physical slot of the oldest entry. */
    unsigned
    headIndex() const
    {
        DCG_ASSERT(count > 0, "head of empty window");
        return head;
    }

    /**
     * Allocate the next-youngest entry; returns its physical slot.
     * The caller fills the parallel arrays; the entry starts in the
     * not-yet-issued set.
     */
    unsigned
    push()
    {
        DCG_ASSERT(!full(), "push into full window");
        const unsigned idx = (head + count) & mask;
        ++count;
        unissued[idx >> 6] |= std::uint64_t{1} << (idx & 63);
        return idx;
    }

    /** Retire the oldest entry (must have issued). */
    void
    pop()
    {
        DCG_ASSERT(count > 0, "pop from empty window");
        DCG_ASSERT(!isUnissued(head), "pop of unissued window entry");
        head = (head + 1) & mask;
        --count;
    }

    bool
    isUnissued(unsigned idx) const
    {
        return (unissued[idx >> 6] >> (idx & 63)) & 1u;
    }

    /** Move an entry from the waiting set to issued. */
    void
    markIssued(unsigned idx)
    {
        DCG_ASSERT(isUnissued(idx), "double issue of window entry");
        unissued[idx >> 6] &= ~(std::uint64_t{1} << (idx & 63));
    }

    /**
     * Oldest-first walk of the not-yet-issued entries. Visits set bits
     * of the occupancy bitmap in physical order starting at the head
     * slot, wrapping once; age order equals physical order within each
     * of the two contiguous ranges. @p fn returns false to stop the
     * whole scan (used for the monotonic-eligibility early exit).
     */
    template <typename Fn>
    void
    forEachUnissued(Fn &&fn) const
    {
        forEachSetIn(unissued, fn);
    }

    /**
     * Same oldest-first walk over an external bitmap with the same
     * one-bit-per-physical-slot shape (e.g. the core's issuable set).
     * Only slots inside the occupied range are visited.
     */
    template <typename Fn>
    void
    forEachSetIn(const std::vector<std::uint64_t> &bm, Fn &&fn) const
    {
        if (count == 0)
            return;
        const std::uint64_t *words = bm.data();
        const unsigned end1 = head + count;
        if (end1 <= physCap) {
            scanRange(words, head, end1, fn);
        } else {
            if (scanRange(words, head, physCap, fn))
                scanRange(words, 0, end1 - physCap, fn);
        }
    }

  private:
    // Declared before the arrays below: the constructor sizes them
    // from physCap, so initialization order matters.
    unsigned cap;
    unsigned physCap;
    unsigned mask;
    unsigned head = 0;
    unsigned count = 0;

  public:
    /// @name Hot per-entry state, indexed by physical slot
    /// @{
    std::vector<Cycle> eligible;      ///< earliest select cycle
    std::vector<Cycle> commitReady;   ///< earliest commit cycle
    std::vector<Cycle> renameCycle;   ///< cycle renamed (latency stat)
    std::vector<Addr> effAddr;        ///< memory ops only
    std::vector<std::uint16_t> src0;  ///< producer-ring slot or sentinel
    std::vector<std::uint16_t> src1;  ///< producer-ring slot or sentinel
    std::vector<std::uint16_t> dest;  ///< producer-ring slot (if result)
    std::vector<std::uint8_t> cls;    ///< OpClass
    std::vector<std::uint8_t> meta;   ///< flag bits + source count
    /// @}

  private:
    static unsigned
    roundUpPow2(unsigned n)
    {
        unsigned p = 1;
        while (p < n)
            p <<= 1;
        return p;
    }

    /** Visit set bits in [from, to); false once fn stops the scan. */
    template <typename Fn>
    static bool
    scanRange(const std::uint64_t *words, unsigned from, unsigned to,
              Fn &&fn)
    {
        unsigned w = from >> 6;
        const unsigned wlast = (to - 1) >> 6;
        std::uint64_t bits = words[w] >> (from & 63) << (from & 63);
        for (;; bits = words[++w]) {
            if (w == wlast && (to & 63))
                bits &= (std::uint64_t{1} << (to & 63)) - 1;
            while (bits) {
                const unsigned idx =
                    (w << 6) + static_cast<unsigned>(
                                   __builtin_ctzll(bits));
                if (!fn(idx))
                    return false;
                bits &= bits - 1;
            }
            if (w == wlast)
                return true;
        }
    }

    /** One bit per physical slot: occupied and awaiting issue. */
    std::vector<std::uint64_t> unissued;
};

} // namespace dcg

#endif // DCG_PIPELINE_WINDOW_HH
