/** Tests for the out-of-order core's timing behaviour. */

#include <gtest/gtest.h>

#include <vector>

#include "branch/predictor.hh"
#include "cache/hierarchy.hh"
#include "common/stats.hh"
#include "pipeline/core.hh"
#include "trace/generator.hh"
#include "trace/spec2000.hh"

using namespace dcg;

namespace {

/** Loops over a scripted instruction sequence with sequential PCs. */
class ScriptedSource : public InstSource
{
  public:
    explicit ScriptedSource(std::vector<MicroOp> ops)
        : loop(std::move(ops))
    {
        for (std::size_t i = 0; i < loop.size(); ++i)
            loop[i].pc = 0x0040'0000 + 4 * i;
    }

    MicroOp
    next() override
    {
        MicroOp op = loop[idx % loop.size()];
        ++idx;
        return op;
    }

  private:
    std::vector<MicroOp> loop;
    std::size_t idx = 0;
};

MicroOp
makeOp(OpClass cls, std::uint32_t dist0 = 0, std::uint32_t dist1 = 0)
{
    MicroOp op;
    op.cls = cls;
    op.numSrcs = dist1 ? 2 : 1;
    op.srcDist[0] = dist0;
    op.srcDist[1] = dist1;
    if (isMemOp(cls))
        op.effAddr = 0x1000'0000;  // one hot line: always an L1 hit
    return op;
}

struct Harness
{
    explicit Harness(InstSource &src, CoreConfig cfg = CoreConfig{})
        : mem(HierarchyConfig{}, stats),
          bpred(BranchPredictorConfig{}, stats),
          core(cfg, src, mem, bpred, stats)
    {
    }

    /** Run cycles; returns IPC over the second half (skips warm-up). */
    double
    steadyIpc(unsigned cycles)
    {
        for (unsigned i = 0; i < cycles / 2; ++i)
            core.tick();
        const InstSeq before = core.committedInsts();
        for (unsigned i = 0; i < cycles / 2; ++i)
            core.tick();
        return static_cast<double>(core.committedInsts() - before) /
               (cycles / 2);
    }

    StatRegistry stats;
    MemoryHierarchy mem;
    BranchPredictor bpred;
    Core core;
};

} // namespace

TEST(Core, PureAluIndependentOpsSaturateAluPool)
{
    ScriptedSource src({makeOp(OpClass::IntAlu)});
    Harness h(src);
    const double ipc = h.steadyIpc(4000);
    // 6 integer ALUs bound the rate; fetch keeps up comfortably.
    EXPECT_GT(ipc, 5.5);
    EXPECT_LE(ipc, 6.01);
}

TEST(Core, SingleAluSerialisesAluWork)
{
    CoreConfig cfg;
    cfg.fuCount = {1, 1, 1, 1};
    ScriptedSource src({makeOp(OpClass::IntAlu)});
    Harness h(src, cfg);
    const double ipc = h.steadyIpc(4000);
    EXPECT_NEAR(ipc, 1.0, 0.05);
}

TEST(Core, DependenceChainBoundsIpcToOnePerLatency)
{
    // Every op depends on the previous result: latency-1 chain.
    ScriptedSource src({makeOp(OpClass::IntAlu, 1)});
    Harness h(src);
    const double ipc = h.steadyIpc(4000);
    EXPECT_NEAR(ipc, 1.0, 0.05);
}

TEST(Core, MultiplyChainPaysThreeCyclesPerLink)
{
    ScriptedSource src({makeOp(OpClass::IntMult, 1)});
    Harness h(src);
    const double ipc = h.steadyIpc(6000);
    EXPECT_NEAR(ipc, 1.0 / 3.0, 0.03);
}

TEST(Core, UnpipelinedDivideThrottlesToIssueRate)
{
    // Independent divides, but only 2 unpipelined div units with a
    // 19-cycle initiation interval -> at most 2/19 per cycle.
    ScriptedSource src({makeOp(OpClass::IntDiv)});
    Harness h(src);
    const double ipc = h.steadyIpc(8000);
    EXPECT_NEAR(ipc, 2.0 / 19.0, 0.02);
}

TEST(Core, LoadToUseLatencyVisibleInChain)
{
    // load -> dependent ALU -> load -> ... Load-to-use is several
    // cycles (AGEN + 2-cycle cache), so the chain IPC is well below a
    // pure ALU chain's 1.0 but the exact value depends on bypass
    // details; bound it.
    ScriptedSource src({makeOp(OpClass::Load, 1),
                        makeOp(OpClass::IntAlu, 1)});
    Harness h(src);
    const double ipc = h.steadyIpc(6000);
    EXPECT_LT(ipc, 0.7);
    EXPECT_GT(ipc, 0.2);
}

TEST(Core, ActivityRespectsStructuralCaps)
{
    ScriptedSource src({makeOp(OpClass::IntAlu), makeOp(OpClass::Load),
                        makeOp(OpClass::Store),
                        makeOp(OpClass::FpMult)});
    Harness h(src);
    const CoreConfig &cfg = h.core.config();
    for (int i = 0; i < 3000; ++i) {
        h.core.tick();
        const CycleActivity &a = h.core.activity();
        EXPECT_LE(a.issued, cfg.issueWidth);
        EXPECT_LE(a.dcachePortsUsed, cfg.dcachePorts);
        EXPECT_LE(a.resultBusUsed, cfg.numResultBuses);
        EXPECT_LE(a.committed, cfg.commitWidth);
        for (unsigned t = 0; t < kNumFuTypes; ++t) {
            EXPECT_EQ(a.fuBusyMask[t] & ~((1u << cfg.fuCount[t]) - 1),
                      0u);
        }
        for (unsigned p = 0; p < kNumLatchPhases; ++p)
            EXPECT_LE(a.latchFlux[p], cfg.issueWidth);
    }
}

TEST(Core, IssueWidthLimitEnforcedEveryCycle)
{
    ScriptedSource src({makeOp(OpClass::IntAlu)});
    Harness h(src);
    h.core.setIssueWidthLimit(4);
    for (int i = 0; i < 2000; ++i) {
        h.core.tick();
        EXPECT_LE(h.core.activity().issued, 4u);
    }
}

TEST(Core, FuEnabledCountThrottlesThroughput)
{
    ScriptedSource src({makeOp(OpClass::IntAlu)});
    Harness h(src);
    h.core.setFuEnabledCount(FuType::IntAluUnit, 2);
    const double ipc = h.steadyIpc(4000);
    EXPECT_NEAR(ipc, 2.0, 0.1);
}

TEST(Core, DcachePortLimitEnforced)
{
    ScriptedSource src({makeOp(OpClass::Load)});
    Harness h(src);
    h.core.setDcachePortLimit(1);
    for (int i = 0; i < 2000; ++i) {
        h.core.tick();
        EXPECT_LE(h.core.activity().dcachePortsUsed, 1u);
    }
}

TEST(Core, ResultBusLimitCapsWritebacks)
{
    ScriptedSource src({makeOp(OpClass::IntAlu)});
    Harness h(src);
    h.core.setResultBusLimit(3);
    for (int i = 0; i < 2000; ++i) {
        h.core.tick();
        EXPECT_LE(h.core.activity().resultBusUsed, 3u);
    }
}

TEST(Core, SequentialPriorityConcentratesLowUnits)
{
    ScriptedSource src({makeOp(OpClass::IntAlu)});
    CoreConfig cfg;
    cfg.issueWidth = 8;
    Harness h(src, cfg);
    std::array<std::uint64_t, 6> unit_busy{};
    for (int i = 0; i < 4000; ++i) {
        h.core.tick();
        const auto mask = h.core.activity()
            .fuBusyMask[static_cast<unsigned>(FuType::IntAluUnit)];
        for (unsigned u = 0; u < 6; ++u)
            unit_busy[u] += (mask >> u) & 1;
    }
    // Monotonically non-increasing usage by index.
    for (unsigned u = 1; u < 6; ++u)
        EXPECT_LE(unit_busy[u], unit_busy[u - 1] + 50) << "unit " << u;
}

TEST(Core, StoreDelayAblationCostsVirtuallyNothing)
{
    // Sec 3.3 case (2): delaying stores one cycle for clock-gate setup
    // must cause "virtually no performance loss".
    const Profile p = profileByName("vortex");
    TraceGenerator g1(p, 5), g2(p, 5);
    CoreConfig delayed;
    delayed.delayStoresOneCycle = true;
    Harness base(g1);
    Harness slow(g2, delayed);
    const double ipc_base = base.steadyIpc(20000);
    const double ipc_slow = slow.steadyIpc(20000);
    EXPECT_GT(ipc_slow, ipc_base * 0.99);
}

TEST(Core, MispredictionsReduceThroughput)
{
    // Tiny code footprint so the I-cache warms inside the test; the
    // only difference between the runs is branch predictability.
    Profile predictable = profileByName("gzip");
    predictable.codeFootprintBytes = 4096;
    predictable.memory.fracRandom = 0.0;
    predictable.memory.fracStride = 0.5;
    predictable.memory.fracStack = 0.5;
    predictable.phases.lowIlpFraction = 0.0;
    predictable.branches = {0.6, 0.4, 0.0, 0.0};
    Profile noisy = predictable;
    noisy.branches = {0.0, 0.0, 0.0, 1.0};  // coin-flip branches

    TraceGenerator g1(predictable, 3), g2(noisy, 3);
    Harness good(g1);
    Harness bad(g2);
    const double ipc_good = good.steadyIpc(60000);
    const double ipc_bad = bad.steadyIpc(60000);
    EXPECT_LT(ipc_bad, ipc_good * 0.75);

    good.core.foldStats();
    bad.core.foldStats();
    const double misp_rate_good =
        good.stats.lookup("core.mispredicts") /
        static_cast<double>(good.core.committedInsts());
    const double misp_rate_bad =
        bad.stats.lookup("core.mispredicts") /
        static_cast<double>(bad.core.committedInsts());
    EXPECT_GT(misp_rate_bad, misp_rate_good * 2.5);
}

TEST(Core, DeeperPipelineAmplifiesMispredictPenalty)
{
    Profile noisy = profileByName("twolf");
    TraceGenerator g1(noisy, 7), g2(noisy, 7);
    CoreConfig deep;
    deep.depth = deepPipeline();
    Harness shallow(g1);
    Harness deeper(g2, deep);
    EXPECT_LT(deeper.steadyIpc(30000), shallow.steadyIpc(30000));
}

TEST(Core, FetchedIssuedCommittedConsistent)
{
    TraceGenerator g(profileByName("gzip"), 11);
    Harness h(g);
    for (int i = 0; i < 20000; ++i)
        h.core.tick();
    h.core.foldStats();
    const double fetched = h.stats.lookup("core.fetched_per_cycle") *
                           h.stats.lookup("core.cycles");
    const double issued = h.stats.lookup("core.issued");
    const double committed = h.stats.lookup("core.committed");
    EXPECT_LE(committed, issued + 0.5);
    EXPECT_LE(issued, fetched * 1.01 + 1);
    // No wrong-path execution: everything issued eventually commits.
    EXPECT_GT(committed, issued - 200);
}

TEST(Core, DeterministicAcrossRuns)
{
    const Profile p = profileByName("parser");
    TraceGenerator g1(p, 9), g2(p, 9);
    Harness a(g1), b(g2);
    for (int i = 0; i < 10000; ++i) {
        a.core.tick();
        b.core.tick();
    }
    a.core.foldStats();
    b.core.foldStats();
    EXPECT_EQ(a.core.committedInsts(), b.core.committedInsts());
    EXPECT_EQ(a.stats.lookup("core.issued"), b.stats.lookup("core.issued"));
}

TEST(Core, WindowOccupancyBoundedByCapacity)
{
    TraceGenerator g(profileByName("mcf"), 13);
    Harness h(g);
    for (int i = 0; i < 20000; ++i)
        h.core.tick();
    h.core.foldStats();
    EXPECT_LE(h.stats.lookup("core.window_occupancy"), 128.0);
    EXPECT_GT(h.stats.lookup("core.window_occupancy"), 1.0);
}

TEST(Core, WrongPathFetchOffByDefaultAndInert)
{
    TraceGenerator g(profileByName("twolf"), 5);
    Harness h(g);
    for (int i = 0; i < 10000; ++i) {
        h.core.tick();
        EXPECT_EQ(h.core.activity().wrongPathFetched, 0u);
    }
}

TEST(Core, WrongPathFetchChargesDuringMispredictStalls)
{
    Profile p = profileByName("twolf");  // mispredict-heavy
    TraceGenerator g(p, 5);
    CoreConfig cfg;
    cfg.modelWrongPathFetch = true;
    Harness h(g, cfg);
    std::uint64_t wrong = 0;
    for (int i = 0; i < 20000; ++i) {
        h.core.tick();
        wrong += h.core.activity().wrongPathFetched;
    }
    EXPECT_GT(wrong, 1000u);
}

TEST(Core, WrongPathFetchBarelyPerturbsTiming)
{
    // The wrong path never reaches rename; only I-cache pollution can
    // move timing, and only marginally. Use a tiny code footprint so
    // the I-cache warms inside the test (with cold caches, wrong-path
    // fetch acts as a giant accidental prefetcher and skews the
    // comparison).
    Profile p = profileByName("gcc");
    p.codeFootprintBytes = 4096;
    p.memory.fracRandom = 0.0;
    p.memory.fracStride = 0.5;
    p.memory.fracStack = 0.5;
    TraceGenerator g1(p, 7), g2(p, 7);
    CoreConfig wp;
    wp.modelWrongPathFetch = true;
    Harness off(g1);
    Harness on(g2, wp);
    const double ipc_off = off.steadyIpc(60000);
    const double ipc_on = on.steadyIpc(60000);
    // Pollution/accidental-prefetch effects are small but real; allow
    // a band either way.
    EXPECT_NEAR(ipc_on, ipc_off, ipc_off * 0.10);
}
