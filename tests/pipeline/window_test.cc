/** Tests for the SoA instruction window (ROB + issue-queue state). */

#include <gtest/gtest.h>

#include <vector>

#include "pipeline/window.hh"

using namespace dcg;

namespace {

/** Collect the physical slots forEachUnissued visits, in order. */
std::vector<unsigned>
scanOrder(const Window &w)
{
    std::vector<unsigned> order;
    w.forEachUnissued([&](unsigned idx) {
        order.push_back(idx);
        return true;
    });
    return order;
}

} // namespace

TEST(Window, StartsEmpty)
{
    Window w(8);
    EXPECT_TRUE(w.empty());
    EXPECT_FALSE(w.full());
    EXPECT_EQ(w.size(), 0u);
    EXPECT_EQ(w.capacity(), 8u);
    EXPECT_TRUE(scanOrder(w).empty());
}

TEST(Window, PushPopFifoOrder)
{
    Window w(8);
    for (Cycle s = 1; s <= 5; ++s) {
        const unsigned idx = w.push();
        w.renameCycle[idx] = s;
    }
    EXPECT_EQ(w.size(), 5u);
    for (Cycle s = 1; s <= 5; ++s) {
        const unsigned h = w.headIndex();
        EXPECT_EQ(w.renameCycle[h], s);
        w.markIssued(h);
        w.pop();
    }
    EXPECT_TRUE(w.empty());
}

TEST(Window, FillsToLogicalCapacity)
{
    Window w(4);
    for (int i = 0; i < 4; ++i)
        w.push();
    EXPECT_TRUE(w.full());
    EXPECT_DEATH(w.push(), "full");
}

TEST(Window, NonPow2CapacityRoundsUpPhysically)
{
    Window w(6);
    EXPECT_EQ(w.capacity(), 6u);
    EXPECT_EQ(w.physicalCapacity(), 8u);
    for (int i = 0; i < 6; ++i)
        w.push();
    EXPECT_TRUE(w.full());
}

TEST(Window, WrapAroundKeepsAgeOrder)
{
    Window w(4);
    Cycle next = 1;
    // Push/pop cycles force head wrap-around.
    for (int round = 0; round < 10; ++round) {
        while (!w.full())
            w.renameCycle[w.push()] = next++;
        for (int k = 0; k < 2; ++k) {
            const unsigned h = w.headIndex();
            w.markIssued(h);
            w.pop();
        }
    }
    Cycle prev = 0;
    while (!w.empty()) {
        const unsigned h = w.headIndex();
        EXPECT_GT(w.renameCycle[h], prev);
        prev = w.renameCycle[h];
        w.markIssued(h);
        w.pop();
    }
}

TEST(Window, ScanVisitsOldestFirstAcrossWrap)
{
    Window w(4);
    Cycle seq = 1;
    for (int i = 0; i < 4; ++i)
        w.renameCycle[w.push()] = seq++;
    // Retire two, push two: occupied range now wraps the ring edge.
    for (int k = 0; k < 2; ++k) {
        const unsigned h = w.headIndex();
        w.markIssued(h);
        w.pop();
    }
    for (int i = 0; i < 2; ++i)
        w.renameCycle[w.push()] = seq++;

    const auto order = scanOrder(w);
    ASSERT_EQ(order.size(), 4u);
    for (unsigned i = 1; i < order.size(); ++i)
        EXPECT_GT(w.renameCycle[order[i]], w.renameCycle[order[i - 1]]);
    EXPECT_EQ(order.front(), w.headIndex());
}

TEST(Window, MarkIssuedRemovesFromScan)
{
    Window w(8);
    std::vector<unsigned> slots;
    for (int i = 0; i < 6; ++i)
        slots.push_back(w.push());
    w.markIssued(slots[1]);
    w.markIssued(slots[4]);
    const auto order = scanOrder(w);
    EXPECT_EQ(order, (std::vector<unsigned>{slots[0], slots[2],
                                            slots[3], slots[5]}));
    EXPECT_FALSE(w.isUnissued(slots[1]));
    EXPECT_TRUE(w.isUnissued(slots[0]));
}

TEST(Window, EarlyStopEndsWholeScan)
{
    Window w(4);
    for (int i = 0; i < 4; ++i)
        w.push();
    // Wrap the occupied range so the scan would need both sub-ranges.
    w.markIssued(w.headIndex());
    w.pop();
    w.markIssued(w.headIndex());
    w.pop();
    w.push();
    w.push();

    unsigned visits = 0;
    w.forEachUnissued([&](unsigned) {
        ++visits;
        return false;
    });
    EXPECT_EQ(visits, 1u);
}

TEST(Window, MultiWordBitmapScan)
{
    Window w(128);
    std::vector<unsigned> slots;
    Cycle seq = 1;
    for (int i = 0; i < 100; ++i) {
        const unsigned idx = w.push();
        w.renameCycle[idx] = seq++;
        slots.push_back(idx);
    }
    // Issue a scattered subset spanning both bitmap words.
    for (unsigned i = 0; i < slots.size(); i += 7)
        w.markIssued(slots[i]);

    const auto order = scanOrder(w);
    unsigned expected = 0;
    for (unsigned i = 0; i < slots.size(); ++i) {
        if (i % 7 != 0)
            ++expected;
    }
    EXPECT_EQ(order.size(), expected);
    for (unsigned i = 1; i < order.size(); ++i)
        EXPECT_GT(w.renameCycle[order[i]], w.renameCycle[order[i - 1]]);
}

TEST(Window, MisuseDies)
{
    Window w(4);
    EXPECT_DEATH(w.headIndex(), "empty");
    EXPECT_DEATH(w.pop(), "empty");
    const unsigned idx = w.push();
    EXPECT_DEATH(w.pop(), "unissued");
    w.markIssued(idx);
    EXPECT_DEATH(w.markIssued(idx), "double issue");
    EXPECT_DEATH(Window(2), "too small");
}
