/** Tests for the LSQ occupancy model and the store buffer. */

#include <gtest/gtest.h>

#include "pipeline/lsq.hh"

using namespace dcg;

TEST(Lsq, AllocateRelease)
{
    Lsq lsq(4);
    EXPECT_FALSE(lsq.full());
    lsq.allocate();
    lsq.allocate();
    EXPECT_EQ(lsq.size(), 2u);
    lsq.release();
    EXPECT_EQ(lsq.size(), 1u);
}

TEST(Lsq, FullAtCapacity)
{
    Lsq lsq(2);
    lsq.allocate();
    lsq.allocate();
    EXPECT_TRUE(lsq.full());
    EXPECT_DEATH(lsq.allocate(), "full");
}

TEST(Lsq, ReleaseEmptyDies)
{
    Lsq lsq(2);
    EXPECT_DEATH(lsq.release(), "empty");
}

TEST(Lsq, CapacityReported)
{
    Lsq lsq(64);
    EXPECT_EQ(lsq.capacity(), 64u);
}

TEST(StoreBuffer, FifoDrainOrder)
{
    StoreBuffer sb(4);
    sb.push(0x100);
    sb.push(0x200);
    EXPECT_EQ(sb.pop(), 0x100u);
    EXPECT_EQ(sb.pop(), 0x200u);
    EXPECT_TRUE(sb.empty());
}

TEST(StoreBuffer, FullBlocksCommit)
{
    StoreBuffer sb(2);
    sb.push(1);
    sb.push(2);
    EXPECT_TRUE(sb.full());
    EXPECT_DEATH(sb.push(3), "full");
}

TEST(StoreBuffer, PopEmptyDies)
{
    StoreBuffer sb(2);
    EXPECT_DEATH(sb.pop(), "empty");
}

TEST(StoreBuffer, SizeTracksContents)
{
    StoreBuffer sb(8);
    for (Addr a = 0; a < 5; ++a)
        sb.push(a);
    EXPECT_EQ(sb.size(), 5u);
    sb.pop();
    EXPECT_EQ(sb.size(), 4u);
}
