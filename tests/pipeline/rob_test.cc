/** Tests for the reorder buffer / instruction window. */

#include <gtest/gtest.h>

#include "pipeline/rob.hh"

using namespace dcg;

TEST(Rob, StartsEmpty)
{
    Rob rob(8);
    EXPECT_TRUE(rob.empty());
    EXPECT_FALSE(rob.full());
    EXPECT_EQ(rob.size(), 0u);
    EXPECT_EQ(rob.capacity(), 8u);
}

TEST(Rob, PushPopFifoOrder)
{
    Rob rob(8);
    for (InstSeq s = 1; s <= 5; ++s)
        rob.push().seq = s;
    EXPECT_EQ(rob.size(), 5u);
    for (InstSeq s = 1; s <= 5; ++s) {
        EXPECT_EQ(rob.head().seq, s);
        rob.pop();
    }
    EXPECT_TRUE(rob.empty());
}

TEST(Rob, FillsToCapacity)
{
    Rob rob(4);
    for (int i = 0; i < 4; ++i)
        rob.push();
    EXPECT_TRUE(rob.full());
    EXPECT_DEATH(rob.push(), "full");
}

TEST(Rob, WrapAroundKeepsOrder)
{
    Rob rob(4);
    InstSeq next = 1;
    // Push/pop cycles force head wrap-around.
    for (int round = 0; round < 10; ++round) {
        while (!rob.full())
            rob.push().seq = next++;
        rob.pop();
        rob.pop();
    }
    InstSeq prev = 0;
    while (!rob.empty()) {
        EXPECT_GT(rob.head().seq, prev);
        prev = rob.head().seq;
        rob.pop();
    }
}

TEST(Rob, LogicalIndexingIsAgeOrdered)
{
    Rob rob(8);
    for (InstSeq s = 10; s < 15; ++s)
        rob.push().seq = s;
    rob.pop();  // retire seq 10
    for (unsigned i = 0; i < rob.size(); ++i)
        EXPECT_EQ(rob.at(i).seq, 11 + i);
}

TEST(Rob, PushResetsEntryState)
{
    Rob rob(4);
    DynInst &a = rob.push();
    a.issued = true;
    a.mispredicted = true;
    rob.pop();
    DynInst &b = rob.push();
    EXPECT_FALSE(b.issued);
    EXPECT_FALSE(b.mispredicted);
    EXPECT_EQ(b.commitReady, kCycleNever);
}

TEST(Rob, OutOfRangeAccessDies)
{
    Rob rob(4);
    rob.push();
    EXPECT_DEATH(rob.at(1), "out of range");
    EXPECT_DEATH(Rob(4).head(), "empty");
}
