/** Tests for the FU pool and the sequential-priority policy. */

#include <gtest/gtest.h>

#include "pipeline/fu_pool.hh"

using namespace dcg;

namespace {

std::array<unsigned, kNumFuTypes> kTable1{6, 2, 4, 4};

} // namespace

TEST(FuPool, SequentialPriorityPrefersLowestIndex)
{
    FuPool pool(kTable1, true);
    // All free: unit 0 first, then 1, 2...
    EXPECT_EQ(pool.allocate(FuType::IntAluUnit, 10, 1), 0);
    EXPECT_EQ(pool.allocate(FuType::IntAluUnit, 10, 1), 1);
    EXPECT_EQ(pool.allocate(FuType::IntAluUnit, 10, 1), 2);
    // Next cycle: unit 0 is free again and is preferred (Sec 3.1:
    // high-priority units stay busy, low-priority stay gated).
    EXPECT_EQ(pool.allocate(FuType::IntAluUnit, 11, 1), 0);
}

TEST(FuPool, RoundRobinRotates)
{
    FuPool pool(kTable1, false);
    EXPECT_EQ(pool.allocate(FuType::IntAluUnit, 10, 1), 0);
    EXPECT_EQ(pool.allocate(FuType::IntAluUnit, 11, 1), 1);
    EXPECT_EQ(pool.allocate(FuType::IntAluUnit, 12, 1), 2);
}

TEST(FuPool, ExhaustionReturnsInvalid)
{
    FuPool pool(kTable1, true);
    for (int i = 0; i < 6; ++i)
        EXPECT_GE(pool.allocate(FuType::IntAluUnit, 5, 1), 0);
    EXPECT_EQ(pool.allocate(FuType::IntAluUnit, 5, 1), kInvalidIndex);
}

TEST(FuPool, BusyWindowBlocksUnpipelinedUnit)
{
    FuPool pool(kTable1, true);
    // A divide occupies a mul/div unit for 19 cycles.
    EXPECT_EQ(pool.allocate(FuType::IntMulDivUnit, 10, 19), 0);
    EXPECT_EQ(pool.allocate(FuType::IntMulDivUnit, 12, 19), 1);
    EXPECT_EQ(pool.allocate(FuType::IntMulDivUnit, 14, 19),
              kInvalidIndex);
    // After the first frees up (cycle 29) it is available again.
    EXPECT_EQ(pool.allocate(FuType::IntMulDivUnit, 29, 1), 0);
}

TEST(FuPool, PipelinedUnitAcceptsBackToBack)
{
    FuPool pool(kTable1, true);
    EXPECT_EQ(pool.allocate(FuType::FpAluUnit, 10, 1), 0);
    EXPECT_EQ(pool.allocate(FuType::FpAluUnit, 11, 1), 0);
    EXPECT_EQ(pool.allocate(FuType::FpAluUnit, 12, 1), 0);
}

TEST(FuPool, EnabledCountLimitsAllocation)
{
    FuPool pool(kTable1, true);
    pool.setEnabledCount(FuType::IntAluUnit, 3);  // PLB 4-wide mode
    EXPECT_EQ(pool.enabledCount(FuType::IntAluUnit), 3u);
    for (int i = 0; i < 3; ++i)
        EXPECT_GE(pool.allocate(FuType::IntAluUnit, 5, 1), 0);
    EXPECT_EQ(pool.allocate(FuType::IntAluUnit, 5, 1), kInvalidIndex);
}

TEST(FuPool, EnabledCountClamped)
{
    FuPool pool(kTable1, true);
    pool.setEnabledCount(FuType::FpAluUnit, 0);
    EXPECT_EQ(pool.enabledCount(FuType::FpAluUnit), 1u);  // at least 1
    pool.setEnabledCount(FuType::FpAluUnit, 99);
    EXPECT_EQ(pool.enabledCount(FuType::FpAluUnit), 4u);  // physical cap
}

TEST(FuPool, ReenableRestoresFullPool)
{
    FuPool pool(kTable1, true);
    pool.setEnabledCount(FuType::IntAluUnit, 3);
    pool.setEnabledCount(FuType::IntAluUnit, 6);
    int got = 0;
    for (int i = 0; i < 6; ++i)
        got += pool.allocate(FuType::IntAluUnit, 5, 1) >= 0;
    EXPECT_EQ(got, 6);
}

TEST(FuPool, TypesAreIndependent)
{
    FuPool pool(kTable1, true);
    for (int i = 0; i < 6; ++i)
        pool.allocate(FuType::IntAluUnit, 5, 100);
    // Integer exhaustion does not affect FP pools.
    EXPECT_GE(pool.allocate(FuType::FpAluUnit, 5, 1), 0);
    EXPECT_GE(pool.allocate(FuType::FpMulDivUnit, 5, 1), 0);
}

TEST(FuPool, CountAccessors)
{
    FuPool pool(kTable1, true);
    EXPECT_EQ(pool.count(FuType::IntAluUnit), 6u);
    EXPECT_EQ(pool.count(FuType::IntMulDivUnit), 2u);
    EXPECT_EQ(pool.count(FuType::FpAluUnit), 4u);
    EXPECT_EQ(pool.count(FuType::FpMulDivUnit), 4u);
    EXPECT_TRUE(pool.sequentialPriority());
}

/**
 * The point of sequential priority (Sec 3.1): under a steady partial
 * load, high-indexed units are never touched, so their clock-gate
 * state never toggles.
 */
TEST(FuPool, SequentialPriorityParksHighUnits)
{
    FuPool pool(kTable1, true);
    for (Cycle c = 0; c < 1000; ++c) {
        // Two ALU ops per cycle.
        const int a = pool.allocate(FuType::IntAluUnit, c, 1);
        const int b = pool.allocate(FuType::IntAluUnit, c, 1);
        EXPECT_EQ(a, 0);
        EXPECT_EQ(b, 1);
    }
}
