/** Tests for pipeline depth/latch-phase configuration. */

#include <gtest/gtest.h>

#include "pipeline/config.hh"

using namespace dcg;

TEST(DepthConfig, DefaultIsEightStages)
{
    DepthConfig d;
    EXPECT_EQ(d.totalStages(), 8u);
}

TEST(DepthConfig, DeepPipelineIsTwentyStages)
{
    EXPECT_EQ(deepPipeline().totalStages(), 20u);
}

TEST(DepthConfig, GroupsPerPhaseSumToStagesMinusExec)
{
    for (const DepthConfig d : {DepthConfig{}, deepPipeline()}) {
        unsigned groups = 0;
        for (unsigned p = 0; p < kNumLatchPhases; ++p)
            groups += d.groupsFor(static_cast<LatchPhase>(p));
        // Every stage boundary has one latch group; the execute stage
        // contributes its own output group (ExecOut), so groups ==
        // totalStages.
        EXPECT_EQ(groups, d.totalStages());
    }
}

TEST(LatchPhase, GateabilityFollowsPaperSection22)
{
    // Not gateable: fetch-out, decode-out (pre-rename knowledge) and
    // issue-out (no setup time) — Figure 3's cross marks.
    EXPECT_FALSE(latchPhaseGateable(LatchPhase::FetchOut));
    EXPECT_FALSE(latchPhaseGateable(LatchPhase::DecodeOut));
    EXPECT_FALSE(latchPhaseGateable(LatchPhase::IssueOut));
    // Gateable: end of rename, register read, execute, memory, wb
    // (Sec 3.2).
    EXPECT_TRUE(latchPhaseGateable(LatchPhase::RenameOut));
    EXPECT_TRUE(latchPhaseGateable(LatchPhase::ReadOut));
    EXPECT_TRUE(latchPhaseGateable(LatchPhase::ExecOut));
    EXPECT_TRUE(latchPhaseGateable(LatchPhase::MemOut));
    EXPECT_TRUE(latchPhaseGateable(LatchPhase::WbOut));
}

TEST(LatchPhase, NamesDistinct)
{
    for (unsigned i = 0; i < kNumLatchPhases; ++i) {
        for (unsigned j = i + 1; j < kNumLatchPhases; ++j) {
            EXPECT_STRNE(latchPhaseName(static_cast<LatchPhase>(i)),
                         latchPhaseName(static_cast<LatchPhase>(j)));
        }
    }
}

TEST(PipeTiming, DefaultOffsetsMatchPaperFigures)
{
    CoreConfig cfg;
    PipeTiming t(cfg);
    EXPECT_EQ(t.fetchToRename, 2u);
    EXPECT_EQ(t.renameToSelect, 2u);
    // Figure 6: selected at X, register read X+1, execute X+2.
    EXPECT_EQ(t.selectToExec, 2u);
    // Sec 3.4: executed in X -> writeback X+2.
    EXPECT_EQ(t.execToWb, 2u);
}

TEST(PipeTiming, DeepPipelineStretchesFrontEnd)
{
    CoreConfig cfg;
    cfg.depth = deepPipeline();
    PipeTiming t(cfg);
    EXPECT_GT(t.fetchToRename, 2u);
    EXPECT_GT(t.selectToExec, 2u);
}

TEST(CoreConfig, Table1Defaults)
{
    CoreConfig cfg;
    EXPECT_EQ(cfg.issueWidth, 8u);
    EXPECT_EQ(cfg.windowSize, 128u);
    EXPECT_EQ(cfg.lsqSize, 64u);
    EXPECT_EQ(cfg.fuCount[0], 6u);   // integer ALUs
    EXPECT_EQ(cfg.fuCount[1], 2u);   // integer mul/div
    EXPECT_EQ(cfg.fuCount[2], 4u);   // FP ALUs
    EXPECT_EQ(cfg.fuCount[3], 4u);   // FP mul/div
    EXPECT_EQ(cfg.dcachePorts, 2u);
    EXPECT_EQ(cfg.numResultBuses, 8u);
    EXPECT_TRUE(cfg.sequentialPriority);
    EXPECT_FALSE(cfg.delayStoresOneCycle);
}
