/** Tests for the per-cycle activity record and the future ledger. */

#include <gtest/gtest.h>

#include "pipeline/activity.hh"

using namespace dcg;

TEST(ActivityWheel, AdvanceReturnsScheduledRecord)
{
    ActivityWheel w(256);
    w.at(3, 1).dcachePortsUsed = 2;
    w.advance();  // cycle 1
    w.advance();  // cycle 2
    const CycleActivity &a = w.advance();  // cycle 3
    EXPECT_EQ(a.dcachePortsUsed, 2u);
}

TEST(ActivityWheel, LeavingACycleRecyclesItsSlot)
{
    ActivityWheel w(256);
    w.current().issued = 5;
    w.advance();
    // Wrap all the way around: the old cycle-0 slot must be clean.
    for (unsigned i = 0; i < 255; ++i)
        w.advance();
    EXPECT_EQ(w.current().issued, 0u);
}

TEST(ActivityWheel, InsufficientNoticeDies)
{
    ActivityWheel w(256);
    w.advance();
    // Scheduling "now" with a 2-cycle notice requirement violates the
    // advance-knowledge contract.
    EXPECT_DEATH(w.at(w.cycle(), 2), "advance notice");
}

TEST(ActivityWheel, BeyondHorizonDies)
{
    ActivityWheel w(256);
    EXPECT_DEATH(w.at(300, 0), "horizon");
}

TEST(ActivityWheel, MarkFuBusySetsMaskOverWindow)
{
    ActivityWheel w(256);
    w.markFuBusy(FuType::IntAluUnit, 2, 4, 7, 2);  // busy cycles 4,5,6
    for (unsigned c = 1; c <= 8; ++c) {
        const CycleActivity &a = w.advance();
        const bool busy =
            a.fuBusyMask[static_cast<unsigned>(FuType::IntAluUnit)] &
            (1u << 2);
        EXPECT_EQ(busy, c >= 4 && c <= 6) << "cycle " << c;
    }
}

TEST(ActivityWheel, MarkFuBusyCountsOneStart)
{
    ActivityWheel w(256);
    w.markFuBusy(FuType::FpAluUnit, 0, 3, 5, 1);
    w.advance();
    w.advance();
    const CycleActivity &a = w.advance();
    EXPECT_EQ(a.fuStarts[static_cast<unsigned>(FuType::FpAluUnit)], 1u);
}

TEST(CycleActivity, FuBusyCountPopcounts)
{
    CycleActivity a;
    a.fuBusyMask[0] = 0b101101;
    EXPECT_EQ(a.fuBusyCount(FuType::IntAluUnit), 4u);
}

TEST(CycleActivity, BumpLatchFluxSaturatesAtWidth)
{
    CycleActivity a;
    for (int i = 0; i < 20; ++i)
        a.bumpLatchFlux(LatchPhase::MemOut, 8);
    EXPECT_EQ(a.latchFlux[static_cast<unsigned>(LatchPhase::MemOut)], 8u);
}

TEST(CycleActivity, ResetClearsEverything)
{
    CycleActivity a;
    a.issued = 3;
    a.fuBusyMask[1] = 0xff;
    a.latchFlux[2] = 4;
    a.reset();
    EXPECT_EQ(a.issued, 0u);
    EXPECT_EQ(a.fuBusyMask[1], 0u);
    EXPECT_EQ(a.latchFlux[2], 0u);
}
