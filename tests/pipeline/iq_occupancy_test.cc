/** Consistency tests for the issue-queue occupancy signal. */

#include <gtest/gtest.h>

#include "branch/predictor.hh"
#include "cache/hierarchy.hh"
#include "pipeline/core.hh"
#include "trace/generator.hh"
#include "trace/spec2000.hh"

using namespace dcg;

TEST(IqOccupancy, MatchesRenamedMinusIssuedRunningSum)
{
    StatRegistry stats;
    TraceGenerator gen(profileByName("parser"), 3);
    MemoryHierarchy mem(HierarchyConfig{}, stats);
    BranchPredictor bp(BranchPredictorConfig{}, stats);
    Core core(CoreConfig{}, gen, mem, bp, stats);

    std::int64_t expected = 0;
    for (int i = 0; i < 20000; ++i) {
        core.tick();
        const CycleActivity &a = core.activity();
        // iqOccupied is sampled at the start of the cycle, before this
        // cycle's renames and issues are applied.
        ASSERT_EQ(a.iqOccupied, expected) << "cycle " << i;
        expected += a.renamed;
        expected -= a.issued;
        ASSERT_GE(expected, 0);
        ASSERT_LE(expected, 128);
    }
}

TEST(IqOccupancy, BoundedByWindowSize)
{
    StatRegistry stats;
    TraceGenerator gen(profileByName("mcf"), 5);  // window-filling
    MemoryHierarchy mem(HierarchyConfig{}, stats);
    BranchPredictor bp(BranchPredictorConfig{}, stats);
    Core core(CoreConfig{}, gen, mem, bp, stats);
    unsigned peak = 0;
    for (int i = 0; i < 20000; ++i) {
        core.tick();
        peak = std::max<unsigned>(peak, core.activity().iqOccupied);
    }
    EXPECT_LE(peak, 128u);
    EXPECT_GT(peak, 16u);  // mcf stalls fill the window
}
