#include "serve/widget.hh"

namespace fix {

Widget::Widget() { inbox = 0; }  // ctor: not yet shared, exempt

Widget::~Widget() { inbox = 0; }  // dtor: no longer shared, exempt

void
Widget::step()
{
    acquire(mu);
    inbox += 1;
    flushLocked();
}

void
Widget::post(int v)
{
    acquire(mu);
    inbox += v;
}

int
Widget::drained() const
{
    return done;
}

void
Widget::poke()
{
    acquire(mu);
    inbox += 1;
}

void
Widget::flushLocked()
{
    inbox = 0;  // DCG_REQUIRES(mu): the caller holds the lock
}

} // namespace fix
