// Clean half of the fixture: a per-cycle power tick that accumulates
// into plain members, and a cold report helper that may use the
// registry freely.

struct Reg
{
    double &scalar(const char *name, const char *desc);
};

struct PowerModel
{
    void
    tick(double pj)
    {
        accumPJ += pj;  // flat accumulation: fine
    }

    void
    report(Reg &stats)
    {
        stats.scalar("power.total_energy_pj", "total energy") = accumPJ;
    }

    double accumPJ = 0.0;
};
