// Dirty fixture for tick-path-stats: registry accessors inside the
// per-cycle hot path. Exactly two findings expected here — the
// tick() counter registration and the commit() lookup. The
// constructor's registration, the free counter() call in tick(), and
// the foldStats() accesses are all fine.

struct Reg
{
    int &counter(const char *name, const char *desc);
    double lookup(const char *name) const;
};

int &counter(int which);

struct Core
{
    explicit Core(Reg &r);

    void tick();
    void commit();
    void foldStats();

    Reg &stats;
    int &ticks;
    long flatCommitted = 0;
};

Core::Core(Reg &r)
    : stats(r), ticks(r.counter("core.ticks", "tick count"))
{
}

void
Core::tick()
{
    ++stats.counter("core.ticks", "tick count");  // flagged
    ++counter(0);  // free function, not a registry access
    ++flatCommitted;
}

void
Core::commit()
{
    if (stats.lookup("core.ticks") > 0)  // flagged
        ++flatCommitted;
}

void
Core::foldStats()
{
    // Report path: registry access is the whole point here.
    ticks += static_cast<int>(flatCommitted);
    stats.lookup("core.ticks");
}
