// A correctly annotated class: owner-thread stepping, any-thread
// injection under a lock, a *Locked helper with DCG_REQUIRES.
#include "common/thread_annotations.hh"

namespace fix {

class Widget
{
  public:
    Widget();
    ~Widget();

    void step() DCG_OWNER_THREAD;
    void post(int v) DCG_ANY_THREAD;
    int drained() const DCG_ANY_THREAD;

  private:
    void flushLocked() DCG_REQUIRES(mu);

    int mu = 0;  // stand-in for a mutex; the check is lexical
    int inbox DCG_GUARDED_BY(mu) = 0;
    int done = 0;
};

} // namespace fix
