// Fixture stub of src/sim/simulator.hh — the determinism check's
// anchor file. Fixtures are lexical inputs, not compiled code.
#ifndef FIX_SIM_SIMULATOR_HH
#define FIX_SIM_SIMULATOR_HH
#endif
