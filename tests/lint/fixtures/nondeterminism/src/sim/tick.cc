// Every class of determinism hazard the check bans, plus the shapes
// that must NOT be flagged (member calls, declarators, the allow
// marker). Deliberately include-free: fixtures are lexical inputs.
#include "sim/simulator.hh"

namespace fix {

struct Clock
{
    long time() const { return 0; }  // member named like the libc call
};

long declaredNotCalled(long time);  // "time" as a parameter name

long
tick(Clock &c)
{
    long t = c.time();       // member call: fine
    t += time(nullptr);      // BUG: wall clock
    t += std::rand();        // BUG: ambient randomness
    std::srand(7);           // waived  // dcglint:allow(determinism)

    std::unordered_map<int, int> histo;  // BUG: iteration order
    std::random_device rd;   // BUG: nondeterministic seed
    return t + static_cast<long>(histo.size()) +
           static_cast<long>(rd());
}

} // namespace fix
