// Fixture: fully wired tree — dcglint must report nothing.
#include <cstdint>

struct CycleActivity
{
    std::uint8_t usedCtr = 0;
    std::uint8_t busyCtr = 0;

    void reset() { *this = CycleActivity{}; }
};
