#include "pipeline/activity.hh"

struct Reg
{
    int &counter(const char *name, const char *desc);
};

// Registry access happens at construction; the per-cycle tick()
// accumulates flat (tick-path-stats would flag a registry call there).
struct Core
{
    explicit Core(Reg &stats)
        : ticks(stats.counter("core.ticks", "tick count"))
    {
    }

    void
    tick(CycleActivity &act)
    {
        ++act.usedCtr;
        act.busyCtr += 2;
        ++ticks;
    }

    int &ticks;
};
