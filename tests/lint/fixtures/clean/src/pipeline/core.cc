#include "pipeline/activity.hh"

struct Reg
{
    int &counter(const char *name, const char *desc);
};

void
tick(CycleActivity &act, Reg &stats)
{
    ++act.usedCtr;
    act.busyCtr += 2;
    stats.counter("core.ticks", "tick count");
}
