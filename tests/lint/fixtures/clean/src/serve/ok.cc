#include <sys/socket.h>
#include <unistd.h>

#include "serve/netio.hh"

int
run(int fd)
{
    if (listen(fd, 8) != 0)
        return -1;
    char buf[16];
    while (net::recvRetry(fd, buf, sizeof(buf), 0) > 0) {
    }
    close(fd);
    return 0;
}
