// EINTR-safe socket wrappers — the anchor the net-io check keys on.
namespace net {

inline long recvRetry(int fd, void *buf, unsigned long n, int flags);
inline long sendRetry(int fd, const void *buf, unsigned long n,
                      int flags);
inline int pollRetry(void *fds, unsigned long nfds, int timeoutMs);

} // namespace net
