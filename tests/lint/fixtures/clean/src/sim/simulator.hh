// Fixture stub of src/sim/simulator.hh — the determinism check's
// anchor file, so the clean tree passes --require-anchors.
#ifndef FIX_SIM_SIMULATOR_HH
#define FIX_SIM_SIMULATOR_HH
#endif
