// Fixture catalog: every registered stat is listed.
const char *kCatalog[] = {
    "core.ticks",
};
