// Fixture scheme: registered and listed in EXPERIMENTS.md. The check
// is lexical, so this file only has to look like a registration.
#include "gating/registry.hh"

namespace {

const bool registered = registerScheme(
    {"demo", "fixture demonstration scheme", {}},
    nullptr);

} // namespace
