#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "serve/netio.hh"

struct Sock
{
    // A member named like the syscall: not the libc function.
    long read(char *buf, unsigned long n);
};

// A declaration, not a call — "poll" in a comment is fine too.
long readAll(int fd, char *buf, unsigned long n);

int
pump(int fd, Sock &sock)
{
    pollfd pfd{};
    pfd.fd = fd;
    const int pr = poll(&pfd, 1, 50);  // raw: flagged
    if (pr <= 0)
        return pr;
    char buf[64];
    long n = read(fd, buf, sizeof(buf));  // raw: flagged
    if (n <= 0)
        n = sock.read(buf, sizeof(buf));  // member call: fine
    if (net::writeRetry(1, buf, static_cast<unsigned long>(n)) < 0)
        return -1;  // wrapper call: fine
    // raw after a statement keyword: flagged
    return send(fd, buf, static_cast<unsigned long>(n), 0) < 0 ? -1
                                                               : 0;
}
