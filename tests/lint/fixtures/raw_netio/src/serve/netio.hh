// EINTR-safe socket wrappers — the anchor the net-io check keys on.
namespace net {

inline long readRetry(int fd, void *buf, unsigned long n);
inline long writeRetry(int fd, const void *buf, unsigned long n);
inline long sendRetry(int fd, const void *buf, unsigned long n,
                      int flags);
inline int pollRetry(void *fds, unsigned long nfds, int timeoutMs);

} // namespace net
