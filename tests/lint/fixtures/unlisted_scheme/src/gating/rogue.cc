// Fixture: "demo" is documented in EXPERIMENTS.md, "rogue" is not —
// only the latter must be flagged. The mention of rogue in this
// comment and in the string below must not satisfy the check.
#include "gating/registry.hh"

namespace {

const bool demo_ok = registerScheme(
    {"demo", "documented fixture scheme", {}},
    nullptr);

const bool rogue_bad = registerScheme(
    {"rogue", "undocumented fixture scheme named rogue", {}},
    nullptr);

} // namespace
