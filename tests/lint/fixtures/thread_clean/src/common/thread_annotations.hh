// Fixture stub of src/common/thread_annotations.hh: the lint check is
// lexical, so no-op macros are all the fixture needs.
#ifndef FIX_COMMON_THREAD_ANNOTATIONS_HH
#define FIX_COMMON_THREAD_ANNOTATIONS_HH

#define DCG_OWNER_THREAD
#define DCG_ANY_THREAD
#define DCG_GUARDED_BY(x)
#define DCG_REQUIRES(x)

#endif
