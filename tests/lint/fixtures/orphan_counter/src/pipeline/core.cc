#include "pipeline/activity.hh"

void
tick(CycleActivity &act)
{
    ++act.usedCtr;
    ++act.orphanCtr;
}
