// Fixture: one healthy counter, one produced-but-unconsumed counter
// (the energy-accounting hole), one consumed-but-never-written one.
#include <cstdint>

struct CycleActivity
{
    std::uint8_t usedCtr = 0;
    std::uint8_t orphanCtr = 0;  // written in core.cc, consumed nowhere
    std::uint8_t ghostCtr = 0;   // read by power, written nowhere

    void reset() { *this = CycleActivity{}; }
};
