#include "pipeline/activity.hh"

double
energy(const CycleActivity &act)
{
    return 1.0 * act.usedCtr + 2.0 * act.ghostCtr;
}
