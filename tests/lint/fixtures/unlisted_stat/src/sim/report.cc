// Fixture catalog: lists only "core.listed".
const char *kCatalog[] = {
    "core.listed",
};
