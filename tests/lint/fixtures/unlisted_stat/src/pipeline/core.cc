// Fixture: two stat registrations; only one is in the report catalog.
struct Reg
{
    int &counter(const char *name, const char *desc);
};

void
wire(Reg &stats)
{
    stats.counter("core.listed", "present in report.cc");
    stats.counter("core.unlisted", "missing from report.cc");
}
