// Fixture: one discarded fallible syscall among checked/allowlisted
// uses.
#include <fcntl.h>
#include <sys/socket.h>
#include <unistd.h>

int
setup(int fd)
{
    fcntl(fd, F_SETFL, 0);              // BAD: result discarded
    if (bind(fd, nullptr, 0) != 0)      // ok: checked
        return -1;
    const int rc = listen(fd, 4);       // ok: assigned
    (void)shutdown(fd, SHUT_RDWR);      // ok: explicit discard
    close(fd);                          // ok: allowlisted
    return rc;
}
