// Fixture: raw new/delete (flagged) next to a deleted member (not
// flagged) and mentions inside comments and strings (not flagged).
struct Owner
{
    Owner(const Owner &) = delete;  // fine: deleted member function
    int *p = nullptr;
};

int *
make()
{
    const char *s = "new delete";  // fine: string literal
    (void)s;
    return new int(7);  // BAD
}

void
unmake(int *p)
{
    delete p;  // BAD
}
