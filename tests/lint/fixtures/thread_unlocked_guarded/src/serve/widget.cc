#include "serve/widget.hh"

namespace fix {

Widget::Widget() { inbox = 0; }  // ctor: not yet shared, exempt

Widget::~Widget() { inbox = 0; }  // dtor: no longer shared, exempt

void
Widget::step()
{
    acquire(mu);
    inbox += 1;
    flushLocked();
}

void
Widget::post(int v)
{
    inbox += v;  // BUG: guarded member touched without the lock
}

int
Widget::drained() const
{
    return done;
}

void
Widget::flushLocked()
{
    inbox = 0;  // DCG_REQUIRES(mu): the caller holds the lock
}

} // namespace fix
