#include "lint/lexer.hh"

#include <gtest/gtest.h>

namespace dcg::lint {
namespace {

TEST(LintLexer, StripsLineComments)
{
    const std::string out =
        stripCode("int x = 1; // new delete\nint y;", true);
    EXPECT_EQ(out.find("new"), std::string::npos);
    EXPECT_EQ(out.find("delete"), std::string::npos);
    EXPECT_NE(out.find("int y;"), std::string::npos);
}

TEST(LintLexer, StripsBlockCommentsPreservingNewlines)
{
    const std::string src = "a /* one\ntwo */ b";
    const std::string out = stripCode(src, true);
    EXPECT_EQ(out.size(), src.size());
    EXPECT_EQ(out.find("one"), std::string::npos);
    EXPECT_EQ(out.find("two"), std::string::npos);
    EXPECT_NE(out.find('\n'), std::string::npos);
    EXPECT_NE(out.find('a'), std::string::npos);
    EXPECT_NE(out.find('b'), std::string::npos);
}

TEST(LintLexer, StringStrippingIsOptional)
{
    const std::string src = "call(\"core.ipc\");";
    EXPECT_NE(stripCode(src, false).find("core.ipc"),
              std::string::npos);
    EXPECT_EQ(stripCode(src, true).find("core.ipc"),
              std::string::npos);
}

TEST(LintLexer, HandlesEscapesInsideStrings)
{
    // The escaped quote must not terminate the literal early.
    const std::string out =
        stripCode("f(\"a\\\"new\\\"b\"); delete p;", true);
    EXPECT_EQ(out.find("new"), std::string::npos);
    EXPECT_NE(out.find("delete"), std::string::npos);
}

TEST(LintLexer, HandlesRawStrings)
{
    const std::string out =
        stripCode("auto s = R\"(new delete)\"; int n;", true);
    EXPECT_EQ(out.find("new"), std::string::npos);
    EXPECT_EQ(out.find("delete"), std::string::npos);
    EXPECT_NE(out.find("int n;"), std::string::npos);
}

TEST(LintLexer, ContainsWordRespectsBoundaries)
{
    EXPECT_TRUE(containsWord("x = issued + 1", "issued"));
    EXPECT_FALSE(containsWord("x = fpIssued + 1", "issued"));
    EXPECT_FALSE(containsWord("x = issued_total", "issued"));
    EXPECT_TRUE(containsWord("act.issued++", "issued"));
}

TEST(LintLexer, LineOfOffset)
{
    const std::string text = "a\nbb\nccc\n";
    EXPECT_EQ(lineOfOffset(text, 0), 1);
    EXPECT_EQ(lineOfOffset(text, 2), 2);
    EXPECT_EQ(lineOfOffset(text, 5), 3);
}

TEST(LintLexer, Trim)
{
    EXPECT_EQ(trim("  a b\t\n"), "a b");
    EXPECT_EQ(trim(""), "");
    EXPECT_EQ(trim("   "), "");
}

} // namespace
} // namespace dcg::lint
