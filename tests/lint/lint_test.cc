/**
 * dcglint behaviour on the fixture trees under tests/lint/fixtures/:
 * exact diagnostics (check, file, line, message substrings) and exit
 * codes, including the clean tree and the anchor-enforcement mode the
 * repo-wide ctest uses; plus the registry catalog's own invariants
 * and the machine-readable output/baseline layers.
 */

#include "lint/lint.hh"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "lint/registry.hh"

#ifndef DCG_LINT_FIXTURES
#error "DCG_LINT_FIXTURES must point at tests/lint/fixtures"
#endif

namespace dcg::lint {
namespace {

std::string
fixture(const std::string &name)
{
    return std::string(DCG_LINT_FIXTURES) + "/" + name;
}

bool
hasDiag(const std::vector<Diagnostic> &diags, const std::string &check,
        const std::string &needle)
{
    return std::any_of(diags.begin(), diags.end(),
                       [&](const Diagnostic &d) {
                           return d.check == check &&
                                  d.message.find(needle) !=
                                      std::string::npos;
                       });
}

TEST(Dcglint, CleanTreePasses)
{
    LintOptions opts;
    opts.root = fixture("clean");
    opts.requireAnchors = true;
    std::ostringstream out;
    EXPECT_EQ(runDcglint(opts, out), 0);
    EXPECT_NE(out.str().find("dcglint: clean"), std::string::npos);
}

TEST(Dcglint, OrphanedActivityCounterIsCaught)
{
    LintOptions opts;
    opts.root = fixture("orphan_counter");
    const std::vector<Diagnostic> diags =
        runCheck("activity-counter", opts);

    // Exactly two findings: orphanCtr is written but never consumed,
    // ghostCtr is consumed but never written. usedCtr is healthy.
    ASSERT_EQ(diags.size(), 2u);
    EXPECT_TRUE(hasDiag(diags, "activity-counter",
                        "'orphanCtr' is never consumed"));
    EXPECT_TRUE(hasDiag(diags, "activity-counter",
                        "'ghostCtr' is never written"));
    for (const Diagnostic &d : diags) {
        EXPECT_EQ(d.file, "src/pipeline/activity.hh");
        EXPECT_GT(d.line, 0);
    }

    std::ostringstream out;
    LintOptions all = opts;
    EXPECT_EQ(runDcglint(all, out), 1);
    EXPECT_NE(out.str().find("2 finding(s)"), std::string::npos);
}

TEST(Dcglint, UncheckedSyscallIsCaught)
{
    LintOptions opts;
    opts.root = fixture("unchecked_syscall");
    const std::vector<Diagnostic> diags =
        runCheck("syscall-return", opts);

    // Only the discarded fcntl() is flagged; the checked bind(), the
    // assigned listen(), the (void) shutdown() and the allowlisted
    // close() are all fine.
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].check, "syscall-return");
    EXPECT_EQ(diags[0].file, "src/serve/conn.cc");
    EXPECT_NE(diags[0].message.find("fcntl"), std::string::npos);

    std::ostringstream out;
    EXPECT_EQ(runDcglint(opts, out), 1);
}

TEST(Dcglint, RawNetIoCallsAreCaught)
{
    LintOptions opts;
    opts.root = fixture("raw_netio");
    const std::vector<Diagnostic> diags = runCheck("net-io", opts);

    // The raw poll/read/send calls are flagged; the net::writeRetry
    // wrapper, the member sock.read() and the declarations are not.
    ASSERT_EQ(diags.size(), 3u);
    EXPECT_TRUE(hasDiag(diags, "net-io", "raw poll()"));
    EXPECT_TRUE(hasDiag(diags, "net-io", "raw read()"));
    EXPECT_TRUE(hasDiag(diags, "net-io", "raw send()"));
    for (const Diagnostic &d : diags) {
        EXPECT_EQ(d.file, "src/serve/conn.cc");
        EXPECT_GT(d.line, 0);
    }

    std::ostringstream out;
    EXPECT_EQ(runDcglint(opts, out), 1);
}

TEST(Dcglint, NakedNewAndDeleteAreCaught)
{
    LintOptions opts;
    opts.root = fixture("naked_new");
    const std::vector<Diagnostic> diags = runCheck("naked-new", opts);

    // new int(7) and delete p — but not "= delete" nor the words in
    // comments or string literals.
    ASSERT_EQ(diags.size(), 2u);
    EXPECT_TRUE(hasDiag(diags, "naked-new", "naked 'new'"));
    EXPECT_TRUE(hasDiag(diags, "naked-new", "naked 'delete'"));
}

TEST(Dcglint, UnlistedStatIsCaught)
{
    LintOptions opts;
    opts.root = fixture("unlisted_stat");
    const std::vector<Diagnostic> diags =
        runCheck("stat-report", opts);

    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].check, "stat-report");
    EXPECT_EQ(diags[0].file, "src/pipeline/core.cc");
    EXPECT_NE(diags[0].message.find("core.unlisted"),
              std::string::npos);
}

TEST(Dcglint, UnlistedSchemeIsCaught)
{
    LintOptions opts;
    opts.root = fixture("unlisted_scheme");
    const std::vector<Diagnostic> diags =
        runCheck("scheme-registry", opts);

    // "rogue" is registered but absent from EXPERIMENTS.md; the
    // documented "demo" registration in the same tree passes.
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].check, "scheme-registry");
    EXPECT_EQ(diags[0].file, "src/gating/rogue.cc");
    EXPECT_GT(diags[0].line, 0);
    EXPECT_NE(diags[0].message.find("'rogue'"), std::string::npos);
    EXPECT_NE(diags[0].message.find("EXPERIMENTS.md"),
              std::string::npos);

    std::ostringstream out;
    EXPECT_EQ(runDcglint(opts, out), 1);
}

TEST(Dcglint, ThreadCleanFixturePasses)
{
    LintOptions opts;
    opts.root = fixture("thread_clean");
    EXPECT_TRUE(runCheck("thread-ownership", opts).empty());
}

TEST(Dcglint, AnyThreadCallingOwnerThreadIsCaught)
{
    LintOptions opts;
    opts.root = fixture("thread_any_to_owner");
    const std::vector<Diagnostic> diags =
        runCheck("thread-ownership", opts);

    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].check, "thread-ownership");
    EXPECT_EQ(diags[0].file, "src/serve/widget.cc");
    EXPECT_GT(diags[0].line, 0);
    EXPECT_NE(diags[0].message.find("'Widget::post'"),
              std::string::npos);
    EXPECT_NE(diags[0].message.find("owner-thread-only method 'step'"),
              std::string::npos);
}

TEST(Dcglint, UnlockedGuardedMemberIsCaught)
{
    LintOptions opts;
    opts.root = fixture("thread_unlocked_guarded");
    const std::vector<Diagnostic> diags =
        runCheck("thread-ownership", opts);

    // post() touches inbox without naming mu; step() (locks) and
    // flushLocked() (DCG_REQUIRES) in the same tree pass.
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].file, "src/serve/widget.cc");
    EXPECT_NE(diags[0].message.find("'inbox'"), std::string::npos);
    EXPECT_NE(diags[0].message.find("DCG_GUARDED_BY(mu)"),
              std::string::npos);
}

TEST(Dcglint, UnannotatedPublicDeclIsCaught)
{
    LintOptions opts;
    opts.root = fixture("thread_unannotated_decl");
    const std::vector<Diagnostic> diags =
        runCheck("thread-ownership", opts);

    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].file, "src/serve/widget.hh");
    EXPECT_NE(diags[0].message.find("'Widget::poke'"),
              std::string::npos);
    EXPECT_NE(diags[0].message.find("lacks a thread annotation"),
              std::string::npos);
}

TEST(Dcglint, DeterminismHazardsAreCaughtAndAllowMarkerHonored)
{
    LintOptions opts;
    opts.root = fixture("nondeterminism");
    const std::vector<Diagnostic> diags =
        runCheck("determinism", opts);

    // time(), rand(), unordered_map, random_device — exactly four;
    // the member c.time(), the declarator parameter, and the
    // dcglint:allow(determinism)-marked srand() are not flagged.
    ASSERT_EQ(diags.size(), 4u);
    EXPECT_TRUE(hasDiag(diags, "determinism", "time()"));
    EXPECT_TRUE(hasDiag(diags, "determinism", "rand()"));
    EXPECT_TRUE(hasDiag(diags, "determinism", "unordered_map"));
    EXPECT_TRUE(hasDiag(diags, "determinism", "random_device"));
    EXPECT_FALSE(hasDiag(diags, "determinism", "srand"));
    for (const Diagnostic &d : diags)
        EXPECT_EQ(d.file, "src/sim/tick.cc");
}

TEST(Dcglint, TickPathRegistryCallsAreCaught)
{
    LintOptions opts;
    opts.root = fixture("tick_path_stats");
    const std::vector<Diagnostic> diags =
        runCheck("tick-path-stats", opts);

    // tick()'s counter() and commit()'s lookup() — but not the
    // constructor registration, the free counter() call, the
    // foldStats() report access, or the flat-accumulating power tick.
    ASSERT_EQ(diags.size(), 2u);
    EXPECT_TRUE(hasDiag(diags, "tick-path-stats",
                        "'Core::tick' calls stat registry accessor "
                        "'counter()'"));
    EXPECT_TRUE(hasDiag(diags, "tick-path-stats",
                        "'Core::commit' calls stat registry accessor "
                        "'lookup()'"));
    for (const Diagnostic &d : diags) {
        EXPECT_EQ(d.file, "src/pipeline/core.cc");
        EXPECT_GT(d.line, 0);
    }

    std::ostringstream out;
    EXPECT_EQ(runDcglint(opts, out), 1);
}

TEST(Dcglint, CheckSelectionFilters)
{
    // The orphan_counter tree is dirty for activity-counter but clean
    // for every other check.
    LintOptions opts;
    opts.root = fixture("orphan_counter");
    opts.checks = {"syscall-return", "naked-new"};
    std::ostringstream out;
    EXPECT_EQ(runDcglint(opts, out), 0);
}

TEST(Dcglint, UnknownCheckIsConfigError)
{
    LintOptions opts;
    opts.root = fixture("clean");
    opts.checks = {"no-such-check"};
    std::ostringstream out;
    EXPECT_EQ(runDcglint(opts, out), 2);
    // The error names the registered catalog, like dcgsim --scheme.
    EXPECT_NE(out.str().find("thread-ownership"), std::string::npos);
}

TEST(Dcglint, BadRootIsConfigError)
{
    LintOptions opts;
    opts.root = fixture("does_not_exist");
    std::ostringstream out;
    EXPECT_EQ(runDcglint(opts, out), 2);
}

TEST(Dcglint, MissingAnchorsAreConfigErrorsOnlyWhenRequired)
{
    // unchecked_syscall has no activity.hh / report.cc anchors: the
    // anchored checks silently skip by default (fixture mode)...
    LintOptions opts;
    opts.root = fixture("unchecked_syscall");
    EXPECT_TRUE(runCheck("activity-counter", opts).empty());
    EXPECT_TRUE(runCheck("stat-report", opts).empty());

    // ...but the repo-wide mode treats a missing anchor as exit 2, so
    // renaming activity.hh cannot silently disable the invariant.
    opts.requireAnchors = true;
    opts.checks = {"activity-counter"};
    std::ostringstream out;
    EXPECT_EQ(runDcglint(opts, out), 2);
    EXPECT_NE(out.str().find("anchor"), std::string::npos);
}

TEST(Dcglint, DiagnosticFormatting)
{
    Diagnostic d{"src/a.cc", 12, "naked-new", "msg"};
    EXPECT_EQ(formatDiagnostic(d), "src/a.cc:12: [naked-new] msg");
    d.line = 0;
    EXPECT_EQ(formatDiagnostic(d), "src/a.cc: [naked-new] msg");
    d.line = 12;
    EXPECT_EQ(baselineKey(d), "src/a.cc: [naked-new] msg");
}

TEST(Dcglint, JsonOutputCarriesEveryFinding)
{
    LintOptions opts;
    opts.root = fixture("nondeterminism");
    opts.checks = {"determinism"};
    opts.format = OutputFormat::Json;
    std::ostringstream out;
    EXPECT_EQ(runDcglint(opts, out), 1);
    const std::string doc = out.str();
    EXPECT_NE(doc.find("\"count\": 4"), std::string::npos);
    EXPECT_NE(doc.find("\"check\": \"determinism\""),
              std::string::npos);
    EXPECT_NE(doc.find("src/sim/tick.cc"), std::string::npos);
}

TEST(Dcglint, SarifOutputHasRuleTableAndResults)
{
    LintOptions opts;
    opts.root = fixture("thread_any_to_owner");
    opts.checks = {"thread-ownership"};
    opts.format = OutputFormat::Sarif;
    std::ostringstream out;
    EXPECT_EQ(runDcglint(opts, out), 1);
    const std::string doc = out.str();
    EXPECT_NE(doc.find("\"version\": \"2.1.0\""), std::string::npos);
    // Every registered check appears in the rule table.
    for (const CheckInfo &info : checkCatalog())
        EXPECT_NE(doc.find("\"id\": \"" + info.name + "\""),
                  std::string::npos)
            << info.name;
    EXPECT_NE(doc.find("\"ruleId\": \"thread-ownership\""),
              std::string::npos);
    EXPECT_NE(doc.find("\"startLine\": "), std::string::npos);
}

TEST(Dcglint, BaselineSuppressesKnownFindings)
{
    LintOptions opts;
    opts.root = fixture("thread_any_to_owner");
    opts.checks = {"thread-ownership"};
    const std::vector<Diagnostic> diags =
        runCheck("thread-ownership", opts);
    ASSERT_EQ(diags.size(), 1u);

    const std::string path =
        (std::filesystem::temp_directory_path() /
         "dcglint_baseline_test.txt")
            .string();
    {
        std::ofstream os(path);
        os << "# known findings\n" << baselineKey(diags[0]) << "\n";
    }
    opts.baselineFile = path;
    std::ostringstream out;
    EXPECT_EQ(runDcglint(opts, out), 0);
    EXPECT_NE(out.str().find("1 baselined"), std::string::npos);
    std::remove(path.c_str());

    // An unreadable baseline is a configuration error, not a pass.
    opts.baselineFile = fixture("no_such_baseline.txt");
    std::ostringstream out2;
    EXPECT_EQ(runDcglint(opts, out2), 2);
}

TEST(Dcglint, OnlyFilesFiltersTheReportNotTheAnalysis)
{
    LintOptions opts;
    opts.root = fixture("nondeterminism");
    opts.checks = {"determinism"};
    opts.onlyFiles = {"src/other.cc"};
    std::ostringstream out;
    EXPECT_EQ(runDcglint(opts, out), 0);

    opts.onlyFiles = {"src/sim/tick.cc"};
    std::ostringstream out2;
    EXPECT_EQ(runDcglint(opts, out2), 1);
}

TEST(DcglintRegistry, CatalogIsCompleteAndAnchorsResolve)
{
    const std::vector<CheckInfo> catalog = checkCatalog();
    EXPECT_GE(catalog.size(), 9u);

    for (const CheckInfo &info : catalog) {
        EXPECT_FALSE(info.name.empty());
        EXPECT_FALSE(info.description.empty()) << info.name;
        for (const std::string &anchor : info.anchors) {
            const std::filesystem::path p =
                std::filesystem::path(DCG_LINT_REPO_ROOT) / anchor;
            EXPECT_TRUE(std::filesystem::is_regular_file(p))
                << info.name << " anchor: " << anchor;
        }
        EXPECT_TRUE(isCheck(info.name));
        ASSERT_NE(findCheck(info.name), nullptr);
        EXPECT_EQ(findCheck(info.name)->description,
                  info.description);
        EXPECT_TRUE(static_cast<bool>(checkFn(info.name)));
    }

    // The new deep checks are part of the registered set.
    EXPECT_TRUE(isCheck("thread-ownership"));
    EXPECT_TRUE(isCheck("determinism"));
    EXPECT_FALSE(isCheck("no-such-check"));
    EXPECT_NE(checkNamesJoined().find("|thread-ownership"),
              std::string::npos);
}

TEST(Dcglint, RepoTreeIsClean)
{
    // The real repository must satisfy its own invariants. The ctest
    // driver also runs the dcglint binary against the source root;
    // this in-process variant pins the library behaviour.
    LintOptions opts;
    opts.root = DCG_LINT_REPO_ROOT;
    opts.requireAnchors = true;
    std::ostringstream out;
    EXPECT_EQ(runDcglint(opts, out), 0) << out.str();
}

} // namespace
} // namespace dcg::lint
